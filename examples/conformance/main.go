// Conformance: the full Sec. 3 walkthrough in the paper's conformance mode
// (Fig. 7). The K8s provider is inflexible about its port-23 ban; the Istio
// tenant first fails against the envelope with its strict Fig. 3 goals,
// then relaxes them to the Fig. 4 existential form and conforms, receiving
// a minimally-edited configuration that keeps the mesh working.
//
// Run from the repository root:
//
//	go run ./examples/conformance
package main

import (
	"fmt"
	"log"

	"muppet"
)

func main() {
	bundle, err := muppet.LoadFiles(
		"testdata/fig1/mesh.yaml",
		"testdata/fig1/k8s_current.yaml",
		"testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		log.Fatal(err)
	}
	k8sGoals, err := muppet.LoadK8sGoals("testdata/fig1/k8s_goals.csv")
	if err != nil {
		log.Fatal(err)
	}

	// Attempt 1: the tenant insists on the strict Fig. 3 goals
	// (frontend must receive on port 23). Conformance fails in the
	// revision step, with blame.
	strict, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals.csv")
	if err != nil {
		log.Fatal(err)
	}
	provider, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.Offer{}, k8sGoals)
	if err != nil {
		log.Fatal(err)
	}
	tenant, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), strict)
	if err != nil {
		log.Fatal(err)
	}
	out := muppet.RunConformance(sys, provider, tenant)
	fmt.Println("=== Attempt 1: strict Fig. 3 goals ===")
	fmt.Printf("provider locally consistent: %v\n", out.ProviderConsistent)
	fmt.Println("envelope E_{K8s→Istio}:")
	fmt.Print(out.Envelope)
	if out.Reconciled {
		log.Fatal("unexpected: strict goals should not conform")
	}
	fmt.Printf("conformance failed at step %q\n%s\n\n", out.FailedStep, out.Feedback)

	// Attempt 2: the tenant relaxes ports to existential variables
	// (Fig. 4) — "it doesn't matter which port is exposed so long as the
	// frontend is reachable".
	relaxed, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		log.Fatal(err)
	}
	provider2, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.Offer{}, k8sGoals)
	if err != nil {
		log.Fatal(err)
	}
	tenant2, tenantState, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), relaxed)
	if err != nil {
		log.Fatal(err)
	}
	out = muppet.RunConformance(sys, provider2, tenant2)
	fmt.Println("=== Attempt 2: relaxed Fig. 4 goals ===")
	if !out.Reconciled {
		log.Fatalf("conformance failed at %s: %v", out.FailedStep, out.Feedback)
	}
	fmt.Println("conformed; minimal edits applied to the tenant:")
	for _, e := range out.Edits {
		fmt.Println("  ", e)
	}
	fmt.Println()
	fmt.Println("delivered Istio configuration:")
	fmt.Print(tenant2.Describe())

	// Verify with the runtime evaluator: the ban holds, the mesh works.
	m2 := sys.MeshWith(tenantState.Exposure)
	reach := muppet.ReachabilityMatrix(m2, bundle.K8s, tenantState.Config)
	fmt.Println("\nfinal reachability matrix (src->dst: open ports):")
	for _, src := range m2.ServiceNames() {
		for _, dst := range m2.ServiceNames() {
			if ports := reach[src+"->"+dst]; len(ports) > 0 {
				fmt.Printf("  %s->%s: %v\n", src, dst, ports)
			}
		}
	}
}
