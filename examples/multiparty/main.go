// Multiparty: the Sec. 7 extension beyond two administrators. A security
// operations team joins the K8s and Istio administrators, owning its own
// NetworkPolicy shell with its own goal. The joint envelope
// E_{K8s,SecOps→Istio} merges both senders' obligations, and the
// round-robin negotiation cycle simply grows by one seat.
//
// Run from the repository root:
//
//	go run ./examples/multiparty
package main

import (
	"fmt"
	"log"

	"muppet"
)

func main() {
	bundle, err := muppet.LoadFiles(
		"testdata/fig1/mesh.yaml",
		"testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		log.Fatal(err)
	}

	// Two K8s-side policy shells: the cluster default (platform team) and
	// a SecOps policy scoped to backend services.
	platformShell := &muppet.NetworkPolicy{Name: "cluster-default"}
	secopsShell := &muppet.NetworkPolicy{Name: "secops", Selector: map[string]string{"app": "backend"}}
	sys, err := muppet.NewSystem(bundle.Mesh,
		[]*muppet.NetworkPolicy{platformShell, secopsShell},
		bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		log.Fatal(err)
	}

	k8sGoals, err := muppet.LoadK8sGoals("testdata/fig1/k8s_goals.csv")
	if err != nil {
		log.Fatal(err)
	}
	relaxed, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		log.Fatal(err)
	}

	platform, platformState, err := muppet.NewK8sParty(sys,
		&muppet.K8sConfig{Policies: []*muppet.NetworkPolicy{{Name: "cluster-default"}}},
		muppet.AllSoft(), k8sGoals)
	if err != nil {
		log.Fatal(err)
	}

	secops, _, err := muppet.NewK8sParty(sys,
		&muppet.K8sConfig{Policies: []*muppet.NetworkPolicy{{Name: "secops"}}},
		muppet.AllSoft(),
		[]muppet.K8sGoal{{Port: 16000, Allow: false, Selector: map[string]string{"app": "backend"}}})
	if err != nil {
		log.Fatal(err)
	}
	secops.Name = "SecOps"

	istio, istioState, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), relaxed)
	if err != nil {
		log.Fatal(err)
	}

	// The joint envelope to the Istio administrator (Sec. 7:
	// E_{A,B→C} via merged substitution).
	env := muppet.ComputeEnvelope(sys, istio, []*muppet.Party{platform, secops})
	fmt.Println("joint envelope", env.Name(), "—", len(env.Clauses), "clauses:")
	fmt.Print(env)
	fmt.Println()

	// Three-seat negotiation.
	out := muppet.NewNegotiation(sys, platform, secops, istio).Run()
	if !out.Reconciled {
		log.Fatalf("three-party negotiation failed: %v", out.Feedback)
	}
	fmt.Println("three-party negotiation reconciled.")
	if out.InitialReconcile {
		fmt.Println("(initial offers were already compatible)")
	}
	for _, r := range out.Rounds {
		fmt.Printf("  round %d: %s edits=%d reconciled=%v\n", r.Round, r.Party, len(r.Edits), r.Reconciled)
	}

	m2 := sys.MeshWith(istioState.Exposure)
	// Adopt decodes every K8s shell into each K8s-side party's state, so
	// the platform state's configuration carries both policies.
	k8sFinal := platformState.Config
	fmt.Println("\nfinal reachability matrix:")
	for pair, ports := range muppet.ReachabilityMatrix(m2, k8sFinal, istioState.Config) {
		if len(ports) > 0 {
			fmt.Printf("  %s: %v\n", pair, ports)
		}
	}
}
