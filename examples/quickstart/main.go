// Quickstart: load the paper's Figure 1 mesh, state the two
// administrators' goals (Figs. 2 and 3), watch them conflict, and print
// the envelope E_{K8s→Istio} (Fig. 5) that tells the Istio administrator
// exactly what the K8s goals require of them.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"muppet"
)

func main() {
	// The system structure and current configurations come from the same
	// YAML shapes administrators deploy in production.
	bundle, err := muppet.LoadFiles(
		"testdata/fig1/mesh.yaml",
		"testdata/fig1/k8s_current.yaml",
		"testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		log.Fatal(err)
	}

	// Fix the logical vocabulary: the mesh, both parties' policy shells,
	// and the ports the goal tables mention.
	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		log.Fatal(err)
	}

	// Goals, straight from the paper's CSV tables.
	k8sGoals, err := muppet.LoadK8sGoals("testdata/fig1/k8s_goals.csv")
	if err != nil {
		log.Fatal(err)
	}
	istioGoals, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals.csv")
	if err != nil {
		log.Fatal(err)
	}

	// The K8s administrator is about to push a global port-23 ban; their
	// current configuration (permissive) is what tenants see today.
	k8sParty, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.Offer{}, k8sGoals)
	if err != nil {
		log.Fatal(err)
	}
	// The Istio administrator runs a working mesh and wants the Fig. 3
	// flows; everything on their side is open to compromise.
	istioParty, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), istioGoals)
	if err != nil {
		log.Fatal(err)
	}

	// The conflict (Sec. 2): the union of the two goal sets is
	// unsatisfiable — no pair of configurations can meet both.
	res := muppet.Reconcile(sys, []*muppet.Party{k8sParty, istioParty})
	if res.OK {
		log.Fatal("unexpected: the paper's conflict should be unsatisfiable")
	}
	fmt.Println("The two administrators' goals conflict. Blame:")
	fmt.Println(res.Feedback)
	fmt.Println()

	// The envelope E_{K8s→Istio} (Fig. 5): what the Istio administrator
	// must satisfy for the K8s goals to hold, in the Istio vocabulary.
	env := muppet.ComputeEnvelope(sys, istioParty, []*muppet.Party{k8sParty})
	fmt.Println("Envelope from K8s to Istio (Fig. 5):")
	fmt.Print(env)
	fmt.Println()
	fmt.Println("Configuration leakage (Sec. 7):", env.LeakedAtoms())
}
