// Negotiation: the Fig. 9 workflow after the conflict has already landed.
// The K8s administrator has pushed the port-23 ban (and won't retract it);
// the Istio administrator's mesh broke. Negotiation with the strict goals
// ends stuck — the solver tells the humans to talk. The Istio admin then
// relaxes goals (the Fig. 4 move) and widens the negotiable region, and
// the next negotiation run converges via a solver-mediated counter-offer.
//
// Run from the repository root:
//
//	go run ./examples/negotiation
package main

import (
	"fmt"
	"log"

	"muppet"
)

func main() {
	bundle, err := muppet.LoadFiles(
		"testdata/fig1/mesh.yaml",
		"testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		log.Fatal(err)
	}
	// The ban is already deployed.
	banned := &muppet.K8sConfig{Policies: []*muppet.NetworkPolicy{{
		Name:             "cluster-default",
		IngressDenyPorts: []int{23},
	}}}
	sys, err := muppet.NewSystem(bundle.Mesh, banned.Policies, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		log.Fatal(err)
	}

	// The outage, observed with the runtime evaluator.
	broken := muppet.Flow{Src: "test-backend", Dst: "test-frontend", SrcPort: 26, DstPort: 23}
	v := muppet.Evaluate(bundle.Mesh, banned, bundle.Istio, broken)
	fmt.Printf("after the push, %v: DENIED (%s)\n\n", broken, v.Reason)

	k8sGoals, err := muppet.LoadK8sGoals("testdata/fig1/k8s_goals.csv")
	if err != nil {
		log.Fatal(err)
	}
	strict, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals.csv")
	if err != nil {
		log.Fatal(err)
	}

	// Round 1 of human time: both sides register inflexible offers.
	k8sParty, _, err := muppet.NewK8sParty(sys, banned, muppet.Offer{}, k8sGoals)
	if err != nil {
		log.Fatal(err)
	}
	istioParty, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.Offer{}, strict)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== negotiation with strict goals and fixed offers ===")
	out := muppet.NewNegotiation(sys, k8sParty, istioParty).Run()
	for _, r := range out.Rounds {
		status := "revised"
		if r.Stuck {
			status = "stuck"
		} else if r.ConformedAlready {
			status = "already conforms"
		}
		fmt.Printf("  round %d: %s %s\n", r.Round, r.Party, status)
	}
	if out.Reconciled {
		log.Fatal("unexpected: strict negotiation should fail")
	}
	fmt.Println("negotiation failed — the solver's blame for the humans:")
	fmt.Println(out.Feedback)
	fmt.Println()

	// The Fig. 4 move: relaxed goals, fully negotiable Istio offer.
	relaxed, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		log.Fatal(err)
	}
	istioParty2, istioState, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), relaxed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== negotiation after the Fig. 4 relaxation ===")
	out = muppet.NewNegotiation(sys, k8sParty, istioParty2).Run()
	if !out.Reconciled {
		log.Fatalf("negotiation should now succeed: %v", out.Feedback)
	}
	if out.InitialReconcile {
		fmt.Println("offers reconciled immediately")
	}
	for _, r := range out.Rounds {
		fmt.Printf("  round %d: %s (%d edits, reconciled=%v)\n", r.Round, r.Party, len(r.Edits), r.Reconciled)
	}
	fmt.Println("\nnegotiated Istio configuration:")
	fmt.Print(istioParty2.Describe())

	m2 := sys.MeshWith(istioState.Exposure)
	fmt.Println("\nmesh health after negotiation:")
	for pair, ports := range muppet.ReachabilityMatrix(m2, banned, istioState.Config) {
		if len(ports) > 0 {
			fmt.Printf("  %s: %v\n", pair, ports)
		}
	}
}
