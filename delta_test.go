package muppet_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"muppet"
	"muppet/internal/server"
)

// The delta cross-check suite anchors incremental re-reconciliation the
// same way the encoding pipeline was anchored: applying a bundle edit via
// the warm Rebase path must yield output byte-identical to a cold run on
// the edited bundle, across every encoding configuration. DeltaStats may
// only report how the answer was computed, never change it.

// deltaFixture is one before/after revision pair plus what the plan and
// the rebase must report about it.
type deltaFixture struct {
	name       string
	before     server.Config
	after      server.Config
	compatible bool // warm rebase possible (universe + shapes unchanged)
	wantKept   bool // at least one selector-guarded group must be reused
}

// writeDeltaFixtures builds the revision pairs in dir: a one-tuple goal
// edit, a one-atom concrete-config edit, and a universe-changing goal
// edit (a port outside the grounded inventory).
func writeDeltaFixtures(t *testing.T, dir string) []deltaFixture {
	t.Helper()
	cp := func(dst, src string) {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write := func(dst, content string) {
		if err := os.WriteFile(dst, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A one-tuple goal edit: the port-23 ban flips to an allow. Same port,
	// same universe — the canonical watch-mode event.
	goalsAllow := filepath.Join(dir, "k8s_goals_allow.csv")
	write(goalsAllow, "port,perm,selector\n23,ALLOW,*\n")

	// A one-atom config edit: frontend-policy additionally allows traffic
	// from test-db. Only that policy's selector group changes.
	istioEdited := filepath.Join(dir, "istio_current_edited.yaml")
	orig, err := os.ReadFile("testdata/fig1/istio_current.yaml")
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(orig),
		"      app: frontend\n  ingress:\n    allowFromServices:\n      - test-backend",
		"      app: frontend\n  ingress:\n    allowFromServices:\n      - test-backend\n      - test-db", 1)
	if edited == string(orig) {
		t.Fatal("istio_current.yaml edit did not apply")
	}
	write(istioEdited, edited)

	// A universe-changing goal edit: port 99 is outside the Fig. 1
	// inventory, so the grounded bounds cannot express the new goal.
	goalsNewPort := filepath.Join(dir, "k8s_goals_port99.csv")
	write(goalsNewPort, "port,perm,selector\n23,DENY,*\n99,DENY,*\n")

	// Copy the shared inputs so each fixture is self-contained on disk.
	mesh := filepath.Join(dir, "mesh.yaml")
	k8sCur := filepath.Join(dir, "k8s_current.yaml")
	istioCur := filepath.Join(dir, "istio_current.yaml")
	k8sGoals := filepath.Join(dir, "k8s_goals.csv")
	istioGoals := filepath.Join(dir, "istio_goals_revised.csv")
	cp(mesh, "testdata/fig1/mesh.yaml")
	cp(k8sCur, "testdata/fig1/k8s_current.yaml")
	cp(istioCur, "testdata/fig1/istio_current.yaml")
	cp(k8sGoals, "testdata/fig1/k8s_goals.csv")
	cp(istioGoals, "testdata/fig1/istio_goals_revised.csv")

	files := mesh + "," + k8sCur + "," + istioCur
	filesEdited := mesh + "," + k8sCur + "," + istioEdited
	relaxed := server.Config{
		Files: files, K8sGoals: k8sGoals, IstioGoals: istioGoals,
		K8sOffer: "soft", IstioOffer: "soft",
	}
	withConfig := func(base server.Config, edit func(*server.Config)) server.Config {
		edit(&base)
		return base
	}
	return []deltaFixture{
		{
			name:       "goal-edit",
			before:     relaxed,
			after:      withConfig(relaxed, func(c *server.Config) { c.K8sGoals = goalsAllow }),
			compatible: true,
		},
		{
			name: "config-edit",
			before: withConfig(relaxed, func(c *server.Config) {
				c.IstioOffer = "fixed"
			}),
			after: withConfig(relaxed, func(c *server.Config) {
				c.IstioOffer = "fixed"
				c.Files = filesEdited
			}),
			compatible: true,
			wantKept:   true,
		},
		{
			name:       "universe-change",
			before:     relaxed,
			after:      withConfig(relaxed, func(c *server.Config) { c.K8sGoals = goalsNewPort }),
			compatible: false,
		},
	}
}

// deltaServe runs one op for revision B via the warm rebase path: warm
// the cache on revision A, diff, rebase, serve. Falls back to a cold
// build exactly when the plan or the rebase says it must.
func deltaServe(t *testing.T, stA, stB *server.State, req server.Request) (server.Response, muppet.DeltaStats) {
	t.Helper()
	ctx := context.Background()
	snapA, err := stA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := stB.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	plan := muppet.CompareRevisions(snapA, snapB)

	cache := muppet.NewSolveCache()
	if _, err := server.Exec(ctx, stA, cache, req, muppet.Budget{}); err != nil {
		t.Fatal(err)
	}

	var serveState *server.State
	if plan.Compatible {
		rb, err := stB.RebasedOn(stA.Sys)
		if err != nil {
			t.Fatalf("compatible plan but rebase failed: %v", err)
		}
		serveState = rb
	}
	var resp server.Response
	if serveState != nil {
		ds := cache.Rebase(plan, func() {
			r, err := server.Exec(ctx, serveState, cache, req, muppet.Budget{})
			if err != nil {
				t.Fatal(err)
			}
			resp = r
		})
		return resp, ds
	}
	// Cold fallback: fresh sessions over the new revision's own system.
	cold := muppet.NewSolveCache()
	ds := cold.Rebase(plan, func() {
		r, err := server.Exec(ctx, stB, cold, req, muppet.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		resp = r
	})
	return resp, ds
}

// TestDeltaRebaseMatchesColdExec is the acceptance gate: for every
// fixture, op, and encoding configuration, the warm rebase answer equals
// the cold answer byte for byte.
func TestDeltaRebaseMatchesColdExec(t *testing.T) {
	fixtures := writeDeltaFixtures(t, t.TempDir())
	reqs := []server.Request{
		{Op: "reconcile"},
		{Op: "check", Party: "istio"},
	}
	for _, fx := range fixtures {
		for _, req := range reqs {
			req := req
			fx := fx
			t.Run(fx.name+"/"+req.Op, func(t *testing.T) {
				for _, cfg := range encodingConfigs {
					withEncoding(cfg.enc, func() {
						stA, err := server.Load(fx.before)
						if err != nil {
							t.Fatal(err)
						}
						stB, err := server.Load(fx.after)
						if err != nil {
							t.Fatal(err)
						}
						coldResp, err := server.Exec(context.Background(), stB, nil, req, muppet.Budget{})
						if err != nil {
							t.Fatal(err)
						}
						deltaResp, ds := deltaServe(t, stA, stB, req)
						if ds.Cold == fx.compatible {
							t.Fatalf("%s: DeltaStats.Cold = %v (reason %q), want %v",
								cfg.name, ds.Cold, ds.Reason, !fx.compatible)
						}
						if fx.wantKept && ds.GroupsKept == 0 {
							t.Fatalf("%s: no selector groups kept: %+v", cfg.name, ds)
						}
						if deltaResp.Code != coldResp.Code {
							t.Fatalf("%s: delta code %d, cold %d", cfg.name, deltaResp.Code, coldResp.Code)
						}
						if deltaResp.Output != coldResp.Output {
							t.Fatalf("%s: delta output differs from cold:\n--- cold ---\n%s\n--- delta ---\n%s",
								cfg.name, coldResp.Output, deltaResp.Output)
						}
					})
				}
			})
		}
	}
}

// TestDeltaPlanContent pins what the plan reports for the canonical
// one-tuple edits: the goal flip shows up as one removed + one added
// goal, the config edit as exactly one added atom.
func TestDeltaPlanContent(t *testing.T) {
	fixtures := writeDeltaFixtures(t, t.TempDir())
	snap := func(cfg server.Config) *muppet.DeltaRevision {
		st, err := server.Load(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := st.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			plan := muppet.CompareRevisions(snap(fx.before), snap(fx.after))
			if plan.Compatible != fx.compatible {
				t.Fatalf("Compatible = %v (reason %q), want %v", plan.Compatible, plan.Reason, fx.compatible)
			}
			switch fx.name {
			case "goal-edit":
				if len(plan.GoalsAdded) != 1 || len(plan.GoalsRemoved) != 1 || len(plan.AtomsChanged) != 0 {
					t.Fatalf("plan = %+v", plan)
				}
			case "config-edit":
				if len(plan.AtomsChanged) != 1 || !plan.AtomsChanged[0].Added {
					t.Fatalf("AtomsChanged = %v", plan.AtomsChanged)
				}
				if len(plan.GoalsAdded)+len(plan.GoalsRemoved) != 0 {
					t.Fatalf("unexpected goal churn: %+v", plan)
				}
			case "universe-change":
				if !strings.Contains(plan.Reason, "universe") {
					t.Fatalf("reason = %q", plan.Reason)
				}
			}
		})
	}
}
