package muppet_test

import (
	"strings"
	"testing"

	"muppet"
	"muppet/internal/relational"
)

// TestPublicAPIWalkthrough drives the paper's Sec. 3 story end to end
// through the public API only: conflict, envelope, relaxation, conformance,
// verification.
func TestPublicAPIWalkthrough(t *testing.T) {
	bundle, err := muppet.LoadFiles(
		"testdata/fig1/mesh.yaml",
		"testdata/fig1/k8s_current.yaml",
		"testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		t.Fatal(err)
	}
	k8sGoals, err := muppet.LoadK8sGoals("testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	strict, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		t.Fatal(err)
	}

	// The conflict.
	k8sParty, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.AllSoft(), k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	strictParty, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), strict)
	if err != nil {
		t.Fatal(err)
	}
	if res := muppet.Reconcile(sys, []*muppet.Party{k8sParty, strictParty}); res.OK {
		t.Fatal("Fig. 2 ∧ Fig. 3 must conflict")
	}

	// The envelope.
	env := muppet.ComputeEnvelope(sys, strictParty, []*muppet.Party{k8sParty})
	if env.Trivial() || env.Unsatisfiable() {
		t.Fatal("E_{K8s→Istio} must be non-trivial and satisfiable")
	}

	// Conformance with the relaxation.
	provider, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.Offer{}, k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	tenant, tenantState, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), relaxed)
	if err != nil {
		t.Fatal(err)
	}
	out := muppet.RunConformance(sys, provider, tenant)
	if !out.Reconciled {
		t.Fatalf("conformance must succeed: failed at %s: %v", out.FailedStep, out.Feedback)
	}

	// Verify with the runtime evaluator.
	m2 := sys.MeshWith(tenantState.Exposure)
	reach := muppet.ReachabilityMatrix(m2, bundle.K8s, tenantState.Config)
	for pair, ports := range reach {
		for _, p := range ports {
			if p == 23 {
				t.Fatalf("port 23 reachable on %s", pair)
			}
		}
	}
	for _, pair := range []string{
		"test-frontend->test-backend", "test-backend->test-frontend",
		"test-backend->test-db", "test-db->test-backend",
	} {
		if len(reach[pair]) == 0 {
			t.Fatalf("%s must stay reachable", pair)
		}
	}
}

// TestFig5EnvelopeGolden pins the printed Fig. 5 envelope: the five
// disjunct families, in the paper's Alloy-like syntax.
func TestFig5EnvelopeGolden(t *testing.T) {
	bundle, err := muppet.LoadFiles(
		"testdata/fig1/mesh.yaml",
		"testdata/fig1/k8s_current.yaml",
		"testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		t.Fatal(err)
	}
	k8sGoals, err := muppet.LoadK8sGoals("testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	k8sParty, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.Offer{}, k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), nil)
	if err != nil {
		t.Fatal(err)
	}
	env := muppet.ComputeEnvelope(sys, istioParty, []*muppet.Party{k8sParty})

	got := env.String()
	want := "// envelope E_{K8s→Istio}\n" +
		"all src: Service, dst: {test-frontend + test-backend + test-db} | " +
		"(not (port:23 in (dst.active_ports)) " +
		"or port:23 in ({ap: AuthPolicy | (ap->src) in target}.deny_to_ports) " +
		"or (some ({ap: AuthPolicy | (ap->src) in target}.allow_to_ports) " +
		"and not (port:23 in ({ap: AuthPolicy | (ap->src) in target}.allow_to_ports))) " +
		"or src in ({ap: AuthPolicy | (ap->dst) in target}.deny_from_service) " +
		"or (some ({ap: AuthPolicy | (ap->dst) in target}.allow_from_service) " +
		"and not (src in ({ap: AuthPolicy | (ap->dst) in target}.allow_from_service))))\n"
	if got != want {
		t.Fatalf("Fig. 5 envelope drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The Fig. 5 caption's five numbered disjuncts, structurally:
	for i, frag := range []string{
		"not (port:23 in (dst.active_ports))",                               // (1) not listening
		".deny_to_ports",                                                    // (2) explicit egress deny
		"allow_to_ports) and not (port:23",                                  // (3) implicit egress deny
		"src in ({ap: AuthPolicy | (ap->dst) in target}.deny_from_service)", // (4) explicit ingress deny
		"allow_from_service) and not (src",                                  // (5) implicit ingress deny
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("disjunct %d missing: %q", i+1, frag)
		}
	}
}

// TestScenarioAPIRoundTrip exercises the scenario generator through the
// public API.
func TestScenarioAPIRoundTrip(t *testing.T) {
	sc := muppet.GenerateScenario(muppet.ScenarioParams{
		Services: 5, PortsPerService: 2, Flows: 5, BannedPorts: 1, Seed: 11,
	})
	sys, err := sc.System()
	if err != nil {
		t.Fatal(err)
	}
	k8sParty, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), sc.K8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), sc.IstioRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	res := muppet.Reconcile(sys, []*muppet.Party{k8sParty, istioParty})
	if !res.OK {
		t.Fatalf("generated scenario must reconcile: %v", res.Feedback)
	}
}

// TestPortTermHelpers covers the re-exported goal constructors.
func TestPortTermHelpers(t *testing.T) {
	if muppet.LitPort(23).Kind != muppet.PortLit || muppet.LitPort(23).Port != 23 {
		t.Fatal("LitPort")
	}
	if muppet.AnyPort().Kind != muppet.PortAny {
		t.Fatal("AnyPort")
	}
	if muppet.VarPort("w").Kind != muppet.PortVar || muppet.VarPort("w").Var != "w" {
		t.Fatal("VarPort")
	}
}

// TestFacadeCoverage exercises the remaining public wrappers end to end.
func TestFacadeCoverage(t *testing.T) {
	bundle, err := muppet.ParseAll([]byte(`
kind: Service
metadata:
  name: a
  labels:
    app: a
spec:
  ports:
    - 80
---
kind: Service
metadata:
  name: b
  labels:
    app: b
spec:
  ports:
    - 81
---
kind: NetworkPolicy
metadata:
  name: np
spec:
  podSelector: {}
---
kind: AuthorizationPolicy
metadata:
  name: ap
spec:
  selector:
    matchLabels:
      app: b
`))
	if err != nil {
		t.Fatal(err)
	}
	if !muppet.Allowed(bundle.Mesh, bundle.K8s, bundle.Istio, muppet.Flow{Src: "a", Dst: "b", DstPort: 81}) {
		t.Fatal("open mesh should allow a→b:81")
	}
	v := muppet.Evaluate(bundle.Mesh, bundle.K8s, bundle.Istio, muppet.Flow{Src: "a", Dst: "b", DstPort: 9})
	if v.Allowed || v.Reason == "" {
		t.Fatalf("non-listening port: %+v", v)
	}

	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies, []int{80, 81})
	if err != nil {
		t.Fatal(err)
	}
	k8sParty, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.AllSoft(),
		[]muppet.K8sGoal{{Port: 80, Allow: false}})
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(),
		[]muppet.IstioGoal{{Src: "a", Dst: "b", SrcPort: muppet.AnyPort(), DstPort: muppet.VarPort("p"), Allow: true}})
	if err != nil {
		t.Fatal(err)
	}

	// Alg. 1 via the façade.
	if res := muppet.LocalConsistency(sys, k8sParty, []*muppet.Party{istioParty}); !res.OK {
		t.Fatalf("local consistency: %v", res.Feedback)
	}
	// Monolithic baseline via the façade.
	if res := muppet.SynthesizeMonolithic(sys, []*muppet.Party{k8sParty, istioParty}); !res.OK {
		t.Fatalf("monolithic: %v", res.Feedback)
	}
	// Envelope + English + goal comparison + candidate check + edit.
	env := muppet.ComputeEnvelope(sys, istioParty, []*muppet.Party{k8sParty})
	prose := muppet.EnglishEnvelope(sys, env)
	if !strings.Contains(prose, "E_{K8s→Istio}") {
		t.Fatalf("prose: %q", prose)
	}
	if res := muppet.GoalsCompatible(sys, istioParty, env, k8sParty); !res.OK {
		t.Fatalf("goals should be compatible: %v", res.Feedback)
	}
	ok, _ := muppet.CheckCandidate(sys, istioParty, env, false, k8sParty)
	_ = ok
	edit := muppet.MinimalEdit(sys, istioParty,
		append([]relational.Formula{env.Formula()}, istioParty.GoalFormulas()...), k8sParty)
	if !edit.OK {
		t.Fatalf("minimal edit: %v", edit.Feedback)
	}
	// Negotiation via the façade.
	out := muppet.NewNegotiation(sys, k8sParty, istioParty).Run()
	if !out.Reconciled {
		t.Fatalf("negotiation: %v", out.Feedback)
	}
	// Trivial-envelope prose.
	quiet, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), nil)
	if err != nil {
		t.Fatal(err)
	}
	envTrivial := muppet.ComputeEnvelope(sys, k8sParty, []*muppet.Party{quiet})
	if !envTrivial.Trivial() {
		t.Fatal("goal-less sender must produce a trivial envelope")
	}
	if !strings.Contains(muppet.EnglishEnvelope(sys, envTrivial), "no obligations") {
		t.Fatal("trivial prose missing")
	}
}
