// Package muppet is a solver-aided multi-party configuration toolkit for
// service meshes, reproducing "Solver-Aided Multi-Party Configuration"
// (Dackow, Wagner, Nelson, Krishnamurthi, Benson — HotNets 2020).
//
// Several administrators — in the paper, a Kubernetes administrator and an
// Istio administrator sharing traffic jurisdiction over one mesh — state
// goals (CSV tables) and partial configurations (concrete settings plus
// "soft" knobs and "holes"). Muppet then provides:
//
//   - Local consistency (Alg. 1): can a party's own offer be completed to
//     meet its own goals? Failures come back as unsat cores with blame.
//   - Reconciliation (Alg. 2): complete everyone's offers so the union of
//     configurations satisfies the union of goals, deviating minimally
//     from soft preferences.
//   - Envelopes (Alg. 3): E_{A→B}, a necessary-and-sufficient predicate
//     set over B's configuration domain for A's goals to hold, modulo A's
//     concrete settings — the interface each party needs the others to
//     obey, usable for verification, synthesis, fault localisation and
//     negotiation.
//   - The conformance workflow (Fig. 7/8): an inflexible provider, a
//     tenant revising with minimal edits against the provider's envelope.
//   - The negotiation workflow (Fig. 9): round-robin counter-offers
//     mediated by the solver, for N ≥ 2 parties.
//
// Everything below runs on a from-scratch stack: a bounded relational
// logic in the style of Kodkod, grounded through a hash-consed boolean
// circuit factory into a CDCL SAT solver, with Pardinus-style
// target-oriented (minimal-edit) solving and unsat-core extraction.
//
// # Quick start
//
//	bundle, _ := muppet.LoadFiles("mesh.yaml", "istio.yaml")
//	sys, _ := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies, []int{23})
//	k8sGoals, _ := muppet.LoadK8sGoals("k8s_goals.csv")
//	provider, _, _ := muppet.NewK8sParty(sys, bundle.K8s, muppet.Offer{}, k8sGoals)
//	tenant, _, _ := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), nil)
//	env := muppet.ComputeEnvelope(sys, tenant, []*muppet.Party{provider})
//	fmt.Println(env) // the Fig. 5 envelope, in Alloy-like syntax
package muppet

import (
	"context"
	"strings"

	"muppet/internal/delta"
	"muppet/internal/encode"
	"muppet/internal/envelope"
	"muppet/internal/goals"
	"muppet/internal/mesh"
	core "muppet/internal/muppet"
	"muppet/internal/relational"
	"muppet/internal/sat"
	"muppet/internal/scenario"
	"muppet/internal/target"
)

// Domain model (package mesh).
type (
	// Mesh is the shared system structure: the service inventory.
	Mesh = mesh.Mesh
	// Service is a mesh workload with labels and listening ports.
	Service = mesh.Service
	// NetworkPolicy is the modelled Kubernetes NetworkPolicy subset.
	NetworkPolicy = mesh.NetworkPolicy
	// AuthorizationPolicy is the modelled Istio AuthorizationPolicy subset.
	AuthorizationPolicy = mesh.AuthorizationPolicy
	// K8sConfig is the Kubernetes administrator's configuration.
	K8sConfig = mesh.K8sConfig
	// IstioConfig is the Istio administrator's configuration.
	IstioConfig = mesh.IstioConfig
	// Flow is one service-to-service packet flow.
	Flow = mesh.Flow
	// Verdict explains one flow evaluation.
	Verdict = mesh.Verdict
	// Bundle is the result of loading YAML: mesh + both configurations.
	Bundle = mesh.Bundle
)

// Goal language (package goals).
type (
	// K8sGoal is one row of the K8s goal table (paper Fig. 2).
	K8sGoal = goals.K8sGoal
	// IstioGoal is one row of the Istio goal table (paper Figs. 3–4).
	IstioGoal = goals.IstioGoal
	// PortTerm is a port cell: literal, `*`, or existential variable.
	PortTerm = goals.PortTerm
)

// Encoding (package encode).
type (
	// System fixes the logical vocabulary for one mesh + policy shells.
	System = encode.System
	// Offer is a partial configuration: soft knobs and holes.
	Offer = encode.Offer
	// Knob addresses one boolean configuration decision.
	Knob = encode.Knob
	// Field identifies one configurable policy table.
	Field = encode.Field
)

// Workflows (package muppet/internal/muppet).
type (
	// Party is one administrator in the workflows.
	Party = core.Party
	// K8sPartyState is the mutable state behind a Kubernetes party.
	K8sPartyState = core.K8sPartyState
	// IstioPartyState is the mutable state behind an Istio party.
	IstioPartyState = core.IstioPartyState
	// NamedGoal pairs a goal formula with a blame label.
	NamedGoal = core.NamedGoal
	// Result is the outcome of a consistency/reconciliation query.
	Result = core.Result
	// Edit is one soft-knob flip (minimal-edit feedback).
	Edit = core.Edit
	// Feedback is an unsat core with blame.
	Feedback = core.Feedback
	// ConformanceOutcome records a Fig. 7 run.
	ConformanceOutcome = core.ConformanceOutcome
	// Negotiation drives the Fig. 9 workflow.
	Negotiation = core.Negotiation
	// NegotiationOutcome summarises a negotiation run.
	NegotiationOutcome = core.NegotiationOutcome
	// RoundReport records one negotiation turn.
	RoundReport = core.RoundReport
	// TerminalReason classifies how a negotiation run ended.
	TerminalReason = core.TerminalReason
	// Envelope is E_{A→B} (paper Fig. 5, Alg. 3).
	Envelope = envelope.Envelope
)

// Budgets and degradation. Every workflow has a Ctx variant taking a
// context and a Budget; when either interrupts the solver, results come
// back Indeterminate (with a StopReason) instead of a fabricated verdict.
type (
	// Budget bounds solver work: wall-clock deadline, conflict cap,
	// propagation cap. The zero value is unlimited.
	Budget = sat.Budget
	// StopReason explains why a solve stopped before reaching a verdict.
	StopReason = target.StopReason
)

// StopReason values.
const (
	StopNone         = target.StopNone
	StopCancelled    = target.StopCancelled
	StopDeadline     = target.StopDeadline
	StopConflicts    = target.StopConflicts
	StopPropagations = target.StopPropagations
	StopMaxSolves    = target.StopMaxSolves
)

// Incremental reuse and parallel solving. A SolveCache keeps live solving
// sessions across workflow calls (negotiation rounds, conformance retries,
// repeated checks), turning them into incremental solves; the portfolio
// width races diversified solver configurations inside each solve. Both
// are performance features only: verdicts, models' validity, and blame
// cores are identical with or without them.
type (
	// SolveCache serves the workflow queries from live, reusable solving
	// sessions. Single-goroutine; use one per worker (see FanOut).
	SolveCache = core.SolveCache
	// ReuseStats counts sessions built vs. reused and translation-cache
	// hits across a SolveCache.
	ReuseStats = core.ReuseStats
	// TranslationStats counts formula-translation cache hits and misses.
	TranslationStats = relational.CacheStats
	// WorkerStats reports one portfolio worker's outcome and search stats.
	WorkerStats = sat.WorkerStats
)

// NewSolveCache creates an empty solving-session cache.
func NewSolveCache() *SolveCache { return core.NewSolveCache() }

// Delta re-reconciliation (package delta + the SolveCache Rebase path):
// given two revisions of a bundle/goal set, compute the changed goals and
// relational atoms, then re-solve the new revision over the previous
// revision's warm sessions — untouched selector-guarded CNF groups kept,
// changed groups re-asserted (restoring eliminated variables as needed) —
// instead of a cold rebuild. Verdicts are byte-identical to cold runs;
// DeltaStats reports how incremental the step was.
type (
	// DeltaRevision snapshots one revision's comparable content.
	DeltaRevision = delta.Revision
	// DeltaPlan is the diff between two revisions: the changed atoms, the
	// goal churn, and whether a warm rebase is possible at all.
	DeltaPlan = delta.Plan
	// DeltaAtom is one changed relational atom.
	DeltaAtom = delta.Atom
	// DeltaStats reports warm-state reuse across one rebase.
	DeltaStats = core.DeltaStats
)

// Snapshot captures a party set's delta-comparable content over a system.
func Snapshot(sys *System, parties []*Party) *DeltaRevision {
	return core.Snapshot(sys, parties)
}

// CompareRevisions diffs two revision snapshots into a re-assertion plan.
func CompareRevisions(old, new *DeltaRevision) *DeltaPlan {
	return delta.Compare(old, new)
}

// SetPortfolioWorkers sets the package-wide portfolio width for workflow
// solves and returns the previous value: n > 1 races n diversified solver
// configurations per solve, n ≤ 1 solves sequentially. Safe to call
// concurrently with running queries.
func SetPortfolioWorkers(n int) int { return core.SetPortfolioWorkers(n) }

// PortfolioWorkers reports the current portfolio width.
func PortfolioWorkers() int { return core.PortfolioWorkers() }

// Encoding is the package-wide encoding-pipeline configuration: the zero
// value (polarity-aware Tseitin, AIG sweeping, CNF preprocessing all on)
// is the default; the switches are ablation/escape hatches. Like the
// portfolio width, changing it never changes verdicts, model validity, or
// blame cores — only encoding size and speed.
type Encoding = core.Encoding

// EncodingStats sizes the encoding pipeline across a SolveCache's live
// sessions (circuit nodes, solver variables/clauses, preprocessing wins).
type EncodingStats = core.EncodingStats

// SetEncoding installs the encoding configuration for subsequently built
// sessions and returns the previous one. Safe to call concurrently with
// running queries.
func SetEncoding(e Encoding) Encoding { return core.SetEncoding(e) }

// EncodingConfig reports the current encoding configuration.
func EncodingConfig() Encoding { return core.EncodingConfig() }

// SetInprocessTuning installs the solver inprocessing tuning — the
// vivification propagation budget per round and the BVE tick period — for
// subsequently built sessions (0 = solver default, negative budget
// disables vivification) and returns the previous pair. Safe to call
// concurrently with running queries.
func SetInprocessTuning(vivifyPropBudget, bveTickPeriod int64) (int64, int64) {
	return core.SetInprocessTuning(vivifyPropBudget, bveTickPeriod)
}

// FanOut serves n independent workflow queries across a bounded goroutine
// pool sharing one (immutable) System; each task owns its parties and any
// SolveCache. The first error cancels the rest.
func FanOut(ctx context.Context, workers, n int, task func(ctx context.Context, i int) error) error {
	return core.FanOut(ctx, workers, n, task)
}

// Negotiation terminal reasons.
const (
	ReasonReconciled      = core.ReasonReconciled
	ReasonExhaustedRounds = core.ReasonExhaustedRounds
	ReasonAllStuck        = core.ReasonAllStuck
	ReasonIndeterminate   = core.ReasonIndeterminate
)

// Scenario generation for experiments.
type (
	// Scenario is a synthetic multi-party configuration problem.
	Scenario = scenario.Scenario
	// ScenarioParams sizes a generated scenario.
	ScenarioParams = scenario.Params
)

// Port-cell kinds, re-exported from package goals.
const (
	PortLit = goals.PortLit
	PortAny = goals.PortAny
	PortVar = goals.PortVar
)

// LitPort builds a concrete port term.
func LitPort(p int) PortTerm { return goals.LitPort(p) }

// AnyPort builds the `*` port term.
func AnyPort() PortTerm { return goals.AnyPort() }

// VarPort builds an existential port variable term.
func VarPort(name string) PortTerm { return goals.VarPort(name) }

// Configurable field identifiers, re-exported from package encode.
const (
	FieldKIngressDeny  = encode.FieldKIngressDeny
	FieldKIngressAllow = encode.FieldKIngressAllow
	FieldKEgressDeny   = encode.FieldKEgressDeny
	FieldKEgressAllow  = encode.FieldKEgressAllow
	FieldIDenyTo       = encode.FieldIDenyTo
	FieldIAllowTo      = encode.FieldIAllowTo
	FieldIDenyFrom     = encode.FieldIDenyFrom
	FieldIAllowFrom    = encode.FieldIAllowFrom
	FieldExposure      = encode.FieldExposure
)

// --- loading ---

// LoadFiles decodes YAML files (Services, NetworkPolicies,
// AuthorizationPolicies) into one bundle.
func LoadFiles(paths ...string) (*Bundle, error) { return mesh.LoadFiles(paths...) }

// ParseAll decodes a multi-document YAML stream.
func ParseAll(data []byte) (*Bundle, error) { return mesh.ParseAll(data) }

// LoadK8sGoals reads a Fig. 2-style CSV goal table.
func LoadK8sGoals(path string) ([]K8sGoal, error) { return goals.LoadK8sGoals(path) }

// LoadIstioGoals reads a Figs. 3/4-style CSV goal table.
func LoadIstioGoals(path string) ([]IstioGoal, error) { return goals.LoadIstioGoals(path) }

// --- system & parties ---

// NewSystem fixes the logical vocabulary for a mesh, the two parties'
// policy shells, and any extra ports goals may mention.
func NewSystem(m *Mesh, k8sShells []*NetworkPolicy, istioShells []*AuthorizationPolicy, extraPorts []int) (*System, error) {
	return encode.NewSystem(m, k8sShells, istioShells, extraPorts)
}

// NewK8sParty builds the Kubernetes administrator party.
func NewK8sParty(sys *System, cfg *K8sConfig, offer Offer, rows []K8sGoal) (*Party, *K8sPartyState, error) {
	return core.NewK8sParty(sys, cfg, offer, rows)
}

// NewIstioParty builds the Istio administrator party.
func NewIstioParty(sys *System, cfg *IstioConfig, offer Offer, rows []IstioGoal) (*Party, *IstioPartyState, error) {
	return core.NewIstioParty(sys, cfg, offer, rows)
}

// AllSoft marks every knob soft: a full configuration open to compromise.
func AllSoft() Offer { return encode.AllSoft() }

// AllHoles marks every knob a hole: complete flexibility.
func AllHoles() Offer { return encode.AllHoles() }

// --- algorithms & workflows ---

// LocalConsistency is Alg. 1: complete the subject's offer, all other
// parties free, to satisfy the subject's goals.
func LocalConsistency(sys *System, subject *Party, others []*Party) *Result {
	return core.LocalConsistency(sys, subject, others)
}

// LocalConsistencyCtx is LocalConsistency under a cancellation context and
// a solver work budget.
func LocalConsistencyCtx(ctx context.Context, sys *System, subject *Party, others []*Party, b Budget) *Result {
	return core.LocalConsistencyCtx(ctx, sys, subject, others, b)
}

// Reconcile is Alg. 2: complete every party's offer so that the union of
// configurations satisfies the union of goals.
func Reconcile(sys *System, parties []*Party) *Result {
	return core.Reconcile(sys, parties)
}

// ReconcileCtx is Reconcile under a cancellation context and a solver work
// budget; on exhaustion the result is Indeterminate, never a bogus core.
func ReconcileCtx(ctx context.Context, sys *System, parties []*Party, b Budget) *Result {
	return core.ReconcileCtx(ctx, sys, parties, b)
}

// ComputeEnvelope is Alg. 3: the senders' goals, modulo their concrete
// settings, expressed over the recipient's domain.
func ComputeEnvelope(sys *System, recipient *Party, senders []*Party) *Envelope {
	return core.ComputeEnvelope(sys, recipient, senders)
}

// ComputeEnvelopeCtx is ComputeEnvelope gated on a cancellation context.
func ComputeEnvelopeCtx(ctx context.Context, sys *System, recipient *Party, senders []*Party) (*Envelope, error) {
	return core.ComputeEnvelopeCtx(ctx, sys, recipient, senders)
}

// CheckCandidate is the first half of the Fig. 8 revision aid.
func CheckCandidate(sys *System, p *Party, env *Envelope, withOwnGoals bool, others ...*Party) (bool, []relational.Formula) {
	return core.CheckCandidate(sys, p, env, withOwnGoals, others...)
}

// MinimalEdit is the second half of Fig. 8: satisfy the constraints with
// minimal deviation from the party's soft preferences.
func MinimalEdit(sys *System, p *Party, constraints []relational.Formula, others ...*Party) *Result {
	return core.MinimalEdit(sys, p, constraints, others...)
}

// MinimalEditCtx is MinimalEdit under a cancellation context and a solver
// work budget; an interrupted search degrades to the best valid
// completion found.
func MinimalEditCtx(ctx context.Context, sys *System, p *Party, constraints []relational.Formula, b Budget, others ...*Party) *Result {
	return core.MinimalEditCtx(ctx, sys, p, constraints, b, others...)
}

// GoalsCompatible compares a received envelope with the recipient's goals
// (Sec. 3's second envelope use): can ANY recipient configuration satisfy
// both? If not, the recipient's goals must change.
func GoalsCompatible(sys *System, recipient *Party, env *Envelope, senders ...*Party) *Result {
	return core.GoalsCompatible(sys, recipient, env, senders...)
}

// RunConformance drives the Fig. 7 conformance workflow.
func RunConformance(sys *System, provider, tenant *Party) *ConformanceOutcome {
	return core.RunConformance(sys, provider, tenant)
}

// RunConformanceCtx is RunConformance under a cancellation context and a
// solver work budget shared by every solve of the workflow.
func RunConformanceCtx(ctx context.Context, sys *System, provider, tenant *Party, b Budget) *ConformanceOutcome {
	return core.RunConformanceCtx(ctx, sys, provider, tenant, b)
}

// NewNegotiation registers parties for the Fig. 9 negotiation workflow.
func NewNegotiation(sys *System, parties ...*Party) *Negotiation {
	return core.NewNegotiation(sys, parties...)
}

// SynthesizeMonolithic is the Fig. 6 single-shot baseline over the union
// of all goals, with no partiality or negotiation.
func SynthesizeMonolithic(sys *System, parties []*Party) *Result {
	return core.SynthesizeMonolithic(sys, parties)
}

// --- runtime evaluation ---

// Evaluate decides one flow under concrete configurations, with a reason
// on denial.
func Evaluate(m *Mesh, k8s *K8sConfig, istio *IstioConfig, f Flow) Verdict {
	return mesh.Evaluate(m, k8s, istio, f)
}

// Allowed is Evaluate without the explanation.
func Allowed(m *Mesh, k8s *K8sConfig, istio *IstioConfig, f Flow) bool {
	return mesh.Allowed(m, k8s, istio, f)
}

// ReachabilityMatrix reports, per ordered service pair, the destination
// ports on which traffic is allowed.
func ReachabilityMatrix(m *Mesh, k8s *K8sConfig, istio *IstioConfig) map[string][]int {
	return mesh.ReachabilityMatrix(m, k8s, istio)
}

// GenerateScenario builds a deterministic synthetic scenario for
// experiments and benchmarks.
func GenerateScenario(p ScenarioParams) *Scenario { return scenario.Generate(p) }

// EnglishEnvelope renders an envelope as administrator-facing prose — the
// paper's Fig. 5 caption form (and its Sec. 7 "Presentation" question).
// Clauses the renderer does not recognise fall back to Alloy-like syntax.
func EnglishEnvelope(sys *System, env *Envelope) string {
	var b strings.Builder
	b.WriteString("Envelope ")
	b.WriteString(env.Name())
	b.WriteString(":\n")
	if env.Trivial() {
		b.WriteString("no obligations — the sender's goals are satisfied by its own settings.\n")
		return b.String()
	}
	for _, c := range env.Clauses {
		b.WriteString(sys.English(c))
	}
	return b.String()
}
