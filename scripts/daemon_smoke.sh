#!/bin/sh
# Daemon smoke test: build muppetd and exercise both serving modes.
#
# Phase 1 (single tenant): start over the Fig. 1 testdata, probe
# /healthz, run one check, then SIGTERM it and assert a clean drain.
#
# Phase 2 (multi tenant): start over a -tenant-dir with two tenants,
# serve both, hot-reload one mid-traffic (both keep answering, the
# revision advances), pick up a third tenant via SIGHUP, and check the
# muppetd_tenant_* metrics.
#
# Phase 3 (federated): two peer daemons (one with fault injection on),
# a CLI coordinator negotiating across them through the injected 500s,
# then a kill/restart of one peer followed by a second negotiation, and
# `muppet transcript verify` over the accumulated transcript.
#
# Phase 4 (watch mode): a `muppet watch` client follows a tenant's
# reconcile verdict across a SIGHUP-reloaded goal edit; the streamed
# revision-2 answer must be served warm (delta rebase) yet match the
# cold CLI reconcile of the new bundle byte for byte, and `muppet diff`
# must report the same one-tuple edit between the two revisions.
# Run from the repository root (`make smoke`).
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
pid2=""
traffic_pid=""
cleanup() {
	[ -n "$traffic_pid" ] && kill "$traffic_pid" 2>/dev/null || true
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	[ -n "$pid2" ] && kill "$pid2" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/muppetd" ./cmd/muppetd
$GO build -o "$tmp/muppet" ./cmd/muppet

# wait_addr <log>: scrape the bound address once the listener is up.
wait_addr() {
	addr=""
	i=0
	while [ $i -lt 100 ]; do
		addr="$(sed -n 's/.*serving .* on http:\/\/\([^ ]*\).*/\1/p' "$1" | head -n 1)"
		[ -n "$addr" ] && break
		kill -0 "$pid" 2>/dev/null || break
		i=$((i + 1))
		sleep 0.1
	done
	if [ -z "$addr" ]; then
		echo "daemon smoke: muppetd never came up" >&2
		cat "$1" >&2
		exit 1
	fi
}

# expect_sat <url> <body>: POST a request and require a code-0 verdict.
expect_sat() {
	verdict="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$2" "$1")"
	case "$verdict" in
	*'"code":0'*) ;;
	*)
		echo "daemon smoke: unexpected verdict from $1: $verdict" >&2
		exit 1
		;;
	esac
}

# stop_daemon <log>: SIGTERM and require a clean drain.
stop_daemon() {
	kill -TERM "$pid"
	if ! wait "$pid"; then
		echo "daemon smoke: muppetd exited non-zero" >&2
		cat "$1" >&2
		exit 1
	fi
	pid=""
	grep -q "drained" "$1" || {
		echo "daemon smoke: no clean drain in log" >&2
		cat "$1" >&2
		exit 1
	}
}

# --- Phase 1: single-tenant mode -------------------------------------

"$tmp/muppetd" -addr 127.0.0.1:0 \
	-files testdata/fig1/mesh.yaml,testdata/fig1/k8s_current.yaml,testdata/fig1/istio_current.yaml \
	-k8s-goals testdata/fig1/k8s_goals.csv \
	-istio-goals testdata/fig1/istio_goals_revised.csv \
	-k8s-offer soft -istio-offer soft \
	>"$tmp/log" 2>&1 &
pid=$!
wait_addr "$tmp/log"

curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS "http://$addr/readyz" >/dev/null

expect_sat "http://$addr/v1/check" '{"party":"k8s"}'

curl -fsS "http://$addr/metrics" | grep '^muppetd_requests_total{op="check",code="0"} 1$' >/dev/null || {
	echo "daemon smoke: /metrics did not count the check" >&2
	exit 1
}

stop_daemon "$tmp/log"
echo "daemon smoke: single-tenant OK ($addr)"

# --- Phase 2: multi-tenant mode --------------------------------------

# mktenant <id> <banned-port>: one tenant bundle under $tmp/tenants.
mktenant() {
	td="$tmp/tenants/$1"
	mkdir -p "$td"
	cp testdata/fig1/mesh.yaml testdata/fig1/k8s_current.yaml \
		testdata/fig1/istio_current.yaml testdata/fig1/istio_goals_revised.csv "$td/"
	printf 'port,perm,selector\n%s,DENY,*\n' "$2" >"$td/k8s_goals.csv"
	cat >"$td/tenant.yaml" <<-'EOF'
		files:
		  - mesh.yaml
		  - k8s_current.yaml
		  - istio_current.yaml
		k8s-goals: k8s_goals.csv
		istio-goals: istio_goals_revised.csv
		k8s-offer: soft
		istio-offer: soft
	EOF
}

mktenant alpha 23
mktenant bravo 24

"$tmp/muppetd" -addr 127.0.0.1:0 -tenant-dir "$tmp/tenants" -cache-budget-mb 64 \
	>"$tmp/log2" 2>&1 &
pid=$!
wait_addr "$tmp/log2"

expect_sat "http://$addr/t/alpha/check" '{"party":"k8s"}'
expect_sat "http://$addr/t/bravo/check" '{"party":"k8s"}'

# Hot-reload alpha mid-traffic: keep requests flowing at both tenants
# while alpha's goals change on disk and an admin reload swaps them in.
(
	while :; do
		curl -fsS -X POST -H 'Content-Type: application/json' \
			-d '{"party":"k8s"}' "http://$addr/t/alpha/check" >>"$tmp/traffic" 2>/dev/null || true
		curl -fsS -X POST -H 'Content-Type: application/json' \
			-d '{}' "http://$addr/t/bravo/reconcile" >>"$tmp/traffic" 2>/dev/null || true
	done
) &
traffic_pid=$!

printf 'port,perm,selector\n25,DENY,*\n' >"$tmp/tenants/alpha/k8s_goals.csv"
reload="$(curl -fsS -X POST "http://$addr/tenants/alpha/reload")"
case "$reload" in
*'"swapped":true'*) ;;
*)
	echo "daemon smoke: reload did not swap: $reload" >&2
	exit 1
	;;
esac

# Both tenants must still answer after the swap.
expect_sat "http://$addr/t/alpha/check" '{"party":"k8s"}'
expect_sat "http://$addr/t/bravo/check" '{"party":"k8s"}'
kill "$traffic_pid" 2>/dev/null || true
wait "$traffic_pid" 2>/dev/null || true
traffic_pid=""
grep -q '"code":[^0]' "$tmp/traffic" && {
	echo "daemon smoke: non-sat verdict during hot reload" >&2
	exit 1
}

curl -fsS "http://$addr/tenants" | grep -q '"id":"alpha","revision":2' || {
	echo "daemon smoke: /tenants did not report alpha at revision 2" >&2
	curl -fsS "http://$addr/tenants" >&2 || true
	exit 1
}

# SIGHUP rescan picks up a tenant dropped into the directory.
mktenant gamma 26
kill -HUP "$pid"
i=0
while [ $i -lt 100 ]; do
	curl -fsS "http://$addr/tenants" | grep -q '"id":"gamma"' && break
	i=$((i + 1))
	sleep 0.1
done
expect_sat "http://$addr/t/gamma/check" '{"party":"k8s"}'

metrics="$(curl -fsS "http://$addr/metrics")"
echo "$metrics" | grep -q '^muppetd_tenants 3$' || {
	echo "daemon smoke: muppetd_tenants != 3" >&2
	exit 1
}
echo "$metrics" | grep -q '^muppetd_tenant_revision{tenant="alpha"} 2$' || {
	echo "daemon smoke: alpha revision metric missing" >&2
	exit 1
}
echo "$metrics" | grep -q '^muppetd_tenant_requests_total{tenant="bravo",op="check",code="0"}' || {
	echo "daemon smoke: per-tenant request counter missing" >&2
	exit 1
}
echo "$metrics" | grep -q '^muppetd_cache_budget_bytes 67108864$' || {
	echo "daemon smoke: cache budget metric missing" >&2
	exit 1
}

stop_daemon "$tmp/log2"
echo "daemon smoke: multi-tenant OK ($addr)"

# --- Phase 3: federated negotiation across two peer daemons ----------

# Each peer daemon holds ONLY its own goals, as real trust domains would;
# -ports carries the other side's goal ports so all universes agree.
# The Istio peer runs with deterministic fault injection (latency + 500s)
# so the coordinator's retry machinery is exercised, not just present.
"$tmp/muppetd" -addr 127.0.0.1:0 -fed-party k8s \
	-files testdata/fig1/mesh.yaml,testdata/fig1/k8s_current.yaml,testdata/fig1/istio_current.yaml \
	-k8s-goals testdata/fig1/k8s_goals.csv -k8s-offer soft \
	-ports 10000,12000,14000,16000 \
	>"$tmp/log3k" 2>&1 &
pid=$!
wait_addr "$tmp/log3k"
k8s_addr="$addr"

start_istio_peer() {
	"$tmp/muppetd" -addr "$1" -fed-party istio \
		-files testdata/fig1/mesh.yaml,testdata/fig1/k8s_current.yaml,testdata/fig1/istio_current.yaml \
		-istio-goals testdata/fig1/istio_goals_revised.csv -istio-offer soft \
		-ports 23 \
		$2 >"$3" 2>&1 &
	pid2=$!
}

# fault-seed 2 is pinned so the error class deterministically fires on
# the coordinator's first Istio request (and the retry then rides
# through) without ever tripping the breaker's 3-consecutive threshold.
start_istio_peer 127.0.0.1:0 "-fault-spec latency=10ms:0.5,error=0.4 -fault-seed 2" "$tmp/log3i"
save_pid="$pid"
pid="$pid2"
wait_addr "$tmp/log3i"
pid="$save_pid"
istio_addr="$addr"

# negotiate_federated <transcript-file>: one CLI-coordinated run. Each
# run writes its own HMAC chain (a chain spans one negotiation).
negotiate_federated() {
	"$tmp/muppet" negotiate \
		-files testdata/fig1/mesh.yaml,testdata/fig1/k8s_current.yaml,testdata/fig1/istio_current.yaml \
		-k8s-goals testdata/fig1/k8s_goals.csv -k8s-offer soft \
		-istio-goals testdata/fig1/istio_goals_revised.csv -istio-offer soft \
		-federated -peers "k8s=http://$k8s_addr,istio=http://$istio_addr" \
		-retries 6 -transcript "$1" -transcript-key smoke-key -v
}

negotiate_federated "$tmp/transcript1.log" >"$tmp/nego1" || {
	echo "daemon smoke: federated negotiation failed under fault injection" >&2
	cat "$tmp/nego1" "$tmp/log3i" >&2
	exit 1
}
grep -q '^NEGOTIATED$' "$tmp/nego1" || {
	echo "daemon smoke: federated run did not converge" >&2
	cat "$tmp/nego1" >&2
	exit 1
}
# The injected 500 must actually have been retried through, or the
# chaos leg tested nothing.
grep -q '// fed: .*retries: .*Istio=[1-9]' "$tmp/nego1" || {
	echo "daemon smoke: fault injection never fired (no Istio retries)" >&2
	cat "$tmp/nego1" >&2
	exit 1
}

# Kill the faulty Istio peer and restart it (clean) on the same address;
# a second negotiation must converge against the fresh incarnation.
kill -TERM "$pid2"
wait "$pid2" 2>/dev/null || true
pid2=""
start_istio_peer "$istio_addr" "" "$tmp/log3i2"
i=0
while [ $i -lt 100 ]; do
	curl -fsS "http://$istio_addr/readyz" >/dev/null 2>&1 && break
	i=$((i + 1))
	sleep 0.1
done

negotiate_federated "$tmp/transcript2.log" >"$tmp/nego2" || {
	echo "daemon smoke: federated negotiation failed after peer restart" >&2
	cat "$tmp/nego2" "$tmp/log3i2" >&2
	exit 1
}
grep -q '^NEGOTIATED$' "$tmp/nego2" || {
	echo "daemon smoke: post-restart federated run did not converge" >&2
	cat "$tmp/nego2" >&2
	exit 1
}

# Both transcripts' HMAC chains must verify end to end.
for tr in "$tmp/transcript1.log" "$tmp/transcript2.log"; do
	"$tmp/muppet" transcript verify -key smoke-key "$tr" >"$tmp/verify" || {
		echo "daemon smoke: transcript verification failed for $tr" >&2
		cat "$tmp/verify" >&2
		exit 1
	}
	grep -q '^OK: ' "$tmp/verify" || {
		echo "daemon smoke: unexpected transcript verdict for $tr" >&2
		cat "$tmp/verify" >&2
		exit 1
	}
done

kill -TERM "$pid2" 2>/dev/null || true
wait "$pid2" 2>/dev/null || true
pid2=""
stop_daemon "$tmp/log3k"
echo "daemon smoke: federated OK (k8s=$k8s_addr istio=$istio_addr, $(cat "$tmp/verify"))"

# --- Phase 4: watch mode and delta re-reconciliation -----------------

rm -rf "$tmp/tenants"
mktenant delta 23
# Keep a copy of revision 1 so `muppet diff` can compare it afterwards.
cp -r "$tmp/tenants/delta" "$tmp/rev1"

"$tmp/muppetd" -addr 127.0.0.1:0 -tenant-dir "$tmp/tenants" \
	>"$tmp/log4" 2>&1 &
pid=$!
wait_addr "$tmp/log4"

# The watch client exits by itself after two events: the baseline and
# the post-reload revision. -raw keeps the output machine-comparable.
"$tmp/muppet" watch -addr "$addr" -tenant delta -op reconcile -events 2 -raw \
	>"$tmp/watch.out" 2>&1 &
traffic_pid=$!

i=0
while [ $i -lt 100 ]; do
	grep -q '^=== revision 1 ' "$tmp/watch.out" && break
	i=$((i + 1))
	sleep 0.1
done
grep -q '^=== revision 1 ' "$tmp/watch.out" || {
	echo "daemon smoke: watch client never saw the baseline" >&2
	cat "$tmp/watch.out" "$tmp/log4" >&2
	exit 1
}

# One-tuple goal edit that keeps the universe: flip the port-23 ban to
# an allow, then SIGHUP so the daemon rescans and publishes revision 2.
printf 'port,perm,selector\n23,ALLOW,*\n' >"$tmp/tenants/delta/k8s_goals.csv"
kill -HUP "$pid"
if ! wait "$traffic_pid"; then
	echo "daemon smoke: watch client failed" >&2
	cat "$tmp/watch.out" "$tmp/log4" >&2
	exit 1
fi
traffic_pid=""

grep -q '^=== revision 2 ' "$tmp/watch.out" || {
	echo "daemon smoke: watch client never saw revision 2" >&2
	cat "$tmp/watch.out" "$tmp/log4" >&2
	exit 1
}

# The streamed revision-2 verdict must equal the cold CLI reconcile of
# the edited bundle, byte for byte.
sed -n '/^=== revision 2 /,$p' "$tmp/watch.out" | sed '1d' >"$tmp/watch.rev2"
"$tmp/muppet" reconcile \
	-files "$tmp/tenants/delta/mesh.yaml,$tmp/tenants/delta/k8s_current.yaml,$tmp/tenants/delta/istio_current.yaml" \
	-k8s-goals "$tmp/tenants/delta/k8s_goals.csv" \
	-istio-goals "$tmp/tenants/delta/istio_goals_revised.csv" \
	-k8s-offer soft -istio-offer soft >"$tmp/cold.rev2"
cmp -s "$tmp/watch.rev2" "$tmp/cold.rev2" || {
	echo "daemon smoke: watch-mode verdict differs from cold reconcile" >&2
	diff "$tmp/cold.rev2" "$tmp/watch.rev2" >&2 || true
	exit 1
}

# The daemon must have served revision 2 warm, and counted the watcher.
metrics="$(curl -fsS "http://$addr/metrics")"
echo "$metrics" | grep -q '^muppetd_watch_events_total [1-9]' || {
	echo "daemon smoke: watch events metric missing" >&2
	exit 1
}

# muppet diff between the kept revision-1 copy and the live bundle:
# exit 1 (changed) without -op, and a warm rebase serving it with -op.
if "$tmp/muppet" diff -before "$tmp/rev1" -after "$tmp/tenants/delta" >"$tmp/diff.out"; then
	echo "daemon smoke: diff reported no change for a changed bundle" >&2
	cat "$tmp/diff.out" >&2
	exit 1
fi
"$tmp/muppet" diff -before "$tmp/rev1" -after "$tmp/tenants/delta" -op reconcile >"$tmp/diff2.out" || {
	echo "daemon smoke: diff -op reconcile failed" >&2
	cat "$tmp/diff2.out" >&2
	exit 1
}
grep -q '^// delta: warm rebase' "$tmp/diff2.out" || {
	echo "daemon smoke: diff -op did not serve warm" >&2
	cat "$tmp/diff2.out" >&2
	exit 1
}

stop_daemon "$tmp/log4"
echo "daemon smoke: watch mode OK ($addr)"
echo "daemon smoke OK"
