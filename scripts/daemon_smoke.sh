#!/bin/sh
# Daemon smoke test: build muppetd, start it on an ephemeral port over the
# Fig. 1 testdata, probe /healthz, run one check, then SIGTERM it and
# assert a clean drain. Run from the repository root (`make smoke`).
set -eu

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

$GO build -o "$tmp/muppetd" ./cmd/muppetd

"$tmp/muppetd" -addr 127.0.0.1:0 \
	-files testdata/fig1/mesh.yaml,testdata/fig1/k8s_current.yaml,testdata/fig1/istio_current.yaml \
	-k8s-goals testdata/fig1/k8s_goals.csv \
	-istio-goals testdata/fig1/istio_goals_revised.csv \
	-k8s-offer soft -istio-offer soft \
	>"$tmp/log" 2>&1 &
pid=$!

# The daemon logs its bound address once the listener is up.
addr=""
i=0
while [ $i -lt 100 ]; do
	addr="$(sed -n 's/.*serving on http:\/\/\([^ ]*\).*/\1/p' "$tmp/log" | head -n 1)"
	[ -n "$addr" ] && break
	kill -0 "$pid" 2>/dev/null || break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "daemon smoke: muppetd never came up" >&2
	cat "$tmp/log" >&2
	exit 1
fi

curl -fsS "http://$addr/healthz" >/dev/null
curl -fsS "http://$addr/readyz" >/dev/null

verdict="$(curl -fsS -X POST -H 'Content-Type: application/json' \
	-d '{"party":"k8s"}' "http://$addr/v1/check")"
case "$verdict" in
*'"code":0'*) ;;
*)
	echo "daemon smoke: unexpected check verdict: $verdict" >&2
	exit 1
	;;
esac

curl -fsS "http://$addr/metrics" | grep -q '^muppetd_requests_total{op="check",code="0"} 1$' || {
	echo "daemon smoke: /metrics did not count the check" >&2
	exit 1
}

kill -TERM "$pid"
if ! wait "$pid"; then
	echo "daemon smoke: muppetd exited non-zero" >&2
	cat "$tmp/log" >&2
	exit 1
fi
pid=""
grep -q "drained" "$tmp/log" || {
	echo "daemon smoke: no clean drain in log" >&2
	cat "$tmp/log" >&2
	exit 1
}
echo "daemon smoke OK ($addr)"
