package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"muppet"
)

// Options tunes the serving machinery.
type Options struct {
	// Concurrency is the number of solver workers (0 = GOMAXPROCS). Each
	// worker owns one SolveCache, so memory scales with this knob.
	Concurrency int
	// QueueDepth bounds the admission queue beyond the in-flight jobs
	// (0 = 2×Concurrency). Overflow is rejected with 429.
	QueueDepth int
	// MaxTimeout caps per-request deadlines and is the default when a
	// request names none (0 = no cap, no default).
	MaxTimeout time.Duration
}

// workerSlot pairs a worker's private warm SolveCache with a snapshot of
// its stats. The cache is single-goroutine and only its owning worker
// touches it; the snapshot is refreshed under mu after every job, so the
// metrics scrape path never races the solver.
type workerSlot struct {
	cache *muppet.SolveCache

	mu        sync.Mutex
	stats     muppet.ReuseStats
	portfolio []muppet.WorkerStats
}

// Server is the mediation daemon's HTTP surface: the five workflow
// endpoints under /v1/, health and readiness probes, and /metrics. It is
// an http.Handler; lifecycle is driven from outside via Drain,
// CancelSolves, and Close (see cmd/muppetd for the signal wiring).
type Server struct {
	st      *State
	opts    Options
	pool    *pool
	slots   []*workerSlot
	metrics *metrics
	mux     *http.ServeMux

	draining     chan struct{} // closed by Drain
	drainOnce    sync.Once
	solveCtx     context.Context // cancelled by CancelSolves
	cancelSolves context.CancelFunc

	// execFn is the per-job execution function, a seam tests override to
	// simulate slow solves without burning CPU.
	execFn func(ctx context.Context, slot *workerSlot, req Request, b muppet.Budget) (Response, error)
}

// New builds a Server over the loaded state and starts its worker pool.
func New(st *State, opts Options) *Server {
	if opts.Concurrency <= 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Concurrency
	}
	s := &Server{
		st:       st,
		opts:     opts,
		metrics:  newMetrics(),
		draining: make(chan struct{}),
	}
	s.solveCtx, s.cancelSolves = context.WithCancel(context.Background())
	s.execFn = func(ctx context.Context, slot *workerSlot, req Request, b muppet.Budget) (Response, error) {
		return Exec(ctx, s.st, slot.cache, req, b)
	}
	s.slots = make([]*workerSlot, opts.Concurrency)
	for i := range s.slots {
		s.slots[i] = &workerSlot{cache: muppet.NewSolveCache()}
	}
	s.pool = newPool(opts.Concurrency, opts.QueueDepth, s.runJob)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/", s.handleOp)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admitting work: /readyz flips to 503 and new workflow
// requests are refused, while in-flight and queued jobs keep running.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// CancelSolves cancels every in-flight and future solve — the drain
// grace timer's hammer. Interrupted solves surface as structured
// indeterminate responses, never torn ones.
func (s *Server) CancelSolves() { s.cancelSolves() }

// Close drains the queue and waits for the workers to exit. Call after
// the HTTP listener has stopped accepting.
func (s *Server) Close() {
	s.Drain()
	s.pool.close()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// runJob executes one dequeued job on worker w's slot. The deadline
// clock starts here — queue wait does not consume solve budget — and the
// solve context is the request context merged with the server-wide
// cancel, so either a vanished client or a drain hammer stops it.
func (s *Server) runJob(ctx context.Context, w int, j *job) (Response, error) {
	slot := s.slots[w]
	timeout := j.timeout
	if s.opts.MaxTimeout > 0 && (timeout <= 0 || timeout > s.opts.MaxTimeout) {
		timeout = s.opts.MaxTimeout
	}
	b := muppet.Budget{MaxConflicts: j.maxConflicts}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.solveCtx, cancel)
	defer stop()
	if timeout > 0 {
		b.Deadline = time.Now().Add(timeout)
		var cancelDL context.CancelFunc
		ctx, cancelDL = context.WithDeadline(ctx, b.Deadline)
		defer cancelDL()
	}
	resp, err := s.execFn(ctx, slot, j.req, b)
	slot.mu.Lock()
	slot.stats = slot.cache.Stats()
	slot.portfolio = slot.cache.Workers()
	slot.mu.Unlock()
	return resp, err
}

// reuseSnapshot sums the per-worker stats snapshots.
func (s *Server) reuseSnapshot() (muppet.ReuseStats, []muppet.WorkerStats) {
	var agg muppet.ReuseStats
	var portfolio []muppet.WorkerStats
	for _, slot := range s.slots {
		slot.mu.Lock()
		agg.Add(slot.stats)
		if slot.portfolio != nil {
			portfolio = slot.portfolio
		}
		slot.mu.Unlock()
	}
	return agg, portfolio
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ready\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reuse, portfolio := s.reuseSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.pool.depth(), s.pool.capacity(), len(s.slots), reuse, portfolio)
}

// Budget headers. The timeout is a Go duration string; the conflict cap
// a decimal integer. Absent headers mean "server defaults" (MaxTimeout).
const (
	HeaderTimeout      = "X-Muppet-Timeout"
	HeaderMaxConflicts = "X-Muppet-Max-Conflicts"
)

func (s *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/v1/")
	known := false
	for _, o := range Ops() {
		if o == op {
			known = true
			break
		}
	}
	if !known {
		http.Error(w, fmt.Sprintf("unknown op %q", op), http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req Request
	if body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	} else if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	req.Op = op

	var timeout time.Duration
	if h := r.Header.Get(HeaderTimeout); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d < 0 {
			http.Error(w, "bad "+HeaderTimeout+" header", http.StatusBadRequest)
			return
		}
		timeout = d
	}
	var maxConflicts int64
	if h := r.Header.Get(HeaderMaxConflicts); h != "" {
		n, err := strconv.ParseInt(h, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad "+HeaderMaxConflicts+" header", http.StatusBadRequest)
			return
		}
		maxConflicts = n
	}

	start := time.Now()
	j := &job{
		ctx:          r.Context(),
		req:          req,
		timeout:      timeout,
		maxConflicts: maxConflicts,
		done:         make(chan jobResult, 1),
	}
	if !s.pool.admit(j) {
		s.metrics.reject()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
		return
	}
	select {
	case res := <-j.done:
		if res.err != nil {
			if errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded) {
				s.metrics.drop()
				return // client is gone; nothing to write
			}
			code := http.StatusInternalServerError
			if errors.Is(res.err, ErrUsage) {
				code = http.StatusBadRequest
			}
			http.Error(w, res.err.Error(), code)
			return
		}
		s.metrics.observe(op, res.resp.Code, time.Since(start).Seconds())
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res.resp)
	case <-r.Context().Done():
		// The client hung up; the worker (or the queue scan) will notice
		// via the job context and discard the result.
		s.metrics.drop()
	}
}
