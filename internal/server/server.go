package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"muppet"
	"muppet/internal/feder"
	"muppet/internal/tenant"
)

// DefaultTenant is the tenant ID a single-bundle daemon serves under,
// and the tenant /v1/ requests implicitly address. Single-bundle startup
// is just the degenerate one-tenant registry.
const DefaultTenant = "default"

// Options tunes the serving machinery.
type Options struct {
	// Concurrency is the number of solver workers (0 = GOMAXPROCS).
	Concurrency int
	// QueueDepth bounds the admission queue beyond the in-flight jobs
	// (0 = 2×Concurrency). Overflow is rejected with 429.
	QueueDepth int
	// MaxTimeout caps per-request deadlines and is the default when a
	// request names none (0 = no cap, no default).
	MaxTimeout time.Duration
	// CacheBudgetBytes bounds the idle warm-cache memory across all
	// tenants (0 = unlimited); see tenant.Ledger. Only read by New —
	// NewMulti callers size the ledger themselves.
	CacheBudgetBytes int64
	// Router maps workflow methods to solver pools (nil = every method on
	// one warm-cache pool, the pre-routing behaviour).
	Router *tenant.Router
	// FedParty, when "k8s" or "istio", mounts the federated negotiation
	// peer protocol under /fed/, serving that side of the default
	// tenant's bundle to a remote coordinator ("" = not a peer).
	FedParty string
	// WatchPollTimeout bounds a watch long-poll with no event before the
	// 204 re-poll hint (0 = DefaultWatchPollTimeout).
	WatchPollTimeout time.Duration
	// WatchMaxEvents caps events per SSE watcher before the stream is
	// closed with a terminal budget event (0 = unlimited).
	WatchMaxEvents int
}

// Server is the mediation daemon's HTTP surface: the workflow endpoints
// under /v1/ (default tenant) and /t/{tenant}/, health and readiness
// probes, /metrics, and the /tenants admin surface. It is an
// http.Handler; lifecycle is driven from outside via Drain,
// CancelSolves, and Close (see cmd/muppetd for the signal wiring).
//
// Solving state lives in a tenant.Registry: each tenant's immutable
// State plus a pool of warm SolveCaches under the registry ledger's
// global memory budget. Workers are stateless — a request checks a cache
// out of its tenant's pool for the duration of a solve — so hot tenants
// naturally occupy more of the budget and a hot reload swaps a tenant
// without touching its neighbours.
type Server struct {
	registry *tenant.Registry[*State]
	router   *tenant.Router
	opts     Options
	pool     *pool
	metrics  *metrics
	mux      *http.ServeMux
	watch    *watchHub

	draining     chan struct{} // closed by Drain
	drainOnce    sync.Once
	solveCtx     context.Context // cancelled by CancelSolves
	cancelSolves context.CancelFunc

	// execFn runs one request against one tenant state on one cache (nil
	// cache = one-shot workspaces) — a seam tests override to simulate
	// slow solves without burning CPU.
	execFn func(ctx context.Context, st *State, cache *muppet.SolveCache, req Request, b muppet.Budget) (Response, error)
}

// New builds a single-tenant Server over the loaded state: a registry
// holding one "default" tenant whose pools share opts.CacheBudgetBytes.
func New(st *State, opts Options) *Server {
	reg := tenant.NewRegistry[*State](tenant.NewLedger(opts.CacheBudgetBytes))
	// The loader closes over an already-validated state and cannot fail.
	if _, err := reg.Add(DefaultTenant, func() (*State, string, error) { return st, "", nil }); err != nil {
		panic(err)
	}
	return NewMulti(reg, opts)
}

// NewMulti builds a Server over a populated tenant registry and starts
// its worker pool.
func NewMulti(reg *tenant.Registry[*State], opts Options) *Server {
	if opts.Concurrency <= 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Concurrency
	}
	if opts.Router == nil {
		opts.Router = tenant.DefaultRouter()
	}
	s := &Server{
		registry: reg,
		router:   opts.Router,
		opts:     opts,
		metrics:  newMetrics(),
		draining: make(chan struct{}),
	}
	s.solveCtx, s.cancelSolves = context.WithCancel(context.Background())
	// The daemon always executes through the federation-aware path: local
	// requests are untouched, and a negotiate naming Peers makes this
	// daemon the coordinator, with robustness counters wired to /metrics.
	s.execFn = func(ctx context.Context, st *State, cache *muppet.SolveCache, req Request, b muppet.Budget) (Response, error) {
		return ExecFed(ctx, st, cache, req, b, &FedOptions{
			OnRound:   func() { s.metrics.fedRound("coordinator") },
			OnRetry:   func(peer string) { s.metrics.fedRetry(peer) },
			OnBreaker: func(peer string, bs feder.BreakerState) { s.metrics.fedBreaker(peer, bs) },
		})
	}
	s.pool = newPool(opts.Concurrency, opts.QueueDepth, s.runJob)
	s.watch = newWatchHub(s)
	// Watch mode rides the registry's swap notifications: every hot
	// reload (SIGHUP, rescan, admin) becomes one delta re-reconcile and
	// one event per watched op.
	reg.SetOnSwap(s.watch.onSwap)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/", s.handleOp)
	s.mux.HandleFunc("/t/", s.handleTenantOp)
	s.mux.HandleFunc("/tenants", s.handleTenants)
	s.mux.HandleFunc("/tenants/", s.handleTenantAdmin)
	if opts.FedParty != "" {
		if ent, ok := reg.Get(DefaultTenant); ok {
			// The peer serves the default tenant's bundle. Its vocabulary is
			// pinned at startup; a session opened after a hot reload picks up
			// the new party state via the constructor closure.
			peer := feder.NewPeer(ent.State.Sys, func() (*feder.LocalParty, error) {
				ent, ok := s.registry.Get(DefaultTenant)
				if !ok {
					return nil, fmt.Errorf("no default tenant")
				}
				return ent.State.FedParty(opts.FedParty)
			}, feder.PeerHooks{
				OnRound:  func() { s.metrics.fedRound("peer") },
				OnReplay: func() { s.metrics.fedReplay() },
			})
			s.mux.Handle("/fed/", peer.Handler())
		}
	}
	return s
}

// Registry exposes the tenant registry so the daemon can wire rescan
// triggers (SIGHUP, polling) to it.
func (s *Server) Registry() *tenant.Registry[*State] { return s.registry }

// ErrPanic marks a worker panic caught by the recovery middleware: the
// request failed, the daemon survived. The HTTP layer maps it to a
// structured 500; /metrics counts it under muppetd_panics_total.
var ErrPanic = errors.New("internal panic")

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if p == http.ErrAbortHandler {
			// Deliberate connection abort (e.g. fault injection); let
			// net/http handle it.
			panic(p)
		}
		s.metrics.panic()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]any{
			"error": fmt.Sprintf("internal panic: %v", p),
			"code":  CodeInternal,
		})
	}()
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting work: /readyz flips to 503 and new workflow
// requests are refused, while in-flight and queued jobs keep running.
// Watchers get a terminal drain event and their streams close.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		close(s.draining)
		s.watch.shutdown()
	})
}

// CancelSolves cancels every in-flight and future solve — the drain
// grace timer's hammer. Interrupted solves surface as structured
// indeterminate responses, never torn ones.
func (s *Server) CancelSolves() { s.cancelSolves() }

// Close drains the queue and waits for the workers to exit. Call after
// the HTTP listener has stopped accepting.
func (s *Server) Close() {
	s.Drain()
	s.pool.close()
	<-s.watch.done
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// runJob executes one dequeued job through the solver-pool router. The
// deadline clock starts here — queue wait does not consume solve budget —
// and the solve context is the request context merged with the
// server-wide cancel, so either a vanished client or a drain hammer
// stops it. The job's tenant entry was captured at admission: a hot
// reload between admission and here means this request completes on the
// revision it was admitted against.
func (s *Server) runJob(ctx context.Context, w int, j *job) (resp Response, err error) {
	// A solver panic must kill the request, not the worker: recover into a
	// typed error the HTTP layer renders as a structured 500.
	defer func() {
		if p := recover(); p != nil {
			s.metrics.panic()
			resp, err = Response{}, fmt.Errorf("%w: %v", ErrPanic, p)
		}
	}()
	timeout := j.timeout
	if s.opts.MaxTimeout > 0 && (timeout <= 0 || timeout > s.opts.MaxTimeout) {
		timeout = s.opts.MaxTimeout
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.solveCtx, cancel)
	defer stop()
	if timeout > 0 {
		var cancelDL context.CancelFunc
		ctx, cancelDL = context.WithDeadline(ctx, time.Now().Add(timeout))
		defer cancelDL()
	}

	plan := s.router.PlanFor(j.req.Op)
	resp, attempts, err := tenant.RunPlan(ctx, plan,
		func(ctx context.Context, leaf tenant.Leaf) (Response, error) {
			// The leaf context carries the tightest of the request deadline
			// and the routing plan's per-pool timeouts; the solver budget
			// must match it so the solver stops when the context does.
			b := muppet.Budget{MaxConflicts: j.maxConflicts}
			if dl, ok := ctx.Deadline(); ok {
				b.Deadline = dl
			}
			if leaf.Kind == tenant.PoolWarm {
				c := j.ent.Pool.Checkout()
				defer j.ent.Pool.Checkin(c)
				return s.execFn(ctx, j.ent.State, c, j.req, b)
			}
			// Fresh pool: nil cache means one-shot workspaces, exactly the
			// cold CLI path.
			return s.execFn(ctx, j.ent.State, nil, j.req, b)
		},
		func(r Response) bool { return r.Code != CodeIndeterminate })
	for _, at := range attempts {
		s.metrics.attempt(at.Pool, string(at.Kind), at.Decisive, at.Err != nil)
	}
	return resp, err
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ready\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.scrape())
}

// scrape assembles the instantaneous state /metrics reports alongside
// the counters: queue, registry, and ledger. Pool stats are checkin-time
// snapshots, so this never touches a live single-goroutine SolveCache.
func (s *Server) scrape() scrape {
	sc := scrape{
		queueDepth: s.pool.depth(),
		queueCap:   s.pool.capacity(),
		workers:    s.opts.Concurrency,
	}
	sc.watchers = atomic.LoadInt64(&s.watch.watchers)
	sc.watchEvents = atomic.LoadInt64(&s.watch.events)
	ledger := s.registry.Ledger()
	sc.budgetBytes = ledger.Budget()
	sc.idleBytes = ledger.TotalBytes()
	sc.ledgerEvictions = ledger.Evictions()
	for _, ent := range s.registry.Entries() {
		ps := ent.Pool.Stats()
		sc.tenants = append(sc.tenants, tenantScrape{
			ID: ent.ID, Revision: ent.Revision, Reloads: s.registry.Reloads(ent.ID), Pool: ps,
		})
		sc.reuse.Add(ps.Reuse)
		if ps.Workers != nil {
			sc.portfolio = ps.Workers
		}
	}
	return sc
}

// Budget headers. The timeout is a Go duration string; the conflict cap
// a decimal integer. Absent headers mean "server defaults" (MaxTimeout).
const (
	HeaderTimeout      = "X-Muppet-Timeout"
	HeaderMaxConflicts = "X-Muppet-Max-Conflicts"
)

// handleOp serves /v1/{op} against the default tenant — the original
// single-bundle surface — plus /v1/watch/{op} for watch mode.
func (s *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, "/v1/")
	if wop, ok := strings.CutPrefix(op, "watch/"); ok {
		s.serveWatch(w, r, DefaultTenant, wop)
		return
	}
	s.serveOp(w, r, DefaultTenant, op)
}

// handleTenantOp serves /t/{tenant}/{op} and /t/{tenant}/watch/{op}.
func (s *Server) handleTenantOp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/t/")
	id, op, ok := strings.Cut(rest, "/")
	if !ok || id == "" {
		http.Error(w, "want /t/{tenant}/{op}", http.StatusNotFound)
		return
	}
	if wop, ok := strings.CutPrefix(op, "watch/"); ok {
		s.serveWatch(w, r, id, wop)
		return
	}
	s.serveOp(w, r, id, op)
}

func (s *Server) serveOp(w http.ResponseWriter, r *http.Request, tenantID, op string) {
	known := false
	for _, o := range Ops() {
		if o == op {
			known = true
			break
		}
	}
	if !known {
		http.Error(w, fmt.Sprintf("unknown op %q", op), http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	// Capture the tenant's current revision now: the job holds it to
	// completion, so a reload mid-request never tears the answer.
	ent, ok := s.registry.Get(tenantID)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown tenant %q", tenantID), http.StatusNotFound)
		return
	}
	var req Request
	if body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	} else if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	req.Op = op

	var timeout time.Duration
	if h := r.Header.Get(HeaderTimeout); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d < 0 {
			http.Error(w, "bad "+HeaderTimeout+" header", http.StatusBadRequest)
			return
		}
		timeout = d
	}
	var maxConflicts int64
	if h := r.Header.Get(HeaderMaxConflicts); h != "" {
		n, err := strconv.ParseInt(h, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad "+HeaderMaxConflicts+" header", http.StatusBadRequest)
			return
		}
		maxConflicts = n
	}

	start := time.Now()
	j := &job{
		ctx:          r.Context(),
		ent:          ent,
		req:          req,
		timeout:      timeout,
		maxConflicts: maxConflicts,
		done:         make(chan jobResult, 1),
	}
	if !s.pool.admit(j) {
		s.metrics.reject()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
		return
	}
	select {
	case res := <-j.done:
		if res.err != nil {
			if errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded) {
				s.metrics.drop()
				return // client is gone; nothing to write
			}
			if errors.Is(res.err, ErrPanic) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				json.NewEncoder(w).Encode(map[string]any{"error": res.err.Error(), "code": CodeInternal})
				return
			}
			code := http.StatusInternalServerError
			if errors.Is(res.err, ErrUsage) {
				code = http.StatusBadRequest
			}
			http.Error(w, res.err.Error(), code)
			return
		}
		s.metrics.observe(ent.ID, op, res.resp.Code, time.Since(start).Seconds())
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res.resp)
	case <-r.Context().Done():
		// The client hung up; the worker (or the queue scan) will notice
		// via the job context and discard the result.
		s.metrics.drop()
	}
}
