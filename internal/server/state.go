// Package server implements the long-running mediation service behind
// cmd/muppetd: a load-once, serve-many front end over the solving core.
// It loads a mesh/goal bundle into one immutable encode.System, then
// serves the paper's workflows (check, envelope, reconcile, conform,
// negotiate) from a pool of workers, each owning a warm SolveCache, with
// bounded admission, per-request budgets, graceful drain, and a
// Prometheus-text metrics surface.
//
// The same Exec path also backs the muppet CLI's local mode, so daemon
// and CLI verdicts are identical by construction.
package server

import (
	"fmt"
	"strconv"
	"strings"

	"muppet"
	"muppet/internal/feder"
)

// Config names the inputs of one mediation state: the YAML bundle, the
// goal tables, the offer modes, and extra inventory ports. String fields
// mirror the CLI flags verbatim so both front ends share one loader.
type Config struct {
	Files      string // comma-separated YAML files (required)
	K8sGoals   string // K8s goals CSV ("" = none)
	IstioGoals string // Istio goals CSV ("" = none)
	K8sOffer   string // fixed|soft|holes ("" = fixed)
	IstioOffer string // fixed|soft|holes ("" = fixed)
	Ports      string // comma-separated extra ports ("" = none)
}

// State is the shared, immutable serving state: the compiled system and
// the retained inputs from which every request builds its own parties.
// Parties are mutable (Adopt rewrites their configuration), so they are
// per-request; only the System and the loaded inputs are shared.
type State struct {
	Sys    *muppet.System
	Bundle *muppet.Bundle

	K8sGoalRows   []muppet.K8sGoal
	IstioGoalRows []muppet.IstioGoal
	K8sOffer      muppet.Offer
	IstioOffer    muppet.Offer
}

// Load builds the serving state from cfg: parse the bundle and goal
// tables, collect the port inventory, compile the system, and validate
// the offer modes. It also builds one throwaway party pair so malformed
// goals surface at load time, not on the first request.
func Load(cfg Config) (*State, error) {
	if cfg.Files == "" {
		return nil, fmt.Errorf("-files is required")
	}
	bundle, err := muppet.LoadFiles(strings.Split(cfg.Files, ",")...)
	if err != nil {
		return nil, err
	}
	var kg []muppet.K8sGoal
	if cfg.K8sGoals != "" {
		if kg, err = muppet.LoadK8sGoals(cfg.K8sGoals); err != nil {
			return nil, err
		}
	}
	var ig []muppet.IstioGoal
	if cfg.IstioGoals != "" {
		if ig, err = muppet.LoadIstioGoals(cfg.IstioGoals); err != nil {
			return nil, err
		}
	}
	extra, err := ParsePorts(cfg.Ports)
	if err != nil {
		return nil, err
	}
	for _, g := range kg {
		extra = append(extra, g.Port)
	}
	for _, g := range ig {
		for _, t := range []muppet.PortTerm{g.SrcPort, g.DstPort} {
			if t.Kind == muppet.PortLit {
				extra = append(extra, t.Port)
			}
		}
	}
	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies, extra)
	if err != nil {
		return nil, err
	}
	st := &State{Sys: sys, Bundle: bundle, K8sGoalRows: kg, IstioGoalRows: ig}
	if st.K8sOffer, err = ParseOffer(cfg.K8sOffer); err != nil {
		return nil, err
	}
	if st.IstioOffer, err = ParseOffer(cfg.IstioOffer); err != nil {
		return nil, err
	}
	if _, _, err := st.FreshParties(); err != nil {
		return nil, err
	}
	return st, nil
}

// FreshParties builds a new party pair over the shared system — the
// per-request mutable state of the serving loop.
func (st *State) FreshParties() (k8s, istio *muppet.Party, err error) {
	k8s, _, err = muppet.NewK8sParty(st.Sys, st.Bundle.K8s, st.K8sOffer, st.K8sGoalRows)
	if err != nil {
		return nil, nil, err
	}
	istio, _, err = muppet.NewIstioParty(st.Sys, st.Bundle.Istio, st.IstioOffer, st.IstioGoalRows)
	if err != nil {
		return nil, nil, err
	}
	return k8s, istio, nil
}

// Snapshot captures the delta-comparable content of this state's party
// pair (goals, concrete fixed settings, universe) over its own system —
// one side of a revision comparison.
func (st *State) Snapshot() (*muppet.DeltaRevision, error) {
	k8s, istio, err := st.FreshParties()
	if err != nil {
		return nil, err
	}
	return muppet.Snapshot(st.Sys, []*muppet.Party{k8s, istio}), nil
}

// RebasedOn returns a copy of this state re-anchored on another
// revision's system: parties built from the copy ground the new
// revision's goals and configurations over sys's (universe-compatible)
// vocabulary, so the previous revision's warm sessions keep serving. It
// fails — and the caller must fall back to a cold build — when the new
// goals do not compile over sys (atoms outside the grounded bounds).
func (st *State) RebasedOn(sys *muppet.System) (*State, error) {
	cp := *st
	cp.Sys = sys
	if _, _, err := cp.FreshParties(); err != nil {
		return nil, fmt.Errorf("rebase: %w", err)
	}
	return &cp, nil
}

// FedParty materializes this state's side of a federated negotiation:
// the named party (k8s or istio) wrapped for the /fed/ peer protocol.
func (st *State) FedParty(kind string) (*feder.LocalParty, error) {
	switch strings.ToLower(kind) {
	case "k8s", "kubernetes":
		return feder.NewLocalK8s(st.Sys, st.Bundle.K8s, st.K8sOffer, st.K8sGoalRows, "")
	case "istio":
		return feder.NewLocalIstio(st.Sys, st.Bundle.Istio, st.IstioOffer, st.IstioGoalRows, "")
	}
	return nil, fmt.Errorf("%w: bad federated party %q (want k8s or istio)", ErrUsage, kind)
}

// FedReplicas builds the coordinator's local replicas in the party order
// FreshParties uses (k8s, then istio), which fixes the round-robin cycle
// — and therefore byte-parity with the single-process negotiation.
func (st *State) FedReplicas() ([]*feder.LocalParty, error) {
	k8s, err := feder.NewLocalK8s(st.Sys, st.Bundle.K8s, st.K8sOffer, st.K8sGoalRows, "")
	if err != nil {
		return nil, err
	}
	istio, err := feder.NewLocalIstio(st.Sys, st.Bundle.Istio, st.IstioOffer, st.IstioGoalRows, "")
	if err != nil {
		return nil, err
	}
	return []*feder.LocalParty{k8s, istio}, nil
}

// ParseOffer maps an offer-mode name to an Offer, "" meaning fixed.
func ParseOffer(s string) (muppet.Offer, error) {
	switch s {
	case "fixed", "":
		return muppet.Offer{}, nil
	case "soft":
		return muppet.AllSoft(), nil
	case "holes":
		return muppet.AllHoles(), nil
	}
	return muppet.Offer{}, fmt.Errorf("bad offer mode %q (want fixed|soft|holes)", s)
}

// ParsePorts parses a comma-separated port list, "" meaning none.
func ParsePorts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad port %q", part)
		}
		out = append(out, p)
	}
	return out, nil
}
