package server

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"muppet"
	"muppet/internal/feder"
	"muppet/internal/tenant"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen for a
// workload spanning sub-millisecond warm cache hits to multi-second cold
// portfolio solves.
var latencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is a fixed-bucket latency histogram in Prometheus's
// cumulative exposition shape.
type histogram struct {
	counts []int64 // per-bucket, non-cumulative; cumulated at exposition
	count  int64
	sum    float64
}

func (h *histogram) observe(seconds float64) {
	if h.counts == nil {
		h.counts = make([]int64, len(latencyBuckets))
	}
	for i, le := range latencyBuckets {
		if seconds <= le {
			h.counts[i]++
			break
		}
	}
	h.count++
	h.sum += seconds
}

// metrics aggregates the serving counters the /metrics endpoint exposes.
// All request-path updates take one short mutex; the scrape path reads
// under the same mutex plus checkin-time pool snapshots — it never
// touches the live single-goroutine SolveCaches.
type metrics struct {
	mu         sync.Mutex
	requests   map[string]map[int]int64            // op → verdict code → count
	latency    map[string]*histogram               // op → seconds histogram
	tenants    map[string]map[string]map[int]int64 // tenant → op → code → count
	attempts   map[string]*poolAttempts            // solver pool → attempt counters
	rejections int64
	drops      int64 // admitted jobs abandoned before a worker picked them up
	panics     int64 // worker panics caught by the recovery middleware

	fedRounds   map[string]int64 // federation role (coordinator|peer) → rounds driven
	fedRetries  map[string]int64 // peer → coordinator retry attempts
	fedReplays  int64            // idempotent replays served by the peer side
	fedBreakers map[string]int64 // peer → breaker state (0 closed, 1 half-open, 2 open)
}

// poolAttempts counts one named solver pool's leaf executions by outcome.
type poolAttempts struct {
	kind       string
	decisive   int64
	indecisive int64
	errors     int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:    make(map[string]map[int]int64),
		latency:     make(map[string]*histogram),
		tenants:     make(map[string]map[string]map[int]int64),
		attempts:    make(map[string]*poolAttempts),
		fedRounds:   make(map[string]int64),
		fedRetries:  make(map[string]int64),
		fedBreakers: make(map[string]int64),
	}
}

func (m *metrics) observe(tenantID, op string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[op]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[op] = byCode
	}
	byCode[code]++
	byOp := m.tenants[tenantID]
	if byOp == nil {
		byOp = make(map[string]map[int]int64)
		m.tenants[tenantID] = byOp
	}
	if byOp[op] == nil {
		byOp[op] = make(map[int]int64)
	}
	byOp[op][code]++
	h := m.latency[op]
	if h == nil {
		h = &histogram{}
		m.latency[op] = h
	}
	h.observe(seconds)
}

// attempt records one routed leaf execution.
func (m *metrics) attempt(pool, kind string, decisive, errored bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pa := m.attempts[pool]
	if pa == nil {
		pa = &poolAttempts{kind: kind}
		m.attempts[pool] = pa
	}
	switch {
	case errored:
		pa.errors++
	case decisive:
		pa.decisive++
	default:
		pa.indecisive++
	}
}

func (m *metrics) reject() {
	m.mu.Lock()
	m.rejections++
	m.mu.Unlock()
}

func (m *metrics) drop() {
	m.mu.Lock()
	m.drops++
	m.mu.Unlock()
}

func (m *metrics) panic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

func (m *metrics) fedRound(role string) {
	m.mu.Lock()
	m.fedRounds[role]++
	m.mu.Unlock()
}

func (m *metrics) fedRetry(peer string) {
	m.mu.Lock()
	m.fedRetries[peer]++
	m.mu.Unlock()
}

func (m *metrics) fedReplay() {
	m.mu.Lock()
	m.fedReplays++
	m.mu.Unlock()
}

func (m *metrics) fedBreaker(peer string, st feder.BreakerState) {
	m.mu.Lock()
	m.fedBreakers[peer] = int64(st)
	m.mu.Unlock()
}

// scrape is the instantaneous (non-counter) state the server assembles
// for one /metrics exposition: queue occupancy, the per-tenant registry
// and pool snapshots, and the ledger totals.
type scrape struct {
	queueDepth, queueCap, workers int
	reuse                         muppet.ReuseStats
	portfolio                     []muppet.WorkerStats
	tenants                       []tenantScrape
	budgetBytes                   int64
	idleBytes                     int64
	ledgerEvictions               int64
	watchers                      int64
	watchEvents                   int64
}

// tenantScrape is one tenant's slice of a scrape.
type tenantScrape struct {
	ID       string
	Revision int64
	Reloads  int64
	Pool     tenant.PoolStats
}

// write renders the Prometheus text exposition format (version 0.0.4) by
// hand — the format is a stable line protocol, and hand-rolling it keeps
// the daemon dependency-free.
func (m *metrics) write(w io.Writer, sc scrape) {
	queueDepth, queueCap, workers := sc.queueDepth, sc.queueCap, sc.workers
	reuse, portfolio := sc.reuse, sc.portfolio
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP muppetd_requests_total Mediation requests served, by op and verdict code.")
	fmt.Fprintln(w, "# TYPE muppetd_requests_total counter")
	for _, op := range sortedKeys(m.requests) {
		byCode := m.requests[op]
		codes := make([]int, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "muppetd_requests_total{op=%q,code=\"%d\"} %d\n", op, c, byCode[c])
		}
	}

	fmt.Fprintln(w, "# HELP muppetd_request_duration_seconds Request latency from admission to response, by op.")
	fmt.Fprintln(w, "# TYPE muppetd_request_duration_seconds histogram")
	for _, op := range sortedKeys(m.latency) {
		h := m.latency[op]
		var cum int64
		for i, le := range latencyBuckets {
			if h.counts != nil {
				cum += h.counts[i]
			}
			fmt.Fprintf(w, "muppetd_request_duration_seconds_bucket{op=%q,le=\"%g\"} %d\n", op, le, cum)
		}
		fmt.Fprintf(w, "muppetd_request_duration_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", op, h.count)
		fmt.Fprintf(w, "muppetd_request_duration_seconds_sum{op=%q} %g\n", op, h.sum)
		fmt.Fprintf(w, "muppetd_request_duration_seconds_count{op=%q} %d\n", op, h.count)
	}

	fmt.Fprintln(w, "# HELP muppetd_rejections_total Requests rejected 429 by the admission queue.")
	fmt.Fprintln(w, "# TYPE muppetd_rejections_total counter")
	fmt.Fprintf(w, "muppetd_rejections_total %d\n", m.rejections)

	fmt.Fprintln(w, "# HELP muppetd_queue_drops_total Admitted jobs whose client vanished before a worker picked them up.")
	fmt.Fprintln(w, "# TYPE muppetd_queue_drops_total counter")
	fmt.Fprintf(w, "muppetd_queue_drops_total %d\n", m.drops)

	fmt.Fprintln(w, "# HELP muppetd_panics_total Worker panics caught by the recovery middleware.")
	fmt.Fprintln(w, "# TYPE muppetd_panics_total counter")
	fmt.Fprintf(w, "muppetd_panics_total %d\n", m.panics)

	if len(m.fedRounds) > 0 {
		fmt.Fprintln(w, "# HELP muppetd_fed_rounds_total Federated negotiation rounds, by role.")
		fmt.Fprintln(w, "# TYPE muppetd_fed_rounds_total counter")
		for _, role := range sortedKeys(m.fedRounds) {
			fmt.Fprintf(w, "muppetd_fed_rounds_total{role=%q} %d\n", role, m.fedRounds[role])
		}
	}
	if len(m.fedRetries) > 0 {
		fmt.Fprintln(w, "# HELP muppetd_fed_retries_total Coordinator retry attempts, by peer.")
		fmt.Fprintln(w, "# TYPE muppetd_fed_retries_total counter")
		for _, peer := range sortedKeys(m.fedRetries) {
			fmt.Fprintf(w, "muppetd_fed_retries_total{peer=%q} %d\n", peer, m.fedRetries[peer])
		}
	}
	if m.fedReplays > 0 {
		fmt.Fprintln(w, "# HELP muppetd_fed_replays_total Idempotent federation replays served instead of re-solving.")
		fmt.Fprintln(w, "# TYPE muppetd_fed_replays_total counter")
		fmt.Fprintf(w, "muppetd_fed_replays_total %d\n", m.fedReplays)
	}
	if len(m.fedBreakers) > 0 {
		fmt.Fprintln(w, "# HELP muppetd_fed_breaker_state Per-peer circuit breaker position (0 closed, 1 half-open, 2 open).")
		fmt.Fprintln(w, "# TYPE muppetd_fed_breaker_state gauge")
		for _, peer := range sortedKeys(m.fedBreakers) {
			fmt.Fprintf(w, "muppetd_fed_breaker_state{peer=%q} %d\n", peer, m.fedBreakers[peer])
		}
	}

	fmt.Fprintln(w, "# HELP muppetd_queue_depth Jobs admitted and waiting for a worker.")
	fmt.Fprintln(w, "# TYPE muppetd_queue_depth gauge")
	fmt.Fprintf(w, "muppetd_queue_depth %d\n", queueDepth)

	fmt.Fprintln(w, "# HELP muppetd_queue_capacity Admission queue bound.")
	fmt.Fprintln(w, "# TYPE muppetd_queue_capacity gauge")
	fmt.Fprintf(w, "muppetd_queue_capacity %d\n", queueCap)

	fmt.Fprintln(w, "# HELP muppetd_workers Solver worker goroutines.")
	fmt.Fprintln(w, "# TYPE muppetd_workers gauge")
	fmt.Fprintf(w, "muppetd_workers %d\n", workers)

	fmt.Fprintln(w, "# HELP muppetd_sessions_built_total Solver sessions built (SolveCache misses), summed over workers.")
	fmt.Fprintln(w, "# TYPE muppetd_sessions_built_total counter")
	fmt.Fprintf(w, "muppetd_sessions_built_total %d\n", reuse.Sessions)

	fmt.Fprintln(w, "# HELP muppetd_session_reuses_total Requests served from a live warm session, summed over workers.")
	fmt.Fprintln(w, "# TYPE muppetd_session_reuses_total counter")
	fmt.Fprintf(w, "muppetd_session_reuses_total %d\n", reuse.Reuses)

	fmt.Fprintln(w, "# HELP muppetd_translation_cache_total Translation-cache events across live sessions, by kind.")
	fmt.Fprintln(w, "# TYPE muppetd_translation_cache_total counter")
	fmt.Fprintf(w, "muppetd_translation_cache_total{kind=\"pointer_hit\"} %d\n", reuse.Translation.PointerHits)
	fmt.Fprintf(w, "muppetd_translation_cache_total{kind=\"struct_hit\"} %d\n", reuse.Translation.StructHits)
	fmt.Fprintf(w, "muppetd_translation_cache_total{kind=\"miss\"} %d\n", reuse.Translation.Misses)

	fmt.Fprintln(w, "# HELP muppetd_encoding_circuit_nodes AIG nodes allocated across live sessions.")
	fmt.Fprintln(w, "# TYPE muppetd_encoding_circuit_nodes gauge")
	fmt.Fprintf(w, "muppetd_encoding_circuit_nodes %d\n", reuse.Encoding.CircuitNodes)

	fmt.Fprintln(w, "# HELP muppetd_encoding_solver_vars SAT variables across live sessions.")
	fmt.Fprintln(w, "# TYPE muppetd_encoding_solver_vars gauge")
	fmt.Fprintf(w, "muppetd_encoding_solver_vars %d\n", reuse.Encoding.SolverVars)

	fmt.Fprintln(w, "# HELP muppetd_encoding_solver_clauses Problem clauses across live sessions, after preprocessing.")
	fmt.Fprintln(w, "# TYPE muppetd_encoding_solver_clauses gauge")
	fmt.Fprintf(w, "muppetd_encoding_solver_clauses %d\n", reuse.Encoding.SolverClauses)

	fmt.Fprintln(w, "# HELP muppetd_encoding_vars_eliminated Variables currently eliminated by CNF preprocessing across live sessions.")
	fmt.Fprintln(w, "# TYPE muppetd_encoding_vars_eliminated gauge")
	fmt.Fprintf(w, "muppetd_encoding_vars_eliminated %d\n", reuse.Encoding.VarsEliminated)

	fmt.Fprintln(w, "# HELP muppetd_encoding_clauses_removed_total Clauses removed by CNF preprocessing across live sessions.")
	fmt.Fprintln(w, "# TYPE muppetd_encoding_clauses_removed_total counter")
	fmt.Fprintf(w, "muppetd_encoding_clauses_removed_total %d\n", reuse.Encoding.ClausesRemoved)

	fmt.Fprintln(w, "# HELP muppetd_solver_arena_bytes Exact clause-arena backing bytes across live sessions.")
	fmt.Fprintln(w, "# TYPE muppetd_solver_arena_bytes gauge")
	fmt.Fprintf(w, "muppetd_solver_arena_bytes %d\n", reuse.Encoding.ArenaBytes)

	fmt.Fprintln(w, "# HELP muppetd_solver_chrono_backtracks_total Chronological backtracks taken instead of long backjumps, across live sessions.")
	fmt.Fprintln(w, "# TYPE muppetd_solver_chrono_backtracks_total counter")
	fmt.Fprintf(w, "muppetd_solver_chrono_backtracks_total %d\n", reuse.Encoding.ChronoBacktracks)

	fmt.Fprintln(w, "# HELP muppetd_solver_otf_subsumed_total Conflict clauses deleted by on-the-fly subsumption, across live sessions.")
	fmt.Fprintln(w, "# TYPE muppetd_solver_otf_subsumed_total counter")
	fmt.Fprintf(w, "muppetd_solver_otf_subsumed_total %d\n", reuse.Encoding.OTFSubsumed)

	fmt.Fprintln(w, "# HELP muppetd_solver_inprocess_runs_total Scheduled inprocessing passes (vivification and in-search BVE), across live sessions.")
	fmt.Fprintln(w, "# TYPE muppetd_solver_inprocess_runs_total counter")
	fmt.Fprintf(w, "muppetd_solver_inprocess_runs_total %d\n", reuse.Encoding.InprocessRuns)

	fmt.Fprintln(w, "# HELP muppetd_solver_vivified_total Clauses shortened or deleted by vivification, across live sessions.")
	fmt.Fprintln(w, "# TYPE muppetd_solver_vivified_total counter")
	fmt.Fprintf(w, "muppetd_solver_vivified_total %d\n", reuse.Encoding.Vivified)

	fmt.Fprintln(w, "# HELP muppetd_solver_restored_total Variables un-eliminated because an incremental addition touched them, across live sessions.")
	fmt.Fprintln(w, "# TYPE muppetd_solver_restored_total counter")
	fmt.Fprintf(w, "muppetd_solver_restored_total %d\n", reuse.Encoding.Restored)

	if len(portfolio) > 0 {
		fmt.Fprintln(w, "# HELP muppetd_portfolio_worker_conflicts Conflicts per portfolio worker in the most recent portfolio solve.")
		fmt.Fprintln(w, "# TYPE muppetd_portfolio_worker_conflicts gauge")
		for _, pw := range portfolio {
			fmt.Fprintf(w, "muppetd_portfolio_worker_conflicts{worker=%q,winner=\"%t\"} %d\n",
				pw.Name, pw.Winner, pw.Stats.Conflicts)
		}
	}

	fmt.Fprintln(w, "# HELP muppetd_tenants Tenants currently registered.")
	fmt.Fprintln(w, "# TYPE muppetd_tenants gauge")
	fmt.Fprintf(w, "muppetd_tenants %d\n", len(sc.tenants))

	fmt.Fprintln(w, "# HELP muppetd_tenant_revision Current revision of each tenant (bumps on hot reload).")
	fmt.Fprintln(w, "# TYPE muppetd_tenant_revision gauge")
	for _, t := range sc.tenants {
		fmt.Fprintf(w, "muppetd_tenant_revision{tenant=%q} %d\n", t.ID, t.Revision)
	}

	fmt.Fprintln(w, "# HELP muppetd_tenant_reloads_total Successful hot reloads per tenant.")
	fmt.Fprintln(w, "# TYPE muppetd_tenant_reloads_total counter")
	for _, t := range sc.tenants {
		fmt.Fprintf(w, "muppetd_tenant_reloads_total{tenant=%q} %d\n", t.ID, t.Reloads)
	}

	fmt.Fprintln(w, "# HELP muppetd_tenant_requests_total Mediation requests served, by tenant, op, and verdict code.")
	fmt.Fprintln(w, "# TYPE muppetd_tenant_requests_total counter")
	for _, tid := range sortedKeys(m.tenants) {
		byOp := m.tenants[tid]
		for _, op := range sortedKeys(byOp) {
			byCode := byOp[op]
			codes := make([]int, 0, len(byCode))
			for c := range byCode {
				codes = append(codes, c)
			}
			sort.Ints(codes)
			for _, c := range codes {
				fmt.Fprintf(w, "muppetd_tenant_requests_total{tenant=%q,op=%q,code=\"%d\"} %d\n", tid, op, c, byCode[c])
			}
		}
	}

	fmt.Fprintln(w, "# HELP muppetd_tenant_cache_idle_caches Warm caches idle in each tenant's pool.")
	fmt.Fprintln(w, "# TYPE muppetd_tenant_cache_idle_caches gauge")
	for _, t := range sc.tenants {
		fmt.Fprintf(w, "muppetd_tenant_cache_idle_caches{tenant=%q} %d\n", t.ID, t.Pool.IdleCount)
	}

	fmt.Fprintln(w, "# HELP muppetd_tenant_cache_bytes Approximate bytes of each tenant's idle warm caches.")
	fmt.Fprintln(w, "# TYPE muppetd_tenant_cache_bytes gauge")
	for _, t := range sc.tenants {
		fmt.Fprintf(w, "muppetd_tenant_cache_bytes{tenant=%q} %d\n", t.ID, t.Pool.Bytes)
	}

	fmt.Fprintln(w, "# HELP muppetd_tenant_cache_evictions_total Warm sessions evicted from each tenant's pool for budget pressure.")
	fmt.Fprintln(w, "# TYPE muppetd_tenant_cache_evictions_total counter")
	for _, t := range sc.tenants {
		fmt.Fprintf(w, "muppetd_tenant_cache_evictions_total{tenant=%q} %d\n", t.ID, t.Pool.Evictions)
	}

	fmt.Fprintln(w, "# HELP muppetd_tenant_sessions_built_total Solver sessions built per tenant (cache misses).")
	fmt.Fprintln(w, "# TYPE muppetd_tenant_sessions_built_total counter")
	for _, t := range sc.tenants {
		fmt.Fprintf(w, "muppetd_tenant_sessions_built_total{tenant=%q} %d\n", t.ID, t.Pool.Reuse.Sessions)
	}

	fmt.Fprintln(w, "# HELP muppetd_tenant_session_reuses_total Requests served from a live warm session, per tenant.")
	fmt.Fprintln(w, "# TYPE muppetd_tenant_session_reuses_total counter")
	for _, t := range sc.tenants {
		fmt.Fprintf(w, "muppetd_tenant_session_reuses_total{tenant=%q} %d\n", t.ID, t.Pool.Reuse.Reuses)
	}

	fmt.Fprintln(w, "# HELP muppetd_cache_budget_bytes Configured idle warm-cache byte budget across all tenants (0 = unlimited).")
	fmt.Fprintln(w, "# TYPE muppetd_cache_budget_bytes gauge")
	fmt.Fprintf(w, "muppetd_cache_budget_bytes %d\n", sc.budgetBytes)

	fmt.Fprintln(w, "# HELP muppetd_cache_idle_bytes Accounted bytes of idle warm caches across all tenants.")
	fmt.Fprintln(w, "# TYPE muppetd_cache_idle_bytes gauge")
	fmt.Fprintf(w, "muppetd_cache_idle_bytes %d\n", sc.idleBytes)

	fmt.Fprintln(w, "# HELP muppetd_cache_evictions_total Warm sessions evicted for budget pressure across all tenants.")
	fmt.Fprintln(w, "# TYPE muppetd_cache_evictions_total counter")
	fmt.Fprintf(w, "muppetd_cache_evictions_total %d\n", sc.ledgerEvictions)

	fmt.Fprintln(w, "# HELP muppetd_watchers Watch-mode requests currently connected (long-poll and SSE).")
	fmt.Fprintln(w, "# TYPE muppetd_watchers gauge")
	fmt.Fprintf(w, "muppetd_watchers %d\n", sc.watchers)

	fmt.Fprintln(w, "# HELP muppetd_watch_events_total Watch events published (baselines, revision updates, terminals).")
	fmt.Fprintln(w, "# TYPE muppetd_watch_events_total counter")
	fmt.Fprintf(w, "muppetd_watch_events_total %d\n", sc.watchEvents)

	if len(m.attempts) > 0 {
		fmt.Fprintln(w, "# HELP muppetd_pool_attempts_total Routed solver-pool leaf executions, by pool and outcome.")
		fmt.Fprintln(w, "# TYPE muppetd_pool_attempts_total counter")
		for _, name := range sortedKeys(m.attempts) {
			pa := m.attempts[name]
			for _, oc := range []struct {
				outcome string
				n       int64
			}{{"decisive", pa.decisive}, {"indecisive", pa.indecisive}, {"error", pa.errors}} {
				if oc.n > 0 {
					fmt.Fprintf(w, "muppetd_pool_attempts_total{pool=%q,kind=%q,outcome=%q} %d\n",
						name, pa.kind, oc.outcome, oc.n)
				}
			}
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
