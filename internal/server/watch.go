package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"muppet"
	"muppet/internal/tenant"
)

// Watch mode: the daemon pushes "the goals changed → here is the new
// minimal edit" instead of being polled with full requests. A watcher
// subscribes to one (tenant, op) pair; on every registry revision swap
// the hub diffs the old and new bundle revisions (package delta), serves
// the op through the warm Rebase path when the revisions are compatible
// (cold rebuild otherwise), and publishes exactly one event per revision
// to every subscriber — long-poll (`GET ...?rev=N`) and SSE (`?stream=1`)
// are two views of the same sticky per-op event state.
//
// All solving happens on a single hub worker goroutine with its own
// SolveCache per tenant, so watch-mode solves never race the request
// pool's caches and events are naturally ordered.

// WatchEvent is one watch-mode update: the op's verdict for a bundle
// revision plus the delta that produced it. Terminal events (drain,
// tenant removal) carry a Reason and no verdict.
type WatchEvent struct {
	Tenant   string       `json:"tenant"`
	Revision int64        `json:"revision"`
	Op       string       `json:"op"`
	Party    string       `json:"party,omitempty"`
	Code     int          `json:"code"`
	Output   string       `json:"output"`
	Delta    *DeltaReport `json:"delta,omitempty"`
	Terminal bool         `json:"terminal,omitempty"`
	Reason   string       `json:"reason,omitempty"`
}

// DeltaReport is the wire shape of muppet.DeltaStats plus the plan's
// human-readable summary: how the event's answer was computed.
type DeltaReport struct {
	Cold             bool   `json:"cold"`
	Reason           string `json:"reason,omitempty"`
	GroupsKept       int64  `json:"groups_kept"`
	GroupsReasserted int64  `json:"groups_reasserted"`
	GoalsKept        int    `json:"goals_kept"`
	GoalsAdded       int    `json:"goals_added"`
	GoalsRemoved     int    `json:"goals_removed"`
	AtomsChanged     int    `json:"atoms_changed"`
	Restored         int64  `json:"restored"`
	Summary          string `json:"summary,omitempty"`
}

func reportFor(ds muppet.DeltaStats, plan *muppet.DeltaPlan) *DeltaReport {
	rep := &DeltaReport{
		Cold: ds.Cold, Reason: ds.Reason,
		GroupsKept: ds.GroupsKept, GroupsReasserted: ds.GroupsReasserted,
		GoalsKept: ds.GoalsKept, GoalsAdded: ds.GoalsAdded, GoalsRemoved: ds.GoalsRemoved,
		AtomsChanged: ds.AtomsChanged, Restored: ds.Restored,
	}
	if plan != nil {
		rep.Summary = plan.Summary()
	}
	return rep
}

// opWatch is the sticky event state of one watched (op, party) pair:
// once subscribed, the hub recomputes it on every revision swap, so a
// watcher reconnecting after a dropped poll never misses the latest
// verdict. last/update are guarded by the hub mutex; update is closed
// and replaced on every publish (a broadcast).
type opWatch struct {
	req    Request
	last   *WatchEvent
	update chan struct{}
}

// tenantWatch anchors one tenant's watch state. baseState pins the
// System the warm cache's sessions were ground over; compatible
// revisions are rebased onto it, incompatible ones reset the anchor and
// the cache. All fields are hub-worker-owned except the opWatch
// internals above.
type tenantWatch struct {
	id        string
	baseState *State
	cache     *muppet.SolveCache
	prevRev   *muppet.DeltaRevision
	revision  int64
	ops       map[string]*opWatch
}

var errHubClosed = errors.New("watch hub closed")

type watchHub struct {
	srv     *Server
	tenants map[string]*tenantWatch // worker-owned

	mu    sync.Mutex
	queue []func()

	kick    chan struct{}
	closing chan struct{}
	done    chan struct{}
	once    sync.Once

	watchers int64 // gauge: connected watch requests
	events   int64 // counter: events published
}

func newWatchHub(s *Server) *watchHub {
	h := &watchHub{
		srv:     s,
		tenants: make(map[string]*tenantWatch),
		kick:    make(chan struct{}, 1),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go h.run()
	return h
}

// enqueue appends a job for the worker; never blocks, preserves order
// (registry swap hooks run under the reload lock and must not stall).
func (h *watchHub) enqueue(j func()) {
	h.mu.Lock()
	h.queue = append(h.queue, j)
	h.mu.Unlock()
	select {
	case h.kick <- struct{}{}:
	default:
	}
}

func (h *watchHub) next() func() {
	for {
		h.mu.Lock()
		if len(h.queue) > 0 {
			j := h.queue[0]
			h.queue = h.queue[1:]
			h.mu.Unlock()
			return j
		}
		h.mu.Unlock()
		select {
		case <-h.kick:
		case <-h.closing:
			// Drain what was queued before the close, then stop.
			h.mu.Lock()
			if len(h.queue) > 0 {
				j := h.queue[0]
				h.queue = h.queue[1:]
				h.mu.Unlock()
				return j
			}
			h.mu.Unlock()
			return nil
		}
	}
}

func (h *watchHub) run() {
	for {
		j := h.next()
		if j == nil {
			for _, id := range h.tenantIDs() {
				h.terminate(h.tenants[id], "drain")
				delete(h.tenants, id)
			}
			close(h.done)
			return
		}
		j()
	}
}

func (h *watchHub) tenantIDs() []string {
	ids := make([]string, 0, len(h.tenants))
	for id := range h.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// shutdown starts the close (non-blocking, safe from Drain); the worker
// publishes terminal drain events to every subscriber on its way out.
func (h *watchHub) shutdown() { h.once.Do(func() { close(h.closing) }) }

func (h *watchHub) publish(ow *opWatch, ev *WatchEvent) {
	h.mu.Lock()
	ow.last = ev
	ch := ow.update
	ow.update = make(chan struct{})
	h.mu.Unlock()
	close(ch)
	atomic.AddInt64(&h.events, 1)
}

// current snapshots an op's sticky state: the last event and the channel
// the next publish will close.
func (h *watchHub) current(ow *opWatch) (*WatchEvent, <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return ow.last, ow.update
}

func watchKey(req Request) string { return req.Op + "|" + req.Party + "|" + req.Provider }

// ensure subscribes a (tenant, op) pair, computing its baseline event on
// the worker if it is new. Returns once the op has a publishable state.
func (h *watchHub) ensure(ctx context.Context, tenantID string, req Request) (*opWatch, error) {
	type res struct {
		ow  *opWatch
		err error
	}
	ch := make(chan res, 1)
	h.enqueue(func() { ow, err := h.subscribe(tenantID, req); ch <- res{ow, err} })
	select {
	case r := <-ch:
		return r.ow, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-h.done:
		return nil, errHubClosed
	}
}

// subscribe runs on the worker.
func (h *watchHub) subscribe(tenantID string, req Request) (*opWatch, error) {
	tw := h.tenants[tenantID]
	if tw == nil {
		ent, ok := h.srv.registry.Get(tenantID)
		if !ok {
			return nil, fmt.Errorf("%w: unknown tenant %q", ErrUsage, tenantID)
		}
		snap, err := ent.State.Snapshot()
		if err != nil {
			return nil, err
		}
		tw = &tenantWatch{
			id: tenantID, baseState: ent.State, cache: muppet.NewSolveCache(),
			prevRev: snap, revision: ent.Revision, ops: make(map[string]*opWatch),
		}
		h.tenants[tenantID] = tw
	}
	key := watchKey(req)
	if ow := tw.ops[key]; ow != nil {
		return ow, nil
	}
	ow := &opWatch{req: req, update: make(chan struct{})}
	ev, err := h.runOp(tw, ow, tw.baseState, nil, tw.revision)
	if err != nil {
		return nil, err // not registered; the next subscriber retries
	}
	ev.Delta.Reason = "baseline"
	tw.ops[key] = ow
	h.publish(ow, ev)
	return ow, nil
}

// runOp serves one op for one revision through the Rebase path on the
// tenant's hub cache (worker only). plan == nil is the baseline case.
func (h *watchHub) runOp(tw *tenantWatch, ow *opWatch, st *State, plan *muppet.DeltaPlan, revision int64) (*WatchEvent, error) {
	ctx := h.srv.solveCtx
	cancel := context.CancelFunc(func() {})
	if h.srv.opts.MaxTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, h.srv.opts.MaxTimeout)
	}
	defer cancel()
	b := muppet.Budget{}
	if dl, ok := ctx.Deadline(); ok {
		b.Deadline = dl
	}
	var resp Response
	var execErr error
	ds := tw.cache.Rebase(plan, func() {
		resp, execErr = h.srv.execFn(ctx, st, tw.cache, ow.req, b)
	})
	if execErr != nil {
		return nil, execErr
	}
	return &WatchEvent{
		Tenant: tw.id, Revision: revision, Op: ow.req.Op, Party: ow.req.Party,
		Code: resp.Code, Output: resp.Output, Delta: reportFor(ds, plan),
	}, nil
}

// onSwap is the registry hook: it runs under the reload lock, so it only
// queues the work.
func (h *watchHub) onSwap(old, new *tenant.Entry[*State]) {
	h.enqueue(func() { h.handleSwap(old, new) })
}

// handleSwap recomputes every watched op of a swapped tenant (worker
// only): snapshot the new revision, diff against the previous one, serve
// warm via rebase when compatible, reset the anchor and go cold when not.
func (h *watchHub) handleSwap(old, new *tenant.Entry[*State]) {
	id := ""
	if new != nil {
		id = new.ID
	} else if old != nil {
		id = old.ID
	}
	tw := h.tenants[id]
	if tw == nil {
		return // nobody watches this tenant
	}
	if new == nil {
		h.terminate(tw, "tenant removed")
		delete(h.tenants, id)
		return
	}
	st := new.State
	snap, err := st.Snapshot()
	if err != nil {
		h.terminate(tw, "reload snapshot failed: "+err.Error())
		delete(h.tenants, id)
		return
	}
	plan := muppet.CompareRevisions(tw.prevRev, snap)
	serveState := st
	if plan.Compatible {
		if rb, rerr := st.RebasedOn(tw.baseState.Sys); rerr == nil {
			serveState = rb
		}
	}
	if serveState == st {
		// Cold reset: the new revision becomes the anchor for future diffs.
		tw.baseState = st
		tw.cache = muppet.NewSolveCache()
	}
	tw.prevRev = snap
	tw.revision = new.Revision
	for _, key := range tw.opKeys() {
		ow := tw.ops[key]
		ev, err := h.runOp(tw, ow, serveState, plan, new.Revision)
		if err != nil {
			ev = &WatchEvent{
				Tenant: id, Revision: new.Revision, Op: ow.req.Op, Party: ow.req.Party,
				Code: CodeInternal, Output: "error: " + err.Error(), Delta: reportFor(muppet.DeltaStats{}, plan),
			}
		}
		h.publish(ow, ev)
	}
}

func (tw *tenantWatch) opKeys() []string {
	keys := make([]string, 0, len(tw.ops))
	for k := range tw.ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// terminate publishes a terminal event (no verdict) to every op of a
// tenant — drain or removal; streams close, long-polls return it once.
func (h *watchHub) terminate(tw *tenantWatch, reason string) {
	for _, key := range tw.opKeys() {
		ow := tw.ops[key]
		h.publish(ow, &WatchEvent{
			Tenant: tw.id, Revision: tw.revision, Op: ow.req.Op, Party: ow.req.Party,
			Code: CodeIndeterminate, Terminal: true, Reason: reason,
		})
	}
}

// ---- HTTP surface ----

// DefaultWatchPollTimeout bounds a long-poll with no event; the client
// gets 204 and re-polls.
const DefaultWatchPollTimeout = 25 * time.Second

// serveWatch handles GET /t/{tenant}/watch/{op} and /v1/watch/{op}.
// Long-poll by default: block until an event newer than ?rev=N exists
// (204 on poll timeout). ?stream=1 (or Accept: text/event-stream)
// upgrades to SSE: every new event is pushed as `event: update`, and the
// stream ends with `event: done` on drain, tenant removal, or when the
// per-watcher event budget (?events=N, capped by the server option) is
// spent. ?party= and ?provider= parameterize ops that need them.
func (s *Server) serveWatch(w http.ResponseWriter, r *http.Request, tenantID, op string) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	known := false
	for _, o := range Ops() {
		if o == op {
			known = true
			break
		}
	}
	if !known {
		http.Error(w, fmt.Sprintf("unknown op %q", op), http.StatusNotFound)
		return
	}
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	req := Request{Op: op, Party: q.Get("party"), Provider: q.Get("provider")}
	atomic.AddInt64(&s.watch.watchers, 1)
	defer atomic.AddInt64(&s.watch.watchers, -1)
	ow, err := s.watch.ensure(r.Context(), tenantID, req)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			s.metrics.drop()
		case errors.Is(err, ErrUsage):
			http.Error(w, err.Error(), http.StatusBadRequest)
		case errors.Is(err, errHubClosed):
			http.Error(w, "draining", http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	since, _ := strconv.ParseInt(q.Get("rev"), 10, 64)
	if q.Get("stream") != "" || r.Header.Get("Accept") == "text/event-stream" {
		s.watchStream(w, r, ow, since)
		return
	}
	s.watchPoll(w, r, ow, since)
}

// watchPoll serves one long-poll round: the newest event past ?rev=N, or
// 204 when the poll timeout passes without one.
func (s *Server) watchPoll(w http.ResponseWriter, r *http.Request, ow *opWatch, since int64) {
	pollTimeout := s.opts.WatchPollTimeout
	if pollTimeout <= 0 {
		pollTimeout = DefaultWatchPollTimeout
	}
	timer := time.NewTimer(pollTimeout)
	defer timer.Stop()
	for {
		ev, ch := s.watch.current(ow)
		if ev != nil && (ev.Terminal || ev.Revision > since) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(ev)
			return
		}
		select {
		case <-ch:
		case <-timer.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			s.metrics.drop()
			return
		}
	}
}

// watchStream serves SSE until a terminal event, the watcher's event
// budget, or the client hanging up.
func (s *Server) watchStream(w http.ResponseWriter, r *http.Request, ow *opWatch, since int64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotAcceptable)
		return
	}
	maxEvents := s.opts.WatchMaxEvents
	if q := r.URL.Query().Get("events"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 && (maxEvents <= 0 || n < maxEvents) {
			maxEvents = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	sent := 0
	for {
		ev, ch := s.watch.current(ow)
		if ev != nil && (ev.Terminal || ev.Revision > since) {
			name := "update"
			if ev.Terminal {
				name = "done"
			}
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
			flusher.Flush()
			if ev.Terminal {
				return
			}
			since = ev.Revision
			sent++
			if maxEvents > 0 && sent >= maxEvents {
				done := &WatchEvent{
					Tenant: ev.Tenant, Revision: ev.Revision, Op: ev.Op, Party: ev.Party,
					Code: CodeIndeterminate, Terminal: true, Reason: "event budget spent",
				}
				data, _ := json.Marshal(done)
				fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
				flusher.Flush()
				return
			}
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			s.metrics.drop()
			return
		}
	}
}
