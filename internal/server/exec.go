package server

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"muppet"
)

// Verdict codes shared by the CLI's exit status and the daemon's JSON
// responses, so scripted callers branch identically against either front
// end.
const (
	CodeSat           = 0 // satisfiable / workflow succeeded
	CodeUnsat         = 1 // unsatisfiable / workflow failed with blame
	CodeUsage         = 2 // usage error
	CodeIndeterminate = 3 // budget exhausted or interrupted
	CodeInternal      = 4 // internal or input error
)

// ErrUsage marks request errors the client caused (unknown op, unknown
// party); the HTTP layer maps it to 400, the CLI to its usage exit code.
var ErrUsage = errors.New("usage")

// Request names one mediation query. Op selects the workflow; the other
// fields mirror the corresponding CLI flags and are ignored by ops that
// do not use them. Budgets travel out of band (CLI flags, HTTP headers)
// because they bound the serving machinery, not the question asked.
type Request struct {
	Op       string `json:"op"`
	Party    string `json:"party,omitempty"`    // check: subject party (default k8s)
	From     string `json:"from,omitempty"`     // envelope: sender (default k8s)
	To       string `json:"to,omitempty"`       // envelope: recipient (default istio)
	Leakage  bool   `json:"leakage,omitempty"`  // envelope: also print leaked atoms
	English  bool   `json:"english,omitempty"`  // envelope: also print prose rendering
	Provider string `json:"provider,omitempty"` // conform: inflexible provider (default k8s)
	Rounds   int    `json:"rounds,omitempty"`   // negotiate: max revision rounds (0 = default)
	Peers    string `json:"peers,omitempty"`    // negotiate: federated peer list "k8s=url,istio=url"
}

// Response is one mediation verdict. Output is the exact text the muppet
// CLI prints for the same query — byte-identical by construction, since
// the CLI renders through this same Exec — and Code is the CLI's exit
// code (0 sat, 1 unsat, 3 indeterminate).
type Response struct {
	Op     string `json:"op"`
	Code   int    `json:"code"`
	Output string `json:"output"`
	Stop   string `json:"stop,omitempty"` // stop reason when Code == 3
}

// Exec runs one mediation request against the shared state, solving on
// the given cache (which may be warm from earlier requests) within the
// budget. ctx cancellation surfaces as an indeterminate verdict, never an
// error. Errors are reserved for malformed requests (wrapped ErrUsage)
// and party-construction failures.
func Exec(ctx context.Context, st *State, cache *muppet.SolveCache, req Request, b muppet.Budget) (Response, error) {
	return ExecFed(ctx, st, cache, req, b, nil)
}

// ExecFed is Exec with federated-negotiation plumbing: when a negotiate
// request names Peers, the solve is driven as a coordinator over remote
// mediators instead of an in-process loop, with fopts tuning the retry,
// breaker, and transcript machinery (nil = defaults). All other requests
// pass through to the local path untouched.
func ExecFed(ctx context.Context, st *State, cache *muppet.SolveCache, req Request, b muppet.Budget, fopts *FedOptions) (Response, error) {
	if req.Op == "negotiate" && req.Peers != "" {
		return execFederated(ctx, st, cache, req, b, fopts)
	}
	k8sParty, istioParty, err := st.FreshParties()
	if err != nil {
		return Response{}, err
	}
	pick := func(name, def string) (*muppet.Party, error) {
		if name == "" {
			name = def
		}
		switch strings.ToLower(name) {
		case "k8s", "kubernetes":
			return k8sParty, nil
		case "istio":
			return istioParty, nil
		}
		return nil, fmt.Errorf("%w: unknown party %q (want k8s or istio)", ErrUsage, name)
	}
	other := func(p *muppet.Party) *muppet.Party {
		if p == istioParty {
			return k8sParty
		}
		return istioParty
	}

	var out strings.Builder
	resp := Response{Op: req.Op}
	indeterminate := func(stop muppet.StopReason) {
		fmt.Fprintf(&out, "INDETERMINATE (%s)\n", stop)
		resp.Code = CodeIndeterminate
		resp.Stop = fmt.Sprint(stop)
	}
	// warnDegraded notes an interrupted minimal-edit search on an
	// otherwise successful result: the completion is valid, its edits
	// possibly non-minimal.
	warnDegraded := func(stop muppet.StopReason) {
		if stop != muppet.StopNone {
			fmt.Fprintf(&out, "  (edit search interrupted: %s; edits may be non-minimal)\n", stop)
		}
	}

	switch req.Op {
	case "check":
		subject, err := pick(req.Party, "k8s")
		if err != nil {
			return Response{}, err
		}
		res := cache.LocalConsistencyCtx(ctx, st.Sys, subject, []*muppet.Party{other(subject)}, b)
		switch {
		case res.Indeterminate:
			indeterminate(res.Stop)
		case !res.OK:
			fmt.Fprintln(&out, "INCONSISTENT")
			fmt.Fprintln(&out, res.Feedback)
			resp.Code = CodeUnsat
		default:
			fmt.Fprintln(&out, "CONSISTENT")
			warnDegraded(res.Stop)
			for _, e := range res.Edits {
				fmt.Fprintln(&out, "  soft edit:", e)
			}
		}

	case "envelope":
		sender, err := pick(req.From, "k8s")
		if err != nil {
			return Response{}, err
		}
		recipient, err := pick(req.To, "istio")
		if err != nil {
			return Response{}, err
		}
		env, err := muppet.ComputeEnvelopeCtx(ctx, st.Sys, recipient, []*muppet.Party{sender})
		if err != nil {
			indeterminate(muppet.StopCancelled)
			break
		}
		fmt.Fprint(&out, env)
		if env.Unsatisfiable() {
			fmt.Fprintln(&out, "// WARNING: unsatisfiable — the sender's own settings defeat its goals")
		}
		if req.English {
			fmt.Fprintln(&out)
			fmt.Fprint(&out, muppet.EnglishEnvelope(st.Sys, env))
		}
		if req.Leakage {
			fmt.Fprintln(&out, "// leaked atoms:", strings.Join(env.LeakedAtoms(), ", "))
		}

	case "reconcile":
		res := cache.ReconcileCtx(ctx, st.Sys, []*muppet.Party{k8sParty, istioParty}, b)
		switch {
		case res.Indeterminate:
			indeterminate(res.Stop)
		case !res.OK:
			fmt.Fprintln(&out, "CANNOT RECONCILE")
			fmt.Fprintln(&out, res.Feedback)
			resp.Code = CodeUnsat
		default:
			k8sParty.Adopt(res.Instance)
			istioParty.Adopt(res.Instance)
			fmt.Fprintln(&out, "RECONCILED")
			warnDegraded(res.Stop)
			for _, e := range res.Edits {
				fmt.Fprintln(&out, "  soft edit:", e)
			}
			fmt.Fprintln(&out, "--- K8s configuration ---")
			fmt.Fprint(&out, k8sParty.Describe())
			fmt.Fprintln(&out, "--- Istio configuration ---")
			fmt.Fprint(&out, istioParty.Describe())
		}

	case "conform":
		prov, err := pick(req.Provider, "k8s")
		if err != nil {
			return Response{}, err
		}
		tenant := other(prov)
		o := cache.RunConformanceCtx(ctx, st.Sys, prov, tenant, b)
		if o.Indeterminate {
			fmt.Fprintf(&out, "INDETERMINATE at %s (%s)\n", o.FailedStep, o.Stop)
			resp.Code = CodeIndeterminate
			resp.Stop = fmt.Sprint(o.Stop)
			break
		}
		fmt.Fprintf(&out, "provider locally consistent: %v\n", o.ProviderConsistent)
		if o.Envelope != nil {
			fmt.Fprint(&out, o.Envelope)
		}
		if len(o.Edits) > 0 {
			fmt.Fprintln(&out, "tenant revision edits:")
			for _, e := range o.Edits {
				fmt.Fprintln(&out, "  ", e)
			}
		}
		if !o.Reconciled {
			fmt.Fprintf(&out, "FAILED at %s\n%s\n", o.FailedStep, o.Feedback)
			resp.Code = CodeUnsat
			break
		}
		fmt.Fprintln(&out, "CONFORMED")
		fmt.Fprintln(&out, "--- delivered tenant configuration ---")
		fmt.Fprint(&out, tenant.Describe())

	case "negotiate":
		n := muppet.NewNegotiation(st.Sys, k8sParty, istioParty).UseCache(cache)
		if req.Rounds > 0 {
			n.MaxRounds = req.Rounds
		}
		o := n.RunCtx(ctx, b)
		if o.InitialReconcile {
			fmt.Fprintln(&out, "initial offers reconciled immediately")
		}
		for _, r := range o.Rounds {
			fmt.Fprintf(&out, "round %d: %s ", r.Round, r.Party)
			switch {
			case r.Indeterminate:
				fmt.Fprintln(&out, "was interrupted mid-round")
			case r.Stuck:
				fmt.Fprintln(&out, "is stuck — administrators must talk")
			case r.ConformedAlready:
				fmt.Fprintln(&out, "already conforms")
			case r.Revised:
				fmt.Fprintf(&out, "revised with %d edits\n", len(r.Edits))
			}
			if r.Reconciled {
				fmt.Fprintln(&out, "  → reconciled")
			}
		}
		switch {
		case o.Reason == muppet.ReasonIndeterminate:
			fmt.Fprintf(&out, "NEGOTIATION INDETERMINATE (%s)\n", o.Stop)
			resp.Code = CodeIndeterminate
			resp.Stop = fmt.Sprint(o.Stop)
		case !o.Reconciled:
			fmt.Fprintf(&out, "NEGOTIATION FAILED (%s)\n%s\n", o.Reason, o.Feedback)
			resp.Code = CodeUnsat
		default:
			fmt.Fprintln(&out, "NEGOTIATED")
			fmt.Fprintln(&out, "--- K8s configuration ---")
			fmt.Fprint(&out, k8sParty.Describe())
			fmt.Fprintln(&out, "--- Istio configuration ---")
			fmt.Fprint(&out, istioParty.Describe())
		}

	default:
		return Response{}, fmt.Errorf("%w: unknown op %q", ErrUsage, req.Op)
	}
	resp.Output = out.String()
	return resp, nil
}

// Ops lists the mediation operations Exec serves, in the order the paper
// presents them.
func Ops() []string {
	return []string{"check", "envelope", "reconcile", "conform", "negotiate"}
}
