package server

import (
	"context"
	"sync"
	"time"

	"muppet/internal/tenant"
)

// job is one admitted request: the tenant revision it was admitted
// against, the query, its budget caps as requested (the worker starts
// the deadline clock at dequeue, so queue wait does not eat the solve
// budget), and a buffered channel the worker hands the result back on —
// buffered so an abandoned job never blocks its worker.
type job struct {
	ctx          context.Context
	ent          *tenant.Entry[*State]
	req          Request
	timeout      time.Duration
	maxConflicts int64
	done         chan jobResult
}

type jobResult struct {
	resp Response
	err  error
}

// pool is the admission layer: a bounded queue in front of a fixed set of
// worker goroutines. Admission never blocks — a full queue is an overload
// signal the HTTP layer turns into 429 — so goroutine count and memory
// stay bounded no matter the offered load.
type pool struct {
	queue chan *job
	run   func(ctx context.Context, worker int, j *job) (Response, error)

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

func newPool(workers, depth int, run func(ctx context.Context, worker int, j *job) (Response, error)) *pool {
	p := &pool{queue: make(chan *job, depth), run: run}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

func (p *pool) worker(w int) {
	defer p.wg.Done()
	for j := range p.queue {
		if err := j.ctx.Err(); err != nil {
			// The client gave up while the job sat in the queue: don't
			// burn a solve on an answer nobody will read.
			j.done <- jobResult{err: err}
			continue
		}
		resp, err := p.run(j.ctx, w, j)
		j.done <- jobResult{resp: resp, err: err}
	}
}

// admit enqueues j if there is room, reporting false on overload or
// after close. It never blocks.
func (p *pool) admit(j *job) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- j:
		return true
	default:
		return false
	}
}

// depth reports the current queue backlog (admitted, not yet dequeued).
func (p *pool) depth() int { return len(p.queue) }

// capacity reports the queue bound.
func (p *pool) capacity() int { return cap(p.queue) }

// close stops admission and waits for the workers to finish the backlog.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
