package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// goalsAllow23 flips the port-23 ban to an allow: a one-tuple goal edit
// that keeps the universe, so watch mode serves it warm via rebase.
const goalsAllow23 = "port,perm,selector\n23,ALLOW,*\n"

// pollWatch runs one long-poll round and decodes the event (nil on 204).
func pollWatch(t *testing.T, client *http.Client, base, tenantID, op string, since int64) *WatchEvent {
	t.Helper()
	url := fmt.Sprintf("%s/t/%s/watch/%s?rev=%d", base, tenantID, op, since)
	res, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	switch res.StatusCode {
	case http.StatusNoContent:
		return nil
	case http.StatusOK:
		var ev WatchEvent
		if err := json.NewDecoder(res.Body).Decode(&ev); err != nil {
			t.Fatal(err)
		}
		return &ev
	default:
		t.Fatalf("watch %s: status %d", url, res.StatusCode)
		return nil
	}
}

// TestWatchLifecycle is the satellite acceptance: a watcher across a hot
// reload sees exactly one update per revision — never a torn or
// duplicate event — the update matches the cold answer for the new
// bundle, and a second reload keeps the sequence going.
func TestWatchLifecycle(t *testing.T) {
	dir := t.TempDir()
	goalsPath := tenantManifest(t, dir, "alpha", goalsBan23)
	s := multiTenantServer(t, dir, Options{
		Concurrency: 2, QueueDepth: 16, WatchPollTimeout: 2 * time.Second,
	})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()
	client := hs.Client()

	// Baseline: the first poll returns revision 1 immediately, and its
	// verdict matches the cold direct execution of the same manifest.
	ev := pollWatch(t, client, hs.URL, "alpha", "reconcile", 0)
	if ev == nil || ev.Revision != 1 {
		t.Fatalf("baseline event = %+v, want revision 1", ev)
	}
	ref := refResponse(t, dir, "alpha", Request{Op: "reconcile"})
	if ev.Code != ref.Code || ev.Output != ref.Output {
		t.Fatalf("baseline differs from cold:\n--- cold ---\n%s\n--- watch ---\n%s", ref.Output, ev.Output)
	}
	if ev.Delta == nil || !ev.Delta.Cold || ev.Delta.Reason != "baseline" {
		t.Fatalf("baseline delta = %+v", ev.Delta)
	}

	// Re-polling with rev=1 blocks; a hot reload (the SIGHUP path is
	// Rescan) publishes exactly one revision-2 event to the waiting poll.
	type polled struct {
		ev  *WatchEvent
		idx int
	}
	events := make(chan polled, 4)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ { // three concurrent watchers, same op
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			events <- polled{pollWatch(t, client, hs.URL, "alpha", "reconcile", 1), idx}
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the polls park
	if err := os.WriteFile(goalsPath, []byte(goalsAllow23), 0o644); err != nil {
		t.Fatal(err)
	}
	if rep, err := s.Registry().Rescan(); err != nil || len(rep.Reloaded) != 1 {
		t.Fatalf("rescan: %+v err=%v", rep, err)
	}
	wg.Wait()
	close(events)

	refB := refResponse(t, dir, "alpha", Request{Op: "reconcile"})
	n := 0
	for p := range events {
		n++
		if p.ev == nil || p.ev.Revision != 2 {
			t.Fatalf("watcher %d: event = %+v, want revision 2", p.idx, p.ev)
		}
		if p.ev.Code != refB.Code || p.ev.Output != refB.Output {
			t.Fatalf("watcher %d: update differs from cold reconcile of the new bundle", p.idx)
		}
		if p.ev.Delta == nil {
			t.Fatalf("watcher %d: no delta report", p.idx)
		}
		if p.ev.Delta.Cold {
			t.Fatalf("watcher %d: same-universe goal edit went cold: %+v", p.idx, p.ev.Delta)
		}
		if p.ev.Delta.GoalsAdded != 1 || p.ev.Delta.GoalsRemoved != 1 {
			t.Fatalf("watcher %d: goal churn = +%d/-%d, want +1/-1",
				p.idx, p.ev.Delta.GoalsAdded, p.ev.Delta.GoalsRemoved)
		}
	}
	if n != 3 {
		t.Fatalf("got %d events, want 3", n)
	}

	// An unchanged rescan publishes nothing: polling past revision 2 times
	// out empty rather than duplicating the last event.
	if _, err := s.Registry().Rescan(); err != nil {
		t.Fatal(err)
	}
	if ev := pollWatch(t, client, hs.URL, "alpha", "reconcile", 2); ev != nil {
		t.Fatalf("duplicate event after no-op rescan: %+v", ev)
	}

	// A watcher that missed revision 2 (rev=1) still gets it: sticky state,
	// not a broadcast-only bus.
	if ev := pollWatch(t, client, hs.URL, "alpha", "reconcile", 1); ev == nil || ev.Revision != 2 {
		t.Fatalf("late poll = %+v, want revision 2", ev)
	}
}

// TestWatchStreamAndDrain covers the SSE surface: a stream sees the
// baseline, then one update per reload in order, and Drain closes it
// with a terminal done event.
func TestWatchStreamAndDrain(t *testing.T) {
	dir := t.TempDir()
	goalsPath := tenantManifest(t, dir, "alpha", goalsBan23)
	s := multiTenantServer(t, dir, Options{Concurrency: 2, QueueDepth: 16})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		hs.URL+"/t/alpha/watch/reconcile?stream=1", nil)
	res, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	type sse struct {
		name string
		ev   WatchEvent
	}
	stream := make(chan sse, 8)
	go func() {
		defer close(stream)
		sc := bufio.NewScanner(res.Body)
		var name string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				var ev WatchEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					return
				}
				stream <- sse{name, ev}
			}
		}
	}()
	next := func(want string) WatchEvent {
		t.Helper()
		select {
		case e, ok := <-stream:
			if !ok {
				t.Fatal("stream closed early")
			}
			if e.name != want {
				t.Fatalf("event %q (rev %d), want %q", e.name, e.ev.Revision, want)
			}
			return e.ev
		case <-time.After(20 * time.Second):
			t.Fatalf("timed out waiting for %q event", want)
			return WatchEvent{}
		}
	}

	if ev := next("update"); ev.Revision != 1 {
		t.Fatalf("baseline revision = %d", ev.Revision)
	}
	// Two reloads; the stream must deliver revision 2 then 3, exactly once
	// each, in order.
	for i, goals := range []string{goalsBan24, goalsBan23} {
		if err := os.WriteFile(goalsPath, []byte(goals), 0o644); err != nil {
			t.Fatal(err)
		}
		if rep, err := s.Registry().Rescan(); err != nil || len(rep.Reloaded) != 1 {
			t.Fatalf("rescan %d: %+v err=%v", i, rep, err)
		}
		if ev := next("update"); ev.Revision != int64(2+i) {
			t.Fatalf("update %d: revision = %d, want %d", i, ev.Revision, 2+i)
		}
	}

	// Drain ends the stream with a terminal done event.
	s.Drain()
	ev := next("done")
	if !ev.Terminal || ev.Reason != "drain" {
		t.Fatalf("terminal event = %+v", ev)
	}
	if _, ok := <-stream; ok {
		t.Fatal("stream kept going after the terminal event")
	}

	// New watch requests are refused while draining.
	res2, err := hs.Client().Get(hs.URL + "/t/alpha/watch/reconcile")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("watch while draining: status %d, want 503", res2.StatusCode)
	}
}

// TestWatchEventBudget: an SSE watcher with ?events=1 gets one update
// and then a terminal budget event.
func TestWatchEventBudget(t *testing.T) {
	dir := t.TempDir()
	tenantManifest(t, dir, "alpha", goalsBan23)
	s := multiTenantServer(t, dir, Options{Concurrency: 2, QueueDepth: 16})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	res, err := hs.Client().Get(hs.URL + "/t/alpha/watch/reconcile?stream=1&events=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	sc := bufio.NewScanner(res.Body)
	var names []string
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			names = append(names, strings.TrimPrefix(sc.Text(), "event: "))
		}
	}
	want := []string{"update", "done"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("events = %v, want %v", names, want)
	}
}

// TestWatchValidation pins the error surface: bad op, bad tenant, bad
// method.
func TestWatchValidation(t *testing.T) {
	dir := t.TempDir()
	tenantManifest(t, dir, "alpha", goalsBan23)
	s := multiTenantServer(t, dir, Options{Concurrency: 1, QueueDepth: 4})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()
	client := hs.Client()

	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/t/alpha/watch/frobnicate", http.StatusNotFound},
		{http.MethodGet, "/t/ghost/watch/reconcile", http.StatusBadRequest},
		{http.MethodPost, "/t/alpha/watch/reconcile", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, hs.URL+tc.path, nil)
		res, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != tc.want {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, res.StatusCode, tc.want)
		}
	}
}
