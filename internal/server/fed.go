package server

import (
	"context"
	"fmt"
	"strings"

	"muppet"
	"muppet/internal/feder"
)

// FedOptions aliases the federation robustness knobs so front ends (the
// muppet CLI's -federated mode, the daemon's execFn) can tune retries,
// breakers, deadlines, and transcripts without importing feder.
type FedOptions = feder.Options

// ParsePeers reads the -peers / Request.Peers syntax: comma-separated
// name=url pairs, one per negotiating party.
//
//	k8s=http://127.0.0.1:7001,istio=http://127.0.0.1:7002
func ParsePeers(s string) ([]feder.PeerRef, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("%w: empty peer list", ErrUsage)
	}
	var out []feder.PeerRef
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("%w: bad peer %q (want name=url)", ErrUsage, part)
		}
		out = append(out, feder.PeerRef{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty peer list", ErrUsage)
	}
	return out, nil
}

// execFederated drives a negotiate request as the federated coordinator.
// The rendering mirrors the single-process negotiate arm of Exec line for
// line, so on the outcomes both modes can reach (reconciled, failed,
// indeterminate) the Output is byte-identical; only the distributed-only
// peer-unreachable degradation renders differently.
func execFederated(ctx context.Context, st *State, cache *muppet.SolveCache, req Request, b muppet.Budget, fopts *FedOptions) (Response, error) {
	peers, err := ParsePeers(req.Peers)
	if err != nil {
		return Response{}, err
	}
	replicas, err := st.FedReplicas()
	if err != nil {
		return Response{}, err
	}
	var opts FedOptions
	if fopts != nil {
		opts = *fopts
	}
	if req.Rounds > 0 {
		opts.Rounds = req.Rounds
	}
	coord, err := feder.NewCoordinator(st.Sys, replicas, peers, opts)
	if err != nil {
		return Response{}, fmt.Errorf("%w: %v", ErrUsage, err)
	}
	if cache != nil {
		coord.UseCache(cache)
	}

	o := coord.Run(ctx, b)

	var out strings.Builder
	resp := Response{Op: req.Op}
	if o.InitialReconcile {
		fmt.Fprintln(&out, "initial offers reconciled immediately")
	}
	for _, r := range o.Rounds {
		fmt.Fprintf(&out, "round %d: %s ", r.Round, r.Party)
		switch {
		case r.Indeterminate:
			fmt.Fprintln(&out, "was interrupted mid-round")
		case r.Stuck:
			fmt.Fprintln(&out, "is stuck — administrators must talk")
		case r.ConformedAlready:
			fmt.Fprintln(&out, "already conforms")
		case r.Revised:
			fmt.Fprintf(&out, "revised with %d edits\n", len(r.Edits))
		}
		if r.Reconciled {
			fmt.Fprintln(&out, "  → reconciled")
		}
	}
	describeAll := func() {
		fmt.Fprintln(&out, "--- K8s configuration ---")
		fmt.Fprint(&out, replicas[0].P.Describe())
		fmt.Fprintln(&out, "--- Istio configuration ---")
		fmt.Fprint(&out, replicas[1].P.Describe())
	}
	switch {
	case o.Reason == feder.FedIndeterminate:
		fmt.Fprintf(&out, "NEGOTIATION INDETERMINATE (%s)\n", o.Stop)
		resp.Code = CodeIndeterminate
		resp.Stop = fmt.Sprint(o.Stop)
	case o.Reason == feder.FedPeerUnreachable:
		// Graceful degradation: the replicas hold the best-so-far partial
		// agreement; report it with the typed failure instead of tearing
		// it down.
		fmt.Fprintf(&out, "NEGOTIATION DEGRADED (%s)\n%v\n", o.Reason, o.PeerErr)
		fmt.Fprintln(&out, "--- best-so-far K8s configuration ---")
		fmt.Fprint(&out, replicas[0].P.Describe())
		fmt.Fprintln(&out, "--- best-so-far Istio configuration ---")
		fmt.Fprint(&out, replicas[1].P.Describe())
		resp.Code = CodeIndeterminate
		resp.Stop = o.Reason.String()
	case !o.Reconciled:
		fmt.Fprintf(&out, "NEGOTIATION FAILED (%s)\n%s\n", o.Reason, o.Feedback)
		resp.Code = CodeUnsat
	default:
		fmt.Fprintln(&out, "NEGOTIATED")
		describeAll()
	}
	resp.Output = out.String()
	return resp, nil
}
