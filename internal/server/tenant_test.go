package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"muppet/internal/tenant"
)

// tenantManifest writes one tenant under dir: fig1's bundle files plus a
// tenant.yaml, with the K8s goals CSV made per-tenant so tests can vary
// (and hot-rewrite) it independently.
func tenantManifest(t *testing.T, dir, id, k8sGoals string) string {
	t.Helper()
	td := filepath.Join(dir, id)
	if err := os.MkdirAll(td, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"mesh.yaml", "k8s_current.yaml", "istio_current.yaml", "istio_goals_revised.csv"} {
		data, err := os.ReadFile(fig1Dir + f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(td, f), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	goalsPath := filepath.Join(td, "k8s_goals.csv")
	if err := os.WriteFile(goalsPath, []byte(k8sGoals), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := `files:
  - mesh.yaml
  - k8s_current.yaml
  - istio_current.yaml
k8s-goals: k8s_goals.csv
istio-goals: istio_goals_revised.csv
k8s-offer: soft
istio-offer: soft
`
	if err := os.WriteFile(filepath.Join(td, tenant.ManifestName), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	return goalsPath
}

const (
	goalsBan23 = "port,perm,selector\n23,DENY,*\n"
	goalsBan24 = "port,perm,selector\n24,DENY,*\n"
)

// refResponse computes the cold, direct-execution reference for a tenant
// manifest — what the one-shot CLI would print for the same inputs.
func refResponse(t *testing.T, dir, id string, req Request) Response {
	t.Helper()
	st, _, err := ManifestLoader(filepath.Join(dir, id, tenant.ManifestName))()
	if err != nil {
		t.Fatal(err)
	}
	return execDirect(t, st, req)
}

func postTenantOp(t *testing.T, client *http.Client, base, tenantID string, req Request) (*http.Response, Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	res, err := client.Post(base+"/t/"+tenantID+"/"+req.Op, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out Response
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatalf("%s/%s: bad response body: %v", tenantID, req.Op, err)
		}
	} else {
		io.Copy(io.Discard, res.Body)
	}
	return res, out
}

// multiTenantServer builds a server over a tenant directory.
func multiTenantServer(t *testing.T, dir string, opts Options) *Server {
	t.Helper()
	reg := tenant.NewRegistry[*State](tenant.NewLedger(opts.CacheBudgetBytes))
	reg.SetDiscover(DirDiscover(dir))
	rep, err := reg.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	for id, ferr := range rep.Failed {
		t.Fatalf("tenant %s failed to load: %v", id, ferr)
	}
	return NewMulti(reg, opts)
}

// TestMultiTenantServing is the satellite acceptance: a two-tenant
// daemon serves interleaved traffic with outputs byte-identical to each
// tenant's cold direct execution, and tenants with different inputs get
// different answers.
func TestMultiTenantServing(t *testing.T) {
	dir := t.TempDir()
	tenantManifest(t, dir, "alpha", goalsBan23)
	tenantManifest(t, dir, "bravo", goalsBan24)
	s := multiTenantServer(t, dir, Options{Concurrency: 2, QueueDepth: 16})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	reqs := []Request{{Op: "check", Party: "k8s"}, {Op: "reconcile"}}
	want := map[string]map[string]Response{}
	for _, id := range []string{"alpha", "bravo"} {
		want[id] = map[string]Response{}
		for _, req := range reqs {
			want[id][req.Op] = refResponse(t, dir, id, req)
		}
	}
	if want["alpha"]["reconcile"].Output == want["bravo"]["reconcile"].Output {
		t.Fatal("test setup: the two tenants must produce different reconcile outputs")
	}

	// Interleave tenants so warm caches for both coexist in the pools.
	for round := 0; round < 2; round++ {
		for _, id := range []string{"alpha", "bravo"} {
			for _, req := range reqs {
				res, got := postTenantOp(t, hs.Client(), hs.URL, id, req)
				if res.StatusCode != http.StatusOK {
					t.Fatalf("%s/%s: HTTP %d", id, req.Op, res.StatusCode)
				}
				w := want[id][req.Op]
				if got.Code != w.Code || got.Output != w.Output {
					t.Fatalf("%s/%s: daemon response differs from cold direct execution\n--- daemon ---\n%s\n--- direct ---\n%s",
						id, req.Op, got.Output, w.Output)
				}
			}
		}
	}

	// No "default" tenant in this registry: the /v1/ surface 404s instead
	// of silently serving somebody's bundle.
	if res, _ := postOp(t, hs.Client(), hs.URL, Request{Op: "check"}, nil); res.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/check without a default tenant: HTTP %d, want 404", res.StatusCode)
	}
	if res, _ := postTenantOp(t, hs.Client(), hs.URL, "ghost", Request{Op: "check"}); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: HTTP %d, want 404", res.StatusCode)
	}
	if res, _ := postTenantOp(t, hs.Client(), hs.URL, "alpha", Request{Op: "bogus"}); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown op: HTTP %d, want 404", res.StatusCode)
	}
}

func TestTenantsAdminSurface(t *testing.T) {
	dir := t.TempDir()
	goalsPath := tenantManifest(t, dir, "alpha", goalsBan23)
	tenantManifest(t, dir, "bravo", goalsBan24)
	s := multiTenantServer(t, dir, Options{Concurrency: 1, QueueDepth: 4})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	getTenants := func() TenantsReply {
		t.Helper()
		res, err := hs.Client().Get(hs.URL + "/tenants")
		if err != nil || res.StatusCode != http.StatusOK {
			t.Fatalf("GET /tenants: %v %v", res.StatusCode, err)
		}
		defer res.Body.Close()
		var reply TenantsReply
		if err := json.NewDecoder(res.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		return reply
	}
	reply := getTenants()
	if len(reply.Tenants) != 2 || reply.Tenants[0].ID != "alpha" || reply.Tenants[1].ID != "bravo" {
		t.Fatalf("tenants = %+v", reply.Tenants)
	}
	for _, ti := range reply.Tenants {
		if ti.Revision != 1 || ti.Fingerprint == "" {
			t.Fatalf("tenant %s: %+v", ti.ID, ti)
		}
	}
	if reply.Router != "builtin:warm" {
		t.Fatalf("router = %q", reply.Router)
	}

	reload := func(id, query string) (*http.Response, ReloadReply) {
		t.Helper()
		res, err := hs.Client().Post(hs.URL+"/tenants/"+id+"/reload"+query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var rr ReloadReply
		if res.StatusCode == http.StatusOK {
			json.NewDecoder(res.Body).Decode(&rr)
		} else {
			io.Copy(io.Discard, res.Body)
		}
		return res, rr
	}

	// Unchanged inputs: reload is a fingerprint-skipped no-op.
	if res, rr := reload("alpha", ""); res.StatusCode != http.StatusOK || rr.Swapped || rr.Revision != 1 {
		t.Fatalf("no-op reload: HTTP %d %+v", res.StatusCode, rr)
	}
	// Forced: swaps regardless.
	if res, rr := reload("alpha", "?force=1"); res.StatusCode != http.StatusOK || !rr.Swapped || rr.Revision != 2 {
		t.Fatalf("forced reload: HTTP %d %+v", res.StatusCode, rr)
	}
	// Changed inputs: a plain reload swaps.
	if err := os.WriteFile(goalsPath, []byte(goalsBan24), 0o644); err != nil {
		t.Fatal(err)
	}
	if res, rr := reload("alpha", ""); res.StatusCode != http.StatusOK || !rr.Swapped || rr.Revision != 3 {
		t.Fatalf("changed reload: HTTP %d %+v", res.StatusCode, rr)
	}
	// A broken edit keeps the old revision serving and reports the error.
	if err := os.WriteFile(goalsPath, []byte("port,perm,selector\nnot-a-port,deny,all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if res, _ := reload("alpha", ""); res.StatusCode != http.StatusBadGateway {
		t.Fatalf("broken reload: HTTP %d, want 502", res.StatusCode)
	}
	if got := getTenants().Tenants[0]; got.Revision != 3 {
		t.Fatalf("revision after failed reload = %d, want 3", got.Revision)
	}
	if res, got := postTenantOp(t, hs.Client(), hs.URL, "alpha", Request{Op: "check", Party: "k8s"}); res.StatusCode != http.StatusOK || got.Code != CodeSat {
		t.Fatalf("serving after failed reload: HTTP %d code %d", res.StatusCode, got.Code)
	}

	if res, _ := reload("ghost", ""); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant reload: HTTP %d, want 404", res.StatusCode)
	}

	// The tenant metrics surface carries the per-tenant series.
	mres, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	body, _ := io.ReadAll(mres.Body)
	text := string(body)
	for _, wantLine := range []string{
		"muppetd_tenants 2",
		`muppetd_tenant_revision{tenant="alpha"} 3`,
		`muppetd_tenant_reloads_total{tenant="alpha"} 2`,
		`muppetd_tenant_requests_total{tenant="alpha",op="check",code="0"} 1`,
		`muppetd_tenant_cache_idle_caches{tenant="alpha"}`,
		"muppetd_cache_budget_bytes 0",
	} {
		if !strings.Contains(text, wantLine) {
			t.Errorf("/metrics missing %q", wantLine)
		}
	}
}

// TestHotReloadUnderLoad is the tentpole acceptance test: under
// concurrent traffic, a hot reload swaps a tenant's state without losing
// or tearing a single request — every response is byte-identical to the
// old revision's reference or the new one's, and once the swap is
// observed, traffic converges on the new answers.
func TestHotReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	goalsPath := tenantManifest(t, dir, "acme", goalsBan23)
	req := Request{Op: "reconcile"}
	oldRef := refResponse(t, dir, "acme", req)

	s := multiTenantServer(t, dir, Options{Concurrency: 4, QueueDepth: 64})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	// Compute the post-reload reference from a scratch copy of the same
	// inputs, before the live tenant dir is rewritten.
	refDir := t.TempDir()
	tenantManifest(t, refDir, "acme", goalsBan24)
	newRef := refResponse(t, refDir, "acme", req)
	if oldRef.Output == newRef.Output {
		t.Fatal("test setup: the two revisions must produce different outputs")
	}

	const clients, perClient = 6, 6
	swapped := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	sawOld := false
	sawNew := false
	var tallyMu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if c == 0 && i == perClient/2 {
					// Mid-traffic, rewrite the tenant's goals and hot-reload.
					if err := os.WriteFile(goalsPath, []byte(goalsBan24), 0o644); err != nil {
						errs <- err
						return
					}
					res, err := hs.Client().Post(hs.URL+"/tenants/acme/reload", "", nil)
					if err != nil {
						errs <- err
						return
					}
					res.Body.Close()
					if res.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("reload: HTTP %d", res.StatusCode)
						return
					}
					close(swapped)
				}
				res, got := postTenantOp(t, hs.Client(), hs.URL, "acme", req)
				if res.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: HTTP %d", c, res.StatusCode)
					return
				}
				switch got.Output {
				case oldRef.Output:
					tallyMu.Lock()
					sawOld = true
					tallyMu.Unlock()
				case newRef.Output:
					tallyMu.Lock()
					sawNew = true
					tallyMu.Unlock()
				default:
					errs <- fmt.Errorf("client %d: torn response, matches neither revision:\n%s", c, got.Output)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !sawOld || !sawNew {
		t.Logf("revision mix: old=%v new=%v (both sides exercised is best, but timing-dependent)", sawOld, sawNew)
	}

	// After the dust settles, traffic must serve the new revision only.
	res, got := postTenantOp(t, hs.Client(), hs.URL, "acme", req)
	if res.StatusCode != http.StatusOK || got.Output != newRef.Output {
		t.Fatalf("post-reload response still on old revision (HTTP %d)", res.StatusCode)
	}
	ent, _ := s.Registry().Get("acme")
	if ent.Revision != 2 {
		t.Fatalf("revision = %d, want 2", ent.Revision)
	}
}

// TestRouterVerdictEquivalence asserts the composable-routing guarantee:
// a parallel race of warm and fresh pools and a sequential fallback
// chain return byte-identical verdicts to the plain single-pool server —
// racing is a latency strategy, never a semantics change.
func TestRouterVerdictEquivalence(t *testing.T) {
	st := fig1State(t)
	reqs := []Request{
		{Op: "check", Party: "k8s"},
		{Op: "reconcile"},
	}
	want := map[string]Response{}
	for _, req := range reqs {
		want[req.Op] = execDirect(t, st, req)
	}

	routers := map[string]string{
		"parallel": `pools:
  warm-cache:
    type: warm
  fresh-portfolio:
    type: fresh
  race:
    type: parallel
    pools: [warm-cache, fresh-portfolio]
methods:
  default: race
`,
		"sequential": `pools:
  warm-cache:
    type: warm
  fresh-portfolio:
    type: fresh
  fallback:
    type: sequential
    pools: [fresh-portfolio, warm-cache]
methods:
  default: fallback
`,
		"single": "pools:\n  warm-cache:\n    type: warm\n",
	}
	for name, yaml := range routers {
		t.Run(name, func(t *testing.T) {
			cfg, err := tenant.ParseRouterConfig([]byte(yaml))
			if err != nil {
				t.Fatal(err)
			}
			r, err := tenant.NewRouter(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := New(st, Options{Concurrency: 2, QueueDepth: 8, Router: r})
			defer s.Close()
			hs := httptest.NewServer(s)
			defer hs.Close()
			for round := 0; round < 2; round++ { // round 2 hits warm sessions
				for _, req := range reqs {
					res, got := postOp(t, hs.Client(), hs.URL, req, nil)
					if res.StatusCode != http.StatusOK {
						t.Fatalf("%s: HTTP %d", req.Op, res.StatusCode)
					}
					w := want[req.Op]
					if got.Code != w.Code || got.Output != w.Output {
						t.Fatalf("%s via %s router differs from single-pool reference\n--- got ---\n%s\n--- want ---\n%s",
							req.Op, name, got.Output, w.Output)
					}
				}
			}
			// The attempt counters must show the routed pools actually ran.
			mres, err := hs.Client().Get(hs.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			defer mres.Body.Close()
			body, _ := io.ReadAll(mres.Body)
			if !strings.Contains(string(body), "muppetd_pool_attempts_total") {
				t.Error("/metrics missing pool attempt counters")
			}
		})
	}
}
