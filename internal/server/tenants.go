package server

import (
	"strings"

	"muppet/internal/tenant"
)

// This file bridges the generic tenant registry to the server's State:
// how a tenant's declared inputs (flags or a tenant.yaml) become a
// loaded, validated serving state with a reload fingerprint.

// LoaderFromConfig adapts a flag-style Config into a tenant loader. The
// fingerprint covers the named input files, so a rescan reloads the
// tenant when any of them changes on disk.
func LoaderFromConfig(cfg Config) tenant.LoadFunc[*State] {
	return func() (*State, string, error) {
		st, err := Load(cfg)
		if err != nil {
			return nil, "", err
		}
		return st, tenant.Fingerprint(configInputs(cfg)...), nil
	}
}

func configInputs(cfg Config) []string {
	var paths []string
	if cfg.Files != "" {
		paths = append(paths, strings.Split(cfg.Files, ",")...)
	}
	if cfg.K8sGoals != "" {
		paths = append(paths, cfg.K8sGoals)
	}
	if cfg.IstioGoals != "" {
		paths = append(paths, cfg.IstioGoals)
	}
	return paths
}

// ManifestLoader builds a tenant loader over a tenant.yaml path. Each
// load re-reads the manifest, so edits to the manifest itself (not just
// the files it names) are picked up by reload; the fingerprint covers
// the manifest and every input it names.
func ManifestLoader(manifestPath string) tenant.LoadFunc[*State] {
	return func() (*State, string, error) {
		m, err := tenant.LoadManifest(manifestPath)
		if err != nil {
			return nil, "", err
		}
		st, err := Load(Config{
			Files:      strings.Join(m.Files, ","),
			K8sGoals:   m.K8sGoals,
			IstioGoals: m.IstioGoals,
			K8sOffer:   m.K8sOffer,
			IstioOffer: m.IstioOffer,
			Ports:      m.PortsCSV(),
		})
		if err != nil {
			return nil, "", err
		}
		return st, tenant.Fingerprint(m.InputPaths(manifestPath)...), nil
	}
}

// DirDiscover enumerates a tenant directory for Registry.Rescan: every
// `<dir>/<id>/tenant.yaml` is a tenant named by its subdirectory.
func DirDiscover(dir string) func() (map[string]tenant.LoadFunc[*State], error) {
	return func() (map[string]tenant.LoadFunc[*State], error) {
		found, err := tenant.ScanDir(dir)
		if err != nil {
			return nil, err
		}
		loaders := make(map[string]tenant.LoadFunc[*State], len(found))
		for id, mp := range found {
			loaders[id] = ManifestLoader(mp)
		}
		return loaders, nil
	}
}
