package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// TenantInfo is one tenant's row in the GET /tenants reply.
type TenantInfo struct {
	ID          string   `json:"id"`
	Revision    int64    `json:"revision"`
	Fingerprint string   `json:"fingerprint,omitempty"`
	Reloads     int64    `json:"reloads"`
	Pool        PoolInfo `json:"pool"`
}

// PoolInfo is a tenant cache pool's row in the GET /tenants reply.
type PoolInfo struct {
	IdleCaches int   `json:"idle_caches"`
	Bytes      int64 `json:"bytes"`
	Checkouts  int64 `json:"checkouts"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	Sessions   int64 `json:"sessions"`
	Reuses     int64 `json:"reuses"`
}

// TenantsReply is the GET /tenants body: the fleet view an operator (or
// the smoke test) reads to see who is loaded at which revision and where
// the cache budget is going.
type TenantsReply struct {
	Router           string       `json:"router"`
	CacheBudgetBytes int64        `json:"cache_budget_bytes"`
	CacheIdleBytes   int64        `json:"cache_idle_bytes"`
	CacheEvictions   int64        `json:"cache_evictions"`
	Tenants          []TenantInfo `json:"tenants"`
}

// ReloadReply is the POST /tenants/{id}/reload body.
type ReloadReply struct {
	ID       string `json:"id"`
	Revision int64  `json:"revision"`
	Swapped  bool   `json:"swapped"`
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	ledger := s.registry.Ledger()
	reply := TenantsReply{
		Router:           s.router.Source(),
		CacheBudgetBytes: ledger.Budget(),
		CacheIdleBytes:   ledger.TotalBytes(),
		CacheEvictions:   ledger.Evictions(),
		Tenants:          []TenantInfo{},
	}
	for _, ent := range s.registry.Entries() {
		ps := ent.Pool.Stats()
		reply.Tenants = append(reply.Tenants, TenantInfo{
			ID:          ent.ID,
			Revision:    ent.Revision,
			Fingerprint: ent.Fingerprint,
			Reloads:     s.registry.Reloads(ent.ID),
			Pool: PoolInfo{
				IdleCaches: ps.IdleCount,
				Bytes:      ps.Bytes,
				Checkouts:  ps.Checkouts,
				Misses:     ps.Misses,
				Evictions:  ps.Evictions,
				Sessions:   ps.Reuse.Sessions,
				Reuses:     ps.Reuse.Reuses,
			},
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}

// handleTenantAdmin serves POST /tenants/{id}/reload: re-run the
// tenant's loader and swap in the new revision. By default the swap is
// skipped when the input fingerprint is unchanged; ?force=1 swaps
// regardless (useful to shed a tenant's warm caches). A failed load
// keeps the old revision serving and reports 502.
func (s *Server) handleTenantAdmin(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/tenants/")
	id, action, ok := strings.Cut(rest, "/")
	if !ok || action != "reload" || id == "" {
		http.Error(w, "want /tenants/{id}/reload", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	force := r.URL.Query().Get("force") == "1"
	if _, known := s.registry.Get(id); !known {
		http.Error(w, fmt.Sprintf("unknown tenant %q", id), http.StatusNotFound)
		return
	}
	ent, swapped, err := s.registry.Reload(id, force)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ReloadReply{ID: ent.ID, Revision: ent.Revision, Swapped: swapped})
}
