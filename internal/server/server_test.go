package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"muppet"
)

const fig1Dir = "../../testdata/fig1/"

func fig1Config() Config {
	return Config{
		Files:      fig1Dir + "mesh.yaml," + fig1Dir + "k8s_current.yaml," + fig1Dir + "istio_current.yaml",
		K8sGoals:   fig1Dir + "k8s_goals.csv",
		IstioGoals: fig1Dir + "istio_goals_revised.csv",
		K8sOffer:   "soft",
		IstioOffer: "soft",
	}
}

var (
	fig1Once sync.Once
	fig1St   *State
	fig1Err  error
)

func fig1State(t *testing.T) *State {
	t.Helper()
	fig1Once.Do(func() { fig1St, fig1Err = Load(fig1Config()) })
	if fig1Err != nil {
		t.Fatal(fig1Err)
	}
	return fig1St
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(Config{}); err == nil {
		t.Fatal("missing files must error")
	}
	if _, err := Load(Config{Files: "does-not-exist.yaml"}); err == nil {
		t.Fatal("missing file must error")
	}
	cfg := fig1Config()
	cfg.K8sOffer = "bogus"
	if _, err := Load(cfg); err == nil {
		t.Fatal("bad offer must error")
	}
	cfg = fig1Config()
	cfg.Ports = "x"
	if _, err := Load(cfg); err == nil {
		t.Fatal("bad port must error")
	}
}

func TestParseOffer(t *testing.T) {
	for _, c := range []struct {
		in   string
		soft int
		hole int
	}{
		{"fixed", 0, 0},
		{"", 0, 0},
		{"soft", 1, 0},
		{"holes", 0, 1},
	} {
		o, err := ParseOffer(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if len(o.Soft) != c.soft || len(o.Holes) != c.hole {
			t.Fatalf("%q: got %+v", c.in, o)
		}
	}
	if _, err := ParseOffer("bogus"); err == nil {
		t.Fatal("bogus offer mode must error")
	}
}

func TestParsePorts(t *testing.T) {
	ports, err := ParsePorts("23, 80,443")
	if err != nil || len(ports) != 3 || ports[0] != 23 || ports[2] != 443 {
		t.Fatalf("ports=%v err=%v", ports, err)
	}
	if _, err := ParsePorts("x"); err == nil {
		t.Fatal("bad port must error")
	}
}

func TestExecUsageErrors(t *testing.T) {
	st := fig1State(t)
	cache := muppet.NewSolveCache()
	if _, err := Exec(context.Background(), st, cache, Request{Op: "bogus"}, muppet.Budget{}); err == nil {
		t.Fatal("unknown op must error")
	}
	if _, err := Exec(context.Background(), st, cache, Request{Op: "check", Party: "router"}, muppet.Budget{}); err == nil {
		t.Fatal("unknown party must error")
	}
}

// execDirect computes the reference response the daemon must reproduce:
// one op run on a fresh cold cache, exactly as the one-shot CLI would.
func execDirect(t *testing.T, st *State, req Request) Response {
	t.Helper()
	resp, err := Exec(context.Background(), st, muppet.NewSolveCache(), req, muppet.Budget{})
	if err != nil {
		t.Fatalf("direct %s: %v", req.Op, err)
	}
	return resp
}

func postOp(t *testing.T, client *http.Client, base string, req Request, hdr map[string]string) (*http.Response, Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, base+"/v1/"+req.Op, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	res, err := client.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out Response
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatalf("%s: bad response body: %v", req.Op, err)
		}
	} else {
		io.Copy(io.Discard, res.Body)
	}
	return res, out
}

// TestEndpointsMatchDirectExec asserts every workflow endpoint returns
// exactly the response a direct (CLI-equivalent) execution produces —
// same verdict code, byte-identical output.
func TestEndpointsMatchDirectExec(t *testing.T) {
	st := fig1State(t)
	s := New(st, Options{Concurrency: 2, QueueDepth: 8})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	reqs := []Request{
		{Op: "check", Party: "k8s"},
		{Op: "check", Party: "istio"},
		{Op: "envelope", From: "k8s", To: "istio", English: true, Leakage: true},
		{Op: "reconcile"},
		{Op: "conform", Provider: "k8s"},
		{Op: "negotiate"},
	}
	for _, req := range reqs {
		want := execDirect(t, st, req)
		res, got := postOp(t, hs.Client(), hs.URL, req, nil)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", req.Op, res.StatusCode)
		}
		if got.Code != want.Code || got.Output != want.Output {
			t.Fatalf("%s: daemon response differs from direct exec\n--- daemon (code %d) ---\n%s\n--- direct (code %d) ---\n%s",
				req.Op, got.Code, got.Output, want.Code, want.Output)
		}
	}
}

// TestConcurrentLoadMatchesSequential is the tentpole acceptance test:
// ≥8 parallel clients issuing mixed check/reconcile/negotiate requests
// against one daemon must each receive exactly the sequential reference
// response, the queue must stay within its bound, and /metrics must show
// the warm sessions actually being reused.
func TestConcurrentLoadMatchesSequential(t *testing.T) {
	st := fig1State(t)
	s := New(st, Options{Concurrency: 4, QueueDepth: 32})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	ops := []Request{
		{Op: "check", Party: "k8s"},
		{Op: "reconcile"},
		{Op: "negotiate"},
	}
	want := make(map[string]Response, len(ops))
	for _, req := range ops {
		want[req.Op] = execDirect(t, st, req)
	}

	const clients, perClient = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := ops[(c+i)%len(ops)]
				res, got := postOp(t, hs.Client(), hs.URL, req, nil)
				if res.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d %s: HTTP %d", c, req.Op, res.StatusCode)
					return
				}
				w := want[req.Op]
				if got.Code != w.Code || got.Output != w.Output {
					errs <- fmt.Errorf("client %d %s: response differs from sequential reference", c, req.Op)
					return
				}
				if d := s.pool.depth(); d > s.pool.capacity() {
					errs <- fmt.Errorf("queue depth %d exceeds capacity %d", d, s.pool.capacity())
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	res, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	text := string(body)
	for _, want := range []string{
		"muppetd_requests_total{op=\"check\",code=\"0\"}",
		"muppetd_request_duration_seconds_count{op=\"reconcile\"}",
		"muppetd_queue_capacity 32",
		"muppetd_workers 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	reuse := s.scrape().reuse
	if reuse.Reuses == 0 {
		t.Error("expected non-zero session reuse under concurrent load")
	}
	if !strings.Contains(text, "muppetd_session_reuses_total") {
		t.Error("/metrics missing session reuse counter")
	}
}

// TestOverloadRejected fills the worker and the queue with blocked jobs
// and asserts the next request is refused with 429 + Retry-After rather
// than queued unboundedly.
func TestOverloadRejected(t *testing.T) {
	st := fig1State(t)
	s := New(st, Options{Concurrency: 1, QueueDepth: 1})
	defer s.Close()
	started := make(chan struct{}, 8)
	unblock := make(chan struct{})
	s.execFn = func(ctx context.Context, st *State, cache *muppet.SolveCache, req Request, b muppet.Budget) (Response, error) {
		started <- struct{}{}
		select {
		case <-unblock:
		case <-ctx.Done():
		}
		return Response{Op: req.Op, Output: "done\n"}, nil
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _ := postOp(t, hs.Client(), hs.URL, Request{Op: "check"}, nil)
			codes <- res.StatusCode
		}()
		if i == 0 {
			<-started // worker is now busy; the next request parks in the queue
		}
	}
	// Wait until the second job is actually queued.
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.depth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}

	res, _ := postOp(t, hs.Client(), hs.URL, Request{Op: "check"}, nil)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: HTTP %d, want 429", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}

	close(unblock)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted request: HTTP %d, want 200", code)
		}
	}

	mres, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	body, _ := io.ReadAll(mres.Body)
	if !strings.Contains(string(body), "muppetd_rejections_total 1") {
		t.Errorf("metrics must count the rejection:\n%s", body)
	}
}

// TestDrainRefusesNewWork asserts the drain lifecycle: /readyz flips to
// 503 and workflow endpoints refuse, while /healthz stays up and an
// in-flight request still completes untorn.
func TestDrainRefusesNewWork(t *testing.T) {
	st := fig1State(t)
	s := New(st, Options{Concurrency: 1, QueueDepth: 1})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	s.execFn = func(ctx context.Context, st *State, cache *muppet.SolveCache, req Request, b muppet.Budget) (Response, error) {
		close(inFlight)
		<-release
		return Response{Op: req.Op, Output: "finished\n"}, nil
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	type reply struct {
		status int
		resp   Response
	}
	got := make(chan reply, 1)
	go func() {
		res, r := postOp(t, hs.Client(), hs.URL, Request{Op: "reconcile"}, nil)
		got <- reply{res.StatusCode, r}
	}()
	<-inFlight
	s.Drain()

	if res, err := hs.Client().Get(hs.URL + "/readyz"); err != nil || res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %v %v", res.StatusCode, err)
	} else {
		res.Body.Close()
	}
	if res, err := hs.Client().Get(hs.URL + "/healthz"); err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: %v %v", res.StatusCode, err)
	} else {
		res.Body.Close()
	}
	if res, _ := postOp(t, hs.Client(), hs.URL, Request{Op: "check"}, nil); res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new work while draining: HTTP %d, want 503", res.StatusCode)
	}

	close(release)
	r := <-got
	if r.status != http.StatusOK || r.resp.Output != "finished\n" {
		t.Fatalf("in-flight request during drain: HTTP %d, output %q", r.status, r.resp.Output)
	}
	s.Close()
}

// TestCancelSolvesInterruptsInFlight asserts the drain hammer: after
// CancelSolves, a blocked in-flight solve observes cancellation and the
// client still receives a complete, structured response.
func TestCancelSolvesInterruptsInFlight(t *testing.T) {
	st := fig1State(t)
	s := New(st, Options{Concurrency: 1, QueueDepth: 1})
	defer s.Close()
	inFlight := make(chan struct{})
	s.execFn = func(ctx context.Context, st *State, cache *muppet.SolveCache, req Request, b muppet.Budget) (Response, error) {
		close(inFlight)
		<-ctx.Done()
		return Response{Op: req.Op, Code: CodeIndeterminate, Output: "INDETERMINATE (cancelled)\n", Stop: "cancelled"}, nil
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	got := make(chan Response, 1)
	go func() {
		_, r := postOp(t, hs.Client(), hs.URL, Request{Op: "negotiate"}, nil)
		got <- r
	}()
	<-inFlight
	s.Drain()
	s.CancelSolves()
	r := <-got
	if r.Code != CodeIndeterminate || r.Stop == "" {
		t.Fatalf("cancelled solve: code %d stop %q, want structured indeterminate", r.Code, r.Stop)
	}
}

// TestBudgetHeaders exercises the per-request budget plumbing: an
// unmeetable timeout yields a structured indeterminate verdict (the
// HTTP mirror of CLI exit code 3), and malformed headers are 400s.
func TestBudgetHeaders(t *testing.T) {
	st := fig1State(t)
	s := New(st, Options{Concurrency: 1, QueueDepth: 2})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	res, got := postOp(t, hs.Client(), hs.URL, Request{Op: "reconcile"},
		map[string]string{HeaderTimeout: "1ns"})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("1ns reconcile: HTTP %d", res.StatusCode)
	}
	if got.Code != CodeIndeterminate || got.Stop == "" {
		t.Fatalf("1ns reconcile: code %d stop %q, want indeterminate with stop reason", got.Code, got.Stop)
	}
	if !strings.HasPrefix(got.Output, "INDETERMINATE") {
		t.Fatalf("1ns reconcile output %q", got.Output)
	}

	if res, _ := postOp(t, hs.Client(), hs.URL, Request{Op: "check"},
		map[string]string{HeaderTimeout: "soon"}); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout header: HTTP %d, want 400", res.StatusCode)
	}
	if res, _ := postOp(t, hs.Client(), hs.URL, Request{Op: "check"},
		map[string]string{HeaderMaxConflicts: "-3"}); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad conflicts header: HTTP %d, want 400", res.StatusCode)
	}
}

// TestMaxTimeoutCapsRequests asserts the server-side budget ceiling: a
// request asking for more time than the configured cap is bounded by the
// cap (observable as an indeterminate verdict under a tiny cap).
func TestMaxTimeoutCapsRequests(t *testing.T) {
	st := fig1State(t)
	s := New(st, Options{Concurrency: 1, QueueDepth: 2, MaxTimeout: time.Nanosecond})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	// Asks for a generous hour; the 1ns cap must win.
	res, got := postOp(t, hs.Client(), hs.URL, Request{Op: "reconcile"},
		map[string]string{HeaderTimeout: "1h"})
	if res.StatusCode != http.StatusOK || got.Code != CodeIndeterminate {
		t.Fatalf("capped reconcile: HTTP %d code %d, want 200/indeterminate", res.StatusCode, got.Code)
	}
	// Asks for nothing: the cap is also the default.
	res, got = postOp(t, hs.Client(), hs.URL, Request{Op: "reconcile"}, nil)
	if res.StatusCode != http.StatusOK || got.Code != CodeIndeterminate {
		t.Fatalf("default-budget reconcile: HTTP %d code %d, want 200/indeterminate", res.StatusCode, got.Code)
	}
}

func TestHTTPErrors(t *testing.T) {
	st := fig1State(t)
	s := New(st, Options{Concurrency: 1, QueueDepth: 2})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	if res, _ := postOp(t, hs.Client(), hs.URL, Request{Op: "bogus"}, nil); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown op: HTTP %d, want 404", res.StatusCode)
	}
	if res, err := hs.Client().Get(hs.URL + "/v1/check"); err != nil || res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on op: %v %v, want 405", res.StatusCode, err)
	} else {
		res.Body.Close()
	}
	if res, _ := postOp(t, hs.Client(), hs.URL, Request{Op: "check", Party: "router"}, nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown party: HTTP %d, want 400", res.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/check", strings.NewReader("{not json"))
	res, err := hs.Client().Do(req)
	if err != nil || res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %v %v, want 400", res.StatusCode, err)
	}
	res.Body.Close()
}

// TestWorkerPanicRecovered asserts the recovery middleware: a panic in a
// worker's solve kills the request — surfacing as a structured 500 with
// the internal verdict code — while the daemon keeps serving, and the
// panic is counted in /metrics alongside the federation counters.
func TestWorkerPanicRecovered(t *testing.T) {
	st := fig1State(t)
	s := New(st, Options{Concurrency: 1, QueueDepth: 4, FedParty: "k8s"})
	defer s.Close()
	real := s.execFn
	s.execFn = func(ctx context.Context, st *State, cache *muppet.SolveCache, req Request, b muppet.Budget) (Response, error) {
		if req.Op == "reconcile" {
			panic("solver blew up")
		}
		return real(ctx, st, cache, req, b)
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	body, _ := json.Marshal(Request{Op: "reconcile"})
	res, err := hs.Client().Post(hs.URL+"/v1/reconcile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking op: status %d, want 500", res.StatusCode)
	}
	var out struct {
		Error string `json:"error"`
		Code  int    `json:"code"`
	}
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatalf("panic response is not structured JSON: %v", err)
	}
	if out.Code != CodeInternal || !strings.Contains(out.Error, "internal panic") ||
		!strings.Contains(out.Error, "solver blew up") {
		t.Fatalf("panic response %+v, want internal panic with code %d", out, CodeInternal)
	}

	// The worker survived: the next request on the same daemon succeeds.
	res2, ok := postOp(t, hs.Client(), hs.URL, Request{Op: "check", Party: "k8s"}, nil)
	if res2.StatusCode != http.StatusOK || ok.Code != CodeSat {
		t.Fatalf("daemon did not survive the panic: status %d code %d", res2.StatusCode, ok.Code)
	}

	mres, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	raw, _ := io.ReadAll(mres.Body)
	metrics := string(raw)
	if !strings.Contains(metrics, "muppetd_panics_total 1") {
		t.Fatalf("panic not counted:\n%s", metrics)
	}
	// Fed counters are lazily exported: with no federation traffic yet,
	// none of them may appear (a panic must not fabricate fed series).
	if strings.Contains(metrics, "muppetd_fed_") {
		t.Fatalf("idle fed counters exported:\n%s", metrics)
	}
	// The federated peer surface is mounted and survived the panic.
	fres, err := hs.Client().Post(hs.URL+"/fed/join", "application/json",
		strings.NewReader(`{"session":"after-panic"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer fres.Body.Close()
	if fres.StatusCode != http.StatusOK {
		t.Fatalf("/fed/join after panic: status %d", fres.StatusCode)
	}
}
