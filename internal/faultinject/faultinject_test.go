package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	in := "latency=50ms:0.3,error=0.1,unavail=0.05:2,drop=0.05,slow=0.1"
	spec, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Active() {
		t.Fatal("parsed spec inactive")
	}
	if spec.Latency != 50*time.Millisecond || spec.LatencyP != 0.3 ||
		spec.ErrorP != 0.1 || spec.UnavailP != 0.05 || spec.RetryAfter != 2 ||
		spec.DropP != 0.05 || spec.SlowP != 0.1 {
		t.Fatalf("parsed fields: %+v", spec)
	}
	// String renders canonical Parse syntax; reparsing it is a fixed point.
	again, err := Parse(spec.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", spec.String(), err)
	}
	if again.String() != spec.String() {
		t.Fatalf("canonical form unstable: %q vs %q", again.String(), spec.String())
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	spec, err := Parse("  ")
	if err != nil || spec.Active() {
		t.Fatalf("empty spec: %+v, %v", spec, err)
	}
	for _, bad := range []string{
		"latency=0.3",     // missing duration
		"latency=xx:0.3",  // bad duration
		"error=1.5",       // probability out of range
		"error=-0.1",      // negative probability
		"drop",            // no '='
		"warp=0.1",        // unknown class
		"unavail=0.1:-1",  // negative retry-after
		"unavail=0.1:2.5", // fractional retry-after
		"slow=abc",        // not a number
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// TestDeterministic asserts the k-th request makes identical fault
// decisions for a given seed across independent middleware instances.
func TestDeterministic(t *testing.T) {
	spec, err := Parse("error=0.3,unavail=0.2,slow=0.2")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) []int {
		h := spec.Middleware(seed, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))
		codes := make([]int, 0, 64)
		for i := 0; i < 64; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/fed/envelope", nil))
			codes = append(codes, rec.Code)
		}
		return codes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: seed 7 gave %d then %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 64-request traces")
	}
	saw := map[int]bool{}
	for _, code := range a {
		saw[code] = true
	}
	for _, want := range []int{http.StatusOK, http.StatusInternalServerError, http.StatusServiceUnavailable} {
		if !saw[want] {
			t.Fatalf("64 requests at p=0.3/0.2 never produced status %d: %v", want, a)
		}
	}
}

func TestUnavailCarriesRetryAfter(t *testing.T) {
	spec, err := Parse("unavail=1:3")
	if err != nil {
		t.Fatal(err)
	}
	h := spec.Middleware(1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Fatal("p=1 unavail must not reach the inner handler")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/fed/join", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want 3", ra)
	}
}

// TestDropSeversConnection asserts the drop class aborts the response so
// a real client sees a transport error, not a status.
func TestDropSeversConnection(t *testing.T) {
	spec, err := Parse("drop=1")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(spec.Middleware(1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/fed/envelope", "application/json", strings.NewReader("{}"))
	if err == nil {
		resp.Body.Close()
		t.Fatalf("p=1 drop returned a response: %d", resp.StatusCode)
	}
}

// TestExemptPaths asserts liveness and observability endpoints are never
// faulted, whatever the mix.
func TestExemptPaths(t *testing.T) {
	spec, err := Parse("drop=1,error=1,unavail=1")
	if err != nil {
		t.Fatal(err)
	}
	h := spec.Middleware(1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	}))
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d under full fault mix", path, rec.Code)
		}
	}
}

// TestSlowStillServes asserts slow mode delays but preserves the body.
func TestSlowStillServes(t *testing.T) {
	spec, err := Parse("slow=1")
	if err != nil {
		t.Fatal(err)
	}
	spec.SlowDelay = time.Millisecond
	h := spec.Middleware(1, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "slow but intact")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/fed/envelope", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "slow but intact" {
		t.Fatalf("slow mode corrupted the response: %d %q", rec.Code, rec.Body.String())
	}
}

func TestInactiveMiddlewareIsIdentity(t *testing.T) {
	spec, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := spec.Middleware(1, inner); got == nil {
		t.Fatal("nil handler")
	} else if _, ok := got.(http.HandlerFunc); !ok {
		t.Fatalf("inactive spec must return the inner handler unchanged, got %T", got)
	}
}
