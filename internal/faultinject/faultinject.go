// Package faultinject is a deterministic, seedable HTTP fault-injection
// middleware for chaos-testing the federated negotiation protocol and
// the daemon's client-facing robustness: injected latency, 5xx errors,
// 503+Retry-After pushback, connection drops, and slow-body responses,
// each with an independent per-request probability.
//
// Determinism: the k-th request through a middleware makes the same
// fault decisions for a given seed, regardless of timing or goroutine
// interleaving, so chaos tests reproduce exactly. Wired into
// `muppetd -fault-spec` (default off, never in the serving path unless
// explicitly requested).
package faultinject

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Spec is one middleware's fault mix. Probabilities are per request and
// independently sampled per fault class.
type Spec struct {
	Latency  time.Duration // injected delay before serving
	LatencyP float64

	ErrorP float64 // 500 with a JSON error body

	UnavailP   float64 // 503 with Retry-After
	RetryAfter int     // seconds advertised on 503 (default 0)

	DropP float64 // abort the connection without a response

	SlowP     float64       // serve, but trickle the response body
	SlowDelay time.Duration // per-write delay in slow mode (default 2ms)
}

// Parse reads the -fault-spec syntax: comma-separated class=value pairs
// where value is a probability in [0,1], and latency takes dur:prob.
//
//	latency=50ms:0.3,error=0.1,unavail=0.05:2,drop=0.05,slow=0.1
//
// unavail accepts prob or prob:retryAfterSeconds. An empty string means
// no faults.
func Parse(s string) (*Spec, error) {
	spec := &Spec{SlowDelay: 2 * time.Millisecond}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("faultinject: malformed clause %q (want class=value)", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "latency":
			dp := strings.SplitN(val, ":", 2)
			if len(dp) != 2 {
				return nil, fmt.Errorf("faultinject: latency wants duration:probability, got %q", val)
			}
			d, err := time.ParseDuration(dp[0])
			if err != nil {
				return nil, fmt.Errorf("faultinject: latency duration: %w", err)
			}
			p, err := parseProb(dp[1])
			if err != nil {
				return nil, err
			}
			spec.Latency, spec.LatencyP = d, p
		case "error":
			p, err := parseProb(val)
			if err != nil {
				return nil, err
			}
			spec.ErrorP = p
		case "unavail":
			pv := strings.SplitN(val, ":", 2)
			p, err := parseProb(pv[0])
			if err != nil {
				return nil, err
			}
			spec.UnavailP = p
			if len(pv) == 2 {
				ra, err := strconv.Atoi(pv[1])
				if err != nil || ra < 0 {
					return nil, fmt.Errorf("faultinject: unavail retry-after %q", pv[1])
				}
				spec.RetryAfter = ra
			}
		case "drop":
			p, err := parseProb(val)
			if err != nil {
				return nil, err
			}
			spec.DropP = p
		case "slow":
			p, err := parseProb(val)
			if err != nil {
				return nil, err
			}
			spec.SlowP = p
		default:
			return nil, fmt.Errorf("faultinject: unknown fault class %q", key)
		}
	}
	return spec, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("faultinject: probability %q not in [0,1]", s)
	}
	return p, nil
}

// Active reports whether the spec injects anything at all.
func (s *Spec) Active() bool {
	return s.LatencyP > 0 || s.ErrorP > 0 || s.UnavailP > 0 || s.DropP > 0 || s.SlowP > 0
}

// String renders the active clauses in Parse syntax (sorted, canonical).
func (s *Spec) String() string {
	var parts []string
	if s.LatencyP > 0 {
		parts = append(parts, fmt.Sprintf("latency=%s:%g", s.Latency, s.LatencyP))
	}
	if s.ErrorP > 0 {
		parts = append(parts, fmt.Sprintf("error=%g", s.ErrorP))
	}
	if s.UnavailP > 0 {
		parts = append(parts, fmt.Sprintf("unavail=%g:%d", s.UnavailP, s.RetryAfter))
	}
	if s.DropP > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", s.DropP))
	}
	if s.SlowP > 0 {
		parts = append(parts, fmt.Sprintf("slow=%g", s.SlowP))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// splitmix64 is the SplitMix64 output function: a bijective avalanche
// mix, used to derive independent per-request per-class decisions from
// (seed, request index, class) deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sample derives a uniform [0,1) decision for (seed, request n, class).
func sample(seed int64, n uint64, class uint64) float64 {
	h := splitmix64(uint64(seed) ^ splitmix64(n*0x9e3779b97f4a7c15+class))
	return float64(h>>11) / float64(1<<53)
}

// Fault classes (sample streams).
const (
	classLatency = iota
	classError
	classUnavail
	classDrop
	classSlow
)

// exempt paths are the daemon's liveness and observability endpoints:
// chaos targets mediation traffic, not the probes watching it.
func exempt(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics":
		return true
	}
	return false
}

// Middleware wraps next with the spec's fault mix under the given seed.
// Request indices are assigned in arrival order; each request samples
// every class independently.
func (s *Spec) Middleware(seed int64, next http.Handler) http.Handler {
	if !s.Active() {
		return next
	}
	var counter atomic.Uint64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		n := counter.Add(1)

		if s.LatencyP > 0 && sample(seed, n, classLatency) < s.LatencyP {
			select {
			case <-time.After(s.Latency):
			case <-r.Context().Done():
				return
			}
		}
		if s.DropP > 0 && sample(seed, n, classDrop) < s.DropP {
			// ErrAbortHandler makes net/http sever the connection with
			// no response — the client sees a transport error.
			panic(http.ErrAbortHandler)
		}
		if s.ErrorP > 0 && sample(seed, n, classError) < s.ErrorP {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, `{"error":"injected fault","code":"injected"}`+"\n")
			return
		}
		if s.UnavailP > 0 && sample(seed, n, classUnavail) < s.UnavailP {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter))
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"injected unavailability","code":"injected"}`+"\n")
			return
		}
		if s.SlowP > 0 && sample(seed, n, classSlow) < s.SlowP {
			next.ServeHTTP(&slowWriter{w: w, delay: s.SlowDelay, ctx: r.Context()}, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// slowWriter trickles response writes: each Write sleeps, then flushes,
// simulating a peer that answers but staggers its body.
type slowWriter struct {
	w     http.ResponseWriter
	delay time.Duration
	ctx   interface{ Done() <-chan struct{} }
}

func (s *slowWriter) Header() http.Header { return s.w.Header() }

func (s *slowWriter) WriteHeader(code int) { s.w.WriteHeader(code) }

func (s *slowWriter) Write(p []byte) (int, error) {
	select {
	case <-time.After(s.delay):
	case <-s.ctx.Done():
	}
	n, err := s.w.Write(p)
	if f, ok := s.w.(http.Flusher); ok {
		f.Flush()
	}
	return n, err
}
