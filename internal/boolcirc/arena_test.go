package boolcirc

import (
	"math/rand"
	"testing"
)

// randomOps drives f through a deterministic pseudo-random gate sequence
// over nVars variables and nOps gates, returning every ref produced (the
// variables first). The same seed must yield the same circuit in any
// factory — the determinism and hash-consing property tests below both
// lean on this.
func randomOps(f *Factory, rng *rand.Rand, nVars, nOps int) []Ref {
	refs := make([]Ref, 0, nVars+nOps)
	refs = append(refs, True, False)
	for i := 0; i < nVars; i++ {
		refs = append(refs, f.Var())
	}
	pick := func() Ref {
		r := refs[rng.Intn(len(refs))]
		if rng.Intn(2) == 0 {
			return r.Not()
		}
		return r
	}
	for i := 0; i < nOps; i++ {
		var r Ref
		switch rng.Intn(4) {
		case 0:
			r = f.And(pick(), pick())
		case 1:
			r = f.Or(pick(), pick())
		case 2:
			r = f.Iff(pick(), pick())
		default:
			r = f.ITE(pick(), pick(), pick())
		}
		refs = append(refs, r)
	}
	return refs
}

// TestFactoryDeterministicConstruction: the arena factory is a pure
// function of its operation sequence — two factories fed the same ops
// return identical refs at every step and end with identical arenas.
// Callers (the translator's encoding cache, the crosscheck suite) depend
// on this to make circuit construction reproducible across processes.
func TestFactoryDeterministicConstruction(t *testing.T) {
	f1, f2 := New(), New()
	r1 := randomOps(f1, rand.New(rand.NewSource(99)), 12, 4000)
	r2 := randomOps(f2, rand.New(rand.NewSource(99)), 12, 4000)
	if len(r1) != len(r2) {
		t.Fatalf("ref counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("ref %d differs: %d vs %d", i, r1[i], r2[i])
		}
	}
	if f1.NumNodes() != f2.NumNodes() {
		t.Fatalf("arena sizes differ: %d vs %d", f1.NumNodes(), f2.NumNodes())
	}
}

// TestFactoryHashConsStability: re-issuing every AND pair already in the
// arena returns the existing node without allocating, even after the
// cons table has rehashed several times — 4000 gates starting from a
// 64-slot table force multiple consGrow rounds, so this pins rehashing
// against dropped or duplicated entries.
func TestFactoryHashConsStability(t *testing.T) {
	f := New()
	randomOps(f, rand.New(rand.NewSource(7)), 10, 4000)
	n := f.NumNodes()
	if n < 1000 {
		t.Fatalf("expected a grown arena, got %d nodes", n)
	}
	type pair struct{ a, b Ref }
	pairs := make([]pair, 0, n)
	for i := 1; i < n; i++ {
		if f.kind[i] == kindAnd {
			pairs = append(pairs, pair{f.ina[i], f.inb[i]})
		}
	}
	for _, p := range pairs {
		before := f.NumNodes()
		r := f.And(p.a, p.b)
		if f.NumNodes() != before {
			t.Fatalf("And(%d, %d) allocated a duplicate node", p.a, p.b)
		}
		if r.IsConst() || f.kind[r.node()] != kindAnd {
			t.Fatalf("And(%d, %d) = %d: not the interned gate", p.a, p.b, r)
		}
	}
}

// TestFactoryAblationAgreesWithHashCons: with sharing disabled the arena
// grows without bound, but every ref must still evaluate identically —
// the NoHashCons ablation changes only allocation, never semantics.
func TestFactoryAblationAgreesWithHashCons(t *testing.T) {
	const nVars = 8
	shared, flat := New(), NewWithOptions(Options{NoHashCons: true})
	rs := randomOps(shared, rand.New(rand.NewSource(21)), nVars, 600)
	rf := randomOps(flat, rand.New(rand.NewSource(21)), nVars, 600)
	if len(rs) != len(rf) {
		t.Fatalf("ref counts differ: %d vs %d", len(rs), len(rf))
	}
	for trial := 0; trial < 64; trial++ {
		bits := rand.New(rand.NewSource(int64(trial))).Uint64()
		val := func(v int) bool { return bits>>uint(v)&1 == 1 }
		for i := range rs {
			if gs, gf := shared.Eval(rs[i], val), flat.Eval(rf[i], val); gs != gf {
				t.Fatalf("trial %d ref %d: shared=%v flat=%v", trial, i, gs, gf)
			}
		}
	}
}
