package boolcirc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"muppet/internal/sat"
)

func TestConstants(t *testing.T) {
	f := New()
	if f.And() != True {
		t.Fatal("empty And should be true")
	}
	if f.Or() != False {
		t.Fatal("empty Or should be false")
	}
	if True.Not() != False || False.Not() != True {
		t.Fatal("constant complements broken")
	}
	if f.Bool(true) != True || f.Bool(false) != False {
		t.Fatal("Bool constants broken")
	}
}

func TestConstantFolding(t *testing.T) {
	f := New()
	x := f.Var()
	cases := []struct {
		got, want Ref
		name      string
	}{
		{f.And(x, True), x, "x∧⊤=x"},
		{f.And(x, False), False, "x∧⊥=⊥"},
		{f.And(x, x), x, "x∧x=x"},
		{f.And(x, x.Not()), False, "x∧¬x=⊥"},
		{f.Or(x, False), x, "x∨⊥=x"},
		{f.Or(x, True), True, "x∨⊤=⊤"},
		{f.Or(x, x), x, "x∨x=x"},
		{f.Or(x, x.Not()), True, "x∨¬x=⊤"},
		{f.Implies(False, x), True, "⊥→x=⊤"},
		{f.Implies(x, True), True, "x→⊤=⊤"},
		{f.Iff(x, x), True, "x↔x=⊤"},
		{f.Iff(x, x.Not()), False, "x↔¬x=⊥"},
		{f.ITE(True, x, x.Not()), x, "ite(⊤,x,¬x)=x"},
		{f.ITE(False, x, x.Not()), x.Not(), "ite(⊥,x,¬x)=¬x"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %v want %v", c.name, c.got, c.want)
		}
	}
}

func TestHashConsing(t *testing.T) {
	f := New()
	x, y := f.Var(), f.Var()
	a := f.And(x, y)
	b := f.And(y, x)
	if a != b {
		t.Fatal("And(x,y) and And(y,x) should be the same node")
	}
	n := f.NumNodes()
	f.And(x, y)
	if f.NumNodes() != n {
		t.Fatal("hash-consing failed to reuse node")
	}
	g := NewWithOptions(Options{NoHashCons: true})
	u, v := g.Var(), g.Var()
	g.And(u, v)
	n2 := g.NumNodes()
	g.And(u, v)
	if g.NumNodes() == n2 {
		t.Fatal("NoHashCons should allocate a fresh node")
	}
}

func TestVarID(t *testing.T) {
	f := New()
	x, y := f.Var(), f.Var()
	if f.VarID(x) != 0 || f.VarID(y) != 1 {
		t.Fatalf("VarID: got %d,%d", f.VarID(x), f.VarID(y))
	}
	if !f.IsVar(x) || !f.IsVar(x.Not()) {
		t.Fatal("IsVar should hold for variable edges")
	}
	if f.IsVar(f.And(x, y)) {
		t.Fatal("IsVar should not hold for a gate")
	}
}

func TestEval(t *testing.T) {
	f := New()
	x, y, z := f.Var(), f.Var(), f.Var()
	expr := f.Or(f.And(x, y.Not()), f.Iff(y, z))
	for mask := 0; mask < 8; mask++ {
		val := func(id int) bool { return mask>>id&1 == 1 }
		vx, vy, vz := val(0), val(1), val(2)
		want := (vx && !vy) || (vy == vz)
		if got := f.Eval(expr, val); got != want {
			t.Fatalf("mask %03b: got %v want %v", mask, got, want)
		}
	}
}

// randomCircuit builds a random expression over nVars variables and returns
// the factory, variables, and root.
func randomCircuit(rng *rand.Rand, f *Factory, nVars, depth int) Ref {
	vars := make([]Ref, nVars)
	for i := range vars {
		vars[i] = f.Var()
	}
	var build func(d int) Ref
	build = func(d int) Ref {
		if d == 0 || rng.Intn(4) == 0 {
			r := vars[rng.Intn(nVars)]
			if rng.Intn(2) == 0 {
				r = r.Not()
			}
			return r
		}
		a, b := build(d-1), build(d-1)
		switch rng.Intn(4) {
		case 0:
			return f.And(a, b)
		case 1:
			return f.Or(a, b)
		case 2:
			return f.Implies(a, b)
		default:
			return f.Iff(a, b)
		}
	}
	return build(depth)
}

func TestTseitinEquisatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		nVars := 2 + rng.Intn(6)
		f := New()
		root := randomCircuit(rng, f, nVars, 4)

		// Brute-force: is the circuit satisfiable?
		bfSat := false
		for mask := 0; mask < 1<<nVars && !bfSat; mask++ {
			if f.Eval(root, func(id int) bool { return mask>>id&1 == 1 }) {
				bfSat = true
			}
		}

		s := sat.New()
		cnf := NewCNF(f, s)
		cnf.Assert(root)
		got := s.Solve()
		if (got == sat.Sat) != bfSat {
			t.Fatalf("iter %d: solver=%v brute=%v", iter, got, bfSat)
		}
		if got == sat.Sat {
			// The extracted model must evaluate the circuit to true.
			if !f.Eval(root, cnf.VarValue) {
				t.Fatalf("iter %d: SAT model does not satisfy circuit", iter)
			}
		}
	}
}

func TestTseitinQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + rng.Intn(5)
		f := New()
		root := randomCircuit(rng, f, nVars, 5)
		s := sat.New()
		cnf := NewCNF(f, s)
		cnf.Assert(root)
		if s.Solve() == sat.Sat {
			return f.Eval(root, cnf.VarValue)
		}
		for mask := 0; mask < 1<<nVars; mask++ {
			if f.Eval(root, func(id int) bool { return mask>>id&1 == 1 }) {
				return false // solver said UNSAT but a model exists
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAssertConstants(t *testing.T) {
	f := New()
	s := sat.New()
	cnf := NewCNF(f, s)
	cnf.Assert(True)
	if s.Solve() != sat.Sat {
		t.Fatal("asserting true should stay SAT")
	}
	cnf.Assert(False)
	if s.Solve() != sat.Unsat {
		t.Fatal("asserting false should be UNSAT")
	}
}

func TestLitForSharing(t *testing.T) {
	f := New()
	x, y := f.Var(), f.Var()
	g := f.And(x, y)
	s := sat.New()
	cnf := NewCNF(f, s)
	l1 := cnf.LitFor(g)
	nVars := s.NumVars()
	l2 := cnf.LitFor(g)
	if l1 != l2 {
		t.Fatal("LitFor should be memoised")
	}
	if s.NumVars() != nVars {
		t.Fatal("second LitFor must not allocate solver variables")
	}
	if cnf.LitFor(g.Not()) != l1.Not() {
		t.Fatal("complement edge should map to complement literal")
	}
}

func TestIncrementalAssertions(t *testing.T) {
	f := New()
	x, y := f.Var(), f.Var()
	s := sat.New()
	cnf := NewCNF(f, s)
	cnf.Assert(f.Or(x, y))
	if s.Solve() != sat.Sat {
		t.Fatal("phase 1 SAT expected")
	}
	cnf.Assert(x.Not())
	if s.Solve() != sat.Sat {
		t.Fatal("phase 2 SAT expected")
	}
	if cnf.VarValue(f.VarID(x)) || !cnf.VarValue(f.VarID(y)) {
		t.Fatal("phase 2 model wrong")
	}
	cnf.Assert(y.Not())
	if s.Solve() != sat.Unsat {
		t.Fatal("phase 3 UNSAT expected")
	}
}

func TestAssumptionsViaLitFor(t *testing.T) {
	f := New()
	x := f.Var()
	y := f.Var()
	g := f.Implies(x, y)
	s := sat.New()
	cnf := NewCNF(f, s)
	cnf.Assert(g)
	lx, ly := cnf.LitFor(x), cnf.LitFor(y)
	if s.Solve(lx, ly.Not()) != sat.Unsat {
		t.Fatal("x ∧ ¬y under x→y must be UNSAT")
	}
	if s.Solve(lx) != sat.Sat {
		t.Fatal("x alone should be SAT")
	}
	if !s.Value(ly.Var()) {
		t.Fatal("y must be forced true")
	}
}

func BenchmarkBuildLargeCircuit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := New()
		vars := make([]Ref, 64)
		for j := range vars {
			vars[j] = f.Var()
		}
		acc := True
		for j := 0; j+1 < len(vars); j++ {
			acc = f.And(acc, f.Or(vars[j], vars[j+1].Not()))
		}
		_ = acc
	}
}

func BenchmarkTseitinEmit(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	f := New()
	root := randomCircuit(rng, f, 16, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sat.New()
		cnf := NewCNF(f, s)
		cnf.Assert(root)
	}
}
