package boolcirc

// AIG sweeping: before a cone is emitted to CNF it is rewritten to a
// canonical equivalent. Three effects compound:
//
//   - constant propagation: rebuilding every AND bottom-up through the
//     factory's folding rules collapses cones that became constant or
//     collapsed onto a child;
//   - duplicate-cone merging: cones with at most sweepMaxSupport distinct
//     input variables get an exact 64-bit truth table over their sorted
//     support; functionally identical cones (up to complementation) map
//     to one canonical node, so they share one Tseitin variable;
//   - dead-node elimination: nodes swept away are simply never emitted —
//     the CNF layer only ever sees canonical cones.
//
// Wider cones fall back to structural hash-consing (the factory's cons
// table), which the bottom-up rebuild exercises for free. Sweeping is
// exact (truth tables, not simulation samples), so no SAT check is needed
// to confirm a merge.
//
// All per-node sweep state lives in dense slices indexed by arena offset
// (canonical edge, support, truth table); supports are carved out of one
// shared int32 arena. The functional-hash table is keyed by a fixed-size
// comparable struct, so probing it never builds a string.

// sweepMaxSupport bounds the support size for exact functional hashing;
// 2^(2^6) functions fit a uint64 truth table.
const sweepMaxSupport = 6

// canonUnset marks a node whose canonical edge has not been computed yet.
// Refs are non-negative (node offset shifted left), so -1 is free.
const canonUnset Ref = -1

// Support-state markers for suppLen: a node either has no functional info
// yet, is a wide cone (structural sharing only), or has a tabled function
// of suppLen-suppTabled variables.
const (
	suppUnset  int8 = -2
	suppWide   int8 = -1
	suppTabled int8 = 0
)

// fnKey identifies a boolean function: support size, the (≤6) sorted
// support variable ids, and the complement-canonicalised truth table.
// It is a comparable fixed-size value, so map operations on it do not
// allocate.
type fnKey struct {
	n    int8
	supp [sweepMaxSupport]int32
	tt   uint64
}

type sweeper struct {
	f *Factory
	// canonOf maps a node index to the canonical edge computing the
	// node's positive function. Canonical nodes map to themselves.
	canonOf []Ref
	// suppLen/suppOff/tt describe canonical nodes: suppLen is suppUnset,
	// suppWide, or suppTabled+k for a k-variable function whose sorted
	// support ids live at suppArena[suppOff : suppOff+k] and whose
	// positive-function truth table is tt.
	suppLen   []int8
	suppOff   []int32
	tt        []uint64
	suppArena []int32
	// canon maps a complement-canonicalised function (bit 0 of the table
	// clear) to the edge computing it.
	canon map[fnKey]Ref
}

func newSweeper(f *Factory) *sweeper {
	return &sweeper{f: f, canon: make(map[fnKey]Ref)}
}

// ensure grows the dense node-indexed state to cover node ni; the factory
// arena keeps growing while the sweeper rebuilds cones.
func (sw *sweeper) ensure(ni int32) {
	for int(ni) >= len(sw.canonOf) {
		sw.canonOf = append(sw.canonOf, canonUnset)
		sw.suppLen = append(sw.suppLen, suppUnset)
		sw.suppOff = append(sw.suppOff, 0)
		sw.tt = append(sw.tt, 0)
	}
}

// support returns the sorted support ids of a tabled node.
func (sw *sweeper) support(ni int32) []int32 {
	k := int32(sw.suppLen[ni])
	return sw.suppArena[sw.suppOff[ni] : sw.suppOff[ni]+k]
}

// setSupport records a tabled function for ni, interning the support into
// the shared arena.
func (sw *sweeper) setSupport(ni int32, supp []int32, table uint64) {
	sw.suppOff[ni] = int32(len(sw.suppArena))
	sw.suppArena = append(sw.suppArena, supp...)
	sw.suppLen[ni] = suppTabled + int8(len(supp))
	sw.tt[ni] = table
}

// sweep returns the canonical edge equivalent to r.
func (sw *sweeper) sweep(r Ref) Ref {
	ce := sw.canonNode(r.node())
	if r.complemented() {
		return ce.Not()
	}
	return ce
}

// canonNode returns the canonical edge for the node's positive function,
// rebuilding AND cones bottom-up through the factory's folding rules.
func (sw *sweeper) canonNode(ni int32) Ref {
	sw.ensure(ni)
	if ce := sw.canonOf[ni]; ce != canonUnset {
		return ce
	}
	var result Ref
	switch sw.f.kind[ni] {
	case kindConst:
		result = True
	case kindVar:
		sw.registerLeaf(ni, int32(sw.f.ina[ni]))
		result = Ref(ni << 1)
	case kindAnd:
		ea := sw.sweep(sw.f.ina[ni])
		eb := sw.sweep(sw.f.inb[ni])
		result = sw.canonAnd(sw.f.and2(ea, eb))
	}
	sw.ensure(ni)
	sw.canonOf[ni] = result
	return result
}

// canonAnd canonicalises the result of a rebuilt AND. The edge's node
// either is already canonical (folding returned a child or an earlier
// canonical node), or is an AND over canonical children that still needs
// functional hashing.
func (sw *sweeper) canonAnd(r Ref) Ref {
	if r.IsConst() {
		return r
	}
	ni := r.node()
	sw.ensure(ni)
	if ce := sw.canonOf[ni]; ce != canonUnset {
		if r.complemented() {
			return ce.Not()
		}
		return ce
	}
	var ce Ref
	if sw.f.kind[ni] == kindAnd {
		ce = sw.hashAnd(ni)
	} else {
		// Defensive: folding handed back an unseen leaf.
		if sw.f.kind[ni] == kindVar {
			sw.registerLeaf(ni, int32(sw.f.ina[ni]))
		}
		ce = Ref(ni << 1)
	}
	sw.canonOf[ni] = ce
	if r.complemented() {
		return ce.Not()
	}
	return ce
}

// hashAnd computes the exact function of an AND node over canonical
// children and merges it with any functionally identical earlier cone.
// It returns the canonical edge for the node's positive function.
func (sw *sweeper) hashAnd(ni int32) Ref {
	pos := Ref(ni << 1)
	ea, eb := sw.f.ina[ni], sw.f.inb[ni]
	suppA, ttA, okA := sw.childInfo(ea)
	suppB, ttB, okB := sw.childInfo(eb)
	if !okA || !okB {
		sw.suppLen[ni] = suppWide // wide cone: structural sharing only
		return pos
	}
	var buf [2 * sweepMaxSupport]int32
	supp := unionSupport(suppA, suppB, buf[:0])
	if len(supp) > sweepMaxSupport {
		sw.suppLen[ni] = suppWide
		return pos
	}
	table := expandTT(ttA, suppA, supp) & expandTT(ttB, suppB, supp)
	supp, table = minimizeSupport(supp, table)
	switch {
	case table == 0:
		return False
	case table == ttMask(len(supp)):
		return True
	}
	// Complement canonicalisation: store the phase whose table has bit 0
	// clear, so a cone and its complement share one entry.
	neg := table&1 == 1
	ktt := table
	if neg {
		ktt = ^table & ttMask(len(supp))
	}
	key := mkFnKey(supp, ktt)
	if ce, ok := sw.canon[key]; ok {
		if neg {
			return ce.Not()
		}
		return ce
	}
	sw.setSupport(ni, supp, table)
	reg := pos
	if neg {
		reg = pos.Not()
	}
	sw.canon[key] = reg
	return pos
}

// registerLeaf gives a variable node its one-variable truth table and
// claims the canon entry for that function, so any cone that minimises
// to a single variable collapses onto the variable itself.
func (sw *sweeper) registerLeaf(ni, varID int32) {
	sw.ensure(ni)
	if sw.suppLen[ni] != suppUnset {
		return
	}
	supp := [1]int32{varID}
	sw.setSupport(ni, supp[:], 0b10) // value = the variable
	key := mkFnKey(supp[:], 0b10)
	if _, ok := sw.canon[key]; !ok {
		sw.canon[key] = Ref(ni << 1)
	}
}

// childInfo returns the support and truth table of a canonical child
// edge, complementing the table for complement edges. ok is false for
// wide cones.
func (sw *sweeper) childInfo(e Ref) ([]int32, uint64, bool) {
	ni := e.node()
	sw.ensure(ni)
	if sw.suppLen[ni] < suppTabled {
		return nil, 0, false
	}
	supp := sw.support(ni)
	table := sw.tt[ni]
	if e.complemented() {
		table = ^table & ttMask(len(supp))
	}
	return supp, table, true
}

// ttMask is the mask of valid truth-table bits for k support variables.
// k = 6 shifts by 64, which in Go yields 0, so the mask wraps to all-ones.
func ttMask(k int) uint64 {
	return (uint64(1) << (1 << uint(k))) - 1
}

// unionSupport merges two sorted id slices into out (typically
// stack-backed scratch), returning the merged sorted slice.
func unionSupport(a, b, out []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// expandTT re-expresses a truth table over the sub-support from onto the
// super-support to. Assignment j over to indexes bit j; the value comes
// from the assignment's projection onto from.
func expandTT(tt uint64, from, to []int32) uint64 {
	if len(from) == len(to) {
		return tt // from ⊆ to, equal lengths ⇒ identical supports
	}
	var pos [sweepMaxSupport]int
	for i, v := range from {
		for j, w := range to {
			if v == w {
				pos[i] = j
				break
			}
		}
	}
	var out uint64
	n := 1 << uint(len(to))
	for j := 0; j < n; j++ {
		jj := 0
		for i := range from {
			if j>>uint(pos[i])&1 == 1 {
				jj |= 1 << uint(i)
			}
		}
		if tt>>uint(jj)&1 == 1 {
			out |= uint64(1) << uint(j)
		}
	}
	return out
}

// minimizeSupport drops variables the function does not depend on
// (cofactor equality), compressing the truth table accordingly.
func minimizeSupport(supp []int32, tt uint64) ([]int32, uint64) {
	for i := 0; i < len(supp); {
		n := 1 << uint(len(supp))
		dep := false
		for j := 0; j < n; j++ {
			if j>>uint(i)&1 == 1 {
				continue
			}
			if (tt>>uint(j))&1 != (tt>>uint(j|1<<uint(i)))&1 {
				dep = true
				break
			}
		}
		if dep {
			i++
			continue
		}
		var nt uint64
		k := 0
		for j := 0; j < n; j++ {
			if j>>uint(i)&1 == 1 {
				continue
			}
			if tt>>uint(j)&1 == 1 {
				nt |= uint64(1) << uint(k)
			}
			k++
		}
		tt = nt
		supp = append(supp[:i], supp[i+1:]...)
	}
	return supp, tt
}

// mkFnKey packs a support and canonical truth table into a fixed-size
// comparable key.
func mkFnKey(supp []int32, tt uint64) fnKey {
	k := fnKey{n: int8(len(supp)), tt: tt}
	copy(k.supp[:], supp)
	return k
}
