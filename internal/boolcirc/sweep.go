package boolcirc

// AIG sweeping: before a cone is emitted to CNF it is rewritten to a
// canonical equivalent. Three effects compound:
//
//   - constant propagation: rebuilding every AND bottom-up through the
//     factory's folding rules collapses cones that became constant or
//     collapsed onto a child;
//   - duplicate-cone merging: cones with at most sweepMaxSupport distinct
//     input variables get an exact 64-bit truth table over their sorted
//     support; functionally identical cones (up to complementation) map
//     to one canonical node, so they share one Tseitin variable;
//   - dead-node elimination: nodes swept away are simply never emitted —
//     the CNF layer only ever sees canonical cones.
//
// Wider cones fall back to structural hash-consing (the factory's cons
// map), which the bottom-up rebuild exercises for free. Sweeping is exact
// (truth tables, not simulation samples), so no SAT check is needed to
// confirm a merge.

// sweepMaxSupport bounds the support size for exact functional hashing;
// 2^(2^6) functions fit a uint64 truth table.
const sweepMaxSupport = 6

type sweeper struct {
	f *Factory
	// canonOf maps a node index to the canonical edge computing the
	// node's positive function. Canonical nodes map to themselves.
	canonOf map[int32]Ref
	// suppOf/ttOf describe canonical nodes: sorted support variable ids
	// and the truth table of the node's positive function over them. A
	// present-but-nil support marks a wide cone (no truth table).
	suppOf map[int32][]int32
	ttOf   map[int32]uint64
	// canon maps a (support, truth table) key — complement-canonicalised
	// so bit 0 is clear — to the edge computing that function.
	canon map[string]Ref
}

func newSweeper(f *Factory) *sweeper {
	return &sweeper{
		f:       f,
		canonOf: make(map[int32]Ref),
		suppOf:  make(map[int32][]int32),
		ttOf:    make(map[int32]uint64),
		canon:   make(map[string]Ref),
	}
}

// sweep returns the canonical edge equivalent to r.
func (sw *sweeper) sweep(r Ref) Ref {
	ce := sw.canonNode(r.node())
	if r.complemented() {
		return ce.Not()
	}
	return ce
}

// canonNode returns the canonical edge for the node's positive function,
// rebuilding AND cones bottom-up through the factory's folding rules.
func (sw *sweeper) canonNode(ni int32) Ref {
	if ce, ok := sw.canonOf[ni]; ok {
		return ce
	}
	n := sw.f.nodes[ni]
	var result Ref
	switch n.kind {
	case kindConst:
		result = True
	case kindVar:
		sw.registerLeaf(ni, int32(n.a))
		result = Ref(ni << 1)
	case kindAnd:
		ea := sw.sweep(n.a)
		eb := sw.sweep(n.b)
		result = sw.canonAnd(sw.f.and2(ea, eb))
	}
	sw.canonOf[ni] = result
	return result
}

// canonAnd canonicalises the result of a rebuilt AND. The edge's node
// either is already canonical (folding returned a child or an earlier
// canonical node), or is an AND over canonical children that still needs
// functional hashing.
func (sw *sweeper) canonAnd(r Ref) Ref {
	if r.IsConst() {
		return r
	}
	ni := r.node()
	if ce, ok := sw.canonOf[ni]; ok {
		if r.complemented() {
			return ce.Not()
		}
		return ce
	}
	n := sw.f.nodes[ni]
	var ce Ref
	if n.kind == kindAnd {
		ce = sw.hashAnd(ni, n)
	} else {
		// Defensive: folding handed back an unseen leaf.
		if n.kind == kindVar {
			sw.registerLeaf(ni, int32(n.a))
		}
		ce = Ref(ni << 1)
	}
	sw.canonOf[ni] = ce
	if r.complemented() {
		return ce.Not()
	}
	return ce
}

// hashAnd computes the exact function of an AND node over canonical
// children and merges it with any functionally identical earlier cone.
// It returns the canonical edge for the node's positive function.
func (sw *sweeper) hashAnd(ni int32, n node) Ref {
	pos := Ref(ni << 1)
	suppA, ttA, okA := sw.childInfo(n.a)
	suppB, ttB, okB := sw.childInfo(n.b)
	if !okA || !okB {
		sw.suppOf[ni] = nil // wide cone: structural sharing only
		return pos
	}
	supp := unionSupport(suppA, suppB)
	if len(supp) > sweepMaxSupport {
		sw.suppOf[ni] = nil
		return pos
	}
	tt := expandTT(ttA, suppA, supp) & expandTT(ttB, suppB, supp)
	supp, tt = minimizeSupport(supp, tt)
	switch {
	case tt == 0:
		return False
	case tt == ttMask(len(supp)):
		return True
	}
	// Complement canonicalisation: store the phase whose table has bit 0
	// clear, so a cone and its complement share one entry.
	neg := tt&1 == 1
	ktt := tt
	if neg {
		ktt = ^tt & ttMask(len(supp))
	}
	key := canonKey(supp, ktt)
	if ce, ok := sw.canon[key]; ok {
		if neg {
			return ce.Not()
		}
		return ce
	}
	sw.suppOf[ni] = supp
	sw.ttOf[ni] = tt
	reg := pos
	if neg {
		reg = pos.Not()
	}
	sw.canon[key] = reg
	return pos
}

// registerLeaf gives a variable node its one-variable truth table and
// claims the canon entry for that function, so any cone that minimises
// to a single variable collapses onto the variable itself.
func (sw *sweeper) registerLeaf(ni, varID int32) {
	if _, ok := sw.suppOf[ni]; ok {
		return
	}
	supp := []int32{varID}
	sw.suppOf[ni] = supp
	sw.ttOf[ni] = 0b10 // value = the variable
	key := canonKey(supp, 0b10)
	if _, ok := sw.canon[key]; !ok {
		sw.canon[key] = Ref(ni << 1)
	}
}

// childInfo returns the support and truth table of a canonical child
// edge, complementing the table for complement edges. ok is false for
// wide cones.
func (sw *sweeper) childInfo(e Ref) ([]int32, uint64, bool) {
	supp, ok := sw.suppOf[e.node()]
	if !ok || supp == nil {
		return nil, 0, false
	}
	tt := sw.ttOf[e.node()]
	if e.complemented() {
		tt = ^tt & ttMask(len(supp))
	}
	return supp, tt, true
}

// ttMask is the mask of valid truth-table bits for k support variables.
// k = 6 shifts by 64, which in Go yields 0, so the mask wraps to all-ones.
func ttMask(k int) uint64 {
	return (uint64(1) << (1 << uint(k))) - 1
}

// unionSupport merges two sorted id slices into a fresh sorted slice.
func unionSupport(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// expandTT re-expresses a truth table over the sub-support from onto the
// super-support to. Assignment j over to indexes bit j; the value comes
// from the assignment's projection onto from.
func expandTT(tt uint64, from, to []int32) uint64 {
	if len(from) == len(to) {
		return tt // from ⊆ to, equal lengths ⇒ identical supports
	}
	pos := make([]int, len(from))
	for i, v := range from {
		for j, w := range to {
			if v == w {
				pos[i] = j
				break
			}
		}
	}
	var out uint64
	n := 1 << uint(len(to))
	for j := 0; j < n; j++ {
		jj := 0
		for i, p := range pos {
			if j>>uint(p)&1 == 1 {
				jj |= 1 << uint(i)
			}
		}
		if tt>>uint(jj)&1 == 1 {
			out |= uint64(1) << uint(j)
		}
	}
	return out
}

// minimizeSupport drops variables the function does not depend on
// (cofactor equality), compressing the truth table accordingly.
func minimizeSupport(supp []int32, tt uint64) ([]int32, uint64) {
	for i := 0; i < len(supp); {
		n := 1 << uint(len(supp))
		dep := false
		for j := 0; j < n; j++ {
			if j>>uint(i)&1 == 1 {
				continue
			}
			if (tt>>uint(j))&1 != (tt>>uint(j|1<<uint(i)))&1 {
				dep = true
				break
			}
		}
		if dep {
			i++
			continue
		}
		var nt uint64
		k := 0
		for j := 0; j < n; j++ {
			if j>>uint(i)&1 == 1 {
				continue
			}
			if tt>>uint(j)&1 == 1 {
				nt |= uint64(1) << uint(k)
			}
			k++
		}
		tt = nt
		supp = append(supp[:i], supp[i+1:]...)
	}
	return supp, tt
}

// canonKey packs a support and canonical truth table into a map key.
func canonKey(supp []int32, tt uint64) string {
	b := make([]byte, 0, len(supp)*4+8)
	for _, v := range supp {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	b = append(b,
		byte(tt), byte(tt>>8), byte(tt>>16), byte(tt>>24),
		byte(tt>>32), byte(tt>>40), byte(tt>>48), byte(tt>>56))
	return string(b)
}
