package boolcirc

import (
	"math/rand"
	"testing"

	"muppet/internal/sat"
)

// assertOnlyCircuit builds a deep conjunction of disjunctions — the shape
// envelope/feedback assertions take — used positively only.
func assertOnlyCircuit(f *Factory, nVars int) Ref {
	vars := make([]Ref, nVars)
	for i := range vars {
		vars[i] = f.Var()
	}
	acc := True
	for i := 0; i+2 < nVars; i++ {
		acc = f.And(acc, f.Or(vars[i], vars[i+1].Not(), vars[i+2]))
	}
	return acc
}

// TestPolarityEmitsFewerClauses: an assert-only cone needs one implication
// direction per gate; the full biconditional is strictly larger.
func TestPolarityEmitsFewerClauses(t *testing.T) {
	count := func(opts CNFOptions) int {
		f := New()
		root := assertOnlyCircuit(f, 24)
		s := sat.NewWithOptions(sat.Options{DisableSimp: true})
		NewCNFWithOptions(f, s, opts).Assert(root)
		return s.NumClauses()
	}
	pol := count(CNFOptions{NoSweep: true})
	full := count(CNFOptions{NoSweep: true, NoPolarity: true})
	if pol >= full {
		t.Fatalf("polarity-aware emitted %d clauses, full biconditional %d", pol, full)
	}
}

// TestLazyPolarityUpgrade: a gate first reached through one polarity must
// gain the other direction when LitFor later demands equivalence.
func TestLazyPolarityUpgrade(t *testing.T) {
	f := New()
	x, y, z := f.Var(), f.Var(), f.Var()
	g := f.And(x, y)
	s := sat.New()
	cnf := NewCNF(f, s)
	// g → z uses g negatively: only cone→var is emitted for g here.
	cnf.Assert(f.Implies(g, z))
	// LitFor upgrades g to a full biconditional: assuming the literal must
	// now force the cone's inputs.
	lg := cnf.LitFor(g)
	if s.Solve(lg) != sat.Sat {
		t.Fatal("assuming g should be satisfiable")
	}
	if !s.Value(cnf.SolverVar(f.VarID(x))) || !s.Value(cnf.SolverVar(f.VarID(y))) {
		t.Fatal("assuming g must force x and y true (missing var→cone direction)")
	}
	if s.Solve(lg.Not(), cnf.LitFor(x), cnf.LitFor(y)) != sat.Unsat {
		t.Fatal("¬g with x∧y must be unsatisfiable (missing cone→var direction)")
	}
}

// TestSweepEquivalence: sweeping must preserve the function exactly.
func TestSweepEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 300; iter++ {
		nVars := 2 + rng.Intn(6)
		f := New()
		root := randomCircuit(rng, f, nVars, 5)
		sw := newSweeper(f)
		swept := sw.sweep(root)
		for mask := 0; mask < 1<<nVars; mask++ {
			val := func(id int) bool { return mask>>id&1 == 1 }
			if f.Eval(root, val) != f.Eval(swept, val) {
				t.Fatalf("iter %d mask %b: sweep changed the function", iter, mask)
			}
		}
	}
}

// TestSweepMergesDuplicateCones: functionally identical, structurally
// different cones share one Tseitin variable.
func TestSweepMergesDuplicateCones(t *testing.T) {
	f := New()
	x, y, z := f.Var(), f.Var(), f.Var()
	a := f.And(x, f.Or(y, z))
	b := f.Or(f.And(x, y), f.And(x, z)) // distributed form, same function
	if a == b {
		t.Fatal("test premise broken: structural sharing already merged them")
	}
	s := sat.New()
	cnf := NewCNF(f, s)
	la := cnf.LitFor(a)
	nVars := s.NumVars()
	lb := cnf.LitFor(b)
	if la != lb {
		t.Fatalf("duplicate cones got distinct literals: %v vs %v", la, lb)
	}
	if s.NumVars() != nVars {
		t.Fatal("second cone allocated fresh solver variables")
	}
	// Complement-canonicalisation: the complement shares the entry too.
	if got := cnf.LitFor(b.Not()); got != la.Not() {
		t.Fatalf("complement cone: got %v want %v", got, la.Not())
	}
}

// TestSweepCollapsesSemanticConstants: cones that are semantically
// constant but structurally nontrivial fold to the constants.
func TestSweepCollapsesSemanticConstants(t *testing.T) {
	f := New()
	x, y := f.Var(), f.Var()
	contradiction := f.And(f.Or(x, y), f.And(x.Not(), y.Not()))
	tautology := f.Or(f.And(x, y), f.Or(x.Not(), y.Not()))
	sw := newSweeper(f)
	if got := sw.sweep(contradiction); got != False {
		t.Fatalf("contradiction swept to %v, want False", got)
	}
	if got := sw.sweep(tautology); got != True {
		t.Fatalf("tautology swept to %v, want True", got)
	}
}

// TestAssertFalseMemoised: repeated Assert(False) reuses the constant
// node's variable instead of minting fresh pairs.
func TestAssertFalseMemoised(t *testing.T) {
	f := New()
	s := sat.New()
	cnf := NewCNF(f, s)
	cnf.Assert(False)
	n := s.NumVars()
	cnf.Assert(False)
	cnf.Assert(False)
	if s.NumVars() != n {
		t.Fatalf("Assert(False) allocated variables: %d -> %d", n, s.NumVars())
	}
	if s.Solve() != sat.Unsat {
		t.Fatal("want unsat")
	}
}

// TestEncodingOptionsAgree: every combination of polarity/sweep/simp
// reaches the same verdict, and Sat models satisfy the circuit.
func TestEncodingOptionsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	combos := []struct {
		cnf  CNFOptions
		simp bool
	}{
		{CNFOptions{}, false},
		{CNFOptions{}, true},
		{CNFOptions{NoPolarity: true}, false},
		{CNFOptions{NoSweep: true}, false},
		{CNFOptions{NoPolarity: true, NoSweep: true}, true}, // the seed encoding
	}
	for iter := 0; iter < 150; iter++ {
		nVars := 2 + rng.Intn(6)
		seed := rng.Int63()
		var want sat.Status
		for ci, combo := range combos {
			f := New()
			root := randomCircuit(rand.New(rand.NewSource(seed)), f, nVars, 5)
			s := sat.NewWithOptions(sat.Options{DisableSimp: combo.simp})
			cnf := NewCNFWithOptions(f, s, combo.cnf)
			cnf.Assert(root)
			got := s.Solve()
			if ci == 0 {
				want = got
			} else if got != want {
				t.Fatalf("iter %d combo %d: verdict %v, want %v", iter, ci, got, want)
			}
			if got == sat.Sat && !f.Eval(root, cnf.VarValue) {
				t.Fatalf("iter %d combo %d: model does not satisfy circuit", iter, ci)
			}
		}
	}
}

// BenchmarkEval measures repeated evaluation over one large shared
// circuit — the dense slice memo is what this exercises.
func BenchmarkEval(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	f := New()
	root := randomCircuit(rng, f, 24, 14)
	vals := make([]bool, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range vals {
			vals[j] = (i>>uint(j%16))&1 == 1
		}
		f.Eval(root, func(id int) bool { return vals[id] })
	}
}
