// Package boolcirc provides a hash-consed boolean circuit factory in the
// style of an and-inverter graph (AIG): the only gate is binary AND, and
// negation is carried on edges. N-ary conjunction/disjunction, implication,
// equivalence and if-then-else are built on top with constant folding and
// structural sharing.
//
// Circuits are emitted to a sat.Solver via the Tseitin transformation. In
// the Muppet stack this package is the middle layer: the relational
// translator (package relational) grounds bounded first-order formulas into
// circuits, and the circuit is what the SAT backend ultimately decides. It
// plays the role of Kodkod's boolean factory.
package boolcirc

import (
	"fmt"

	"muppet/internal/sat"
)

// Ref is an edge into the circuit: a node index with a complement bit in
// the lowest bit. The zero node is the constant true.
type Ref int32

// True and False are the constant references.
const (
	True  Ref = 0
	False Ref = 1
)

// Not returns the complement edge.
func (r Ref) Not() Ref { return r ^ 1 }

// IsConst reports whether r is the constant true or false.
func (r Ref) IsConst() bool { return r>>1 == 0 }

func (r Ref) node() int32        { return int32(r >> 1) }
func (r Ref) complemented() bool { return r&1 == 1 }

type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindVar
	kindAnd
)

type node struct {
	kind nodeKind
	// a, b are the AND inputs; for kindVar, a holds the variable id.
	a, b Ref
}

// Options configure a Factory.
type Options struct {
	// NoHashCons disables structural sharing of AND nodes (ablation).
	NoHashCons bool
}

// Factory builds and owns circuit nodes. The zero value is not usable; call
// New or NewWithOptions.
type Factory struct {
	opts  Options
	nodes []node
	cons  map[[2]Ref]Ref
	vars  int32
}

// New returns an empty factory with hash-consing enabled.
func New() *Factory { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty factory.
func NewWithOptions(opts Options) *Factory {
	f := &Factory{
		opts:  opts,
		nodes: []node{{kind: kindConst}},
	}
	if !opts.NoHashCons {
		f.cons = make(map[[2]Ref]Ref)
	}
	return f
}

// NumNodes returns the number of allocated nodes (constants, variables and
// AND gates).
func (f *Factory) NumNodes() int { return len(f.nodes) }

// NumVars returns the number of circuit variables created.
func (f *Factory) NumVars() int { return int(f.vars) }

// Var allocates a fresh circuit variable and returns its positive edge.
func (f *Factory) Var() Ref {
	id := f.vars
	f.vars++
	f.nodes = append(f.nodes, node{kind: kindVar, a: Ref(id)})
	return Ref((len(f.nodes) - 1) << 1)
}

// VarID returns the variable identifier behind a variable reference
// (ignoring complementation). It panics if r does not point at a variable.
func (f *Factory) VarID(r Ref) int {
	n := f.nodes[r.node()]
	if n.kind != kindVar {
		panic("boolcirc: VarID of non-variable ref")
	}
	return int(n.a)
}

// IsVar reports whether r points at a variable node.
func (f *Factory) IsVar(r Ref) bool { return f.nodes[r.node()].kind == kindVar }

// Bool returns the constant for b.
func (f *Factory) Bool(b bool) Ref {
	if b {
		return True
	}
	return False
}

// And returns the conjunction of the operands, folding constants and
// duplicates, as a balanced tree of binary AND gates.
func (f *Factory) And(rs ...Ref) Ref {
	acc := True
	for _, r := range rs {
		acc = f.and2(acc, r)
		if acc == False {
			return False
		}
	}
	return acc
}

// Or returns the disjunction of the operands.
func (f *Factory) Or(rs ...Ref) Ref {
	acc := False
	for _, r := range rs {
		// a ∨ b = ¬(¬a ∧ ¬b)
		acc = f.and2(acc.Not(), r.Not()).Not()
		if acc == True {
			return True
		}
	}
	return acc
}

// Not returns the complement of r.
func (f *Factory) Not(r Ref) Ref { return r.Not() }

// Implies returns a → b.
func (f *Factory) Implies(a, b Ref) Ref { return f.Or(a.Not(), b) }

// Iff returns a ↔ b.
func (f *Factory) Iff(a, b Ref) Ref {
	// (a→b) ∧ (b→a)
	return f.And(f.Implies(a, b), f.Implies(b, a))
}

// ITE returns if c then t else e.
func (f *Factory) ITE(c, t, e Ref) Ref {
	return f.And(f.Implies(c, t), f.Implies(c.Not(), e))
}

func (f *Factory) and2(a, b Ref) Ref {
	// Constant and structural folding.
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	case a == b.Not():
		return False
	}
	if a > b {
		a, b = b, a
	}
	if f.cons != nil {
		if r, ok := f.cons[[2]Ref{a, b}]; ok {
			return r
		}
	}
	f.nodes = append(f.nodes, node{kind: kindAnd, a: a, b: b})
	r := Ref((len(f.nodes) - 1) << 1)
	if f.cons != nil {
		f.cons[[2]Ref{a, b}] = r
	}
	return r
}

// Eval computes the value of r under the variable assignment varVal
// (indexed by variable id as returned by VarID). The memo is a dense
// slice keyed by node index — one allocation, no hashing — which is what
// makes repeated envelope/feedback evaluation over large circuits cheap.
func (f *Factory) Eval(r Ref, varVal func(int) bool) bool {
	const (
		unknown uint8 = iota
		valFalse
		valTrue
	)
	memo := make([]uint8, len(f.nodes))
	var rec func(Ref) bool
	rec = func(e Ref) bool {
		ni := e.node()
		n := f.nodes[ni]
		var v bool
		switch n.kind {
		case kindConst:
			v = true
		case kindVar:
			v = varVal(int(n.a))
		case kindAnd:
			if m := memo[ni]; m != unknown {
				v = m == valTrue
			} else {
				v = rec(n.a) && rec(n.b)
				if v {
					memo[ni] = valTrue
				} else {
					memo[ni] = valFalse
				}
			}
		}
		if e.complemented() {
			return !v
		}
		return v
	}
	return rec(r)
}

// Polarity bits track which implication direction of a gate's Tseitin
// definition has been emitted. polPos is the clauses for v → gate (needed
// where the gate is used positively), polNeg the clauses for gate → v.
const (
	polPos  uint8 = 1
	polNeg  uint8 = 2
	polBoth uint8 = polPos | polNeg
)

// flipPol swaps the two single directions; a complemented edge inverts
// which direction of the child supports the parent's.
func flipPol(p uint8) uint8 {
	switch p {
	case polPos:
		return polNeg
	case polNeg:
		return polPos
	}
	return p
}

// CNFOptions configure the circuit-to-CNF emission; the zero value is the
// recommended default. The toggles exist for the ablation benchmarks.
type CNFOptions struct {
	// NoPolarity always emits the full three-clause biconditional per AND
	// gate instead of Plaisted–Greenbaum polarity-aware emission.
	NoPolarity bool
	// NoSweep disables the AIG sweep pass (constant propagation,
	// duplicate-cone merging, dead-node elimination) before emission.
	NoSweep bool
}

// CNF incrementally emits circuit nodes into a SAT solver via the Tseitin
// transformation. One CNF may serve many Assert/LitFor calls; node→solver
// variable mappings and emitted polarities are memoised.
//
// Emission is polarity-aware (Plaisted–Greenbaum): Assert emits only the
// implication direction the asserted polarity needs, and a gate first
// reached through one polarity is lazily upgraded to the full
// biconditional if the other polarity is requested later — the
// incremental solver makes adding the missing clauses sound at any time.
// LitFor always emits both directions: its literal is handed out for
// assumptions, unsat-core selectors and soft targets, all of which rely
// on the literal being equivalent to the cone, not merely implying it.
//
// Every literal the CNF hands out — LitFor roots and circuit variables —
// is frozen in the solver, so CNF-level identities survive CNF-level
// preprocessing (see internal/simp).
type CNF struct {
	f       *Factory
	s       *sat.Solver
	opts    CNFOptions
	nodeVar map[int32]sat.Var // circuit node index → solver variable
	nodePol map[int32]uint8   // circuit node index → emitted polarities
	varVar  map[int32]sat.Var // circuit variable id → solver variable
	sw      *sweeper
}

// NewCNF couples a factory with a solver using default options.
func NewCNF(f *Factory, s *sat.Solver) *CNF {
	return NewCNFWithOptions(f, s, CNFOptions{})
}

// NewCNFWithOptions couples a factory with a solver.
func NewCNFWithOptions(f *Factory, s *sat.Solver, opts CNFOptions) *CNF {
	c := &CNF{
		f:       f,
		s:       s,
		opts:    opts,
		nodeVar: make(map[int32]sat.Var),
		nodePol: make(map[int32]uint8),
		varVar:  make(map[int32]sat.Var),
	}
	if !opts.NoSweep {
		c.sw = newSweeper(f)
	}
	return c
}

// Solver returns the underlying SAT solver.
func (c *CNF) Solver() *sat.Solver { return c.s }

// Factory returns the circuit factory this CNF emits from.
func (c *CNF) Factory() *Factory { return c.f }

// SolverVar returns the solver variable allocated for circuit variable id,
// creating (and freezing) it if needed.
func (c *CNF) SolverVar(id int) sat.Var {
	if v, ok := c.varVar[int32(id)]; ok {
		return v
	}
	v := c.s.NewVar()
	c.s.Freeze(v)
	c.varVar[int32(id)] = v
	return v
}

// sweep maps r to its canonical equivalent (identity when sweeping is
// disabled).
func (c *CNF) sweep(r Ref) Ref {
	if c.sw == nil {
		return r
	}
	return c.sw.sweep(r)
}

// LitFor returns a solver literal equivalent to the circuit edge r,
// emitting Tseitin definitions (both polarities) for any AND gates not
// yet encoded. Constants are encoded through a dedicated always-true
// variable. The literal's variable is frozen: callers use it as an
// assumption, selector, or soft target, and read it from models.
func (c *CNF) LitFor(r Ref) sat.Lit {
	r = c.sweep(r)
	v := c.litForNode(r.node(), polBoth)
	c.s.Freeze(v)
	return sat.MkLit(v, r.complemented())
}

// litForNode returns the solver variable for a circuit node, emitting any
// not-yet-emitted definition clauses for the requested polarity of the
// node's own function (callers account for edge complementation).
func (c *CNF) litForNode(ni int32, pol uint8) sat.Var {
	if c.opts.NoPolarity {
		pol = polBoth
	}
	n := c.f.nodes[ni]
	v, ok := c.nodeVar[ni]
	if !ok {
		switch n.kind {
		case kindConst:
			v = c.s.NewVar()
			c.s.AddClause(sat.PosLit(v)) // the true node
		case kindVar:
			v = c.SolverVar(int(n.a))
		case kindAnd:
			v = c.s.NewVar()
		default:
			panic(fmt.Sprintf("boolcirc: unknown node kind %d", n.kind))
		}
		c.nodeVar[ni] = v
	}
	if n.kind != kindAnd {
		return v
	}
	missing := pol &^ c.nodePol[ni]
	if missing == 0 {
		return v
	}
	// Mark before descending (children never cycle back — the circuit is
	// a DAG — but the mark keeps re-entrant requests cheap).
	c.nodePol[ni] |= pol
	out := sat.PosLit(v)
	if missing&polPos != 0 {
		// v → a ∧ b: children used positively.
		la := c.litEdge(n.a, polPos)
		lb := c.litEdge(n.b, polPos)
		c.s.AddClause(out.Not(), la)
		c.s.AddClause(out.Not(), lb)
	}
	if missing&polNeg != 0 {
		// a ∧ b → v: children used negatively.
		la := c.litEdge(n.a, polNeg)
		lb := c.litEdge(n.b, polNeg)
		c.s.AddClause(la.Not(), lb.Not(), out)
	}
	return v
}

// litEdge returns the literal for child edge e when the parent needs
// polarity pol of the edge's function; a complement edge flips which
// direction of the child node's definition is required.
func (c *CNF) litEdge(e Ref, pol uint8) sat.Lit {
	if e.complemented() {
		pol = flipPol(pol)
	}
	v := c.litForNode(e.node(), pol)
	return sat.MkLit(v, e.complemented())
}

// Assert adds the constraint that r must be true, emitting only the
// implication direction the assertion needs: asserting a positive edge
// needs v → cone, asserting a complemented edge needs cone → v.
func (c *CNF) Assert(r Ref) {
	r = c.sweep(r)
	switch r {
	case True:
		return
	case False:
		// Force unsatisfiability through the memoised constant node: the
		// always-true variable (minted once per CNF) plus its negation.
		c.s.AddClause(sat.MkLit(c.litForNode(True.node(), polBoth), true))
		return
	}
	pol := polPos
	if r.complemented() {
		pol = polNeg
	}
	v := c.litForNode(r.node(), pol)
	c.s.AddClause(sat.MkLit(v, r.complemented()))
}

// VarValue reads the model value of circuit variable id after a Sat solve.
// Unconstrained variables default to false.
func (c *CNF) VarValue(id int) bool {
	v, ok := c.varVar[int32(id)]
	if !ok {
		return false
	}
	return c.s.Value(v)
}
