// Package boolcirc provides a hash-consed boolean circuit factory in the
// style of an and-inverter graph (AIG): the only gate is binary AND, and
// negation is carried on edges. N-ary conjunction/disjunction, implication,
// equivalence and if-then-else are built on top with constant folding and
// structural sharing.
//
// Circuits are emitted to a sat.Solver via the Tseitin transformation. In
// the Muppet stack this package is the middle layer: the relational
// translator (package relational) grounds bounded first-order formulas into
// circuits, and the circuit is what the SAT backend ultimately decides. It
// plays the role of Kodkod's boolean factory.
//
// Storage is a flat struct-of-arrays arena: a node is an index into three
// parallel slices (kind, input a, input b), a Ref is an edge made of a node
// offset plus a complement bit, and hash-consing runs over an open-addressed
// index table into the arena rather than a Go map of boxed keys. The CNF
// emitter and the sweeper keep their per-node state in dense slices indexed
// by the same offsets, so the whole formula→clause front-end walks flat
// memory the way the solver's clause arena does.
package boolcirc

import (
	"fmt"

	"muppet/internal/sat"
)

// Ref is an edge into the circuit: a node index with a complement bit in
// the lowest bit. The zero node is the constant true.
type Ref int32

// True and False are the constant references.
const (
	True  Ref = 0
	False Ref = 1
)

// Not returns the complement edge.
func (r Ref) Not() Ref { return r ^ 1 }

// IsConst reports whether r is the constant true or false.
func (r Ref) IsConst() bool { return r>>1 == 0 }

func (r Ref) node() int32        { return int32(r >> 1) }
func (r Ref) complemented() bool { return r&1 == 1 }

type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindVar
	kindAnd
)

// Options configure a Factory.
type Options struct {
	// NoHashCons disables structural sharing of AND nodes (ablation).
	NoHashCons bool
}

// Factory builds and owns circuit nodes in a struct-of-arrays arena:
// kind[i], ina[i], inb[i] describe node i. For kindVar nodes ina holds the
// variable id. The zero value is not usable; call New or NewWithOptions.
type Factory struct {
	opts Options
	kind []nodeKind
	ina  []Ref
	inb  []Ref
	vars int32
	// cons is an open-addressed hash table mapping the (a,b) inputs of an
	// AND node to its arena index: consTab holds node indices (0 = empty;
	// the zero node is the constant and never an AND, so 0 is free as the
	// empty marker). The keys live in the arena itself — a probe compares
	// against ina/inb at the stored index — so the table is just int32s.
	consTab  []int32
	consUsed int
}

// New returns an empty factory with hash-consing enabled.
func New() *Factory { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty factory.
func NewWithOptions(opts Options) *Factory {
	f := &Factory{
		opts: opts,
		kind: make([]nodeKind, 1, 64),
		ina:  make([]Ref, 1, 64),
		inb:  make([]Ref, 1, 64),
	}
	if !opts.NoHashCons {
		f.consTab = make([]int32, 64)
	}
	return f
}

// NumNodes returns the number of allocated nodes (constants, variables and
// AND gates).
func (f *Factory) NumNodes() int { return len(f.kind) }

// NumVars returns the number of circuit variables created.
func (f *Factory) NumVars() int { return int(f.vars) }

func (f *Factory) newNode(k nodeKind, a, b Ref) int32 {
	f.kind = append(f.kind, k)
	f.ina = append(f.ina, a)
	f.inb = append(f.inb, b)
	return int32(len(f.kind) - 1)
}

// Var allocates a fresh circuit variable and returns its positive edge.
func (f *Factory) Var() Ref {
	id := f.vars
	f.vars++
	return Ref(f.newNode(kindVar, Ref(id), 0) << 1)
}

// VarID returns the variable identifier behind a variable reference
// (ignoring complementation). It panics if r does not point at a variable.
func (f *Factory) VarID(r Ref) int {
	ni := r.node()
	if f.kind[ni] != kindVar {
		panic("boolcirc: VarID of non-variable ref")
	}
	return int(f.ina[ni])
}

// IsVar reports whether r points at a variable node.
func (f *Factory) IsVar(r Ref) bool { return f.kind[r.node()] == kindVar }

// Bool returns the constant for b.
func (f *Factory) Bool(b bool) Ref {
	if b {
		return True
	}
	return False
}

// And returns the conjunction of the operands, folding constants and
// duplicates, as a balanced tree of binary AND gates.
func (f *Factory) And(rs ...Ref) Ref {
	acc := True
	for _, r := range rs {
		acc = f.and2(acc, r)
		if acc == False {
			return False
		}
	}
	return acc
}

// Or returns the disjunction of the operands.
func (f *Factory) Or(rs ...Ref) Ref {
	acc := False
	for _, r := range rs {
		// a ∨ b = ¬(¬a ∧ ¬b)
		acc = f.and2(acc.Not(), r.Not()).Not()
		if acc == True {
			return True
		}
	}
	return acc
}

// Not returns the complement of r.
func (f *Factory) Not(r Ref) Ref { return r.Not() }

// Implies returns a → b.
func (f *Factory) Implies(a, b Ref) Ref { return f.Or(a.Not(), b) }

// Iff returns a ↔ b.
func (f *Factory) Iff(a, b Ref) Ref {
	// (a→b) ∧ (b→a)
	return f.And(f.Implies(a, b), f.Implies(b, a))
}

// ITE returns if c then t else e.
func (f *Factory) ITE(c, t, e Ref) Ref {
	return f.And(f.Implies(c, t), f.Implies(c.Not(), e))
}

// consHash mixes an ordered (a,b) input pair into a table index seed.
func consHash(a, b Ref) uint64 {
	h := uint64(uint32(a))<<32 | uint64(uint32(b))
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// consFind probes for an AND node with inputs (a,b); it returns the node
// index, or the slot where such a node should be inserted (marked by a
// negative return with the slot encoded as ^slot).
func (f *Factory) consFind(a, b Ref) int32 {
	mask := uint64(len(f.consTab) - 1)
	i := consHash(a, b) & mask
	for {
		ni := f.consTab[i]
		if ni == 0 {
			return int32(^i)
		}
		if f.ina[ni] == a && f.inb[ni] == b {
			return ni
		}
		i = (i + 1) & mask
	}
}

func (f *Factory) consGrow() {
	old := f.consTab
	f.consTab = make([]int32, 2*len(old))
	mask := uint64(len(f.consTab) - 1)
	for _, ni := range old {
		if ni == 0 {
			continue
		}
		i := consHash(f.ina[ni], f.inb[ni]) & mask
		for f.consTab[i] != 0 {
			i = (i + 1) & mask
		}
		f.consTab[i] = ni
	}
}

func (f *Factory) and2(a, b Ref) Ref {
	// Constant and structural folding.
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	case a == b.Not():
		return False
	}
	if a > b {
		a, b = b, a
	}
	if f.consTab == nil {
		return Ref(f.newNode(kindAnd, a, b) << 1)
	}
	slot := f.consFind(a, b)
	if slot >= 0 {
		return Ref(slot << 1)
	}
	ni := f.newNode(kindAnd, a, b)
	f.consTab[^slot] = ni
	f.consUsed++
	if f.consUsed*4 >= len(f.consTab)*3 {
		f.consGrow()
	}
	return Ref(ni << 1)
}

// Eval computes the value of r under the variable assignment varVal
// (indexed by variable id as returned by VarID). The memo is a dense
// slice keyed by node index — one allocation, no hashing — and the walk
// is an explicit stack over the flat arena, so repeated envelope/feedback
// evaluation over large circuits stays cheap and recursion-free.
func (f *Factory) Eval(r Ref, varVal func(int) bool) bool {
	const (
		unknown uint8 = iota
		valFalse
		valTrue
	)
	memo := make([]uint8, len(f.kind))
	memo[0] = valTrue
	// The stack holds node indices; a node is pushed at most twice: once
	// to schedule its children, once (found memoised-or-ready) to combine.
	stack := make([]int32, 0, 64)
	stack = append(stack, r.node())
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		if memo[ni] != unknown {
			stack = stack[:len(stack)-1]
			continue
		}
		switch f.kind[ni] {
		case kindVar:
			if varVal(int(f.ina[ni])) {
				memo[ni] = valTrue
			} else {
				memo[ni] = valFalse
			}
			stack = stack[:len(stack)-1]
		case kindAnd:
			an, bn := f.ina[ni].node(), f.inb[ni].node()
			ma, mb := memo[an], memo[bn]
			if ma == unknown {
				stack = append(stack, an)
				continue
			}
			if mb == unknown {
				stack = append(stack, bn)
				continue
			}
			va := ma == valTrue != f.ina[ni].complemented()
			vb := mb == valTrue != f.inb[ni].complemented()
			if va && vb {
				memo[ni] = valTrue
			} else {
				memo[ni] = valFalse
			}
			stack = stack[:len(stack)-1]
		default:
			stack = stack[:len(stack)-1]
		}
	}
	v := memo[r.node()] == valTrue
	if r.complemented() {
		return !v
	}
	return v
}

// Polarity bits track which implication direction of a gate's Tseitin
// definition has been emitted. polPos is the clauses for v → gate (needed
// where the gate is used positively), polNeg the clauses for gate → v.
const (
	polPos  uint8 = 1
	polNeg  uint8 = 2
	polBoth uint8 = polPos | polNeg
)

// flipPol swaps the two single directions; a complemented edge inverts
// which direction of the child supports the parent's.
func flipPol(p uint8) uint8 {
	switch p {
	case polPos:
		return polNeg
	case polNeg:
		return polPos
	}
	return p
}

// CNFOptions configure the circuit-to-CNF emission; the zero value is the
// recommended default. The toggles exist for the ablation benchmarks.
type CNFOptions struct {
	// NoPolarity always emits the full three-clause biconditional per AND
	// gate instead of Plaisted–Greenbaum polarity-aware emission.
	NoPolarity bool
	// NoSweep disables the AIG sweep pass (constant propagation,
	// duplicate-cone merging, dead-node elimination) before emission.
	NoSweep bool
}

// CNF incrementally emits circuit nodes into a SAT solver via the Tseitin
// transformation. One CNF may serve many Assert/LitFor calls; node→solver
// variable mappings and emitted polarities are memoised in dense slices
// indexed by arena offset.
//
// Emission is polarity-aware (Plaisted–Greenbaum): Assert emits only the
// implication direction the asserted polarity needs, and a gate first
// reached through one polarity is lazily upgraded to the full
// biconditional if the other polarity is requested later — the
// incremental solver makes adding the missing clauses sound at any time.
// LitFor always emits both directions: its literal is handed out for
// assumptions, unsat-core selectors and soft targets, all of which rely
// on the literal being equivalent to the cone, not merely implying it.
//
// Every literal the CNF hands out — LitFor roots and circuit variables —
// is frozen in the solver, so CNF-level identities survive CNF-level
// preprocessing (see internal/simp).
type CNF struct {
	f       *Factory
	s       *sat.Solver
	opts    CNFOptions
	nodeVar []sat.Var // circuit node index → solver variable (-1 unset)
	nodePol []uint8   // circuit node index → emitted polarities
	varVar  []sat.Var // circuit variable id → solver variable (-1 unset)
	sw      *sweeper
}

// NewCNF couples a factory with a solver using default options.
func NewCNF(f *Factory, s *sat.Solver) *CNF {
	return NewCNFWithOptions(f, s, CNFOptions{})
}

// NewCNFWithOptions couples a factory with a solver.
func NewCNFWithOptions(f *Factory, s *sat.Solver, opts CNFOptions) *CNF {
	c := &CNF{f: f, s: s, opts: opts}
	if !opts.NoSweep {
		c.sw = newSweeper(f)
	}
	return c
}

// ensureNode grows the dense node-indexed state to cover node ni (the
// factory keeps allocating nodes after the CNF is created — the sweeper's
// bottom-up rebuild in particular appends to the arena mid-emission).
func (c *CNF) ensureNode(ni int32) {
	for int(ni) >= len(c.nodeVar) {
		c.nodeVar = append(c.nodeVar, -1)
		c.nodePol = append(c.nodePol, 0)
	}
}

// Solver returns the underlying SAT solver.
func (c *CNF) Solver() *sat.Solver { return c.s }

// Factory returns the circuit factory this CNF emits from.
func (c *CNF) Factory() *Factory { return c.f }

// SolverVar returns the solver variable allocated for circuit variable id,
// creating (and freezing) it if needed.
func (c *CNF) SolverVar(id int) sat.Var {
	for id >= len(c.varVar) {
		c.varVar = append(c.varVar, -1)
	}
	if v := c.varVar[id]; v >= 0 {
		return v
	}
	v := c.s.NewVar()
	c.s.Freeze(v)
	c.varVar[id] = v
	return v
}

// sweep maps r to its canonical equivalent (identity when sweeping is
// disabled).
func (c *CNF) sweep(r Ref) Ref {
	if c.sw == nil {
		return r
	}
	return c.sw.sweep(r)
}

// LitFor returns a solver literal equivalent to the circuit edge r,
// emitting Tseitin definitions (both polarities) for any AND gates not
// yet encoded. Constants are encoded through a dedicated always-true
// variable. The literal's variable is frozen: callers use it as an
// assumption, selector, or soft target, and read it from models.
func (c *CNF) LitFor(r Ref) sat.Lit {
	r = c.sweep(r)
	v := c.litForNode(r.node(), polBoth)
	c.s.Freeze(v)
	return sat.MkLit(v, r.complemented())
}

// litForNode returns the solver variable for a circuit node, emitting any
// not-yet-emitted definition clauses for the requested polarity of the
// node's own function (callers account for edge complementation).
func (c *CNF) litForNode(ni int32, pol uint8) sat.Var {
	if c.opts.NoPolarity {
		pol = polBoth
	}
	c.ensureNode(ni)
	kind := c.f.kind[ni]
	v := c.nodeVar[ni]
	if v < 0 {
		switch kind {
		case kindConst:
			v = c.s.NewVar()
			c.s.AddClause(sat.PosLit(v)) // the true node
		case kindVar:
			v = c.SolverVar(int(c.f.ina[ni]))
		case kindAnd:
			v = c.s.NewVar()
		default:
			panic(fmt.Sprintf("boolcirc: unknown node kind %d", kind))
		}
		c.nodeVar[ni] = v
	}
	if kind != kindAnd {
		return v
	}
	missing := pol &^ c.nodePol[ni]
	if missing == 0 {
		return v
	}
	// Mark before descending (children never cycle back — the circuit is
	// a DAG — but the mark keeps re-entrant requests cheap).
	c.nodePol[ni] |= pol
	out := sat.PosLit(v)
	a, b := c.f.ina[ni], c.f.inb[ni]
	if missing&polPos != 0 {
		// v → a ∧ b: children used positively.
		la := c.litEdge(a, polPos)
		lb := c.litEdge(b, polPos)
		c.s.AddClause(out.Not(), la)
		c.s.AddClause(out.Not(), lb)
	}
	if missing&polNeg != 0 {
		// a ∧ b → v: children used negatively.
		la := c.litEdge(a, polNeg)
		lb := c.litEdge(b, polNeg)
		c.s.AddClause(la.Not(), lb.Not(), out)
	}
	return v
}

// litEdge returns the literal for child edge e when the parent needs
// polarity pol of the edge's function; a complement edge flips which
// direction of the child node's definition is required.
func (c *CNF) litEdge(e Ref, pol uint8) sat.Lit {
	if e.complemented() {
		pol = flipPol(pol)
	}
	v := c.litForNode(e.node(), pol)
	return sat.MkLit(v, e.complemented())
}

// Assert adds the constraint that r must be true, emitting only the
// implication direction the assertion needs: asserting a positive edge
// needs v → cone, asserting a complemented edge needs cone → v.
func (c *CNF) Assert(r Ref) {
	r = c.sweep(r)
	switch r {
	case True:
		return
	case False:
		// Force unsatisfiability through the memoised constant node: the
		// always-true variable (minted once per CNF) plus its negation.
		c.s.AddClause(sat.MkLit(c.litForNode(True.node(), polBoth), true))
		return
	}
	pol := polPos
	if r.complemented() {
		pol = polNeg
	}
	v := c.litForNode(r.node(), pol)
	c.s.AddClause(sat.MkLit(v, r.complemented()))
}

// VarValue reads the model value of circuit variable id after a Sat solve.
// Unconstrained variables default to false.
func (c *CNF) VarValue(id int) bool {
	if id >= len(c.varVar) || c.varVar[id] < 0 {
		return false
	}
	return c.s.Value(c.varVar[id])
}
