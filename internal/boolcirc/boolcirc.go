// Package boolcirc provides a hash-consed boolean circuit factory in the
// style of an and-inverter graph (AIG): the only gate is binary AND, and
// negation is carried on edges. N-ary conjunction/disjunction, implication,
// equivalence and if-then-else are built on top with constant folding and
// structural sharing.
//
// Circuits are emitted to a sat.Solver via the Tseitin transformation. In
// the Muppet stack this package is the middle layer: the relational
// translator (package relational) grounds bounded first-order formulas into
// circuits, and the circuit is what the SAT backend ultimately decides. It
// plays the role of Kodkod's boolean factory.
package boolcirc

import (
	"fmt"

	"muppet/internal/sat"
)

// Ref is an edge into the circuit: a node index with a complement bit in
// the lowest bit. The zero node is the constant true.
type Ref int32

// True and False are the constant references.
const (
	True  Ref = 0
	False Ref = 1
)

// Not returns the complement edge.
func (r Ref) Not() Ref { return r ^ 1 }

// IsConst reports whether r is the constant true or false.
func (r Ref) IsConst() bool { return r>>1 == 0 }

func (r Ref) node() int32        { return int32(r >> 1) }
func (r Ref) complemented() bool { return r&1 == 1 }

type nodeKind uint8

const (
	kindConst nodeKind = iota
	kindVar
	kindAnd
)

type node struct {
	kind nodeKind
	// a, b are the AND inputs; for kindVar, a holds the variable id.
	a, b Ref
}

// Options configure a Factory.
type Options struct {
	// NoHashCons disables structural sharing of AND nodes (ablation).
	NoHashCons bool
}

// Factory builds and owns circuit nodes. The zero value is not usable; call
// New or NewWithOptions.
type Factory struct {
	opts  Options
	nodes []node
	cons  map[[2]Ref]Ref
	vars  int32
}

// New returns an empty factory with hash-consing enabled.
func New() *Factory { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty factory.
func NewWithOptions(opts Options) *Factory {
	f := &Factory{
		opts:  opts,
		nodes: []node{{kind: kindConst}},
	}
	if !opts.NoHashCons {
		f.cons = make(map[[2]Ref]Ref)
	}
	return f
}

// NumNodes returns the number of allocated nodes (constants, variables and
// AND gates).
func (f *Factory) NumNodes() int { return len(f.nodes) }

// NumVars returns the number of circuit variables created.
func (f *Factory) NumVars() int { return int(f.vars) }

// Var allocates a fresh circuit variable and returns its positive edge.
func (f *Factory) Var() Ref {
	id := f.vars
	f.vars++
	f.nodes = append(f.nodes, node{kind: kindVar, a: Ref(id)})
	return Ref((len(f.nodes) - 1) << 1)
}

// VarID returns the variable identifier behind a variable reference
// (ignoring complementation). It panics if r does not point at a variable.
func (f *Factory) VarID(r Ref) int {
	n := f.nodes[r.node()]
	if n.kind != kindVar {
		panic("boolcirc: VarID of non-variable ref")
	}
	return int(n.a)
}

// IsVar reports whether r points at a variable node.
func (f *Factory) IsVar(r Ref) bool { return f.nodes[r.node()].kind == kindVar }

// Bool returns the constant for b.
func (f *Factory) Bool(b bool) Ref {
	if b {
		return True
	}
	return False
}

// And returns the conjunction of the operands, folding constants and
// duplicates, as a balanced tree of binary AND gates.
func (f *Factory) And(rs ...Ref) Ref {
	acc := True
	for _, r := range rs {
		acc = f.and2(acc, r)
		if acc == False {
			return False
		}
	}
	return acc
}

// Or returns the disjunction of the operands.
func (f *Factory) Or(rs ...Ref) Ref {
	acc := False
	for _, r := range rs {
		// a ∨ b = ¬(¬a ∧ ¬b)
		acc = f.and2(acc.Not(), r.Not()).Not()
		if acc == True {
			return True
		}
	}
	return acc
}

// Not returns the complement of r.
func (f *Factory) Not(r Ref) Ref { return r.Not() }

// Implies returns a → b.
func (f *Factory) Implies(a, b Ref) Ref { return f.Or(a.Not(), b) }

// Iff returns a ↔ b.
func (f *Factory) Iff(a, b Ref) Ref {
	// (a→b) ∧ (b→a)
	return f.And(f.Implies(a, b), f.Implies(b, a))
}

// ITE returns if c then t else e.
func (f *Factory) ITE(c, t, e Ref) Ref {
	return f.And(f.Implies(c, t), f.Implies(c.Not(), e))
}

func (f *Factory) and2(a, b Ref) Ref {
	// Constant and structural folding.
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	case a == b.Not():
		return False
	}
	if a > b {
		a, b = b, a
	}
	if f.cons != nil {
		if r, ok := f.cons[[2]Ref{a, b}]; ok {
			return r
		}
	}
	f.nodes = append(f.nodes, node{kind: kindAnd, a: a, b: b})
	r := Ref((len(f.nodes) - 1) << 1)
	if f.cons != nil {
		f.cons[[2]Ref{a, b}] = r
	}
	return r
}

// Eval computes the value of r under the variable assignment varVal
// (indexed by variable id as returned by VarID).
func (f *Factory) Eval(r Ref, varVal func(int) bool) bool {
	memo := make(map[int32]bool)
	var rec func(Ref) bool
	rec = func(e Ref) bool {
		ni := e.node()
		n := f.nodes[ni]
		var v bool
		switch n.kind {
		case kindConst:
			v = true
		case kindVar:
			v = varVal(int(n.a))
		case kindAnd:
			if got, ok := memo[ni]; ok {
				v = got
			} else {
				v = rec(n.a) && rec(n.b)
				memo[ni] = v
			}
		}
		if e.complemented() {
			return !v
		}
		return v
	}
	return rec(r)
}

// CNF incrementally emits circuit nodes into a SAT solver via the Tseitin
// transformation. One CNF may serve many Assert/LitFor calls; node→solver
// variable mappings are memoised.
type CNF struct {
	f       *Factory
	s       *sat.Solver
	nodeVar map[int32]sat.Var // circuit node index → solver variable
	varVar  map[int32]sat.Var // circuit variable id → solver variable
}

// NewCNF couples a factory with a solver.
func NewCNF(f *Factory, s *sat.Solver) *CNF {
	return &CNF{
		f:       f,
		s:       s,
		nodeVar: make(map[int32]sat.Var),
		varVar:  make(map[int32]sat.Var),
	}
}

// Solver returns the underlying SAT solver.
func (c *CNF) Solver() *sat.Solver { return c.s }

// SolverVar returns the solver variable allocated for circuit variable id,
// creating it if needed.
func (c *CNF) SolverVar(id int) sat.Var {
	if v, ok := c.varVar[int32(id)]; ok {
		return v
	}
	v := c.s.NewVar()
	c.varVar[int32(id)] = v
	return v
}

// LitFor returns a solver literal equivalent to the circuit edge r, emitting
// Tseitin definitions for any AND gates not yet encoded. Constants are
// encoded through a dedicated always-true variable.
func (c *CNF) LitFor(r Ref) sat.Lit {
	v := c.litForNode(r.node())
	return sat.MkLit(v, r.complemented())
}

func (c *CNF) litForNode(ni int32) sat.Var {
	if v, ok := c.nodeVar[ni]; ok {
		return v
	}
	n := c.f.nodes[ni]
	var v sat.Var
	switch n.kind {
	case kindConst:
		v = c.s.NewVar()
		c.s.AddClause(sat.PosLit(v)) // the true node
	case kindVar:
		v = c.SolverVar(int(n.a))
	case kindAnd:
		la := c.LitFor(n.a)
		lb := c.LitFor(n.b)
		v = c.s.NewVar()
		out := sat.PosLit(v)
		// v ↔ la ∧ lb
		c.s.AddClause(out.Not(), la)
		c.s.AddClause(out.Not(), lb)
		c.s.AddClause(la.Not(), lb.Not(), out)
	default:
		panic(fmt.Sprintf("boolcirc: unknown node kind %d", n.kind))
	}
	c.nodeVar[ni] = v
	return v
}

// Assert adds the constraint that r must be true.
func (c *CNF) Assert(r Ref) {
	switch r {
	case True:
		return
	case False:
		// Force unsatisfiability explicitly.
		v := c.s.NewVar()
		c.s.AddClause(sat.PosLit(v))
		c.s.AddClause(sat.NegLit(v))
		return
	}
	c.s.AddClause(c.LitFor(r))
}

// VarValue reads the model value of circuit variable id after a Sat solve.
// Unconstrained variables default to false.
func (c *CNF) VarValue(id int) bool {
	v, ok := c.varVar[int32(id)]
	if !ok {
		return false
	}
	return c.s.Value(v)
}
