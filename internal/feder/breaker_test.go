package feder

import (
	"testing"
	"time"
)

// clockAt returns a breaker clock pinned to *at, advanced by the test.
func clockAt(at *time.Time) func() time.Time {
	return func() time.Time { return *at }
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(3, time.Minute).withClock(clockAt(&now))
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Report(false)
		if st := b.State(); st != BreakerClosed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, st)
		}
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused the threshold call")
	}
	b.Report(false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("after threshold failures: state %v, want open", st)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(3, time.Minute).withClock(clockAt(&now))
	b.Allow()
	b.Report(false)
	b.Allow()
	b.Report(false)
	b.Allow()
	b.Report(true) // streak broken
	b.Allow()
	b.Report(false)
	b.Allow()
	b.Report(false)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("interleaved success must reset the streak, state %v", st)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(1, time.Minute).withClock(clockAt(&now))
	b.Allow()
	b.Report(false)
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	now = now.Add(time.Minute)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("after cooldown: state %v, want half-open", st)
	}
	if !b.Allow() {
		t.Fatal("cooldown elapsed but the probe was refused")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Report(true)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("successful probe must close, state %v", st)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a call")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(1, time.Minute).withClock(clockAt(&now))
	b.Allow()
	b.Report(false)
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Report(false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("failed probe must reopen, state %v", st)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a call before the next cooldown")
	}
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe refused after the second cooldown")
	}
	b.Report(true)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("recovery must close, state %v", st)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
	} {
		if got := st.String(); got != want {
			t.Fatalf("state %d: %q, want %q", st, got, want)
		}
	}
}
