package feder

import (
	"bytes"
	"strings"
	"testing"
)

// writeTranscript appends a handful of representative entries and returns
// the serialized log.
func writeTranscript(t *testing.T, key []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := NewTranscriptWriter(&buf, key)
	entries := []struct {
		kind, peer string
		round      int
		payload    any
	}{
		{"join", "K8s", 0, map[string]any{"digest": "alpha"}},
		{"join", "Istio", 0, map[string]any{"digest": "bravo"}},
		{"envelope", "K8s", 1, map[string]any{"clauses": 3}},
		{"counter", "K8s", 1, map[string]any{"result": "revised"}},
		{"outcome", "", 1, map[string]any{"reason": "reconciled"}},
	}
	for _, e := range entries {
		if err := tw.Append(e.kind, e.peer, e.round, e.payload); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestTranscriptAppendVerify(t *testing.T) {
	key := []byte("transcript-key")
	raw := writeTranscript(t, key)
	n, err := VerifyTranscript(bytes.NewReader(raw), key)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if n != 5 {
		t.Fatalf("verified %d entries, want 5", n)
	}
}

func TestTranscriptTamperDetected(t *testing.T) {
	key := []byte("transcript-key")
	raw := writeTranscript(t, key)
	tampered := bytes.Replace(raw, []byte(`"result":"revised"`), []byte(`"result":"stuck"`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found in transcript")
	}
	n, err := VerifyTranscript(bytes.NewReader(tampered), key)
	if err == nil {
		t.Fatal("tampered transcript verified")
	}
	if n >= 4 {
		t.Fatalf("tampered entry is the 4th; verified %d", n)
	}
}

func TestTranscriptWrongKey(t *testing.T) {
	raw := writeTranscript(t, []byte("right-key"))
	n, err := VerifyTranscript(bytes.NewReader(raw), []byte("wrong-key"))
	if err == nil {
		t.Fatal("wrong key verified")
	}
	if n != 0 {
		t.Fatalf("wrong key verified %d entries, want 0", n)
	}
}

func TestTranscriptTruncationDetected(t *testing.T) {
	key := []byte("transcript-key")
	raw := writeTranscript(t, key)
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d", len(lines))
	}

	// Dropping a middle entry breaks the chain at the splice point.
	spliced := strings.Join(append(append([]string{}, lines[:2]...), lines[3:]...), "\n") + "\n"
	if _, err := VerifyTranscript(strings.NewReader(spliced), key); err == nil {
		t.Fatal("transcript with a dropped entry verified")
	}

	// Reordering two entries breaks the chain too.
	swapped := append([]string{}, lines...)
	swapped[2], swapped[3] = swapped[3], swapped[2]
	if _, err := VerifyTranscript(strings.NewReader(strings.Join(swapped, "\n")+"\n"), key); err == nil {
		t.Fatal("reordered transcript verified")
	}

	// Truncating the tail is undetectable from the file alone (append-only
	// logs cannot prove their own length) but every surviving prefix entry
	// must still verify.
	prefix := strings.Join(lines[:3], "\n") + "\n"
	n, err := VerifyTranscript(strings.NewReader(prefix), key)
	if err != nil || n != 3 {
		t.Fatalf("prefix verify: n=%d err=%v", n, err)
	}
}

func TestTranscriptGarbageLine(t *testing.T) {
	key := []byte("transcript-key")
	raw := append(writeTranscript(t, key), []byte("not json\n")...)
	if _, err := VerifyTranscript(bytes.NewReader(raw), key); err == nil {
		t.Fatal("garbage line verified")
	}
}
