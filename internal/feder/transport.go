package feder

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is returned (wrapped in a *PeerError) when a call is
// rejected locally because the peer's circuit breaker is open.
var ErrBreakerOpen = errors.New("circuit breaker open")

// PeerError is a typed failure talking to one peer mediator. Status is
// the HTTP status (0 for transport-level failures), Code the structured
// wire error code when the peer sent one.
type PeerError struct {
	Peer   string
	Op     string
	Status int
	Code   string
	Err    error

	// RetryHint carries the peer's Retry-After, when it sent one.
	RetryHint    time.Duration
	HasRetryHint bool
}

func (e *PeerError) Error() string {
	msg := fmt.Sprintf("peer %s: %s", e.Peer, e.Op)
	if e.Status != 0 {
		msg += fmt.Sprintf(": HTTP %d", e.Status)
	}
	if e.Code != "" {
		msg += fmt.Sprintf(" (%s)", e.Code)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *PeerError) Unwrap() error { return e.Err }

// BackoffDelay computes the exponential-backoff-with-jitter delay before
// retry attempt (0-based): base·2^attempt plus up to one base of jitter,
// capped at max. jitter returns a uniform [0,1) sample; nil means no
// jitter (deterministic tests).
func BackoffDelay(attempt int, base, max time.Duration, jitter func() float64) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if jitter != nil {
		d += time.Duration(jitter() * float64(base))
	}
	if d > max {
		d = max
	}
	return d
}

// RetryAfter parses a Retry-After header as delay seconds (the only form
// the muppet daemon emits). Absent or malformed headers yield 0, false.
func RetryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// PeerClient is the coordinator's handle on one peer mediator: an HTTP
// client with bounded retries, exponential backoff with jitter honoring
// Retry-After, and a circuit breaker.
type PeerClient struct {
	Name    string // party name the peer claims
	BaseURL string // e.g. http://127.0.0.1:7001

	HTTP           *http.Client
	Retries        int           // retry attempts after the first call
	BackoffBase    time.Duration // first retry delay
	BackoffMax     time.Duration
	AttemptTimeout time.Duration // per-attempt cap (0 = ctx only)
	Breaker        *Breaker

	// OnRetry is invoked before each retry sleep (metrics hook).
	OnRetry func(peer string)

	rngMu sync.Mutex
	rng   *rand.Rand

	retried atomic.Int64
	calls   atomic.Int64
}

// NewPeerClient builds a client with the given robustness parameters.
// seed fixes the jitter stream for reproducible tests.
func NewPeerClient(name, baseURL string, retries int, breaker *Breaker, seed int64) *PeerClient {
	return &PeerClient{
		Name:        name,
		BaseURL:     baseURL,
		HTTP:        &http.Client{},
		Retries:     retries,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  2 * time.Second,
		Breaker:     breaker,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Retried reports how many retry attempts this client has made.
func (c *PeerClient) Retried() int64 { return c.retried.Load() }

// Calls reports how many logical calls (not attempts) were made.
func (c *PeerClient) Calls() int64 { return c.calls.Load() }

func (c *PeerClient) jitter() float64 {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Float64()
}

// retryable reports whether a failed attempt is worth repeating:
// transport errors, admission pushback (429), and server-side failures
// (5xx). Protocol-level rejections (other 4xx) are not.
func retryable(status int) bool {
	return status == 0 || status == http.StatusTooManyRequests || status >= 500
}

// Call POSTs one protocol message to the peer's /fed/<op> endpoint and
// decodes the JSON reply into out. It retries retryable failures up to
// c.Retries times, sleeping an exponential backoff with jitter between
// attempts (at least the peer's Retry-After, when given), all capped by
// ctx's deadline. The circuit breaker is consulted once per attempt.
func (c *PeerClient) Call(ctx context.Context, op string, in, out any) error {
	c.calls.Add(1)
	body, err := json.Marshal(in)
	if err != nil {
		return &PeerError{Peer: c.Name, Op: op, Err: err}
	}

	var last *PeerError
	for attempt := 0; ; attempt++ {
		if c.Breaker != nil && !c.Breaker.Allow() {
			return &PeerError{Peer: c.Name, Op: op, Code: "breaker-open", Err: ErrBreakerOpen}
		}
		perr := c.attempt(ctx, op, body, out)
		if perr == nil {
			if c.Breaker != nil {
				c.Breaker.Report(true)
			}
			return nil
		}
		// 4xx means the peer is alive and answering; only transport
		// failures and 5xx count against the breaker.
		if c.Breaker != nil {
			c.Breaker.Report(perr.Status != 0 && perr.Status < 500)
		}
		last = perr
		if attempt >= c.Retries || !retryable(perr.Status) {
			return last
		}
		delay := BackoffDelay(attempt, c.BackoffBase, c.BackoffMax, c.jitter)
		if perr.HasRetryHint && perr.RetryHint > delay {
			delay = perr.RetryHint
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < delay {
			return last // the deadline caps the retry budget
		}
		c.retried.Add(1)
		if c.OnRetry != nil {
			c.OnRetry(c.Name)
		}
		select {
		case <-ctx.Done():
			return last
		case <-time.After(delay):
		}
	}
}

func (c *PeerClient) attempt(ctx context.Context, op string, body []byte, out any) *PeerError {
	actx := ctx
	if c.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.BaseURL+"/fed/"+op, bytes.NewReader(body))
	if err != nil {
		return &PeerError{Peer: c.Name, Op: op, Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return &PeerError{Peer: c.Name, Op: op, Err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return &PeerError{Peer: c.Name, Op: op, Status: resp.StatusCode, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		perr := &PeerError{Peer: c.Name, Op: op, Status: resp.StatusCode}
		var we WireError
		if json.Unmarshal(raw, &we) == nil && we.Error != "" {
			perr.Code = we.Code
			perr.Err = errors.New(we.Error)
		}
		if ra, ok := RetryAfter(resp.Header); ok {
			perr.RetryHint, perr.HasRetryHint = ra, true
		}
		return perr
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return &PeerError{Peer: c.Name, Op: op, Status: resp.StatusCode, Err: fmt.Errorf("decoding reply: %w", err)}
		}
	}
	return nil
}
