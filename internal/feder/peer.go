package feder

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"muppet"
	"muppet/internal/relational"
)

// PeerHooks are optional observability callbacks for a peer mediator
// (wired to the daemon's Prometheus counters). Any field may be nil.
type PeerHooks struct {
	OnRound  func() // one envelope round served (a solve ran)
	OnReplay func() // an idempotent replay was served instead of a re-solve
}

func (h PeerHooks) round() {
	if h.OnRound != nil {
		h.OnRound()
	}
}

func (h PeerHooks) replay() {
	if h.OnReplay != nil {
		h.OnReplay()
	}
}

// Peer serves one party's side of the federated negotiation protocol:
// /fed/join, /fed/propose, /fed/envelope, /fed/install, /fed/describe.
// It holds only this party's private bundle; envelopes and configuration
// offers are all that cross the trust boundary.
type Peer struct {
	sys         *muppet.System
	vocab       *Vocab
	fingerprint string
	newParty    func() (*LocalParty, error)
	hooks       PeerHooks

	// MaxSessions caps concurrent negotiation sessions (LRU-evicted).
	MaxSessions int

	mu       sync.Mutex
	sessions map[string]*fedSession
	use      map[string]int64 // session id → last-use tick
	tick     int64
}

// fedSession is one negotiation's server-side state: a fresh party
// (private goals + current configuration), a warm solve cache, and the
// idempotency replay log. Solves are serialized per session (the cache
// is single-goroutine); distinct sessions solve concurrently.
type fedSession struct {
	mu     sync.Mutex
	lp     *LocalParty
	cache  *muppet.SolveCache
	replay map[string][]byte // idempotency key → recorded response body
}

// NewPeer builds a peer mediator. newParty is called once per session to
// materialize the party from the daemon's current state (so tenant hot
// reloads apply to new sessions without tearing live ones).
func NewPeer(sys *muppet.System, newParty func() (*LocalParty, error), hooks PeerHooks) *Peer {
	return &Peer{
		sys:         sys,
		vocab:       NewVocab(sys),
		fingerprint: SystemFingerprint(sys),
		newParty:    newParty,
		hooks:       hooks,
		MaxSessions: 16,
		sessions:    make(map[string]*fedSession),
		use:         make(map[string]int64),
	}
}

// Fingerprint exposes the peer's system fingerprint (tests, handshakes).
func (p *Peer) Fingerprint() string { return p.fingerprint }

func (p *Peer) lookup(id string) *fedSession {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.sessions[id]
	if s != nil {
		p.tick++
		p.use[id] = p.tick
	}
	return s
}

func (p *Peer) open(id string) (*fedSession, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.sessions[id]; s != nil {
		p.tick++
		p.use[id] = p.tick
		return s, nil
	}
	lp, err := p.newParty()
	if err != nil {
		return nil, err
	}
	if len(p.sessions) >= p.MaxSessions {
		oldest, best := "", int64(1<<62)
		for sid, t := range p.use {
			if t < best {
				oldest, best = sid, t
			}
		}
		delete(p.sessions, oldest)
		delete(p.use, oldest)
	}
	s := &fedSession{lp: lp, cache: muppet.NewSolveCache(), replay: make(map[string][]byte)}
	p.sessions[id] = s
	p.tick++
	p.use[id] = p.tick
	return s, nil
}

// Handler mounts the protocol endpoints under /fed/.
func (p *Peer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		op := strings.TrimPrefix(r.URL.Path, "/fed/")
		if r.Method != http.MethodPost {
			writeWireError(w, http.StatusMethodNotAllowed, ErrCodeUsage, "POST only")
			return
		}
		switch op {
		case "join":
			p.serveJoin(w, r)
		case "propose":
			p.servePropose(w, r)
		case "envelope":
			p.serveEnvelope(w, r)
		case "install":
			p.serveInstall(w, r)
		case "describe":
			p.serveDescribe(w, r)
		default:
			writeWireError(w, http.StatusNotFound, ErrCodeUsage, fmt.Sprintf("unknown federation op %q", op))
		}
	})
}

func writeWireError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(WireError{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(v); err != nil {
		writeWireError(w, http.StatusBadRequest, ErrCodeUsage, "malformed request body: "+err.Error())
		return false
	}
	return true
}

func (p *Peer) serveJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Session == "" {
		writeWireError(w, http.StatusBadRequest, ErrCodeUsage, "missing session id")
		return
	}
	if req.Fingerprint != "" && req.Fingerprint != p.fingerprint {
		writeWireError(w, http.StatusConflict, ErrCodeFingerprint,
			"system fingerprint mismatch: coordinator and peer are configured over different universes")
		return
	}
	s, err := p.open(req.Session)
	if err != nil {
		writeWireError(w, http.StatusInternalServerError, ErrCodeInternal, err.Error())
		return
	}
	s.mu.Lock()
	resp := JoinResponse{
		Party:       s.lp.P.Name,
		Kind:        s.lp.Kind(),
		Mode:        s.lp.Mode(),
		Fingerprint: p.fingerprint,
		Digest:      s.lp.Digest(),
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func (p *Peer) servePropose(w http.ResponseWriter, r *http.Request) {
	var req ProposeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s := p.lookup(req.Session)
	if s == nil {
		writeWireError(w, http.StatusNotFound, ErrCodeUnknownSession, "unknown session (peer restarted?)")
		return
	}
	s.mu.Lock()
	resp := ProposeResponse{Digest: s.lp.Digest()}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// wireBudget rebuilds the coordinator's remaining solver budget.
func wireBudget(millis, conflicts, propagations int64) muppet.Budget {
	b := muppet.Budget{MaxConflicts: conflicts, MaxPropagations: propagations}
	if millis > 0 {
		b.Deadline = time.Now().Add(time.Duration(millis) * time.Millisecond)
	}
	return b
}

func (p *Peer) serveEnvelope(w http.ResponseWriter, r *http.Request) {
	var req EnvelopeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s := p.lookup(req.Session)
	if s == nil {
		writeWireError(w, http.StatusNotFound, ErrCodeUnknownSession, "unknown session (peer restarted?)")
		return
	}
	if req.Env == nil {
		writeWireError(w, http.StatusBadRequest, ErrCodeUsage, "missing envelope")
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.replay[req.Idem]; ok && req.Idem != "" {
		// A retried round: the offer was already applied (at most once);
		// return the recorded counter-offer without re-solving.
		p.hooks.replay()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Fed-Replay", "1")
		w.Write(prev)
		return
	}

	env, err := p.vocab.DecodeEnvelope(req.Env)
	if err != nil {
		writeWireError(w, http.StatusBadRequest, ErrCodeUsage, err.Error())
		return
	}
	others := make([]*muppet.Party, 0, len(req.Others))
	for _, o := range req.Others {
		op, err := RebuildParty(p.sys, o)
		if err != nil {
			writeWireError(w, http.StatusBadRequest, ErrCodeUsage, err.Error())
			return
		}
		others = append(others, op)
	}

	p.hooks.round()
	co := p.counterOffer(r.Context(), s, env, others,
		wireBudget(req.BudgetMillis, req.MaxConflicts, req.MaxPropagations))

	// Indeterminate results made no state change and may be artifacts of
	// a dropped connection (the solve was cancelled mid-flight); never
	// record them, so a retry re-runs the round.
	if req.Idem != "" && co.Result != ResultIndeterminate {
		// Record the exact bytes writeJSON sends (Encoder appends \n) so a
		// replay is byte-identical to the first delivery.
		if raw, err := json.Marshal(co); err == nil {
			s.replay[req.Idem] = append(raw, '\n')
		}
	}
	writeJSON(w, co)
}

// counterOffer runs the acting party's half of one negotiation round,
// mirroring the revision arm of Negotiation.RunCtx exactly.
func (p *Peer) counterOffer(ctx context.Context, s *fedSession, env *muppet.Envelope, others []*muppet.Party, b muppet.Budget) CounterOffer {
	if ok, _ := muppet.CheckCandidate(p.sys, s.lp.P, env, true, others...); ok {
		return CounterOffer{Result: ResultConformed}
	}
	constraints := append([]relational.Formula{env.Formula()}, s.lp.P.GoalFormulas()...)
	revision := s.cache.MinimalEditCtx(ctx, p.sys, s.lp.P, constraints, b, others...)
	if revision.Indeterminate {
		return CounterOffer{Result: ResultIndeterminate, Stop: int(revision.Stop)}
	}
	if !revision.OK {
		var core []string
		if revision.Feedback != nil {
			core = revision.Feedback.Core
		}
		return CounterOffer{Result: ResultStuck, Feedback: core}
	}
	s.lp.P.Adopt(revision.Instance)
	snap := s.lp.Snapshot()
	return CounterOffer{Result: ResultRevised, Offer: &snap, Edits: EncodeEdits(revision.Edits)}
}

func (p *Peer) serveInstall(w http.ResponseWriter, r *http.Request) {
	var req InstallRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s := p.lookup(req.Session)
	if s == nil {
		writeWireError(w, http.StatusNotFound, ErrCodeUnknownSession, "unknown session (peer restarted?)")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.replay[req.Idem]; ok && req.Idem != "" {
		p.hooks.replay()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Fed-Replay", "1")
		w.Write(prev)
		return
	}
	if err := s.lp.Install(req.Offer); err != nil {
		writeWireError(w, http.StatusBadRequest, ErrCodeUsage, err.Error())
		return
	}
	resp := InstallResponse{Digest: s.lp.Digest()}
	if req.Idem != "" {
		if raw, err := json.Marshal(resp); err == nil {
			s.replay[req.Idem] = append(raw, '\n')
		}
	}
	writeJSON(w, resp)
}

func (p *Peer) serveDescribe(w http.ResponseWriter, r *http.Request) {
	var req DescribeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s := p.lookup(req.Session)
	if s == nil {
		writeWireError(w, http.StatusNotFound, ErrCodeUnknownSession, "unknown session (peer restarted?)")
		return
	}
	s.mu.Lock()
	resp := DescribeResponse{Text: s.lp.P.Describe()}
	s.mu.Unlock()
	writeJSON(w, resp)
}
