package feder

import (
	"fmt"
	"reflect"

	"muppet"
	"muppet/internal/mesh"
)

// Offer kinds and modes as they travel on the wire.
const (
	KindK8s   = "k8s"
	KindIstio = "istio"
)

// OfferMode names an offer for the wire. Only the three canonical modes
// (fixed, soft, holes) cross trust domains; a bespoke knob list would
// leak which specific settings a party is willing to move.
func OfferMode(o muppet.Offer) (string, error) {
	switch {
	case len(o.Holes) == 0 && len(o.Soft) == 0:
		return "fixed", nil
	case reflect.DeepEqual(o, muppet.AllSoft()):
		return "soft", nil
	case reflect.DeepEqual(o, muppet.AllHoles()):
		return "holes", nil
	}
	return "", fmt.Errorf("feder: offer is not one of the wire modes (fixed, soft, holes)")
}

// ParseMode is the inverse of OfferMode.
func ParseMode(mode string) (muppet.Offer, error) {
	switch mode {
	case "", "fixed":
		return muppet.Offer{}, nil
	case "soft":
		return muppet.AllSoft(), nil
	case "holes":
		return muppet.AllHoles(), nil
	}
	return muppet.Offer{}, fmt.Errorf("feder: unknown offer mode %q", mode)
}

// LocalParty wraps one negotiating party together with the mutable state
// its offers snapshot from and install into. The coordinator holds one
// per participant (its local replicas); each peer mediator holds one for
// its own private party.
type LocalParty struct {
	P    *muppet.Party
	kind string
	mode string

	k8s   *muppet.K8sPartyState
	istio *muppet.IstioPartyState
}

// NewLocalK8s builds a Kubernetes-side LocalParty. A non-empty name
// overrides the default party name (for multi-shell setups such as a
// separate security-operations party).
func NewLocalK8s(sys *muppet.System, cfg *muppet.K8sConfig, offer muppet.Offer, rows []muppet.K8sGoal, name string) (*LocalParty, error) {
	mode, err := OfferMode(offer)
	if err != nil {
		return nil, err
	}
	p, st, err := muppet.NewK8sParty(sys, cfg, offer, rows)
	if err != nil {
		return nil, err
	}
	if name != "" {
		p.Name = name
	}
	return &LocalParty{P: p, kind: KindK8s, mode: mode, k8s: st}, nil
}

// NewLocalIstio builds an Istio-side LocalParty.
func NewLocalIstio(sys *muppet.System, cfg *muppet.IstioConfig, offer muppet.Offer, rows []muppet.IstioGoal, name string) (*LocalParty, error) {
	mode, err := OfferMode(offer)
	if err != nil {
		return nil, err
	}
	p, st, err := muppet.NewIstioParty(sys, cfg, offer, rows)
	if err != nil {
		return nil, err
	}
	if name != "" {
		p.Name = name
	}
	return &LocalParty{P: p, kind: KindIstio, mode: mode, istio: st}, nil
}

// Kind reports which configuration domain the party owns.
func (lp *LocalParty) Kind() string { return lp.kind }

// Mode reports the party's wire offer mode.
func (lp *LocalParty) Mode() string { return lp.mode }

// Snapshot captures the party's current configuration as a wire offer.
func (lp *LocalParty) Snapshot() WireOffer {
	o := WireOffer{Party: lp.P.Name, Kind: lp.kind, Mode: lp.mode}
	switch lp.kind {
	case KindK8s:
		o.K8s = mesh.CloneK8s(lp.k8s.Config)
	case KindIstio:
		o.Istio = mesh.CloneIstio(lp.istio.Config)
		if lp.istio.Exposure != nil {
			o.HasExposure = true
			o.Exposure = cloneExposure(lp.istio.Exposure)
		}
	}
	return o
}

// Install replaces the party's concrete configuration from a wire offer
// (counter-offer application at the coordinator, resynchronization or
// final delivery at a peer). The party's goals and offer mode are
// untouched: only configuration crosses trust domains.
func (lp *LocalParty) Install(o WireOffer) error {
	if o.Kind != lp.kind {
		return fmt.Errorf("feder: offer kind %q does not match party kind %q", o.Kind, lp.kind)
	}
	switch lp.kind {
	case KindK8s:
		cfg := o.K8s
		if cfg == nil {
			cfg = &mesh.K8sConfig{}
		}
		lp.k8s.Config = mesh.CloneK8s(cfg)
	case KindIstio:
		cfg := o.Istio
		if cfg == nil {
			cfg = &mesh.IstioConfig{}
		}
		lp.istio.Config = mesh.CloneIstio(cfg)
		if o.HasExposure {
			lp.istio.Exposure = cloneExposure(o.Exposure)
		} else {
			lp.istio.Exposure = nil
		}
	}
	return nil
}

// Digest is the content hash of the party's current offer.
func (lp *LocalParty) Digest() string { return lp.Snapshot().Digest() }

// RebuildParty materializes a goalless Party from a wire offer: the
// acting peer's view of the other administrators. Their configurations
// and negotiable modes are public (they are exactly what the offer
// published); their goals never leave their own mediators.
func RebuildParty(sys *muppet.System, o WireOffer) (*muppet.Party, error) {
	offer, err := ParseMode(o.Mode)
	if err != nil {
		return nil, err
	}
	switch o.Kind {
	case KindK8s:
		lp, err := NewLocalK8s(sys, orEmptyK8s(o.K8s), offer, nil, o.Party)
		if err != nil {
			return nil, err
		}
		return lp.P, nil
	case KindIstio:
		lp, err := NewLocalIstio(sys, orEmptyIstio(o.Istio), offer, nil, o.Party)
		if err != nil {
			return nil, err
		}
		if o.HasExposure {
			lp.istio.Exposure = cloneExposure(o.Exposure)
		}
		return lp.P, nil
	}
	return nil, fmt.Errorf("feder: unknown party kind %q", o.Kind)
}

func orEmptyK8s(c *mesh.K8sConfig) *mesh.K8sConfig {
	if c == nil {
		return &mesh.K8sConfig{}
	}
	return c
}

func orEmptyIstio(c *mesh.IstioConfig) *mesh.IstioConfig {
	if c == nil {
		return &mesh.IstioConfig{}
	}
	return c
}

func cloneExposure(m map[string][]int) map[string][]int {
	if m == nil {
		return nil
	}
	cp := make(map[string][]int, len(m))
	for k, v := range m {
		cp[k] = append([]int(nil), v...)
	}
	return cp
}
