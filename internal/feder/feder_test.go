// Integration and chaos tests for the federated negotiation protocol:
// loopback peers served over real HTTP, a coordinator mirroring the
// single-process loop, deterministic fault injection, peer restarts, and
// breaker behaviour against a dead peer. External test package so it can
// drive the server-layer state loader without an import cycle.
package feder_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"muppet"
	"muppet/internal/faultinject"
	"muppet/internal/feder"
	"muppet/internal/server"
)

const fig1Dir = "../../testdata/fig1/"

// fedConfig builds the walkthrough bundle config. "relaxed" reconciles on
// the initial joint solve (exercising join + final install); "strict"
// (fixed K8s offer, conflicting Istio goals) runs a deterministic 4-round
// trace — two K8s revisions, two Istio stucks — ending exhausted-rounds,
// exercising propose/envelope/counter-offer traffic.
func fedConfig(strict bool) server.Config {
	cfg := server.Config{
		Files: fig1Dir + "mesh.yaml," + fig1Dir + "k8s_current.yaml," + fig1Dir + "istio_current.yaml",

		K8sGoals:   fig1Dir + "k8s_goals.csv",
		K8sOffer:   "soft",
		IstioGoals: fig1Dir + "istio_goals_revised.csv",
		IstioOffer: "soft",
	}
	if strict {
		cfg.K8sOffer = "fixed"
		cfg.IstioGoals = fig1Dir + "istio_goals.csv"
	}
	return cfg
}

func fedState(t *testing.T, strict bool) *server.State {
	t.Helper()
	st, err := server.Load(fedConfig(strict))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// startPeer serves one party's side of the protocol over loopback HTTP.
// wrap (optional) interposes middleware — fault injection — around the
// peer handler.
func startPeer(t *testing.T, st *server.State, kind string, hooks feder.PeerHooks, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	peer := feder.NewPeer(st.Sys, func() (*feder.LocalParty, error) { return st.FedParty(kind) }, hooks)
	var h http.Handler = peer.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// fastOpts keeps retry/breaker machinery on but makes its delays test-
// sized. TotalTimeout is a hang guard, far above any real run.
func fastOpts() feder.Options {
	return feder.Options{
		Retries:          4,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		BreakerThreshold: 6,
		BreakerCooldown:  20 * time.Millisecond,
		TotalTimeout:     2 * time.Minute,
		Seed:             7,
	}
}

func newCoordinator(t *testing.T, st *server.State, k8sURL, istioURL string, opts feder.Options) (*feder.Coordinator, []*feder.LocalParty) {
	t.Helper()
	replicas, err := st.FedReplicas()
	if err != nil {
		t.Fatal(err)
	}
	co, err := feder.NewCoordinator(st.Sys, replicas, []feder.PeerRef{
		{Name: "k8s", URL: k8sURL},
		{Name: "istio", URL: istioURL},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return co, replicas
}

// singleProcess runs the in-process Fig. 9 loop on a fresh state and
// returns its outcome plus the parties' final configurations.
func singleProcess(t *testing.T, strict bool) (*muppet.NegotiationOutcome, string, string) {
	t.Helper()
	st := fedState(t, strict)
	k8s, istio, err := st.FreshParties()
	if err != nil {
		t.Fatal(err)
	}
	out := muppet.NewNegotiation(st.Sys, k8s, istio).Run()
	return out, k8s.Describe(), istio.Describe()
}

// requireParity asserts a federated outcome matches the single-process
// baseline round for round.
func requireParity(t *testing.T, fed *feder.Outcome, base *muppet.NegotiationOutcome) {
	t.Helper()
	if fed.Reconciled != base.Reconciled || fed.InitialReconcile != base.InitialReconcile {
		t.Fatalf("reconciled %v/%v, single-process %v/%v",
			fed.Reconciled, fed.InitialReconcile, base.Reconciled, base.InitialReconcile)
	}
	if fed.Reason.String() != base.Reason.String() {
		t.Fatalf("reason %q, single-process %q", fed.Reason, base.Reason)
	}
	if len(fed.Rounds) != len(base.Rounds) {
		t.Fatalf("%d rounds, single-process %d", len(fed.Rounds), len(base.Rounds))
	}
	for i, fr := range fed.Rounds {
		br := base.Rounds[i]
		if fr.Party != br.Party || fr.ConformedAlready != br.ConformedAlready ||
			fr.Revised != br.Revised || fr.Stuck != br.Stuck ||
			fr.Reconciled != br.Reconciled || len(fr.Edits) != len(br.Edits) {
			t.Fatalf("round %d diverged: federated %+v, single-process party=%s conformed=%v revised=%v stuck=%v rec=%v edits=%d",
				i+1, fr, br.Party, br.ConformedAlready, br.Revised, br.Stuck, br.Reconciled, len(br.Edits))
		}
	}
}

// peerDescribe fetches the peer's rendered configuration for a session.
func peerDescribe(t *testing.T, url, session string) string {
	t.Helper()
	body, _ := json.Marshal(feder.DescribeRequest{Session: session})
	resp, err := http.Post(url+"/fed/describe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("describe: status %d", resp.StatusCode)
	}
	var dr feder.DescribeResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	return dr.Text
}

// TestFederatedMatchesSingleProcess is the loopback parity check: the
// coordinator over two HTTP peers must replay the single-process
// negotiation exactly — same outcome, same rounds, same final configs on
// replicas and peers — and leave a verifiable transcript.
func TestFederatedMatchesSingleProcess(t *testing.T) {
	for _, tc := range []struct {
		name   string
		strict bool
	}{
		{"relaxed", false},
		{"strict", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base, baseK8s, baseIstio := singleProcess(t, tc.strict)

			k8sSrv := startPeer(t, fedState(t, tc.strict), "k8s", feder.PeerHooks{}, nil)
			istioSrv := startPeer(t, fedState(t, tc.strict), "istio", feder.PeerHooks{}, nil)

			key := []byte("parity-key")
			var transcript bytes.Buffer
			opts := fastOpts()
			opts.Transcript = feder.NewTranscriptWriter(&transcript, key)
			co, replicas := newCoordinator(t, fedState(t, tc.strict), k8sSrv.URL, istioSrv.URL, opts)

			fed := co.Run(context.Background(), muppet.Budget{})
			requireParity(t, fed, base)
			if got := replicas[0].P.Describe(); got != baseK8s {
				t.Fatalf("K8s replica diverged:\n--- federated ---\n%s\n--- single-process ---\n%s", got, baseK8s)
			}
			if got := replicas[1].P.Describe(); got != baseIstio {
				t.Fatalf("Istio replica diverged:\n--- federated ---\n%s\n--- single-process ---\n%s", got, baseIstio)
			}
			// The peers' own parties must hold the same configurations the
			// replicas do — no torn state across trust domains.
			if got := peerDescribe(t, k8sSrv.URL, co.Session()); got != baseK8s {
				t.Fatalf("K8s peer holds a different configuration:\n%s", got)
			}
			if got := peerDescribe(t, istioSrv.URL, co.Session()); got != baseIstio {
				t.Fatalf("Istio peer holds a different configuration:\n%s", got)
			}
			n, err := feder.VerifyTranscript(bytes.NewReader(transcript.Bytes()), key)
			if err != nil {
				t.Fatalf("transcript: %v", err)
			}
			if n == 0 {
				t.Fatal("empty transcript")
			}
			if st := co.Stats(); st.Breakers["K8s"] != feder.BreakerClosed || st.Breakers["Istio"] != feder.BreakerClosed {
				t.Fatalf("healthy run left breakers %v", st.Breakers)
			}
		})
	}
}

// TestFederatedChaos injects every fault class (and a mix) into both
// peers and requires convergence-or-typed-degradation: either the outcome
// matches the no-fault baseline exactly, or it is a typed peer-
// unreachable report with the failing peer named — never a hang, a torn
// replica, or an untyped error. The transcript must verify either way.
func TestFederatedChaos(t *testing.T) {
	base, baseK8s, baseIstio := singleProcess(t, true)

	// Seeds 24 and 21 are chosen so every class below fires at p=0.4
	// within each peer's first 8 requests — the chaos is deterministic
	// AND guaranteed to actually bite (asserted via retry counters).
	for _, tc := range []struct {
		name string
		spec string
		// expectRetries: the class surfaces as a retryable failure, so a
		// surviving run must show at least one retry.
		expectRetries bool
	}{
		{"latency", "latency=2ms:0.4", false},
		{"error", "error=0.4", true},
		{"unavail", "unavail=0.4:0", true},
		{"drop", "drop=0.4", true},
		{"slow", "slow=0.4", false},
		{"mix", "latency=1ms:0.4,error=0.4,unavail=0.4:0,drop=0.4,slow=0.4", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := faultinject.Parse(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			wrap := func(seed int64) func(http.Handler) http.Handler {
				return func(h http.Handler) http.Handler { return spec.Middleware(seed, h) }
			}
			k8sSrv := startPeer(t, fedState(t, true), "k8s", feder.PeerHooks{}, wrap(24))
			istioSrv := startPeer(t, fedState(t, true), "istio", feder.PeerHooks{}, wrap(21))

			key := []byte("chaos-key")
			var transcript bytes.Buffer
			opts := fastOpts()
			opts.Transcript = feder.NewTranscriptWriter(&transcript, key)
			co, replicas := newCoordinator(t, fedState(t, true), k8sSrv.URL, istioSrv.URL, opts)

			fed := co.Run(context.Background(), muppet.Budget{})
			switch fed.Reason {
			case feder.FedPeerUnreachable:
				// Typed degradation: the failing peer is named, the error
				// typed, and the best-so-far state intact.
				if fed.FailedPeer == "" || fed.PeerErr == nil {
					t.Fatalf("unreachable outcome without peer attribution: %+v", fed)
				}
				if len(fed.Rounds) > len(base.Rounds) {
					t.Fatalf("degraded run invented rounds: %d > %d", len(fed.Rounds), len(base.Rounds))
				}
				if replicas[0].P.Describe() == "" || replicas[1].P.Describe() == "" {
					t.Fatal("torn replica state after degradation")
				}
			default:
				// The run survived the faults: it must match the baseline
				// exactly — retries may cost wall-clock, never correctness.
				requireParity(t, fed, base)
				if got := replicas[0].P.Describe(); got != baseK8s {
					t.Fatalf("K8s replica diverged under faults:\n%s", got)
				}
				if got := replicas[1].P.Describe(); got != baseIstio {
					t.Fatalf("Istio replica diverged under faults:\n%s", got)
				}
				if tc.expectRetries {
					total := int64(0)
					for _, n := range co.Stats().Retries {
						total += n
					}
					if total == 0 {
						t.Fatal("fault class never fired: the chaos exercised nothing")
					}
				}
			}
			if _, err := feder.VerifyTranscript(bytes.NewReader(transcript.Bytes()), key); err != nil {
				t.Fatalf("transcript after %s faults: %v", tc.name, err)
			}
			t.Logf("%s: reason=%s rounds=%d retries=%v", tc.name, fed.Reason, len(fed.Rounds), co.Stats().Retries)
		})
	}
}

// swapHandler lets a test replace a live server's handler, simulating a
// peer process dying and a fresh one binding the same address.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// TestFederatedPeerRestart kills the K8s peer after it serves its first
// envelope round — replacing it with a fresh daemon holding the original
// (pre-negotiation) bundle and no session state — and requires the
// coordinator to heal (rejoin, resynchronize the replica's configuration)
// and finish with the exact baseline outcome.
func TestFederatedPeerRestart(t *testing.T) {
	base, baseK8s, baseIstio := singleProcess(t, true)
	if len(base.Rounds) < 3 {
		t.Fatalf("restart test needs a multi-round baseline, got %d rounds", len(base.Rounds))
	}

	newK8sPeer := func(hooks feder.PeerHooks) http.Handler {
		st := fedState(t, true)
		return feder.NewPeer(st.Sys, func() (*feder.LocalParty, error) { return st.FedParty("k8s") }, hooks).Handler()
	}

	sw := &swapHandler{}
	var restartOnce sync.Once
	restarted := false
	// The first peer incarnation kills itself after serving one envelope
	// round; the replacement is a cold daemon: fresh party, no sessions.
	sw.swap(newK8sPeer(feder.PeerHooks{OnRound: func() {
		restartOnce.Do(func() {
			restarted = true
			sw.swap(newK8sPeer(feder.PeerHooks{}))
		})
	}}))
	k8sSrv := httptest.NewServer(sw)
	defer k8sSrv.Close()
	istioSrv := startPeer(t, fedState(t, true), "istio", feder.PeerHooks{}, nil)

	key := []byte("restart-key")
	var transcript bytes.Buffer
	opts := fastOpts()
	opts.Transcript = feder.NewTranscriptWriter(&transcript, key)
	co, replicas := newCoordinator(t, fedState(t, true), k8sSrv.URL, istioSrv.URL, opts)

	fed := co.Run(context.Background(), muppet.Budget{})
	if !restarted {
		t.Fatal("the K8s peer never restarted; the test exercised nothing")
	}
	requireParity(t, fed, base)
	if got := replicas[0].P.Describe(); got != baseK8s {
		t.Fatalf("K8s replica diverged across the restart:\n%s", got)
	}
	if got := replicas[1].P.Describe(); got != baseIstio {
		t.Fatalf("Istio replica diverged across the restart:\n%s", got)
	}
	// The restarted peer was resynchronized from the replica: its party
	// must hold the replica's (revised) configuration, not its cold one.
	if got := peerDescribe(t, k8sSrv.URL, co.Session()); got != baseK8s {
		t.Fatalf("restarted peer was not resynchronized:\n%s", got)
	}
	if _, err := feder.VerifyTranscript(bytes.NewReader(transcript.Bytes()), key); err != nil {
		t.Fatalf("transcript across restart: %v", err)
	}
}

// TestFederatedDeadPeerOpensBreaker points the coordinator at a peer that
// only ever returns 500: the run must degrade to a typed peer-unreachable
// outcome after exactly retries+1 attempts, with the breaker open and the
// healthy peer's replica untouched.
func TestFederatedDeadPeerOpensBreaker(t *testing.T) {
	var calls int
	var mu sync.Mutex
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"dead","code":"internal"}`))
	}))
	defer dead.Close()
	k8sSrv := startPeer(t, fedState(t, true), "k8s", feder.PeerHooks{}, nil)

	opts := fastOpts()
	opts.Retries = 2
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = time.Hour // keep the breaker visibly open
	co, _ := newCoordinator(t, fedState(t, true), k8sSrv.URL, dead.URL, opts)

	fed := co.Run(context.Background(), muppet.Budget{})
	if fed.Reason != feder.FedPeerUnreachable {
		t.Fatalf("reason %v, want peer-unreachable", fed.Reason)
	}
	if fed.FailedPeer != "Istio" {
		t.Fatalf("failed peer %q, want Istio", fed.FailedPeer)
	}
	var pe *feder.PeerError
	if !errors.As(fed.PeerErr, &pe) || pe.Status != http.StatusInternalServerError {
		t.Fatalf("peer error %v, want a typed 500 PeerError", fed.PeerErr)
	}
	st := co.Stats()
	if st.Breakers["Istio"] != feder.BreakerOpen {
		t.Fatalf("Istio breaker %v, want open", st.Breakers["Istio"])
	}
	if st.Breakers["K8s"] != feder.BreakerClosed {
		t.Fatalf("K8s breaker %v, want closed", st.Breakers["K8s"])
	}
	if st.Retries["Istio"] != 2 {
		t.Fatalf("Istio retries %d, want 2", st.Retries["Istio"])
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 {
		t.Fatalf("dead peer saw %d calls, want retries+1 = 3", calls)
	}
}

// TestFederatedIdempotentReplay posts the same envelope request twice
// with one idempotency key: the second response must be served from the
// replay log (marked X-Fed-Replay) byte-identical to the first, without
// re-running the solver or re-applying the revision.
func TestFederatedIdempotentReplay(t *testing.T) {
	st := fedState(t, true)
	var rounds, replays int
	srv := startPeer(t, st, "k8s", feder.PeerHooks{
		OnRound:  func() { rounds++ },
		OnReplay: func() { replays++ },
	}, nil)

	post := func(op string, body any) (*http.Response, []byte) {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+"/fed/"+op, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := post("join", feder.JoinRequest{
		Session:     "replay-test",
		Coordinator: "test",
		Fingerprint: feder.SystemFingerprint(st.Sys),
		Rounds:      4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %s", resp.StatusCode, body)
	}

	// The round-1 envelope the coordinator would send: Istio's obligations
	// merged for the K8s party.
	k8s, istio, err := st.FreshParties()
	if err != nil {
		t.Fatal(err)
	}
	env, err := muppet.ComputeEnvelopeCtx(context.Background(), st.Sys, k8s, []*muppet.Party{istio})
	if err != nil {
		t.Fatal(err)
	}
	wenv, err := feder.NewVocab(st.Sys).EncodeEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	istioLP, err := st.FedParty("istio")
	if err != nil {
		t.Fatal(err)
	}
	req := feder.EnvelopeRequest{
		Session: "replay-test",
		Round:   1,
		Idem:    "replay-test/env/1",
		Env:     wenv,
		Others:  []feder.WireOffer{istioLP.Snapshot()},
	}

	first, firstBody := post("envelope", req)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("envelope: %d %s", first.StatusCode, firstBody)
	}
	if first.Header.Get("X-Fed-Replay") != "" {
		t.Fatal("first delivery marked as a replay")
	}
	second, secondBody := post("envelope", req)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("replayed envelope: %d %s", second.StatusCode, secondBody)
	}
	if second.Header.Get("X-Fed-Replay") != "1" {
		t.Fatal("second delivery not marked X-Fed-Replay")
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatalf("replay is not byte-identical:\n1st %s\n2nd %s", firstBody, secondBody)
	}
	if rounds != 1 {
		t.Fatalf("solver ran %d rounds for one idempotency key, want 1", rounds)
	}
	if replays != 1 {
		t.Fatalf("replay hook fired %d times, want 1", replays)
	}

	var co feder.CounterOffer
	if err := json.Unmarshal(firstBody, &co); err != nil {
		t.Fatal(err)
	}
	if co.Result == "" || !strings.Contains(feder.ResultConformed+feder.ResultRevised+feder.ResultStuck, co.Result) {
		t.Fatalf("unexpected counter-offer result %q", co.Result)
	}
}
