package feder

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// TranscriptEntry is one line of the negotiation audit log. Entries are
// HMAC-chained: MAC_i = HMAC(key, MAC_{i-1} ‖ canonical-JSON(entry
// without mac)), so truncation, reordering, and tampering are all
// detectable offline with the shared key.
type TranscriptEntry struct {
	Seq     int             `json:"seq"`
	Kind    string          `json:"kind"`            // join, propose, envelope, counter, install, outcome
	Peer    string          `json:"peer,omitempty"`  // party the entry concerns
	Round   int             `json:"round,omitempty"` // negotiation round, when applicable
	Payload json.RawMessage `json:"payload,omitempty"`
	MAC     string          `json:"mac"`
}

// chainMAC computes the entry's MAC from the previous one.
func chainMAC(key, prev []byte, entry TranscriptEntry) (string, error) {
	entry.MAC = ""
	body, err := json.Marshal(entry)
	if err != nil {
		return "", err
	}
	m := hmac.New(sha256.New, key)
	m.Write(prev)
	m.Write(body)
	return hex.EncodeToString(m.Sum(nil)), nil
}

// TranscriptWriter appends HMAC-chained entries to a stream. Not
// goroutine-safe; the coordinator drives it from one goroutine.
type TranscriptWriter struct {
	w    io.Writer
	key  []byte
	prev []byte
	seq  int
}

// NewTranscriptWriter starts a chain over w with the shared key.
func NewTranscriptWriter(w io.Writer, key []byte) *TranscriptWriter {
	return &TranscriptWriter{w: w, key: key}
}

// Append writes one entry, computing its sequence number and chain MAC.
// payload must be JSON-marshalable (nil for payload-free entries).
func (t *TranscriptWriter) Append(kind, peer string, round int, payload any) error {
	t.seq++
	entry := TranscriptEntry{Seq: t.seq, Kind: kind, Peer: peer, Round: round}
	if payload != nil {
		raw, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("feder: transcript payload: %w", err)
		}
		entry.Payload = raw
	}
	mac, err := chainMAC(t.key, t.prev, entry)
	if err != nil {
		return fmt.Errorf("feder: transcript mac: %w", err)
	}
	entry.MAC = mac
	line, err := json.Marshal(entry)
	if err != nil {
		return fmt.Errorf("feder: transcript entry: %w", err)
	}
	if _, err := t.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("feder: transcript write: %w", err)
	}
	t.prev, err = hex.DecodeString(mac)
	if err != nil {
		return err
	}
	return nil
}

// VerifyTranscript re-walks a transcript stream, recomputing the MAC
// chain with the shared key. It returns the number of valid entries and
// an error naming the first line that fails (bad MAC, gap in the
// sequence, malformed JSON). An empty stream verifies as 0 entries.
func VerifyTranscript(r io.Reader, key []byte) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var prev []byte
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var entry TranscriptEntry
		if err := json.Unmarshal(line, &entry); err != nil {
			return n, fmt.Errorf("transcript entry %d: malformed JSON: %w", n+1, err)
		}
		if entry.Seq != n+1 {
			return n, fmt.Errorf("transcript entry %d: sequence gap (got seq %d)", n+1, entry.Seq)
		}
		want, err := chainMAC(key, prev, entry)
		if err != nil {
			return n, err
		}
		if !hmac.Equal([]byte(want), []byte(entry.MAC)) {
			return n, fmt.Errorf("transcript entry %d: MAC mismatch (tampered, truncated upstream, or wrong key)", entry.Seq)
		}
		prev, err = hex.DecodeString(entry.MAC)
		if err != nil {
			return n, fmt.Errorf("transcript entry %d: malformed MAC: %w", entry.Seq, err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
