// Package feder turns the single-process Fig. 9 negotiation loop into a
// fault-tolerant mediator-to-mediator protocol. Each party runs its own
// muppetd holding only its private bundle; a coordinator (the paper's
// trusted mediator) drives propose → envelope → counter-offer rounds over
// HTTP, exchanging envelopes (Alg. 3's necessary-and-sufficient interface
// predicate) and configuration offers — never goals — between parties.
//
// The coordinator mirrors muppet.Negotiation.RunCtx exactly: the merged
// envelope is computed by the same ComputeEnvelopeCtx code path, the
// acting party's minimal-edit revision runs remotely on its own daemon,
// and the joint reconcile runs at the mediator. Because every solver call
// sees a structurally identical problem, a federated run over loopback
// daemons produces a byte-identical final agreement and round count to
// the single-process Negotiation on the same bundle split (enforced by
// the repository's crosscheck suite).
//
// Robustness: per-round and whole-negotiation deadlines layered on
// sat.Budget, idempotency keys so a retried offer applies at most once,
// exponential backoff with jitter honoring Retry-After, a per-peer
// circuit breaker, typed degradation outcomes that report the best
// partial agreement instead of tearing, and an append-only HMAC-signed
// transcript of every round, verifiable offline.
package feder

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"muppet"
	"muppet/internal/mesh"
	"muppet/internal/relational"
)

// Node is one vertex of a serialized relational formula or expression.
// The codec is purely structural: decoding a Node against the same
// System yields a formula structurally identical to the encoded one, so
// translation caches, CNF, and solver verdicts are unchanged by a trip
// over the wire.
type Node struct {
	K  string     `json:"k"`            // node kind (see encode/decode)
	B  bool       `json:"b,omitempty"`  // const value / in-vs-eq / forall-vs-exists
	Op string     `json:"op,omitempty"` // nary, binary, or multiplicity operator
	S  string     `json:"s,omitempty"`  // relation name or variable display name
	V  int        `json:"v,omitempty"`  // variable binding id (per-message scope)
	A  int        `json:"a,omitempty"`  // const-expr arity (tuple sets may be empty)
	TS [][]string `json:"ts,omitempty"` // const-expr tuples as atom-name rows
	D  []*Node    `json:"d,omitempty"`  // quantifier/comprehension declarations
	C  []*Node    `json:"c,omitempty"`  // child formulas/expressions
}

// Vocab resolves relation names and universe atoms when decoding wire
// formulas. Both sides of a federated negotiation must build it from
// equivalent Systems; SystemFingerprint detects drift.
type Vocab struct {
	u    *relational.Universe
	rels map[string]*relational.Relation
}

// NewVocab indexes the System's singleton relations by name.
func NewVocab(sys *muppet.System) *Vocab {
	v := &Vocab{u: sys.Universe, rels: make(map[string]*relational.Relation)}
	for _, r := range systemRelations(sys) {
		v.rels[r.Name()] = r
	}
	return v
}

// systemRelations lists every relation a System formula can mention.
func systemRelations(sys *muppet.System) []*relational.Relation {
	return []*relational.Relation{
		sys.Service, sys.Port, sys.NetPol, sys.AuthPol, sys.NetSel,
		sys.AuthTarget, sys.ActivePorts,
		sys.KInDeny, sys.KInAllow, sys.KEgDeny, sys.KEgAllow,
		sys.IDenyTo, sys.IAllowTo, sys.IDenyFrom, sys.IAllowFrom,
	}
}

// SystemFingerprint digests the shared vocabulary — universe atoms plus
// relation names and arities — so a coordinator and a peer built from
// drifted bundles (different port inventory, renamed services, extra
// policy shells) fail fast at session setup instead of diverging
// mid-negotiation.
func SystemFingerprint(sys *muppet.System) string {
	h := sha256.New()
	for _, a := range sys.Universe.Atoms() {
		fmt.Fprintf(h, "atom %s\n", a)
	}
	for _, r := range systemRelations(sys) {
		fmt.Fprintf(h, "rel %s/%d\n", r.Name(), r.Arity())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// encoder assigns stable per-message ids to bound variables.
type encoder struct {
	u    *relational.Universe
	vars map[*relational.Var]int
}

// EncodeFormulas serializes formulas for the wire. Variable identity is
// preserved per call: all formulas in one call share one id scope.
func (v *Vocab) EncodeFormulas(fs []relational.Formula) ([]*Node, error) {
	e := &encoder{u: v.u, vars: make(map[*relational.Var]int)}
	out := make([]*Node, len(fs))
	for i, f := range fs {
		n, err := e.formula(f)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

func (e *encoder) formula(f relational.Formula) (*Node, error) {
	switch t := f.(type) {
	case *relational.ConstFormula:
		return &Node{K: "cf", B: t.Value()}, nil
	case *relational.CompFormula:
		l, err := e.expr(t.Left())
		if err != nil {
			return nil, err
		}
		r, err := e.expr(t.Right())
		if err != nil {
			return nil, err
		}
		return &Node{K: "cmp", B: t.IsIn(), C: []*Node{l, r}}, nil
	case *relational.MultFormula:
		x, err := e.expr(t.Expr())
		if err != nil {
			return nil, err
		}
		var op string
		switch t.Mult() {
		case relational.MultSome:
			op = "some"
		case relational.MultNo:
			op = "no"
		case relational.MultOne:
			op = "one"
		case relational.MultLone:
			op = "lone"
		}
		return &Node{K: "mlt", Op: op, C: []*Node{x}}, nil
	case *relational.NotFormula:
		x, err := e.formula(t.Inner())
		if err != nil {
			return nil, err
		}
		return &Node{K: "not", C: []*Node{x}}, nil
	case *relational.NaryFormula:
		var op string
		switch t.Op() {
		case relational.OpAnd:
			op = "and"
		case relational.OpOr:
			op = "or"
		case relational.OpImplies:
			op = "implies"
		case relational.OpIff:
			op = "iff"
		}
		kids := make([]*Node, 0, len(t.Operands()))
		for _, g := range t.Operands() {
			n, err := e.formula(g)
			if err != nil {
				return nil, err
			}
			kids = append(kids, n)
		}
		return &Node{K: "nry", Op: op, C: kids}, nil
	case *relational.QuantFormula:
		ds, err := e.decls(t.Decls())
		if err != nil {
			return nil, err
		}
		body, err := e.formula(t.Body())
		if err != nil {
			return nil, err
		}
		return &Node{K: "qnt", B: t.IsForall(), D: ds, C: []*Node{body}}, nil
	}
	return nil, fmt.Errorf("feder: cannot encode formula %T", f)
}

func (e *encoder) decls(ds []relational.Decl) ([]*Node, error) {
	out := make([]*Node, len(ds))
	for i, d := range ds {
		// The declaration introduces the variable: register its id
		// before encoding the domain (which may reference outer vars).
		id, ok := e.vars[d.Var()]
		if !ok {
			id = len(e.vars) + 1
			e.vars[d.Var()] = id
		}
		dom, err := e.expr(d.Domain())
		if err != nil {
			return nil, err
		}
		out[i] = &Node{K: "dcl", V: id, S: d.Var().Name(), C: []*Node{dom}}
	}
	return out, nil
}

func (e *encoder) expr(x relational.Expr) (*Node, error) {
	switch t := x.(type) {
	case *relational.Var:
		id, ok := e.vars[t]
		if !ok {
			return nil, fmt.Errorf("feder: free variable %q in wire formula", t.Name())
		}
		return &Node{K: "var", V: id, S: t.Name()}, nil
	case *relational.Relation:
		return &Node{K: "rel", S: t.Name()}, nil
	case *relational.ConstExpr:
		ts := t.TupleSet()
		rows := make([][]string, 0, ts.Len())
		for _, tp := range ts.Tuples() {
			row := make([]string, len(tp))
			for i, idx := range tp {
				row[i] = e.u.Atom(idx)
			}
			rows = append(rows, row)
		}
		return &Node{K: "cst", A: ts.Arity(), TS: rows}, nil
	case *relational.BinExpr:
		l, err := e.expr(t.Left())
		if err != nil {
			return nil, err
		}
		r, err := e.expr(t.Right())
		if err != nil {
			return nil, err
		}
		var op string
		switch t.Op() {
		case relational.OpUnion:
			op = "+"
		case relational.OpIntersect:
			op = "&"
		case relational.OpDiff:
			op = "-"
		case relational.OpProduct:
			op = "->"
		case relational.OpJoin:
			op = "."
		}
		return &Node{K: "bin", Op: op, C: []*Node{l, r}}, nil
	case *relational.TransposeExpr:
		inner, err := e.expr(t.Inner())
		if err != nil {
			return nil, err
		}
		return &Node{K: "tsp", C: []*Node{inner}}, nil
	case *relational.ComprehensionExpr:
		ds, err := e.decls(t.Decls())
		if err != nil {
			return nil, err
		}
		body, err := e.formula(t.Body())
		if err != nil {
			return nil, err
		}
		return &Node{K: "cpr", D: ds, C: []*Node{body}}, nil
	}
	return nil, fmt.Errorf("feder: cannot encode expression %T", x)
}

// decoder rebuilds formulas through the public constructors. The
// constructors fold constants and flatten connectives, but any formula
// that was itself built through them is a fixed point of that
// simplification, so decode(encode(f)) is structurally identical to f.
type decoder struct {
	v    *Vocab
	vars map[int]*relational.Var
}

// DecodeFormulas rebuilds formulas encoded by EncodeFormulas. Malformed
// input surfaces as an error, never a panic: the relational constructors
// panic on arity violations, which decode converts to errors.
func (v *Vocab) DecodeFormulas(ns []*Node) (fs []relational.Formula, err error) {
	defer func() {
		if p := recover(); p != nil {
			fs, err = nil, fmt.Errorf("feder: malformed wire formula: %v", p)
		}
	}()
	d := &decoder{v: v, vars: make(map[int]*relational.Var)}
	fs = make([]relational.Formula, len(ns))
	for i, n := range ns {
		f, err := d.formula(n)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return fs, nil
}

func (d *decoder) formula(n *Node) (relational.Formula, error) {
	if n == nil {
		return nil, fmt.Errorf("feder: nil formula node")
	}
	switch n.K {
	case "cf":
		if n.B {
			return relational.TrueFormula(), nil
		}
		return relational.FalseFormula(), nil
	case "cmp":
		if len(n.C) != 2 {
			return nil, fmt.Errorf("feder: comparison wants 2 children, got %d", len(n.C))
		}
		l, err := d.expr(n.C[0])
		if err != nil {
			return nil, err
		}
		r, err := d.expr(n.C[1])
		if err != nil {
			return nil, err
		}
		if n.B {
			return relational.In(l, r), nil
		}
		return relational.Equals(l, r), nil
	case "mlt":
		if len(n.C) != 1 {
			return nil, fmt.Errorf("feder: multiplicity wants 1 child, got %d", len(n.C))
		}
		x, err := d.expr(n.C[0])
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "some":
			return relational.Some(x), nil
		case "no":
			return relational.No(x), nil
		case "one":
			return relational.One(x), nil
		case "lone":
			return relational.Lone(x), nil
		}
		return nil, fmt.Errorf("feder: unknown multiplicity %q", n.Op)
	case "not":
		if len(n.C) != 1 {
			return nil, fmt.Errorf("feder: negation wants 1 child, got %d", len(n.C))
		}
		x, err := d.formula(n.C[0])
		if err != nil {
			return nil, err
		}
		return relational.Not(x), nil
	case "nry":
		kids := make([]relational.Formula, len(n.C))
		for i, c := range n.C {
			f, err := d.formula(c)
			if err != nil {
				return nil, err
			}
			kids[i] = f
		}
		switch n.Op {
		case "and":
			return relational.And(kids...), nil
		case "or":
			return relational.Or(kids...), nil
		case "implies":
			if len(kids) != 2 {
				return nil, fmt.Errorf("feder: implies wants 2 operands, got %d", len(kids))
			}
			return relational.Implies(kids[0], kids[1]), nil
		case "iff":
			if len(kids) != 2 {
				return nil, fmt.Errorf("feder: iff wants 2 operands, got %d", len(kids))
			}
			return relational.Iff(kids[0], kids[1]), nil
		}
		return nil, fmt.Errorf("feder: unknown connective %q", n.Op)
	case "qnt":
		if len(n.C) != 1 {
			return nil, fmt.Errorf("feder: quantifier wants 1 body, got %d", len(n.C))
		}
		ds, err := d.decls(n.D)
		if err != nil {
			return nil, err
		}
		body, err := d.formula(n.C[0])
		if err != nil {
			return nil, err
		}
		if n.B {
			return relational.Forall(ds, body), nil
		}
		return relational.Exists(ds, body), nil
	}
	return nil, fmt.Errorf("feder: unknown formula kind %q", n.K)
}

func (d *decoder) decls(ns []*Node) ([]relational.Decl, error) {
	out := make([]relational.Decl, len(ns))
	for i, n := range ns {
		if n == nil || n.K != "dcl" || len(n.C) != 1 {
			return nil, fmt.Errorf("feder: malformed declaration node")
		}
		v, ok := d.vars[n.V]
		if !ok {
			v = relational.NewVar(n.S)
			d.vars[n.V] = v
		}
		dom, err := d.expr(n.C[0])
		if err != nil {
			return nil, err
		}
		out[i] = relational.NewDecl(v, dom)
	}
	return out, nil
}

func (d *decoder) expr(n *Node) (relational.Expr, error) {
	if n == nil {
		return nil, fmt.Errorf("feder: nil expression node")
	}
	switch n.K {
	case "var":
		v, ok := d.vars[n.V]
		if !ok {
			return nil, fmt.Errorf("feder: reference to undeclared variable %d (%s)", n.V, n.S)
		}
		return v, nil
	case "rel":
		r, ok := d.v.rels[n.S]
		if !ok {
			return nil, fmt.Errorf("feder: unknown relation %q", n.S)
		}
		return r, nil
	case "cst":
		if n.A <= 0 {
			return nil, fmt.Errorf("feder: const expression with arity %d", n.A)
		}
		ts := relational.NewTupleSet(d.v.u, n.A)
		for _, row := range n.TS {
			if len(row) != n.A {
				return nil, fmt.Errorf("feder: tuple %v does not match arity %d", row, n.A)
			}
			for _, a := range row {
				if d.v.u.Index(a) < 0 {
					return nil, fmt.Errorf("feder: unknown atom %q", a)
				}
			}
			ts.AddNames(row...)
		}
		return relational.Const(ts), nil
	case "bin":
		if len(n.C) != 2 {
			return nil, fmt.Errorf("feder: binary expression wants 2 children, got %d", len(n.C))
		}
		l, err := d.expr(n.C[0])
		if err != nil {
			return nil, err
		}
		r, err := d.expr(n.C[1])
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "+":
			return relational.Union(l, r), nil
		case "&":
			return relational.Intersect(l, r), nil
		case "-":
			return relational.Diff(l, r), nil
		case "->":
			return relational.Product(l, r), nil
		case ".":
			return relational.Join(l, r), nil
		}
		return nil, fmt.Errorf("feder: unknown binary operator %q", n.Op)
	case "tsp":
		if len(n.C) != 1 {
			return nil, fmt.Errorf("feder: transpose wants 1 child, got %d", len(n.C))
		}
		x, err := d.expr(n.C[0])
		if err != nil {
			return nil, err
		}
		return relational.Transpose(x), nil
	case "cpr":
		if len(n.C) != 1 {
			return nil, fmt.Errorf("feder: comprehension wants 1 body, got %d", len(n.C))
		}
		ds, err := d.decls(n.D)
		if err != nil {
			return nil, err
		}
		body, err := d.formula(n.C[0])
		if err != nil {
			return nil, err
		}
		return relational.Comprehension(ds, body), nil
	}
	return nil, fmt.Errorf("feder: unknown expression kind %q", n.K)
}

// WireEnvelope carries E_{senders→recipient} between mediators. Only the
// conjunction the recipient must satisfy travels; sender obligations stay
// at the mediator.
type WireEnvelope struct {
	From    string  `json:"from"`
	To      string  `json:"to"`
	Clauses []*Node `json:"clauses"`
}

// EncodeEnvelope serializes an envelope for the wire.
func (v *Vocab) EncodeEnvelope(e *muppet.Envelope) (*WireEnvelope, error) {
	cs, err := v.EncodeFormulas(e.Clauses)
	if err != nil {
		return nil, err
	}
	return &WireEnvelope{From: e.From, To: e.To, Clauses: cs}, nil
}

// DecodeEnvelope rebuilds an envelope received from the wire.
func (v *Vocab) DecodeEnvelope(w *WireEnvelope) (*muppet.Envelope, error) {
	cs, err := v.DecodeFormulas(w.Clauses)
	if err != nil {
		return nil, err
	}
	return &muppet.Envelope{From: w.From, To: w.To, Clauses: cs}, nil
}

// WireOffer is one party's configuration offer as it crosses trust
// domains: the current concrete configuration plus which knobs are
// negotiable (the offer mode) — never the party's goals.
type WireOffer struct {
	Party string `json:"party"`
	Kind  string `json:"kind"` // "k8s" or "istio"
	Mode  string `json:"mode"` // "fixed", "soft", or "holes"

	K8s   *mesh.K8sConfig   `json:"k8s,omitempty"`
	Istio *mesh.IstioConfig `json:"istio,omitempty"`

	// Exposure is the Istio side's service→ports map. Whether it is nil
	// is semantically meaningful (nil = every declared port exposed), so
	// HasExposure preserves nil-ness across JSON's omitempty.
	Exposure    map[string][]int `json:"exposure,omitempty"`
	HasExposure bool             `json:"hasExposure,omitempty"`
}

// Digest is a canonical content hash of the offer, used for cheap
// desync detection (peer restarts, lost installs) before heavy rounds.
func (o WireOffer) Digest() string {
	if o.Exposure != nil {
		// Normalize port order so semantically equal offers hash equal.
		norm := make(map[string][]int, len(o.Exposure))
		for k, ps := range o.Exposure {
			cp := append([]int(nil), ps...)
			sort.Ints(cp)
			norm[k] = cp
		}
		o.Exposure = norm
	}
	raw, err := json.Marshal(o)
	if err != nil {
		return "unmarshalable"
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// WireEdit is one minimal-edit step, flattened for the wire.
type WireEdit struct {
	Party  string `json:"party"`
	Policy string `json:"policy"`
	Field  uint8  `json:"field"`
	Key    string `json:"key"`
	Add    bool   `json:"add"`
}

// EncodeEdits flattens edits for the wire.
func EncodeEdits(es []muppet.Edit) []WireEdit {
	out := make([]WireEdit, len(es))
	for i, e := range es {
		out[i] = WireEdit{
			Party:  e.Party,
			Policy: e.Knob.Policy,
			Field:  uint8(e.Knob.Field),
			Key:    e.Knob.Key,
			Add:    e.Add,
		}
	}
	return out
}

// DecodeEdits rebuilds edits received from the wire.
func DecodeEdits(ws []WireEdit) []muppet.Edit {
	out := make([]muppet.Edit, len(ws))
	for i, w := range ws {
		out[i] = muppet.Edit{
			Party: w.Party,
			Knob:  muppet.Knob{Policy: w.Policy, Field: muppet.Field(w.Field), Key: w.Key},
			Add:   w.Add,
		}
	}
	return out
}

// --- protocol messages ------------------------------------------------

// JoinRequest opens (or reopens, after a peer restart) a negotiation
// session on a peer mediator.
type JoinRequest struct {
	Session     string `json:"session"`
	Coordinator string `json:"coordinator"`
	Fingerprint string `json:"fingerprint"` // coordinator's SystemFingerprint
	Rounds      int    `json:"rounds"`      // negotiated MaxRounds (informational)
}

// JoinResponse announces the peer's party and its current offer digest.
type JoinResponse struct {
	Party       string `json:"party"`
	Kind        string `json:"kind"`
	Mode        string `json:"mode"`
	Fingerprint string `json:"fingerprint"`
	Digest      string `json:"digest"`
}

// ProposeRequest asks the acting peer to confirm its configuration
// digest before the coordinator spends solver time on the round.
type ProposeRequest struct {
	Session string `json:"session"`
	Round   int    `json:"round"`
}

// ProposeResponse carries the peer's current offer digest.
type ProposeResponse struct {
	Digest string `json:"digest"`
}

// EnvelopeRequest delivers the merged envelope for one round and asks
// the acting party for a counter-offer. Others carries the non-acting
// parties' current offers (configurations and modes, not goals) so the
// peer's minimal-edit search sees the identical workspace the
// single-process loop would.
type EnvelopeRequest struct {
	Session string        `json:"session"`
	Round   int           `json:"round"`
	Idem    string        `json:"idem"` // idempotency key: applied at most once
	Env     *WireEnvelope `json:"env"`
	Others  []WireOffer   `json:"others"`

	// Remaining solver budget, serialized from the coordinator's
	// sat.Budget so a federated round degrades exactly like a local one.
	BudgetMillis    int64 `json:"budgetMillis,omitempty"`
	MaxConflicts    int64 `json:"maxConflicts,omitempty"`
	MaxPropagations int64 `json:"maxPropagations,omitempty"`
}

// CounterOffer results, mirroring muppet.RoundReport.
const (
	ResultConformed     = "conformed"
	ResultRevised       = "revised"
	ResultStuck         = "stuck"
	ResultIndeterminate = "indeterminate"
)

// CounterOffer is the acting party's answer to an envelope: it either
// already conforms, revised its configuration (offer + edits), is stuck
// (with the blame core), or ran out of budget mid-round.
type CounterOffer struct {
	Result   string     `json:"result"`
	Offer    *WireOffer `json:"offer,omitempty"`
	Edits    []WireEdit `json:"edits,omitempty"`
	Feedback []string   `json:"feedback,omitempty"` // unsat core (stuck)
	Stop     int        `json:"stop,omitempty"`     // muppet.StopReason (indeterminate)
}

// InstallRequest sets a peer party's configuration: resynchronization
// after a peer restart, or final delivery of the reconciled agreement.
type InstallRequest struct {
	Session string    `json:"session"`
	Idem    string    `json:"idem"`
	Offer   WireOffer `json:"offer"`
	Final   bool      `json:"final,omitempty"`
}

// InstallResponse echoes the digest of the installed configuration so
// the coordinator can detect torn installs.
type InstallResponse struct {
	Digest string `json:"digest"`
}

// DescribeRequest asks for the peer's rendered configuration.
type DescribeRequest struct {
	Session string `json:"session"`
}

// DescribeResponse is the peer's rendered configuration, byte-identical
// to Party.Describe on the same state.
type DescribeResponse struct {
	Text string `json:"text"`
}

// WireError is the structured error body peers return with non-200
// statuses. Code distinguishes retryable conditions from protocol bugs.
type WireError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// WireError codes.
const (
	ErrCodeUnknownSession = "unknown-session"
	ErrCodeFingerprint    = "fingerprint-mismatch"
	ErrCodeUsage          = "usage"
	ErrCodeInternal       = "internal"
)
