package feder

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"muppet"
)

// fig1 loads the walkthrough bundle and compiles the shared system.
func fig1(t *testing.T, extraPorts []int) (*muppet.System, *muppet.Bundle) {
	t.Helper()
	bundle, err := muppet.LoadFiles(
		"../../testdata/fig1/mesh.yaml",
		"../../testdata/fig1/k8s_current.yaml",
		"../../testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies, extraPorts)
	if err != nil {
		t.Fatal(err)
	}
	return sys, bundle
}

var fig1Ports = []int{23, 10000, 12000, 14000, 16000}

// fig1Parties builds the walkthrough party pair over sys.
func fig1Parties(t *testing.T, sys *muppet.System, bundle *muppet.Bundle) (k8s, istio *muppet.Party) {
	t.Helper()
	kg, err := muppet.LoadK8sGoals("../../testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := muppet.LoadIstioGoals("../../testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		t.Fatal(err)
	}
	k8s, _, err = muppet.NewK8sParty(sys, bundle.K8s, muppet.AllSoft(), kg)
	if err != nil {
		t.Fatal(err)
	}
	istio, _, err = muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), ig)
	if err != nil {
		t.Fatal(err)
	}
	return k8s, istio
}

// TestWireEnvelopeRoundTrip asserts the wire codec is a fixed point of
// the constructor simplification — decode(encode(e)) re-encodes to the
// identical message — and that a decoded envelope is solver-equivalent to
// the original (same CheckCandidate verdict).
func TestWireEnvelopeRoundTrip(t *testing.T) {
	sys, bundle := fig1(t, fig1Ports)
	k8s, istio := fig1Parties(t, sys, bundle)
	v := NewVocab(sys)

	for _, dir := range []struct {
		name      string
		recipient *muppet.Party
		sender    *muppet.Party
	}{
		{"k8s-to-istio", istio, k8s},
		{"istio-to-k8s", k8s, istio},
	} {
		t.Run(dir.name, func(t *testing.T) {
			env, err := muppet.ComputeEnvelopeCtx(context.Background(), sys, dir.recipient, []*muppet.Party{dir.sender})
			if err != nil {
				t.Fatal(err)
			}
			w1, err := v.EncodeEnvelope(env)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := v.DecodeEnvelope(w1)
			if err != nil {
				t.Fatal(err)
			}
			if dec.From != env.From || dec.To != env.To || len(dec.Clauses) != len(env.Clauses) {
				t.Fatalf("decoded header/shape differs: %s→%s %d clauses, want %s→%s %d",
					dec.From, dec.To, len(dec.Clauses), env.From, env.To, len(env.Clauses))
			}
			w2, err := v.EncodeEnvelope(dec)
			if err != nil {
				t.Fatal(err)
			}
			j1, _ := json.Marshal(w1)
			j2, _ := json.Marshal(w2)
			if string(j1) != string(j2) {
				t.Fatalf("codec is not a fixed point:\n1st %s\n2nd %s", j1, j2)
			}
			ok1, _ := muppet.CheckCandidate(sys, dir.recipient, env, true, dir.sender)
			ok2, _ := muppet.CheckCandidate(sys, dir.recipient, dec, true, dir.sender)
			if ok1 != ok2 {
				t.Fatalf("decoded envelope flips the candidate verdict: %v vs %v", ok1, ok2)
			}
		})
	}
}

func TestWireEditsRoundTrip(t *testing.T) {
	es := []muppet.Edit{
		{Party: "K8s", Knob: muppet.Knob{Policy: "cluster-default", Field: muppet.Field(1), Key: "23"}, Add: true},
		{Party: "Istio", Knob: muppet.Knob{Policy: "allow-db", Field: muppet.Field(2), Key: "backend/16000"}, Add: false},
	}
	got := DecodeEdits(EncodeEdits(es))
	if !reflect.DeepEqual(got, es) {
		t.Fatalf("edits round-trip:\n got %+v\nwant %+v", got, es)
	}
	if got := DecodeEdits(nil); len(got) != 0 {
		t.Fatalf("nil edits decode to %+v", got)
	}
}

func TestWireOfferDigest(t *testing.T) {
	base := WireOffer{
		Party: "Istio", Kind: "istio", Mode: "soft",
		Exposure:    map[string][]int{"db": {14000, 10000, 12000}},
		HasExposure: true,
	}
	reordered := base
	reordered.Exposure = map[string][]int{"db": {10000, 12000, 14000}}
	if base.Digest() != reordered.Digest() {
		t.Fatal("digest must be invariant under exposure port order")
	}
	changed := base
	changed.Exposure = map[string][]int{"db": {10000, 12000}}
	if base.Digest() == changed.Digest() {
		t.Fatal("digest must change when the exposure changes")
	}
	noExposure := WireOffer{Party: "Istio", Kind: "istio", Mode: "soft"}
	if noExposure.Digest() == base.Digest() {
		t.Fatal("nil exposure must digest differently from a concrete one")
	}
}

// TestSystemFingerprint asserts equal builds agree and drifted universes
// (an extra port atom) do not.
func TestSystemFingerprint(t *testing.T) {
	sysA, _ := fig1(t, fig1Ports)
	sysB, _ := fig1(t, fig1Ports)
	if SystemFingerprint(sysA) != SystemFingerprint(sysB) {
		t.Fatal("identical builds must fingerprint identically")
	}
	sysC, _ := fig1(t, append(append([]int{}, fig1Ports...), 999))
	if SystemFingerprint(sysA) == SystemFingerprint(sysC) {
		t.Fatal("an extra universe atom must change the fingerprint")
	}
}

// TestDecodeRejectsMalformed asserts every malformed wire shape surfaces
// as an error, never a panic.
func TestDecodeRejectsMalformed(t *testing.T) {
	sys, _ := fig1(t, fig1Ports)
	v := NewVocab(sys)
	cases := []struct {
		name string
		node *Node
	}{
		{"nil", nil},
		{"unknown-kind", &Node{K: "zzz"}},
		{"unknown-connective", &Node{K: "nry", Op: "xor"}},
		{"unknown-relation", &Node{K: "mlt", Op: "some", C: []*Node{{K: "rel", S: "NoSuchRel"}}}},
		{"unknown-atom", &Node{K: "mlt", Op: "some", C: []*Node{{K: "cst", A: 1, TS: [][]string{{"no-such-atom"}}}}}},
		{"zero-arity-const", &Node{K: "mlt", Op: "some", C: []*Node{{K: "cst", A: 0}}}},
		{"tuple-arity-mismatch", &Node{K: "mlt", Op: "some", C: []*Node{{K: "cst", A: 2, TS: [][]string{{"Port:23"}}}}}},
		{"undeclared-var", &Node{K: "mlt", Op: "some", C: []*Node{{K: "var", V: 7, S: "x"}}}},
		{"comparison-arity", &Node{K: "cmp", B: true, C: []*Node{{K: "rel", S: "Port"}}}},
		{"implies-arity", &Node{K: "nry", Op: "implies", C: []*Node{{K: "cf", B: true}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := v.DecodeFormulas([]*Node{tc.node}); err == nil {
				t.Fatalf("malformed node %+v decoded without error", tc.node)
			}
		})
	}
}
