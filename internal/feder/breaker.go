package feder

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// Breaker states. The numeric values are exported as the
// muppetd_fed_breaker_state gauge.
const (
	BreakerClosed   BreakerState = 0
	BreakerHalfOpen BreakerState = 1
	BreakerOpen     BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// Breaker is a per-peer circuit breaker: after Threshold consecutive
// failures it opens and rejects calls immediately (so one dead party
// cannot stall the fleet in per-attempt timeouts), and after Cooldown it
// lets a single half-open probe through; a successful probe closes it, a
// failed one re-opens it for another cooldown.
type Breaker struct {
	Threshold int           // consecutive failures before opening (≥ 1)
	Cooldown  time.Duration // open → half-open delay

	// now is the clock, replaceable in tests for determinism.
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// NewBreaker builds a closed breaker. threshold < 1 is treated as 1;
// cooldown ≤ 0 disables reopening delays (half-open immediately).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{Threshold: threshold, Cooldown: cooldown, now: time.Now}
}

// withClock replaces the breaker's clock (tests only).
func (b *Breaker) withClock(now func() time.Time) *Breaker {
	b.now = now
	return b
}

// Allow reports whether a call may proceed. In the open state it returns
// false until the cooldown elapses, then admits exactly one probe at a
// time (half-open).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Report records a call outcome. Success closes the breaker and clears
// the failure streak; failure extends the streak and opens the breaker
// at the threshold (or immediately when half-open).
func (b *Breaker) Report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = b.now()
		return
	}
	b.fails++
	if b.fails >= b.Threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.fails = 0
	}
}

// State reports the breaker's current position (resolving an elapsed
// cooldown to half-open for observability).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}
