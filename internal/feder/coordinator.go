package feder

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"muppet"
)

// Reason classifies how a federated negotiation ended. It extends the
// single-process TerminalReason vocabulary with the distributed failure
// mode: a peer that stayed unreachable through retries and breaker
// probes. String values match TerminalReason's so renderings of the
// shared outcomes are byte-identical.
type Reason int

// Reason values.
const (
	FedReconciled Reason = iota
	FedExhaustedRounds
	FedAllStuck
	FedIndeterminate
	FedPeerUnreachable
)

func (r Reason) String() string {
	switch r {
	case FedReconciled:
		return "reconciled"
	case FedExhaustedRounds:
		return "exhausted-rounds"
	case FedAllStuck:
		return "all-stuck"
	case FedPeerUnreachable:
		return "peer-unreachable"
	default:
		return "indeterminate"
	}
}

// fedReason maps a single-process terminal reason onto the federated
// vocabulary.
func fedReason(r muppet.TerminalReason) Reason {
	switch r {
	case muppet.ReasonReconciled:
		return FedReconciled
	case muppet.ReasonExhaustedRounds:
		return FedExhaustedRounds
	case muppet.ReasonAllStuck:
		return FedAllStuck
	}
	return FedIndeterminate
}

// RoundResult mirrors muppet.RoundReport for one federated round.
type RoundResult struct {
	Round            int
	Party            string
	ConformedAlready bool
	Revised          bool
	Edits            []muppet.Edit
	Stuck            bool
	Indeterminate    bool
	Feedback         *muppet.Feedback
	Reconciled       bool
}

// Outcome summarizes a federated negotiation. On FedPeerUnreachable the
// rounds completed so far and the replicas' current configurations are
// the best-so-far partial agreement — reported, never torn down.
type Outcome struct {
	Reconciled       bool
	InitialReconcile bool
	Reason           Reason
	Stop             muppet.StopReason
	Rounds           []*RoundResult
	Feedback         *muppet.Feedback

	// FailedPeer and PeerErr name the peer whose unavailability ended
	// the run (Reason == FedPeerUnreachable).
	FailedPeer string
	PeerErr    error
}

// PeerRef names one peer mediator: the party it negotiates for and the
// base URL its /fed/ endpoints live under.
type PeerRef struct {
	Name string
	URL  string
}

// Options tune the coordinator's robustness machinery. The zero value
// gives sensible defaults (2 retries, 50 ms base backoff, breaker after
// 3 consecutive failures with a 1 s cooldown, no deadlines).
type Options struct {
	Rounds           int           // max revision rounds (0 = 2 cycles)
	Retries          int           // per-call retries (-1 = none, 0 = default 2)
	BackoffBase      time.Duration // first retry delay (0 = 50 ms)
	BackoffMax       time.Duration // backoff cap (0 = 2 s)
	AttemptTimeout   time.Duration // per-HTTP-attempt cap (0 = none)
	RoundTimeout     time.Duration // per-round deadline (0 = none)
	TotalTimeout     time.Duration // whole-negotiation deadline (0 = none)
	BreakerThreshold int           // consecutive failures to open (0 = 3)
	BreakerCooldown  time.Duration // open → half-open delay (0 = 1 s)
	Seed             int64         // jitter seed (reproducible tests)
	HTTPClient       *http.Client  // nil = default client
	Transcript       *TranscriptWriter
	OnRetry          func(peer string)                  // metrics hook
	OnRound          func()                             // metrics hook: one round driven
	OnBreaker        func(peer string, st BreakerState) // metrics hook: breaker position after the run
}

// Coordinator is the paper's trusted mediator running the Fig. 9 loop
// over remote parties. It holds local replicas of every party (goals and
// all — the mediator is trusted; party-to-party privacy is what the
// protocol preserves) and mirrors Negotiation.RunCtx exactly: joint
// reconciles and merged envelopes are computed locally, while each
// acting party's minimal-edit revision runs remotely on its own daemon.
type Coordinator struct {
	sys      *muppet.System
	vocab    *Vocab
	fpr      string
	replicas []*LocalParty
	clients  []*PeerClient
	cache    *muppet.SolveCache
	opts     Options
	session  string
}

// NewCoordinator pairs each replica with its peer by party name (case-
// insensitive). Replica order fixes the round-robin cycle, exactly as
// party order does for NewNegotiation.
func NewCoordinator(sys *muppet.System, replicas []*LocalParty, peers []PeerRef, opts Options) (*Coordinator, error) {
	if len(replicas) < 2 {
		return nil, fmt.Errorf("feder: negotiation needs at least two parties, got %d", len(replicas))
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	} else if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown == 0 {
		opts.BreakerCooldown = time.Second
	}

	byName := make(map[string]PeerRef, len(peers))
	for _, p := range peers {
		byName[strings.ToLower(p.Name)] = p
	}
	var id [8]byte
	rand.Read(id[:])
	c := &Coordinator{
		sys:      sys,
		vocab:    NewVocab(sys),
		fpr:      SystemFingerprint(sys),
		replicas: replicas,
		cache:    muppet.NewSolveCache(),
		opts:     opts,
		session:  "fed-" + hex.EncodeToString(id[:]),
	}
	for i, lp := range replicas {
		ref, ok := byName[strings.ToLower(lp.P.Name)]
		if !ok {
			return nil, fmt.Errorf("feder: no peer given for party %q", lp.P.Name)
		}
		delete(byName, strings.ToLower(lp.P.Name))
		cl := NewPeerClient(lp.P.Name, strings.TrimSuffix(ref.URL, "/"), opts.Retries,
			NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown), opts.Seed+int64(i))
		if opts.BackoffBase > 0 {
			cl.BackoffBase = opts.BackoffBase
		}
		if opts.BackoffMax > 0 {
			cl.BackoffMax = opts.BackoffMax
		}
		cl.AttemptTimeout = opts.AttemptTimeout
		if opts.HTTPClient != nil {
			cl.HTTP = opts.HTTPClient
		}
		cl.OnRetry = opts.OnRetry
		c.clients = append(c.clients, cl)
	}
	for _, stray := range byName {
		return nil, fmt.Errorf("feder: peer %q matches no negotiating party", stray.Name)
	}
	return c, nil
}

// UseCache replaces the coordinator's solve cache (warm serving).
func (c *Coordinator) UseCache(cache *muppet.SolveCache) *Coordinator {
	c.cache = cache
	return c
}

// Session exposes the run's session id (tests).
func (c *Coordinator) Session() string { return c.session }

// Stats reports the run's robustness counters for observability.
type Stats struct {
	Rounds   int                     // revision rounds driven
	Retries  map[string]int64        // per-peer retry attempts
	Breakers map[string]BreakerState // per-peer breaker position
}

// Stats snapshots the per-peer retry counters and breaker states.
func (c *Coordinator) Stats() Stats {
	s := Stats{Retries: make(map[string]int64), Breakers: make(map[string]BreakerState)}
	for _, cl := range c.clients {
		s.Retries[cl.Name] = cl.Retried()
		s.Breakers[cl.Name] = cl.Breaker.State()
	}
	return s
}

func (c *Coordinator) parties() []*muppet.Party {
	ps := make([]*muppet.Party, len(c.replicas))
	for i, lp := range c.replicas {
		ps[i] = lp.P
	}
	return ps
}

func (c *Coordinator) others(i int) []*muppet.Party {
	out := make([]*muppet.Party, 0, len(c.replicas)-1)
	for j, lp := range c.replicas {
		if j != i {
			out = append(out, lp.P)
		}
	}
	return out
}

func (c *Coordinator) otherOffers(i int) []WireOffer {
	out := make([]WireOffer, 0, len(c.replicas)-1)
	for j, lp := range c.replicas {
		if j != i {
			out = append(out, lp.Snapshot())
		}
	}
	return out
}

func (c *Coordinator) transcribe(kind, peer string, round int, payload any) {
	if c.opts.Transcript != nil {
		// Transcript failures must not tear a live negotiation; the
		// verify step will catch the truncated chain.
		_ = c.opts.Transcript.Append(kind, peer, round, payload)
	}
}

// roundCtx derives the per-round deadline.
func (c *Coordinator) roundCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.opts.RoundTimeout > 0 {
		return context.WithTimeout(ctx, c.opts.RoundTimeout)
	}
	return ctx, func() {}
}

// serializeBudget turns the coordinator's remaining budget into wire
// fields so a federated round degrades exactly like a local one.
func serializeBudget(b muppet.Budget) (millis, conflicts, propagations int64) {
	if !b.Deadline.IsZero() {
		millis = int64(time.Until(b.Deadline) / time.Millisecond)
		if millis <= 0 {
			millis = 1 // already past due: force an immediate budget stop
		}
	}
	return millis, b.MaxConflicts, b.MaxPropagations
}

// join opens (or reopens) the session on peer i, verifying the shared
// vocabulary and the peer's party identity, and resynchronizing the
// peer's configuration from the authoritative replica when it drifted
// (fresh peer, peer restart).
func (c *Coordinator) join(ctx context.Context, i, round int) error {
	lp, cl := c.replicas[i], c.clients[i]
	var jr JoinResponse
	err := cl.Call(ctx, "join", JoinRequest{
		Session:     c.session,
		Coordinator: "muppet",
		Fingerprint: c.fpr,
		Rounds:      c.maxRounds(),
	}, &jr)
	if err != nil {
		return err
	}
	if !strings.EqualFold(jr.Party, lp.P.Name) {
		return &PeerError{Peer: cl.Name, Op: "join", Code: ErrCodeUsage,
			Err: fmt.Errorf("peer negotiates for %q, expected %q", jr.Party, lp.P.Name)}
	}
	if jr.Fingerprint != c.fpr {
		return &PeerError{Peer: cl.Name, Op: "join", Code: ErrCodeFingerprint,
			Err: errors.New("system fingerprint mismatch")}
	}
	if jr.Kind != lp.Kind() || jr.Mode != lp.Mode() {
		return &PeerError{Peer: cl.Name, Op: "join", Code: ErrCodeUsage,
			Err: fmt.Errorf("peer party is %s/%s, expected %s/%s", jr.Kind, jr.Mode, lp.Kind(), lp.Mode())}
	}
	c.transcribe("join", lp.P.Name, round, jr)
	if jr.Digest != lp.Digest() {
		return c.resync(ctx, i, round)
	}
	return nil
}

// resync installs the authoritative replica configuration on peer i.
func (c *Coordinator) resync(ctx context.Context, i, round int) error {
	lp, cl := c.replicas[i], c.clients[i]
	snap := lp.Snapshot()
	var ir InstallResponse
	err := cl.Call(ctx, "install", InstallRequest{
		Session: c.session,
		Idem:    fmt.Sprintf("%s/resync/%d/%d", c.session, round, i),
		Offer:   snap,
	}, &ir)
	if err != nil {
		return err
	}
	if ir.Digest != snap.Digest() {
		return &PeerError{Peer: cl.Name, Op: "install", Code: ErrCodeInternal,
			Err: errors.New("peer installed a different configuration (torn install)")}
	}
	c.transcribe("install", lp.P.Name, round, ir)
	return nil
}

// isUnknownSession matches the typed error a restarted peer returns.
func isUnknownSession(err error) bool {
	var pe *PeerError
	return errors.As(err, &pe) && pe.Code == ErrCodeUnknownSession
}

// sync brings peer i to the replica's state for round, healing peer
// restarts: an unknown session is rejoined, a drifted digest reinstalled.
func (c *Coordinator) sync(ctx context.Context, i, round int) error {
	lp, cl := c.replicas[i], c.clients[i]
	var pr ProposeResponse
	err := cl.Call(ctx, "propose", ProposeRequest{Session: c.session, Round: round}, &pr)
	if isUnknownSession(err) {
		return c.join(ctx, i, round)
	}
	if err != nil {
		return err
	}
	c.transcribe("propose", lp.P.Name, round, pr)
	if pr.Digest != lp.Digest() {
		return c.resync(ctx, i, round)
	}
	return nil
}

// envelopeRound ships the merged envelope to the acting peer and returns
// its counter-offer. A peer that restarted mid-round (unknown session)
// is rejoined, resynchronized, and asked once more.
func (c *Coordinator) envelopeRound(ctx context.Context, i, round int, env *muppet.Envelope, b muppet.Budget) (CounterOffer, error) {
	lp, cl := c.replicas[i], c.clients[i]
	wenv, err := c.vocab.EncodeEnvelope(env)
	if err != nil {
		return CounterOffer{}, err
	}
	millis, conflicts, props := serializeBudget(b)
	req := EnvelopeRequest{
		Session:         c.session,
		Round:           round,
		Idem:            fmt.Sprintf("%s/env/%d", c.session, round),
		Env:             wenv,
		Others:          c.otherOffers(i),
		BudgetMillis:    millis,
		MaxConflicts:    conflicts,
		MaxPropagations: props,
	}
	c.transcribe("envelope", lp.P.Name, round, wenv)
	var co CounterOffer
	err = cl.Call(ctx, "envelope", req, &co)
	if isUnknownSession(err) {
		if err = c.join(ctx, i, round); err == nil {
			err = cl.Call(ctx, "envelope", req, &co)
		}
	}
	if err != nil {
		return CounterOffer{}, err
	}
	c.transcribe("counter", lp.P.Name, round, co)
	return co, nil
}

func (c *Coordinator) maxRounds() int {
	if c.opts.Rounds > 0 {
		return c.opts.Rounds
	}
	return 2 * len(c.replicas)
}

// installAll delivers the reconciled agreement to every peer and checks
// the echoed digests: a mismatch means a torn install, reported rather
// than silently accepted.
func (c *Coordinator) installAll(ctx context.Context, round int) error {
	for i, lp := range c.replicas {
		snap := lp.Snapshot()
		var ir InstallResponse
		err := c.clients[i].Call(ctx, "install", InstallRequest{
			Session: c.session,
			Idem:    fmt.Sprintf("%s/final/%d/%d", c.session, round, i),
			Offer:   snap,
			Final:   true,
		}, &ir)
		if isUnknownSession(err) {
			if err = c.join(ctx, i, round); err == nil {
				// join resyncs from the replica, which already holds the
				// final agreement; nothing further to install.
				err = nil
			}
		}
		if err != nil {
			return err
		}
		if ir.Digest != "" && ir.Digest != snap.Digest() {
			return &PeerError{Peer: c.clients[i].Name, Op: "install", Code: ErrCodeInternal,
				Err: errors.New("torn final install")}
		}
	}
	return nil
}

// Run drives the federated negotiation to completion, mirroring
// Negotiation.RunCtx step for step. Every solver call sees the problem
// the single-process loop would, so the final agreement and round count
// are byte-identical on the same bundle split. Failures degrade to typed
// outcomes: the rounds completed so far and the replicas' configurations
// are always intact.
func (c *Coordinator) Run(ctx context.Context, b muppet.Budget) *Outcome {
	defer c.publishBreakers()
	if c.opts.TotalTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.TotalTimeout)
		defer cancel()
		b = b.WithTimeout(c.opts.TotalTimeout)
	}

	out := &Outcome{}

	indeterminate := func(rep *RoundResult, stop muppet.StopReason) *Outcome {
		if rep != nil {
			rep.Indeterminate = true
		}
		out.Reason = FedIndeterminate
		out.Stop = stop
		out.Feedback = nil
		c.transcribe("outcome", "", 0, map[string]any{"reason": out.Reason.String(), "stop": fmt.Sprint(stop)})
		return out
	}
	unreachable := func(rep *RoundResult, peer string, err error) *Outcome {
		if rep != nil {
			rep.Indeterminate = true
		}
		out.Reason = FedPeerUnreachable
		out.FailedPeer = peer
		out.PeerErr = err
		out.Feedback = nil
		c.transcribe("outcome", peer, 0, map[string]any{"reason": out.Reason.String(), "error": err.Error()})
		return out
	}

	// Session setup: every peer joins, proves vocabulary equality, and
	// is resynchronized if its configuration drifted from the replica.
	for i := range c.replicas {
		jctx, cancel := c.roundCtx(ctx)
		err := c.join(jctx, i, 0)
		cancel()
		if err != nil {
			return unreachable(nil, c.replicas[i].P.Name, err)
		}
	}

	// Reconcile initial offers (top of Fig. 9) — at the mediator, which
	// is the only place all parties' goals coexist.
	rec := c.cache.ReconcileCtx(ctx, c.sys, c.parties(), b)
	if rec.Indeterminate {
		return indeterminate(nil, rec.Stop)
	}
	if rec.OK {
		c.adoptAll(rec)
		out.Reconciled = true
		out.InitialReconcile = true
		out.Reason = FedReconciled
		if err := c.installAll(ctx, 0); err != nil {
			var pe *PeerError
			peer := ""
			if errors.As(err, &pe) {
				peer = pe.Peer
			}
			return unreachable(nil, peer, err)
		}
		c.transcribe("outcome", "", 0, map[string]any{"reason": out.Reason.String(), "initial": true})
		return out
	}
	out.Feedback = rec.Feedback

	stuckStreak := 0
	for round := 1; round <= c.maxRounds(); round++ {
		i := (round - 1) % len(c.replicas)
		lp := c.replicas[i]
		rep := &RoundResult{Round: round, Party: lp.P.Name}
		out.Rounds = append(out.Rounds, rep)
		if c.opts.OnRound != nil {
			c.opts.OnRound()
		}

		rctx, cancel := c.roundCtx(ctx)

		// Propose: cheap digest sync with the acting peer, healing
		// restarts before solver time is spent.
		if err := c.sync(rctx, i, round); err != nil {
			cancel()
			return unreachable(rep, lp.P.Name, err)
		}

		// Merged envelope for the acting party, computed by the same
		// code path the single-process loop uses (per-sender envelopes
		// do not compose when sender domains overlap).
		env, err := muppet.ComputeEnvelopeCtx(rctx, c.sys, lp.P, c.others(i))
		if err != nil {
			cancel()
			return indeterminate(rep, muppet.StopCancelled)
		}

		co, perr := c.envelopeRound(rctx, i, round, env, b)
		cancel()
		if perr != nil {
			return unreachable(rep, lp.P.Name, perr)
		}

		switch co.Result {
		case ResultConformed:
			rep.ConformedAlready = true
		case ResultIndeterminate:
			return indeterminate(rep, muppet.StopReason(co.Stop))
		case ResultStuck:
			rep.Stuck = true
			if len(co.Feedback) > 0 {
				rep.Feedback = &muppet.Feedback{Core: co.Feedback}
			}
			out.Feedback = rep.Feedback
			stuckStreak++
			if stuckStreak >= len(c.replicas) {
				out.Reason = FedAllStuck
				c.transcribe("outcome", "", round, map[string]any{"reason": out.Reason.String()})
				return out
			}
			continue
		case ResultRevised:
			rep.Revised = true
			rep.Edits = DecodeEdits(co.Edits)
			if co.Offer == nil {
				return unreachable(rep, lp.P.Name, &PeerError{Peer: lp.P.Name, Op: "envelope",
					Code: ErrCodeInternal, Err: errors.New("revised counter-offer without a configuration")})
			}
			if err := lp.Install(*co.Offer); err != nil {
				return unreachable(rep, lp.P.Name, &PeerError{Peer: lp.P.Name, Op: "envelope",
					Code: ErrCodeInternal, Err: err})
			}
		default:
			return unreachable(rep, lp.P.Name, &PeerError{Peer: lp.P.Name, Op: "envelope",
				Code: ErrCodeInternal, Err: fmt.Errorf("unknown counter-offer result %q", co.Result)})
		}
		stuckStreak = 0

		rec := c.cache.ReconcileCtx(ctx, c.sys, c.parties(), b)
		if rec.Indeterminate {
			return indeterminate(rep, rec.Stop)
		}
		rep.Reconciled = rec.OK
		if rec.OK {
			c.adoptAll(rec)
			out.Reconciled = true
			out.Reason = FedReconciled
			out.Feedback = nil
			if err := c.installAll(ctx, round); err != nil {
				var pe *PeerError
				peer := ""
				if errors.As(err, &pe) {
					peer = pe.Peer
				}
				// The agreement is reached and held by the replicas;
				// only delivery failed. Report it as unreachable so the
				// operator retries delivery, without discarding rounds.
				out.Reconciled = false
				return unreachable(nil, peer, err)
			}
			c.transcribe("outcome", "", round, map[string]any{"reason": out.Reason.String(), "rounds": len(out.Rounds)})
			return out
		}
		rep.Feedback = rec.Feedback
		out.Feedback = rec.Feedback
	}
	out.Reason = FedExhaustedRounds
	c.transcribe("outcome", "", 0, map[string]any{"reason": out.Reason.String()})
	return out
}

// publishBreakers reports each peer's final breaker position.
func (c *Coordinator) publishBreakers() {
	if c.opts.OnBreaker == nil {
		return
	}
	for _, cl := range c.clients {
		c.opts.OnBreaker(cl.Name, cl.Breaker.State())
	}
}

// adoptAll mirrors Negotiation.adoptAll: the reconciled joint instance
// becomes every replica's configuration.
func (c *Coordinator) adoptAll(rec *muppet.Result) {
	for _, lp := range c.replicas {
		lp.P.Adopt(rec.Instance)
	}
}
