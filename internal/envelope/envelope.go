// Package envelope implements the paper's central construct: the envelope
// E_{A→B} (Alg. 3) — a necessary and sufficient set of predicates over
// administrator B's configuration domain that B must satisfy for A's goals
// to hold, modulo A's concrete configuration.
//
// Computation follows Alg. 3 literally: decompose φ_A into small
// subformulas; keep those that mention B's domain; substitute A's concrete
// settings for A's relations; apply elementary simplifications. The result
// can be (1) checked against a candidate configuration of B's, (2) compared
// against B's goals, or (3) asserted into a solver session to synthesize a
// conforming configuration for B — the three uses Sec. 3 describes.
package envelope

import (
	"sort"
	"strings"

	"muppet/internal/relational"
)

// Envelope is an E_{A→B}: a conjunction of simplified predicates over the
// recipient's domain.
type Envelope struct {
	// From and To name the sender and recipient (display only).
	From, To string
	// Clauses are the envelope predicates; their conjunction is the
	// envelope's meaning.
	Clauses []relational.Formula

	// SenderObligations are the decomposed goal parts that do not mention
	// the recipient's domain and did not simplify to true under the
	// sender's configuration: obligations that fall entirely on the
	// sender's side ("parts of the goals may be satisfied entirely
	// internally", Sec. 3). The envelope is exactly equivalent to the
	// sender's goals when these hold.
	SenderObligations []relational.Formula

	universe *relational.Universe
}

// Options tune envelope computation.
type Options struct {
	// NoSimplify skips the elementary-simplification pass (ablation; the
	// paper applies simplification both for readability and to mitigate
	// configuration leakage, Sec. 7).
	NoSimplify bool
	// Shared gives the public shared structure's extents (Service, Port).
	// See Compute.
	Shared map[*relational.Relation]*relational.TupleSet
}

// Options.Shared carries the public shared structure (e.g. the Service and
// Port inventories). It is used to fully ground sender obligations — parts
// of the goals that never reach the recipient — so a sender whose own
// settings contradict its goals is detected as Unsatisfiable. Envelope
// clauses themselves keep the shared relations symbolic, preserving the
// Fig. 5 presentation ("all src: Service, …").
//
// Compute implements Alg. 3: the envelope for the recipient to satisfy
// goals, modulo the sender's fixed configuration senderConfig (relation →
// concrete extent). recipientDomain is dom(B): the relations the recipient
// configures.
func Compute(
	from, to string,
	goals []relational.Formula,
	senderConfig map[*relational.Relation]*relational.TupleSet,
	recipientDomain []*relational.Relation,
	u *relational.Universe,
	opts Options,
) *Envelope {
	domB := make(map[*relational.Relation]bool, len(recipientDomain))
	for _, r := range recipientDomain {
		domB[r] = true
	}
	env := &Envelope{From: from, To: to, universe: u}
	for _, g := range goals {
		for _, phi := range relational.Decompose(g) {
			// vars(φ) ∩ dom(B) ≠ ∅ filter.
			mentions := false
			for r := range relational.FreeRelations(phi) {
				if domB[r] {
					mentions = true
					break
				}
			}
			e := relational.Substitute(phi, senderConfig)
			if !opts.NoSimplify {
				e = relational.Simplify(e, u)
			}
			if c, ok := e.(*relational.ConstFormula); ok && c.Value() {
				continue // satisfied entirely by the sender's settings
			}
			if !mentions {
				if len(opts.Shared) > 0 {
					e = relational.Substitute(e, opts.Shared)
					if !opts.NoSimplify {
						e = relational.Simplify(e, u)
					}
					if c, ok := e.(*relational.ConstFormula); ok && c.Value() {
						continue
					}
				}
				env.SenderObligations = append(env.SenderObligations, e)
				continue
			}
			env.Clauses = append(env.Clauses, e)
		}
	}
	return env
}

// Formula returns the envelope as a single conjunction.
func (e *Envelope) Formula() relational.Formula {
	return relational.And(e.Clauses...)
}

// Trivial reports whether the envelope imposes no obligations.
func (e *Envelope) Trivial() bool { return len(e.Clauses) == 0 }

// Unsatisfiable reports whether some clause or sender obligation
// simplified to the constant false: the sender's goals cannot be met by
// any recipient configuration given the sender's fixed settings.
func (e *Envelope) Unsatisfiable() bool {
	for _, set := range [][]relational.Formula{e.Clauses, e.SenderObligations} {
		for _, c := range set {
			if cf, ok := c.(*relational.ConstFormula); ok && !cf.Value() {
				return true
			}
		}
	}
	return false
}

// Holds checks the envelope against a concrete instance (the recipient's
// candidate configuration plus structure).
func (e *Envelope) Holds(inst *relational.Instance) bool {
	for _, c := range e.Clauses {
		if !relational.Eval(c, inst) {
			return false
		}
	}
	return true
}

// Failing returns the clauses an instance violates — blame information for
// the recipient's revision loop (Fig. 8).
func (e *Envelope) Failing(inst *relational.Instance) []relational.Formula {
	var out []relational.Formula
	for _, c := range e.Clauses {
		if !relational.Eval(c, inst) {
			out = append(out, c)
		}
	}
	return out
}

// String renders the envelope in Alloy-like syntax, one clause per line —
// the Fig. 5 presentation.
func (e *Envelope) String() string {
	if e.Trivial() {
		return "// envelope " + e.Name() + " is trivially satisfied\n"
	}
	var b strings.Builder
	b.WriteString("// envelope ")
	b.WriteString(e.Name())
	b.WriteByte('\n')
	for _, c := range e.Clauses {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Name renders "E_{From→To}".
func (e *Envelope) Name() string {
	return "E_{" + e.From + "→" + e.To + "}"
}

// LeakedAtoms returns the sorted atom names that appear inside constant
// expressions of the envelope clauses — the concrete fragments of the
// sender's world the recipient learns. Sec. 7's configuration-privacy
// discussion motivates measuring exactly this: the Fig. 5 envelope leaks
// the special status of port 23 "but little else".
func (e *Envelope) LeakedAtoms() []string {
	set := make(map[string]bool)
	for _, c := range e.Clauses {
		leakF(c, e.universe, set)
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func leakF(f relational.Formula, u *relational.Universe, out map[string]bool) {
	switch g := f.(type) {
	case *relational.ConstFormula:
	case *relational.CompFormula:
		leakE(g.Left(), u, out)
		leakE(g.Right(), u, out)
	case *relational.MultFormula:
		leakE(g.Expr(), u, out)
	case *relational.NotFormula:
		leakF(g.Inner(), u, out)
	case *relational.NaryFormula:
		for _, sub := range g.Operands() {
			leakF(sub, u, out)
		}
	case *relational.QuantFormula:
		for _, d := range g.Decls() {
			leakE(d.Domain(), u, out)
		}
		leakF(g.Body(), u, out)
	}
}

func leakE(e relational.Expr, u *relational.Universe, out map[string]bool) {
	switch g := e.(type) {
	case *relational.ConstExpr:
		for _, t := range g.TupleSet().Tuples() {
			for _, a := range t {
				out[u.Atom(a)] = true
			}
		}
	case *relational.BinExpr:
		leakE(g.Left(), u, out)
		leakE(g.Right(), u, out)
	case *relational.TransposeExpr:
		leakE(g.Inner(), u, out)
	case *relational.ComprehensionExpr:
		for _, d := range g.Decls() {
			leakE(d.Domain(), u, out)
		}
		leakF(g.Body(), u, out)
	}
}

// Size returns the total node count across clauses — a crude complexity
// measure used by the simplification ablation.
func (e *Envelope) Size() int {
	n := 0
	for _, c := range e.Clauses {
		n += sizeF(c)
	}
	return n
}

func sizeF(f relational.Formula) int {
	switch g := f.(type) {
	case *relational.ConstFormula:
		return 1
	case *relational.CompFormula:
		return 1 + sizeE(g.Left()) + sizeE(g.Right())
	case *relational.MultFormula:
		return 1 + sizeE(g.Expr())
	case *relational.NotFormula:
		return 1 + sizeF(g.Inner())
	case *relational.NaryFormula:
		n := 1
		for _, sub := range g.Operands() {
			n += sizeF(sub)
		}
		return n
	case *relational.QuantFormula:
		n := 1
		for _, d := range g.Decls() {
			n += sizeE(d.Domain())
		}
		return n + sizeF(g.Body())
	}
	return 1
}

func sizeE(e relational.Expr) int {
	switch g := e.(type) {
	case *relational.BinExpr:
		return 1 + sizeE(g.Left()) + sizeE(g.Right())
	case *relational.TransposeExpr:
		return 1 + sizeE(g.Inner())
	case *relational.ComprehensionExpr:
		n := 1
		for _, d := range g.Decls() {
			n += sizeE(d.Domain())
		}
		return n + sizeF(g.Body())
	default:
		return 1
	}
}
