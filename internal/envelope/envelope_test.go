package envelope

import (
	"math/rand"
	"strings"
	"testing"

	"muppet/internal/encode"
	"muppet/internal/goals"
	"muppet/internal/mesh"
	"muppet/internal/relational"
)

func fig1System(t testing.TB) (*encode.System, *mesh.K8sConfig, *mesh.IstioConfig) {
	t.Helper()
	bundle, err := mesh.LoadFiles(
		"../../testdata/fig1/mesh.yaml",
		"../../testdata/fig1/k8s_current.yaml",
		"../../testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := encode.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		t.Fatal(err)
	}
	return sys, bundle.K8s, bundle.Istio
}

// fig5Envelope computes E_{K8s→Istio} for the walkthrough: the Fig. 2 goal
// against the K8s administrator's current (permissive) configuration.
func fig5Envelope(t testing.TB, sys *encode.System, k8s *mesh.K8sConfig, opts Options) *Envelope {
	t.Helper()
	k8sGoals, err := goals.LoadK8sGoals("../../testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	fk, err := sys.CompileK8sGoals(k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	opts.Shared = sys.SharedTupleSets()
	return Compute("K8s", "Istio",
		[]relational.Formula{fk},
		sys.SenderTupleSets(k8s, nil, nil),
		sys.IstioRelations(),
		sys.Universe, opts)
}

func TestFig5EnvelopeShape(t *testing.T) {
	sys, k8s, _ := fig1System(t)
	env := fig5Envelope(t, sys, k8s, Options{})
	if env.Trivial() || env.Unsatisfiable() {
		t.Fatalf("Fig. 5 envelope should be non-trivial and satisfiable:\n%s", env)
	}
	if len(env.Clauses) != 1 {
		t.Fatalf("want a single ∀ clause, got %d:\n%s", len(env.Clauses), env)
	}
	// The envelope must be strictly in terms of the Istio domain: no K8s
	// configuration relation survives substitution.
	free := relational.FreeRelations(env.Formula())
	for _, r := range sys.K8sRelations() {
		if free[r] {
			t.Fatalf("K8s relation %s leaked into the envelope:\n%s", r.Name(), env)
		}
	}
	// All five Fig. 5 ingredient vocabularies appear.
	s := env.String()
	for _, want := range []string{"active_ports", "deny_to_ports", "allow_to_ports", "deny_from_service", "allow_from_service", "AuthPolicy"} {
		if !strings.Contains(s, want) {
			t.Fatalf("envelope missing %q:\n%s", want, s)
		}
	}
	if env.Name() != "E_{K8s→Istio}" {
		t.Fatalf("Name: %q", env.Name())
	}
}

func TestFig5EnvelopeSemantics(t *testing.T) {
	sys, k8s, istio := fig1System(t)
	env := fig5Envelope(t, sys, k8s, Options{})

	// The Istio administrator's current config exposes frontend:23 and
	// admits backend→frontend — it must violate the envelope.
	cur := sys.InstanceFor(k8s, istio, nil)
	if env.Holds(cur) {
		t.Fatal("current Istio config should violate E_{K8s→Istio}")
	}
	if len(env.Failing(cur)) == 0 {
		t.Fatal("violation must produce blame clauses")
	}

	// Blocking port 23 via deny_to_ports on every egress satisfies it
	// (Fig. 5 disjunct 2).
	blocked := mesh.CloneIstio(istio)
	for _, p := range blocked.Policies {
		p.DenyToPorts = append(p.DenyToPorts, 23)
	}
	if !env.Holds(sys.InstanceFor(k8s, blocked, nil)) {
		t.Fatal("deny_to_ports=23 everywhere should satisfy the envelope")
	}

	// Re-exposing the frontend away from port 23 satisfies it too
	// (disjunct 1): no service listens on 23.
	exposure := map[string][]int{
		"test-frontend": {24},
		"test-backend":  {25, 12000},
		"test-db":       {16000},
	}
	if !env.Holds(sys.InstanceFor(k8s, istio, exposure)) {
		t.Fatal("moving the frontend off port 23 should satisfy the envelope")
	}

	// Ingress-side blocking: nobody may send to the frontend (the only
	// port-23 listener), via deny_from_service (disjunct 4).
	denied := mesh.CloneIstio(istio)
	denied.Policy("frontend-policy").AllowFromServices = nil
	denied.Policy("frontend-policy").DenyFromServices = []string{"test-frontend", "test-backend", "test-db"}
	if !env.Holds(sys.InstanceFor(k8s, denied, nil)) {
		t.Fatal("denying all sources to the frontend should satisfy the envelope")
	}
}

func TestEnvelopeTrivialWhenSenderEnforces(t *testing.T) {
	// If the K8s configuration already denies port 23 everywhere, the
	// goal is met internally and the envelope is trivial ("parts of the
	// goals may be satisfied entirely internally", Sec. 3).
	sys, k8s, _ := fig1System(t)
	enforcing := mesh.CloneK8s(k8s)
	enforcing.Policy("cluster-default").IngressDenyPorts = []int{23}
	env := fig5Envelope(t, sys, enforcing, Options{})
	if !env.Trivial() {
		t.Fatalf("envelope should be trivial when the sender enforces internally:\n%s", env)
	}
}

// TestEnvelopeSoundAndComplete is the paper's "necessary and sufficient"
// property: for random recipient configurations, the envelope holds iff
// the sender's goals hold on the composed system (given the sender's fixed
// configuration and its own obligations).
func TestEnvelopeSoundAndComplete(t *testing.T) {
	sys, _, _ := fig1System(t)
	rng := rand.New(rand.NewSource(99))

	for iter := 0; iter < 40; iter++ {
		// Random sender config and random goal table.
		k8s := randomK8s(rng, sys)
		gl := randomK8sGoals(rng, sys)
		fk, err := sys.CompileK8sGoals(gl)
		if err != nil {
			t.Fatal(err)
		}
		env := Compute("K8s", "Istio",
			[]relational.Formula{fk},
			sys.SenderTupleSets(k8s, nil, nil),
			sys.IstioRelations(),
			sys.Universe, Options{Shared: sys.SharedTupleSets()})

		for trial := 0; trial < 15; trial++ {
			istio, exposure := randomIstio(rng, sys)
			inst := sys.InstanceFor(k8s, istio, exposure)
			goalHolds := relational.Eval(fk, inst)
			senderOK := true
			for _, ob := range env.SenderObligations {
				if !relational.Eval(ob, inst) {
					senderOK = false
					break
				}
			}
			envHolds := env.Holds(inst) && senderOK
			if goalHolds != envHolds {
				t.Fatalf("iter %d trial %d: goals=%v envelope=%v\ngoals: %v\nenvelope:\n%s",
					iter, trial, goalHolds, envHolds, gl, env)
			}
		}
	}
}

func TestEnvelopeOtherDirection(t *testing.T) {
	// E_{Istio→K8s}: the Istio goals, modulo the Istio config, in terms of
	// the K8s domain — the paper's "envelope in the other direction".
	sys, k8s, istio := fig1System(t)
	istioGoals, err := goals.LoadIstioGoals("../../testdata/fig1/istio_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	fi, err := sys.CompileIstioGoals(istioGoals)
	if err != nil {
		t.Fatal(err)
	}
	env := Compute("Istio", "K8s",
		[]relational.Formula{fi},
		sys.SenderTupleSets(nil, istio, nil),
		sys.K8sRelations(),
		sys.Universe, Options{Shared: sys.SharedTupleSets()})
	if env.Trivial() {
		t.Fatal("reachability goals must impose obligations on K8s")
	}
	// The permissive current K8s config satisfies it.
	if !env.Holds(sys.InstanceFor(k8s, istio, nil)) {
		t.Fatalf("permissive K8s config should satisfy E_{Istio→K8s}:\n%v", env.Failing(sys.InstanceFor(k8s, istio, nil)))
	}
	// The port-23 ban violates it (it breaks backend→frontend:23).
	banned := mesh.CloneK8s(k8s)
	banned.Policy("cluster-default").IngressDenyPorts = []int{23}
	if env.Holds(sys.InstanceFor(banned, istio, nil)) {
		t.Fatal("the port-23 ban must violate E_{Istio→K8s}")
	}
}

func TestLeakage(t *testing.T) {
	sys, k8s, _ := fig1System(t)
	env := fig5Envelope(t, sys, k8s, Options{})
	leaked := env.LeakedAtoms()
	hasPort23 := false
	for _, a := range leaked {
		if a == "port:23" {
			hasPort23 = true
		}
		if strings.HasPrefix(a, "port:") && a != "port:23" {
			t.Fatalf("envelope leaks unrelated port %s (leaked: %v)", a, leaked)
		}
		if strings.HasPrefix(a, "np:") {
			t.Fatalf("envelope leaks K8s policy object %s", a)
		}
	}
	if !hasPort23 {
		t.Fatalf("the special status of port 23 should be visible: %v", leaked)
	}
}

func TestSimplificationAblation(t *testing.T) {
	sys, k8s, istio := fig1System(t)
	simplified := fig5Envelope(t, sys, k8s, Options{})
	raw := fig5Envelope(t, sys, k8s, Options{NoSimplify: true})
	if raw.Size() <= simplified.Size() {
		t.Fatalf("simplification should shrink the envelope: raw=%d simplified=%d", raw.Size(), simplified.Size())
	}
	// Both must agree semantically.
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		ic, exposure := randomIstio(rng, sys)
		inst := sys.InstanceFor(k8s, ic, exposure)
		if raw.Holds(inst) != simplified.Holds(inst) {
			t.Fatal("simplification changed envelope semantics")
		}
	}
	_ = istio
}

func TestUnsatisfiableEnvelope(t *testing.T) {
	// A sender goal that no recipient configuration can meet: require
	// traffic allowed to a destination while the sender's own config
	// denies the port. ALLOW goal + sender ingress deny on the same port
	// simplifies to false.
	sys, k8s, _ := fig1System(t)
	denying := mesh.CloneK8s(k8s)
	denying.Policy("cluster-default").IngressDenyPorts = []int{16000}
	f, err := sys.CompileK8sGoal(goals.K8sGoal{Port: 16000, Allow: true, Selector: map[string]string{"app": "db"}})
	if err != nil {
		t.Fatal(err)
	}
	env := Compute("K8s", "Istio",
		[]relational.Formula{f},
		sys.SenderTupleSets(denying, nil, nil),
		sys.IstioRelations(),
		sys.Universe, Options{Shared: sys.SharedTupleSets()})
	if !env.Unsatisfiable() {
		t.Fatalf("self-contradicting sender should produce an unsatisfiable envelope:\n%s", env)
	}
}

// --- helpers ---

func randomK8s(rng *rand.Rand, sys *encode.System) *mesh.K8sConfig {
	cfg := &mesh.K8sConfig{}
	for _, shell := range sys.K8sShells {
		p := &mesh.NetworkPolicy{Name: shell.Name, Selector: shell.Selector}
		for _, port := range sys.PortList {
			switch rng.Intn(8) {
			case 0:
				p.IngressDenyPorts = append(p.IngressDenyPorts, port)
			case 1:
				p.IngressAllowPorts = append(p.IngressAllowPorts, port)
			case 2:
				p.EgressDenyPorts = append(p.EgressDenyPorts, port)
			case 3:
				p.EgressAllowPorts = append(p.EgressAllowPorts, port)
			}
		}
		cfg.Policies = append(cfg.Policies, p)
	}
	return cfg
}

func randomIstio(rng *rand.Rand, sys *encode.System) (*mesh.IstioConfig, map[string][]int) {
	cfg := &mesh.IstioConfig{}
	for _, shell := range sys.IstioShells {
		p := &mesh.AuthorizationPolicy{Name: shell.Name, Target: shell.Target}
		for _, port := range sys.PortList {
			switch rng.Intn(8) {
			case 0:
				p.DenyToPorts = append(p.DenyToPorts, port)
			case 1:
				p.AllowToPorts = append(p.AllowToPorts, port)
			}
		}
		for _, s := range sys.Mesh.Services {
			switch rng.Intn(6) {
			case 0:
				p.DenyFromServices = append(p.DenyFromServices, s.Name)
			case 1:
				p.AllowFromServices = append(p.AllowFromServices, s.Name)
			}
		}
		cfg.Policies = append(cfg.Policies, p)
	}
	exposure := make(map[string][]int)
	for _, s := range sys.Mesh.Services {
		for _, port := range sys.PortList {
			if rng.Intn(3) == 0 {
				exposure[s.Name] = append(exposure[s.Name], port)
			}
		}
	}
	return cfg, exposure
}

func randomK8sGoals(rng *rand.Rand, sys *encode.System) []goals.K8sGoal {
	var out []goals.K8sGoal
	n := 1 + rng.Intn(2)
	selectors := []map[string]string{nil, {"app": "frontend"}, {"app": "backend"}, {"app": "db"}}
	for i := 0; i < n; i++ {
		out = append(out, goals.K8sGoal{
			Port:     sys.PortList[rng.Intn(len(sys.PortList))],
			Allow:    rng.Intn(4) == 0,
			Selector: selectors[rng.Intn(len(selectors))],
		})
	}
	return out
}

func BenchmarkFig5EnvelopeCompute(b *testing.B) {
	sys, k8s, _ := fig1System(b)
	k8sGoals, _ := goals.LoadK8sGoals("../../testdata/fig1/k8s_goals.csv")
	fk, _ := sys.CompileK8sGoals(k8sGoals)
	cfg := sys.SenderTupleSets(k8s, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := Compute("K8s", "Istio", []relational.Formula{fk}, cfg, sys.IstioRelations(), sys.Universe, Options{Shared: sys.SharedTupleSets()})
		if env.Trivial() {
			b.Fatal("unexpected trivial envelope")
		}
	}
}
