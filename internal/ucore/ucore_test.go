package ucore

import (
	"math/rand"
	"testing"

	"muppet/internal/sat"
)

// selector adds clause (¬sel ∨ lits...) and returns sel: assuming sel
// enforces the clause.
func selector(s *sat.Solver, lits ...sat.Lit) sat.Lit {
	sel := sat.PosLit(s.NewVar())
	c := append([]sat.Lit{sel.Not()}, lits...)
	s.AddClause(c...)
	return sel
}

func TestFindSatisfiableReturnsNil(t *testing.T) {
	s := sat.New()
	a := s.NewVar()
	n1 := Named{Name: "a", Lit: selector(s, sat.PosLit(a))}
	if core := Find(s, []Named{n1}); core != nil {
		t.Fatalf("want nil core, got %v", core)
	}
}

func TestFindSimpleCore(t *testing.T) {
	s := sat.New()
	a, b := s.NewVar(), s.NewVar()
	posA := Named{Name: "a must hold", Lit: selector(s, sat.PosLit(a))}
	negA := Named{Name: "a must not hold", Lit: selector(s, sat.NegLit(a))}
	posB := Named{Name: "b must hold", Lit: selector(s, sat.PosLit(b))}
	core := Find(s, []Named{posA, negA, posB})
	if len(core) != 2 {
		t.Fatalf("core size %d, want 2: %v", len(core), core)
	}
	names := map[string]bool{}
	for _, n := range core {
		names[n.Name] = true
	}
	if !names["a must hold"] || !names["a must not hold"] || names["b must hold"] {
		t.Fatalf("wrong core %v", core)
	}
}

func TestFindMinimality(t *testing.T) {
	// Chain: x1, x1→x2, x2→x3, ¬x3, plus irrelevant constraints.
	s := sat.New()
	x1, x2, x3, y := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	named := []Named{
		{Name: "x1", Lit: selector(s, sat.PosLit(x1))},
		{Name: "x1->x2", Lit: selector(s, sat.NegLit(x1), sat.PosLit(x2))},
		{Name: "x2->x3", Lit: selector(s, sat.NegLit(x2), sat.PosLit(x3))},
		{Name: "!x3", Lit: selector(s, sat.NegLit(x3))},
		{Name: "y", Lit: selector(s, sat.PosLit(y))},
		{Name: "y2", Lit: selector(s, sat.PosLit(y))},
	}
	core := Find(s, named)
	if len(core) != 4 {
		t.Fatalf("core %v, want the 4-element chain", core)
	}
	for _, n := range core {
		if n.Name == "y" || n.Name == "y2" {
			t.Fatalf("irrelevant constraint %s in core", n.Name)
		}
	}
}

func TestFindHardUnsat(t *testing.T) {
	s := sat.New()
	a := s.NewVar()
	n1 := Named{Name: "n1", Lit: selector(s, sat.PosLit(a))}
	s.AddClause(sat.PosLit(a))
	s.AddClause(sat.NegLit(a))
	core := Find(s, []Named{n1})
	if core == nil || len(core) != 0 {
		t.Fatalf("hard-unsat should give empty non-nil core, got %v", core)
	}
}

func TestFindEachElementNecessary(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 60; iter++ {
		s := sat.New()
		n := 3 + rng.Intn(5)
		vars := make([]sat.Var, n)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		var named []Named
		for i := 0; i < 4+rng.Intn(10); i++ {
			c := make([]sat.Lit, 1+rng.Intn(2))
			for j := range c {
				c[j] = sat.MkLit(vars[rng.Intn(n)], rng.Intn(2) == 0)
			}
			named = append(named, Named{
				Name: string(rune('A' + i)),
				Lit:  selector(s, c...),
			})
		}
		core := Find(s, named)
		if core == nil {
			continue
		}
		// Core must be unsat…
		lits := make([]sat.Lit, len(core))
		for i, nmd := range core {
			lits[i] = nmd.Lit
		}
		if s.Solve(lits...) != sat.Unsat {
			t.Fatalf("iter %d: core %v not unsat", iter, core)
		}
		// …and every element necessary.
		for drop := range core {
			trial := make([]sat.Lit, 0, len(core)-1)
			for i, nmd := range core {
				if i != drop {
					trial = append(trial, nmd.Lit)
				}
			}
			if s.Solve(trial...) != sat.Sat {
				t.Fatalf("iter %d: dropping %s should restore SAT", iter, core[drop].Name)
			}
		}
	}
}

func TestDuplicateLitsShareNames(t *testing.T) {
	s := sat.New()
	a := s.NewVar()
	sel := selector(s, sat.PosLit(a))
	named := []Named{
		{Name: "first", Lit: sel},
		{Name: "second", Lit: sel},
		{Name: "contra", Lit: selector(s, sat.NegLit(a))},
	}
	core := Find(s, named)
	if core == nil {
		t.Fatal("expected a core")
	}
	names := map[string]bool{}
	for _, n := range core {
		names[n.Name] = true
	}
	if !names["contra"] || (!names["first"] && !names["second"]) {
		t.Fatalf("core %v should blame contra plus the shared selector", core)
	}
}
