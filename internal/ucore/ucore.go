// Package ucore extracts unsatisfiable cores over named constraints.
//
// Clients attach each retractable constraint to a selector literal (for
// circuit-grounded formulas, boolcirc.CNF.LitFor provides exactly that) and
// ask for a core: a small named subset whose conjunction with the solver's
// hard clauses is unsatisfiable. The core is minimised by a canonical
// deletion pass over the full named list in caller order — each trial is a
// purely semantic question, so the reported blame is identical across
// encodings, preprocessing configurations, and solver heuristics.
//
// Muppet surfaces these cores as the "unsatisfiable core with blame
// information" feedback the paper prescribes for hole-style configurations
// (Sec. 4.3).
package ucore

import (
	"context"

	"muppet/internal/sat"
)

// Named pairs a human-meaningful label with the selector literal that
// enables its constraint.
type Named struct {
	// Name identifies the constraint in feedback (e.g. a goal row).
	Name string
	// Lit, when assumed true, enforces the constraint.
	Lit sat.Lit
}

// Find returns an unsatisfiable core of the named constraints, minimised by
// deletion: every returned element is necessary (removing it restores
// satisfiability relative to the others). It returns nil when the
// constraints are jointly satisfiable with the solver's clauses. If the
// solver's hard clauses are unsatisfiable on their own, it returns an empty
// non-nil slice.
func Find(s *sat.Solver, named []Named) []Named {
	return FindCtx(context.Background(), sat.Budget{}, s, named)
}

// FindCtx is Find under a cancellation context and a work budget. The
// budget's caps apply to each individual solver call; the deadline is a
// shared wall-clock cutoff. Degradation is conservative and never
// fabricates blame: if the initial solve cannot re-establish
// unsatisfiability within budget, FindCtx returns nil (check the solver's
// StopReason to distinguish "satisfiable" from "gave up"); if a deletion
// trial comes back Unknown, the element under test is kept, so the result
// is a valid — possibly non-minimal — core.
func FindCtx(ctx context.Context, b sat.Budget, s *sat.Solver, named []Named) []Named {
	all := make([]sat.Lit, 0, len(named))
	seenLit := make(map[sat.Lit]bool, len(named))
	byLit := make(map[sat.Lit][]Named, len(named))
	for _, n := range named {
		if !seenLit[n.Lit] {
			seenLit[n.Lit] = true
			all = append(all, n.Lit)
		}
		byLit[n.Lit] = append(byLit[n.Lit], n)
		// Selectors must keep their identity through CNF preprocessing.
		s.FreezeLit(n.Lit)
	}
	if s.SolveCtx(ctx, b, all...) != sat.Unsat {
		return nil
	}

	// Canonical deletion-based minimisation: one left-to-right pass over
	// the FULL named list in caller order, permanently dropping each
	// literal whose removal keeps the set unsatisfiable. The pass yields a
	// minimal core: when an element survives its test, the set at test
	// time is a superset of the final set, so it would survive against the
	// final set too. Each trial is a semantic satisfiability question, so
	// the result depends only on the constraints and the caller's order —
	// never on learnt clauses, restarts, or preprocessing — which is what
	// keeps blame output byte-identical across encoding configurations.
	// (Seeding from Solver.Core would be cheaper but heuristic.)
	kept := append([]sat.Lit(nil), all...)
	for i := 0; i < len(kept); i++ {
		trial := make([]sat.Lit, 0, len(kept)-1)
		trial = append(trial, kept[:i]...)
		trial = append(trial, kept[i+1:]...)
		if s.SolveCtx(ctx, b, trial...) == sat.Unsat {
			kept = trial
			i-- // continue the pass at the shifted position
		}
	}

	out := make([]Named, 0, len(kept))
	seen := make(map[string]bool)
	for _, l := range kept {
		for _, n := range byLit[l] {
			if !seen[n.Name] {
				seen[n.Name] = true
				out = append(out, n)
			}
		}
	}
	return out
}
