package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestVersionNeverEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version must never be empty")
	}
}

func TestRender(t *testing.T) {
	bi := &debug.BuildInfo{GoVersion: "go1.22.0"}
	bi.Main.Version = "(devel)"
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "0123456789abcdef0123"},
		{Key: "vcs.modified", Value: "true"},
	}
	got := render(bi)
	want := "devel (0123456789ab+dirty) go1.22.0"
	if got != want {
		t.Fatalf("render: %q, want %q", got, want)
	}

	bi = &debug.BuildInfo{GoVersion: "go1.22.0"}
	bi.Main.Version = "v1.2.3"
	if got := render(bi); !strings.HasPrefix(got, "v1.2.3") {
		t.Fatalf("tagged build renders %q", got)
	}
}
