// Package buildinfo renders the binary's provenance — module version,
// VCS revision, and toolchain — from the build metadata the Go linker
// stamps into every binary, so `muppet version` and `muppetd -version`
// need no ldflags plumbing.
package buildinfo

import (
	"runtime/debug"
	"strings"
)

// Version reports the module version plus VCS revision when the binary
// was built from a checkout, e.g. "devel (a1b2c3d4e5f6+dirty) go1.22.0".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	return render(bi)
}

// render is the testable core of Version.
func render(bi *debug.BuildInfo) string {
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	var b strings.Builder
	b.WriteString(v)
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		b.WriteString(" (" + rev + dirty + ")")
	}
	if bi.GoVersion != "" {
		b.WriteString(" " + bi.GoVersion)
	}
	return b.String()
}
