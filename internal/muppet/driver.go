package muppet

import (
	"context"
	"runtime"
	"sync"
)

// FanOut serves n independent workflow queries across a bounded pool of
// goroutines, the concurrent-query driver behind `muppet bench -parallel`
// and the scaling experiments. The encode.System is safe to share across
// the pool (it is immutable after construction); each task must own its
// mutable state — its parties and, if it wants session reuse, its own
// SolveCache — because those are single-goroutine by design.
//
// workers ≤ 0 means GOMAXPROCS. The first error cancels the context passed
// to the remaining tasks and is returned once every in-flight task has
// finished; tasks that never started still count as finished.
func FanOut(ctx context.Context, workers, n int, task func(ctx context.Context, i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
		next  = make(chan int)
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
			cancel()
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := task(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			i = n
		}
	}
	close(next)
	wg.Wait()
	return first
}
