package muppet

import (
	"context"
	"fmt"
	"strings"

	"muppet/internal/encode"
	"muppet/internal/envelope"
	"muppet/internal/relational"
	"muppet/internal/sat"
	"muppet/internal/target"
)

// Edit is one flip of a soft-constrained knob: the minimal-edit feedback
// of Sec. 4.3.
type Edit struct {
	Party string
	Knob  encode.Knob
	Add   bool // true: add the entry; false: remove it
}

func (e Edit) String() string {
	verb := "remove"
	if e.Add {
		verb = "add"
	}
	return fmt.Sprintf("%s: %s %s", e.Party, verb, e.Knob)
}

// Feedback explains a failed check: an unsatisfiable core naming the goals
// and configuration fragments in conflict (Sec. 4.3's "unsatisfiable core
// with blame information").
type Feedback struct {
	Core []string
}

func (f *Feedback) String() string {
	if f == nil || len(f.Core) == 0 {
		return "no feedback"
	}
	return "conflicting constraints:\n  " + strings.Join(f.Core, "\n  ")
}

// Result is the outcome of a consistency or reconciliation query.
type Result struct {
	OK bool
	// Indeterminate is set when a budget or cancellation stopped the
	// solver before it proved either satisfiability or unsatisfiability.
	// No instance, edits, or blame core are fabricated in that case: OK is
	// false and Feedback is nil, and Stop carries the cause.
	Indeterminate bool
	// Stop explains an Indeterminate result. It can also be non-None on an
	// OK result: the minimal-edit search was interrupted and Edits reflect
	// the best (valid but possibly non-minimal) completion found.
	Stop target.StopReason
	// Instance is a satisfying completion (valid when OK).
	Instance *relational.Instance
	// Edits lists soft preferences the solver had to override to succeed.
	Edits []Edit
	// Feedback carries blame on failure (never on an indeterminate stop).
	Feedback *Feedback
}

// run executes the shared solve → minimize pipeline of the completion
// workflows (Algs. 1–2, Fig. 8), degrading faithfully: an Unknown from
// either phase yields an indeterminate result rather than a fabricated
// unsat core or bogus edit blame. One-shot workspaces harden their
// assumptions into clauses before minimising; reusable ones keep them as
// assumptions so the session stays incrementally reusable.
func (ws *workspace) run(ctx context.Context, b sat.Budget) *Result {
	switch ws.solve(ctx, b) {
	case sat.Sat:
	case sat.Unknown:
		return &Result{Indeterminate: true, Stop: ws.stop()}
	default:
		return &Result{Feedback: &Feedback{Core: ws.core(ctx, b)}}
	}
	if !ws.reusable {
		ws.harden()
	}
	res := ws.minimize(ctx, b)
	switch res.Status {
	case sat.Sat:
		return &Result{OK: true, Instance: ws.instance(), Edits: ws.edits(res.Model), Stop: res.Stats.Stop}
	case sat.Unknown:
		// The minimisation could not even re-establish the model the
		// solve phase found before its budget ran out.
		return &Result{Indeterminate: true, Stop: res.Stats.Stop}
	default:
		// Cannot happen: harden preserves the satisfiable assumption set.
		return &Result{Feedback: &Feedback{Core: ws.core(ctx, b)}}
	}
}

// LocalConsistency implements Alg. 1: can the subject's partial offer be
// completed — with every other party fully free — so that the subject's
// own goals hold? On success the returned instance is one such completion,
// chosen to deviate minimally from the subject's soft preferences. On
// failure the feedback core blames goal rows and fixed configuration
// groups.
func LocalConsistency(sys *encode.System, subject *Party, others []*Party) *Result {
	return LocalConsistencyCtx(context.Background(), sys, subject, others, sat.Budget{})
}

// LocalConsistencyCtx is LocalConsistency under a cancellation context and
// a solver work budget; on exhaustion the result is Indeterminate.
func LocalConsistencyCtx(ctx context.Context, sys *encode.System, subject *Party, others []*Party, b sat.Budget) *Result {
	return (*SolveCache)(nil).LocalConsistencyCtx(ctx, sys, subject, others, b)
}

// Reconcile implements Alg. 2: complete every party's partial offer so
// that the union of configurations satisfies the union of goals. On
// success the instance assigns every party's relations, deviating
// minimally from all soft preferences; the per-party configurations are
// recovered with the parties' adopt/decode helpers. On failure the
// feedback core names the conflicting goals and configuration groups of
// all parties — the cross-party blame that distinguishes multi-party
// reconciliation from single-party synthesis (Fig. 6).
func Reconcile(sys *encode.System, parties []*Party) *Result {
	return ReconcileCtx(context.Background(), sys, parties, sat.Budget{})
}

// ReconcileCtx is Reconcile under a cancellation context and a solver work
// budget; on exhaustion the result is Indeterminate (never a bogus core).
func ReconcileCtx(ctx context.Context, sys *encode.System, parties []*Party, b sat.Budget) *Result {
	return (*SolveCache)(nil).ReconcileCtx(ctx, sys, parties, b)
}

// ComputeEnvelope implements Alg. 3 for one recipient: the conjunction of
// every other party's goals, modulo those parties' concrete settings,
// expressed over the recipient's domain. With one sender this is the
// paper's E_{A→B}; with several it is the Sec. 7 joint envelope
// E_{A,B,…→C}, obtained by multiple passes of substitution (here: one
// substitution under the merged senders' settings).
func ComputeEnvelope(sys *encode.System, recipient *Party, senders []*Party) *envelope.Envelope {
	env, _ := ComputeEnvelopeCtx(context.Background(), sys, recipient, senders)
	return env
}

// ComputeEnvelopeCtx is ComputeEnvelope under a cancellation context.
// Envelope computation is pure rewriting — no solver calls, no budget to
// exhaust — so the context gates entry: an already-cancelled context
// returns its error and a nil envelope instead of starting the rewrite.
func ComputeEnvelopeCtx(ctx context.Context, sys *encode.System, recipient *Party, senders []*Party) (*envelope.Envelope, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	merged := make(map[*relational.Relation]*relational.TupleSet)
	var goalFs []relational.Formula
	var names []string
	for _, s := range senders {
		names = append(names, s.Name)
		goalFs = append(goalFs, s.GoalFormulas()...)
		for r, ts := range s.Fixed() {
			merged[r] = ts
		}
	}
	// Never substitute the recipient's own relations, even if a sender's
	// map mentions them (e.g. shared structure adjacent to exposure).
	for _, r := range recipient.Domain {
		delete(merged, r)
	}
	return envelope.Compute(
		strings.Join(names, ","), recipient.Name,
		goalFs, merged, recipient.Domain, sys.Universe,
		envelope.Options{Shared: sys.SharedTupleSets()},
	), nil
}

// CheckCandidate implements the first half of the Fig. 8 revision aid: does
// the party's current concrete configuration satisfy the received envelope
// — and, when withOwnGoals is set, its own goals on the composed system
// formed with the other parties' current configurations? It returns the
// failing formulas as blame.
func CheckCandidate(sys *encode.System, p *Party, env *envelope.Envelope, withOwnGoals bool, others ...*Party) (bool, []relational.Formula) {
	inst := instanceFor(sys, append([]*Party{p}, others...)...)
	failing := env.Failing(inst)
	if withOwnGoals {
		for _, g := range p.Goals {
			if !relational.Eval(g.Formula, inst) {
				failing = append(failing, g.Formula)
			}
		}
	}
	return len(failing) == 0, failing
}

// instanceFor builds the concrete instance of structure plus the given
// parties' current configurations (all other relations empty).
func instanceFor(sys *encode.System, parties ...*Party) *relational.Instance {
	b := sys.NewBounds()
	inst := relational.NewInstance(sys.Universe)
	for _, r := range b.Relations() {
		inst.Set(r, b.Lower(r))
	}
	for _, p := range parties {
		for r, ts := range p.Fixed() {
			inst.Set(r, ts)
		}
	}
	return inst
}

// MinimalEdit implements the second half of Fig. 8: complete the party's
// offer to satisfy the given constraints (typically a received envelope
// plus the party's own goals), minimising deviation from the party's soft
// preferences. The party's fixed settings are enforced, as are the other
// parties' standing offers (their fixed knobs; their soft knobs and holes
// stay open); on failure the core blames the conflicting fragments.
func MinimalEdit(sys *encode.System, p *Party, constraints []relational.Formula, others ...*Party) *Result {
	return MinimalEditCtx(context.Background(), sys, p, constraints, sat.Budget{}, others...)
}

// MinimalEditCtx is MinimalEdit under a cancellation context and a solver
// work budget. An interrupted minimisation degrades to the best valid
// completion found (OK with Stop recorded); exhaustion before any model
// yields an Indeterminate result.
func MinimalEditCtx(ctx context.Context, sys *encode.System, p *Party, constraints []relational.Formula, b sat.Budget, others ...*Party) *Result {
	return (*SolveCache)(nil).MinimalEditCtx(ctx, sys, p, constraints, b, others...)
}

// GoalsCompatible implements the second envelope use of Sec. 3: comparing
// a received envelope with the recipient's goals (rather than its
// configuration). It asks whether ANY configuration of the recipient's
// domain satisfies both the envelope and the recipient's goals, given the
// senders' current settings (which are substituted into the recipient's
// goals, mirroring Alg. 3). If not, the recipient's goals themselves must
// change — the situation that forces the Fig. 4 revision — and the core
// blames the irreconcilable parts.
func GoalsCompatible(sys *encode.System, recipient *Party, env *envelope.Envelope, senders ...*Party) *Result {
	return GoalsCompatibleCtx(context.Background(), sys, recipient, env, sat.Budget{}, senders...)
}

// GoalsCompatibleCtx is GoalsCompatible under a cancellation context and a
// solver work budget; on exhaustion the result is Indeterminate.
func GoalsCompatibleCtx(ctx context.Context, sys *encode.System, recipient *Party, env *envelope.Envelope, b sat.Budget, senders ...*Party) *Result {
	merged := make(map[*relational.Relation]*relational.TupleSet)
	for _, s := range senders {
		for r, ts := range s.Fixed() {
			merged[r] = ts
		}
	}
	for _, r := range recipient.Domain {
		delete(merged, r)
	}
	ws := newWorkspace(sys, []partySpec{{party: recipient}}, false) // fully free
	ws.addNamed(recipient.Name+"/envelope", ws.ss.Lit(env.Formula()))
	for _, g := range recipient.Goals {
		f := relational.Substitute(g.Formula, merged)
		ws.addNamed(recipient.Name+"/"+g.Name, ws.ss.Lit(f))
	}
	switch ws.solve(ctx, b) {
	case sat.Sat:
		return &Result{OK: true, Instance: ws.instance()}
	case sat.Unknown:
		return &Result{Indeterminate: true, Stop: ws.stop()}
	default:
		return &Result{Feedback: &Feedback{Core: ws.core(ctx, b)}}
	}
}

// SynthesizeMonolithic is the Fig. 6 baseline: traditional single-step
// synthesis over the union of all parties' goals, with every setting a
// hole and no notion of offers, softness, envelopes or negotiation. On the
// paper's running conflict it simply fails (the union of the property sets
// is unsatisfiable, Sec. 2) — the behaviour the multi-party workflows are
// designed to improve on.
func SynthesizeMonolithic(sys *encode.System, parties []*Party) *Result {
	return SynthesizeMonolithicCtx(context.Background(), sys, parties, sat.Budget{})
}

// SynthesizeMonolithicCtx is SynthesizeMonolithic under a cancellation
// context and a solver work budget.
func SynthesizeMonolithicCtx(ctx context.Context, sys *encode.System, parties []*Party, b sat.Budget) *Result {
	specs := make([]partySpec, len(parties))
	for i, p := range parties {
		specs[i] = partySpec{party: p, includeGoals: true}
	}
	ws := newWorkspace(sys, specs, false)
	switch ws.solve(ctx, b) {
	case sat.Sat:
		return &Result{OK: true, Instance: ws.instance()}
	case sat.Unknown:
		return &Result{Indeterminate: true, Stop: ws.stop()}
	default:
		return &Result{Feedback: &Feedback{Core: ws.core(ctx, b)}}
	}
}
