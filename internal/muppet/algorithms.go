package muppet

import (
	"fmt"
	"strings"

	"muppet/internal/encode"
	"muppet/internal/envelope"
	"muppet/internal/relational"
	"muppet/internal/sat"
)

// Edit is one flip of a soft-constrained knob: the minimal-edit feedback
// of Sec. 4.3.
type Edit struct {
	Party string
	Knob  encode.Knob
	Add   bool // true: add the entry; false: remove it
}

func (e Edit) String() string {
	verb := "remove"
	if e.Add {
		verb = "add"
	}
	return fmt.Sprintf("%s: %s %s", e.Party, verb, e.Knob)
}

// Feedback explains a failed check: an unsatisfiable core naming the goals
// and configuration fragments in conflict (Sec. 4.3's "unsatisfiable core
// with blame information").
type Feedback struct {
	Core []string
}

func (f *Feedback) String() string {
	if f == nil || len(f.Core) == 0 {
		return "no feedback"
	}
	return "conflicting constraints:\n  " + strings.Join(f.Core, "\n  ")
}

// Result is the outcome of a consistency or reconciliation query.
type Result struct {
	OK bool
	// Instance is a satisfying completion (valid when OK).
	Instance *relational.Instance
	// Edits lists soft preferences the solver had to override to succeed.
	Edits []Edit
	// Feedback carries blame on failure.
	Feedback *Feedback
}

// LocalConsistency implements Alg. 1: can the subject's partial offer be
// completed — with every other party fully free — so that the subject's
// own goals hold? On success the returned instance is one such completion,
// chosen to deviate minimally from the subject's soft preferences. On
// failure the feedback core blames goal rows and fixed configuration
// groups.
func LocalConsistency(sys *encode.System, subject *Party, others []*Party) *Result {
	specs := []partySpec{{party: subject, enforceFixed: true, includeGoals: true}}
	for _, o := range others {
		specs = append(specs, partySpec{party: o})
	}
	ws := newWorkspace(sys, specs)
	if st := ws.solve(); st != sat.Sat {
		return &Result{Feedback: &Feedback{Core: ws.core()}}
	}
	ws.harden()
	res := ws.minimize()
	if res.Status != sat.Sat {
		// Cannot happen: harden preserves the satisfiable assumption set.
		return &Result{Feedback: &Feedback{Core: ws.core()}}
	}
	return &Result{OK: true, Instance: ws.instance(), Edits: ws.edits(res.Model)}
}

// Reconcile implements Alg. 2: complete every party's partial offer so
// that the union of configurations satisfies the union of goals. On
// success the instance assigns every party's relations, deviating
// minimally from all soft preferences; the per-party configurations are
// recovered with the parties' adopt/decode helpers. On failure the
// feedback core names the conflicting goals and configuration groups of
// all parties — the cross-party blame that distinguishes multi-party
// reconciliation from single-party synthesis (Fig. 6).
func Reconcile(sys *encode.System, parties []*Party) *Result {
	specs := make([]partySpec, len(parties))
	for i, p := range parties {
		specs[i] = partySpec{party: p, enforceFixed: true, includeGoals: true}
	}
	ws := newWorkspace(sys, specs)
	if st := ws.solve(); st != sat.Sat {
		return &Result{Feedback: &Feedback{Core: ws.core()}}
	}
	ws.harden()
	res := ws.minimize()
	if res.Status != sat.Sat {
		return &Result{Feedback: &Feedback{Core: ws.core()}}
	}
	return &Result{OK: true, Instance: ws.instance(), Edits: ws.edits(res.Model)}
}

// ComputeEnvelope implements Alg. 3 for one recipient: the conjunction of
// every other party's goals, modulo those parties' concrete settings,
// expressed over the recipient's domain. With one sender this is the
// paper's E_{A→B}; with several it is the Sec. 7 joint envelope
// E_{A,B,…→C}, obtained by multiple passes of substitution (here: one
// substitution under the merged senders' settings).
func ComputeEnvelope(sys *encode.System, recipient *Party, senders []*Party) *envelope.Envelope {
	merged := make(map[*relational.Relation]*relational.TupleSet)
	var goalFs []relational.Formula
	var names []string
	for _, s := range senders {
		names = append(names, s.Name)
		goalFs = append(goalFs, s.GoalFormulas()...)
		for r, ts := range s.Fixed() {
			merged[r] = ts
		}
	}
	// Never substitute the recipient's own relations, even if a sender's
	// map mentions them (e.g. shared structure adjacent to exposure).
	for _, r := range recipient.Domain {
		delete(merged, r)
	}
	return envelope.Compute(
		strings.Join(names, ","), recipient.Name,
		goalFs, merged, recipient.Domain, sys.Universe,
		envelope.Options{Shared: sys.SharedTupleSets()},
	)
}

// CheckCandidate implements the first half of the Fig. 8 revision aid: does
// the party's current concrete configuration satisfy the received envelope
// — and, when withOwnGoals is set, its own goals on the composed system
// formed with the other parties' current configurations? It returns the
// failing formulas as blame.
func CheckCandidate(sys *encode.System, p *Party, env *envelope.Envelope, withOwnGoals bool, others ...*Party) (bool, []relational.Formula) {
	inst := instanceFor(sys, append([]*Party{p}, others...)...)
	failing := env.Failing(inst)
	if withOwnGoals {
		for _, g := range p.Goals {
			if !relational.Eval(g.Formula, inst) {
				failing = append(failing, g.Formula)
			}
		}
	}
	return len(failing) == 0, failing
}

// instanceFor builds the concrete instance of structure plus the given
// parties' current configurations (all other relations empty).
func instanceFor(sys *encode.System, parties ...*Party) *relational.Instance {
	b := sys.NewBounds()
	inst := relational.NewInstance(sys.Universe)
	for _, r := range b.Relations() {
		inst.Set(r, b.Lower(r))
	}
	for _, p := range parties {
		for r, ts := range p.Fixed() {
			inst.Set(r, ts)
		}
	}
	return inst
}

// MinimalEdit implements the second half of Fig. 8: complete the party's
// offer to satisfy the given constraints (typically a received envelope
// plus the party's own goals), minimising deviation from the party's soft
// preferences. The party's fixed settings are enforced, as are the other
// parties' standing offers (their fixed knobs; their soft knobs and holes
// stay open); on failure the core blames the conflicting fragments.
func MinimalEdit(sys *encode.System, p *Party, constraints []relational.Formula, others ...*Party) *Result {
	specs := []partySpec{{party: p, enforceFixed: true, includeGoals: false}}
	for _, o := range others {
		specs = append(specs, partySpec{party: o, enforceFixed: true, includeGoals: false})
	}
	ws := newWorkspace(sys, specs)
	for i, c := range constraints {
		ws.addNamed(fmt.Sprintf("%s/constraint[%d]", p.Name, i), ws.ss.Lit(c))
	}
	if st := ws.solve(); st != sat.Sat {
		return &Result{Feedback: &Feedback{Core: ws.core()}}
	}
	ws.harden()
	res := ws.minimize()
	if res.Status != sat.Sat {
		return &Result{Feedback: &Feedback{Core: ws.core()}}
	}
	return &Result{OK: true, Instance: ws.instance(), Edits: ws.edits(res.Model)}
}

// GoalsCompatible implements the second envelope use of Sec. 3: comparing
// a received envelope with the recipient's goals (rather than its
// configuration). It asks whether ANY configuration of the recipient's
// domain satisfies both the envelope and the recipient's goals, given the
// senders' current settings (which are substituted into the recipient's
// goals, mirroring Alg. 3). If not, the recipient's goals themselves must
// change — the situation that forces the Fig. 4 revision — and the core
// blames the irreconcilable parts.
func GoalsCompatible(sys *encode.System, recipient *Party, env *envelope.Envelope, senders ...*Party) *Result {
	merged := make(map[*relational.Relation]*relational.TupleSet)
	for _, s := range senders {
		for r, ts := range s.Fixed() {
			merged[r] = ts
		}
	}
	for _, r := range recipient.Domain {
		delete(merged, r)
	}
	ws := newWorkspace(sys, []partySpec{{party: recipient}}) // fully free
	ws.addNamed(recipient.Name+"/envelope", ws.ss.Lit(env.Formula()))
	for _, g := range recipient.Goals {
		f := relational.Substitute(g.Formula, merged)
		ws.addNamed(recipient.Name+"/"+g.Name, ws.ss.Lit(f))
	}
	if st := ws.solve(); st != sat.Sat {
		return &Result{Feedback: &Feedback{Core: ws.core()}}
	}
	return &Result{OK: true, Instance: ws.instance()}
}

// SynthesizeMonolithic is the Fig. 6 baseline: traditional single-step
// synthesis over the union of all parties' goals, with every setting a
// hole and no notion of offers, softness, envelopes or negotiation. On the
// paper's running conflict it simply fails (the union of the property sets
// is unsatisfiable, Sec. 2) — the behaviour the multi-party workflows are
// designed to improve on.
func SynthesizeMonolithic(sys *encode.System, parties []*Party) *Result {
	specs := make([]partySpec, len(parties))
	for i, p := range parties {
		specs[i] = partySpec{party: p, includeGoals: true}
	}
	ws := newWorkspace(sys, specs)
	if st := ws.solve(); st != sat.Sat {
		return &Result{Feedback: &Feedback{Core: ws.core()}}
	}
	return &Result{OK: true, Instance: ws.instance()}
}
