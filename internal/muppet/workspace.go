package muppet

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"muppet/internal/boolcirc"
	"muppet/internal/encode"
	"muppet/internal/relational"
	"muppet/internal/sat"
	"muppet/internal/target"
	"muppet/internal/ucore"
)

// partySpec selects how a party participates in one solving workspace.
type partySpec struct {
	party        *Party
	enforceFixed bool // enforce the offer's fixed knobs (via selectors)
	includeGoals bool // assert the party's goals (via selectors)
}

// workspace is one solving context: bounds with every configurable tuple
// free, goals and fixed-knob groups attached to retractable selector
// literals (so unsat cores can blame them), and soft-knob target literals
// for minimal-edit search.
//
// A workspace can be reusable (owned by a SolveCache): its session then
// survives across calls, and reset re-derives the per-call state — goal
// literals hit the translator's caches, unchanged fixed-knob groups reuse
// their memoised selectors, and only genuinely new constraints are ground.
// The bounds from bindFree are configuration-independent (lower empty,
// upper everything), which is what makes one persistent session per
// workspace shape sound.
type workspace struct {
	sys   *encode.System
	ss    *relational.Session
	specs []partySpec
	b     *relational.Bounds
	oms   map[*Party]*encode.OfferMap

	// reusable marks a cache-owned workspace: run must leave the clause
	// set clean (assumption-based minimisation, no hardening).
	reusable bool
	// fixedSels memoises config-group selectors by group content, so a
	// group unchanged since the last call reuses its selector and clauses.
	fixedSels map[string]sat.Lit
	// enc memoises totalizer encodings across minimize calls, keeping the
	// clause set of a long-lived session flat instead of growing by one
	// cardinality encoding per minimisation (allocated lazily, reusable
	// workspaces only — one-shot workspaces are discarded after one run).
	enc *target.EncoderCache

	named    []ucore.Named // goal + config-group selectors
	assumps  []sat.Lit
	softLits []sat.Lit // literal polarity == desired value
	softInfo []softRef

	// rawCore snapshots the failed assumptions of the most recent Unsat
	// solve, so core() can still name blame when the minimisation pass
	// itself runs out of budget.
	rawCore []sat.Lit

	// lastWorkers records per-worker stats of the most recent portfolio
	// solve, for observability.
	lastWorkers []sat.WorkerStats

	// lastUsed is the owning SolveCache's logical clock at the most recent
	// use, ordering LRU eviction. Unused (zero) on one-shot workspaces.
	lastUsed int64

	// groupsKept and groupsNew count, cumulatively across this session's
	// lifetime, the selector-guarded config groups reused verbatim (memo
	// hits in enforceFixed) vs. ground fresh. A delta rebase brackets a
	// workflow call with probes of these to report how much of the warm
	// CNF one revision step kept.
	groupsKept int64
	groupsNew  int64
}

type softRef struct {
	party *Party
	info  encode.KnobInfo
}

func newWorkspace(sys *encode.System, specs []partySpec, reusable bool) *workspace {
	b := sys.NewBounds()
	ws := &workspace{
		sys:       sys,
		specs:     specs,
		b:         b,
		reusable:  reusable,
		oms:       make(map[*Party]*encode.OfferMap),
		fixedSels: make(map[string]sat.Lit),
	}
	// Bind every party's relations before the session is built: the
	// translator allocates its relation variables eagerly at construction.
	ws.bindOffers()
	cfg := EncodingConfig()
	satOpts := sat.Options{DisableSimp: cfg.NoPreprocess}
	satOpts.VivifyPropBudget, satOpts.BVETickPeriod = InprocessTuning()
	if !reusable {
		// A one-shot workspace hardens its whole problem before the first
		// Solve, so preprocessing runs unconditionally there: once, early,
		// on the complete database — its cheapest and most effective point.
		// Deferring it behind a size floor mis-fires badly (a pass landing
		// mid-minimisation on a grown database costs 3× more, and payoff
		// tracks search difficulty, not clause count: services=12 one-shot
		// reconcile is 0.24 s with the pass vs 1.2 s without), while the
		// worst case of always running it is a few ms at walkthrough scale.
		// Cache-owned sessions keep the solver's default floor: small warm
		// sessions skip the pass, large ones amortise it across queries.
		satOpts.SimpMinClauses = -1
	}
	ws.ss = relational.NewSessionWithOptions(b,
		boolcirc.New(),
		sat.NewWithOptions(satOpts),
		boolcirc.CNFOptions{NoPolarity: cfg.NoPolarity, NoSweep: cfg.NoSweep})
	ws.populate()
	return ws
}

// Encoding is the package-wide encoding pipeline configuration for
// workflow solves. The zero value — polarity-aware Tseitin, AIG sweep,
// and CNF preprocessing all on — is the default; the switches exist for
// ablation runs and as an escape hatch (wired to the muppet CLI's
// -encoding flag). Like the portfolio width it is stored atomically so
// concurrent workflow queries may read it while a test or the CLI
// configures it; it takes effect for workspaces built after the call.
type Encoding struct {
	// NoPolarity emits full Tseitin biconditionals for every gate.
	NoPolarity bool
	// NoSweep disables AIG sweeping before emission.
	NoSweep bool
	// NoPreprocess disables CNF preprocessing in the solver.
	NoPreprocess bool
}

const (
	encNoPolarity uint32 = 1 << iota
	encNoSweep
	encNoPreprocess
)

var encodingFlags atomic.Uint32

func (e Encoding) pack() uint32 {
	var f uint32
	if e.NoPolarity {
		f |= encNoPolarity
	}
	if e.NoSweep {
		f |= encNoSweep
	}
	if e.NoPreprocess {
		f |= encNoPreprocess
	}
	return f
}

// SetEncoding installs the encoding configuration for subsequently built
// workspaces and returns the previous one.
func SetEncoding(e Encoding) Encoding {
	return unpackEncoding(encodingFlags.Swap(e.pack()))
}

// EncodingConfig reports the current encoding configuration.
func EncodingConfig() Encoding {
	return unpackEncoding(encodingFlags.Load())
}

func unpackEncoding(f uint32) Encoding {
	return Encoding{
		NoPolarity:   f&encNoPolarity != 0,
		NoSweep:      f&encNoSweep != 0,
		NoPreprocess: f&encNoPreprocess != 0,
	}
}

// Inprocessing tuning for workspace solvers, stored atomically like the
// encoding flags so benchmarks and the CLI can reconfigure a running
// process. Zero means the solver default; a negative budget disables
// vivification entirely.
var (
	tunVivifyBudget atomic.Int64
	tunBVEPeriod    atomic.Int64
)

// SetInprocessTuning installs the vivification propagation budget and the
// BVE tick period for subsequently built workspaces (0 = solver default,
// negative budget disables vivification) and returns the previous pair.
func SetInprocessTuning(vivifyPropBudget, bveTickPeriod int64) (prevVivify, prevBVE int64) {
	return tunVivifyBudget.Swap(vivifyPropBudget), tunBVEPeriod.Swap(bveTickPeriod)
}

// InprocessTuning reports the current inprocessing tuning pair.
func InprocessTuning() (vivifyPropBudget, bveTickPeriod int64) {
	return tunVivifyBudget.Load(), tunBVEPeriod.Load()
}

// bindOffers (re-)binds each party's free bounds and captures the offer
// maps reflecting the party's current configuration. The bounds content is
// configuration-independent (lower empty, upper everything), so re-binding
// on a live session is an idempotent no-op on the solver side; only the
// returned offer maps change.
func (ws *workspace) bindOffers() {
	for _, sp := range ws.specs {
		ws.oms[sp.party] = sp.party.bindFree(ws.b)
	}
}

// populate derives the per-call state from the parties' current offers and
// goals. On a fresh workspace everything grounds for the first time; on a
// reused one the translator and selector memos make it incremental.
func (ws *workspace) populate() {
	for _, sp := range ws.specs {
		if sp.includeGoals {
			for _, g := range sp.party.Goals {
				lit := ws.ss.Lit(g.Formula)
				ws.addNamed(sp.party.Name+"/"+g.Name, lit)
			}
		}
		om := ws.oms[sp.party]
		if sp.enforceFixed {
			ws.enforceFixed(sp.party, om)
		}
		for _, ki := range om.SoftInfos() {
			lit, ok := ws.ss.TupleLit(ki.Rel, ki.Tuple)
			if !ok {
				continue
			}
			if !ki.Desired {
				lit = lit.Not()
			}
			ws.softLits = append(ws.softLits, lit)
			ws.softInfo = append(ws.softInfo, softRef{party: sp.party, info: ki})
		}
	}
}

// reset clears the per-call state and re-derives it from the parties'
// current offers, leaving the live session (circuit, CNF, learnt clauses)
// in place. Selectors of groups whose content changed simply stop being
// assumed; their guarded clauses go inert.
func (ws *workspace) reset() {
	ws.named = ws.named[:0]
	ws.assumps = ws.assumps[:0]
	ws.softLits = ws.softLits[:0]
	ws.softInfo = ws.softInfo[:0]
	ws.rawCore = nil
	ws.lastWorkers = nil
	ws.bindOffers()
	ws.populate()
}

// enforceFixed groups a party's fixed knobs by (policy, field) and guards
// each group with one selector, giving blame at the granularity an
// administrator actually edits.
func (ws *workspace) enforceFixed(p *Party, om *encode.OfferMap) {
	type groupKey struct {
		policy string
		field  encode.Field
	}
	groups := make(map[groupKey][]encode.KnobInfo)
	var order []groupKey
	for _, ki := range om.Infos {
		if ki.State != encode.StateFixed {
			continue
		}
		k := groupKey{ki.Knob.Policy, ki.Knob.Field}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], ki)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].policy != order[j].policy {
			return order[i].policy < order[j].policy
		}
		return order[i].field < order[j].field
	})
	for _, k := range order {
		var lits []sat.Lit
		for _, ki := range groups[k] {
			lit, ok := ws.ss.TupleLit(ki.Rel, ki.Tuple)
			if !ok {
				continue
			}
			if !ki.Desired {
				lit = lit.Not()
			}
			lits = append(lits, lit)
		}
		// Memoise the selector by the group's exact content: a group
		// unchanged since a previous call (same knobs, same desired
		// values) reuses its selector and guarded clauses verbatim.
		var kb strings.Builder
		fmt.Fprintf(&kb, "%s/%s.%s:", p.Name, k.policy, k.field)
		for _, l := range lits {
			fmt.Fprintf(&kb, "%d;", l)
		}
		key := kb.String()
		sel, seen := ws.fixedSels[key]
		if seen {
			ws.groupsKept++
		} else {
			ws.groupsNew++
		}
		if !seen {
			sel = sat.PosLit(ws.ss.Solver().NewVar())
			// The selector is assumed across calls and named in cores;
			// preprocessing must not eliminate it between uses.
			ws.ss.Solver().FreezeLit(sel)
			for _, l := range lits {
				ws.ss.Solver().AddClause(sel.Not(), l)
			}
			ws.fixedSels[key] = sel
		}
		ws.addNamed(fmt.Sprintf("%s/config[%s.%s]", p.Name, k.policy, k.field), sel)
	}
}

func (ws *workspace) addNamed(name string, lit sat.Lit) {
	ws.named = append(ws.named, ucore.Named{Name: name, Lit: lit})
	ws.assumps = append(ws.assumps, lit)
}

// portfolioWorkers is the package-wide portfolio width for workflow
// solves: 0 or 1 solves sequentially, n > 1 races n diversified solver
// configurations (wired to the muppet CLI's -portfolio flag, like the
// target package's default strategy). Atomic so concurrent workflow
// queries may read it while a test or the CLI configures it.
var portfolioWorkers atomic.Int32

// SetPortfolioWorkers sets the portfolio width for all workflow solves
// and returns the previous value. Width n ≤ 1 means sequential solving.
func SetPortfolioWorkers(n int) int {
	return int(portfolioWorkers.Swap(int32(n)))
}

// PortfolioWorkers reports the current portfolio width.
func PortfolioWorkers() int { return int(portfolioWorkers.Load()) }

// solve checks satisfiability under all named assumptions, within the
// given budget. Unknown means the budget or context stopped the solver:
// neither a model nor a core exists, and callers must not fabricate
// either (see stop for the reason). With a portfolio width configured,
// the initial verdict is raced across diversified solver clones; the
// verdict is identical to a sequential solve's either way.
func (ws *workspace) solve(ctx context.Context, b sat.Budget) sat.Status {
	var st sat.Status
	if n := PortfolioWorkers(); n > 1 {
		pr := ws.ss.SolvePortfolio(ctx, b, sat.DefaultPortfolio(n), ws.assumps...)
		st = pr.Status
		ws.lastWorkers = pr.Workers
	} else {
		st = ws.ss.SolveCtx(ctx, b, ws.assumps...)
	}
	if st == sat.Unsat {
		ws.rawCore = ws.ss.Solver().Core()
	}
	return st
}

// stop reports why the most recent solver call gave up.
func (ws *workspace) stop() target.StopReason {
	return target.FromSat(ws.ss.Solver().StopReason())
}

// harden turns the named assumptions into permanent clauses, enabling
// minimisation (which solves without assumptions).
func (ws *workspace) harden() {
	for _, l := range ws.assumps {
		ws.ss.Solver().AddClause(l)
	}
}

// assertHard grounds and permanently asserts extra formulas (e.g. a
// received envelope).
func (ws *workspace) assertHard(fs ...relational.Formula) {
	for _, f := range fs {
		ws.ss.Assert(f)
	}
}

// minimize finds the model closest to the soft-knob preferences. On a
// one-shot workspace, call after harden; on a reusable one the named
// assumptions are threaded into every probe, so the session's clause set
// stays clean for later calls. Distance bounds are always retractable and
// the result is always canonicalized: the returned model is the unique
// lexicographically-preferred minimal one, so one-shot, cached-cold and
// cached-warm runs of the same query yield byte-identical models — the
// idempotence a long-lived mediation daemon serves on top of. On budget
// exhaustion mid-search it degrades to the best model found
// (Result.Optimal false, Stats.Stop set).
func (ws *workspace) minimize(ctx context.Context, b sat.Budget) target.Result {
	opts := target.Options{Context: ctx, Budget: b, Retractable: true, Canonical: true}
	if ws.reusable {
		opts.Assumptions = ws.assumps
		if ws.enc == nil {
			ws.enc = target.NewEncoderCache()
		}
		opts.Encoder = ws.enc
	}
	return target.Minimize(ws.ss.Solver(), ws.softLits, opts)
}

// edits reports which soft preferences the current solver model overrides.
func (ws *workspace) edits(model []bool) []Edit {
	var out []Edit
	for i, lit := range ws.softLits {
		got := model[lit.Var()] != lit.Neg()
		if !got {
			ref := ws.softInfo[i]
			out = append(out, Edit{
				Party: ref.party.Name,
				Knob:  ref.info.Knob,
				Add:   !ref.info.Desired,
			})
		}
	}
	return out
}

// instance decodes the current model.
func (ws *workspace) instance() *relational.Instance { return ws.ss.Instance() }

// core extracts a minimised blame core over the named constraints. Call
// only after solve returned Unsat. If the minimisation pass runs out of
// budget before it can even re-establish unsatisfiability, the snapshot
// of the failed assumptions from that Unsat solve serves as an
// unminimised fallback, so a proven conflict is never reported blameless.
func (ws *workspace) core(ctx context.Context, b sat.Budget) []string {
	core := ucore.FindCtx(ctx, b, ws.ss.Solver(), ws.named)
	if core == nil {
		if ws.ss.Solver().StopReason() == sat.StopNone || len(ws.rawCore) == 0 {
			return nil
		}
		inRaw := make(map[sat.Lit]bool, len(ws.rawCore))
		for _, l := range ws.rawCore {
			inRaw[l] = true
		}
		for _, n := range ws.named {
			if inRaw[n.Lit] {
				core = append(core, n)
			}
		}
	}
	names := make([]string, len(core))
	for i, n := range core {
		names[i] = n.Name
	}
	sort.Strings(names)
	return names
}
