package muppet

import (
	"context"
	"fmt"
	"sort"

	"muppet/internal/encode"
	"muppet/internal/relational"
	"muppet/internal/sat"
	"muppet/internal/target"
	"muppet/internal/ucore"
)

// partySpec selects how a party participates in one solving workspace.
type partySpec struct {
	party        *Party
	enforceFixed bool // enforce the offer's fixed knobs (via selectors)
	includeGoals bool // assert the party's goals (via selectors)
}

// workspace is one solving context: bounds with every configurable tuple
// free, goals and fixed-knob groups attached to retractable selector
// literals (so unsat cores can blame them), and soft-knob target literals
// for minimal-edit search.
type workspace struct {
	sys   *encode.System
	ss    *relational.Session
	specs []partySpec
	oms   map[*Party]*encode.OfferMap

	named    []ucore.Named // goal + config-group selectors
	assumps  []sat.Lit
	softLits []sat.Lit // literal polarity == desired value
	softInfo []softRef

	// rawCore snapshots the failed assumptions of the most recent Unsat
	// solve, so core() can still name blame when the minimisation pass
	// itself runs out of budget.
	rawCore []sat.Lit
}

type softRef struct {
	party *Party
	info  encode.KnobInfo
}

func newWorkspace(sys *encode.System, specs []partySpec) *workspace {
	b := sys.NewBounds()
	ws := &workspace{sys: sys, specs: specs, oms: make(map[*Party]*encode.OfferMap)}
	for _, sp := range specs {
		ws.oms[sp.party] = sp.party.bindFree(b)
	}
	ws.ss = relational.NewSession(b)

	for _, sp := range specs {
		if sp.includeGoals {
			for _, g := range sp.party.Goals {
				lit := ws.ss.Lit(g.Formula)
				ws.addNamed(sp.party.Name+"/"+g.Name, lit)
			}
		}
		om := ws.oms[sp.party]
		if sp.enforceFixed {
			ws.enforceFixed(sp.party, om)
		}
		for _, ki := range om.SoftInfos() {
			lit, ok := ws.ss.TupleLit(ki.Rel, ki.Tuple)
			if !ok {
				continue
			}
			if !ki.Desired {
				lit = lit.Not()
			}
			ws.softLits = append(ws.softLits, lit)
			ws.softInfo = append(ws.softInfo, softRef{party: sp.party, info: ki})
		}
	}
	return ws
}

// enforceFixed groups a party's fixed knobs by (policy, field) and guards
// each group with one selector, giving blame at the granularity an
// administrator actually edits.
func (ws *workspace) enforceFixed(p *Party, om *encode.OfferMap) {
	type groupKey struct {
		policy string
		field  encode.Field
	}
	groups := make(map[groupKey][]encode.KnobInfo)
	var order []groupKey
	for _, ki := range om.Infos {
		if ki.State != encode.StateFixed {
			continue
		}
		k := groupKey{ki.Knob.Policy, ki.Knob.Field}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], ki)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].policy != order[j].policy {
			return order[i].policy < order[j].policy
		}
		return order[i].field < order[j].field
	})
	for _, k := range order {
		sel := sat.PosLit(ws.ss.Solver().NewVar())
		for _, ki := range groups[k] {
			lit, ok := ws.ss.TupleLit(ki.Rel, ki.Tuple)
			if !ok {
				continue
			}
			if !ki.Desired {
				lit = lit.Not()
			}
			ws.ss.Solver().AddClause(sel.Not(), lit)
		}
		ws.addNamed(fmt.Sprintf("%s/config[%s.%s]", p.Name, k.policy, k.field), sel)
	}
}

func (ws *workspace) addNamed(name string, lit sat.Lit) {
	ws.named = append(ws.named, ucore.Named{Name: name, Lit: lit})
	ws.assumps = append(ws.assumps, lit)
}

// solve checks satisfiability under all named assumptions, within the
// given budget. Unknown means the budget or context stopped the solver:
// neither a model nor a core exists, and callers must not fabricate
// either (see stop for the reason).
func (ws *workspace) solve(ctx context.Context, b sat.Budget) sat.Status {
	st := ws.ss.SolveCtx(ctx, b, ws.assumps...)
	if st == sat.Unsat {
		ws.rawCore = ws.ss.Solver().Core()
	}
	return st
}

// stop reports why the most recent solver call gave up.
func (ws *workspace) stop() target.StopReason {
	return target.FromSat(ws.ss.Solver().StopReason())
}

// harden turns the named assumptions into permanent clauses, enabling
// minimisation (which solves without assumptions).
func (ws *workspace) harden() {
	for _, l := range ws.assumps {
		ws.ss.Solver().AddClause(l)
	}
}

// assertHard grounds and permanently asserts extra formulas (e.g. a
// received envelope).
func (ws *workspace) assertHard(fs ...relational.Formula) {
	for _, f := range fs {
		ws.ss.Assert(f)
	}
}

// minimize finds the model closest to the soft-knob preferences. Call
// after harden (or when there are no assumptions). On budget exhaustion
// mid-search it degrades to the best model found (Result.Optimal false,
// Stats.Stop set).
func (ws *workspace) minimize(ctx context.Context, b sat.Budget) target.Result {
	return target.Minimize(ws.ss.Solver(), ws.softLits,
		target.Options{Context: ctx, Budget: b})
}

// edits reports which soft preferences the current solver model overrides.
func (ws *workspace) edits(model []bool) []Edit {
	var out []Edit
	for i, lit := range ws.softLits {
		got := model[lit.Var()] != lit.Neg()
		if !got {
			ref := ws.softInfo[i]
			out = append(out, Edit{
				Party: ref.party.Name,
				Knob:  ref.info.Knob,
				Add:   !ref.info.Desired,
			})
		}
	}
	return out
}

// instance decodes the current model.
func (ws *workspace) instance() *relational.Instance { return ws.ss.Instance() }

// core extracts a minimised blame core over the named constraints. Call
// only after solve returned Unsat. If the minimisation pass runs out of
// budget before it can even re-establish unsatisfiability, the snapshot
// of the failed assumptions from that Unsat solve serves as an
// unminimised fallback, so a proven conflict is never reported blameless.
func (ws *workspace) core(ctx context.Context, b sat.Budget) []string {
	core := ucore.FindCtx(ctx, b, ws.ss.Solver(), ws.named)
	if core == nil {
		if ws.ss.Solver().StopReason() == sat.StopNone || len(ws.rawCore) == 0 {
			return nil
		}
		inRaw := make(map[sat.Lit]bool, len(ws.rawCore))
		for _, l := range ws.rawCore {
			inRaw[l] = true
		}
		for _, n := range ws.named {
			if inRaw[n.Lit] {
				core = append(core, n)
			}
		}
	}
	names := make([]string, len(core))
	for i, n := range core {
		names[i] = n.Name
	}
	sort.Strings(names)
	return names
}
