package muppet

import (
	"context"

	"muppet/internal/delta"
	"muppet/internal/encode"
	"muppet/internal/sat"
)

// This file is the solving side of delta re-reconciliation (package
// delta computes the diff; this applies it). A Rebase runs an ordinary
// workflow call against the cache — so verdicts, models, and blame are
// byte-identical to any other path by construction — and brackets it with
// counter probes that report how incremental the call actually was:
// selector-guarded config groups kept vs. re-asserted, and eliminated
// variables the re-assertions restored (simp.Restore via the solver's
// transparent AddClause path).

// Snapshot captures the delta-comparable content of a party set over one
// system: the universe the system grounded, and every party's goals and
// concrete fixed settings, all rendered to strings (see package delta for
// why pointers would be wrong across two compiled Systems).
func Snapshot(sys *encode.System, parties []*Party) *delta.Revision {
	rev := &delta.Revision{Universe: sys.Universe.Atoms()}
	for _, p := range parties {
		pr := delta.PartyRev{Name: p.Name, Fixed: make(map[string][]string)}
		for _, g := range p.Goals {
			pr.Goals = append(pr.Goals, delta.Goal{Name: g.Name, Formula: g.Formula.String()})
		}
		for r, ts := range p.Fixed() {
			rendered := make([]string, 0, ts.Len())
			for _, t := range ts.Tuples() {
				rendered = append(rendered, t.String(ts.Universe()))
			}
			pr.Fixed[r.Name()] = rendered
		}
		rev.Parties = append(rev.Parties, pr)
	}
	return rev
}

// DeltaStats reports how much of the warm solving state one revision step
// reused, alongside the content diff that drove it.
type DeltaStats struct {
	// Cold marks a rebase that fell back to a cold build — an incompatible
	// plan, a nil cache, or no live session for the workspace shape.
	// Reason says which.
	Cold   bool
	Reason string

	// GroupsKept counts selector-guarded config groups reused verbatim
	// from the warm session; GroupsReasserted the groups ground fresh
	// because their content changed (or everything, on a cold build).
	GroupsKept       int64
	GroupsReasserted int64

	// Goal and atom counts from the delta plan.
	GoalsKept    int
	GoalsAdded   int
	GoalsRemoved int
	AtomsChanged int

	// Restored counts variables the CNF preprocessor un-eliminated
	// because a re-asserted group's clauses touched them.
	Restored int64
}

// deltaProbe snapshots the cumulative counters a rebase brackets.
type deltaProbe struct {
	kept, reasserted int64
	restored         int64
	sessions         int64
}

func (c *SolveCache) probe() deltaProbe {
	if c == nil {
		return deltaProbe{}
	}
	p := deltaProbe{sessions: c.sessions}
	for _, ws := range c.entries {
		p.kept += ws.groupsKept
		p.reasserted += ws.groupsNew
		p.restored += ws.ss.Solver().Stats.SimpRestored
	}
	return p
}

// Rebase runs fn — one workflow call served from this cache — with delta
// instrumentation, attributing plan's content diff and the cache's
// incremental counters to the returned stats. plan may be nil (counters
// only). An incompatible plan, a nil receiver, or a session built fresh
// during fn marks the stats Cold; fn runs either way, so the caller
// always gets its answer.
func (c *SolveCache) Rebase(plan *delta.Plan, fn func()) DeltaStats {
	var ds DeltaStats
	if plan != nil {
		ds.GoalsKept = plan.GoalsKept
		ds.GoalsAdded = len(plan.GoalsAdded)
		ds.GoalsRemoved = len(plan.GoalsRemoved)
		ds.AtomsChanged = len(plan.AtomsChanged)
		if !plan.Compatible {
			ds.Cold = true
			ds.Reason = plan.Reason
		}
	}
	if c == nil {
		if !ds.Cold {
			ds.Cold = true
			ds.Reason = "no warm cache"
		}
		fn()
		return ds
	}
	before := c.probe()
	fn()
	after := c.probe()
	ds.GroupsKept = after.kept - before.kept
	ds.GroupsReasserted = after.reasserted - before.reasserted
	ds.Restored = after.restored - before.restored
	if after.sessions > before.sessions && !ds.Cold {
		ds.Cold = true
		ds.Reason = "no live session for this workspace shape"
	}
	return ds
}

// RebaseReconcileCtx is ReconcileCtx bracketed by Rebase instrumentation:
// the Alg. 2 reconciliation of the (new-revision) parties served from
// this cache's warm sessions, with stats on how incremental the step was.
// The parties must be built over sys — for a warm rebase, the previous
// revision's System, over which this cache's sessions were ground. The
// result is byte-identical to a cold ReconcileCtx on the same parties.
func (c *SolveCache) RebaseReconcileCtx(ctx context.Context, sys *encode.System, parties []*Party, plan *delta.Plan, b sat.Budget) (*Result, DeltaStats) {
	var res *Result
	ds := c.Rebase(plan, func() {
		res = c.ReconcileCtx(ctx, sys, parties, b)
	})
	return res, ds
}

// RebaseCheckCtx is LocalConsistencyCtx bracketed by Rebase
// instrumentation, for watch-mode serving of the Alg. 1 check.
func (c *SolveCache) RebaseCheckCtx(ctx context.Context, sys *encode.System, subject *Party, others []*Party, plan *delta.Plan, b sat.Budget) (*Result, DeltaStats) {
	var res *Result
	ds := c.Rebase(plan, func() {
		res = c.LocalConsistencyCtx(ctx, sys, subject, others, b)
	})
	return res, ds
}
