package muppet

import (
	"context"
	"sort"
	"testing"

	"muppet/internal/encode"
	"muppet/internal/sat"
)

// mkPartyPair builds a fresh (K8s, Istio) pair over f's system. strict
// selects the irreconcilable Fig. 3 goals instead of the revised Fig. 4
// set.
func mkPartyPair(t testing.TB, f *fixture, strict bool) (*Party, *Party) {
	t.Helper()
	ig := f.istioRevised
	if strict {
		ig = f.istioFig3
	}
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), ig)
	if err != nil {
		t.Fatal(err)
	}
	return k8sParty, istioParty
}

func sortedCore(r *Result) []string {
	if r.Feedback == nil {
		return nil
	}
	out := append([]string(nil), r.Feedback.Core...)
	sort.Strings(out)
	return out
}

func sameStringSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSolveCacheMatchesFresh runs each workflow query twice through one
// SolveCache (cold build, then warm reuse) and compares every observable —
// verdict, edit count, blame core — against the one-shot package-level
// path. Session reuse is a performance feature only.
func TestSolveCacheMatchesFresh(t *testing.T) {
	f := loadFixture(t)
	ctx := context.Background()
	cache := NewSolveCache()

	for round := 0; round < 2; round++ {
		// Reconcilable pair.
		k8sParty, istioParty := mkPartyPair(t, f, false)
		fresh := Reconcile(f.sys, []*Party{k8sParty, istioParty})
		k8sParty2, istioParty2 := mkPartyPair(t, f, false)
		warm := cache.ReconcileCtx(ctx, f.sys, []*Party{k8sParty2, istioParty2}, sat.Budget{})
		if warm.OK != fresh.OK || !warm.OK {
			t.Fatalf("round %d: cached %v, fresh %v", round, warm.OK, fresh.OK)
		}
		if len(warm.Edits) != len(fresh.Edits) {
			t.Fatalf("round %d: cached edit distance %d, fresh %d", round, len(warm.Edits), len(fresh.Edits))
		}

		// Irreconcilable pair: blame must agree.
		k8sParty, istioParty = mkPartyPair(t, f, true)
		fresh = Reconcile(f.sys, []*Party{k8sParty, istioParty})
		k8sParty2, istioParty2 = mkPartyPair(t, f, true)
		warm = cache.ReconcileCtx(ctx, f.sys, []*Party{k8sParty2, istioParty2}, sat.Budget{})
		if warm.OK || fresh.OK {
			t.Fatalf("round %d: strict goals must fail (cached %v, fresh %v)", round, warm.OK, fresh.OK)
		}
		if a, b := sortedCore(warm), sortedCore(fresh); !sameStringSlices(a, b) {
			t.Fatalf("round %d: cached core %v, fresh core %v", round, a, b)
		}

		// Local consistency.
		k8sParty, istioParty = mkPartyPair(t, f, false)
		fresh = LocalConsistency(f.sys, k8sParty, []*Party{istioParty})
		warm = cache.LocalConsistencyCtx(ctx, f.sys, k8sParty, []*Party{istioParty}, sat.Budget{})
		if warm.OK != fresh.OK || !warm.OK {
			t.Fatalf("round %d: consistency cached %v, fresh %v", round, warm.OK, fresh.OK)
		}
	}

	st := cache.Stats()
	if st.Sessions == 0 || st.Reuses == 0 {
		t.Fatalf("expected both builds and reuses, got %+v", st)
	}
	if st.Translation.StructHits+st.Translation.PointerHits == 0 {
		t.Fatalf("expected translation-cache hits on reuse, got %+v", st)
	}
}

// TestSolveCacheShapeReuse checks fresh-but-identical parties land on the
// same live session (the shape-based key), not a new build per party
// object.
func TestSolveCacheShapeReuse(t *testing.T) {
	f := loadFixture(t)
	ctx := context.Background()
	cache := NewSolveCache()
	for i := 0; i < 3; i++ {
		k8sParty, istioParty := mkPartyPair(t, f, false)
		res := cache.ReconcileCtx(ctx, f.sys, []*Party{k8sParty, istioParty}, sat.Budget{})
		if !res.OK {
			t.Fatalf("iteration %d: %v", i, res.Feedback)
		}
	}
	st := cache.Stats()
	if st.Sessions != 1 {
		t.Fatalf("3 identical-shape reconciles built %d sessions, want 1", st.Sessions)
	}
	if st.Reuses != 2 {
		t.Fatalf("reuses = %d, want 2", st.Reuses)
	}
}

// TestSolveCacheConformanceAndNegotiation runs the two composite workflows
// through shared caches and checks the outcomes match their uncached runs,
// end to end (including adopted configurations verified by the runtime
// evaluator in the negotiation case).
func TestSolveCacheConformanceAndNegotiation(t *testing.T) {
	f := loadFixture(t)
	ctx := context.Background()

	provider, tenant := mkPartyPair(t, f, false)
	freshOut := RunConformance(f.sys, provider, tenant)
	cache := NewSolveCache()
	provider2, tenant2 := mkPartyPair(t, f, false)
	cachedOut := cache.RunConformanceCtx(ctx, f.sys, provider2, tenant2, sat.Budget{})
	if cachedOut.Reconciled != freshOut.Reconciled || !cachedOut.Reconciled {
		t.Fatalf("conformance cached %v, fresh %v", cachedOut.Reconciled, freshOut.Reconciled)
	}

	// Negotiation across a shared mediator cache: two successive runs, the
	// second landing on warm sessions.
	shared := NewSolveCache()
	for i := 0; i < 2; i++ {
		k8sParty, istioParty := mkPartyPair(t, f, false)
		out := NewNegotiation(f.sys, k8sParty, istioParty).UseCache(shared).Run()
		if !out.Reconciled {
			t.Fatalf("negotiation %d failed: %v", i, out.Feedback)
		}
	}
	if st := shared.Stats(); st.Reuses == 0 {
		t.Fatalf("second negotiation never reused a session: %+v", st)
	}
}

// TestPortfolioWorkflowDeterminism compares every workflow observable with
// the portfolio enabled against sequential solving: identical verdicts and
// identical blame cores. (Core minimisation itself always runs
// sequentially on the primary solver, which is what makes exact core
// agreement a fair expectation.)
func TestPortfolioWorkflowDeterminism(t *testing.T) {
	f := loadFixture(t)

	run := func() (*Result, *Result) {
		k8sParty, istioParty := mkPartyPair(t, f, false)
		ok := Reconcile(f.sys, []*Party{k8sParty, istioParty})
		k8sParty, istioParty = mkPartyPair(t, f, true)
		bad := Reconcile(f.sys, []*Party{k8sParty, istioParty})
		return ok, bad
	}

	seqOK, seqBad := run()
	prev := SetPortfolioWorkers(3)
	defer SetPortfolioWorkers(prev)
	parOK, parBad := run()

	if seqOK.OK != parOK.OK || !parOK.OK {
		t.Fatalf("sat case: sequential %v, portfolio %v", seqOK.OK, parOK.OK)
	}
	if len(seqOK.Edits) != len(parOK.Edits) {
		t.Fatalf("edit distance: sequential %d, portfolio %d", len(seqOK.Edits), len(parOK.Edits))
	}
	if seqBad.OK || parBad.OK {
		t.Fatal("unsat case must fail under both modes")
	}
	if a, b := sortedCore(seqBad), sortedCore(parBad); !sameStringSlices(a, b) {
		t.Fatalf("cores differ: sequential %v, portfolio %v", a, b)
	}
}

// TestPortfolioNegotiationDeterminism runs the full Fig. 9 negotiation
// with and without the portfolio and compares the outcome shape.
func TestPortfolioNegotiationDeterminism(t *testing.T) {
	f := loadFixture(t)
	run := func() *NegotiationOutcome {
		k8sParty, istioParty := mkPartyPair(t, f, false)
		return NewNegotiation(f.sys, k8sParty, istioParty).Run()
	}
	seq := run()
	prev := SetPortfolioWorkers(4)
	defer SetPortfolioWorkers(prev)
	par := run()
	if seq.Reconciled != par.Reconciled || !par.Reconciled {
		t.Fatalf("sequential %v, portfolio %v", seq.Reconciled, par.Reconciled)
	}
	if seq.Reason != par.Reason {
		t.Fatalf("terminal reason: sequential %v, portfolio %v", seq.Reason, par.Reason)
	}
}

// TestSolveCacheBoundedEviction pins the bounded-cache surface a serving
// process budgets by: Len and ApproxBytes track live sessions, Evict
// drops least-recently-used sessions first, a rebuilt shape answers
// identically, and the nil cache is the valid always-cold degenerate.
func TestSolveCacheBoundedEviction(t *testing.T) {
	f := loadFixture(t)
	ctx := context.Background()
	cache := NewSolveCache()
	if cache.Len() != 0 || cache.ApproxBytes() != 0 || cache.Evict(1) != 0 {
		t.Fatal("fresh cache must be empty")
	}

	// Build two distinct session shapes: consistency, then reconcile.
	k8sParty, istioParty := mkPartyPair(t, f, false)
	if res := cache.LocalConsistencyCtx(ctx, f.sys, k8sParty, []*Party{istioParty}, sat.Budget{}); !res.OK {
		t.Fatal("must be consistent")
	}
	baseline := cache.ReconcileCtx(ctx, f.sys, []*Party{k8sParty, istioParty}, sat.Budget{})
	if !baseline.OK {
		t.Fatal("must reconcile")
	}
	if cache.Len() != 2 {
		t.Fatalf("len %d, want 2 shapes", cache.Len())
	}
	if cache.ApproxBytes() <= 0 {
		t.Fatal("live sessions must report nonzero bytes")
	}

	// Evict one: the LRU consistency session goes, the reconcile session
	// stays warm and keeps answering.
	if n := cache.Evict(1); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if cache.Len() != 1 {
		t.Fatalf("len %d after evict, want 1", cache.Len())
	}
	if ev := cache.Stats().Evictions; ev != 1 {
		t.Fatalf("stats evictions %d, want 1", ev)
	}
	again := cache.ReconcileCtx(ctx, f.sys, []*Party{k8sParty, istioParty}, sat.Budget{})
	if !again.OK || len(again.Edits) != len(baseline.Edits) {
		t.Fatalf("surviving session changed its answer: %v vs %v", again.Edits, baseline.Edits)
	}

	// The evicted shape rebuilds on next use — same verdict, one more
	// session built.
	before := cache.Stats().Sessions
	k8s2, istio2 := mkPartyPair(t, f, false)
	if res := cache.LocalConsistencyCtx(ctx, f.sys, k8s2, []*Party{istio2}, sat.Budget{}); !res.OK {
		t.Fatal("rebuilt shape must still be consistent")
	}
	if cache.Len() != 2 || cache.Stats().Sessions != before+1 {
		t.Fatalf("len %d sessions %d, want rebuild after eviction", cache.Len(), cache.Stats().Sessions)
	}

	// Over-asking drains the cache and stops.
	if n := cache.Evict(10); n != 2 {
		t.Fatalf("evicted %d, want 2", n)
	}
	if cache.Len() != 0 || cache.ApproxBytes() != 0 {
		t.Fatalf("len %d bytes %d after full eviction", cache.Len(), cache.ApproxBytes())
	}

	// The nil cache is always cold and never panics.
	var none *SolveCache
	if none.Len() != 0 || none.ApproxBytes() != 0 || none.Evict(3) != 0 {
		t.Fatal("nil cache must be empty and inert")
	}
}
