package muppet

import (
	"context"
	"fmt"
	"strings"

	"muppet/internal/encode"
	"muppet/internal/relational"
	"muppet/internal/sat"
)

// SolveCache keeps live solving sessions keyed by workspace shape (which
// parties participate and in which role), so repeated workflow calls —
// negotiation rounds, conformance retries, repeated consistency checks —
// become incremental solves on a warm session instead of rebuilding
// bounds, grounding, and CNF from scratch. Learnt clauses carry over;
// they are implied by the problem clauses alone, so they stay sound when
// offers change between calls (changed constraint groups get fresh
// selectors, and stale selectors simply stop being assumed).
//
// A SolveCache is single-goroutine, like the sessions it owns: concurrent
// query serving uses one cache per worker over a shared encode.System.
// The nil *SolveCache is valid and means "no reuse": every call builds a
// one-shot workspace, which is the behaviour of the package-level
// workflow functions.
type SolveCache struct {
	entries  map[string]*workspace
	sessions int64
	reuses   int64
	// clock is a logical access counter stamping each workspace's last
	// use, so Evict can drop the least-recently-used session first.
	clock     int64
	evictions int64
}

// NewSolveCache creates an empty cache.
func NewSolveCache() *SolveCache {
	return &SolveCache{entries: make(map[string]*workspace)}
}

// ReuseStats reports how much work a SolveCache avoided.
type ReuseStats struct {
	// Sessions is the number of distinct sessions built (cache misses).
	Sessions int64
	// Reuses is the number of calls served by a live session.
	Reuses int64
	// Evictions is the number of live sessions dropped by Evict — the
	// price of keeping a long-lived cache under a memory budget.
	Evictions int64
	// Translation aggregates the translation-cache counters across all
	// live sessions.
	Translation relational.CacheStats
	// Encoding aggregates encoding-size counters across all live sessions.
	Encoding EncodingStats
}

// EncodingStats sizes the encoding pipeline across live sessions: how big
// the circuits and clause databases are, and how much the preprocessing
// layers took off.
type EncodingStats struct {
	// CircuitNodes is the total number of AIG nodes allocated.
	CircuitNodes int64
	// SolverVars and SolverClauses size the live SAT databases (clauses
	// counts problem clauses after preprocessing).
	SolverVars    int64
	SolverClauses int64
	// LearntClauses counts live learnt clauses — the part of the clause
	// database that grows with search effort on a warm session.
	LearntClauses int64
	// VarsEliminated is the number of variables currently eliminated by
	// CNF preprocessing; ClausesRemoved accumulates clauses it removed.
	// Restored counts variables un-eliminated because an incremental
	// addition (a delta re-assertion, typically) touched them.
	VarsEliminated int64
	ClausesRemoved int64
	Restored       int64
	// ArenaBytes is the exact backing size of the flat clause arenas —
	// the measured counterpart of the ApproxBytes estimate.
	ArenaBytes int64
	// Search-core counters, accumulated across each session's lifetime:
	// chronological backtracks taken instead of long backjumps, conflict
	// clauses deleted by on-the-fly subsumption, inprocessing passes run,
	// and clauses shortened by vivification.
	ChronoBacktracks int64
	OTFSubsumed      int64
	InprocessRuns    int64
	Vivified         int64
}

// Approximate per-object sizes of the live solving structures, in bytes.
// These are deliberately rough (struct headers, watch lists, hash-cons
// tables and activity metadata averaged in) — the accounting exists to
// keep a fleet of warm sessions under a budget, not to audit the heap.
const (
	bytesPerCircuitNode = 32 // AIG node: fanins, hash-cons slot, flags
	bytesPerVar         = 56 // assignment, level, reason, activity, watches
	bytesPerClause      = 64 // header + average literal payload + watch refs
)

// ApproxBytes estimates the resident memory behind these encoding sizes.
func (e EncodingStats) ApproxBytes() int64 {
	return e.CircuitNodes*bytesPerCircuitNode +
		e.SolverVars*bytesPerVar +
		(e.SolverClauses+e.LearntClauses)*bytesPerClause
}

func (e *EncodingStats) add(t EncodingStats) {
	e.CircuitNodes += t.CircuitNodes
	e.SolverVars += t.SolverVars
	e.SolverClauses += t.SolverClauses
	e.LearntClauses += t.LearntClauses
	e.VarsEliminated += t.VarsEliminated
	e.ClausesRemoved += t.ClausesRemoved
	e.Restored += t.Restored
	e.ArenaBytes += t.ArenaBytes
	e.ChronoBacktracks += t.ChronoBacktracks
	e.OTFSubsumed += t.OTFSubsumed
	e.InprocessRuns += t.InprocessRuns
	e.Vivified += t.Vivified
}

// sessionEncodingStats snapshots one live session's encoding sizes.
func sessionEncodingStats(ss *relational.Session) EncodingStats {
	s := ss.Solver()
	return EncodingStats{
		CircuitNodes:   int64(ss.CNF().Factory().NumNodes()),
		SolverVars:     int64(s.NumVars()),
		SolverClauses:  int64(s.NumClauses()),
		LearntClauses:  int64(s.NumLearnts()),
		VarsEliminated: s.Stats.SimpVarsEliminated,
		ClausesRemoved: s.Stats.SimpClausesRemoved,
		Restored:       s.Stats.SimpRestored,

		ArenaBytes:       s.ArenaBytes(),
		ChronoBacktracks: s.Stats.ChronoBacktracks,
		OTFSubsumed:      s.Stats.OTFSubsumed,
		InprocessRuns:    s.Stats.InprocessRuns,
		Vivified:         s.Stats.Vivified,
	}
}

// Add accumulates t's counters into s — the aggregation step when one
// serving process sums per-worker caches for a stats report or a metrics
// scrape.
func (s *ReuseStats) Add(t ReuseStats) {
	s.Sessions += t.Sessions
	s.Reuses += t.Reuses
	s.Evictions += t.Evictions
	s.Translation.PointerHits += t.Translation.PointerHits
	s.Translation.StructHits += t.Translation.StructHits
	s.Translation.Misses += t.Translation.Misses
	s.Encoding.add(t.Encoding)
}

// Stats reports the cache's effectiveness counters.
func (c *SolveCache) Stats() ReuseStats {
	if c == nil {
		return ReuseStats{}
	}
	st := ReuseStats{Sessions: c.sessions, Reuses: c.reuses, Evictions: c.evictions}
	for _, ws := range c.entries {
		t := ws.ss.CacheStats()
		st.Translation.PointerHits += t.PointerHits
		st.Translation.StructHits += t.StructHits
		st.Translation.Misses += t.Misses
		st.Encoding.add(sessionEncodingStats(ws.ss))
	}
	return st
}

// Workers returns the per-worker stats of the most recent portfolio solve
// performed through this cache, nil when the last solve was sequential.
func (c *SolveCache) Workers() []sat.WorkerStats {
	if c == nil {
		return nil
	}
	var latest []sat.WorkerStats
	for _, ws := range c.entries {
		if ws.lastWorkers != nil {
			latest = ws.lastWorkers
		}
	}
	return latest
}

// specsKey identifies a workspace shape: each participant's name, role,
// and configuration domain (the relation identities bindFree binds), in
// order. The key is deliberately shape-based rather than party-pointer
// based: the session state a workspace reuses — bounds, grounding caches,
// CNF, learnt clauses — depends only on the domain relations (bindFree's
// bounds are configuration-independent), so a freshly built party with the
// same name and domain can be served from the same live session. Its
// goals and offers are per-call state, re-derived by reset; re-compiled
// but structurally identical goal formulas hit the translator's
// structural cache.
func specsKey(specs []partySpec) string {
	var b strings.Builder
	for _, sp := range specs {
		fmt.Fprintf(&b, "%s:%t:%t[", sp.party.Name, sp.enforceFixed, sp.includeGoals)
		for _, r := range sp.party.Domain {
			fmt.Fprintf(&b, "%p,", r)
		}
		b.WriteString("];")
	}
	return b.String()
}

// workspaceFor returns a workspace for the given shape: a reset live one
// on a cache hit, a freshly built reusable one on a miss, and a one-shot
// workspace when the receiver is nil.
func (c *SolveCache) workspaceFor(sys *encode.System, specs []partySpec) *workspace {
	if c == nil {
		return newWorkspace(sys, specs, false)
	}
	key := specsKey(specs)
	c.clock++
	if ws, ok := c.entries[key]; ok && ws.sys == sys {
		c.reuses++
		ws.lastUsed = c.clock
		// The hit may be for different party objects of the same shape:
		// adopt the new specs before reset re-derives the per-call state.
		ws.specs = specs
		clear(ws.oms)
		ws.reset()
		return ws
	}
	ws := newWorkspace(sys, specs, true)
	ws.lastUsed = c.clock
	c.entries[key] = ws
	c.sessions++
	return ws
}

// Len reports the number of live sessions the cache holds.
func (c *SolveCache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// ApproxBytes estimates the resident memory behind the cache's live
// sessions, from each session's encoding sizes (see
// EncodingStats.ApproxBytes). It is the unit a serving process budgets
// warm caches by.
func (c *SolveCache) ApproxBytes() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for _, ws := range c.entries {
		total += sessionEncodingStats(ws.ss).ApproxBytes()
	}
	return total
}

// Evict drops up to n live sessions, least recently used first, releasing
// their circuits, clause databases and learnt clauses to the collector.
// It returns the number evicted. An evicted shape simply rebuilds on its
// next use — eviction trades warm-start latency for memory, never
// correctness.
func (c *SolveCache) Evict(n int) int {
	if c == nil || n <= 0 {
		return 0
	}
	evicted := 0
	for evicted < n && len(c.entries) > 0 {
		lruKey := ""
		var lru *workspace
		for k, ws := range c.entries {
			if lru == nil || ws.lastUsed < lru.lastUsed {
				lruKey, lru = k, ws
			}
		}
		delete(c.entries, lruKey)
		c.evictions++
		evicted++
	}
	return evicted
}

// LocalConsistencyCtx is the Alg. 1 check on a cached session; see the
// package-level LocalConsistencyCtx for semantics.
func (c *SolveCache) LocalConsistencyCtx(ctx context.Context, sys *encode.System, subject *Party, others []*Party, b sat.Budget) *Result {
	specs := []partySpec{{party: subject, enforceFixed: true, includeGoals: true}}
	for _, o := range others {
		specs = append(specs, partySpec{party: o})
	}
	return c.workspaceFor(sys, specs).run(ctx, b)
}

// ReconcileCtx is the Alg. 2 reconciliation on a cached session; see the
// package-level ReconcileCtx for semantics.
func (c *SolveCache) ReconcileCtx(ctx context.Context, sys *encode.System, parties []*Party, b sat.Budget) *Result {
	specs := make([]partySpec, len(parties))
	for i, p := range parties {
		specs[i] = partySpec{party: p, enforceFixed: true, includeGoals: true}
	}
	return c.workspaceFor(sys, specs).run(ctx, b)
}

// MinimalEditCtx is the Fig. 8 revision on a cached session; see the
// package-level MinimalEditCtx for semantics. Constraints recur across
// rounds (re-computed envelopes, the party's goals); structurally
// unchanged ones reuse their previously grounded circuit.
func (c *SolveCache) MinimalEditCtx(ctx context.Context, sys *encode.System, p *Party, constraints []relational.Formula, b sat.Budget, others ...*Party) *Result {
	specs := []partySpec{{party: p, enforceFixed: true, includeGoals: false}}
	for _, o := range others {
		specs = append(specs, partySpec{party: o, enforceFixed: true, includeGoals: false})
	}
	ws := c.workspaceFor(sys, specs)
	for i, cf := range constraints {
		ws.addNamed(fmt.Sprintf("%s/constraint[%d]", p.Name, i), ws.ss.Lit(cf))
	}
	return ws.run(ctx, b)
}

// RunConformanceCtx is the Fig. 7 workflow with every solving step served
// from this cache, so conformance retries against evolving offers reuse
// the live sessions; see the package-level RunConformanceCtx for
// semantics.
func (c *SolveCache) RunConformanceCtx(ctx context.Context, sys *encode.System, provider, tenant *Party, b sat.Budget) *ConformanceOutcome {
	return runConformanceCtx(ctx, c, sys, provider, tenant, b)
}
