package muppet

import (
	"context"
	"fmt"
	"strings"

	"muppet/internal/encode"
	"muppet/internal/relational"
	"muppet/internal/sat"
)

// SolveCache keeps live solving sessions keyed by workspace shape (which
// parties participate and in which role), so repeated workflow calls —
// negotiation rounds, conformance retries, repeated consistency checks —
// become incremental solves on a warm session instead of rebuilding
// bounds, grounding, and CNF from scratch. Learnt clauses carry over;
// they are implied by the problem clauses alone, so they stay sound when
// offers change between calls (changed constraint groups get fresh
// selectors, and stale selectors simply stop being assumed).
//
// A SolveCache is single-goroutine, like the sessions it owns: concurrent
// query serving uses one cache per worker over a shared encode.System.
// The nil *SolveCache is valid and means "no reuse": every call builds a
// one-shot workspace, which is the behaviour of the package-level
// workflow functions.
type SolveCache struct {
	entries  map[string]*workspace
	sessions int64
	reuses   int64
}

// NewSolveCache creates an empty cache.
func NewSolveCache() *SolveCache {
	return &SolveCache{entries: make(map[string]*workspace)}
}

// ReuseStats reports how much work a SolveCache avoided.
type ReuseStats struct {
	// Sessions is the number of distinct sessions built (cache misses).
	Sessions int64
	// Reuses is the number of calls served by a live session.
	Reuses int64
	// Translation aggregates the translation-cache counters across all
	// live sessions.
	Translation relational.CacheStats
	// Encoding aggregates encoding-size counters across all live sessions.
	Encoding EncodingStats
}

// EncodingStats sizes the encoding pipeline across live sessions: how big
// the circuits and clause databases are, and how much the preprocessing
// layers took off.
type EncodingStats struct {
	// CircuitNodes is the total number of AIG nodes allocated.
	CircuitNodes int64
	// SolverVars and SolverClauses size the live SAT databases (clauses
	// counts problem clauses after preprocessing).
	SolverVars    int64
	SolverClauses int64
	// VarsEliminated is the number of variables currently eliminated by
	// CNF preprocessing; ClausesRemoved accumulates clauses it removed.
	VarsEliminated int64
	ClausesRemoved int64
}

func (e *EncodingStats) add(t EncodingStats) {
	e.CircuitNodes += t.CircuitNodes
	e.SolverVars += t.SolverVars
	e.SolverClauses += t.SolverClauses
	e.VarsEliminated += t.VarsEliminated
	e.ClausesRemoved += t.ClausesRemoved
}

// sessionEncodingStats snapshots one live session's encoding sizes.
func sessionEncodingStats(ss *relational.Session) EncodingStats {
	s := ss.Solver()
	return EncodingStats{
		CircuitNodes:   int64(ss.CNF().Factory().NumNodes()),
		SolverVars:     int64(s.NumVars()),
		SolverClauses:  int64(s.NumClauses()),
		VarsEliminated: s.Stats.SimpVarsEliminated,
		ClausesRemoved: s.Stats.SimpClausesRemoved,
	}
}

// Add accumulates t's counters into s — the aggregation step when one
// serving process sums per-worker caches for a stats report or a metrics
// scrape.
func (s *ReuseStats) Add(t ReuseStats) {
	s.Sessions += t.Sessions
	s.Reuses += t.Reuses
	s.Translation.PointerHits += t.Translation.PointerHits
	s.Translation.StructHits += t.Translation.StructHits
	s.Translation.Misses += t.Translation.Misses
	s.Encoding.add(t.Encoding)
}

// Stats reports the cache's effectiveness counters.
func (c *SolveCache) Stats() ReuseStats {
	if c == nil {
		return ReuseStats{}
	}
	st := ReuseStats{Sessions: c.sessions, Reuses: c.reuses}
	for _, ws := range c.entries {
		t := ws.ss.CacheStats()
		st.Translation.PointerHits += t.PointerHits
		st.Translation.StructHits += t.StructHits
		st.Translation.Misses += t.Misses
		st.Encoding.add(sessionEncodingStats(ws.ss))
	}
	return st
}

// Workers returns the per-worker stats of the most recent portfolio solve
// performed through this cache, nil when the last solve was sequential.
func (c *SolveCache) Workers() []sat.WorkerStats {
	if c == nil {
		return nil
	}
	var latest []sat.WorkerStats
	for _, ws := range c.entries {
		if ws.lastWorkers != nil {
			latest = ws.lastWorkers
		}
	}
	return latest
}

// specsKey identifies a workspace shape: each participant's name, role,
// and configuration domain (the relation identities bindFree binds), in
// order. The key is deliberately shape-based rather than party-pointer
// based: the session state a workspace reuses — bounds, grounding caches,
// CNF, learnt clauses — depends only on the domain relations (bindFree's
// bounds are configuration-independent), so a freshly built party with the
// same name and domain can be served from the same live session. Its
// goals and offers are per-call state, re-derived by reset; re-compiled
// but structurally identical goal formulas hit the translator's
// structural cache.
func specsKey(specs []partySpec) string {
	var b strings.Builder
	for _, sp := range specs {
		fmt.Fprintf(&b, "%s:%t:%t[", sp.party.Name, sp.enforceFixed, sp.includeGoals)
		for _, r := range sp.party.Domain {
			fmt.Fprintf(&b, "%p,", r)
		}
		b.WriteString("];")
	}
	return b.String()
}

// workspaceFor returns a workspace for the given shape: a reset live one
// on a cache hit, a freshly built reusable one on a miss, and a one-shot
// workspace when the receiver is nil.
func (c *SolveCache) workspaceFor(sys *encode.System, specs []partySpec) *workspace {
	if c == nil {
		return newWorkspace(sys, specs, false)
	}
	key := specsKey(specs)
	if ws, ok := c.entries[key]; ok && ws.sys == sys {
		c.reuses++
		// The hit may be for different party objects of the same shape:
		// adopt the new specs before reset re-derives the per-call state.
		ws.specs = specs
		clear(ws.oms)
		ws.reset()
		return ws
	}
	ws := newWorkspace(sys, specs, true)
	c.entries[key] = ws
	c.sessions++
	return ws
}

// LocalConsistencyCtx is the Alg. 1 check on a cached session; see the
// package-level LocalConsistencyCtx for semantics.
func (c *SolveCache) LocalConsistencyCtx(ctx context.Context, sys *encode.System, subject *Party, others []*Party, b sat.Budget) *Result {
	specs := []partySpec{{party: subject, enforceFixed: true, includeGoals: true}}
	for _, o := range others {
		specs = append(specs, partySpec{party: o})
	}
	return c.workspaceFor(sys, specs).run(ctx, b)
}

// ReconcileCtx is the Alg. 2 reconciliation on a cached session; see the
// package-level ReconcileCtx for semantics.
func (c *SolveCache) ReconcileCtx(ctx context.Context, sys *encode.System, parties []*Party, b sat.Budget) *Result {
	specs := make([]partySpec, len(parties))
	for i, p := range parties {
		specs[i] = partySpec{party: p, enforceFixed: true, includeGoals: true}
	}
	return c.workspaceFor(sys, specs).run(ctx, b)
}

// MinimalEditCtx is the Fig. 8 revision on a cached session; see the
// package-level MinimalEditCtx for semantics. Constraints recur across
// rounds (re-computed envelopes, the party's goals); structurally
// unchanged ones reuse their previously grounded circuit.
func (c *SolveCache) MinimalEditCtx(ctx context.Context, sys *encode.System, p *Party, constraints []relational.Formula, b sat.Budget, others ...*Party) *Result {
	specs := []partySpec{{party: p, enforceFixed: true, includeGoals: false}}
	for _, o := range others {
		specs = append(specs, partySpec{party: o, enforceFixed: true, includeGoals: false})
	}
	ws := c.workspaceFor(sys, specs)
	for i, cf := range constraints {
		ws.addNamed(fmt.Sprintf("%s/constraint[%d]", p.Name, i), ws.ss.Lit(cf))
	}
	return ws.run(ctx, b)
}

// RunConformanceCtx is the Fig. 7 workflow with every solving step served
// from this cache, so conformance retries against evolving offers reuse
// the live sessions; see the package-level RunConformanceCtx for
// semantics.
func (c *SolveCache) RunConformanceCtx(ctx context.Context, sys *encode.System, provider, tenant *Party, b sat.Budget) *ConformanceOutcome {
	return runConformanceCtx(ctx, c, sys, provider, tenant, b)
}
