package muppet

import (
	"context"
	"testing"
	"time"

	"muppet/internal/encode"
	"muppet/internal/goals"
	"muppet/internal/sat"
	"muppet/internal/target"
)

// expired returns a budget whose deadline has already passed, which makes
// every solve return Unknown deterministically — no timing races.
func expired() sat.Budget {
	return sat.Budget{Deadline: time.Now().Add(-time.Second)}
}

// contradictoryParties builds the Alg. 1 inconsistency fixture: two K8s
// goals that demand port 16000 both allowed and denied for the same pods.
func contradictoryParties(t testing.TB, f *fixture) (*Party, *Party) {
	t.Helper()
	contradictory := []goals.K8sGoal{
		{Port: 16000, Allow: false, Selector: map[string]string{"app": "db"}},
		{Port: 16000, Allow: true, Selector: map[string]string{"app": "db"}},
	}
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), contradictory)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllHoles(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return k8sParty, istioParty
}

// TestLocalConsistencyExpiredBudgetNoFabricatedBlame is the regression
// test for Unknown/Unsat conflation: the same instance that
// TestAlg1LocalConsistencyInconsistent proves unsatisfiable must, under
// an exhausted budget, come back Indeterminate with NO core and NO edits
// — an interrupted solve proves nothing to blame.
func TestLocalConsistencyExpiredBudgetNoFabricatedBlame(t *testing.T) {
	f := loadFixture(t)
	k8sParty, istioParty := contradictoryParties(t, f)

	res := LocalConsistencyCtx(context.Background(), f.sys, k8sParty, []*Party{istioParty}, expired())
	if !res.Indeterminate {
		t.Fatalf("expired budget must be indeterminate: %+v", res)
	}
	if res.OK {
		t.Fatal("indeterminate result must not claim consistency")
	}
	if res.Feedback != nil {
		t.Fatalf("no unsat core may be fabricated from an interrupted solve: %v", res.Feedback)
	}
	if len(res.Edits) != 0 || res.Instance != nil {
		t.Fatalf("no model artifacts on an interrupted solve: %+v", res)
	}
	if res.Stop != target.StopDeadline {
		t.Fatalf("stop reason = %v, want %v", res.Stop, target.StopDeadline)
	}

	// The identical workspace without a budget still proves the real
	// verdict, with blame.
	full := LocalConsistencyCtx(context.Background(), f.sys, k8sParty, []*Party{istioParty}, sat.Budget{})
	if full.Indeterminate || full.OK || full.Feedback == nil || len(full.Feedback.Core) != 2 {
		t.Fatalf("unbudgeted solve must still prove inconsistency with blame: %+v", full)
	}
}

// TestLocalConsistencyTinyConflictBudget drives the same guarantee
// through the conflict-cap path rather than the deadline path.
func TestLocalConsistencyTinyConflictBudget(t *testing.T) {
	f := loadFixture(t)
	k8sParty, istioParty := contradictoryParties(t, f)

	res := LocalConsistencyCtx(context.Background(), f.sys, k8sParty, []*Party{istioParty},
		sat.Budget{MaxConflicts: 1})
	if res.Indeterminate {
		// The cap struck before the proof finished: no blame may exist.
		if res.Feedback != nil {
			t.Fatalf("fabricated core under conflict budget: %v", res.Feedback)
		}
		if res.Stop != target.StopConflicts {
			t.Fatalf("stop reason = %v, want %v", res.Stop, target.StopConflicts)
		}
	} else if res.OK {
		t.Fatal("contradictory goals can never be consistent")
	}
	// A non-indeterminate Unsat within one conflict is legal (the proof
	// was cheap); the invariant under test is only that Unknown is never
	// dressed up as Unsat.
}

func TestReconcileCtxExpiredBudgetIndeterminate(t *testing.T) {
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	res := ReconcileCtx(context.Background(), f.sys, []*Party{k8sParty, istioParty}, expired())
	if !res.Indeterminate || res.OK || res.Feedback != nil {
		t.Fatalf("expired reconcile must be indeterminate without blame: %+v", res)
	}
	if res.Stop != target.StopDeadline {
		t.Fatalf("stop reason = %v, want %v", res.Stop, target.StopDeadline)
	}

	// The same parties reconcile when given room to work.
	full := ReconcileCtx(context.Background(), f.sys, []*Party{k8sParty, istioParty}, sat.Budget{})
	if full.Indeterminate || !full.OK {
		t.Fatalf("unbudgeted reconcile must succeed: %+v", full)
	}
}

func TestReconcileCtxCancelledContext(t *testing.T) {
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := ReconcileCtx(ctx, f.sys, []*Party{k8sParty, istioParty}, sat.Budget{})
	if !res.Indeterminate || res.Feedback != nil {
		t.Fatalf("cancelled reconcile must be indeterminate without blame: %+v", res)
	}
	if res.Stop != target.StopCancelled {
		t.Fatalf("stop reason = %v, want %v", res.Stop, target.StopCancelled)
	}
}

func TestNegotiationIndeterminateTerminalReason(t *testing.T) {
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNegotiation(f.sys, k8sParty, istioParty)
	out := n.RunCtx(context.Background(), expired())
	if out.Reconciled {
		t.Fatal("budget-starved negotiation cannot claim success")
	}
	if out.Reason != ReasonIndeterminate {
		t.Fatalf("reason = %v, want %v", out.Reason, ReasonIndeterminate)
	}
	if out.Stop != target.StopDeadline {
		t.Fatalf("stop reason = %v, want %v", out.Stop, target.StopDeadline)
	}
	if out.Feedback != nil {
		t.Fatalf("indeterminate negotiation must carry no blame: %v", out.Feedback)
	}
}

// TestNegotiationTerminalReasons pins the explicit terminal verdicts on
// the existing success and human-intervention scenarios.
func TestNegotiationTerminalReasons(t *testing.T) {
	f := loadFixture(t)

	// Fully soft, compatible goals: reconciled immediately.
	k8sSoft, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioSoft, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	if out := NewNegotiation(f.sys, k8sSoft, istioSoft).Run(); out.Reason != ReasonReconciled {
		t.Fatalf("reason = %v (%s), want reconciled", out.Reason, out.Reason)
	}

	// Fixed offers with strict Fig. 3 goals: every party gets stuck.
	k8sFixed, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.Offer{}, f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioFixed, _, err := NewIstioParty(f.sys, f.istioCfg, encode.Offer{}, f.istioFig3)
	if err != nil {
		t.Fatal(err)
	}
	out := NewNegotiation(f.sys, k8sFixed, istioFixed).Run()
	if out.Reconciled {
		t.Fatal("fixed incompatible offers must not reconcile")
	}
	if out.Reason != ReasonAllStuck && out.Reason != ReasonExhaustedRounds {
		t.Fatalf("reason = %v (%s), want all-stuck or exhausted-rounds", out.Reason, out.Reason)
	}
	if out.Reason.String() == "" {
		t.Fatal("terminal reason must render")
	}
}

func TestConformanceCtxExpiredBudgetIndeterminate(t *testing.T) {
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.Offer{}, f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	out := RunConformanceCtx(context.Background(), f.sys, k8sParty, istioParty, expired())
	if !out.Indeterminate || out.Reconciled {
		t.Fatalf("expired conformance must be indeterminate: %+v", out)
	}
	if out.FailedStep != "local-consistency" {
		t.Fatalf("budget expires at the first step, got %q", out.FailedStep)
	}
	if out.Feedback != nil {
		t.Fatalf("indeterminate conformance must carry no blame: %v", out.Feedback)
	}
}

// TestMinimizeDegradesToBestModel exercises graceful degradation through
// the muppet layer: cancelling mid-minimisation must still produce a
// valid (possibly non-minimal) completion, flagged by a stop reason.
func TestMinimizeDegradesToBestModel(t *testing.T) {
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	// MaxConflicts large enough to find a first model, small enough to be
	// exhausted during the descent on at least some runs. Whether or not
	// the cap strikes, the result must be coherent: either a usable
	// instance or an honest indeterminate — never blame.
	res := ReconcileCtx(context.Background(), f.sys, []*Party{k8sParty, istioParty},
		sat.Budget{MaxConflicts: 50})
	switch {
	case res.OK:
		if res.Instance == nil {
			t.Fatal("OK result must carry an instance")
		}
	case res.Indeterminate:
		if res.Feedback != nil {
			t.Fatalf("indeterminate result with blame: %v", res.Feedback)
		}
		if res.Stop == target.StopNone {
			t.Fatal("indeterminate result must name a stop reason")
		}
	default:
		t.Fatalf("soft-soft reconcile can never be unsat: %+v", res)
	}
}
