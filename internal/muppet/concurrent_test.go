package muppet

import (
	"context"
	"fmt"
	"testing"

	"muppet/internal/encode"
	"muppet/internal/sat"
)

// TestConcurrentQueries hammers one shared encode.System from many
// goroutines, each owning its parties and SolveCache — the concurrency
// contract documented on encode.System, enforced by `go test -race`.
// Half the workers solve with a portfolio, so clone/replay racing and the
// atomic portfolio width are exercised under the race detector too.
func TestConcurrentQueries(t *testing.T) {
	f := loadFixture(t)
	const workers, queriesPer = 8, 4

	prev := SetPortfolioWorkers(0)
	defer SetPortfolioWorkers(prev)

	err := FanOut(context.Background(), workers, workers, func(ctx context.Context, w int) error {
		// Build this worker's own parties inline: t.Fatal must not be
		// called off the test goroutine.
		k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
		if err != nil {
			return err
		}
		istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
		if err != nil {
			return err
		}
		cache := NewSolveCache()
		for q := 0; q < queriesPer; q++ {
			if w%2 == 0 {
				// Even workers race a small portfolio inside each solve.
				SetPortfolioWorkers(2)
			}
			switch q % 3 {
			case 0:
				res := cache.LocalConsistencyCtx(ctx, f.sys, k8sParty, []*Party{istioParty}, sat.Budget{})
				if !res.OK {
					return fmt.Errorf("worker %d query %d: inconsistent: %v", w, q, res.Feedback)
				}
			case 1:
				env, err := ComputeEnvelopeCtx(ctx, f.sys, istioParty, []*Party{k8sParty})
				if err != nil {
					return err
				}
				if env.Trivial() {
					return fmt.Errorf("worker %d query %d: trivial envelope", w, q)
				}
			case 2:
				res := cache.ReconcileCtx(ctx, f.sys, []*Party{k8sParty, istioParty}, sat.Budget{})
				if !res.OK {
					return fmt.Errorf("worker %d query %d: cannot reconcile: %v", w, q, res.Feedback)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFanOutCancellation checks the driver's error path: a failing task
// cancels the context handed to the remaining tasks and its error is
// returned.
func TestFanOutCancellation(t *testing.T) {
	boom := fmt.Errorf("boom")
	err := FanOut(context.Background(), 2, 50, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		return ctx.Err()
	})
	if err != boom {
		t.Fatalf("got %v, want the task error", err)
	}
}

// TestFanOutServesAll checks every index is served exactly once on the
// happy path.
func TestFanOutServesAll(t *testing.T) {
	const n = 100
	seen := make([]int32, n)
	err := FanOut(context.Background(), 7, n, func(ctx context.Context, i int) error {
		seen[i]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d served %d times", i, c)
		}
	}
}
