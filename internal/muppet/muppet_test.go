package muppet

import (
	"strings"
	"testing"

	"muppet/internal/encode"
	"muppet/internal/goals"
	"muppet/internal/mesh"
	"muppet/internal/relational"
	"muppet/internal/scenario"
)

// fixture bundles the Fig. 1 walkthrough inputs.
type fixture struct {
	sys          *encode.System
	k8sCfg       *mesh.K8sConfig
	istioCfg     *mesh.IstioConfig
	k8sGoals     []goals.K8sGoal
	istioFig3    []goals.IstioGoal
	istioRevised []goals.IstioGoal
}

func loadFixture(t testing.TB) *fixture {
	t.Helper()
	bundle, err := mesh.LoadFiles(
		"../../testdata/fig1/mesh.yaml",
		"../../testdata/fig1/k8s_current.yaml",
		"../../testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := encode.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{sys: sys, k8sCfg: bundle.K8s, istioCfg: bundle.Istio}
	if f.k8sGoals, err = goals.LoadK8sGoals("../../testdata/fig1/k8s_goals.csv"); err != nil {
		t.Fatal(err)
	}
	if f.istioFig3, err = goals.LoadIstioGoals("../../testdata/fig1/istio_goals.csv"); err != nil {
		t.Fatal(err)
	}
	if f.istioRevised, err = goals.LoadIstioGoals("../../testdata/fig1/istio_goals_revised.csv"); err != nil {
		t.Fatal(err)
	}
	return f
}

// verifyComposed checks the final configurations with the runtime
// evaluator: the Fig. 2 ban holds and the revised reachability goals hold.
func verifyComposed(t *testing.T, sys *encode.System, k8s *K8sPartyState, istio *IstioPartyState) {
	t.Helper()
	exposure := istio.Exposure
	if exposure == nil {
		exposure = map[string][]int{}
		for _, s := range sys.Mesh.Services {
			exposure[s.Name] = s.Ports
		}
	}
	m2 := sys.MeshWith(exposure)
	reach := mesh.ReachabilityMatrix(m2, k8s.Config, istio.Config)
	for pair, ports := range reach {
		for _, p := range ports {
			if p == 23 {
				t.Fatalf("port 23 reachable on %s — Fig. 2 goal violated", pair)
			}
		}
	}
	for _, pair := range []string{
		"test-frontend->test-backend",
		"test-backend->test-frontend",
		"test-backend->test-db",
		"test-db->test-backend",
	} {
		if len(reach[pair]) == 0 {
			t.Fatalf("%s unreachable — reachability goals violated (matrix: %v)", pair, reach)
		}
	}
}

func TestAlg1LocalConsistencyConsistent(t *testing.T) {
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllHoles(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := LocalConsistency(f.sys, k8sParty, []*Party{istioParty})
	if !res.OK {
		t.Fatalf("Fig. 2 goal must be locally consistent: %v", res.Feedback)
	}
	// With the Istio side fully free, the solver can block port 23 over
	// there, leaving the K8s soft preferences untouched.
	if len(res.Edits) != 0 {
		t.Fatalf("no K8s edits should be needed, got %v", res.Edits)
	}
	// The completion must satisfy the K8s goal.
	for _, g := range k8sParty.Goals {
		if !relational.Eval(g.Formula, res.Instance) {
			t.Fatalf("completion violates %s", g.Name)
		}
	}
}

func TestAlg1LocalConsistencyInconsistent(t *testing.T) {
	f := loadFixture(t)
	contradictory := []goals.K8sGoal{
		{Port: 16000, Allow: false, Selector: map[string]string{"app": "db"}},
		{Port: 16000, Allow: true, Selector: map[string]string{"app": "db"}},
	}
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), contradictory)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllHoles(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := LocalConsistency(f.sys, k8sParty, []*Party{istioParty})
	if res.OK {
		t.Fatal("contradictory goals must be locally inconsistent")
	}
	if res.Feedback == nil || len(res.Feedback.Core) != 2 {
		t.Fatalf("core should blame exactly the two goals: %v", res.Feedback)
	}
	for _, name := range res.Feedback.Core {
		if !strings.Contains(name, "k8s-goal") {
			t.Fatalf("unexpected core element %q", name)
		}
	}
}

func TestAlg1FixedConfigBlame(t *testing.T) {
	// A FIXED permissive K8s config cannot satisfy an egress-ban goal when
	// the destination is forced reachable… construct: goal DENY 16000 to
	// db, but K8s config is fully fixed (permissive) and Istio is also
	// fixed permissive — wait, Alg. 1 frees the other party. Instead make
	// the subject's own fixed config contradict its goal: ingressAllow
	// includes 23 while the goal demands 23 dead, with Istio *not* free to
	// help… Istio IS free in Alg. 1, so it can always block. The honest
	// fixed-config conflict is an ALLOW goal against a fixed deny.
	f := loadFixture(t)
	cfg := mesh.CloneK8s(f.k8sCfg)
	cfg.Policy("cluster-default").IngressDenyPorts = []int{16000}
	allowGoal := []goals.K8sGoal{{Port: 16000, Allow: true, Selector: map[string]string{"app": "db"}}}
	k8sParty, _, err := NewK8sParty(f.sys, cfg, encode.Offer{}, allowGoal) // fully fixed
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllHoles(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := LocalConsistency(f.sys, k8sParty, []*Party{istioParty})
	if res.OK {
		t.Fatal("fixed deny vs ALLOW goal must be inconsistent")
	}
	var hasGoal, hasConfig bool
	for _, name := range res.Feedback.Core {
		if strings.Contains(name, "k8s-goal") {
			hasGoal = true
		}
		if strings.Contains(name, "config[cluster-default.ingress.denyPorts]") {
			hasConfig = true
		}
	}
	if !hasGoal || !hasConfig {
		t.Fatalf("core must blame both the goal and the config fragment: %v", res.Feedback.Core)
	}
}

func TestAlg2ReconcileConflict(t *testing.T) {
	// Sec. 2: Fig. 2 + Fig. 3 goals cannot be reconciled.
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioFig3)
	if err != nil {
		t.Fatal(err)
	}
	res := Reconcile(f.sys, []*Party{k8sParty, istioParty})
	if res.OK {
		t.Fatal("Fig. 2 ∧ Fig. 3 must fail to reconcile")
	}
	// The cross-party core must involve both parties' goals.
	var hasK8s, hasIstio bool
	for _, name := range res.Feedback.Core {
		if strings.HasPrefix(name, "K8s/k8s-goal") {
			hasK8s = true
		}
		if strings.HasPrefix(name, "Istio/istio-goals") {
			hasIstio = true
		}
	}
	if !hasK8s || !hasIstio {
		t.Fatalf("core must blame both parties' goals: %v", res.Feedback.Core)
	}
}

func TestAlg2ReconcileRevisedGoals(t *testing.T) {
	f := loadFixture(t)
	k8sParty, k8sState, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, istioState, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	res := Reconcile(f.sys, []*Party{k8sParty, istioParty})
	if !res.OK {
		t.Fatalf("Fig. 2 ∧ Fig. 4 must reconcile: %v", res.Feedback)
	}
	k8sParty.adopt(res.Instance)
	istioParty.adopt(res.Instance)
	verifyComposed(t, f.sys, k8sState, istioState)
	if len(res.Edits) == 0 {
		t.Fatal("resolving the conflict must cost some soft edits")
	}
}

func TestFig7ConformanceWithRevisedGoals(t *testing.T) {
	// The full walkthrough in conformance mode: inflexible K8s provider,
	// Istio tenant with the Fig. 4 relaxed goals and a fully soft offer.
	f := loadFixture(t)
	k8sParty, k8sState, err := NewK8sParty(f.sys, f.k8sCfg, encode.Offer{}, f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, istioState, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	out := RunConformance(f.sys, k8sParty, istioParty)
	if !out.ProviderConsistent {
		t.Fatalf("provider must be locally consistent: %v", out.Feedback)
	}
	if out.Envelope == nil || out.Envelope.Trivial() {
		t.Fatal("E_{K8s→Istio} must be non-trivial (Fig. 5)")
	}
	if out.CandidateOK {
		t.Fatal("the tenant's current config must violate the envelope")
	}
	if !out.Reconciled {
		t.Fatalf("conformance must succeed (failed at %s): %v", out.FailedStep, out.Feedback)
	}
	if len(out.Edits) == 0 {
		t.Fatal("the tenant revision must involve edits")
	}
	verifyComposed(t, f.sys, k8sState, istioState)
}

func TestFig7ConformanceFailsWithStrictGoals(t *testing.T) {
	// With the original Fig. 3 goals the tenant cannot conform: the
	// revision step must fail and blame the conflict.
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.Offer{}, f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioFig3)
	if err != nil {
		t.Fatal(err)
	}
	out := RunConformance(f.sys, k8sParty, istioParty)
	if out.Reconciled {
		t.Fatal("strict Fig. 3 goals must not conform to the port-23 envelope")
	}
	if out.FailedStep != "revision" {
		t.Fatalf("failure should surface in the revision step, got %q", out.FailedStep)
	}
	if out.Feedback == nil || len(out.Feedback.Core) == 0 {
		t.Fatal("failure must carry blame")
	}
}

func TestFig8MinimalEditAgainstEnvelope(t *testing.T) {
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.Offer{}, f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, istioState, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	env := ComputeEnvelope(f.sys, istioParty, []*Party{k8sParty})
	ok, failing := CheckCandidate(f.sys, istioParty, env, false, k8sParty)
	if ok || len(failing) == 0 {
		t.Fatal("current tenant config must fail the envelope with blame")
	}
	res := MinimalEdit(f.sys, istioParty,
		append([]relational.Formula{env.Formula()}, istioParty.GoalFormulas()...), k8sParty)
	if !res.OK {
		t.Fatalf("minimal edit must exist: %v", res.Feedback)
	}
	if len(res.Edits) == 0 {
		t.Fatal("edits must be non-empty")
	}
	istioParty.adopt(res.Instance)
	// The edited candidate now satisfies the envelope.
	ok, _ = CheckCandidate(f.sys, istioParty, env, false, k8sParty)
	if !ok {
		t.Fatal("edited candidate must satisfy the envelope")
	}
	_ = istioState
}

func TestFig9NegotiationImmediateReconcile(t *testing.T) {
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNegotiation(f.sys, k8sParty, istioParty)
	out := n.Run()
	if !out.Reconciled || !out.InitialReconcile {
		t.Fatalf("fully-soft compatible parties must reconcile immediately: %+v", out)
	}
}

func TestFig9NegotiationRoundsAndHumanIntervention(t *testing.T) {
	f := loadFixture(t)
	// The K8s admin has already pushed the ban and is inflexible.
	pushed := mesh.CloneK8s(f.k8sCfg)
	pushed.Policy("cluster-default").IngressDenyPorts = []int{23}
	k8sParty, _, err := NewK8sParty(f.sys, pushed, encode.Offer{}, f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	// The Istio admin starts with strict Fig. 3 goals and a fixed config.
	istioParty, istioState, err := NewIstioParty(f.sys, f.istioCfg, encode.Offer{}, f.istioFig3)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNegotiation(f.sys, k8sParty, istioParty)
	out := n.Run()
	if out.Reconciled {
		t.Fatal("strict goals + fixed offers must not reconcile")
	}
	if out.Feedback == nil || len(out.Feedback.Core) == 0 {
		t.Fatal("negotiation failure must carry blame for the humans")
	}
	if len(out.Rounds) == 0 {
		t.Fatal("rounds must have been attempted")
	}

	// Human intervention (the Fig. 4 move): the Istio admin relaxes goals
	// and widens the negotiable region, then negotiation resumes.
	revisedParty, revisedState, err := NewIstioParty(f.sys, istioState.Config, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	n2 := NewNegotiation(f.sys, k8sParty, revisedParty)
	out2 := n2.Run()
	if !out2.Reconciled {
		t.Fatalf("negotiation with relaxed goals must succeed: %v", out2.Feedback)
	}
	verifyComposed(t, f.sys, &K8sPartyState{Config: pushed}, revisedState)
}

func TestFig6MonolithicBaseline(t *testing.T) {
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllHoles(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllHoles(), f.istioFig3)
	if err != nil {
		t.Fatal(err)
	}
	res := SynthesizeMonolithic(f.sys, []*Party{k8sParty, istioParty})
	if res.OK {
		t.Fatal("monolithic synthesis must fail on the conflicted union (Sec. 2)")
	}
	// The contrast with the multi-party flow: the same goal sets, with
	// Fig. 4 relaxation, succeed monolithically too…
	istioRevised, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllHoles(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	res = SynthesizeMonolithic(f.sys, []*Party{k8sParty, istioRevised})
	if !res.OK {
		t.Fatalf("monolithic synthesis of compatible goals should work: %v", res.Feedback)
	}
}

func TestThreePartyEnvelopeAndNegotiation(t *testing.T) {
	// Sec. 7 extension: a third administrator (security ops) owning a
	// separate K8s policy shell. The joint envelope E_{secops,K8s→Istio}
	// merges both senders' goals.
	bundle, err := mesh.LoadFiles(
		"../../testdata/fig1/mesh.yaml",
		"../../testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	clusterShell := &mesh.NetworkPolicy{Name: "cluster-default"}
	secopsShell := &mesh.NetworkPolicy{Name: "secops", Selector: map[string]string{"app": "db"}}
	sys, err := encode.NewSystem(bundle.Mesh,
		[]*mesh.NetworkPolicy{clusterShell}, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		t.Fatal(err)
	}
	// secops gets its own system? No — one system with both shells.
	sys, err = encode.NewSystem(bundle.Mesh,
		[]*mesh.NetworkPolicy{clusterShell, secopsShell}, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		t.Fatal(err)
	}

	k8sGoalRows, err := goals.LoadK8sGoals("../../testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	istioRows, err := goals.LoadIstioGoals("../../testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		t.Fatal(err)
	}

	// NOTE: both K8s-side parties share the K8s relations; Muppet's model
	// assumes non-overlapping domains, so the two K8s parties split by
	// policy shell via offers: each fixes the other's shell as holes. For
	// the envelope computation we treat them as two senders.
	k8sParty, _, err := NewK8sParty(sys, &mesh.K8sConfig{Policies: []*mesh.NetworkPolicy{{Name: "cluster-default"}}}, encode.AllSoft(), k8sGoalRows)
	if err != nil {
		t.Fatal(err)
	}
	// SecOps bans reaching the backend on 16000 (a port it does not even
	// serve — but exposure is negotiable, so this is a real obligation on
	// the Istio side). It is compatible with the Fig. 4 goals.
	secopsGoal := []goals.K8sGoal{{Port: 16000, Allow: false, Selector: map[string]string{"app": "backend"}}}
	secopsParty, _, err := NewK8sParty(sys, &mesh.K8sConfig{Policies: []*mesh.NetworkPolicy{{Name: "secops"}}}, encode.AllSoft(), secopsGoal)
	if err != nil {
		t.Fatal(err)
	}
	secopsParty.Name = "SecOps"
	istioParty, istioState, err := NewIstioParty(sys, bundle.Istio, encode.AllSoft(), istioRows)
	if err != nil {
		t.Fatal(err)
	}

	env := ComputeEnvelope(sys, istioParty, []*Party{k8sParty, secopsParty})
	if env.Trivial() {
		t.Fatal("joint envelope must be non-trivial")
	}
	if !strings.Contains(env.From, "K8s") || !strings.Contains(env.From, "SecOps") {
		t.Fatalf("joint envelope should name both senders: %q", env.From)
	}

	n := NewNegotiation(sys, k8sParty, secopsParty, istioParty)
	out := n.Run()
	if !out.Reconciled {
		t.Fatalf("three-party negotiation must reconcile: %v", out.Feedback)
	}
	// Port 23 dead everywhere and db:16000 unreachable; mesh still works.
	exposure := istioState.Exposure
	m2 := sys.MeshWith(exposure)
	k8sFinal := &mesh.K8sConfig{}
	// Merge both K8s parties' adopted configs (they share the relation
	// space; adopt decodes all shells for each, so either carries both).
	k8sFinal = decodeVia(sys, k8sParty)
	reach := mesh.ReachabilityMatrix(m2, k8sFinal, istioState.Config)
	for pair, ports := range reach {
		for _, p := range ports {
			if p == 23 {
				t.Fatalf("port 23 reachable on %s", pair)
			}
			if p == 16000 && strings.HasSuffix(pair, "->test-backend") {
				t.Fatalf("backend reachable on 16000 via %s despite SecOps goal", pair)
			}
		}
	}
	for _, pair := range []string{"test-frontend->test-backend", "test-backend->test-frontend"} {
		if len(reach[pair]) == 0 {
			t.Fatalf("%s unreachable", pair)
		}
	}
}

// decodeVia extracts the K8s config a party adopted (test helper).
func decodeVia(sys *encode.System, p *Party) *mesh.K8sConfig {
	// The party's fixed() map carries its current concrete settings; build
	// an instance and decode.
	inst := instanceFor(sys, p)
	return sys.DecodeK8s(inst)
}

func BenchmarkFig7Conformance(b *testing.B) {
	f := loadFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Party construction is setup, not the measured workflow: parties
		// are consumed by the run, so rebuild them off the clock.
		b.StopTimer()
		k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.Offer{}, f.k8sGoals)
		if err != nil {
			b.Fatal(err)
		}
		istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		out := RunConformance(f.sys, k8sParty, istioParty)
		if !out.Reconciled {
			b.Fatal("conformance failed")
		}
	}
}

func BenchmarkFig9Negotiation(b *testing.B) {
	f := loadFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pushed := mesh.CloneK8s(f.k8sCfg)
		pushed.Policy("cluster-default").IngressDenyPorts = []int{23}
		k8sParty, _, err := NewK8sParty(f.sys, pushed, encode.Offer{}, f.k8sGoals)
		if err != nil {
			b.Fatal(err)
		}
		istioParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		out := NewNegotiation(f.sys, k8sParty, istioParty).Run()
		if !out.Reconciled {
			b.Fatal("negotiation failed")
		}
	}
}

func TestGoalsCompatible(t *testing.T) {
	// Sec. 3's second envelope use: compare E_{K8s→Istio} with the
	// recipient's goals. The strict Fig. 3 goals are incompatible — no
	// Istio configuration can both ban 23 and deliver backend→frontend:23
	// given the K8s side's current settings; the Fig. 4 goals are
	// compatible.
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.Offer{}, f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	strictParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioFig3)
	if err != nil {
		t.Fatal(err)
	}
	env := ComputeEnvelope(f.sys, strictParty, []*Party{k8sParty})
	res := GoalsCompatible(f.sys, strictParty, env, k8sParty)
	if res.OK {
		t.Fatal("strict Fig. 3 goals must be incompatible with the envelope")
	}
	var hasEnv, hasGoal bool
	for _, name := range res.Feedback.Core {
		if strings.Contains(name, "envelope") {
			hasEnv = true
		}
		if strings.Contains(name, "istio-goals") {
			hasGoal = true
		}
	}
	if !hasEnv || !hasGoal {
		t.Fatalf("core must blame the envelope and the goals: %v", res.Feedback.Core)
	}

	relaxedParty, _, err := NewIstioParty(f.sys, f.istioCfg, encode.AllSoft(), f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	res = GoalsCompatible(f.sys, relaxedParty, env, k8sParty)
	if !res.OK {
		t.Fatalf("Fig. 4 goals must be compatible: %v", res.Feedback)
	}
}

func TestDescribeAndStrings(t *testing.T) {
	f := loadFixture(t)
	k8sParty, _, err := NewK8sParty(f.sys, f.k8sCfg, encode.AllSoft(), f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k8sParty.Describe(), "cluster-default") {
		t.Fatalf("Describe: %q", k8sParty.Describe())
	}
	if len(k8sParty.GoalFormulas()) != len(k8sParty.Goals) {
		t.Fatal("GoalFormulas length")
	}
	e := Edit{Party: "Istio", Knob: encode.PortKnob("p", encode.FieldIAllowTo, 23), Add: true}
	if !strings.Contains(e.String(), "add") || !strings.Contains(e.String(), "allow_to_ports") {
		t.Fatalf("Edit.String: %q", e)
	}
	e.Add = false
	if !strings.Contains(e.String(), "remove") {
		t.Fatalf("Edit.String: %q", e)
	}
	var fb *Feedback
	if fb.String() != "no feedback" {
		t.Fatal("nil feedback string")
	}
	fb = &Feedback{Core: []string{"a", "b"}}
	if !strings.Contains(fb.String(), "a") || !strings.Contains(fb.String(), "b") {
		t.Fatalf("Feedback.String: %q", fb)
	}
}

// TestReconcileExtendsFixedOffers is DESIGN.md property 7: reconciled
// configurations extend both partial offers — every fixed knob keeps its
// offered value in the delivered configuration.
func TestReconcileExtendsFixedOffers(t *testing.T) {
	f := loadFixture(t)
	// K8s fixes an unrelated egress deny; Istio fixes one allow entry.
	k8sCfg := mesh.CloneK8s(f.k8sCfg)
	k8sCfg.Policy("cluster-default").EgressDenyPorts = []int{26}
	k8sOffer := encode.Offer{Soft: []encode.Knob{
		encode.WildcardKnob("cluster-default", encode.FieldKIngressDeny),
		encode.WildcardKnob("cluster-default", encode.FieldKIngressAllow),
		encode.WildcardKnob("cluster-default", encode.FieldKEgressAllow),
	}} // egress deny stays fixed
	k8sParty, k8sState, err := NewK8sParty(f.sys, k8sCfg, k8sOffer, f.k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioOffer := encode.AllSoft()
	istioParty, istioState, err := NewIstioParty(f.sys, f.istioCfg, istioOffer, f.istioRevised)
	if err != nil {
		t.Fatal(err)
	}
	res := Reconcile(f.sys, []*Party{k8sParty, istioParty})
	if !res.OK {
		t.Fatalf("must reconcile: %v", res.Feedback)
	}
	k8sParty.adopt(res.Instance)
	istioParty.adopt(res.Instance)
	// The fixed egress deny must survive verbatim.
	got := k8sState.Config.Policy("cluster-default").EgressDenyPorts
	if len(got) != 1 || got[0] != 26 {
		t.Fatalf("fixed egress deny not preserved: %v", got)
	}
	_ = istioState
}

// TestNegotiationConvergence is DESIGN.md property 8: with a satisfiable
// joint goal set and negotiable offers, negotiation terminates reconciled
// across random generated scenarios.
func TestNegotiationConvergence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		sc := generateScenario(t, seed)
		sys, err := sc.System()
		if err != nil {
			t.Fatal(err)
		}
		k8sParty, _, err := NewK8sParty(sys, sc.K8sCurrent, encode.AllSoft(), sc.K8sGoals)
		if err != nil {
			t.Fatal(err)
		}
		istioParty, _, err := NewIstioParty(sys, sc.IstioCurrent, encode.AllSoft(), sc.IstioRelaxed)
		if err != nil {
			t.Fatal(err)
		}
		out := NewNegotiation(sys, k8sParty, istioParty).Run()
		if !out.Reconciled {
			t.Fatalf("seed %d: negotiation must converge: %v", seed, out.Feedback)
		}
	}
}

func generateScenario(t *testing.T, seed int64) *scenario.Scenario {
	t.Helper()
	return scenario.Generate(scenario.Params{
		Services:        4,
		PortsPerService: 2,
		Flows:           4,
		BannedPorts:     1,
		Seed:            seed,
	})
}
