// Package muppet implements the paper's solver-aided multi-party
// configuration workflows: local consistency (Alg. 1), reconciliation
// (Alg. 2), envelope computation (Alg. 3 via package envelope), the
// conformance workflow (Fig. 7) with its revision aid (Fig. 8), and the
// round-robin negotiation workflow (Fig. 9), generalised to N ≥ 2 parties
// as Sec. 7 sketches.
//
// The algorithms are domain-generic over a Party abstraction; constructors
// for the paper's two concrete administrators (Kubernetes and Istio over a
// shared service mesh) are provided.
package muppet

import (
	"fmt"

	"muppet/internal/encode"
	"muppet/internal/goals"
	"muppet/internal/mesh"
	"muppet/internal/relational"
)

// NamedGoal pairs a goal formula with the display name used in blame
// feedback (typically the CSV row it came from).
type NamedGoal struct {
	Name    string
	Formula relational.Formula
}

// Party is one administrator in a multi-party configuration workflow. A
// party owns a configuration domain (a set of relations), a goal set, and
// an offer: a concrete configuration plus the leeway (soft/hole knobs)
// granted to the solver. Parties are mutable across negotiation rounds —
// revisions replace goals and offers.
type Party struct {
	Name string

	// Goals are the party's behavioural requirements φ.
	Goals []NamedGoal

	// Domain is dom(party): the relations this party configures.
	Domain []*relational.Relation

	// bindFree binds the party's configurable relations fully free in the
	// bounds and classifies each knob per the current offer.
	bindFree func(*relational.Bounds) *encode.OfferMap

	// fixed returns the party's concrete settings (plus its private
	// structure) for envelope substitution.
	fixed func() map[*relational.Relation]*relational.TupleSet

	// adopt replaces the party's concrete configuration from a solved
	// instance (used when delivering results and for counter-offers).
	adopt func(*relational.Instance)

	// describe renders the party's current concrete configuration.
	describe func() string
}

// Fixed exposes the party's concrete settings for envelope computation.
func (p *Party) Fixed() map[*relational.Relation]*relational.TupleSet { return p.fixed() }

// Adopt installs a solved instance as the party's concrete configuration
// (the "Deliver C_A, C_B" step of Figs. 7 and 9).
func (p *Party) Adopt(inst *relational.Instance) { p.adopt(inst) }

// Describe renders the party's current concrete configuration.
func (p *Party) Describe() string { return p.describe() }

// GoalFormulas returns the bare formulas of the party's goals.
func (p *Party) GoalFormulas() []relational.Formula {
	out := make([]relational.Formula, len(p.Goals))
	for i, g := range p.Goals {
		out[i] = g.Formula
	}
	return out
}

// inDomain reports whether r belongs to the party's domain.
func (p *Party) inDomain(r *relational.Relation) bool {
	for _, d := range p.Domain {
		if d == r {
			return true
		}
	}
	return false
}

// K8sPartyState is the mutable state behind a Kubernetes party.
type K8sPartyState struct {
	Sys    *encode.System
	Config *mesh.K8sConfig
	Offer  encode.Offer
}

// NewK8sParty builds the Kubernetes administrator party from goal rows, a
// concrete configuration and an offer. The returned state allows revising
// the configuration/offer between rounds.
func NewK8sParty(sys *encode.System, cfg *mesh.K8sConfig, offer encode.Offer, rows []goals.K8sGoal) (*Party, *K8sPartyState, error) {
	st := &K8sPartyState{Sys: sys, Config: mesh.CloneK8s(cfg), Offer: offer}
	p := &Party{
		Name:   "K8s",
		Domain: sys.K8sRelations(),
		bindFree: func(b *relational.Bounds) *encode.OfferMap {
			return sys.BindK8sFree(b, st.Config, st.Offer)
		},
		fixed: func() map[*relational.Relation]*relational.TupleSet {
			return sys.SenderTupleSets(st.Config, nil, nil)
		},
		adopt: func(inst *relational.Instance) {
			st.Config = sys.DecodeK8s(inst)
		},
		describe: func() string { return mesh.DescribeK8s(st.Config) },
	}
	for _, row := range rows {
		f, err := sys.CompileK8sGoal(row)
		if err != nil {
			return nil, nil, fmt.Errorf("muppet: K8s goal %s: %w", row, err)
		}
		p.Goals = append(p.Goals, NamedGoal{Name: "k8s-goal[" + row.String() + "]", Formula: f})
	}
	return p, st, nil
}

// IstioPartyState is the mutable state behind an Istio party. Exposure
// (service listening ports) is part of the Istio domain; nil means the
// mesh's current ports.
type IstioPartyState struct {
	Sys      *encode.System
	Config   *mesh.IstioConfig
	Exposure map[string][]int
	Offer    encode.Offer
}

// NewIstioParty builds the Istio administrator party. Goal rows are
// compiled as one joint formula, because existential port variables span
// rows (Fig. 4).
func NewIstioParty(sys *encode.System, cfg *mesh.IstioConfig, offer encode.Offer, rows []goals.IstioGoal) (*Party, *IstioPartyState, error) {
	st := &IstioPartyState{Sys: sys, Config: mesh.CloneIstio(cfg), Offer: offer}
	p := &Party{
		Name:   "Istio",
		Domain: sys.IstioRelations(),
		bindFree: func(b *relational.Bounds) *encode.OfferMap {
			om := sys.BindIstioFree(b, st.Config, st.Offer)
			if st.Exposure != nil {
				// Re-derive exposure knob desires from the override.
				for i := range om.Infos {
					ki := &om.Infos[i]
					if ki.Knob.Field == encode.FieldExposure {
						ki.Desired = exposureHas(st.Exposure, ki.Knob.Policy, ki.Knob.Key)
					}
				}
			}
			return om
		},
		fixed: func() map[*relational.Relation]*relational.TupleSet {
			return sys.SenderTupleSets(nil, st.Config, st.Exposure)
		},
		adopt: func(inst *relational.Instance) {
			st.Config = sys.DecodeIstio(inst)
			st.Exposure = sys.DecodeExposure(inst)
		},
		describe: func() string {
			s := mesh.DescribeIstio(st.Config)
			if st.Exposure != nil {
				s += fmt.Sprintf("exposure: %v\n", st.Exposure)
			}
			return s
		},
	}
	if len(rows) > 0 {
		f, err := sys.CompileIstioGoals(rows)
		if err != nil {
			return nil, nil, fmt.Errorf("muppet: Istio goals: %w", err)
		}
		name := "istio-goals["
		for i, r := range rows {
			if i > 0 {
				name += "; "
			}
			name += r.String()
		}
		name += "]"
		p.Goals = append(p.Goals, NamedGoal{Name: name, Formula: f})
	}
	return p, st, nil
}

func exposureHas(exposure map[string][]int, svc, key string) bool {
	for _, p := range exposure[svc] {
		if fmt.Sprintf("%d", p) == key {
			return true
		}
	}
	return false
}
