package muppet

import (
	"muppet/internal/encode"
	"muppet/internal/envelope"
	"muppet/internal/relational"
)

// ConformanceOutcome records one run of the Fig. 7 solver-aided
// conformance workflow between an inflexible provider A and a tenant B.
type ConformanceOutcome struct {
	// ProviderConsistent is Alg. 1 on A's offer.
	ProviderConsistent bool
	// Envelope is E_{A→B}, computed once (Fig. 7: "the envelope E_{A→B}
	// need never be recomputed").
	Envelope *envelope.Envelope
	// CandidateOK reports whether B's original configuration already
	// satisfied the envelope (first branch of Fig. 8).
	CandidateOK bool
	// Edits are the minimal changes B's revision made (Fig. 8).
	Edits []Edit
	// Reconciled is the final Alg. 2 verdict on the delivered pair.
	Reconciled bool
	// Feedback explains the failing step, if any.
	Feedback *Feedback
	// FailedStep names the step that failed ("local-consistency",
	// "revision", "reconcile"), empty on success.
	FailedStep string
}

// RunConformance drives the Fig. 7 workflow: check A's local consistency,
// compute E_{A→B}, let B revise via the Fig. 8 aid (checking its candidate
// and, if needed, computing a minimal edit satisfying the envelope and its
// own goals), then reconcile the offers. On success both parties adopt the
// delivered configurations.
func RunConformance(sys *encode.System, provider, tenant *Party) *ConformanceOutcome {
	out := &ConformanceOutcome{}

	lc := LocalConsistency(sys, provider, []*Party{tenant})
	out.ProviderConsistent = lc.OK
	if !lc.OK {
		out.Feedback = lc.Feedback
		out.FailedStep = "local-consistency"
		return out
	}

	out.Envelope = ComputeEnvelope(sys, tenant, []*Party{provider})

	// Fig. 8: does the tenant's current configuration already conform?
	ok, _ := CheckCandidate(sys, tenant, out.Envelope, true, provider)
	out.CandidateOK = ok
	if !ok {
		constraints := append([]relational.Formula{out.Envelope.Formula()}, tenant.GoalFormulas()...)
		revision := MinimalEdit(sys, tenant, constraints, provider)
		if !revision.OK {
			out.Feedback = revision.Feedback
			out.FailedStep = "revision"
			return out
		}
		out.Edits = revision.Edits
		tenant.adopt(revision.Instance)
	}

	rec := Reconcile(sys, []*Party{provider, tenant})
	out.Reconciled = rec.OK
	if !rec.OK {
		out.Feedback = rec.Feedback
		out.FailedStep = "reconcile"
		return out
	}
	provider.adopt(rec.Instance)
	tenant.adopt(rec.Instance)
	return out
}
