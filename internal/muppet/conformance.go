package muppet

import (
	"context"

	"muppet/internal/encode"
	"muppet/internal/envelope"
	"muppet/internal/relational"
	"muppet/internal/sat"
	"muppet/internal/target"
)

// ConformanceOutcome records one run of the Fig. 7 solver-aided
// conformance workflow between an inflexible provider A and a tenant B.
type ConformanceOutcome struct {
	// ProviderConsistent is Alg. 1 on A's offer.
	ProviderConsistent bool
	// Envelope is E_{A→B}, computed once (Fig. 7: "the envelope E_{A→B}
	// need never be recomputed").
	Envelope *envelope.Envelope
	// CandidateOK reports whether B's original configuration already
	// satisfied the envelope (first branch of Fig. 8).
	CandidateOK bool
	// Edits are the minimal changes B's revision made (Fig. 8).
	Edits []Edit
	// Reconciled is the final Alg. 2 verdict on the delivered pair.
	Reconciled bool
	// Feedback explains the failing step, if any.
	Feedback *Feedback
	// FailedStep names the step that failed ("local-consistency",
	// "revision", "reconcile"), empty on success.
	FailedStep string
	// Indeterminate is set when a solver budget or cancellation stopped
	// the step named by FailedStep before it reached a verdict; Stop says
	// why. No feedback is fabricated in that case.
	Indeterminate bool
	Stop          target.StopReason
}

// RunConformance drives the Fig. 7 workflow: check A's local consistency,
// compute E_{A→B}, let B revise via the Fig. 8 aid (checking its candidate
// and, if needed, computing a minimal edit satisfying the envelope and its
// own goals), then reconcile the offers. On success both parties adopt the
// delivered configurations.
func RunConformance(sys *encode.System, provider, tenant *Party) *ConformanceOutcome {
	return RunConformanceCtx(context.Background(), sys, provider, tenant, sat.Budget{})
}

// RunConformanceCtx is RunConformance under a cancellation context and a
// solver work budget shared by every solve of the workflow. A budget that
// expires mid-step marks the outcome Indeterminate with the failing step
// named, instead of misreporting the step as a proven failure.
func RunConformanceCtx(ctx context.Context, sys *encode.System, provider, tenant *Party, b sat.Budget) *ConformanceOutcome {
	return runConformanceCtx(ctx, nil, sys, provider, tenant, b)
}

// runConformanceCtx runs the Fig. 7 workflow with every solving step
// served through c (one-shot workspaces when c is nil).
func runConformanceCtx(ctx context.Context, c *SolveCache, sys *encode.System, provider, tenant *Party, b sat.Budget) *ConformanceOutcome {
	out := &ConformanceOutcome{}

	indeterminate := func(step string, stop target.StopReason) *ConformanceOutcome {
		out.FailedStep = step
		out.Indeterminate = true
		out.Stop = stop
		return out
	}

	lc := c.LocalConsistencyCtx(ctx, sys, provider, []*Party{tenant}, b)
	out.ProviderConsistent = lc.OK
	if lc.Indeterminate {
		return indeterminate("local-consistency", lc.Stop)
	}
	if !lc.OK {
		out.Feedback = lc.Feedback
		out.FailedStep = "local-consistency"
		return out
	}

	env, err := ComputeEnvelopeCtx(ctx, sys, tenant, []*Party{provider})
	if err != nil {
		return indeterminate("envelope", target.StopCancelled)
	}
	out.Envelope = env

	// Fig. 8: does the tenant's current configuration already conform?
	ok, _ := CheckCandidate(sys, tenant, out.Envelope, true, provider)
	out.CandidateOK = ok
	if !ok {
		constraints := append([]relational.Formula{out.Envelope.Formula()}, tenant.GoalFormulas()...)
		revision := c.MinimalEditCtx(ctx, sys, tenant, constraints, b, provider)
		if revision.Indeterminate {
			return indeterminate("revision", revision.Stop)
		}
		if !revision.OK {
			out.Feedback = revision.Feedback
			out.FailedStep = "revision"
			return out
		}
		out.Edits = revision.Edits
		tenant.adopt(revision.Instance)
	}

	rec := c.ReconcileCtx(ctx, sys, []*Party{provider, tenant}, b)
	if rec.Indeterminate {
		return indeterminate("reconcile", rec.Stop)
	}
	out.Reconciled = rec.OK
	if !rec.OK {
		out.Feedback = rec.Feedback
		out.FailedStep = "reconcile"
		return out
	}
	provider.adopt(rec.Instance)
	tenant.adopt(rec.Instance)
	return out
}
