package muppet

import (
	"muppet/internal/encode"
	"muppet/internal/envelope"
	"muppet/internal/relational"
)

// Negotiation drives the Fig. 9 solver-aided negotiation workflow: all
// parties register offers and goals up front; after an initial
// reconciliation attempt, parties take round-robin turns receiving an
// envelope from the rest and revising their offer into a minimally-edited
// counter-offer. The paper motivates round-robin over simultaneous
// envelope broadcast "to avoid forcing administrators to accommodate a
// potentially moving target" (Sec. 4.2); Sec. 7's N-party extension simply
// lengthens the cycle, which this implementation supports directly.
type Negotiation struct {
	sys     *encode.System
	parties []*Party
	turn    int
	// MaxRounds bounds the number of revision turns (default 2 cycles).
	MaxRounds int
}

// RoundReport records one revision turn.
type RoundReport struct {
	Round    int
	Party    string
	Envelope *envelope.Envelope
	// ConformedAlready is set when the party's current offer satisfied the
	// envelope and its own goals without edits.
	ConformedAlready bool
	// Revised is set when the party produced a counter-offer.
	Revised bool
	Edits   []Edit
	// Stuck is set when no revision of this party's offer can satisfy the
	// envelope together with its own goals — direct communication between
	// administrators is needed (Sec. 4.2).
	Stuck    bool
	Feedback *Feedback
	// Reconciled reports the Alg. 2 attempt after the revision.
	Reconciled bool
}

// NegotiationOutcome summarises a Run.
type NegotiationOutcome struct {
	Reconciled bool
	// InitialReconcile is true when the registered offers reconciled
	// immediately (top of Fig. 9).
	InitialReconcile bool
	Rounds           []*RoundReport
	// Feedback explains the terminal failure, if any.
	Feedback *Feedback
}

// NewNegotiation registers parties for negotiation. Order fixes the
// round-robin cycle.
func NewNegotiation(sys *encode.System, parties ...*Party) *Negotiation {
	return &Negotiation{sys: sys, parties: parties, MaxRounds: 2 * len(parties)}
}

// others returns all parties except index i.
func (n *Negotiation) others(i int) []*Party {
	out := make([]*Party, 0, len(n.parties)-1)
	for j, p := range n.parties {
		if j != i {
			out = append(out, p)
		}
	}
	return out
}

// Run executes the workflow until reconciliation succeeds, every party in
// a full cycle is stuck, or MaxRounds turns elapse. Successful runs adopt
// the reconciled configurations into every party.
func (n *Negotiation) Run() *NegotiationOutcome {
	out := &NegotiationOutcome{}

	// Reconcile initial offers (top of Fig. 9).
	rec := Reconcile(n.sys, n.parties)
	if rec.OK {
		n.adoptAll(rec.Instance)
		out.Reconciled = true
		out.InitialReconcile = true
		return out
	}
	out.Feedback = rec.Feedback

	stuckStreak := 0
	for round := 1; round <= n.MaxRounds; round++ {
		i := n.turn % len(n.parties)
		n.turn++
		p := n.parties[i]
		rep := &RoundReport{Round: round, Party: p.Name}
		out.Rounds = append(out.Rounds, rep)

		rep.Envelope = ComputeEnvelope(n.sys, p, n.others(i))

		// Fig. 8 aid for this party's revision phase.
		if ok, _ := CheckCandidate(n.sys, p, rep.Envelope, true, n.others(i)...); ok {
			rep.ConformedAlready = true
		} else {
			constraints := append([]relational.Formula{rep.Envelope.Formula()}, p.GoalFormulas()...)
			revision := MinimalEdit(n.sys, p, constraints, n.others(i)...)
			if !revision.OK {
				rep.Stuck = true
				rep.Feedback = revision.Feedback
				out.Feedback = revision.Feedback
				stuckStreak++
				if stuckStreak >= len(n.parties) {
					return out // a full cycle of stuck parties: humans must talk
				}
				continue
			}
			rep.Revised = true
			rep.Edits = revision.Edits
			p.adopt(revision.Instance)
		}
		stuckStreak = 0

		rec := Reconcile(n.sys, n.parties)
		rep.Reconciled = rec.OK
		if rec.OK {
			n.adoptAll(rec.Instance)
			out.Reconciled = true
			out.Feedback = nil
			return out
		}
		rep.Feedback = rec.Feedback
		out.Feedback = rec.Feedback
	}
	return out
}

func (n *Negotiation) adoptAll(inst *relational.Instance) {
	for _, p := range n.parties {
		p.adopt(inst)
	}
}
