package muppet

import (
	"context"

	"muppet/internal/encode"
	"muppet/internal/envelope"
	"muppet/internal/relational"
	"muppet/internal/sat"
	"muppet/internal/target"
)

// Negotiation drives the Fig. 9 solver-aided negotiation workflow: all
// parties register offers and goals up front; after an initial
// reconciliation attempt, parties take round-robin turns receiving an
// envelope from the rest and revising their offer into a minimally-edited
// counter-offer. The paper motivates round-robin over simultaneous
// envelope broadcast "to avoid forcing administrators to accommodate a
// potentially moving target" (Sec. 4.2); Sec. 7's N-party extension simply
// lengthens the cycle, which this implementation supports directly.
type Negotiation struct {
	sys     *encode.System
	parties []*Party
	turn    int
	// cache keeps live solving sessions across rounds: the repeated
	// reconciliations and each party's revision workspace become
	// incremental solves instead of per-round rebuilds.
	cache *SolveCache
	// MaxRounds bounds the number of revision turns (default 2 cycles).
	MaxRounds int
}

// TerminalReason classifies how a negotiation run ended. A MaxRounds
// exhaustion, a full stuck cycle, and a solver-budget interruption are
// distinct situations demanding different operator responses (wait
// longer vs. talk to each other vs. raise the budget), so the outcome
// names them explicitly.
type TerminalReason int

const (
	// ReasonReconciled: the run succeeded.
	ReasonReconciled TerminalReason = iota
	// ReasonExhaustedRounds: MaxRounds turns elapsed with progress still
	// possible — more rounds might succeed.
	ReasonExhaustedRounds
	// ReasonAllStuck: every party in a full cycle was stuck — no revision
	// can help; administrators must talk (Sec. 4.2).
	ReasonAllStuck
	// ReasonIndeterminate: a solver budget or cancellation interrupted a
	// round; the run is neither a success nor a proven failure.
	ReasonIndeterminate
)

func (r TerminalReason) String() string {
	switch r {
	case ReasonReconciled:
		return "reconciled"
	case ReasonExhaustedRounds:
		return "exhausted-rounds"
	case ReasonAllStuck:
		return "all-stuck"
	default:
		return "indeterminate"
	}
}

// RoundReport records one revision turn.
type RoundReport struct {
	Round    int
	Party    string
	Envelope *envelope.Envelope
	// ConformedAlready is set when the party's current offer satisfied the
	// envelope and its own goals without edits.
	ConformedAlready bool
	// Revised is set when the party produced a counter-offer.
	Revised bool
	Edits   []Edit
	// Stuck is set when no revision of this party's offer can satisfy the
	// envelope together with its own goals — direct communication between
	// administrators is needed (Sec. 4.2).
	Stuck bool
	// Indeterminate is set when a solver budget or cancellation cut this
	// round short: the party is not known to be stuck, the round simply
	// never finished.
	Indeterminate bool
	Feedback      *Feedback
	// Reconciled reports the Alg. 2 attempt after the revision.
	Reconciled bool
}

// NegotiationOutcome summarises a Run.
type NegotiationOutcome struct {
	Reconciled bool
	// InitialReconcile is true when the registered offers reconciled
	// immediately (top of Fig. 9).
	InitialReconcile bool
	// Reason states how the run terminated.
	Reason TerminalReason
	// Stop carries the solver stop cause when Reason is
	// ReasonIndeterminate.
	Stop   target.StopReason
	Rounds []*RoundReport
	// Feedback explains the terminal failure, if any. It is never set for
	// an indeterminate run: an interrupted solve proves nothing to blame.
	Feedback *Feedback
}

// NewNegotiation registers parties for negotiation. Order fixes the
// round-robin cycle.
func NewNegotiation(sys *encode.System, parties ...*Party) *Negotiation {
	return &Negotiation{sys: sys, parties: parties, cache: NewSolveCache(), MaxRounds: 2 * len(parties)}
}

// CacheStats reports the session-reuse counters accumulated across this
// negotiation's rounds.
func (n *Negotiation) CacheStats() ReuseStats { return n.cache.Stats() }

// UseCache serves this negotiation's solves from c instead of the
// negotiation's own private cache. A long-lived mediator process passes
// one shared cache to successive negotiations over the same system, so
// even the first reconciliation of a new run lands on a warm session.
// Returns n for chaining.
func (n *Negotiation) UseCache(c *SolveCache) *Negotiation {
	n.cache = c
	return n
}

// others returns all parties except index i.
func (n *Negotiation) others(i int) []*Party {
	out := make([]*Party, 0, len(n.parties)-1)
	for j, p := range n.parties {
		if j != i {
			out = append(out, p)
		}
	}
	return out
}

// Run executes the workflow until reconciliation succeeds, every party in
// a full cycle is stuck, or MaxRounds turns elapse. Successful runs adopt
// the reconciled configurations into every party.
func (n *Negotiation) Run() *NegotiationOutcome {
	return n.RunCtx(context.Background(), sat.Budget{})
}

// RunCtx is Run under a cancellation context and a solver work budget
// shared by every solve of the workflow. A budget that expires mid-run
// terminates the negotiation with ReasonIndeterminate — an interrupted
// round is reported as such, never misreported as a stuck party or a
// failed reconciliation.
func (n *Negotiation) RunCtx(ctx context.Context, b sat.Budget) *NegotiationOutcome {
	out := &NegotiationOutcome{}

	indeterminate := func(rep *RoundReport, stop target.StopReason) *NegotiationOutcome {
		if rep != nil {
			rep.Indeterminate = true
		}
		out.Reason = ReasonIndeterminate
		out.Stop = stop
		out.Feedback = nil
		return out
	}

	// Reconcile initial offers (top of Fig. 9).
	rec := n.cache.ReconcileCtx(ctx, n.sys, n.parties, b)
	if rec.Indeterminate {
		return indeterminate(nil, rec.Stop)
	}
	if rec.OK {
		n.adoptAll(rec.Instance)
		out.Reconciled = true
		out.InitialReconcile = true
		out.Reason = ReasonReconciled
		return out
	}
	out.Feedback = rec.Feedback

	stuckStreak := 0
	for round := 1; round <= n.MaxRounds; round++ {
		i := n.turn % len(n.parties)
		n.turn++
		p := n.parties[i]
		rep := &RoundReport{Round: round, Party: p.Name}
		out.Rounds = append(out.Rounds, rep)

		env, err := ComputeEnvelopeCtx(ctx, n.sys, p, n.others(i))
		if err != nil {
			return indeterminate(rep, target.StopCancelled)
		}
		rep.Envelope = env

		// Fig. 8 aid for this party's revision phase.
		if ok, _ := CheckCandidate(n.sys, p, rep.Envelope, true, n.others(i)...); ok {
			rep.ConformedAlready = true
		} else {
			constraints := append([]relational.Formula{rep.Envelope.Formula()}, p.GoalFormulas()...)
			revision := n.cache.MinimalEditCtx(ctx, n.sys, p, constraints, b, n.others(i)...)
			if revision.Indeterminate {
				return indeterminate(rep, revision.Stop)
			}
			if !revision.OK {
				rep.Stuck = true
				rep.Feedback = revision.Feedback
				out.Feedback = revision.Feedback
				stuckStreak++
				if stuckStreak >= len(n.parties) {
					// A full cycle of stuck parties: humans must talk.
					out.Reason = ReasonAllStuck
					return out
				}
				continue
			}
			rep.Revised = true
			rep.Edits = revision.Edits
			p.adopt(revision.Instance)
		}
		stuckStreak = 0

		rec := n.cache.ReconcileCtx(ctx, n.sys, n.parties, b)
		if rec.Indeterminate {
			return indeterminate(rep, rec.Stop)
		}
		rep.Reconciled = rec.OK
		if rec.OK {
			n.adoptAll(rec.Instance)
			out.Reconciled = true
			out.Reason = ReasonReconciled
			out.Feedback = nil
			return out
		}
		rep.Feedback = rec.Feedback
		out.Feedback = rec.Feedback
	}
	out.Reason = ReasonExhaustedRounds
	return out
}

func (n *Negotiation) adoptAll(inst *relational.Instance) {
	for _, p := range n.parties {
		p.adopt(inst)
	}
}
