package simp

import (
	"math/rand"
	"reflect"
	"testing"
)

// evalClauses reports whether the assignment (indexed by var) satisfies
// every clause.
func evalClauses(clauses [][]Lit, assign []bool) bool {
	for _, c := range clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var()] != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// bruteSat searches all assignments over nVars variables for a model of
// clauses ∧ units; returns (model, true) or (nil, false).
func bruteSat(clauses [][]Lit, units []Lit, nVars int) ([]bool, bool) {
	all := append([][]Lit{}, clauses...)
	for _, u := range units {
		all = append(all, []Lit{u})
	}
	assign := make([]bool, nVars)
	for m := 0; m < 1<<nVars; m++ {
		for v := 0; v < nVars; v++ {
			assign[v] = m&(1<<v) != 0
		}
		if evalClauses(all, assign) {
			out := make([]bool, nVars)
			copy(out, assign)
			return out, true
		}
	}
	return nil, false
}

func lit(v int, neg bool) Lit { return MkLit(int32(v), neg) }

func TestSubsumptionRemovesSuperset(t *testing.T) {
	p := New()
	res := p.Run([][]Lit{
		{lit(0, false), lit(1, false)},
		{lit(0, false), lit(1, false), lit(2, false)},
	}, nil)
	if res.Unsat {
		t.Fatal("unexpected unsat")
	}
	// With nothing frozen both vars 0/1 are eliminable, so freeze to
	// observe pure subsumption.
	p2 := New()
	for v := int32(0); v < 3; v++ {
		p2.Freeze(v)
	}
	res = p2.Run([][]Lit{
		{lit(0, false), lit(1, false)},
		{lit(0, false), lit(1, false), lit(2, false)},
	}, nil)
	if len(res.Clauses) != 1 || len(res.Clauses[0]) != 2 {
		t.Fatalf("want the subsumed clause removed, got %v", res.Clauses)
	}
	if p2.Stats.ClausesSubsumed != 1 {
		t.Fatalf("subsumed stat = %d, want 1", p2.Stats.ClausesSubsumed)
	}
}

func TestSelfSubsumingResolutionStrengthens(t *testing.T) {
	p := New()
	for v := int32(0); v < 3; v++ {
		p.Freeze(v)
	}
	// (a ∨ b) self-subsumes (¬a ∨ b ∨ c) to (b ∨ c), which (a ∨ b) does
	// not subsume; expect both clauses, the second strengthened.
	res := p.Run([][]Lit{
		{lit(0, false), lit(1, false)},
		{lit(0, true), lit(1, false), lit(2, false)},
	}, nil)
	if res.Unsat {
		t.Fatal("unexpected unsat")
	}
	if p.Stats.LitsStrengthened != 1 {
		t.Fatalf("strengthened stat = %d, want 1", p.Stats.LitsStrengthened)
	}
	for _, c := range res.Clauses {
		for _, l := range c {
			if l == lit(0, true) {
				t.Fatalf("¬a survived strengthening: %v", res.Clauses)
			}
		}
	}
}

func TestFrozenVariablesSurvive(t *testing.T) {
	p := New()
	p.Freeze(0)
	res := p.Run([][]Lit{
		{lit(0, false), lit(1, false)},
		{lit(0, true), lit(1, true)},
	}, nil)
	if res.Unsat {
		t.Fatal("unexpected unsat")
	}
	if p.Eliminated(0) {
		t.Fatal("frozen variable was eliminated")
	}
	if !p.Eliminated(1) {
		t.Fatal("free variable 1 should have been eliminated")
	}
}

func TestPureLiteralElimination(t *testing.T) {
	p := New()
	p.Freeze(1)
	p.Freeze(2)
	// Var 0 occurs only positively: eliminating it produces no resolvents
	// and drops its clause.
	res := p.Run([][]Lit{
		{lit(0, false), lit(1, false)},
		{lit(1, false), lit(2, false)},
	}, nil)
	if !p.Eliminated(0) {
		t.Fatal("pure variable not eliminated")
	}
	if len(res.Clauses) != 1 {
		t.Fatalf("want 1 clause, got %v", res.Clauses)
	}
	// Extension must satisfy the recorded clause.
	model := []bool{false, false, false}
	p.Extend(model)
	if !evalClauses([][]Lit{{lit(0, false), lit(1, false)}}, model) {
		t.Fatalf("extended model %v violates recorded clause", model)
	}
}

func TestUnsatThroughStrengthening(t *testing.T) {
	p := New()
	for v := int32(0); v < 2; v++ {
		p.Freeze(v)
	}
	res := p.Run([][]Lit{
		{lit(0, false)},
		{lit(0, true)},
	}, nil)
	if !res.Unsat {
		t.Fatal("want unsat from contradictory units")
	}
}

func TestRestoreReturnsClausesAndReactivates(t *testing.T) {
	p := New()
	p.Freeze(1)
	orig := [][]Lit{
		{lit(0, false), lit(1, false)},
		{lit(0, true), lit(1, true)},
	}
	p.Run(orig, nil)
	if !p.Eliminated(0) {
		t.Fatal("var 0 should be eliminated")
	}
	back := p.Restore(0)
	if len(back) != 2 {
		t.Fatalf("restore returned %d clauses, want 2", len(back))
	}
	if p.Eliminated(0) {
		t.Fatal("var 0 still eliminated after restore")
	}
	if p.Restore(0) != nil {
		t.Fatal("second restore should return nil")
	}
	// Extend must now leave var 0 alone (dead record).
	model := []bool{true, true}
	p.Extend(model)
	if !model[0] {
		t.Fatal("Extend overwrote a restored variable")
	}
}

func TestDeterministicRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	clauses := randomCNF(rng, 10, 30)
	frozen := []int32{0, 3, 7}
	run := func() ([][]Lit, []Lit, Stats) {
		p := New()
		for _, v := range frozen {
			p.Freeze(v)
		}
		r := p.Run(clauses, nil)
		return r.Clauses, r.Units, p.Stats
	}
	c1, u1, s1 := run()
	c2, u2, s2 := run()
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(u1, u2) || s1 != s2 {
		t.Fatal("two runs over the same input disagree")
	}
}

func randomCNF(rng *rand.Rand, nVars, nClauses int) [][]Lit {
	var out [][]Lit
	for i := 0; i < nClauses; i++ {
		width := 1 + rng.Intn(3)
		seen := map[int32]bool{}
		var c []Lit
		for len(c) < width {
			v := int32(rng.Intn(nVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			c = append(c, MkLit(v, rng.Intn(2) == 0))
		}
		out = append(out, c)
	}
	return out
}

// TestRandomEquisatisfiableWithReconstruction is the core soundness
// property: preprocessing preserves satisfiability, and any model of the
// simplified formula extends (via the reconstruction stack) to a model of
// the original.
func TestRandomEquisatisfiableWithReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nVars = 9
	for iter := 0; iter < 500; iter++ {
		clauses := randomCNF(rng, nVars, 4+rng.Intn(28))
		p := New()
		p.EnsureVars(nVars)
		// Freeze a random subset so both frozen and free paths are hit.
		for v := int32(0); v < nVars; v++ {
			if rng.Intn(3) == 0 {
				p.Freeze(v)
			}
		}
		res := p.Run(clauses, nil)

		_, origSat := bruteSat(clauses, nil, nVars)
		if res.Unsat {
			if origSat {
				t.Fatalf("iter %d: simp says unsat, original is sat\n%v", iter, clauses)
			}
			continue
		}
		simpModel, simpSat := bruteSat(res.Clauses, res.Units, nVars)
		if simpSat != origSat {
			t.Fatalf("iter %d: simplified sat=%v, original sat=%v\n%v", iter, simpSat, origSat, clauses)
		}
		if !simpSat {
			continue
		}
		p.Extend(simpModel)
		if !evalClauses(clauses, simpModel) {
			t.Fatalf("iter %d: extended model %v violates original\n%v", iter, simpModel, clauses)
		}
	}
}

// TestRandomAbortStillSound checks that aborting mid-run yields a valid
// (partially simplified) database.
func TestRandomAbortStillSound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const nVars = 8
	for iter := 0; iter < 200; iter++ {
		clauses := randomCNF(rng, nVars, 4+rng.Intn(20))
		budget := rng.Intn(5)
		calls := 0
		p := New()
		p.EnsureVars(nVars)
		res := p.Run(clauses, func() bool {
			calls++
			return calls > budget
		})
		_, origSat := bruteSat(clauses, nil, nVars)
		if res.Unsat {
			if origSat {
				t.Fatalf("iter %d: aborted simp says unsat, original is sat", iter)
			}
			continue
		}
		simpModel, simpSat := bruteSat(res.Clauses, res.Units, nVars)
		if simpSat != origSat {
			t.Fatalf("iter %d: aborted simp sat=%v, original sat=%v", iter, simpSat, origSat)
		}
		if simpSat {
			p.Extend(simpModel)
			if !evalClauses(clauses, simpModel) {
				t.Fatalf("iter %d: extended model violates original", iter)
			}
		}
	}
}
