// Package simp implements SatELite-style CNF preprocessing: bounded
// variable elimination by clause distribution, clause subsumption, and
// self-subsuming resolution (strengthening), together with the two pieces
// of bookkeeping that make preprocessing safe in an incremental,
// model-producing solver:
//
//   - a frozen-variable interface: variables whose identity matters outside
//     the clause database — relational tuple variables, assumption and
//     selector literals, cardinality outputs — are frozen by the callers
//     that own them and are never eliminated;
//   - a model-reconstruction stack: eliminating a variable records the
//     clauses it appeared in, and Extend replays the stack in reverse to
//     give eliminated variables values consistent with every recorded
//     clause, so a model of the simplified formula extends to a model of
//     the original one.
//
// The working state is flat: clause literals live in one per-run arena
// indexed by (offset, length) clause headers, clauses are referenced by
// index, and occurrence lists hold indices — a Run makes O(1) allocations
// per pass instead of two per clause, which matters because preprocessing
// runs on every cold reconcile and again during solver inprocessing.
//
// The package is deliberately below package sat in the import graph (sat
// drives it before search), so it defines its own literal type with the
// same encoding and no solver dependencies. All iteration is over slices
// in index order: given the same input, a run makes the same eliminations
// in the same order, which the byte-stability guarantees upstream rely on.
package simp

// Lit is a literal: variable v as 2v (positive) or 2v+1 (negated) — the
// same encoding as sat.Lit, so conversion is a cast.
type Lit int32

// MkLit builds a literal from a variable index and a sign.
func MkLit(v int32, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int32 { return int32(l) >> 1 }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Effort bounds keeping elimination cheap: a variable is only eliminated
// when distributing its clauses does not grow the database (the classic
// grow=0 rule), and pathological variables are skipped outright.
const (
	occLim    = 12  // skip if both polarities occur more often than this
	pairLim   = 600 // skip if the resolvent candidate count exceeds this
	clauseLim = 24  // never produce a resolvent longer than this
)

// Stats counts preprocessing work across a Preprocessor's lifetime.
type Stats struct {
	Runs             int64 // completed Run calls
	VarsEliminated   int64 // variables eliminated (net of restores)
	ClausesSubsumed  int64 // clauses deleted by subsumption
	LitsStrengthened int64 // literals removed by self-subsuming resolution
	ClausesIn        int64 // clauses most recently handed to Run
	ClausesOut       int64 // clauses most recently returned by Run
	Restored         int64 // variables un-eliminated by Restore
}

// elimRecord is one entry of the reconstruction stack: the variable and
// the clauses (all of which mention it) that were removed when it was
// eliminated, stored flat — one literal buffer with prefix ends.
type elimRecord struct {
	v    int32
	flat []Lit
	ends []int32 // ends[i] is the exclusive end of clause i in flat
	dead bool    // restored; skipped by Extend
}

// Preprocessor holds the state that must persist across runs of an
// incremental solver: which variables are frozen, which are currently
// eliminated, and the reconstruction stack. It is not safe for concurrent
// use.
type Preprocessor struct {
	frozen  []bool
	elim    []bool
	records []elimRecord
	recIdx  map[int32]int // eliminated var → live index into records

	// Stats accumulates counters across Run calls.
	Stats Stats
}

// New returns an empty preprocessor.
func New() *Preprocessor {
	return &Preprocessor{recIdx: make(map[int32]int)}
}

// EnsureVars grows the variable tables to cover at least n variables.
func (p *Preprocessor) EnsureVars(n int) {
	for len(p.frozen) < n {
		p.frozen = append(p.frozen, false)
		p.elim = append(p.elim, false)
	}
}

// Freeze marks v as never-eliminate. Callers must Restore an eliminated
// variable before freezing it (package sat does this transparently).
func (p *Preprocessor) Freeze(v int32) {
	p.EnsureVars(int(v) + 1)
	p.frozen[v] = true
}

// Frozen reports whether v is frozen.
func (p *Preprocessor) Frozen(v int32) bool {
	return int(v) < len(p.frozen) && p.frozen[v]
}

// Eliminated reports whether v is currently eliminated.
func (p *Preprocessor) Eliminated(v int32) bool {
	return int(v) < len(p.elim) && p.elim[v]
}

// NumEliminated returns the number of currently eliminated variables.
func (p *Preprocessor) NumEliminated() int { return len(p.recIdx) }

// Restore un-eliminates v and returns the clauses recorded at its
// elimination; the caller must re-add them to its database (they may
// mention other eliminated variables, which then need restoring too).
// The returned slices view the record's retained buffer and stay valid.
// Returns nil when v is not eliminated.
func (p *Preprocessor) Restore(v int32) [][]Lit {
	idx, ok := p.recIdx[v]
	if !ok {
		return nil
	}
	rec := &p.records[idx]
	rec.dead = true
	delete(p.recIdx, v)
	p.elim[v] = false
	p.Stats.VarsEliminated--
	p.Stats.Restored++
	out := make([][]Lit, len(rec.ends))
	start := int32(0)
	for i, end := range rec.ends {
		out[i] = rec.flat[start:end]
		start = end
	}
	return out
}

// Extend assigns every eliminated variable a value consistent with its
// recorded clauses, walking the reconstruction stack newest-first so that
// variables eliminated later (whose records the earlier ones may mention)
// are valued first. model is indexed by variable and must cover every
// recorded variable; entries for eliminated variables are overwritten.
func (p *Preprocessor) Extend(model []bool) {
	for i := len(p.records) - 1; i >= 0; i-- {
		rec := &p.records[i]
		if rec.dead {
			continue
		}
		// Default false; a recorded clause that needs v true and is not
		// otherwise satisfied forces true. The resolvents kept in the
		// database guarantee no clause then needs v false.
		val := false
		start := int32(0)
		for _, end := range rec.ends {
			cls := rec.flat[start:end]
			start = end
			needsTrue, satisfied := false, false
			for _, l := range cls {
				if l.Var() == rec.v {
					needsTrue = !l.Neg()
					continue
				}
				if model[l.Var()] != l.Neg() {
					satisfied = true
					break
				}
			}
			if !satisfied && needsTrue {
				val = true
				break
			}
		}
		model[rec.v] = val
	}
}

// Result is the outcome of one Run.
type Result struct {
	// Clauses is the simplified database (each with ≥ 2 literals, sorted,
	// duplicate- and tautology-free). The slices view the run's literal
	// arena: they stay valid until the caller drops the Result, but the
	// caller is expected to copy them into its own database promptly.
	Clauses [][]Lit
	// Units are facts derived during simplification, to be enqueued at
	// level 0 by the caller.
	Units []Lit
	// Unsat reports that simplification derived the empty clause.
	Unsat bool
}

// Run simplifies the given clause database. Input clauses must be free of
// duplicate literals and tautologies (sat.AddClause guarantees this) and
// must not mention currently eliminated variables. abort, when non-nil,
// is polled between variable eliminations; aborting returns the valid
// partial result. The input slices are not modified.
func (p *Preprocessor) Run(clauses [][]Lit, abort func() bool) Result {
	p.Stats.Runs++
	p.Stats.ClausesIn = int64(len(clauses))
	for _, lits := range clauses {
		for _, l := range lits {
			p.EnsureVars(int(l.Var()) + 1)
		}
	}
	total := 0
	for _, lits := range clauses {
		total += len(lits)
	}
	rs := &runState{p: p, abort: abort}
	// Half again the input size leaves headroom for resolvents before the
	// arena has to grow.
	rs.arena = make([]Lit, 0, total+total/2)
	rs.cls = make([]cl, 0, len(clauses))
	rs.occ = make([][]clRef, 2*len(p.frozen))
	rs.occDirty = make([]bool, 2*len(p.frozen))
	rs.assigns = make([]int8, len(p.frozen))
	// Pre-size the occurrence lists: one counting pass over the input, then
	// every list is carved out of a single flat arena, capacity-clamped so
	// an append past its count cannot clobber a neighbour. The counts are
	// upper bounds (clauses reduced away under the current assignment never
	// claim their slots), and lists grown later by resolvents fall back to
	// ordinary reallocation — both fine; what matters is that loading the
	// input costs O(1) allocations instead of a grow chain per literal.
	occCnt := make([]int32, 2*len(p.frozen))
	for _, lits := range clauses {
		for _, l := range lits {
			occCnt[l]++
		}
	}
	// A quarter slack per list absorbs most resolvent appends from BVE
	// without reallocating the list.
	occPad := func(n int) int { return n + n/4 + 2 }
	padded := 0
	for _, n := range occCnt {
		padded += occPad(int(n))
	}
	occArena := make([]clRef, padded)
	off := 0
	for l := range rs.occ {
		n := int(occCnt[l])
		rs.occ[l] = occArena[off : off : off+occPad(n)]
		off += occPad(n)
	}
	for _, lits := range clauses {
		rs.addClause(lits)
		if rs.unsat {
			return Result{Units: rs.units, Unsat: true}
		}
	}
	rs.propagateUnits()

	// Subsume and strengthen to a fixpoint, then eliminate variables;
	// each elimination queues its resolvents for further subsumption, so
	// alternate until neither pass changes anything.
	rs.processSubsumption()
	for !rs.unsat && rs.eliminateVars() {
	}

	res := Result{Units: rs.units, Unsat: rs.unsat}
	if !rs.unsat {
		res.Clauses = make([][]Lit, 0, len(rs.cls))
		for ci := range rs.cls {
			if !rs.cls[ci].deleted {
				res.Clauses = append(res.Clauses, rs.litsOf(clRef(ci)))
			}
		}
	}
	p.Stats.ClausesOut = int64(len(res.Clauses))
	return res
}

// clRef references a working clause by index into runState.cls.
type clRef int32

// cl is one working clause header: its literals live in the run's arena
// at [off, off+n), kept sorted for two-pointer subset checks, with a
// variable-set signature as a subsumption prefilter. Strengthening
// compacts the literals in place and shrinks n.
type cl struct {
	off, n  int32
	sig     uint64
	deleted bool
	queued  bool // pending in the subsumption queue
}

func sigOf(lits []Lit) uint64 {
	var s uint64
	for _, l := range lits {
		s |= 1 << (uint(l.Var()) & 63)
	}
	return s
}

type runState struct {
	p        *Preprocessor
	arena    []Lit // every working clause's literals, contiguous
	cls      []cl
	occ      [][]clRef // indexed by literal; cleaned lazily
	occDirty []bool    // literal strengthened out of some clause since the list was last compacted
	assigns  []int8    // 0 undef, +1 true, -1 false
	units    []Lit
	pending  []Lit // units awaiting propagation
	subQueue []clRef
	subHead  int
	resBuf   []Lit   // resolvent scratch, reset per tryEliminate
	resEnds  []int32 // prefix ends into resBuf
	unsat    bool
	abort    func() bool
}

// litsOf returns the clause's current literal block in the arena. The
// view is invalidated by addClause (the arena may grow).
func (rs *runState) litsOf(ci clRef) []Lit {
	c := &rs.cls[ci]
	return rs.arena[c.off : c.off+c.n : c.off+c.n]
}

func (rs *runState) val(l Lit) int8 {
	v := rs.assigns[l.Var()]
	if l.Neg() {
		return -v
	}
	return v
}

// addClause installs a clause — its literals copied into the arena and
// sorted, reduced against the current assignment — and queues it for
// subsumption.
func (rs *runState) addClause(lits []Lit) {
	off := int32(len(rs.arena))
	for _, l := range lits {
		switch rs.val(l) {
		case 1:
			rs.arena = rs.arena[:off] // satisfied: roll back
			return
		case -1:
			continue
		}
		rs.arena = append(rs.arena, l)
	}
	out := rs.arena[off:]
	sortLits(out)
	switch len(out) {
	case 0:
		rs.unsat = true
		return
	case 1:
		u := out[0]
		rs.arena = rs.arena[:off]
		rs.enqueueUnit(u)
		return
	}
	ci := clRef(len(rs.cls))
	rs.cls = append(rs.cls, cl{off: off, n: int32(len(out)), sig: sigOf(out)})
	for _, l := range out {
		rs.occ[l] = append(rs.occ[l], ci)
	}
	rs.queueSub(ci)
}

func sortLits(ls []Lit) {
	// Insertion sort: clauses are short and often nearly sorted.
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}

func (rs *runState) queueSub(ci clRef) {
	if !rs.cls[ci].queued {
		rs.cls[ci].queued = true
		rs.subQueue = append(rs.subQueue, ci)
	}
}

func (rs *runState) enqueueUnit(l Lit) {
	switch rs.val(l) {
	case 1:
		return
	case -1:
		rs.unsat = true
		return
	}
	if l.Neg() {
		rs.assigns[l.Var()] = -1
	} else {
		rs.assigns[l.Var()] = 1
	}
	rs.units = append(rs.units, l)
	rs.pending = append(rs.pending, l)
}

// propagateUnits applies pending unit facts to the clause database:
// satisfied clauses are removed, falsified literals are stripped.
func (rs *runState) propagateUnits() {
	for len(rs.pending) > 0 && !rs.unsat {
		l := rs.pending[0]
		rs.pending = rs.pending[1:]
		for _, ci := range rs.occ[l] {
			rs.cls[ci].deleted = true
		}
		rs.occ[l] = nil
		neg := l.Not()
		for _, ci := range rs.occ[neg] {
			if rs.cls[ci].deleted {
				continue
			}
			rs.removeLit(ci, neg)
			if rs.unsat {
				return
			}
		}
		rs.occ[neg] = nil
	}
}

// removeLit strengthens the clause by dropping l in place, handling the
// unit and empty cases, and re-queues the stronger clause for subsumption.
func (rs *runState) removeLit(ci clRef, l Lit) {
	c := &rs.cls[ci]
	lits := rs.arena[c.off : c.off+c.n]
	k := 0
	for _, q := range lits {
		if q != l {
			lits[k] = q
			k++
		}
	}
	c.n = int32(k)
	lits = lits[:k]
	c.sig = sigOf(lits)
	rs.occDirty[l] = true // occ[l] now holds a stale entry for ci
	switch k {
	case 0:
		rs.unsat = true
	case 1:
		c.deleted = true
		rs.enqueueUnit(lits[0])
	default:
		rs.queueSub(ci)
	}
}

// liveOcc compacts and returns the live occurrence list of l: clauses
// neither deleted nor strengthened past l (strengthening leaves stale
// occurrence entries behind rather than scanning them out eagerly). The
// clause's variable-set signature screens out most stale entries before
// the binary search: strengthening recomputes the signature, so a clause
// that lost l usually lost its bit too.
func (rs *runState) liveOcc(l Lit) []clRef {
	out := rs.occ[l][:0]
	if !rs.occDirty[l] {
		// No clause lost l since the last compaction, so every non-deleted
		// entry is live; skip the membership checks entirely.
		for _, ci := range rs.occ[l] {
			if !rs.cls[ci].deleted {
				out = append(out, ci)
			}
		}
		rs.occ[l] = out
		return out
	}
	bit := uint64(1) << (uint(l.Var()) & 63)
	for _, ci := range rs.occ[l] {
		c := &rs.cls[ci]
		if c.deleted || c.sig&bit == 0 {
			continue
		}
		if containsLit(rs.arena[c.off:c.off+c.n], l) {
			out = append(out, ci)
		}
	}
	rs.occ[l] = out
	rs.occDirty[l] = false // compacted: stale entries are gone
	return out
}

func containsLit(sorted []Lit, l Lit) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == l
}

// litNone is the "no literal" sentinel for subsumeMatch.
const litNone Lit = -1

// subsumeMatch reports whether a ⊆ b allowing at most one literal of a to
// occur complemented in b (both sorted, tautology-free). flip is that
// literal, or litNone when a is an outright subset: a subsumes b when
// flip == litNone, and otherwise resolving a against b on flip's variable
// strengthens b by ¬flip. A literal and its complement are adjacent in
// the order (2v, 2v+1), so one two-pointer walk checks both cases.
func subsumeMatch(a, b []Lit) (ok bool, flip Lit) {
	if len(a) > len(b) {
		return false, litNone
	}
	flip = litNone
	j := 0
	for _, l := range a {
		base := l &^ 1
		for j < len(b) && b[j] < base {
			j++
		}
		if j == len(b) {
			return false, litNone
		}
		switch b[j] {
		case l:
		case l.Not():
			if flip != litNone {
				return false, litNone
			}
			flip = l
		default:
			return false, litNone
		}
		j++
	}
	return true, flip
}

// processSubsumption drains the queue: each queued clause removes the
// clauses it subsumes and strengthens the clauses it self-subsumes. Both
// effects are found in one scan (MiniSat-simp style): any clause d that c
// subsumes or strengthens must contain c's best (rarest) variable in one
// polarity or the other, so scanning that variable's two occurrence lists
// with the combined subsumeMatch check covers everything — instead of one
// occurrence-list sweep per literal of c, which was the preprocessing
// CPU hotspot at fleet scale.
func (rs *runState) processSubsumption() {
	rs.propagateUnits()
	for rs.subHead < len(rs.subQueue) && !rs.unsat {
		rs.propagateUnits()
		if rs.unsat {
			return
		}
		ci := rs.subQueue[rs.subHead]
		rs.subHead++
		rs.cls[ci].queued = false
		if rs.cls[ci].deleted || rs.cls[ci].n == 0 {
			continue
		}
		if rs.subHead == len(rs.subQueue) {
			// Queue drained: reset so the backing array is reused.
			rs.subQueue = rs.subQueue[:0]
			rs.subHead = 0
		}

		// Pick the variable with the fewest occurrences over both
		// polarities among c's literals.
		clits := rs.litsOf(ci)
		best := clits[0]
		bestLen := len(rs.occ[best]) + len(rs.occ[best.Not()])
		for _, l := range clits[1:] {
			if n := len(rs.occ[l]) + len(rs.occ[l.Not()]); n < bestLen {
				best, bestLen = l, n
			}
		}
		csig := rs.cls[ci].sig
		for _, p := range [2]Lit{best, best.Not()} {
			if rs.cls[ci].deleted {
				break
			}
			for _, di := range rs.liveOcc(p) {
				if di == ci || rs.cls[di].deleted {
					continue
				}
				if csig&^rs.cls[di].sig != 0 {
					continue
				}
				ok, flip := subsumeMatch(clits, rs.litsOf(di))
				if !ok {
					continue
				}
				if flip == litNone {
					rs.cls[di].deleted = true
					rs.p.Stats.ClausesSubsumed++
					continue
				}
				rs.removeLit(di, flip.Not())
				rs.p.Stats.LitsStrengthened++
				if rs.unsat {
					return
				}
			}
		}
	}
}

// resolveInto appends the resolvent of a (containing v positively) and b
// (containing v negatively), both sorted, to resBuf; ok is false for
// tautologies (resBuf is rolled back). n is the resolvent's length.
func (rs *runState) resolveInto(a, b []Lit, v int32) (n int, ok bool) {
	start := len(rs.resBuf)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var l Lit
		switch {
		case i == len(a):
			l = b[j]
			j++
		case j == len(b):
			l = a[i]
			i++
		case a[i] <= b[j]:
			l = a[i]
			i++
		default:
			l = b[j]
			j++
		}
		if l.Var() == v {
			continue
		}
		if k := len(rs.resBuf); k > start {
			if rs.resBuf[k-1] == l {
				continue // duplicate
			}
			if rs.resBuf[k-1] == l.Not() {
				rs.resBuf = rs.resBuf[:start]
				return 0, false // tautology
			}
		}
		rs.resBuf = append(rs.resBuf, l)
	}
	return len(rs.resBuf) - start, true
}

// eliminateVars makes one ascending pass over the variables, eliminating
// each one whose clause distribution does not grow the database. Returns
// whether anything changed.
func (rs *runState) eliminateVars() bool {
	changed := false
	for v := int32(0); int(v) < len(rs.p.frozen); v++ {
		if rs.unsat {
			return changed
		}
		if rs.abort != nil && rs.abort() {
			return false
		}
		if rs.p.frozen[v] || rs.p.elim[v] || rs.assigns[v] != 0 {
			continue
		}
		if rs.tryEliminate(v) {
			changed = true
		}
	}
	return changed
}

func (rs *runState) tryEliminate(v int32) bool {
	pos := rs.liveOcc(MkLit(v, false))
	neg := rs.liveOcc(MkLit(v, true))
	if len(pos)+len(neg) == 0 {
		return false // unconstrained; leave to the search
	}
	if len(pos) > occLim && len(neg) > occLim {
		return false
	}
	if len(pos)*len(neg) > pairLim {
		return false
	}
	limit := len(pos) + len(neg) // grow = 0
	rs.resBuf = rs.resBuf[:0]
	rs.resEnds = rs.resEnds[:0]
	for _, pc := range pos {
		for _, nc := range neg {
			n, ok := rs.resolveInto(rs.litsOf(pc), rs.litsOf(nc), v)
			if !ok {
				continue
			}
			if n > clauseLim {
				return false
			}
			rs.resEnds = append(rs.resEnds, int32(len(rs.resBuf)))
			if len(rs.resEnds) > limit {
				return false
			}
		}
	}

	// Commit: record and remove the variable's clauses, then distribute.
	// The record copies the literals into its own compact buffer — the
	// run's arena is transient, the reconstruction stack is not.
	words := 0
	for _, ci := range pos {
		words += int(rs.cls[ci].n)
	}
	for _, ci := range neg {
		words += int(rs.cls[ci].n)
	}
	rec := elimRecord{
		v:    v,
		flat: make([]Lit, 0, words),
		ends: make([]int32, 0, len(pos)+len(neg)),
	}
	for _, ci := range pos {
		rec.flat = append(rec.flat, rs.litsOf(ci)...)
		rec.ends = append(rec.ends, int32(len(rec.flat)))
		rs.cls[ci].deleted = true
	}
	for _, ci := range neg {
		rec.flat = append(rec.flat, rs.litsOf(ci)...)
		rec.ends = append(rec.ends, int32(len(rec.flat)))
		rs.cls[ci].deleted = true
	}
	rs.occ[MkLit(v, false)] = nil
	rs.occ[MkLit(v, true)] = nil
	rs.p.recIdx[v] = len(rs.p.records)
	rs.p.records = append(rs.p.records, rec)
	rs.p.elim[v] = true
	rs.p.Stats.VarsEliminated++
	start := int32(0)
	for _, end := range rs.resEnds {
		rs.addClause(rs.resBuf[start:end])
		start = end
		if rs.unsat {
			return true
		}
	}
	rs.processSubsumption()
	return true
}
