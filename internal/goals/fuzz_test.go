package goals

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse feeds arbitrary bytes to both goal-table parsers. The CSV
// surface faces operators directly, so malformed rows must surface as
// errors and valid rows must render back without panicking.
func FuzzParse(f *testing.F) {
	for _, name := range []string{"k8s_goals.csv", "istio_goals.csv", "istio_goals_revised.csv"} {
		data, err := os.ReadFile(filepath.Join("../../testdata/fig1", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("port,perm,selector\n23,deny,app=web\n"))
	f.Add([]byte("src,dst,srcPort,dstPort,perm\n*,db,*,16000\n"))
	f.Add([]byte("port,perm\n-1,maybe\n"))
	f.Add([]byte("\xff\xfe,,,\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if gs, err := ParseK8sGoals(bytes.NewReader(data)); err == nil {
			for _, g := range gs {
				_ = g.String()
			}
		}
		if gs, err := ParseIstioGoals(bytes.NewReader(data)); err == nil {
			for _, g := range gs {
				_ = g.String()
			}
		}
	})
}
