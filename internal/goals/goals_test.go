package goals

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseK8sGoalsFig2(t *testing.T) {
	gs, err := LoadK8sGoals("../../testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 {
		t.Fatalf("want 1 goal, got %d", len(gs))
	}
	g := gs[0]
	if g.Port != 23 || g.Allow || g.Selector != nil {
		t.Fatalf("Fig. 2 goal mismatch: %+v", g)
	}
	if g.String() != "23,DENY,*" {
		t.Fatalf("String: %q", g.String())
	}
}

func TestParseIstioGoalsFig3(t *testing.T) {
	gs, err := LoadIstioGoals("../../testdata/fig1/istio_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	want := []IstioGoal{
		{Src: "test-frontend", Dst: "test-backend", SrcPort: LitPort(24), DstPort: LitPort(25), Allow: true},
		{Src: "test-backend", Dst: "test-frontend", SrcPort: LitPort(26), DstPort: LitPort(23), Allow: true},
		{Src: "test-backend", Dst: "test-db", SrcPort: LitPort(14000), DstPort: LitPort(16000), Allow: true},
		{Src: "test-db", Dst: "test-backend", SrcPort: LitPort(10000), DstPort: LitPort(12000), Allow: true},
	}
	if !reflect.DeepEqual(gs, want) {
		t.Fatalf("got %+v\nwant %+v", gs, want)
	}
}

func TestParseIstioGoalsFig4Variables(t *testing.T) {
	gs, err := LoadIstioGoals("../../testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].SrcPort != VarPort("w") || gs[0].DstPort != VarPort("x") {
		t.Fatalf("row 1 variables: %+v", gs[0])
	}
	if gs[1].SrcPort != VarPort("y") || gs[1].DstPort != VarPort("z") {
		t.Fatalf("row 2 variables: %+v", gs[1])
	}
	if gs[2].DstPort != LitPort(16000) {
		t.Fatalf("row 3: %+v", gs[2])
	}
	if got := Vars(gs); !reflect.DeepEqual(got, []string{"w", "x", "y", "z"}) {
		t.Fatalf("Vars = %v", got)
	}
}

func TestUnicodeExistsSyntax(t *testing.T) {
	gs, err := ParseIstioGoals(strings.NewReader("a,b,∃w,∃x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].SrcPort != VarPort("w") || gs[0].DstPort != VarPort("x") {
		t.Fatalf("got %+v", gs[0])
	}
}

func TestWildcardAndPerm(t *testing.T) {
	gs, err := ParseIstioGoals(strings.NewReader(
		"srcService,dstService,srcPort,dstPort,perm\n*,test-db,*,16000,DENY\n"))
	if err != nil {
		t.Fatal(err)
	}
	g := gs[0]
	if g.Src != "*" || g.Allow || g.SrcPort.Kind != PortAny || g.DstPort != LitPort(16000) {
		t.Fatalf("got %+v", g)
	}
	if g.String() != "*,test-db,*,16000,DENY" {
		t.Fatalf("String: %q", g.String())
	}
}

func TestSelectorParsing(t *testing.T) {
	gs, err := ParseK8sGoals(strings.NewReader("8080,ALLOW,app=web tier=edge\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"app": "web", "tier": "edge"}
	if !reflect.DeepEqual(gs[0].Selector, want) {
		t.Fatalf("selector %v", gs[0].Selector)
	}
	if !gs[0].Allow {
		t.Fatal("perm ALLOW not parsed")
	}
}

func TestPortsHelper(t *testing.T) {
	k := []K8sGoal{{Port: 23}}
	i := []IstioGoal{
		{SrcPort: LitPort(24), DstPort: LitPort(25)},
		{SrcPort: VarPort("w"), DstPort: LitPort(23)},
	}
	if got := Ports(k, i); !reflect.DeepEqual(got, []int{23, 24, 25}) {
		t.Fatalf("Ports = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	k8sCases := []string{
		"notaport,DENY,*",
		"0,DENY,*",
		"70000,DENY,*",
		"23,MAYBE,*",
		"23,DENY,badselector",
		"23,DENY",
	}
	for _, src := range k8sCases {
		if _, err := ParseK8sGoals(strings.NewReader(src)); err == nil {
			t.Errorf("k8s %q: expected error", src)
		}
	}
	istioCases := []string{
		"a,b,24",
		"a,b,24,25,26,27",
		"a,b,?,25",
		"a,b,24,notaport",
		"a,b,24,25,MAYBE",
		",b,24,25",
	}
	for _, src := range istioCases {
		if _, err := ParseIstioGoals(strings.NewReader(src)); err == nil {
			t.Errorf("istio %q: expected error", src)
		}
	}
}

func TestHeaderOptional(t *testing.T) {
	with, err := ParseK8sGoals(strings.NewReader("port,perm,selector\n23,DENY,*\n"))
	if err != nil {
		t.Fatal(err)
	}
	without, err := ParseK8sGoals(strings.NewReader("23,DENY,*\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(with, without) {
		t.Fatalf("header handling differs: %v vs %v", with, without)
	}
}

func TestPortTermString(t *testing.T) {
	if LitPort(23).String() != "23" || AnyPort().String() != "*" || VarPort("w").String() != "?w" {
		t.Fatal("PortTerm rendering broken")
	}
}

// TestRoundTripQuick: rendering a goal row and re-parsing it yields the
// same row (testing/quick over randomized rows).
func TestRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	k8sProp := func(port uint16, allow bool, selIdx uint8) bool {
		p := int(port)
		if p == 0 {
			p = 1
		}
		selectors := []map[string]string{nil, {"app": "db"}, {"app": "db", "tier": "x"}}
		g := K8sGoal{Port: p, Allow: allow, Selector: selectors[int(selIdx)%3]}
		parsed, err := ParseK8sGoals(strings.NewReader(g.String() + "\n"))
		if err != nil || len(parsed) != 1 {
			return false
		}
		got := parsed[0]
		if got.Port != g.Port || got.Allow != g.Allow {
			return false
		}
		if len(g.Selector) == 0 {
			return got.Selector == nil
		}
		return reflect.DeepEqual(got.Selector, g.Selector)
	}
	if err := quick.Check(k8sProp, cfg); err != nil {
		t.Fatal(err)
	}

	istioProp := func(sp, dp uint16, kindS, kindD uint8, allow bool) bool {
		mk := func(kind uint8, port uint16, name string) PortTerm {
			switch kind % 3 {
			case 0:
				p := int(port)
				if p == 0 {
					p = 1
				}
				return LitPort(p)
			case 1:
				return AnyPort()
			default:
				return VarPort(name)
			}
		}
		g := IstioGoal{
			Src: "svc-a", Dst: "svc-b",
			SrcPort: mk(kindS, sp, "w"),
			DstPort: mk(kindD, dp, "z"),
			Allow:   allow,
		}
		parsed, err := ParseIstioGoals(strings.NewReader(g.String() + "\n"))
		if err != nil || len(parsed) != 1 {
			return false
		}
		return reflect.DeepEqual(parsed[0], g)
	}
	if err := quick.Check(istioProp, cfg); err != nil {
		t.Fatal(err)
	}
}
