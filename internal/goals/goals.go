// Package goals implements Muppet's administrator goal language: CSV
// tables of traffic requirements, as in the paper's Figs. 2–4.
//
// The K8s administrator states port-level goals (Fig. 2):
//
//	port,perm,selector
//	23,DENY,*
//
// The Istio administrator states service-to-service reachability goals
// (Figs. 3 and 4):
//
//	srcService,dstService,srcPort,dstPort
//	test-frontend,test-backend,24,25
//	test-backend,test-frontend,?y,?z
//
// Port cells may be concrete ports, `*` (any value acceptable, fresh
// choice per row), or existential variables written `?name` (or `∃name`);
// rows sharing a variable must agree on its value — Fig. 4's "variables
// capturing which must be the same". An optional trailing `perm` column
// (ALLOW/DENY) turns a row into a prohibition; it defaults to ALLOW, the
// reachability reading of Fig. 3.
package goals

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// PortKind distinguishes the three port-cell forms.
type PortKind uint8

// Port cell kinds.
const (
	PortLit PortKind = iota // a concrete port number
	PortAny                 // `*`: any value acceptable
	PortVar                 // `?x`: existential variable shared by name
)

// PortTerm is one port cell of an Istio goal row.
type PortTerm struct {
	Kind PortKind
	Port int    // valid when Kind == PortLit
	Var  string // valid when Kind == PortVar
}

// LitPort builds a concrete port term.
func LitPort(p int) PortTerm { return PortTerm{Kind: PortLit, Port: p} }

// AnyPort builds the `*` term.
func AnyPort() PortTerm { return PortTerm{Kind: PortAny} }

// VarPort builds an existential variable term.
func VarPort(name string) PortTerm { return PortTerm{Kind: PortVar, Var: name} }

func (t PortTerm) String() string {
	switch t.Kind {
	case PortLit:
		return strconv.Itoa(t.Port)
	case PortAny:
		return "*"
	default:
		return "?" + t.Var
	}
}

// K8sGoal is one row of the K8s goal table (Fig. 2): traffic to the
// selected services on Port must be allowed or denied.
type K8sGoal struct {
	Port     int
	Allow    bool
	Selector map[string]string // nil/empty = all services
}

func (g K8sGoal) String() string {
	perm := "DENY"
	if g.Allow {
		perm = "ALLOW"
	}
	return fmt.Sprintf("%d,%s,%s", g.Port, perm, selectorString(g.Selector))
}

// IstioGoal is one row of the Istio goal table (Figs. 3 and 4).
type IstioGoal struct {
	Src, Dst         string // service names; "*" = all services
	SrcPort, DstPort PortTerm
	Allow            bool
}

func (g IstioGoal) String() string {
	s := fmt.Sprintf("%s,%s,%s,%s", g.Src, g.Dst, g.SrcPort, g.DstPort)
	if !g.Allow {
		s += ",DENY"
	}
	return s
}

// Vars returns the distinct variable names used by the goal rows, sorted.
func Vars(gs []IstioGoal) []string {
	set := make(map[string]bool)
	for _, g := range gs {
		for _, t := range []PortTerm{g.SrcPort, g.DstPort} {
			if t.Kind == PortVar {
				set[t.Var] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Ports returns the concrete ports mentioned by goal rows, sorted.
func Ports(k8s []K8sGoal, istio []IstioGoal) []int {
	set := make(map[int]bool)
	for _, g := range k8s {
		set[g.Port] = true
	}
	for _, g := range istio {
		for _, t := range []PortTerm{g.SrcPort, g.DstPort} {
			if t.Kind == PortLit {
				set[t.Port] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// ParseK8sGoals reads the Fig. 2 CSV format. The header row is optional.
func ParseK8sGoals(r io.Reader) ([]K8sGoal, error) {
	rows, err := readRows(r, "k8s goals")
	if err != nil {
		return nil, err
	}
	var out []K8sGoal
	for i, row := range rows {
		if i == 0 && isHeader(row, "port") {
			continue
		}
		if len(row) != 3 {
			return nil, fmt.Errorf("goals: k8s row %d: want 3 columns (port,perm,selector), got %d", i+1, len(row))
		}
		port, err := strconv.Atoi(strings.TrimSpace(row[0]))
		if err != nil || port <= 0 || port > 65535 {
			return nil, fmt.Errorf("goals: k8s row %d: bad port %q", i+1, row[0])
		}
		allow, err := parsePerm(row[1])
		if err != nil {
			return nil, fmt.Errorf("goals: k8s row %d: %w", i+1, err)
		}
		sel, err := parseSelector(row[2])
		if err != nil {
			return nil, fmt.Errorf("goals: k8s row %d: %w", i+1, err)
		}
		out = append(out, K8sGoal{Port: port, Allow: allow, Selector: sel})
	}
	return out, nil
}

// ParseIstioGoals reads the Figs. 3/4 CSV format. The header row is
// optional; a 5th perm column is optional per row.
func ParseIstioGoals(r io.Reader) ([]IstioGoal, error) {
	rows, err := readRows(r, "istio goals")
	if err != nil {
		return nil, err
	}
	var out []IstioGoal
	for i, row := range rows {
		if i == 0 && isHeader(row, "srcservice") {
			continue
		}
		if len(row) != 4 && len(row) != 5 {
			return nil, fmt.Errorf("goals: istio row %d: want 4 or 5 columns, got %d", i+1, len(row))
		}
		g := IstioGoal{
			Src:   strings.TrimSpace(row[0]),
			Dst:   strings.TrimSpace(row[1]),
			Allow: true,
		}
		if g.Src == "" || g.Dst == "" {
			return nil, fmt.Errorf("goals: istio row %d: empty service name", i+1)
		}
		if g.SrcPort, err = parsePortTerm(row[2]); err != nil {
			return nil, fmt.Errorf("goals: istio row %d srcPort: %w", i+1, err)
		}
		if g.DstPort, err = parsePortTerm(row[3]); err != nil {
			return nil, fmt.Errorf("goals: istio row %d dstPort: %w", i+1, err)
		}
		if len(row) == 5 {
			if g.Allow, err = parsePerm(row[4]); err != nil {
				return nil, fmt.Errorf("goals: istio row %d: %w", i+1, err)
			}
		}
		out = append(out, g)
	}
	return out, nil
}

// LoadK8sGoals reads a Fig. 2 CSV file.
func LoadK8sGoals(path string) ([]K8sGoal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gs, err := ParseK8sGoals(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return gs, nil
}

// LoadIstioGoals reads a Figs. 3/4 CSV file.
func LoadIstioGoals(path string) ([]IstioGoal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gs, err := ParseIstioGoals(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return gs, nil
}

func readRows(r io.Reader, what string) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("goals: reading %s: %w", what, err)
	}
	return rows, nil
}

func isHeader(row []string, firstCol string) bool {
	return len(row) > 0 && strings.EqualFold(strings.TrimSpace(row[0]), firstCol)
}

func parsePerm(s string) (bool, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "ALLOW":
		return true, nil
	case "DENY":
		return false, nil
	}
	return false, fmt.Errorf("bad perm %q (want ALLOW or DENY)", s)
}

func parsePortTerm(s string) (PortTerm, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "*":
		return AnyPort(), nil
	case strings.HasPrefix(s, "?"):
		name := s[1:]
		if name == "" {
			return PortTerm{}, fmt.Errorf("empty variable name")
		}
		return VarPort(name), nil
	case strings.HasPrefix(s, "∃"):
		name := strings.TrimPrefix(s, "∃")
		if name == "" {
			return PortTerm{}, fmt.Errorf("empty variable name")
		}
		return VarPort(name), nil
	}
	p, err := strconv.Atoi(s)
	if err != nil || p <= 0 || p > 65535 {
		return PortTerm{}, fmt.Errorf("bad port %q", s)
	}
	return LitPort(p), nil
}

// parseSelector parses "*" or space-separated k=v pairs ("app=db tier=x").
func parseSelector(s string) (map[string]string, error) {
	s = strings.TrimSpace(s)
	if s == "*" || s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Fields(s) {
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("bad selector pair %q", pair)
		}
		out[kv[0]] = kv[1]
	}
	return out, nil
}

func selectorString(sel map[string]string) string {
	if len(sel) == 0 {
		return "*"
	}
	keys := make([]string, 0, len(sel))
	for k := range sel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + sel[k]
	}
	return strings.Join(parts, " ")
}
