package relational

import (
	"fmt"
	"sort"
	"strings"
)

// TupleSet is a set of equal-arity tuples over a universe.
type TupleSet struct {
	u     *Universe
	arity int
	m     map[string]Tuple
}

// NewTupleSet creates an empty tuple set of the given arity.
func NewTupleSet(u *Universe, arity int) *TupleSet {
	if arity < 1 {
		panic("relational: tuple set arity must be ≥ 1")
	}
	return &TupleSet{u: u, arity: arity, m: make(map[string]Tuple)}
}

// TupleSetOf builds a tuple set from atom-name rows. All rows must share
// one arity.
func TupleSetOf(u *Universe, rows ...[]string) *TupleSet {
	if len(rows) == 0 {
		panic("relational: TupleSetOf needs at least one row; use NewTupleSet for empty sets")
	}
	ts := NewTupleSet(u, len(rows[0]))
	for _, row := range rows {
		t := make(Tuple, len(row))
		for i, name := range row {
			t[i] = u.MustIndex(name)
		}
		ts.Add(t)
	}
	return ts
}

// AllTuples returns the full arity-ary cross product of the universe.
func AllTuples(u *Universe, arity int) *TupleSet {
	ts := NewTupleSet(u, arity)
	t := make(Tuple, arity)
	var rec func(i int)
	rec = func(i int) {
		if i == arity {
			ts.Add(t)
			return
		}
		for a := 0; a < u.Size(); a++ {
			t[i] = a
			rec(i + 1)
		}
	}
	rec(0)
	return ts
}

// Universe returns the backing universe.
func (ts *TupleSet) Universe() *Universe { return ts.u }

// Arity returns the tuple arity.
func (ts *TupleSet) Arity() int { return ts.arity }

// Len returns the number of tuples.
func (ts *TupleSet) Len() int { return len(ts.m) }

// Add inserts a copy of t.
func (ts *TupleSet) Add(t Tuple) *TupleSet {
	if len(t) != ts.arity {
		panic(fmt.Sprintf("relational: arity mismatch: adding %d-tuple to %d-ary set", len(t), ts.arity))
	}
	for _, a := range t {
		if a < 0 || a >= ts.u.Size() {
			panic(fmt.Sprintf("relational: atom index %d out of universe", a))
		}
	}
	c := make(Tuple, len(t))
	copy(c, t)
	ts.m[c.key()] = c
	return ts
}

// AddNames inserts a tuple given by atom names.
func (ts *TupleSet) AddNames(names ...string) *TupleSet {
	t := make(Tuple, len(names))
	for i, n := range names {
		t[i] = ts.u.MustIndex(n)
	}
	return ts.Add(t)
}

// Contains reports membership.
func (ts *TupleSet) Contains(t Tuple) bool {
	_, ok := ts.m[t.key()]
	return ok
}

// Remove deletes t if present.
func (ts *TupleSet) Remove(t Tuple) { delete(ts.m, t.key()) }

// Tuples returns the tuples in a deterministic (sorted-key) order.
func (ts *TupleSet) Tuples() []Tuple {
	keys := make([]string, 0, len(ts.m))
	for k := range ts.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = ts.m[k]
	}
	return out
}

// Clone returns a deep copy.
func (ts *TupleSet) Clone() *TupleSet {
	c := NewTupleSet(ts.u, ts.arity)
	for k, t := range ts.m {
		c.m[k] = t
	}
	return c
}

// UnionWith adds all tuples of o.
func (ts *TupleSet) UnionWith(o *TupleSet) *TupleSet {
	if o.arity != ts.arity {
		panic("relational: union arity mismatch")
	}
	for k, t := range o.m {
		ts.m[k] = t
	}
	return ts
}

// ContainsAll reports whether every tuple of o is in ts.
func (ts *TupleSet) ContainsAll(o *TupleSet) bool {
	for k := range o.m {
		if _, ok := ts.m[k]; !ok {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (ts *TupleSet) Equal(o *TupleSet) bool {
	return ts.arity == o.arity && len(ts.m) == len(o.m) && ts.ContainsAll(o)
}

// String renders the set as {(a, b), …}.
func (ts *TupleSet) String() string {
	parts := make([]string, 0, len(ts.m))
	for _, t := range ts.Tuples() {
		parts = append(parts, t.String(ts.u))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Relation is a declared relation: a name and an arity. Its extent in any
// instance is constrained by Bounds. Relations are compared by identity.
type Relation struct {
	name  string
	arity int
}

// NewRelation declares a relation.
func NewRelation(name string, arity int) *Relation {
	if arity < 1 {
		panic("relational: relation arity must be ≥ 1")
	}
	return &Relation{name: name, arity: arity}
}

// Name returns the relation's declared name.
func (r *Relation) Name() string { return r.name }

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Bounds assigns every relation a lower bound (tuples that must be present)
// and an upper bound (tuples that may be present). The solver chooses an
// extent between the two for each relation.
type Bounds struct {
	u     *Universe
	order []*Relation
	lower map[*Relation]*TupleSet
	upper map[*Relation]*TupleSet
}

// NewBounds creates empty bounds over a universe.
func NewBounds(u *Universe) *Bounds {
	return &Bounds{
		u:     u,
		lower: make(map[*Relation]*TupleSet),
		upper: make(map[*Relation]*TupleSet),
	}
}

// Universe returns the bounds' universe.
func (b *Bounds) Universe() *Universe { return b.u }

// Bound sets lower and upper bounds for r. lower must be a subset of upper.
func (b *Bounds) Bound(r *Relation, lower, upper *TupleSet) {
	if lower.arity != r.arity || upper.arity != r.arity {
		panic(fmt.Sprintf("relational: bound arity mismatch for %s", r.name))
	}
	if !upper.ContainsAll(lower) {
		panic(fmt.Sprintf("relational: lower bound of %s not contained in upper bound", r.name))
	}
	if _, seen := b.lower[r]; !seen {
		b.order = append(b.order, r)
	}
	b.lower[r] = lower.Clone()
	b.upper[r] = upper.Clone()
}

// BoundExactly fixes r's extent to exactly ts.
func (b *Bounds) BoundExactly(r *Relation, ts *TupleSet) { b.Bound(r, ts, ts) }

// Lower returns r's lower bound (nil if unbound).
func (b *Bounds) Lower(r *Relation) *TupleSet { return b.lower[r] }

// Upper returns r's upper bound (nil if unbound).
func (b *Bounds) Upper(r *Relation) *TupleSet { return b.upper[r] }

// Relations returns the bound relations in declaration order.
func (b *Bounds) Relations() []*Relation {
	out := make([]*Relation, len(b.order))
	copy(out, b.order)
	return out
}

// Clone deep-copies the bounds.
func (b *Bounds) Clone() *Bounds {
	c := NewBounds(b.u)
	for _, r := range b.order {
		c.Bound(r, b.lower[r], b.upper[r])
	}
	return c
}
