// Package relational implements a bounded relational logic in the style of
// the Kodkod model finder: a finite universe of atoms, relations bounded
// above and below by tuple sets, a relational expression and first-order
// formula language, and a translator that grounds problems into boolean
// circuits (package boolcirc) for SAT solving.
//
// This package is the logical substrate that the Muppet paper builds on
// (Pardinus extends Kodkod; package target layers the target-oriented mode
// on top of the translation produced here). Formulas are pure values and
// can be inspected, substituted and simplified — which is exactly what
// envelope extraction (Alg. 3 of the paper) requires.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Universe is an ordered finite set of named atoms. Atom identity is the
// index; names are for display and lookup.
type Universe struct {
	atoms []string
	index map[string]int
}

// NewUniverse builds a universe from distinct atom names.
func NewUniverse(atoms ...string) *Universe {
	u := &Universe{index: make(map[string]int, len(atoms))}
	for _, a := range atoms {
		if _, dup := u.index[a]; dup {
			panic(fmt.Sprintf("relational: duplicate atom %q", a))
		}
		u.index[a] = len(u.atoms)
		u.atoms = append(u.atoms, a)
	}
	return u
}

// Size returns the number of atoms.
func (u *Universe) Size() int { return len(u.atoms) }

// Atom returns the name of atom i.
func (u *Universe) Atom(i int) string { return u.atoms[i] }

// Index returns the index of the named atom, or -1 if absent.
func (u *Universe) Index(name string) int {
	if i, ok := u.index[name]; ok {
		return i
	}
	return -1
}

// MustIndex is Index but panics on unknown atoms.
func (u *Universe) MustIndex(name string) int {
	i := u.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("relational: unknown atom %q", name))
	}
	return i
}

// Atoms returns a copy of the atom names in order.
func (u *Universe) Atoms() []string {
	out := make([]string, len(u.atoms))
	copy(out, u.atoms)
	return out
}

// Tuple is an ordered sequence of atom indices.
type Tuple []int

// key encodes a tuple as a map key.
func (t Tuple) key() string {
	var b strings.Builder
	for i, a := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(a))
	}
	return b.String()
}

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Concat returns the concatenation t ++ o.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// String renders the tuple against a universe as (a, b, …).
func (t Tuple) String(u *Universe) string {
	parts := make([]string, len(t))
	for i, a := range t {
		parts[i] = u.Atom(a)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
