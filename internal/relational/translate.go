package relational

import (
	"fmt"
	"slices"
	"sort"
	"strconv"

	"muppet/internal/boolcirc"
)

// Tuples, matrices and quantifier environments are the allocation-heavy
// part of grounding: a services-scale bundle touches every subterm under
// thousands of bindings, and the original string-keyed maps built a fresh
// key (and often a fresh tuple) per touch. The translator therefore
// interns tuples once into a flat table — a tuple becomes an int32 id —
// and keys every matrix, cache and index by those ids; quantifier
// environments are a dense binding array indexed by variable id with
// interned byte-string keys for the memo tables. Grounding allocates only
// when it encounters a genuinely new tuple, environment or subterm.

// matrix is the boolean-matrix denotation of an expression during
// translation: each possibly-present tuple (by interned id) maps to a
// circuit edge. Tuples that are definitely absent are simply missing.
type matrix struct {
	arity int
	cells map[int32]boolcirc.Ref
}

func newMatrix(arity int) *matrix {
	return &matrix{arity: arity, cells: make(map[int32]boolcirc.Ref)}
}

func (m *matrix) set(id int32, r boolcirc.Ref) {
	if r == boolcirc.False {
		return
	}
	m.cells[id] = r
}

func (m *matrix) get(id int32) boolcirc.Ref {
	if r, ok := m.cells[id]; ok {
		return r
	}
	return boolcirc.False
}

// cellRef pairs an interned tuple id with its circuit edge for ordered
// iteration.
type cellRef struct {
	id int32
	r  boolcirc.Ref
}

// RelVar associates a free tuple of a relation (in its upper but not lower
// bound) with the circuit variable that decides its presence.
type RelVar struct {
	Tuple Tuple
	Ref   boolcirc.Ref
}

// Translator grounds formulas over fixed bounds into boolean circuits.
// One translator may ground many formulas; relation variables are shared,
// so the resulting circuit edges can be combined (e.g. asserted separately,
// used as assumptions, or targeted by package target).
type Translator struct {
	factory *boolcirc.Factory
	bounds  *Bounds
	relVars map[*Relation][]RelVar
	relMats map[*Relation]*matrix
	relIdx  map[*Relation]map[int32]boolcirc.Ref // tuple id → free-tuple variable

	// Tuple interner: tuples[id] is the content of interned tuple id;
	// tupTab is an open-addressed table of id+1 entries (0 = empty) hashed
	// by content.
	tuples  []Tuple
	tupTab  []int32
	tupUsed int

	// Quantifier environments: varIDs gives each *Var a dense id, bind is
	// the current binding per id (atom+1; 0 = unbound), and envIntern maps
	// the packed (id, atom) pairs of a subterm's free variables to a small
	// env id for cache keys. Env id 0 is the empty environment.
	varIDs    map[*Var]int
	bind      []int32
	envIntern map[string]int32
	envScr    []byte

	// Memoisation: grounding re-enters the same subterm under many
	// quantifier bindings, but a subterm's denotation depends only on the
	// bindings of its free variables. Caching on (node, free-var bindings)
	// turns the naive exponential re-translation into Kodkod-style sharing.
	freeE     map[Expr][]int32    // sorted free-variable ids
	freeF     map[Formula][]int32 // sorted free-variable ids
	exprCache map[exprKey]*matrix
	formCache map[formKey]boolcirc.Ref

	// Structural cache: top-level formulas that are rebuilt each round
	// (envelope rewrites, recompiled constraints) have fresh node pointers
	// but identical shape. Keying on a structural hash — relations and
	// free variables by identity, bound variables by de-Bruijn position —
	// lets them reuse the previously grounded circuit edge.
	relIDs      map[*Relation]int
	structCache map[string]boolcirc.Ref
	structScr   []byte
	stats       CacheStats
}

// CacheStats counts translation-cache outcomes for top-level Formula calls.
type CacheStats struct {
	// PointerHits: same formula node grounded before (identity cache).
	PointerHits int64
	// StructHits: structurally identical formula grounded before.
	StructHits int64
	// Misses: full translations performed.
	Misses int64
}

// Hits returns the total number of cache hits.
func (c CacheStats) Hits() int64 { return c.PointerHits + c.StructHits }

// Cache reports the translator's cache counters.
func (tr *Translator) Cache() CacheStats { return tr.stats }

type exprKey struct {
	e   Expr
	env int32
}

type formKey struct {
	f   Formula
	env int32
}

// envUnbound marks an environment that leaves some free variable of the
// subterm unbound; such translations are not cached (they panic or are
// re-entered under a complete environment later).
const envUnbound int32 = -1

// NewTranslator creates a translator over the given bounds, allocating one
// circuit variable per free tuple of each bound relation.
func NewTranslator(b *Bounds, f *boolcirc.Factory) *Translator {
	tr := &Translator{
		factory: f,
		bounds:  b,
		relVars: make(map[*Relation][]RelVar),
		relMats: make(map[*Relation]*matrix),
		relIdx:  make(map[*Relation]map[int32]boolcirc.Ref),

		tupTab: make([]int32, 256),

		varIDs:    make(map[*Var]int),
		envIntern: make(map[string]int32),

		freeE:     make(map[Expr][]int32),
		freeF:     make(map[Formula][]int32),
		exprCache: make(map[exprKey]*matrix),
		formCache: make(map[formKey]boolcirc.Ref),

		relIDs:      make(map[*Relation]int),
		structCache: make(map[string]boolcirc.Ref),
	}
	for _, r := range b.Relations() {
		m := newMatrix(r.arity)
		lower := b.Lower(r)
		var vars []RelVar
		idx := make(map[int32]boolcirc.Ref)
		for _, t := range b.Upper(r).Tuples() {
			id := tr.intern(t, nil)
			if lower.Contains(t) {
				m.set(id, boolcirc.True)
				continue
			}
			v := f.Var()
			m.set(id, v)
			vars = append(vars, RelVar{Tuple: tr.tuples[id], Ref: v})
			idx[id] = v
		}
		tr.relVars[r] = vars
		tr.relMats[r] = m
		tr.relIdx[r] = idx
	}
	return tr
}

// Factory returns the circuit factory.
func (tr *Translator) Factory() *boolcirc.Factory { return tr.factory }

// Bounds returns the translation bounds.
func (tr *Translator) Bounds() *Bounds { return tr.bounds }

// RelationVars returns the free-tuple variables of r in deterministic order.
func (tr *Translator) RelationVars(r *Relation) []RelVar { return tr.relVars[r] }

// TupleVar returns the circuit variable deciding tuple t's presence in r,
// in O(1). ok is false when t is not free in r (it is in the lower bound,
// outside the upper bound, or r is unbound).
func (tr *Translator) TupleVar(r *Relation, t Tuple) (boolcirc.Ref, bool) {
	id, ok := tr.lookup(t)
	if !ok {
		return 0, false
	}
	v, ok := tr.relIdx[r][id]
	return v, ok
}

// tupHash mixes tuple content (two concatenated parts) FNV-1a style.
func tupHash(a, b Tuple) uint64 {
	h := uint64(1469598103934665603)
	for _, x := range a {
		h = (h ^ uint64(uint32(x))) * 1099511628211
	}
	for _, x := range b {
		h = (h ^ uint64(uint32(x))) * 1099511628211
	}
	return h
}

func tupMatches(t, a, b Tuple) bool {
	if len(t) != len(a)+len(b) {
		return false
	}
	for i, x := range a {
		if t[i] != x {
			return false
		}
	}
	for i, x := range b {
		if t[len(a)+i] != x {
			return false
		}
	}
	return true
}

// intern returns the id of the tuple a++b, copying the content into the
// flat table only on first encounter. Callers concatenating tuples pass
// the parts directly, so a join or product probes the table without
// building the combined tuple first.
func (tr *Translator) intern(a, b Tuple) int32 {
	mask := uint64(len(tr.tupTab) - 1)
	i := tupHash(a, b) & mask
	for {
		e := tr.tupTab[i]
		if e == 0 {
			break
		}
		if tupMatches(tr.tuples[e-1], a, b) {
			return e - 1
		}
		i = (i + 1) & mask
	}
	t := make(Tuple, 0, len(a)+len(b))
	t = append(t, a...)
	t = append(t, b...)
	tr.tuples = append(tr.tuples, t)
	id := int32(len(tr.tuples) - 1)
	tr.tupTab[i] = id + 1
	tr.tupUsed++
	if tr.tupUsed*4 >= len(tr.tupTab)*3 {
		tr.growTupTab()
	}
	return id
}

func (tr *Translator) growTupTab() {
	old := tr.tupTab
	tr.tupTab = make([]int32, 2*len(old))
	mask := uint64(len(tr.tupTab) - 1)
	for _, e := range old {
		if e == 0 {
			continue
		}
		i := tupHash(tr.tuples[e-1], nil) & mask
		for tr.tupTab[i] != 0 {
			i = (i + 1) & mask
		}
		tr.tupTab[i] = e
	}
}

// lookup probes for an already-interned tuple without inserting.
func (tr *Translator) lookup(t Tuple) (int32, bool) {
	mask := uint64(len(tr.tupTab) - 1)
	i := tupHash(t, nil) & mask
	for {
		e := tr.tupTab[i]
		if e == 0 {
			return 0, false
		}
		if tupMatches(tr.tuples[e-1], t, nil) {
			return e - 1, true
		}
		i = (i + 1) & mask
	}
}

// ordered returns a matrix's cells sorted by tuple content, so circuit
// construction order (and therefore emitted CNF) is reproducible.
func (tr *Translator) ordered(m *matrix) []cellRef {
	out := make([]cellRef, 0, len(m.cells))
	for id, r := range m.cells {
		out = append(out, cellRef{id: id, r: r})
	}
	slices.SortFunc(out, func(a, b cellRef) int {
		return slices.Compare(tr.tuples[a.id], tr.tuples[b.id])
	})
	return out
}

// Formula grounds f into a circuit edge that is true exactly in the models
// of f within the translator's bounds. Repeated calls are cheap: the same
// node grounds once (identity cache), and a structurally identical formula
// built from fresh nodes reuses the prior circuit edge (structural cache).
func (tr *Translator) Formula(f Formula) boolcirc.Ref {
	// Successful top-level calls are closed formulas (an unbound variable
	// panics during translation), so the empty env key identifies them.
	if r, hit := tr.formCache[formKey{f: f, env: 0}]; hit {
		tr.stats.PointerHits++
		return r
	}
	key := tr.structKey(f)
	if r, hit := tr.structCache[string(key)]; hit {
		tr.stats.StructHits++
		tr.formCache[formKey{f: f, env: 0}] = r
		return r
	}
	tr.stats.Misses++
	r := tr.formula(f)
	tr.structCache[string(key)] = r
	return r
}

// structKey serialises a formula's shape into the translator's reusable
// scratch buffer: relations and free variables by translator-scoped
// identity, bound variables by binding position, constant tuple sets by
// content. Two formulas with equal keys ground to the same circuit edge
// under this translator's bounds. The returned bytes alias the scratch —
// valid until the next structKey call; map lookups on string(key) do not
// allocate, and inserts copy.
func (tr *Translator) structKey(f Formula) []byte {
	h := hasher{tr: tr, bound: make(map[*Var]int), b: tr.structScr[:0]}
	h.formula(f)
	tr.structScr = h.b
	return h.b
}

type hasher struct {
	tr    *Translator
	bound map[*Var]int // bound variable → de-Bruijn-style binding index
	next  int
	b     []byte
}

func (h *hasher) relID(r *Relation) int {
	if id, ok := h.tr.relIDs[r]; ok {
		return id
	}
	id := len(h.tr.relIDs)
	h.tr.relIDs[r] = id
	return id
}

func (h *hasher) mark(c byte, n int) {
	h.b = append(h.b, c)
	h.b = strconv.AppendInt(h.b, int64(n), 10)
}

// bind registers decl variables for a scope and returns an undo closure
// (a *Var may be re-bound by a sibling scope; names are not trusted).
func (h *hasher) bind(decls []Decl) func() {
	type saved struct {
		v   *Var
		idx int
		had bool
	}
	prev := make([]saved, len(decls))
	for i, d := range decls {
		idx, had := h.bound[d.v]
		prev[i] = saved{d.v, idx, had}
		h.bound[d.v] = h.next
		h.next++
	}
	return func() {
		for _, p := range prev {
			if p.had {
				h.bound[p.v] = p.idx
			} else {
				delete(h.bound, p.v)
			}
		}
	}
}

func (h *hasher) formula(f Formula) {
	switch g := f.(type) {
	case *ConstFormula:
		if g.val {
			h.b = append(h.b, 'c', '1', ';')
		} else {
			h.b = append(h.b, 'c', '0', ';')
		}
	case *CompFormula:
		h.mark('p', int(g.op))
		h.b = append(h.b, '(')
		h.expr(g.l)
		h.b = append(h.b, ',')
		h.expr(g.r)
		h.b = append(h.b, ')')
	case *MultFormula:
		h.mark('m', int(g.mult))
		h.b = append(h.b, '(')
		h.expr(g.e)
		h.b = append(h.b, ')')
	case *NotFormula:
		h.b = append(h.b, '!', '(')
		h.formula(g.f)
		h.b = append(h.b, ')')
	case *NaryFormula:
		h.mark('n', int(g.op))
		h.b = append(h.b, '(')
		for _, sub := range g.fs {
			h.formula(sub)
			h.b = append(h.b, ',')
		}
		h.b = append(h.b, ')')
	case *QuantFormula:
		if g.forall {
			h.b = append(h.b, 'q', 'a')
		} else {
			h.b = append(h.b, 'q', 'e')
		}
		undo := h.bind(g.decls)
		for _, d := range g.decls {
			h.b = append(h.b, '[')
			h.expr(d.domain)
			h.b = append(h.b, ']')
		}
		h.b = append(h.b, '(')
		h.formula(g.body)
		h.b = append(h.b, ')')
		undo()
	default:
		panic(fmt.Sprintf("relational: unknown formula %T", f))
	}
}

func (h *hasher) expr(ex Expr) {
	switch g := ex.(type) {
	case *Relation:
		h.mark('r', h.relID(g))
		h.b = append(h.b, ';')
	case *Var:
		if idx, ok := h.bound[g]; ok {
			h.mark('v', idx)
		} else {
			// Free variable: identity-keyed, so distinct free variables
			// never alias even if their display names collide.
			h.mark('V', h.tr.varID(g))
		}
		h.b = append(h.b, ';')
	case *ConstExpr:
		h.mark('k', g.ts.arity)
		h.b = append(h.b, '{')
		for _, t := range g.ts.Tuples() {
			for _, a := range t {
				h.b = strconv.AppendInt(h.b, int64(a), 10)
				h.b = append(h.b, ',')
			}
			h.b = append(h.b, ';')
		}
		h.b = append(h.b, '}')
	case *BinExpr:
		h.mark('b', int(g.op))
		h.b = append(h.b, '(')
		h.expr(g.l)
		h.b = append(h.b, ',')
		h.expr(g.r)
		h.b = append(h.b, ')')
	case *TransposeExpr:
		h.b = append(h.b, '~', '(')
		h.expr(g.e)
		h.b = append(h.b, ')')
	case *ComprehensionExpr:
		h.b = append(h.b, '{')
		undo := h.bind(g.decls)
		for _, d := range g.decls {
			h.b = append(h.b, '[')
			h.expr(d.domain)
			h.b = append(h.b, ']')
		}
		h.b = append(h.b, '|')
		h.formula(g.body)
		h.b = append(h.b, '}')
		undo()
	default:
		panic(fmt.Sprintf("relational: unknown expression %T", ex))
	}
}

// varID assigns stable identifiers to quantified variables for cache keys
// and binding slots.
func (tr *Translator) varID(v *Var) int {
	if id, ok := tr.varIDs[v]; ok {
		return id
	}
	id := len(tr.varIDs)
	tr.varIDs[v] = id
	tr.bind = append(tr.bind, 0)
	return id
}

// freeIDsF returns the sorted free-variable ids of f, memoised.
func (tr *Translator) freeIDsF(f Formula) []int32 {
	if ids, ok := tr.freeF[f]; ok {
		return ids
	}
	ids := tr.sortedIDs(FreeVarsFormula(f))
	tr.freeF[f] = ids
	return ids
}

// freeIDsE returns the sorted free-variable ids of ex, memoised.
func (tr *Translator) freeIDsE(ex Expr) []int32 {
	if ids, ok := tr.freeE[ex]; ok {
		return ids
	}
	ids := tr.sortedIDs(FreeVars(ex))
	tr.freeE[ex] = ids
	return ids
}

func (tr *Translator) sortedIDs(free map[*Var]bool) []int32 {
	if len(free) == 0 {
		return nil
	}
	ids := make([]int32, 0, len(free))
	for v := range free {
		ids = append(ids, int32(tr.varID(v)))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// envKey interns the current bindings of the given free variables into a
// small id for cache keys; ok is false when some variable is unbound (the
// translation is then not cached — it will panic, or the caller re-enters
// it under a complete environment later).
func (tr *Translator) envKey(ids []int32) (int32, bool) {
	if len(ids) == 0 {
		return 0, true
	}
	b := tr.envScr[:0]
	for _, id := range ids {
		a := tr.bind[id]
		if a == 0 {
			return envUnbound, false
		}
		b = append(b,
			byte(id), byte(id>>8), byte(id>>16), byte(id>>24),
			byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
	}
	tr.envScr = b
	if eid, ok := tr.envIntern[string(b)]; ok {
		return eid, true
	}
	eid := int32(len(tr.envIntern) + 1)
	tr.envIntern[string(b)] = eid
	return eid, true
}

func (tr *Translator) formula(f Formula) boolcirc.Ref {
	ek, ok := tr.envKey(tr.freeIDsF(f))
	if !ok {
		return tr.formulaUncached(f)
	}
	key := formKey{f: f, env: ek}
	if r, hit := tr.formCache[key]; hit {
		return r
	}
	r := tr.formulaUncached(f)
	tr.formCache[key] = r
	return r
}

func (tr *Translator) formulaUncached(f Formula) boolcirc.Ref {
	switch g := f.(type) {
	case *ConstFormula:
		return tr.factory.Bool(g.val)

	case *CompFormula:
		lm := tr.expr(g.l)
		rm := tr.expr(g.r)
		sub := func(a, b *matrix) boolcirc.Ref {
			cells := tr.ordered(a)
			conj := make([]boolcirc.Ref, 0, len(cells))
			for _, c := range cells {
				conj = append(conj, tr.factory.Implies(c.r, b.get(c.id)))
			}
			return tr.factory.And(conj...)
		}
		if g.op == opIn {
			return sub(lm, rm)
		}
		return tr.factory.And(sub(lm, rm), sub(rm, lm))

	case *MultFormula:
		m := tr.expr(g.e)
		cells := tr.ordered(m)
		refs := make([]boolcirc.Ref, 0, len(cells))
		for _, c := range cells {
			refs = append(refs, c.r)
		}
		some := tr.factory.Or(refs...)
		switch g.mult {
		case MultSome:
			return some
		case MultNo:
			return some.Not()
		case MultOne:
			return tr.factory.And(some, tr.atMostOne(refs))
		case MultLone:
			return tr.atMostOne(refs)
		}
		panic("relational: unknown multiplicity")

	case *NotFormula:
		return tr.formula(g.f).Not()

	case *NaryFormula:
		switch g.op {
		case OpAnd:
			refs := make([]boolcirc.Ref, len(g.fs))
			for i, sub := range g.fs {
				refs[i] = tr.formula(sub)
			}
			return tr.factory.And(refs...)
		case OpOr:
			refs := make([]boolcirc.Ref, len(g.fs))
			for i, sub := range g.fs {
				refs[i] = tr.formula(sub)
			}
			return tr.factory.Or(refs...)
		case OpImplies:
			return tr.factory.Implies(tr.formula(g.fs[0]), tr.formula(g.fs[1]))
		case OpIff:
			return tr.factory.Iff(tr.formula(g.fs[0]), tr.formula(g.fs[1]))
		}
		panic("relational: unknown connective")

	case *QuantFormula:
		return tr.quant(g, g.decls)

	default:
		panic(fmt.Sprintf("relational: unknown formula %T", f))
	}
}

// quant grounds one quantifier declaration at a time, so later domains may
// mention earlier variables. Bindings mutate the dense binding array and
// are restored on exit; grounding is strictly nested, so no environment
// copies are needed.
func (tr *Translator) quant(q *QuantFormula, decls []Decl) boolcirc.Ref {
	if len(decls) == 0 {
		return tr.formula(q.body)
	}
	d := decls[0]
	dom := tr.expr(d.domain)
	cells := tr.ordered(dom)
	vid := tr.varID(d.v)
	saved := tr.bind[vid]
	parts := make([]boolcirc.Ref, 0, len(cells))
	for _, c := range cells {
		tr.bind[vid] = int32(tr.tuples[c.id][0]) + 1
		inner := tr.quant(q, decls[1:])
		if q.forall {
			parts = append(parts, tr.factory.Implies(c.r, inner))
		} else {
			parts = append(parts, tr.factory.And(c.r, inner))
		}
	}
	tr.bind[vid] = saved
	if q.forall {
		return tr.factory.And(parts...)
	}
	return tr.factory.Or(parts...)
}

// atMostOne encodes pairwise mutual exclusion over the given edges.
func (tr *Translator) atMostOne(refs []boolcirc.Ref) boolcirc.Ref {
	conj := make([]boolcirc.Ref, 0, len(refs)*(len(refs)-1)/2)
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			conj = append(conj, tr.factory.And(refs[i], refs[j]).Not())
		}
	}
	return tr.factory.And(conj...)
}

func (tr *Translator) expr(ex Expr) *matrix {
	ek, ok := tr.envKey(tr.freeIDsE(ex))
	if !ok {
		return tr.exprUncached(ex)
	}
	key := exprKey{e: ex, env: ek}
	if m, hit := tr.exprCache[key]; hit {
		return m
	}
	m := tr.exprUncached(ex)
	tr.exprCache[key] = m
	return m
}

func (tr *Translator) exprUncached(ex Expr) *matrix {
	switch g := ex.(type) {
	case *Relation:
		m, ok := tr.relMats[g]
		if !ok {
			panic(fmt.Sprintf("relational: relation %s has no bounds", g.name))
		}
		return m

	case *Var:
		a := tr.bind[tr.varID(g)]
		if a == 0 {
			panic(fmt.Sprintf("relational: unbound variable %s", g.name))
		}
		m := newMatrix(1)
		atom := [1]int{int(a - 1)}
		m.set(tr.intern(atom[:], nil), boolcirc.True)
		return m

	case *ConstExpr:
		m := newMatrix(g.ts.arity)
		for _, t := range g.ts.Tuples() {
			m.set(tr.intern(t, nil), boolcirc.True)
		}
		return m

	case *BinExpr:
		lm := tr.expr(g.l)
		rm := tr.expr(g.r)
		switch g.op {
		case opUnion:
			m := newMatrix(lm.arity)
			for id, r := range lm.cells {
				m.set(id, r)
			}
			for _, c := range tr.ordered(rm) {
				m.set(c.id, tr.factory.Or(m.get(c.id), c.r))
			}
			return m
		case opIntersect:
			m := newMatrix(lm.arity)
			for _, c := range tr.ordered(lm) {
				m.set(c.id, tr.factory.And(c.r, rm.get(c.id)))
			}
			return m
		case opDiff:
			m := newMatrix(lm.arity)
			for _, c := range tr.ordered(lm) {
				m.set(c.id, tr.factory.And(c.r, rm.get(c.id).Not()))
			}
			return m
		case opProduct:
			m := newMatrix(lm.arity + rm.arity)
			rcells := tr.ordered(rm)
			for _, a := range tr.ordered(lm) {
				at := tr.tuples[a.id]
				for _, b := range rcells {
					m.set(tr.intern(at, tr.tuples[b.id]), tr.factory.And(a.r, b.r))
				}
			}
			return m
		case opJoin:
			m := newMatrix(lm.arity + rm.arity - 2)
			// Group right cells by leading atom for the middle sum.
			byHead := make(map[int][]cellRef)
			for _, b := range tr.ordered(rm) {
				head := tr.tuples[b.id][0]
				byHead[head] = append(byHead[head], b)
			}
			acc := make(map[int32][]boolcirc.Ref)
			order := make([]int32, 0, len(lm.cells))
			for _, a := range tr.ordered(lm) {
				at := tr.tuples[a.id]
				mid := at[len(at)-1]
				for _, b := range byHead[mid] {
					bt := tr.tuples[b.id]
					id := tr.intern(at[:len(at)-1], bt[1:])
					if _, seen := acc[id]; !seen {
						order = append(order, id)
					}
					acc[id] = append(acc[id], tr.factory.And(a.r, b.r))
				}
			}
			for _, id := range order {
				m.set(id, tr.factory.Or(acc[id]...))
			}
			return m
		}
		panic("relational: unknown binary expression")

	case *TransposeExpr:
		im := tr.expr(g.e)
		m := newMatrix(2)
		for id, r := range im.cells {
			t := tr.tuples[id]
			flipped := [2]int{t[1], t[0]}
			m.set(tr.intern(flipped[:], nil), r)
		}
		return m

	case *ComprehensionExpr:
		m := newMatrix(len(g.decls))
		var prefix [8]int
		tr.comprehension(g, g.decls, prefix[:0], boolcirc.True, m)
		return m

	default:
		panic(fmt.Sprintf("relational: unknown expression %T", ex))
	}
}

// comprehension enumerates candidate bindings for the declarations,
// accumulating membership guards, and emits one cell per full binding.
// The prefix is a shared scratch stack; tuples are only materialised (via
// interning) at full bindings.
func (tr *Translator) comprehension(c *ComprehensionExpr, decls []Decl, prefix []int, guard boolcirc.Ref, out *matrix) {
	if len(decls) == 0 {
		id := tr.intern(prefix, nil)
		out.set(id, tr.factory.Or(out.get(id), tr.factory.And(guard, tr.formula(c.body))))
		return
	}
	d := decls[0]
	dom := tr.expr(d.domain)
	cells := tr.ordered(dom)
	vid := tr.varID(d.v)
	saved := tr.bind[vid]
	for _, cell := range cells {
		t := tr.tuples[cell.id]
		tr.bind[vid] = int32(t[0]) + 1
		tr.comprehension(c, decls[1:],
			append(prefix, t...),
			tr.factory.And(guard, cell.r),
			out)
	}
	tr.bind[vid] = saved
}
