package relational

import (
	"fmt"
	"sort"
	"strings"

	"muppet/internal/boolcirc"
)

// matrix is the boolean-matrix denotation of an expression during
// translation: each possibly-present tuple maps to a circuit edge. Tuples
// that are definitely absent are simply missing from the map.
type matrix struct {
	arity int
	cells map[string]mcell
}

type mcell struct {
	t Tuple
	r boolcirc.Ref
}

func newMatrix(arity int) *matrix {
	return &matrix{arity: arity, cells: make(map[string]mcell)}
}

func (m *matrix) set(t Tuple, r boolcirc.Ref) {
	if r == boolcirc.False {
		return
	}
	m.cells[t.key()] = mcell{t: t, r: r}
}

func (m *matrix) get(t Tuple) boolcirc.Ref {
	if c, ok := m.cells[t.key()]; ok {
		return c.r
	}
	return boolcirc.False
}

// RelVar associates a free tuple of a relation (in its upper but not lower
// bound) with the circuit variable that decides its presence.
type RelVar struct {
	Tuple Tuple
	Ref   boolcirc.Ref
}

// Translator grounds formulas over fixed bounds into boolean circuits.
// One translator may ground many formulas; relation variables are shared,
// so the resulting circuit edges can be combined (e.g. asserted separately,
// used as assumptions, or targeted by package target).
type Translator struct {
	factory *boolcirc.Factory
	bounds  *Bounds
	relVars map[*Relation][]RelVar
	relMats map[*Relation]*matrix
	relIdx  map[*Relation]map[string]boolcirc.Ref // tuple key → free-tuple variable

	// Memoisation: grounding re-enters the same subterm under many
	// quantifier bindings, but a subterm's denotation depends only on the
	// bindings of its free variables. Caching on (node, free-var bindings)
	// turns the naive exponential re-translation into Kodkod-style sharing.
	varIDs    map[*Var]int
	freeE     map[Expr]map[*Var]bool
	freeF     map[Formula]map[*Var]bool
	exprCache map[exprKey]*matrix
	formCache map[formKey]boolcirc.Ref

	// Structural cache: top-level formulas that are rebuilt each round
	// (envelope rewrites, recompiled constraints) have fresh node pointers
	// but identical shape. Keying on a structural hash — relations and
	// free variables by identity, bound variables by de-Bruijn position —
	// lets them reuse the previously grounded circuit edge.
	relIDs      map[*Relation]int
	structCache map[string]boolcirc.Ref
	stats       CacheStats
}

// CacheStats counts translation-cache outcomes for top-level Formula calls.
type CacheStats struct {
	// PointerHits: same formula node grounded before (identity cache).
	PointerHits int64
	// StructHits: structurally identical formula grounded before.
	StructHits int64
	// Misses: full translations performed.
	Misses int64
}

// Hits returns the total number of cache hits.
func (c CacheStats) Hits() int64 { return c.PointerHits + c.StructHits }

// Cache reports the translator's cache counters.
func (tr *Translator) Cache() CacheStats { return tr.stats }

type exprKey struct {
	e   Expr
	env string
}

type formKey struct {
	f   Formula
	env string
}

// NewTranslator creates a translator over the given bounds, allocating one
// circuit variable per free tuple of each bound relation.
func NewTranslator(b *Bounds, f *boolcirc.Factory) *Translator {
	tr := &Translator{
		factory:   f,
		bounds:    b,
		relVars:   make(map[*Relation][]RelVar),
		relMats:   make(map[*Relation]*matrix),
		relIdx:    make(map[*Relation]map[string]boolcirc.Ref),
		varIDs:    make(map[*Var]int),
		freeE:     make(map[Expr]map[*Var]bool),
		freeF:     make(map[Formula]map[*Var]bool),
		exprCache: make(map[exprKey]*matrix),
		formCache: make(map[formKey]boolcirc.Ref),

		relIDs:      make(map[*Relation]int),
		structCache: make(map[string]boolcirc.Ref),
	}
	for _, r := range b.Relations() {
		m := newMatrix(r.arity)
		lower := b.Lower(r)
		var vars []RelVar
		idx := make(map[string]boolcirc.Ref)
		for _, t := range b.Upper(r).Tuples() {
			if lower.Contains(t) {
				m.set(t, boolcirc.True)
				continue
			}
			v := f.Var()
			m.set(t, v)
			vars = append(vars, RelVar{Tuple: t, Ref: v})
			idx[t.key()] = v
		}
		tr.relVars[r] = vars
		tr.relMats[r] = m
		tr.relIdx[r] = idx
	}
	return tr
}

// Factory returns the circuit factory.
func (tr *Translator) Factory() *boolcirc.Factory { return tr.factory }

// Bounds returns the translation bounds.
func (tr *Translator) Bounds() *Bounds { return tr.bounds }

// RelationVars returns the free-tuple variables of r in deterministic order.
func (tr *Translator) RelationVars(r *Relation) []RelVar { return tr.relVars[r] }

// TupleVar returns the circuit variable deciding tuple t's presence in r,
// in O(1). ok is false when t is not free in r (it is in the lower bound,
// outside the upper bound, or r is unbound).
func (tr *Translator) TupleVar(r *Relation, t Tuple) (boolcirc.Ref, bool) {
	v, ok := tr.relIdx[r][t.key()]
	return v, ok
}

// env maps quantified variables to the atom they are currently bound to.
type env map[*Var]int

func (e env) extend(v *Var, atom int) env {
	n := make(env, len(e)+1)
	for k, val := range e {
		n[k] = val
	}
	n[v] = atom
	return n
}

// Formula grounds f into a circuit edge that is true exactly in the models
// of f within the translator's bounds. Repeated calls are cheap: the same
// node grounds once (identity cache), and a structurally identical formula
// built from fresh nodes reuses the prior circuit edge (structural cache).
func (tr *Translator) Formula(f Formula) boolcirc.Ref {
	// Successful top-level calls are closed formulas (an unbound variable
	// panics during translation), so the empty env key identifies them.
	if r, hit := tr.formCache[formKey{f: f, env: ""}]; hit {
		tr.stats.PointerHits++
		return r
	}
	key := tr.structKey(f)
	if r, hit := tr.structCache[key]; hit {
		tr.stats.StructHits++
		tr.formCache[formKey{f: f, env: ""}] = r
		return r
	}
	tr.stats.Misses++
	r := tr.formula(f, env{})
	tr.structCache[key] = r
	return r
}

// structKey serialises a formula's shape: relations and free variables by
// translator-scoped identity, bound variables by binding position, constant
// tuple sets by content. Two formulas with equal keys ground to the same
// circuit edge under this translator's bounds.
func (tr *Translator) structKey(f Formula) string {
	h := hasher{tr: tr, bound: make(map[*Var]int)}
	h.formula(f)
	return h.b.String()
}

type hasher struct {
	tr    *Translator
	bound map[*Var]int // bound variable → de-Bruijn-style binding index
	next  int
	b     strings.Builder
}

func (h *hasher) relID(r *Relation) int {
	if id, ok := h.tr.relIDs[r]; ok {
		return id
	}
	id := len(h.tr.relIDs)
	h.tr.relIDs[r] = id
	return id
}

// bind registers decl variables for a scope and returns an undo closure
// (a *Var may be re-bound by a sibling scope; names are not trusted).
func (h *hasher) bind(decls []Decl) func() {
	type saved struct {
		v   *Var
		idx int
		had bool
	}
	prev := make([]saved, len(decls))
	for i, d := range decls {
		idx, had := h.bound[d.v]
		prev[i] = saved{d.v, idx, had}
		h.bound[d.v] = h.next
		h.next++
	}
	return func() {
		for _, p := range prev {
			if p.had {
				h.bound[p.v] = p.idx
			} else {
				delete(h.bound, p.v)
			}
		}
	}
}

func (h *hasher) formula(f Formula) {
	switch g := f.(type) {
	case *ConstFormula:
		fmt.Fprintf(&h.b, "c%v;", g.val)
	case *CompFormula:
		fmt.Fprintf(&h.b, "p%d(", g.op)
		h.expr(g.l)
		h.b.WriteByte(',')
		h.expr(g.r)
		h.b.WriteByte(')')
	case *MultFormula:
		fmt.Fprintf(&h.b, "m%d(", g.mult)
		h.expr(g.e)
		h.b.WriteByte(')')
	case *NotFormula:
		h.b.WriteString("!(")
		h.formula(g.f)
		h.b.WriteByte(')')
	case *NaryFormula:
		fmt.Fprintf(&h.b, "n%d(", g.op)
		for _, sub := range g.fs {
			h.formula(sub)
			h.b.WriteByte(',')
		}
		h.b.WriteByte(')')
	case *QuantFormula:
		if g.forall {
			h.b.WriteString("qa")
		} else {
			h.b.WriteString("qe")
		}
		undo := h.bind(g.decls)
		for _, d := range g.decls {
			h.b.WriteByte('[')
			h.expr(d.domain)
			h.b.WriteByte(']')
		}
		h.b.WriteByte('(')
		h.formula(g.body)
		h.b.WriteByte(')')
		undo()
	default:
		panic(fmt.Sprintf("relational: unknown formula %T", f))
	}
}

func (h *hasher) expr(ex Expr) {
	switch g := ex.(type) {
	case *Relation:
		fmt.Fprintf(&h.b, "r%d;", h.relID(g))
	case *Var:
		if idx, ok := h.bound[g]; ok {
			fmt.Fprintf(&h.b, "v%d;", idx)
		} else {
			// Free variable: identity-keyed, so distinct free variables
			// never alias even if their display names collide.
			fmt.Fprintf(&h.b, "V%d;", h.tr.varID(g))
		}
	case *ConstExpr:
		fmt.Fprintf(&h.b, "k%d{", g.ts.arity)
		for _, t := range g.ts.Tuples() {
			h.b.WriteString(t.key())
			h.b.WriteByte(';')
		}
		h.b.WriteByte('}')
	case *BinExpr:
		fmt.Fprintf(&h.b, "b%d(", g.op)
		h.expr(g.l)
		h.b.WriteByte(',')
		h.expr(g.r)
		h.b.WriteByte(')')
	case *TransposeExpr:
		h.b.WriteString("~(")
		h.expr(g.e)
		h.b.WriteByte(')')
	case *ComprehensionExpr:
		h.b.WriteByte('{')
		undo := h.bind(g.decls)
		for _, d := range g.decls {
			h.b.WriteByte('[')
			h.expr(d.domain)
			h.b.WriteByte(']')
		}
		h.b.WriteByte('|')
		h.formula(g.body)
		h.b.WriteByte('}')
		undo()
	default:
		panic(fmt.Sprintf("relational: unknown expression %T", ex))
	}
}

// varID assigns stable identifiers to quantified variables for cache keys.
func (tr *Translator) varID(v *Var) int {
	if id, ok := tr.varIDs[v]; ok {
		return id
	}
	id := len(tr.varIDs)
	tr.varIDs[v] = id
	return id
}

// envKeyFor serialises the bindings of the given free variables.
func (tr *Translator) envKeyFor(free map[*Var]bool, e env) string {
	if len(free) == 0 {
		return ""
	}
	ids := make([]int, 0, len(free))
	byID := make(map[int]int, len(free))
	for v := range free {
		atom, ok := e[v]
		if !ok {
			// Unbound free variable: fall through — translation will
			// report it; do not cache.
			return "?unbound"
		}
		id := tr.varID(v)
		ids = append(ids, id)
		byID[id] = atom
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d=%d;", id, byID[id])
	}
	return b.String()
}

func (tr *Translator) formula(f Formula, e env) boolcirc.Ref {
	free, ok := tr.freeF[f]
	if !ok {
		free = FreeVarsFormula(f)
		tr.freeF[f] = free
	}
	ek := tr.envKeyFor(free, e)
	if ek != "?unbound" {
		key := formKey{f: f, env: ek}
		if r, hit := tr.formCache[key]; hit {
			return r
		}
		r := tr.formulaUncached(f, e)
		tr.formCache[key] = r
		return r
	}
	return tr.formulaUncached(f, e)
}

func (tr *Translator) formulaUncached(f Formula, e env) boolcirc.Ref {
	switch g := f.(type) {
	case *ConstFormula:
		return tr.factory.Bool(g.val)

	case *CompFormula:
		lm := tr.expr(g.l, e)
		rm := tr.expr(g.r, e)
		sub := func(a, b *matrix) boolcirc.Ref {
			conj := make([]boolcirc.Ref, 0, len(a.cells))
			for _, c := range a.cells {
				conj = append(conj, tr.factory.Implies(c.r, b.get(c.t)))
			}
			return tr.factory.And(conj...)
		}
		if g.op == opIn {
			return sub(lm, rm)
		}
		return tr.factory.And(sub(lm, rm), sub(rm, lm))

	case *MultFormula:
		m := tr.expr(g.e, e)
		refs := make([]boolcirc.Ref, 0, len(m.cells))
		for _, c := range orderedCells(m) {
			refs = append(refs, c.r)
		}
		some := tr.factory.Or(refs...)
		switch g.mult {
		case MultSome:
			return some
		case MultNo:
			return some.Not()
		case MultOne:
			return tr.factory.And(some, tr.atMostOne(refs))
		case MultLone:
			return tr.atMostOne(refs)
		}
		panic("relational: unknown multiplicity")

	case *NotFormula:
		return tr.formula(g.f, e).Not()

	case *NaryFormula:
		switch g.op {
		case OpAnd:
			refs := make([]boolcirc.Ref, len(g.fs))
			for i, sub := range g.fs {
				refs[i] = tr.formula(sub, e)
			}
			return tr.factory.And(refs...)
		case OpOr:
			refs := make([]boolcirc.Ref, len(g.fs))
			for i, sub := range g.fs {
				refs[i] = tr.formula(sub, e)
			}
			return tr.factory.Or(refs...)
		case OpImplies:
			return tr.factory.Implies(tr.formula(g.fs[0], e), tr.formula(g.fs[1], e))
		case OpIff:
			return tr.factory.Iff(tr.formula(g.fs[0], e), tr.formula(g.fs[1], e))
		}
		panic("relational: unknown connective")

	case *QuantFormula:
		return tr.quant(g, g.decls, e)

	default:
		panic(fmt.Sprintf("relational: unknown formula %T", f))
	}
}

// quant grounds one quantifier declaration at a time, so later domains may
// mention earlier variables.
func (tr *Translator) quant(q *QuantFormula, decls []Decl, e env) boolcirc.Ref {
	if len(decls) == 0 {
		return tr.formula(q.body, e)
	}
	d := decls[0]
	dom := tr.expr(d.domain, e)
	parts := make([]boolcirc.Ref, 0, len(dom.cells))
	for _, c := range orderedCells(dom) {
		inner := tr.quant(q, decls[1:], e.extend(d.v, c.t[0]))
		if q.forall {
			parts = append(parts, tr.factory.Implies(c.r, inner))
		} else {
			parts = append(parts, tr.factory.And(c.r, inner))
		}
	}
	if q.forall {
		return tr.factory.And(parts...)
	}
	return tr.factory.Or(parts...)
}

// atMostOne encodes pairwise mutual exclusion over the given edges.
func (tr *Translator) atMostOne(refs []boolcirc.Ref) boolcirc.Ref {
	conj := make([]boolcirc.Ref, 0, len(refs)*(len(refs)-1)/2)
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			conj = append(conj, tr.factory.And(refs[i], refs[j]).Not())
		}
	}
	return tr.factory.And(conj...)
}

func (tr *Translator) expr(ex Expr, e env) *matrix {
	free, ok := tr.freeE[ex]
	if !ok {
		free = FreeVars(ex)
		tr.freeE[ex] = free
	}
	ek := tr.envKeyFor(free, e)
	if ek != "?unbound" {
		key := exprKey{e: ex, env: ek}
		if m, hit := tr.exprCache[key]; hit {
			return m
		}
		m := tr.exprUncached(ex, e)
		tr.exprCache[key] = m
		return m
	}
	return tr.exprUncached(ex, e)
}

func (tr *Translator) exprUncached(ex Expr, e env) *matrix {
	switch g := ex.(type) {
	case *Relation:
		m, ok := tr.relMats[g]
		if !ok {
			panic(fmt.Sprintf("relational: relation %s has no bounds", g.name))
		}
		return m

	case *Var:
		atom, ok := e[g]
		if !ok {
			panic(fmt.Sprintf("relational: unbound variable %s", g.name))
		}
		m := newMatrix(1)
		m.set(Tuple{atom}, boolcirc.True)
		return m

	case *ConstExpr:
		m := newMatrix(g.ts.arity)
		for _, t := range g.ts.Tuples() {
			m.set(t, boolcirc.True)
		}
		return m

	case *BinExpr:
		lm := tr.expr(g.l, e)
		rm := tr.expr(g.r, e)
		switch g.op {
		case opUnion:
			m := newMatrix(lm.arity)
			for _, c := range lm.cells {
				m.set(c.t, c.r)
			}
			for _, c := range rm.cells {
				m.set(c.t, tr.factory.Or(m.get(c.t), c.r))
			}
			return m
		case opIntersect:
			m := newMatrix(lm.arity)
			for _, c := range lm.cells {
				m.set(c.t, tr.factory.And(c.r, rm.get(c.t)))
			}
			return m
		case opDiff:
			m := newMatrix(lm.arity)
			for _, c := range lm.cells {
				m.set(c.t, tr.factory.And(c.r, rm.get(c.t).Not()))
			}
			return m
		case opProduct:
			m := newMatrix(lm.arity + rm.arity)
			for _, a := range lm.cells {
				for _, b := range rm.cells {
					m.set(a.t.Concat(b.t), tr.factory.And(a.r, b.r))
				}
			}
			return m
		case opJoin:
			m := newMatrix(lm.arity + rm.arity - 2)
			// Group right cells by leading atom for the middle sum.
			byHead := make(map[int][]mcell)
			for _, b := range rm.cells {
				byHead[b.t[0]] = append(byHead[b.t[0]], b)
			}
			acc := make(map[string][]boolcirc.Ref)
			tuples := make(map[string]Tuple)
			for _, a := range lm.cells {
				mid := a.t[len(a.t)-1]
				for _, b := range byHead[mid] {
					t := a.t[: len(a.t)-1 : len(a.t)-1].Concat(b.t[1:])
					k := t.key()
					acc[k] = append(acc[k], tr.factory.And(a.r, b.r))
					tuples[k] = t
				}
			}
			for k, refs := range acc {
				m.set(tuples[k], tr.factory.Or(refs...))
			}
			return m
		}
		panic("relational: unknown binary expression")

	case *TransposeExpr:
		im := tr.expr(g.e, e)
		m := newMatrix(2)
		for _, c := range im.cells {
			m.set(Tuple{c.t[1], c.t[0]}, c.r)
		}
		return m

	case *ComprehensionExpr:
		return tr.comprehension(g, g.decls, nil, boolcirc.True, e)

	default:
		panic(fmt.Sprintf("relational: unknown expression %T", ex))
	}
}

// comprehension enumerates candidate bindings for the declarations,
// accumulating membership guards, and emits one cell per full binding.
func (tr *Translator) comprehension(c *ComprehensionExpr, decls []Decl, prefix Tuple, guard boolcirc.Ref, e env) *matrix {
	if len(decls) == 0 {
		m := newMatrix(len(c.decls))
		m.set(prefix, tr.factory.And(guard, tr.formula(c.body, e)))
		return m
	}
	d := decls[0]
	dom := tr.expr(d.domain, e)
	out := newMatrix(len(c.decls))
	for _, cell := range orderedCells(dom) {
		sub := tr.comprehension(c, decls[1:],
			prefix.Concat(cell.t),
			tr.factory.And(guard, cell.r),
			e.extend(d.v, cell.t[0]))
		for _, sc := range sub.cells {
			out.set(sc.t, tr.factory.Or(out.get(sc.t), sc.r))
		}
	}
	return out
}

// orderedCells returns a matrix's cells in deterministic tuple order, so
// translation output is reproducible run to run.
func orderedCells(m *matrix) []mcell {
	keys := make([]string, 0, len(m.cells))
	for k := range m.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]mcell, len(keys))
	for i, k := range keys {
		out[i] = m.cells[k]
	}
	return out
}
