package relational

import (
	"context"

	"muppet/internal/boolcirc"
	"muppet/internal/sat"
)

// Problem couples a formula with bounds over a universe.
type Problem struct {
	Bounds  *Bounds
	Formula Formula
}

// Session is a live solving context: a translator, its CNF emission, and
// the backing SAT solver. It supports incremental assertion of formulas,
// assumption-based checks, and instance extraction — the shape of access
// that Muppet's algorithms (local consistency, reconciliation, minimal
// edits, unsat cores) need.
type Session struct {
	tr  *Translator
	cnf *boolcirc.CNF
}

// NewSession builds a session over bounds with default components.
func NewSession(b *Bounds) *Session {
	return NewSessionWith(b, boolcirc.New(), sat.New())
}

// NewSessionWith builds a session from explicit components, allowing custom
// factory and solver options (used by the ablation benchmarks).
func NewSessionWith(b *Bounds, f *boolcirc.Factory, s *sat.Solver) *Session {
	return NewSessionWithOptions(b, f, s, boolcirc.CNFOptions{})
}

// NewSessionWithOptions additionally configures the circuit-to-CNF
// emission (polarity-aware Tseitin, AIG sweeping) — the seam the encoding
// ablations and the muppet-level encoding knob use.
func NewSessionWithOptions(b *Bounds, f *boolcirc.Factory, s *sat.Solver, opts boolcirc.CNFOptions) *Session {
	return &Session{
		tr:  NewTranslator(b, f),
		cnf: boolcirc.NewCNFWithOptions(f, s, opts),
	}
}

// Translator exposes the session's translator.
func (ss *Session) Translator() *Translator { return ss.tr }

// CNF exposes the session's circuit-to-CNF emitter.
func (ss *Session) CNF() *boolcirc.CNF { return ss.cnf }

// Solver exposes the backing SAT solver.
func (ss *Session) Solver() *sat.Solver { return ss.cnf.Solver() }

// Assert grounds f and adds it as a hard constraint.
func (ss *Session) Assert(f Formula) {
	ss.cnf.Assert(ss.tr.Formula(f))
}

// Lit grounds f and returns a solver literal equivalent to it, suitable for
// use as an assumption or selector.
func (ss *Session) Lit(f Formula) sat.Lit {
	return ss.cnf.LitFor(ss.tr.Formula(f))
}

// Solve checks satisfiability under optional assumptions.
func (ss *Session) Solve(assumps ...sat.Lit) sat.Status {
	return ss.Solver().Solve(assumps...)
}

// SolveCtx checks satisfiability under optional assumptions, honouring a
// cancellation context and a work budget. An Unknown return means the
// budget stopped the search: the caller must treat the query as
// indeterminate (neither a model nor a core exists) — see
// Solver().StopReason for the cause.
func (ss *Session) SolveCtx(ctx context.Context, b sat.Budget, assumps ...sat.Lit) sat.Status {
	return ss.Solver().SolveCtx(ctx, b, assumps...)
}

// SolvePortfolio checks satisfiability by racing diversified solver
// configurations over a replayed copy of the session's clause database;
// the first definitive verdict wins and is installed in the session's own
// solver, so Instance and Core work exactly as after SolveCtx. With nil
// configs a default 2-way portfolio runs; see sat.DefaultPortfolio.
func (ss *Session) SolvePortfolio(ctx context.Context, b sat.Budget, configs []sat.PortfolioConfig, assumps ...sat.Lit) sat.PortfolioResult {
	return ss.Solver().SolvePortfolio(ctx, b, configs, assumps...)
}

// CacheStats reports the translation cache counters of this session.
func (ss *Session) CacheStats() CacheStats { return ss.tr.Cache() }

// Instance decodes the most recent satisfying model into an instance over
// the session's bounds. Call only after a Sat result.
func (ss *Session) Instance() *Instance {
	b := ss.tr.Bounds()
	in := NewInstance(b.Universe())
	for _, r := range b.Relations() {
		ts := b.Lower(r).Clone()
		for _, rv := range ss.tr.RelationVars(r) {
			id := ss.tr.Factory().VarID(rv.Ref)
			if ss.cnf.VarValue(id) {
				ts.Add(rv.Tuple)
			}
		}
		in.Set(r, ts)
	}
	return in
}

// TupleLit returns the solver literal controlling the presence of tuple t
// in relation r, and whether t is actually free (in upper minus lower).
// Tuples in the lower bound or outside the upper bound are not free.
// Lookup is O(1) via the translator's per-relation tuple index; workspace
// construction calls this once per knob, so the previous linear scan made
// setup quadratic in the free-tuple count.
func (ss *Session) TupleLit(r *Relation, t Tuple) (sat.Lit, bool) {
	v, ok := ss.tr.TupleVar(r, t)
	if !ok {
		return 0, false
	}
	return ss.cnf.LitFor(v), true
}

// Solve finds an instance satisfying the problem, or reports UNSAT. It is
// the one-shot convenience entry point; richer clients use Session.
func Solve(p Problem) (*Instance, sat.Status) {
	ss := NewSession(p.Bounds)
	ss.Assert(p.Formula)
	st := ss.Solve()
	if st != sat.Sat {
		return nil, st
	}
	return ss.Instance(), st
}
