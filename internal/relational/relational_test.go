package relational

import (
	"math/rand"
	"testing"

	"muppet/internal/sat"
)

func u3() *Universe { return NewUniverse("a", "b", "c") }

func TestUniverse(t *testing.T) {
	u := u3()
	if u.Size() != 3 {
		t.Fatalf("size %d", u.Size())
	}
	if u.Atom(1) != "b" || u.Index("c") != 2 || u.Index("zz") != -1 {
		t.Fatal("atom lookup broken")
	}
	atoms := u.Atoms()
	atoms[0] = "mutated"
	if u.Atom(0) != "a" {
		t.Fatal("Atoms() must return a copy")
	}
}

func TestUniverseDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate atom")
		}
	}()
	NewUniverse("a", "a")
}

func TestTupleSetBasics(t *testing.T) {
	u := u3()
	ts := NewTupleSet(u, 2)
	ts.AddNames("a", "b").AddNames("b", "c")
	if ts.Len() != 2 || !ts.Contains(Tuple{0, 1}) || ts.Contains(Tuple{0, 0}) {
		t.Fatal("basic membership broken")
	}
	clone := ts.Clone()
	clone.AddNames("a", "a")
	if ts.Len() != 2 || clone.Len() != 3 {
		t.Fatal("clone aliasing")
	}
	ts.Remove(Tuple{0, 1})
	if ts.Contains(Tuple{0, 1}) {
		t.Fatal("remove failed")
	}
	all := AllTuples(u, 2)
	if all.Len() != 9 {
		t.Fatalf("AllTuples(2) = %d tuples", all.Len())
	}
	if !all.ContainsAll(clone) {
		t.Fatal("full set should contain everything")
	}
}

func TestTupleSetDeterministicOrder(t *testing.T) {
	u := NewUniverse("a", "b", "c", "d")
	ts := NewTupleSet(u, 1)
	ts.AddNames("d").AddNames("a").AddNames("c")
	tuples := ts.Tuples()
	for i := 1; i < len(tuples); i++ {
		if tuples[i-1].key() >= tuples[i].key() {
			t.Fatal("tuples not in deterministic sorted order")
		}
	}
}

func TestBoundsValidation(t *testing.T) {
	u := u3()
	r := NewRelation("R", 1)
	b := NewBounds(u)
	lower := NewTupleSet(u, 1).AddNames("a")
	upper := NewTupleSet(u, 1).AddNames("a").AddNames("b")
	b.Bound(r, lower, upper)
	if !b.Lower(r).Contains(Tuple{0}) || b.Upper(r).Len() != 2 {
		t.Fatal("bounds not stored")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when lower ⊄ upper")
		}
	}()
	b.Bound(r, upper, lower)
}

// fig-1-like fixture: two unary relations and one binary relation.
type fixture struct {
	u       *Universe
	s, p    *Relation // unary "services", unary "ports"
	link    *Relation // binary
	bounds  *Bounds
	sTuples *TupleSet
}

func newFixture() *fixture {
	u := NewUniverse("s1", "s2", "s3", "p1", "p2")
	f := &fixture{
		u:    u,
		s:    NewRelation("Service", 1),
		p:    NewRelation("Port", 1),
		link: NewRelation("link", 2),
	}
	f.bounds = NewBounds(u)
	f.sTuples = TupleSetOf(u, []string{"s1"}, []string{"s2"}, []string{"s3"})
	f.bounds.BoundExactly(f.s, f.sTuples)
	f.bounds.BoundExactly(f.p, TupleSetOf(u, []string{"p1"}, []string{"p2"}))
	linkUpper := NewTupleSet(u, 2)
	for _, src := range []string{"s1", "s2", "s3"} {
		for _, dst := range []string{"s1", "s2", "s3"} {
			linkUpper.AddNames(src, dst)
		}
	}
	f.bounds.Bound(f.link, NewTupleSet(u, 2), linkUpper)
	return f
}

func TestSolveSimpleSat(t *testing.T) {
	f := newFixture()
	// Some link from s1.
	x := NewVar("x")
	goal := Exists([]Decl{NewDecl(x, f.s)}, Some(Join(ConstAtom(f.u, "s1"), f.link)))
	inst, st := Solve(Problem{Bounds: f.bounds, Formula: goal})
	if st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	if !Eval(goal, inst) {
		t.Fatal("extracted instance does not satisfy formula")
	}
	if EvalExpr(Join(ConstAtom(f.u, "s1"), f.link), inst).Len() == 0 {
		t.Fatal("s1 should have an outgoing link")
	}
}

func TestSolveUnsat(t *testing.T) {
	f := newFixture()
	// link must be both empty and non-empty.
	goal := And(No(f.link), Some(f.link))
	_, st := Solve(Problem{Bounds: f.bounds, Formula: goal})
	if st != sat.Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestForallSemantics(t *testing.T) {
	f := newFixture()
	x := NewVar("x")
	y := NewVar("y")
	// Every pair of services is linked: forces the full 3x3 relation.
	goal := Forall([]Decl{NewDecl(x, f.s), NewDecl(y, f.s)},
		In(Product(x, y), f.link))
	inst, st := Solve(Problem{Bounds: f.bounds, Formula: goal})
	if st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	if inst.Get(f.link).Len() != 9 {
		t.Fatalf("link should be full, got %d tuples", inst.Get(f.link).Len())
	}
}

func TestOneMultiplicity(t *testing.T) {
	f := newFixture()
	goal := One(f.link)
	inst, st := Solve(Problem{Bounds: f.bounds, Formula: goal})
	if st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	if inst.Get(f.link).Len() != 1 {
		t.Fatalf("want exactly one tuple, got %d", inst.Get(f.link).Len())
	}
}

func TestLoneAndNo(t *testing.T) {
	f := newFixture()
	inst, st := Solve(Problem{Bounds: f.bounds, Formula: And(Lone(f.link), Some(f.link))})
	if st != sat.Sat || inst.Get(f.link).Len() != 1 {
		t.Fatalf("lone∧some: st=%v len=%d", st, inst.Get(f.link).Len())
	}
	inst, st = Solve(Problem{Bounds: f.bounds, Formula: No(f.link)})
	if st != sat.Sat || inst.Get(f.link).Len() != 0 {
		t.Fatalf("no: st=%v len=%d", st, inst.Get(f.link).Len())
	}
}

func TestTransposeSemantics(t *testing.T) {
	f := newFixture()
	// link symmetric and non-empty.
	goal := And(Equals(f.link, Transpose(f.link)), Some(f.link))
	inst, st := Solve(Problem{Bounds: f.bounds, Formula: goal})
	if st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	ts := inst.Get(f.link)
	for _, tp := range ts.Tuples() {
		if !ts.Contains(Tuple{tp[1], tp[0]}) {
			t.Fatalf("instance not symmetric: %v", tp)
		}
	}
}

func TestJoinEvaluator(t *testing.T) {
	u := NewUniverse("a", "b", "c")
	r := NewRelation("R", 2)
	inst := NewInstance(u)
	inst.Set(r, TupleSetOf(u, []string{"a", "b"}, []string{"b", "c"}))
	// a.R = {b}; a.R.R = {c}
	got := EvalExpr(Join(ConstAtom(u, "a"), r), inst)
	if got.Len() != 1 || !got.Contains(Tuple{1}) {
		t.Fatalf("a.R = %v", got)
	}
	got = EvalExpr(Join(Join(ConstAtom(u, "a"), r), r), inst)
	if got.Len() != 1 || !got.Contains(Tuple{2}) {
		t.Fatalf("a.R.R = %v", got)
	}
	// R.R = {(a,c)}
	got = EvalExpr(Join(r, r), inst)
	if got.Len() != 1 || !got.Contains(Tuple{0, 2}) {
		t.Fatalf("R.R = %v", got)
	}
}

func TestComprehension(t *testing.T) {
	f := newFixture()
	x := NewVar("x")
	// {x: Service | some x.link} — sources with at least one outgoing link.
	sources := Comprehension([]Decl{NewDecl(x, f.s)}, Some(Join(x, f.link)))
	goal := And(
		Equals(sources, Const(NewTupleSet(f.u, 1).AddNames("s2"))),
		Some(f.link),
	)
	inst, st := Solve(Problem{Bounds: f.bounds, Formula: goal})
	if st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	for _, tp := range inst.Get(f.link).Tuples() {
		if f.u.Atom(tp[0]) != "s2" {
			t.Fatalf("only s2 may have outgoing links, got %v", tp.String(f.u))
		}
	}
}

func TestNestedQuantifierDependentDomain(t *testing.T) {
	f := newFixture()
	x := NewVar("x")
	y := NewVar("y")
	// ∀x: Service | ∀y: x.link | y in Service — trivially true over bounds.
	goal := Forall([]Decl{NewDecl(x, f.s)},
		Forall([]Decl{NewDecl(y, Join(x, f.link))}, In(y, f.s)))
	_, st := Solve(Problem{Bounds: f.bounds, Formula: goal})
	if st != sat.Sat {
		t.Fatalf("got %v", st)
	}
}

// --- randomised differential testing: translator vs evaluator ---

type randProblem struct {
	u     *Universe
	rels  []*Relation
	b     *Bounds
	freeN int
}

func randomBounds(rng *rand.Rand) *randProblem {
	n := 3 + rng.Intn(2)
	atoms := make([]string, n)
	for i := range atoms {
		atoms[i] = string(rune('a' + i))
	}
	u := NewUniverse(atoms...)
	rp := &randProblem{u: u, b: NewBounds(u)}
	nRel := 2 + rng.Intn(2)
	for i := 0; i < nRel; i++ {
		arity := 1 + rng.Intn(2)
		r := NewRelation(string(rune('R'+i)), arity)
		lower := NewTupleSet(u, arity)
		upper := NewTupleSet(u, arity)
		for _, t := range AllTuples(u, arity).Tuples() {
			switch rng.Intn(4) {
			case 0: // in both: fixed present
				lower.Add(t)
				upper.Add(t)
			case 1, 2: // free
				upper.Add(t)
				rp.freeN++
			}
		}
		rp.b.Bound(r, lower, upper)
		rp.rels = append(rp.rels, r)
	}
	return rp
}

func randomExpr(rng *rand.Rand, rp *randProblem, vars []*Var, arity, depth int) Expr {
	if depth == 0 {
		// Leaf: relation of right arity, var (arity 1), or constant.
		var leaves []Expr
		for _, r := range rp.rels {
			if r.arity == arity {
				leaves = append(leaves, r)
			}
		}
		if arity == 1 {
			for _, v := range vars {
				leaves = append(leaves, v)
			}
		}
		ts := NewTupleSet(rp.u, arity)
		for _, t := range AllTuples(rp.u, arity).Tuples() {
			if rng.Intn(3) == 0 {
				ts.Add(t)
			}
		}
		leaves = append(leaves, Const(ts))
		return leaves[rng.Intn(len(leaves))]
	}
	switch rng.Intn(6) {
	case 0:
		return Union(randomExpr(rng, rp, vars, arity, depth-1), randomExpr(rng, rp, vars, arity, depth-1))
	case 1:
		return Intersect(randomExpr(rng, rp, vars, arity, depth-1), randomExpr(rng, rp, vars, arity, depth-1))
	case 2:
		return Diff(randomExpr(rng, rp, vars, arity, depth-1), randomExpr(rng, rp, vars, arity, depth-1))
	case 3:
		if arity == 2 {
			return Product(randomExpr(rng, rp, vars, 1, depth-1), randomExpr(rng, rp, vars, 1, depth-1))
		}
		return Join(randomExpr(rng, rp, vars, 2, depth-1), randomExpr(rng, rp, vars, 1, depth-1))
	case 4:
		if arity == 2 {
			return Transpose(randomExpr(rng, rp, vars, 2, depth-1))
		}
		return Join(randomExpr(rng, rp, vars, 1, depth-1), randomExpr(rng, rp, vars, 2, depth-1))
	default:
		return randomExpr(rng, rp, vars, arity, 0)
	}
}

func randomFormula(rng *rand.Rand, rp *randProblem, vars []*Var, depth int) Formula {
	if depth == 0 {
		arity := 1 + rng.Intn(2)
		switch rng.Intn(3) {
		case 0:
			return In(randomExpr(rng, rp, vars, arity, 1), randomExpr(rng, rp, vars, arity, 1))
		case 1:
			return Some(randomExpr(rng, rp, vars, arity, 1))
		default:
			return No(randomExpr(rng, rp, vars, arity, 1))
		}
	}
	switch rng.Intn(7) {
	case 0:
		return And(randomFormula(rng, rp, vars, depth-1), randomFormula(rng, rp, vars, depth-1))
	case 1:
		return Or(randomFormula(rng, rp, vars, depth-1), randomFormula(rng, rp, vars, depth-1))
	case 2:
		return Not(randomFormula(rng, rp, vars, depth-1))
	case 3:
		return Implies(randomFormula(rng, rp, vars, depth-1), randomFormula(rng, rp, vars, depth-1))
	case 4:
		v := NewVar("v" + string(rune('0'+len(vars))))
		return Forall([]Decl{NewDecl(v, randomExpr(rng, rp, vars, 1, 1))},
			randomFormula(rng, rp, append(vars, v), depth-1))
	case 5:
		v := NewVar("v" + string(rune('0'+len(vars))))
		return Exists([]Decl{NewDecl(v, randomExpr(rng, rp, vars, 1, 1))},
			randomFormula(rng, rp, append(vars, v), depth-1))
	default:
		return randomFormula(rng, rp, vars, 0)
	}
}

// enumerateInstances calls fn with every instance within bounds; returns
// early if fn returns true. Only usable when the free-tuple count is small.
func enumerateInstances(b *Bounds, fn func(*Instance) bool) bool {
	type freeTuple struct {
		r *Relation
		t Tuple
	}
	var free []freeTuple
	for _, r := range b.Relations() {
		lower := b.Lower(r)
		for _, t := range b.Upper(r).Tuples() {
			if !lower.Contains(t) {
				free = append(free, freeTuple{r, t})
			}
		}
	}
	for mask := 0; mask < 1<<len(free); mask++ {
		inst := NewInstance(b.Universe())
		for _, r := range b.Relations() {
			inst.Set(r, b.Lower(r))
		}
		for i, ft := range free {
			if mask>>i&1 == 1 {
				ts := inst.Get(ft.r)
				ts.Add(ft.t)
				inst.Set(ft.r, ts)
			}
		}
		if fn(inst) {
			return true
		}
	}
	return false
}

func TestTranslationMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tested := 0
	for iter := 0; tested < 120; iter++ {
		rp := randomBounds(rng)
		if rp.freeN > 14 {
			continue // keep brute force tractable
		}
		tested++
		f := randomFormula(rng, rp, nil, 2+rng.Intn(2))

		inst, st := Solve(Problem{Bounds: rp.b, Formula: f})
		bfSat := enumerateInstances(rp.b, func(in *Instance) bool { return Eval(f, in) })
		if (st == sat.Sat) != bfSat {
			t.Fatalf("iter %d: solver=%v bruteforce=%v\nformula: %s", iter, st, bfSat, f)
		}
		if st == sat.Sat && !Eval(f, inst) {
			t.Fatalf("iter %d: instance does not satisfy formula %s\n%s", iter, f, inst)
		}
	}
}

func TestSubstituteSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tested := 0
	for iter := 0; tested < 80; iter++ {
		rp := randomBounds(rng)
		if rp.freeN > 12 {
			continue
		}
		tested++
		f := randomFormula(rng, rp, nil, 2)
		// Fix the first relation to a random extent within its bounds.
		fixedRel := rp.rels[0]
		extent := rp.b.Lower(fixedRel).Clone()
		for _, tp := range rp.b.Upper(fixedRel).Tuples() {
			if rng.Intn(2) == 0 {
				extent.Add(tp)
			}
		}
		sub := Substitute(f, map[*Relation]*TupleSet{fixedRel: extent})
		if FreeRelations(sub)[fixedRel] {
			t.Fatalf("substituted relation still free in %s", sub)
		}
		// On any instance whose fixedRel extent matches, f ≡ sub.
		enumerateInstances(rp.b, func(in *Instance) bool {
			in2 := in.Clone()
			in2.Set(fixedRel, extent)
			if Eval(f, in2) != Eval(sub, in2) {
				t.Fatalf("iter %d: substitution changed semantics\nf: %s\nsub: %s", iter, f, sub)
			}
			return false
		})
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	tested := 0
	for iter := 0; tested < 80; iter++ {
		rp := randomBounds(rng)
		if rp.freeN > 12 {
			continue
		}
		tested++
		f := randomFormula(rng, rp, nil, 2)
		simp := Simplify(f, rp.u)
		enumerateInstances(rp.b, func(in *Instance) bool {
			if Eval(f, in) != Eval(simp, in) {
				t.Fatalf("iter %d: Simplify changed semantics\nf:    %s\nsimp: %s\ninst:\n%s", iter, f, simp, in)
			}
			return false
		})
	}
}

func TestSimplifyFoldsGroundTerms(t *testing.T) {
	u := u3()
	ca := ConstAtom(u, "a")
	cb := ConstAtom(u, "b")
	f := In(ca, Union(ca, cb))
	if got := Simplify(f, u); got != TrueFormula() {
		t.Fatalf("ground true formula not folded: %v", got)
	}
	f = In(ca, cb)
	if got := Simplify(f, u); got != FalseFormula() {
		t.Fatalf("ground false formula not folded: %v", got)
	}
	f = Some(Diff(ca, ca))
	if got := Simplify(f, u); got != FalseFormula() {
		t.Fatalf("some(empty) not folded: %v", got)
	}
}

func TestDecompose(t *testing.T) {
	f := newFixture()
	x := NewVar("x")
	g1 := Some(f.link)
	g2 := No(Join(ConstAtom(f.u, "s1"), f.link))
	g3 := Forall([]Decl{NewDecl(x, f.s)}, And(In(x, f.s), Some(f.s)))
	parts := Decompose(And(g1, And(g2, g3)))
	if len(parts) != 4 {
		t.Fatalf("want 4 parts (2 plain + 2 distributed ∀), got %d: %v", len(parts), parts)
	}
	// Conjunction of parts must equal the original on random instances.
	rng := rand.New(rand.NewSource(3))
	orig := And(g1, And(g2, g3))
	for trial := 0; trial < 40; trial++ {
		inst := NewInstance(f.u)
		inst.Set(f.s, f.bounds.Lower(f.s))
		inst.Set(f.p, f.bounds.Lower(f.p))
		ts := NewTupleSet(f.u, 2)
		for _, tp := range f.bounds.Upper(f.link).Tuples() {
			if rng.Intn(2) == 0 {
				ts.Add(tp)
			}
		}
		inst.Set(f.link, ts)
		all := true
		for _, p := range parts {
			if !Eval(p, inst) {
				all = false
				break
			}
		}
		if all != Eval(orig, inst) {
			t.Fatalf("decomposition changed semantics on trial %d", trial)
		}
	}
}

func TestFreeRelationsAndVars(t *testing.T) {
	f := newFixture()
	x := NewVar("x")
	y := NewVar("y")
	g := Forall([]Decl{NewDecl(x, f.s)}, Some(Join(x, f.link)))
	rels := FreeRelations(g)
	if !rels[f.s] || !rels[f.link] || rels[f.p] {
		t.Fatalf("FreeRelations = %v", rels)
	}
	// y occurs free here.
	h := Some(Join(y, f.link))
	fv := FreeVarsFormula(h)
	if !fv[y] || len(fv) != 1 {
		t.Fatalf("FreeVarsFormula = %v", fv)
	}
	if fv := FreeVarsFormula(g); len(fv) != 0 {
		t.Fatalf("no free vars expected in %s, got %v", g, fv)
	}
}

func TestSessionIncremental(t *testing.T) {
	f := newFixture()
	ss := NewSession(f.bounds)
	ss.Assert(Some(f.link))
	if ss.Solve() != sat.Sat {
		t.Fatal("phase 1 should be SAT")
	}
	lit := ss.Lit(No(f.link))
	if ss.Solve(lit) != sat.Unsat {
		t.Fatal("some ∧ no should be UNSAT under assumption")
	}
	if ss.Solve() != sat.Sat {
		t.Fatal("dropping the assumption should restore SAT")
	}
}

func TestSessionTupleLit(t *testing.T) {
	f := newFixture()
	ss := NewSession(f.bounds)
	ss.Assert(Some(f.link))
	tp := Tuple{f.u.MustIndex("s1"), f.u.MustIndex("s2")}
	lit, ok := ss.TupleLit(f.link, tp)
	if !ok {
		t.Fatal("free tuple should have a literal")
	}
	if ss.Solve(lit) != sat.Sat {
		t.Fatal("forcing one tuple should be SAT")
	}
	if !ss.Instance().Get(f.link).Contains(tp) {
		t.Fatal("forced tuple missing from instance")
	}
	// Lower-bound (non-free) tuples have no literal.
	if _, ok := ss.TupleLit(f.s, Tuple{0}); ok {
		t.Fatal("exactly-bound tuple should not be free")
	}
}

func TestFormulaStrings(t *testing.T) {
	f := newFixture()
	x := NewVar("x")
	g := Forall([]Decl{NewDecl(x, f.s)}, Some(Join(x, f.link)))
	want := "all x: Service | some (x.link)"
	if g.String() != want {
		t.Fatalf("got %q want %q", g.String(), want)
	}
	c := Comprehension([]Decl{NewDecl(x, f.s)}, No(Join(x, f.link)))
	if c.String() != "{x: Service | no (x.link)}" {
		t.Fatalf("got %q", c.String())
	}
}

func TestConstructorFolds(t *testing.T) {
	f := newFixture()
	g := Some(f.link)
	if And() != TrueFormula() || Or() != FalseFormula() {
		t.Fatal("empty connectives")
	}
	if And(g, TrueFormula()) != g || Or(g, FalseFormula()) != g {
		t.Fatal("unit folds")
	}
	if And(g, FalseFormula()) != FalseFormula() || Or(g, TrueFormula()) != TrueFormula() {
		t.Fatal("absorbing folds")
	}
	if Not(Not(g)) != g {
		t.Fatal("double negation")
	}
	if Implies(TrueFormula(), g) != g || Implies(g, TrueFormula()) != TrueFormula() {
		t.Fatal("implication folds")
	}
}

func BenchmarkTranslateFig1Scale(b *testing.B) {
	f := newFixture()
	x := NewVar("x")
	y := NewVar("y")
	goal := Forall([]Decl{NewDecl(x, f.s), NewDecl(y, f.s)},
		Implies(Some(Join(Product(x, y), f.link)), Some(Join(x, f.link))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss := NewSession(f.bounds)
		ss.Assert(goal)
		ss.Solve()
	}
}
