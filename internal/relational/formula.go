package relational

import (
	"strings"
)

// Formula is a bounded first-order relational formula. Formulas are
// immutable values; envelope extraction rewrites them structurally.
type Formula interface {
	// String renders the formula in an Alloy-like concrete syntax.
	String() string

	formulaNode()
}

// ConstFormula is a boolean constant formula.
type ConstFormula struct{ val bool }

// TrueF and FalseF are the constant formulas.
var (
	trueF  = &ConstFormula{val: true}
	falseF = &ConstFormula{val: false}
)

// TrueFormula returns the constant true formula.
func TrueFormula() Formula { return trueF }

// FalseFormula returns the constant false formula.
func FalseFormula() Formula { return falseF }

// Value returns the constant's truth value.
func (c *ConstFormula) Value() bool { return c.val }

func (c *ConstFormula) String() string {
	if c.val {
		return "true"
	}
	return "false"
}
func (c *ConstFormula) formulaNode() {}

// compOp enumerates expression comparison operators.
type compOp uint8

const (
	opIn compOp = iota
	opEquals
)

// CompFormula compares two expressions (subset or equality).
type CompFormula struct {
	op   compOp
	l, r Expr
}

// In returns the subset formula l in r.
func In(l, r Expr) Formula {
	sameArity(l, r, "subset comparison")
	return &CompFormula{op: opIn, l: l, r: r}
}

// Equals returns the equality formula l = r.
func Equals(l, r Expr) Formula {
	sameArity(l, r, "equality comparison")
	return &CompFormula{op: opEquals, l: l, r: r}
}

// IsIn reports whether this is a subset (rather than equality) comparison.
func (c *CompFormula) IsIn() bool { return c.op == opIn }

// Left returns the left operand.
func (c *CompFormula) Left() Expr { return c.l }

// Right returns the right operand.
func (c *CompFormula) Right() Expr { return c.r }

func (c *CompFormula) String() string {
	sym := " in "
	if c.op == opEquals {
		sym = " = "
	}
	return c.l.String() + sym + c.r.String()
}
func (c *CompFormula) formulaNode() {}

// Mult enumerates multiplicity tests on expressions.
type Mult uint8

// Multiplicity constants.
const (
	MultSome Mult = iota // at least one tuple
	MultNo               // empty
	MultOne              // exactly one tuple
	MultLone             // at most one tuple
)

// MultFormula applies a multiplicity test to an expression.
type MultFormula struct {
	mult Mult
	e    Expr
}

// Some returns the formula "some e" (e is non-empty).
func Some(e Expr) Formula { return &MultFormula{mult: MultSome, e: e} }

// No returns the formula "no e" (e is empty).
func No(e Expr) Formula { return &MultFormula{mult: MultNo, e: e} }

// One returns the formula "one e" (e has exactly one tuple).
func One(e Expr) Formula { return &MultFormula{mult: MultOne, e: e} }

// Lone returns the formula "lone e" (e has at most one tuple).
func Lone(e Expr) Formula { return &MultFormula{mult: MultLone, e: e} }

// Mult returns the multiplicity being tested.
func (m *MultFormula) Mult() Mult { return m.mult }

// Expr returns the tested expression.
func (m *MultFormula) Expr() Expr { return m.e }

func (m *MultFormula) String() string {
	var kw string
	switch m.mult {
	case MultSome:
		kw = "some"
	case MultNo:
		kw = "no"
	case MultOne:
		kw = "one"
	case MultLone:
		kw = "lone"
	}
	return kw + " " + m.e.String()
}
func (m *MultFormula) formulaNode() {}

// NotFormula is logical negation.
type NotFormula struct{ f Formula }

// Not returns ¬f, folding double negation and constants.
func Not(f Formula) Formula {
	switch g := f.(type) {
	case *NotFormula:
		return g.f
	case *ConstFormula:
		if g.val {
			return falseF
		}
		return trueF
	}
	return &NotFormula{f: f}
}

// Inner returns the negated formula.
func (n *NotFormula) Inner() Formula { return n.f }

func (n *NotFormula) String() string { return "not (" + n.f.String() + ")" }
func (n *NotFormula) formulaNode()   {}

// NaryOp enumerates n-ary/binary connectives.
type NaryOp uint8

// Connective constants.
const (
	OpAnd NaryOp = iota
	OpOr
	OpImplies
	OpIff
)

// NaryFormula is a conjunction, disjunction, implication or equivalence.
// Implication and equivalence have exactly two operands.
type NaryFormula struct {
	op NaryOp
	fs []Formula
}

// And returns the conjunction of fs, flattening nested conjunctions and
// folding constants.
func And(fs ...Formula) Formula {
	flat := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch g := f.(type) {
		case *ConstFormula:
			if !g.val {
				return falseF
			}
		case *NaryFormula:
			if g.op == OpAnd {
				flat = append(flat, g.fs...)
				continue
			}
			flat = append(flat, f)
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return trueF
	case 1:
		return flat[0]
	}
	return &NaryFormula{op: OpAnd, fs: flat}
}

// Or returns the disjunction of fs, flattening nested disjunctions and
// folding constants.
func Or(fs ...Formula) Formula {
	flat := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch g := f.(type) {
		case *ConstFormula:
			if g.val {
				return trueF
			}
		case *NaryFormula:
			if g.op == OpOr {
				flat = append(flat, g.fs...)
				continue
			}
			flat = append(flat, f)
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return falseF
	case 1:
		return flat[0]
	}
	return &NaryFormula{op: OpOr, fs: flat}
}

// Implies returns a → b.
func Implies(a, b Formula) Formula {
	if c, ok := a.(*ConstFormula); ok {
		if c.val {
			return b
		}
		return trueF
	}
	if c, ok := b.(*ConstFormula); ok {
		if c.val {
			return trueF
		}
		return Not(a)
	}
	return &NaryFormula{op: OpImplies, fs: []Formula{a, b}}
}

// Iff returns a ↔ b.
func Iff(a, b Formula) Formula {
	if c, ok := a.(*ConstFormula); ok {
		if c.val {
			return b
		}
		return Not(b)
	}
	if c, ok := b.(*ConstFormula); ok {
		if c.val {
			return a
		}
		return Not(a)
	}
	return &NaryFormula{op: OpIff, fs: []Formula{a, b}}
}

// Op returns the connective.
func (n *NaryFormula) Op() NaryOp { return n.op }

// Operands returns the operand formulas (do not mutate).
func (n *NaryFormula) Operands() []Formula { return n.fs }

func (n *NaryFormula) String() string {
	var sym string
	switch n.op {
	case OpAnd:
		sym = " and "
	case OpOr:
		sym = " or "
	case OpImplies:
		sym = " implies "
	case OpIff:
		sym = " iff "
	}
	parts := make([]string, len(n.fs))
	for i, f := range n.fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sym) + ")"
}
func (n *NaryFormula) formulaNode() {}

// QuantFormula is a universally or existentially quantified formula.
type QuantFormula struct {
	forall bool
	decls  []Decl
	body   Formula
}

// Forall returns ∀ decls | body.
func Forall(decls []Decl, body Formula) Formula {
	if len(decls) == 0 {
		return body
	}
	return &QuantFormula{forall: true, decls: decls, body: body}
}

// Exists returns ∃ decls | body.
func Exists(decls []Decl, body Formula) Formula {
	if len(decls) == 0 {
		return body
	}
	return &QuantFormula{forall: false, decls: decls, body: body}
}

// IsForall reports whether this is a universal quantifier.
func (q *QuantFormula) IsForall() bool { return q.forall }

// Decls returns the quantified declarations.
func (q *QuantFormula) Decls() []Decl { return q.decls }

// Body returns the quantified body.
func (q *QuantFormula) Body() Formula { return q.body }

func (q *QuantFormula) String() string {
	kw := "all"
	if !q.forall {
		kw = "some"
	}
	parts := make([]string, len(q.decls))
	for i, d := range q.decls {
		parts[i] = d.String()
	}
	return kw + " " + strings.Join(parts, ", ") + " | " + q.body.String()
}
func (q *QuantFormula) formulaNode() {}
