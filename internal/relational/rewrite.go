package relational

// This file contains the formula-manipulation operations behind envelope
// extraction (Alg. 3 of the paper): substitution of relations by constant
// extents, discovery of free relations, decomposition into small
// subformulas, and elementary simplification by partial evaluation.

// Substitute replaces every occurrence of the given relations with constant
// expressions holding their extents. This is the subst(φ, C_A) step of
// Alg. 3: A's configuration relations are fixed to their concrete values.
func Substitute(f Formula, fixed map[*Relation]*TupleSet) Formula {
	return substF(f, fixed)
}

func substF(f Formula, fixed map[*Relation]*TupleSet) Formula {
	switch g := f.(type) {
	case *ConstFormula:
		return g
	case *CompFormula:
		l, r := substE(g.l, fixed), substE(g.r, fixed)
		if g.op == opIn {
			return In(l, r)
		}
		return Equals(l, r)
	case *MultFormula:
		e := substE(g.e, fixed)
		return &MultFormula{mult: g.mult, e: e}
	case *NotFormula:
		return Not(substF(g.f, fixed))
	case *NaryFormula:
		fs := make([]Formula, len(g.fs))
		for i, sub := range g.fs {
			fs[i] = substF(sub, fixed)
		}
		switch g.op {
		case OpAnd:
			return And(fs...)
		case OpOr:
			return Or(fs...)
		case OpImplies:
			return Implies(fs[0], fs[1])
		default:
			return Iff(fs[0], fs[1])
		}
	case *QuantFormula:
		decls := make([]Decl, len(g.decls))
		for i, d := range g.decls {
			decls[i] = NewDecl(d.v, substE(d.domain, fixed))
		}
		if g.forall {
			return Forall(decls, substF(g.body, fixed))
		}
		return Exists(decls, substF(g.body, fixed))
	default:
		panic("relational: unknown formula in Substitute")
	}
}

func substE(e Expr, fixed map[*Relation]*TupleSet) Expr {
	switch g := e.(type) {
	case *Relation:
		if ts, ok := fixed[g]; ok {
			return Const(ts)
		}
		return g
	case *Var, *ConstExpr:
		return e
	case *BinExpr:
		l, r := substE(g.l, fixed), substE(g.r, fixed)
		return &BinExpr{op: g.op, l: l, r: r}
	case *TransposeExpr:
		return &TransposeExpr{e: substE(g.e, fixed)}
	case *ComprehensionExpr:
		decls := make([]Decl, len(g.decls))
		for i, d := range g.decls {
			decls[i] = NewDecl(d.v, substE(d.domain, fixed))
		}
		return &ComprehensionExpr{decls: decls, body: substF(g.body, fixed)}
	default:
		panic("relational: unknown expression in Substitute")
	}
}

// FreeRelations returns the set of relations mentioned by f.
func FreeRelations(f Formula) map[*Relation]bool {
	out := make(map[*Relation]bool)
	freeF(f, out)
	return out
}

func freeF(f Formula, out map[*Relation]bool) {
	switch g := f.(type) {
	case *ConstFormula:
	case *CompFormula:
		freeE(g.l, out)
		freeE(g.r, out)
	case *MultFormula:
		freeE(g.e, out)
	case *NotFormula:
		freeF(g.f, out)
	case *NaryFormula:
		for _, sub := range g.fs {
			freeF(sub, out)
		}
	case *QuantFormula:
		for _, d := range g.decls {
			freeE(d.domain, out)
		}
		freeF(g.body, out)
	default:
		panic("relational: unknown formula in FreeRelations")
	}
}

func freeE(e Expr, out map[*Relation]bool) {
	switch g := e.(type) {
	case *Relation:
		out[g] = true
	case *Var, *ConstExpr:
	case *BinExpr:
		freeE(g.l, out)
		freeE(g.r, out)
	case *TransposeExpr:
		freeE(g.e, out)
	case *ComprehensionExpr:
		for _, d := range g.decls {
			freeE(d.domain, out)
		}
		freeF(g.body, out)
	default:
		panic("relational: unknown expression in FreeRelations")
	}
}

// FreeVars returns the variables that occur free in an expression (not
// bound by an enclosing quantifier or comprehension within it).
func FreeVars(e Expr) map[*Var]bool {
	out := make(map[*Var]bool)
	fvE(e, map[*Var]bool{}, out)
	return out
}

// FreeVarsFormula returns the variables occurring free in a formula.
func FreeVarsFormula(f Formula) map[*Var]bool {
	out := make(map[*Var]bool)
	fvF(f, map[*Var]bool{}, out)
	return out
}

func fvF(f Formula, bound, out map[*Var]bool) {
	switch g := f.(type) {
	case *ConstFormula:
	case *CompFormula:
		fvE(g.l, bound, out)
		fvE(g.r, bound, out)
	case *MultFormula:
		fvE(g.e, bound, out)
	case *NotFormula:
		fvF(g.f, bound, out)
	case *NaryFormula:
		for _, sub := range g.fs {
			fvF(sub, bound, out)
		}
	case *QuantFormula:
		inner := copyVarSet(bound)
		for _, d := range g.decls {
			fvE(d.domain, inner, out)
			inner[d.v] = true
		}
		fvF(g.body, inner, out)
	default:
		panic("relational: unknown formula in FreeVars")
	}
}

func fvE(e Expr, bound, out map[*Var]bool) {
	switch g := e.(type) {
	case *Relation, *ConstExpr:
	case *Var:
		if !bound[g] {
			out[g] = true
		}
	case *BinExpr:
		fvE(g.l, bound, out)
		fvE(g.r, bound, out)
	case *TransposeExpr:
		fvE(g.e, bound, out)
	case *ComprehensionExpr:
		inner := copyVarSet(bound)
		for _, d := range g.decls {
			fvE(d.domain, inner, out)
			inner[d.v] = true
		}
		fvF(g.body, inner, out)
	default:
		panic("relational: unknown expression in FreeVars")
	}
}

func copyVarSet(s map[*Var]bool) map[*Var]bool {
	c := make(map[*Var]bool, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Decompose splits a formula into a conjunction of smaller subformulas:
// top-level conjunctions are flattened and universal quantifiers are
// distributed over the conjuncts of their bodies. The conjunction of the
// returned formulas is equivalent to the input. This is the decompose(φ)
// step of Alg. 3.
func Decompose(f Formula) []Formula {
	switch g := f.(type) {
	case *NaryFormula:
		if g.op == OpAnd {
			var out []Formula
			for _, sub := range g.fs {
				out = append(out, Decompose(sub)...)
			}
			return out
		}
	case *QuantFormula:
		if g.forall {
			if body, ok := g.body.(*NaryFormula); ok && body.op == OpAnd {
				var out []Formula
				for _, sub := range body.fs {
					out = append(out, Decompose(Forall(g.decls, sub))...)
				}
				return out
			}
		}
	case *ConstFormula:
		if g.val {
			return nil
		}
	}
	return []Formula{f}
}

// Simplify performs elementary simplifications by partially evaluating
// variable-free, relation-free subterms to constants and folding the
// results through the formula constructors. Additionally, a relation-free
// subformula whose free variables all range over constant quantifier
// domains is folded when it evaluates uniformly across those domains. The
// paper applies exactly such "elementary simplifications" to envelopes
// before presenting them (Fig. 5) and as a mitigation for configuration
// leakage (Sec. 7).
func Simplify(f Formula, u *Universe) Formula {
	g, _ := simpFEnv(f, u, varDomains{})
	return g
}

// varDomains records, for each in-scope quantified variable, the constant
// domain it ranges over (nil when the domain is not a constant).
type varDomains map[*Var]*TupleSet

func (vd varDomains) extend(v *Var, dom *TupleSet) varDomains {
	n := make(varDomains, len(vd)+1)
	for k, val := range vd {
		n[k] = val
	}
	n[v] = dom
	return n
}

// uniformFoldBudget caps the number of bindings tried when folding a
// relation-free subformula across its variables' domains.
const uniformFoldBudget = 4096

// tryUniformFold attempts to replace a relation-free formula with a
// constant by evaluating it under every binding of its free variables to
// their (constant) quantifier domains. It returns the fold and whether it
// applied.
func tryUniformFold(f Formula, u *Universe, vd varDomains) (Formula, bool) {
	if len(FreeRelations(f)) != 0 {
		return nil, false
	}
	fv := FreeVarsFormula(f)
	vars := make([]*Var, 0, len(fv))
	total := 1
	for v := range fv {
		dom := vd[v]
		if dom == nil || dom.Len() == 0 {
			return nil, false
		}
		total *= dom.Len()
		if total > uniformFoldBudget {
			return nil, false
		}
		vars = append(vars, v)
	}
	inst := NewInstance(u)
	var verdict bool
	first := true
	uniform := true
	binding := make(env, len(vars))
	var rec func(i int)
	rec = func(i int) {
		if !uniform {
			return
		}
		if i == len(vars) {
			got := evalFormula(f, inst, binding)
			if first {
				verdict, first = got, false
			} else if got != verdict {
				uniform = false
			}
			return
		}
		for _, t := range vd[vars[i]].Tuples() {
			binding[vars[i]] = t[0]
			rec(i + 1)
			if !uniform {
				return
			}
		}
	}
	rec(0)
	if first || !uniform {
		return nil, false
	}
	return constOf(verdict), true
}

// simpF returns the simplified formula and whether it is ground (contains
// no relations and no quantified variables), in which case it has been
// folded to a constant.
func simpFEnv(f Formula, u *Universe, vd varDomains) (Formula, bool) {
	switch g := f.(type) {
	case *ConstFormula:
		return g, true

	case *CompFormula:
		l, lg := simpEEnv(g.l, u, vd)
		r, rg := simpEEnv(g.r, u, vd)
		if lg && rg {
			in := NewInstance(u)
			var res bool
			if g.op == opIn {
				res = EvalExpr(r, in).ContainsAll(EvalExpr(l, in))
			} else {
				res = EvalExpr(l, in).Equal(EvalExpr(r, in))
			}
			return constOf(res), true
		}
		// x in none ⇒ false when x is provably non-empty is not decidable
		// here, but none in x is always true.
		if lc, ok := l.(*ConstExpr); ok && lc.ts.Len() == 0 && g.op == opIn {
			return trueF, true
		}
		var rebuilt Formula
		if g.op == opIn {
			rebuilt = In(l, r)
		} else {
			rebuilt = Equals(l, r)
		}
		if folded, ok := tryUniformFold(rebuilt, u, vd); ok {
			return folded, true
		}
		return rebuilt, false

	case *MultFormula:
		e, ground := simpEEnv(g.e, u, vd)
		if ground {
			n := EvalExpr(e, NewInstance(u)).Len()
			switch g.mult {
			case MultSome:
				return constOf(n > 0), true
			case MultNo:
				return constOf(n == 0), true
			case MultOne:
				return constOf(n == 1), true
			default:
				return constOf(n <= 1), true
			}
		}
		rebuilt := Formula(&MultFormula{mult: g.mult, e: e})
		if folded, ok := tryUniformFold(rebuilt, u, vd); ok {
			return folded, true
		}
		return rebuilt, false

	case *NotFormula:
		inner, ground := simpFEnv(g.f, u, vd)
		return Not(inner), ground

	case *NaryFormula:
		fs := make([]Formula, len(g.fs))
		allGround := true
		for i, sub := range g.fs {
			var ground bool
			fs[i], ground = simpFEnv(sub, u, vd)
			allGround = allGround && ground
		}
		var out Formula
		switch g.op {
		case OpAnd:
			out = And(fs...)
		case OpOr:
			out = Or(fs...)
		case OpImplies:
			out = Implies(fs[0], fs[1])
		default:
			out = Iff(fs[0], fs[1])
		}
		_, isConst := out.(*ConstFormula)
		return out, allGround || isConst

	case *QuantFormula:
		decls := make([]Decl, len(g.decls))
		inner := vd
		for i, d := range g.decls {
			dom, _ := simpEEnv(d.domain, u, inner)
			decls[i] = NewDecl(d.v, dom)
			// An empty constant domain collapses the quantifier.
			if dc, ok := dom.(*ConstExpr); ok && dc.ts.Len() == 0 {
				return constOf(g.forall), true
			}
			if dc, ok := dom.(*ConstExpr); ok {
				inner = inner.extend(d.v, dc.ts)
			} else {
				inner = inner.extend(d.v, nil)
			}
		}
		body, _ := simpFEnv(g.body, u, inner)
		if c, ok := body.(*ConstFormula); ok {
			// ∀x|true ≡ true; ∃x|false ≡ false. The other two cases depend
			// on domain non-emptiness, known when domains are constants.
			if c.val == g.forall {
				return constOf(g.forall), true
			}
			allConstNonEmpty := true
			for _, d := range decls {
				dc, ok := d.domain.(*ConstExpr)
				if !ok || dc.ts.Len() == 0 {
					allConstNonEmpty = false
					break
				}
			}
			if allConstNonEmpty {
				return constOf(!g.forall), true
			}
		}
		if g.forall {
			return Forall(decls, body), false
		}
		return Exists(decls, body), false

	default:
		panic("relational: unknown formula in Simplify")
	}
}

// simpE simplifies an expression and reports whether it is ground
// (relation- and variable-free); ground expressions fold to constants.
func simpEEnv(e Expr, u *Universe, vd varDomains) (Expr, bool) {
	switch g := e.(type) {
	case *Relation:
		return g, false
	case *Var:
		return g, false
	case *ConstExpr:
		return g, true

	case *BinExpr:
		l, lg := simpEEnv(g.l, u, vd)
		r, rg := simpEEnv(g.r, u, vd)
		if lg && rg {
			in := NewInstance(u)
			return Const(EvalExpr(&BinExpr{op: g.op, l: l, r: r}, in)), true
		}
		// Identity folds against constant operands.
		if lc, lok := l.(*ConstExpr); lok && lc.ts.Len() == 0 {
			switch g.op {
			case opUnion:
				return r, rg
			case opIntersect, opDiff, opProduct, opJoin:
				return emptyConst(u, (&BinExpr{op: g.op, l: l, r: r}).Arity()), true
			}
		}
		if rc, rok := r.(*ConstExpr); rok && rc.ts.Len() == 0 {
			switch g.op {
			case opUnion, opDiff:
				return l, lg
			case opIntersect, opProduct, opJoin:
				return emptyConst(u, (&BinExpr{op: g.op, l: l, r: r}).Arity()), true
			}
		}
		return &BinExpr{op: g.op, l: l, r: r}, false

	case *TransposeExpr:
		inner, ground := simpEEnv(g.e, u, vd)
		if ground {
			return Const(EvalExpr(&TransposeExpr{e: inner}, NewInstance(u))), true
		}
		return &TransposeExpr{e: inner}, false

	case *ComprehensionExpr:
		decls := make([]Decl, len(g.decls))
		inner := vd
		for i, d := range g.decls {
			dom, _ := simpEEnv(d.domain, u, inner)
			decls[i] = NewDecl(d.v, dom)
			if dc, ok := dom.(*ConstExpr); ok {
				inner = inner.extend(d.v, dc.ts)
			} else {
				inner = inner.extend(d.v, nil)
			}
		}
		body, _ := simpFEnv(g.body, u, inner)
		out := &ComprehensionExpr{decls: decls, body: body}
		// A comprehension is ground when all domains are constant, the body
		// mentions no relations, and the body's only free variables are the
		// comprehension's own.
		if len(FreeRelations(body)) == 0 && len(FreeVars(out)) == 0 {
			allConst := true
			for _, d := range decls {
				if _, ok := d.domain.(*ConstExpr); !ok {
					allConst = false
					break
				}
			}
			if allConst {
				return Const(EvalExpr(out, NewInstance(u))), true
			}
		}
		return out, false

	default:
		panic("relational: unknown expression in Simplify")
	}
}

func emptyConst(u *Universe, arity int) Expr {
	return Const(NewTupleSet(u, arity))
}

func constOf(b bool) Formula {
	if b {
		return trueF
	}
	return falseF
}
