package relational

import (
	"sort"
	"strings"
)

// Instance assigns a concrete tuple-set extent to each relation. Instances
// are what the solver returns and what the evaluator consumes.
type Instance struct {
	u *Universe
	m map[*Relation]*TupleSet
}

// NewInstance creates an empty instance over a universe.
func NewInstance(u *Universe) *Instance {
	return &Instance{u: u, m: make(map[*Relation]*TupleSet)}
}

// Universe returns the instance's universe.
func (in *Instance) Universe() *Universe { return in.u }

// Set assigns r's extent (a copy is stored).
func (in *Instance) Set(r *Relation, ts *TupleSet) {
	if ts.arity != r.arity {
		panic("relational: instance arity mismatch for " + r.name)
	}
	in.m[r] = ts.Clone()
}

// Get returns r's extent, defaulting to the empty set.
func (in *Instance) Get(r *Relation) *TupleSet {
	if ts, ok := in.m[r]; ok {
		return ts
	}
	return NewTupleSet(in.u, r.arity)
}

// Relations returns the relations with assigned extents, sorted by name.
func (in *Instance) Relations() []*Relation {
	out := make([]*Relation, 0, len(in.m))
	for r := range in.m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	c := NewInstance(in.u)
	for r, ts := range in.m {
		c.m[r] = ts.Clone()
	}
	return c
}

// String renders the instance one relation per line.
func (in *Instance) String() string {
	var b strings.Builder
	for _, r := range in.Relations() {
		b.WriteString(r.name)
		b.WriteString(" = ")
		b.WriteString(in.m[r].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// env maps quantified variables to the atom they are currently bound to
// during evaluation. (The translator uses a dense binding array instead;
// the evaluator is not hot and keeps the simple copying map.)
type env map[*Var]int

func (e env) extend(v *Var, atom int) env {
	n := make(env, len(e)+1)
	for k, val := range e {
		n[k] = val
	}
	n[v] = atom
	return n
}

// Eval evaluates a closed formula under an instance.
func Eval(f Formula, in *Instance) bool {
	return evalFormula(f, in, env{})
}

// EvalExpr evaluates a closed expression under an instance.
func EvalExpr(e Expr, in *Instance) *TupleSet {
	return evalExpr(e, in, env{})
}

func evalFormula(f Formula, in *Instance, e env) bool {
	switch g := f.(type) {
	case *ConstFormula:
		return g.val

	case *CompFormula:
		l := evalExpr(g.l, in, e)
		r := evalExpr(g.r, in, e)
		if g.op == opIn {
			return r.ContainsAll(l)
		}
		return l.Equal(r)

	case *MultFormula:
		n := evalExpr(g.e, in, e).Len()
		switch g.mult {
		case MultSome:
			return n > 0
		case MultNo:
			return n == 0
		case MultOne:
			return n == 1
		case MultLone:
			return n <= 1
		}
		panic("relational: unknown multiplicity")

	case *NotFormula:
		return !evalFormula(g.f, in, e)

	case *NaryFormula:
		switch g.op {
		case OpAnd:
			for _, sub := range g.fs {
				if !evalFormula(sub, in, e) {
					return false
				}
			}
			return true
		case OpOr:
			for _, sub := range g.fs {
				if evalFormula(sub, in, e) {
					return true
				}
			}
			return false
		case OpImplies:
			return !evalFormula(g.fs[0], in, e) || evalFormula(g.fs[1], in, e)
		case OpIff:
			return evalFormula(g.fs[0], in, e) == evalFormula(g.fs[1], in, e)
		}
		panic("relational: unknown connective")

	case *QuantFormula:
		return evalQuant(g, g.decls, in, e)

	default:
		panic("relational: unknown formula in Eval")
	}
}

func evalQuant(q *QuantFormula, decls []Decl, in *Instance, e env) bool {
	if len(decls) == 0 {
		return evalFormula(q.body, in, e)
	}
	d := decls[0]
	dom := evalExpr(d.domain, in, e)
	for _, t := range dom.Tuples() {
		held := evalQuant(q, decls[1:], in, e.extend(d.v, t[0]))
		if q.forall && !held {
			return false
		}
		if !q.forall && held {
			return true
		}
	}
	return q.forall
}

func evalExpr(ex Expr, in *Instance, e env) *TupleSet {
	switch g := ex.(type) {
	case *Relation:
		return in.Get(g)

	case *Var:
		atom, ok := e[g]
		if !ok {
			panic("relational: unbound variable " + g.name + " in Eval")
		}
		return NewTupleSet(in.u, 1).Add(Tuple{atom})

	case *ConstExpr:
		return g.ts.Clone()

	case *BinExpr:
		l := evalExpr(g.l, in, e)
		r := evalExpr(g.r, in, e)
		switch g.op {
		case opUnion:
			return l.Clone().UnionWith(r)
		case opIntersect:
			out := NewTupleSet(in.u, l.arity)
			for _, t := range l.Tuples() {
				if r.Contains(t) {
					out.Add(t)
				}
			}
			return out
		case opDiff:
			out := NewTupleSet(in.u, l.arity)
			for _, t := range l.Tuples() {
				if !r.Contains(t) {
					out.Add(t)
				}
			}
			return out
		case opProduct:
			out := NewTupleSet(in.u, l.arity+r.arity)
			for _, a := range l.Tuples() {
				for _, b := range r.Tuples() {
					out.Add(a.Concat(b))
				}
			}
			return out
		case opJoin:
			out := NewTupleSet(in.u, l.arity+r.arity-2)
			for _, a := range l.Tuples() {
				for _, b := range r.Tuples() {
					if a[len(a)-1] == b[0] {
						out.Add(a[:len(a)-1].Concat(b[1:]))
					}
				}
			}
			return out
		}
		panic("relational: unknown binary expression in Eval")

	case *TransposeExpr:
		inSet := evalExpr(g.e, in, e)
		out := NewTupleSet(in.u, 2)
		for _, t := range inSet.Tuples() {
			out.Add(Tuple{t[1], t[0]})
		}
		return out

	case *ComprehensionExpr:
		out := NewTupleSet(in.u, len(g.decls))
		evalComprehension(g, g.decls, nil, in, e, out)
		return out

	default:
		panic("relational: unknown expression in Eval")
	}
}

func evalComprehension(c *ComprehensionExpr, decls []Decl, prefix Tuple, in *Instance, e env, out *TupleSet) {
	if len(decls) == 0 {
		if evalFormula(c.body, in, e) {
			out.Add(prefix)
		}
		return
	}
	d := decls[0]
	dom := evalExpr(d.domain, in, e)
	for _, t := range dom.Tuples() {
		evalComprehension(c, decls[1:], prefix.Concat(t), in, e.extend(d.v, t[0]), out)
	}
}
