package relational

import (
	"strings"
	"testing"

	"muppet/internal/sat"
)

func TestExprStrings(t *testing.T) {
	u := u3()
	r := NewRelation("R", 2)
	s := NewRelation("S", 2)
	x := NewVar("x")
	cases := []struct {
		e    Expr
		want string
	}{
		{Union(r, s), "(R + S)"},
		{Intersect(r, s), "(R & S)"},
		{Diff(r, s), "(R - S)"},
		{Product(x, x), "(x->x)"},
		{Join(x, r), "(x.R)"},
		{Transpose(r), "~R"},
		{ConstAtom(u, "a"), "a"},
		{Const(NewTupleSet(u, 1)), "none"},
		{Const(TupleSetOf(u, []string{"a", "b"})), "a->b"},
		{Const(TupleSetOf(u, []string{"a"}, []string{"b"})), "{a + b}"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}

func TestFormulaStringsExtra(t *testing.T) {
	r := NewRelation("R", 1)
	s := NewRelation("S", 1)
	cases := []struct {
		f    Formula
		want string
	}{
		{TrueFormula(), "true"},
		{FalseFormula(), "false"},
		{Equals(r, s), "R = S"},
		{One(r), "one R"},
		{Lone(r), "lone R"},
		{Not(Some(r)), "not (some R)"},
		{Iff(Some(r), Some(s)), "(some R iff some S)"},
		{Implies(Some(r), Some(s)), "(some R implies some S)"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
	x := NewVar("x")
	q := Exists([]Decl{NewDecl(x, r)}, In(x, s))
	if !strings.HasPrefix(q.String(), "some x: R | ") {
		t.Errorf("exists rendering: %q", q)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	r1 := NewRelation("R1", 1)
	r2 := NewRelation("R2", 2)
	cases := []func(){
		func() { Union(r1, r2) },
		func() { Intersect(r1, r2) },
		func() { Diff(r1, r2) },
		func() { In(r1, r2) },
		func() { Equals(r1, r2) },
		func() { Transpose(r1) },
		func() { Join(r1, r1) }, // arity 0 result
		func() { NewRelation("bad", 0) },
		func() { NewVar("v"); NewDecl(NewVar("v"), r2) },
		func() { Comprehension(nil, TrueFormula()) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestTupleHelpers(t *testing.T) {
	u := u3()
	a := Tuple{0, 1}
	b := Tuple{0, 1}
	c := Tuple{1, 0}
	if !a.Equal(b) || a.Equal(c) || a.Equal(Tuple{0}) {
		t.Fatal("Tuple.Equal")
	}
	if got := a.Concat(c); !got.Equal(Tuple{0, 1, 1, 0}) {
		t.Fatalf("Concat: %v", got)
	}
	if a.String(u) != "(a, b)" {
		t.Fatalf("String: %q", a.String(u))
	}
}

func TestBoundsClone(t *testing.T) {
	u := u3()
	r := NewRelation("R", 1)
	b := NewBounds(u)
	b.Bound(r, NewTupleSet(u, 1), TupleSetOf(u, []string{"a"}))
	c := b.Clone()
	c.Upper(r).AddNames("b")
	if b.Upper(r).Len() != 1 {
		t.Fatal("Clone must deep-copy bounds")
	}
	if len(c.Relations()) != 1 || c.Relations()[0] != r {
		t.Fatal("Clone relations")
	}
}

func TestInstanceString(t *testing.T) {
	u := u3()
	r := NewRelation("R", 1)
	in := NewInstance(u)
	in.Set(r, TupleSetOf(u, []string{"a"}))
	if got := in.String(); !strings.Contains(got, "R = {(a)}") {
		t.Fatalf("Instance.String: %q", got)
	}
	clone := in.Clone()
	clone.Get(r).AddNames("b")
	// Get returns the live set for present relations; ensure Clone is deep
	// with respect to the original.
	if in.Get(r).Len() != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestTranslationSharesAcrossFormulas(t *testing.T) {
	// Two formulas grounded by one translator share relation variables:
	// asserting both must behave like their conjunction.
	f := newFixture()
	ss := NewSession(f.bounds)
	ss.Assert(Some(f.link))
	ss.Assert(No(f.link))
	if ss.Solve() != sat.Unsat {
		t.Fatal("shared variables must make the pair UNSAT")
	}
}

func TestIffAndOneTranslate(t *testing.T) {
	f := newFixture()
	x := NewVar("x")
	// one link from s1 iff one link from s2 — plus some link from s1,
	// forces at least structure; just check SAT and model consistency.
	fromS1 := Join(ConstAtom(f.u, "s1"), f.link)
	fromS2 := Join(ConstAtom(f.u, "s2"), f.link)
	goal := And(
		Iff(One(fromS1), One(fromS2)),
		Some(fromS1),
		One(fromS1),
	)
	inst, st := Solve(Problem{Bounds: f.bounds, Formula: goal})
	if st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	if !Eval(goal, inst) {
		t.Fatal("instance must satisfy the Iff/One goal")
	}
	n1 := EvalExpr(fromS1, inst).Len()
	n2 := EvalExpr(fromS2, inst).Len()
	if n1 != 1 || (n2 == 1) != (n1 == 1) {
		t.Fatalf("one/iff semantics: n1=%d n2=%d", n1, n2)
	}
	_ = x
}

func TestLoneTranslate(t *testing.T) {
	f := newFixture()
	goal := And(Lone(Join(ConstAtom(f.u, "s1"), f.link)), Some(f.link))
	inst, st := Solve(Problem{Bounds: f.bounds, Formula: goal})
	if st != sat.Sat {
		t.Fatalf("got %v", st)
	}
	if EvalExpr(Join(ConstAtom(f.u, "s1"), f.link), inst).Len() > 1 {
		t.Fatal("lone violated")
	}
}

func TestSimplifyQuantifierCollapse(t *testing.T) {
	u := u3()
	x := NewVar("x")
	empty := Const(NewTupleSet(u, 1))
	// ∀x∈∅|φ ≡ true; ∃x∈∅|φ ≡ false.
	if got := Simplify(Forall([]Decl{NewDecl(x, empty)}, FalseFormula()), u); got != TrueFormula() {
		t.Fatalf("forall-empty: %v", got)
	}
	if got := Simplify(Exists([]Decl{NewDecl(x, empty)}, TrueFormula()), u); got != FalseFormula() {
		t.Fatalf("exists-empty: %v", got)
	}
	// Non-empty constant domain + constant body collapse.
	dom := Const(TupleSetOf(u, []string{"a"}))
	if got := Simplify(Forall([]Decl{NewDecl(x, dom)}, FalseFormula()), u); got != FalseFormula() {
		t.Fatalf("forall-const-false: %v", got)
	}
	if got := Simplify(Exists([]Decl{NewDecl(x, dom)}, TrueFormula()), u); got != TrueFormula() {
		t.Fatalf("exists-const-true: %v", got)
	}
}

func TestUniformFoldUnderQuantifier(t *testing.T) {
	u := u3()
	x := NewVar("x")
	dom := Const(TupleSetOf(u, []string{"a"}, []string{"b"}))
	full := Const(TupleSetOf(u, []string{"a"}, []string{"b"}, []string{"c"}))
	// ∀x∈{a,b} | x in {a,b,c} — relation-free body, uniform true.
	f := Forall([]Decl{NewDecl(x, dom)}, In(x, full))
	if got := Simplify(f, u); got != TrueFormula() {
		t.Fatalf("uniform fold should give true: %v", got)
	}
	// ∀x∈{a,b} | x in {a} — not uniform: stays quantified.
	g := Forall([]Decl{NewDecl(x, dom)}, In(x, Const(TupleSetOf(u, []string{"a"}))))
	if _, isConst := Simplify(g, u).(*ConstFormula); isConst {
		t.Fatalf("non-uniform body must not fold: %v", Simplify(g, u))
	}
}

func TestRelationAccessors(t *testing.T) {
	r := NewRelation("R", 3)
	if r.Name() != "R" || r.Arity() != 3 {
		t.Fatal("accessors")
	}
	v := NewVar("v")
	if v.Name() != "v" || v.Arity() != 1 {
		t.Fatal("var accessors")
	}
	c := Const(TupleSetOf(u3(), []string{"a"}))
	if c.Arity() != 1 || c.TupleSet().Len() != 1 {
		t.Fatal("const accessors")
	}
}

func TestMultAccessors(t *testing.T) {
	r := NewRelation("R", 1)
	m := Some(r).(*MultFormula)
	if m.Mult() != MultSome || m.Expr() != r {
		t.Fatal("mult accessors")
	}
	cmp := In(r, r).(*CompFormula)
	if !cmp.IsIn() || cmp.Left() != r || cmp.Right() != r {
		t.Fatal("comp accessors")
	}
	n := Not(Some(r)).(*NotFormula)
	if n.Inner().String() != "some R" {
		t.Fatal("not accessor")
	}
	q := Forall([]Decl{NewDecl(NewVar("x"), r)}, TrueFormula())
	if !q.(*QuantFormula).IsForall() || len(q.(*QuantFormula).Decls()) != 1 {
		t.Fatal("quant accessors")
	}
}
