package relational

import (
	"testing"
)

// cacheFixture builds a small session: one unary relation R and one binary
// relation E over three atoms, both free.
func cacheFixture(t *testing.T) (*Session, *Relation, *Relation) {
	t.Helper()
	u := u3()
	r := NewRelation("R", 1)
	e := NewRelation("E", 2)
	b := NewBounds(u)
	b.Bound(r, NewTupleSet(u, 1), AllTuples(u, 1))
	b.Bound(e, NewTupleSet(u, 2), AllTuples(u, 2))
	return NewSession(b), r, e
}

// mkFormula builds ∀x ∈ R · some (x.E) with fresh node pointers each call:
// structurally identical, pointer-distinct.
func mkFormula(r, e *Relation) Formula {
	x := NewVar("x")
	return Forall([]Decl{NewDecl(x, r)}, Some(Join(x, e)))
}

func TestTranslationCachePointerHit(t *testing.T) {
	ss, r, e := cacheFixture(t)
	f := mkFormula(r, e)
	l1 := ss.Lit(f)
	l2 := ss.Lit(f)
	if l1 != l2 {
		t.Fatalf("same formula pointer gave different literals: %v vs %v", l1, l2)
	}
	st := ss.CacheStats()
	if st.PointerHits != 1 {
		t.Fatalf("pointer hits = %d, want 1 (stats %+v)", st.PointerHits, st)
	}
	if st.StructHits != 0 {
		t.Fatalf("structural hits = %d, want 0 (stats %+v)", st.StructHits, st)
	}
}

func TestTranslationCacheStructuralHit(t *testing.T) {
	ss, r, e := cacheFixture(t)
	l1 := ss.Lit(mkFormula(r, e))
	before := ss.CacheStats()
	l2 := ss.Lit(mkFormula(r, e)) // fresh pointers, same structure
	if l1 != l2 {
		t.Fatalf("structurally identical formulas gave different literals: %v vs %v", l1, l2)
	}
	st := ss.CacheStats()
	if st.StructHits != before.StructHits+1 {
		t.Fatalf("structural hits %d -> %d, want +1", before.StructHits, st.StructHits)
	}
	if st.Misses != before.Misses {
		t.Fatalf("misses grew on a structural hit: %d -> %d", before.Misses, st.Misses)
	}
	// The structural hit seeds the pointer cache only for the pointer it
	// saw; a third fresh build is another structural hit, not a miss.
	l3 := ss.Lit(mkFormula(r, e))
	if l3 != l1 {
		t.Fatalf("third build differs: %v vs %v", l3, l1)
	}
	if got := ss.CacheStats().StructHits; got != before.StructHits+2 {
		t.Fatalf("structural hits = %d, want %d", got, before.StructHits+2)
	}
}

// TestTranslationCacheDistinguishes checks near-miss structures do NOT
// collide in the translation cache: different quantifier kind, different
// connective, different bound variable wiring. Semantically distinct
// variants must yield distinct literals; semantically EQUIVALENT variants
// (a vacuous extra binder) may share a literal — that merge comes from
// AIG sweeping below the cache, not from a cache hit, which StructHits
// staying at zero proves.
func TestTranslationCacheDistinguishes(t *testing.T) {
	ss, r, e := cacheFixture(t)
	x := NewVar("x")
	y := NewVar("y")
	distinct := []Formula{
		Forall([]Decl{NewDecl(x, r)}, Some(Join(x, e))),
		Exists([]Decl{NewDecl(x, r)}, Some(Join(x, e))),
		Forall([]Decl{NewDecl(x, r)}, No(Join(x, e))),
	}
	var lits []interface{}
	for i, f := range distinct {
		li := ss.Lit(f)
		for j, prev := range lits {
			if li == prev {
				t.Fatalf("variant %d collided with variant %d", i, j)
			}
		}
		lits = append(lits, li)
	}
	// ∀x,y∈R · φ(x) is equivalent to ∀x∈R · φ(x) (the y binder is
	// vacuous): the sweep merges its cone onto the same solver literal
	// while the cache still sees a distinct structure. ∀x,y∈R · φ(y) is
	// equivalent too but its rebuilt cone is wide (support exceeds the
	// exact-hashing bound), so it is only required not to cache-collide.
	merged := Forall([]Decl{NewDecl(x, r), NewDecl(y, r)}, Some(Join(x, e)))
	if li := ss.Lit(merged); li != lits[0] {
		t.Fatalf("equivalent variant not merged by sweep: %v vs %v", li, lits[0])
	}
	wide := Forall([]Decl{NewDecl(x, r), NewDecl(y, r)}, Some(Join(y, e)))
	if li := ss.Lit(wide); li == lits[1] || li == lits[2] {
		t.Fatalf("wide variant collided with a semantically distinct one: %v", li)
	}
	if st := ss.CacheStats(); st.StructHits != 0 {
		t.Fatalf("distinct structures produced structural hits: %+v", st)
	}
}

// TestTranslationCacheBoundVarScoping checks a bound variable's identity
// is positional: re-using the same *Var object in a second, structurally
// identical formula must still hit, and the binder must not leak past its
// scope.
func TestTranslationCacheBoundVarScoping(t *testing.T) {
	ss, r, e := cacheFixture(t)
	x := NewVar("x")
	f1 := Forall([]Decl{NewDecl(x, r)}, Some(Join(x, e)))
	// Same *Var object in an inner scope shadowing nothing: the key
	// depends on binding position, not the pointer.
	f2 := Forall([]Decl{NewDecl(x, r)}, Some(Join(x, e)))
	l1 := ss.Lit(f1)
	l2 := ss.Lit(f2)
	if l1 != l2 {
		t.Fatal("same-shape formulas with shared Var object must agree")
	}
	if st := ss.CacheStats(); st.StructHits != 1 {
		t.Fatalf("want 1 structural hit, got %+v", st)
	}
}

// TestTranslationCacheSolveEquivalence checks cached grounding changes
// nothing semantically: asserting via cache-hit literals solves the same
// as a fresh session.
func TestTranslationCacheSolveEquivalence(t *testing.T) {
	ss1, r1, e1 := cacheFixture(t)
	ss1.Assert(mkFormula(r1, e1))
	ss1.Assert(Some(r1))
	st1 := ss1.Solve()

	ss2, r2, e2 := cacheFixture(t)
	// Translate twice first (warming both caches), then assert.
	ss2.Lit(mkFormula(r2, e2))
	ss2.Assert(mkFormula(r2, e2))
	ss2.Assert(Some(r2))
	st2 := ss2.Solve()
	if st1 != st2 {
		t.Fatalf("cache-warmed session disagreed: %v vs %v", st1, st2)
	}
}
