package relational

import (
	"fmt"
	"strings"
)

// Expr is a relational expression: it denotes a set of tuples of a fixed
// arity in any instance. Expressions are immutable values.
type Expr interface {
	// Arity returns the arity of the denoted tuple set.
	Arity() int
	// String renders the expression in an Alloy-like concrete syntax.
	String() string

	exprNode()
}

// Var is a quantified variable ranging over scalars (singleton unary
// tuple sets). Vars are compared by identity.
type Var struct {
	name string
}

// NewVar creates a fresh quantified variable with a display name.
func NewVar(name string) *Var { return &Var{name: name} }

// Name returns the variable's display name.
func (v *Var) Name() string { return v.name }

// Arity of a variable expression is always 1.
func (v *Var) Arity() int { return 1 }

func (v *Var) String() string { return v.name }
func (v *Var) exprNode()      {}

// Relation is itself an expression.
func (r *Relation) String() string { return r.name }
func (r *Relation) exprNode()      {}

// ConstExpr is a literal tuple set. It is the vehicle for envelope
// substitution: a relation fixed by one party's concrete configuration is
// replaced by the constant extent it has there.
type ConstExpr struct {
	ts *TupleSet
}

// Const builds a constant expression from a tuple set.
func Const(ts *TupleSet) *ConstExpr { return &ConstExpr{ts: ts.Clone()} }

// ConstAtom builds the scalar constant {a} for a named atom.
func ConstAtom(u *Universe, name string) *ConstExpr {
	return Const(NewTupleSet(u, 1).AddNames(name))
}

// TupleSet returns a copy of the constant's extent.
func (c *ConstExpr) TupleSet() *TupleSet { return c.ts.Clone() }

// Arity returns the constant's tuple arity.
func (c *ConstExpr) Arity() int { return c.ts.arity }

func (c *ConstExpr) String() string {
	if c.ts.Len() == 0 {
		return "none"
	}
	parts := make([]string, 0, c.ts.Len())
	for _, t := range c.ts.Tuples() {
		names := make([]string, len(t))
		for i, a := range t {
			names[i] = c.ts.u.Atom(a)
		}
		parts = append(parts, strings.Join(names, "->"))
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "{" + strings.Join(parts, " + ") + "}"
}
func (c *ConstExpr) exprNode() {}

// binExprOp enumerates binary expression operators.
type binExprOp uint8

const (
	opUnion binExprOp = iota
	opIntersect
	opDiff
	opProduct
	opJoin
)

// BinOp names a binary expression operator for external inspection
// (structural walkers, wire codecs). Values mirror the internal
// operator enumeration.
type BinOp uint8

// BinOp values, in constructor order.
const (
	OpUnion BinOp = iota
	OpIntersect
	OpDiff
	OpProduct
	OpJoin
)

// BinExpr is a binary relational operator application.
type BinExpr struct {
	op   binExprOp
	l, r Expr
}

// Op returns the operator.
func (b *BinExpr) Op() BinOp { return BinOp(b.op) }

// Left returns the left operand.
func (b *BinExpr) Left() Expr { return b.l }

// Right returns the right operand.
func (b *BinExpr) Right() Expr { return b.r }

// Arity computes the result arity for the operator.
func (b *BinExpr) Arity() int {
	switch b.op {
	case opProduct:
		return b.l.Arity() + b.r.Arity()
	case opJoin:
		return b.l.Arity() + b.r.Arity() - 2
	default:
		return b.l.Arity()
	}
}

func (b *BinExpr) String() string {
	var sym string
	switch b.op {
	case opUnion:
		sym = " + "
	case opIntersect:
		sym = " & "
	case opDiff:
		sym = " - "
	case opProduct:
		sym = "->"
	case opJoin:
		sym = "."
	}
	return "(" + b.l.String() + sym + b.r.String() + ")"
}
func (b *BinExpr) exprNode() {}

func sameArity(l, r Expr, op string) {
	if l.Arity() != r.Arity() {
		panic(fmt.Sprintf("relational: %s of arity %d and arity %d expressions", op, l.Arity(), r.Arity()))
	}
}

// Union returns l + r (set union).
func Union(l, r Expr) Expr {
	sameArity(l, r, "union")
	return &BinExpr{op: opUnion, l: l, r: r}
}

// Intersect returns l & r.
func Intersect(l, r Expr) Expr {
	sameArity(l, r, "intersection")
	return &BinExpr{op: opIntersect, l: l, r: r}
}

// Diff returns l - r (set difference).
func Diff(l, r Expr) Expr {
	sameArity(l, r, "difference")
	return &BinExpr{op: opDiff, l: l, r: r}
}

// Product returns the cross product l->r.
func Product(l, r Expr) Expr { return &BinExpr{op: opProduct, l: l, r: r} }

// Join returns the relational (dot) join l.r, matching the last column of l
// with the first column of r.
func Join(l, r Expr) Expr {
	if l.Arity()+r.Arity()-2 < 1 {
		panic("relational: join would produce arity < 1; use In for membership")
	}
	return &BinExpr{op: opJoin, l: l, r: r}
}

// TransposeExpr is the transpose of a binary expression.
type TransposeExpr struct {
	e Expr
}

// Transpose returns ~e for a binary e.
func Transpose(e Expr) Expr {
	if e.Arity() != 2 {
		panic("relational: transpose of non-binary expression")
	}
	return &TransposeExpr{e: e}
}

// Inner returns the transposed expression.
func (t *TransposeExpr) Inner() Expr { return t.e }

// Arity of a transpose is always 2.
func (t *TransposeExpr) Arity() int { return 2 }

func (t *TransposeExpr) String() string { return "~" + t.e.String() }
func (t *TransposeExpr) exprNode()      {}

// Decl binds a quantified variable to a unary domain expression.
type Decl struct {
	v      *Var
	domain Expr
}

// NewDecl declares v ∈ domain; domain must be unary.
func NewDecl(v *Var, domain Expr) Decl {
	if domain.Arity() != 1 {
		panic("relational: quantifier domain must be unary")
	}
	return Decl{v: v, domain: domain}
}

// Var returns the declared variable.
func (d Decl) Var() *Var { return d.v }

// Domain returns the declared domain expression.
func (d Decl) Domain() Expr { return d.domain }

func (d Decl) String() string { return d.v.name + ": " + d.domain.String() }

// ComprehensionExpr is the set {v1: D1, …, vn: Dn | F}.
type ComprehensionExpr struct {
	decls []Decl
	body  Formula
}

// Comprehension builds a set comprehension. Its arity is the number of
// declared variables.
func Comprehension(decls []Decl, body Formula) Expr {
	if len(decls) == 0 {
		panic("relational: comprehension needs at least one declaration")
	}
	return &ComprehensionExpr{decls: decls, body: body}
}

// Decls returns the comprehension's declarations.
func (c *ComprehensionExpr) Decls() []Decl { return c.decls }

// Body returns the comprehension's formula.
func (c *ComprehensionExpr) Body() Formula { return c.body }

// Arity returns the number of declared variables.
func (c *ComprehensionExpr) Arity() int { return len(c.decls) }

func (c *ComprehensionExpr) String() string {
	parts := make([]string, len(c.decls))
	for i, d := range c.decls {
		parts[i] = d.String()
	}
	return "{" + strings.Join(parts, ", ") + " | " + c.body.String() + "}"
}
func (c *ComprehensionExpr) exprNode() {}
