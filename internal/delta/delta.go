// Package delta computes what changed between two revisions of a
// multi-party configuration bundle: which goals were added or removed,
// which concrete relational atoms entered or left each party's fixed
// settings, and whether the two revisions share a vocabulary (universe
// atoms and party shapes) at all.
//
// The comparison is the front half of incremental re-reconciliation
// (ROADMAP "Delta solving"): when two revisions are Compatible, the new
// revision's constraints can be re-asserted over the previous revision's
// live solving sessions — untouched selector-guarded CNF groups are kept,
// only groups covering changed atoms are re-ground, and additions that
// touch eliminated variables restore them via simp.Restore — instead of a
// cold ground→translate→solve rebuild. When they are not (new atoms
// outside the grounded bounds, a changed party set), the caller must fall
// back to a cold build; Plan.Reason says why.
//
// Snapshots are deliberately plain strings — relation names, rendered
// tuples, rendered goal formulas — never pointers: the two revisions come
// from two independently compiled Systems whose *Relation identities
// differ even when their vocabularies agree.
package delta

import (
	"fmt"
	"sort"
	"strings"
)

// Goal is one named goal of a party revision. Formula is the goal's
// compiled formula in its canonical Alloy-like rendering, which serves as
// the equality proxy: two goals compiled from the same row render
// identically, independent of which System compiled them.
type Goal struct {
	Name    string
	Formula string
}

// PartyRev snapshots one party at one revision: its goals and its
// concrete (fixed) settings, the latter as relation name → sorted
// rendered tuples.
type PartyRev struct {
	Name  string
	Goals []Goal
	Fixed map[string][]string
}

// Revision snapshots one bundle/goal-set revision: the universe the
// System grounded over, and every party's content.
type Revision struct {
	Universe []string
	Parties  []PartyRev
}

// Atom is one changed relational atom: a tuple entering (Added) or
// leaving a party's concrete configuration between the two revisions.
type Atom struct {
	Party    string
	Relation string
	Tuple    string
	Added    bool
}

func (a Atom) String() string {
	sign := "-"
	if a.Added {
		sign = "+"
	}
	return fmt.Sprintf("%s %s/%s%s", sign, a.Party, a.Relation, a.Tuple)
}

// Plan is the outcome of comparing two revisions: whether a warm rebase
// is possible at all, and the minimal re-assertion work if it is. The
// actual re-assertion machinery lives with the solving sessions (selector
// memoisation, translator caches, simp.Restore); the plan is what lets a
// caller predict, report, and verify that work.
type Plan struct {
	// Compatible reports whether the new revision can be re-asserted over
	// the old revision's grounded vocabulary: same universe atoms, same
	// party names in the same order. When false, Reason says why and a
	// cold rebuild is required.
	Compatible bool
	Reason     string

	// GoalsKept counts goals present in both revisions; GoalsAdded and
	// GoalsRemoved name (as "party/goal-name") the ones that are not.
	// A goal whose formula changed counts as removed + added.
	GoalsKept    int
	GoalsAdded   []string
	GoalsRemoved []string

	// AtomsChanged lists the concrete fixed-setting atoms that differ,
	// sorted by party, relation, tuple.
	AtomsChanged []Atom
}

// Unchanged reports whether the two revisions are identical in content —
// nothing to re-assert.
func (p *Plan) Unchanged() bool {
	return p.Compatible && len(p.GoalsAdded) == 0 && len(p.GoalsRemoved) == 0 && len(p.AtomsChanged) == 0
}

// Summary renders the plan for humans — the `muppet diff` report body.
func (p *Plan) Summary() string {
	var b strings.Builder
	if !p.Compatible {
		fmt.Fprintf(&b, "incompatible revisions: %s\n", p.Reason)
		fmt.Fprintln(&b, "(cold rebuild required)")
		return b.String()
	}
	if p.Unchanged() {
		fmt.Fprintln(&b, "revisions identical: nothing to re-assert")
		return b.String()
	}
	fmt.Fprintf(&b, "goals: %d kept, %d added, %d removed\n", p.GoalsKept, len(p.GoalsAdded), len(p.GoalsRemoved))
	for _, g := range p.GoalsRemoved {
		fmt.Fprintf(&b, "  - %s\n", g)
	}
	for _, g := range p.GoalsAdded {
		fmt.Fprintf(&b, "  + %s\n", g)
	}
	fmt.Fprintf(&b, "atoms changed: %d\n", len(p.AtomsChanged))
	for _, a := range p.AtomsChanged {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	return b.String()
}

// Compare diffs two revision snapshots into a re-assertion plan. Neither
// argument is mutated; both must be non-nil.
func Compare(old, new *Revision) *Plan {
	p := &Plan{Compatible: true}

	// Universe compatibility is exact and order-sensitive: atom indices —
	// and with them every grounded bound, circuit node, and solver
	// variable — depend on position, so a permuted universe is as foreign
	// as a grown one.
	if !sameStrings(old.Universe, new.Universe) {
		p.Compatible = false
		p.Reason = universeDiff(old.Universe, new.Universe)
	}

	// Party shapes: the workspace key is built from party names and
	// domains in order, so a changed party set means no session to rebase
	// onto.
	if p.Compatible && len(old.Parties) != len(new.Parties) {
		p.Compatible = false
		p.Reason = fmt.Sprintf("party count changed: %d -> %d", len(old.Parties), len(new.Parties))
	}
	if p.Compatible {
		for i := range old.Parties {
			if old.Parties[i].Name != new.Parties[i].Name {
				p.Compatible = false
				p.Reason = fmt.Sprintf("party %d changed: %q -> %q", i, old.Parties[i].Name, new.Parties[i].Name)
				break
			}
		}
	}

	// Content diffs are computed even for incompatible revisions — the
	// report is still useful; only the warm rebase is off the table.
	n := len(old.Parties)
	if len(new.Parties) < n {
		n = len(new.Parties)
	}
	for i := 0; i < n; i++ {
		diffGoals(p, &old.Parties[i], &new.Parties[i])
		diffFixed(p, &old.Parties[i], &new.Parties[i])
	}
	sort.Slice(p.AtomsChanged, func(i, j int) bool {
		a, b := p.AtomsChanged[i], p.AtomsChanged[j]
		if a.Party != b.Party {
			return a.Party < b.Party
		}
		if a.Relation != b.Relation {
			return a.Relation < b.Relation
		}
		if a.Tuple != b.Tuple {
			return a.Tuple < b.Tuple
		}
		return !a.Added && b.Added
	})
	sort.Strings(p.GoalsAdded)
	sort.Strings(p.GoalsRemoved)
	return p
}

func diffGoals(p *Plan, old, new *PartyRev) {
	key := func(g Goal) string { return g.Name + "\x00" + g.Formula }
	oldSet := make(map[string]int, len(old.Goals))
	for _, g := range old.Goals {
		oldSet[key(g)]++
	}
	for _, g := range new.Goals {
		k := key(g)
		if oldSet[k] > 0 {
			oldSet[k]--
			p.GoalsKept++
		} else {
			p.GoalsAdded = append(p.GoalsAdded, new.Name+"/"+g.Name)
		}
	}
	for _, g := range old.Goals {
		k := key(g)
		if oldSet[k] > 0 {
			oldSet[k]--
			p.GoalsRemoved = append(p.GoalsRemoved, old.Name+"/"+g.Name)
		}
	}
}

func diffFixed(p *Plan, old, new *PartyRev) {
	rels := make(map[string]bool, len(old.Fixed)+len(new.Fixed))
	for r := range old.Fixed {
		rels[r] = true
	}
	for r := range new.Fixed {
		rels[r] = true
	}
	for r := range rels {
		oldTs := stringSet(old.Fixed[r])
		for _, t := range new.Fixed[r] {
			if oldTs[t] {
				delete(oldTs, t)
			} else {
				p.AtomsChanged = append(p.AtomsChanged, Atom{Party: new.Name, Relation: r, Tuple: t, Added: true})
			}
		}
		for t := range oldTs {
			p.AtomsChanged = append(p.AtomsChanged, Atom{Party: old.Name, Relation: r, Tuple: t, Added: false})
		}
	}
}

func stringSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// universeDiff explains a universe mismatch compactly: counts plus the
// first divergence.
func universeDiff(old, new []string) string {
	if len(old) != len(new) {
		extra := diffAtoms(new, old)
		gone := diffAtoms(old, new)
		var parts []string
		parts = append(parts, fmt.Sprintf("universe changed: %d -> %d atoms", len(old), len(new)))
		if len(extra) > 0 {
			parts = append(parts, "new: "+strings.Join(clip(extra, 4), ", "))
		}
		if len(gone) > 0 {
			parts = append(parts, "gone: "+strings.Join(clip(gone, 4), ", "))
		}
		return strings.Join(parts, "; ")
	}
	for i := range old {
		if old[i] != new[i] {
			return fmt.Sprintf("universe changed: atom %d is %q, was %q", i, new[i], old[i])
		}
	}
	return "universe changed"
}

// diffAtoms returns the members of a not in b, in a's order.
func diffAtoms(a, b []string) []string {
	inB := stringSet(b)
	var out []string
	for _, s := range a {
		if !inB[s] {
			out = append(out, s)
		}
	}
	return out
}

func clip(ss []string, n int) []string {
	if len(ss) <= n {
		return ss
	}
	out := append([]string(nil), ss[:n]...)
	return append(out, fmt.Sprintf("… %d more", len(ss)-n))
}
