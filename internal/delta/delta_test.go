package delta

import (
	"strings"
	"testing"
)

func rev(universe []string, parties ...PartyRev) *Revision {
	return &Revision{Universe: universe, Parties: parties}
}

func TestCompareUnchanged(t *testing.T) {
	a := rev([]string{"x", "y"}, PartyRev{
		Name:  "K8s",
		Goals: []Goal{{Name: "g1", Formula: "no x"}},
		Fixed: map[string][]string{"KInDeny": {"(p, 23)"}},
	})
	b := rev([]string{"x", "y"}, PartyRev{
		Name:  "K8s",
		Goals: []Goal{{Name: "g1", Formula: "no x"}},
		Fixed: map[string][]string{"KInDeny": {"(p, 23)"}},
	})
	p := Compare(a, b)
	if !p.Compatible || !p.Unchanged() {
		t.Fatalf("want compatible+unchanged, got %+v", p)
	}
	if !strings.Contains(p.Summary(), "identical") {
		t.Fatalf("summary: %q", p.Summary())
	}
}

func TestCompareGoalAndAtomDiff(t *testing.T) {
	a := rev([]string{"x"}, PartyRev{
		Name:  "K8s",
		Goals: []Goal{{Name: "g1", Formula: "no x"}, {Name: "g2", Formula: "some x"}},
		Fixed: map[string][]string{"KInDeny": {"(p, 23)", "(p, 80)"}},
	})
	b := rev([]string{"x"}, PartyRev{
		Name:  "K8s",
		Goals: []Goal{{Name: "g1", Formula: "no x"}, {Name: "g2", Formula: "lone x"}},
		Fixed: map[string][]string{"KInDeny": {"(p, 80)", "(p, 443)"}},
	})
	p := Compare(a, b)
	if !p.Compatible {
		t.Fatalf("want compatible, got reason %q", p.Reason)
	}
	if p.Unchanged() {
		t.Fatal("must not be unchanged")
	}
	if p.GoalsKept != 1 {
		t.Fatalf("GoalsKept = %d, want 1", p.GoalsKept)
	}
	// g2's formula changed: removed + added under the same name.
	if len(p.GoalsAdded) != 1 || p.GoalsAdded[0] != "K8s/g2" {
		t.Fatalf("GoalsAdded = %v", p.GoalsAdded)
	}
	if len(p.GoalsRemoved) != 1 || p.GoalsRemoved[0] != "K8s/g2" {
		t.Fatalf("GoalsRemoved = %v", p.GoalsRemoved)
	}
	if len(p.AtomsChanged) != 2 {
		t.Fatalf("AtomsChanged = %v", p.AtomsChanged)
	}
	// Sorted by party/relation/tuple: "(p, 23)" removed before "(p, 443)" added.
	if p.AtomsChanged[0].Added || p.AtomsChanged[0].Tuple != "(p, 23)" {
		t.Fatalf("first atom = %+v", p.AtomsChanged[0])
	}
	if !p.AtomsChanged[1].Added || p.AtomsChanged[1].Tuple != "(p, 443)" {
		t.Fatalf("second atom = %+v", p.AtomsChanged[1])
	}
}

func TestCompareUniverseChange(t *testing.T) {
	a := rev([]string{"x", "y"}, PartyRev{Name: "K8s"})
	b := rev([]string{"x", "y", "z"}, PartyRev{Name: "K8s"})
	p := Compare(a, b)
	if p.Compatible {
		t.Fatal("grown universe must be incompatible")
	}
	if !strings.Contains(p.Reason, "universe changed") || !strings.Contains(p.Reason, "z") {
		t.Fatalf("reason = %q", p.Reason)
	}
	if !strings.Contains(p.Summary(), "cold rebuild") {
		t.Fatalf("summary: %q", p.Summary())
	}

	// Same atoms, permuted: still incompatible (indices shift).
	c := rev([]string{"y", "x"}, PartyRev{Name: "K8s"})
	if p := Compare(a, c); p.Compatible {
		t.Fatal("permuted universe must be incompatible")
	}
}

func TestComparePartyShapeChange(t *testing.T) {
	a := rev([]string{"x"}, PartyRev{Name: "K8s"}, PartyRev{Name: "Istio"})
	b := rev([]string{"x"}, PartyRev{Name: "K8s"})
	if p := Compare(a, b); p.Compatible {
		t.Fatal("dropped party must be incompatible")
	}
	c := rev([]string{"x"}, PartyRev{Name: "Istio"}, PartyRev{Name: "K8s"})
	p := Compare(a, c)
	if p.Compatible {
		t.Fatal("reordered parties must be incompatible")
	}
	if !strings.Contains(p.Reason, "party") {
		t.Fatalf("reason = %q", p.Reason)
	}
}

func TestAtomString(t *testing.T) {
	add := Atom{Party: "K8s", Relation: "KInDeny", Tuple: "(p, 23)", Added: true}
	if got := add.String(); got != "+ K8s/KInDeny(p, 23)" {
		t.Fatalf("got %q", got)
	}
	del := Atom{Party: "K8s", Relation: "KInDeny", Tuple: "(p, 23)"}
	if got := del.String(); got != "- K8s/KInDeny(p, 23)" {
		t.Fatalf("got %q", got)
	}
}
