package scenario

import (
	"testing"

	"muppet/internal/encode"
	"muppet/internal/goals"
	"muppet/internal/mesh"
	"muppet/internal/muppet"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Services: 4, PortsPerService: 2, Flows: 5, BannedPorts: 2, Seed: 7}
	a := Generate(p)
	b := Generate(p)
	if len(a.Mesh.Services) != 4 || len(a.IstioStrict) != 5 {
		t.Fatalf("sizes: %d services, %d flows", len(a.Mesh.Services), len(a.IstioStrict))
	}
	for i := range a.IstioStrict {
		if a.IstioStrict[i] != b.IstioStrict[i] {
			t.Fatal("generation must be deterministic for equal seeds")
		}
	}
	if len(a.K8sGoals) == 0 || len(a.K8sGoals) > 2 {
		t.Fatalf("banned ports: %v", a.K8sGoals)
	}
}

func TestScenarioHasConflictAndResolution(t *testing.T) {
	sc := Generate(Params{Services: 4, PortsPerService: 2, Flows: 4, BannedPorts: 1, Seed: 3})
	sys, err := sc.System()
	if err != nil {
		t.Fatal(err)
	}

	k8sParty, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, encode.AllSoft(), sc.K8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	strictParty, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, encode.AllSoft(), sc.IstioStrict)
	if err != nil {
		t.Fatal(err)
	}
	if res := muppet.Reconcile(sys, []*muppet.Party{k8sParty, strictParty}); res.OK {
		t.Fatal("strict goals must conflict with the bans")
	}

	relaxedParty, relaxedState, err := muppet.NewIstioParty(sys, sc.IstioCurrent, encode.AllSoft(), sc.IstioRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	res := muppet.Reconcile(sys, []*muppet.Party{k8sParty, relaxedParty})
	if !res.OK {
		t.Fatalf("relaxed goals must reconcile: %v", res.Feedback)
	}
	// Verify the synthesized system with the runtime evaluator.
	k8sParty.Adopt(res.Instance)
	relaxedParty.Adopt(res.Instance)
	k8sFinal := sys.DecodeK8s(res.Instance)
	m2 := sys.MeshWith(relaxedState.Exposure)
	reach := mesh.ReachabilityMatrix(m2, k8sFinal, relaxedState.Config)
	for _, g := range sc.K8sGoals {
		for pair, ports := range reach {
			for _, p := range ports {
				if p == g.Port {
					t.Fatalf("banned port %d reachable on %s", g.Port, pair)
				}
			}
		}
	}
	for _, g := range sc.IstioRelaxed {
		if g.DstPort.Kind == goals.PortLit {
			pair := g.Src + "->" + g.Dst
			found := false
			for _, p := range reach[pair] {
				if p == g.DstPort.Port {
					found = true
				}
			}
			if !found {
				t.Fatalf("fixed flow %v not admitted (reach %v)", g, reach[pair])
			}
		}
	}
}

func TestScenarioScalesUp(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := Generate(Params{Services: 12, PortsPerService: 2, Flows: 12, BannedPorts: 2, Seed: 1})
	sys, err := sc.System()
	if err != nil {
		t.Fatal(err)
	}
	k8sParty, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, encode.AllSoft(), sc.K8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	relaxedParty, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, encode.AllSoft(), sc.IstioRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	res := muppet.Reconcile(sys, []*muppet.Party{k8sParty, relaxedParty})
	if !res.OK {
		t.Fatalf("12-service scenario must reconcile: %v", res.Feedback)
	}
}
