// Package scenario generates deterministic synthetic multi-party
// configuration scenarios for tests and benchmarks.
//
// The paper evaluates Muppet on "modest scenarios" like its Sec. 3
// walkthrough but releases no corpus; this generator reproduces the shape
// of those scenarios — a service mesh with per-team label groups, working
// Istio policies admitting a spanning set of flows, and a K8s security
// goal that conflicts with some of them — at controllable scale, which is
// what the Sec. 5 timing claim ("all queries … finish in under 1 second")
// is reproduced against.
package scenario

import (
	"fmt"
	"math/rand"

	"muppet/internal/encode"
	"muppet/internal/goals"
	"muppet/internal/mesh"
)

// Params controls scenario size and density.
type Params struct {
	// Services is the number of services in the mesh.
	Services int
	// PortsPerService is how many ports each service listens on.
	PortsPerService int
	// Flows is the number of reachability goal rows the Istio side wants.
	Flows int
	// BannedPorts is how many distinct listening ports the K8s side bans
	// (each ban conflicts with any flow using that port).
	BannedPorts int
	// IstioPolicies is the number of AuthorizationPolicy shells; services
	// are assigned round-robin.
	IstioPolicies int
	// Seed makes generation deterministic.
	Seed int64
}

// Scenario is a generated multi-party configuration problem.
type Scenario struct {
	Params Params
	Mesh   *mesh.Mesh
	// K8sCurrent is a permissive current K8s configuration (one catch-all
	// shell), as in the walkthrough before the ban is pushed.
	K8sCurrent *mesh.K8sConfig
	// IstioCurrent admits exactly the goal flows via from-service allows.
	IstioCurrent *mesh.IstioConfig
	// K8sGoals bans the chosen ports (Fig. 2 shape).
	K8sGoals []goals.K8sGoal
	// IstioStrict requires the generated flows on their concrete ports
	// (Fig. 3 shape) — conflicting with the bans.
	IstioStrict []goals.IstioGoal
	// IstioRelaxed replaces destination ports of conflicted flows with
	// existential variables (Fig. 4 shape) — resolvable.
	IstioRelaxed []goals.IstioGoal
	// ExtraPorts are spare ports beyond the listening set, giving the
	// synthesizer room to re-expose services.
	ExtraPorts []int
}

// Generate builds a scenario. It panics on nonsensical parameters (this is
// test/bench support code).
func Generate(p Params) *Scenario {
	if p.Services < 2 || p.PortsPerService < 1 || p.Flows < 1 {
		panic("scenario: need ≥2 services, ≥1 port each, ≥1 flow")
	}
	if p.IstioPolicies <= 0 {
		p.IstioPolicies = p.Services
	}
	rng := rand.New(rand.NewSource(p.Seed))
	sc := &Scenario{Params: p}

	// Services with disjoint port ranges and one label each.
	sc.Mesh = &mesh.Mesh{}
	nextPort := 1000
	for i := 0; i < p.Services; i++ {
		ports := make([]int, p.PortsPerService)
		for j := range ports {
			ports[j] = nextPort
			nextPort++
		}
		sc.Mesh.Services = append(sc.Mesh.Services, &mesh.Service{
			Name:   fmt.Sprintf("svc-%d", i),
			Labels: map[string]string{"app": fmt.Sprintf("app-%d", i)},
			Ports:  ports,
		})
	}
	// One spare (non-listening) port per service for re-exposure.
	for i := 0; i < p.Services; i++ {
		sc.ExtraPorts = append(sc.ExtraPorts, nextPort)
		nextPort++
	}

	// Flow goal rows: random src→dst on a listening port of dst.
	type flow struct {
		src, dst string
		port     int
	}
	var flows []flow
	for len(flows) < p.Flows {
		si := rng.Intn(p.Services)
		di := rng.Intn(p.Services)
		if si == di {
			continue
		}
		dst := sc.Mesh.Services[di]
		flows = append(flows, flow{
			src:  sc.Mesh.Services[si].Name,
			dst:  dst.Name,
			port: dst.Ports[rng.Intn(len(dst.Ports))],
		})
	}

	// Ban ports that goal flows actually use, so each ban conflicts.
	banned := make(map[int]bool)
	for _, f := range flows {
		if len(banned) >= p.BannedPorts {
			break
		}
		banned[f.port] = true
	}
	for port := range banned {
		sc.K8sGoals = append(sc.K8sGoals, goals.K8sGoal{Port: port, Allow: false})
	}

	// Goal tables.
	varID := 0
	for _, f := range flows {
		srcPort := goals.AnyPort()
		strict := goals.IstioGoal{Src: f.src, Dst: f.dst, SrcPort: srcPort, DstPort: goals.LitPort(f.port), Allow: true}
		sc.IstioStrict = append(sc.IstioStrict, strict)
		relaxed := strict
		if banned[f.port] {
			varID++
			relaxed.DstPort = goals.VarPort(fmt.Sprintf("v%d", varID))
		}
		sc.IstioRelaxed = append(sc.IstioRelaxed, relaxed)
	}

	// Current configurations.
	sc.K8sCurrent = &mesh.K8sConfig{Policies: []*mesh.NetworkPolicy{
		{Name: "cluster-default"},
	}}
	sc.IstioCurrent = &mesh.IstioConfig{}
	for i := 0; i < p.IstioPolicies; i++ {
		svc := sc.Mesh.Services[i%p.Services]
		pol := &mesh.AuthorizationPolicy{
			Name:   fmt.Sprintf("pol-%d", i),
			Target: map[string]string{"app": svc.Labels["app"]},
		}
		for _, f := range flows {
			if f.dst == svc.Name {
				pol.AllowFromServices = appendUnique(pol.AllowFromServices, f.src)
			}
		}
		sc.IstioCurrent.Policies = append(sc.IstioCurrent.Policies, pol)
	}
	return sc
}

// System builds the encode.System for the scenario.
func (sc *Scenario) System() (*encode.System, error) {
	extra := append([]int(nil), sc.ExtraPorts...)
	extra = append(extra, goals.Ports(sc.K8sGoals, sc.IstioStrict)...)
	return encode.NewSystem(sc.Mesh, sc.K8sCurrent.Policies, sc.IstioCurrent.Policies, extra)
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}
