package encode

import (
	"fmt"
	"strconv"
	"strings"

	"muppet/internal/relational"
)

// This file renders envelope clauses in administrator-facing English — the
// paper presents the Fig. 5 envelope both in Alloy syntax and as numbered
// prose, and its Sec. 7 "Presentation" discussion asks how envelopes
// should be shown to humans ("Would a textual translation (as in fig. 5)
// help?"). The renderer pattern-matches the formula shapes this system's
// own semantics produce; anything it does not recognise falls back to the
// Alloy-like syntax, so the output is always complete.

// English renders a formula as prose.
func (sys *System) English(f relational.Formula) string {
	switch g := f.(type) {
	case *relational.QuantFormula:
		if g.IsForall() {
			header := "For all " + sys.englishDecls(g.Decls()) + ", "
			if or, ok := g.Body().(*relational.NaryFormula); ok && or.Op() == relational.OpOr {
				var b strings.Builder
				b.WriteString(header)
				b.WriteString("either:\n")
				for i, d := range or.Operands() {
					fmt.Fprintf(&b, "  (%d) %s", i+1, sys.englishClause(d))
					if i < len(or.Operands())-1 {
						b.WriteString("; or\n")
					} else {
						b.WriteString(".\n")
					}
				}
				return b.String()
			}
			return header + sys.englishClause(g.Body()) + ".\n"
		}
	}
	return sys.englishClause(f) + ".\n"
}

func (sys *System) englishDecls(decls []relational.Decl) string {
	parts := make([]string, len(decls))
	for i, d := range decls {
		dom := "the mesh"
		switch e := d.Domain().(type) {
		case *relational.Relation:
			dom = e.Name() + "s"
			if e == sys.Service {
				dom = "services"
			}
		case *relational.ConstExpr:
			dom = sys.englishAtomSet(e)
		}
		parts[i] = d.Var().Name() + " in " + dom
	}
	return strings.Join(parts, " and ")
}

// englishClause renders one disjunct/conjunct.
func (sys *System) englishClause(f relational.Formula) string {
	// (1) "dst does not listen on port P": not (P in dst.active_ports)
	if n, ok := f.(*relational.NotFormula); ok {
		if s, matched := sys.matchListens(n.Inner()); matched {
			return s.subject + " does not listen on " + s.object
		}
		if s, matched := sys.matchBlock(n.Inner()); matched {
			return "it is not the case that " + s
		}
		return "it is not the case that " + sys.englishClause(n.Inner())
	}
	if s, matched := sys.matchListens(f); matched {
		return s.subject + " listens on " + s.object
	}
	if s, matched := sys.matchBlock(f); matched {
		return s
	}
	return f.String()
}

type listensMatch struct {
	subject, object string
}

// matchListens recognises `P in (X.active_ports)`.
func (sys *System) matchListens(f relational.Formula) (listensMatch, bool) {
	cmp, ok := f.(*relational.CompFormula)
	if !ok || !cmp.IsIn() {
		return listensMatch{}, false
	}
	join, ok := cmp.Right().(*relational.BinExpr)
	if !ok {
		return listensMatch{}, false
	}
	if rel, isRel := join.Right().(*relational.Relation); !isRel || rel != sys.ActivePorts {
		return listensMatch{}, false
	}
	return listensMatch{
		subject: sys.englishExpr(join.Left()),
		object:  sys.englishExpr(cmp.Left()),
	}, true
}

// matchBlock recognises the explicit and implicit deny shapes over any of
// the four policy tables (both parties).
func (sys *System) matchBlock(f relational.Formula) (string, bool) {
	// Explicit: item in pols.DENYREL
	if cmp, ok := f.(*relational.CompFormula); ok && cmp.IsIn() {
		if join, ok := cmp.Right().(*relational.BinExpr); ok {
			if rel, isRel := join.Right().(*relational.Relation); isRel {
				if sentence, known := sys.explicitSentence(rel, cmp.Left(), join.Left()); known {
					return sentence, true
				}
			}
		}
	}
	// Implicit: (some pols.ALLOWREL) and not (item in pols.ALLOWREL)
	if and, ok := f.(*relational.NaryFormula); ok && and.Op() == relational.OpAnd && len(and.Operands()) == 2 {
		someF, okSome := and.Operands()[0].(*relational.MultFormula)
		notF, okNot := and.Operands()[1].(*relational.NotFormula)
		if okSome && okNot && someF.Mult() == relational.MultSome {
			if cmp, ok := notF.Inner().(*relational.CompFormula); ok && cmp.IsIn() {
				if join, ok := cmp.Right().(*relational.BinExpr); ok {
					if rel, isRel := join.Right().(*relational.Relation); isRel {
						if sentence, known := sys.implicitSentence(rel, cmp.Left(), join.Left()); known {
							return sentence, true
						}
					}
				}
			}
		}
	}
	return "", false
}

func (sys *System) explicitSentence(rel *relational.Relation, item, pols relational.Expr) (string, bool) {
	it := sys.englishExpr(item)
	owner := sys.policyOwner(pols)
	switch rel {
	case sys.IDenyTo:
		return fmt.Sprintf("%s is explicitly blocked from sending to %s by an Istio egress policy", owner, it), true
	case sys.IDenyFrom:
		return fmt.Sprintf("%s is explicitly blocked from receiving from %s by an Istio ingress policy", owner, it), true
	case sys.KEgDeny:
		return fmt.Sprintf("%s is explicitly blocked from sending to %s by a K8s egress rule", owner, it), true
	case sys.KInDeny:
		return fmt.Sprintf("%s is explicitly blocked from receiving on %s by a K8s ingress rule", owner, it), true
	}
	return "", false
}

func (sys *System) implicitSentence(rel *relational.Relation, item, pols relational.Expr) (string, bool) {
	it := sys.englishExpr(item)
	owner := sys.policyOwner(pols)
	switch rel {
	case sys.IAllowTo:
		return fmt.Sprintf("%s is implicitly blocked from sending to %s, since it is explicitly allowed to send to some other port but not to this one", owner, it), true
	case sys.IAllowFrom:
		return fmt.Sprintf("%s is implicitly blocked from receiving from %s, since it is explicitly allowed to receive from some other service but not from this one", owner, it), true
	case sys.KEgAllow:
		return fmt.Sprintf("%s is implicitly blocked from sending to %s by a K8s egress allow-list that omits it", owner, it), true
	case sys.KInAllow:
		return fmt.Sprintf("%s is implicitly blocked from receiving on %s by a K8s ingress allow-list that omits it", owner, it), true
	}
	return "", false
}

// policyOwner extracts the service expression a policy comprehension
// targets: {p: AuthPol | (p->X) in target} → "the X service".
func (sys *System) policyOwner(pols relational.Expr) string {
	comp, ok := pols.(*relational.ComprehensionExpr)
	if !ok || len(comp.Decls()) != 1 {
		return sys.englishExpr(pols)
	}
	cmp, ok := comp.Body().(*relational.CompFormula)
	if !ok || !cmp.IsIn() {
		return sys.englishExpr(pols)
	}
	prod, ok := cmp.Left().(*relational.BinExpr)
	if !ok {
		return sys.englishExpr(pols)
	}
	return sys.englishExpr(prod.Right())
}

// englishExpr names atoms and variables readably.
func (sys *System) englishExpr(e relational.Expr) string {
	switch g := e.(type) {
	case *relational.Var:
		return g.Name()
	case *relational.ConstExpr:
		return sys.englishAtomSet(g)
	case *relational.Relation:
		return g.Name()
	}
	return e.String()
}

func (sys *System) englishAtomSet(c *relational.ConstExpr) string {
	ts := c.TupleSet()
	var names []string
	for _, t := range ts.Tuples() {
		for _, a := range t {
			names = append(names, sys.englishAtom(sys.Universe.Atom(a)))
		}
	}
	switch len(names) {
	case 0:
		return "nothing"
	case 1:
		return names[0]
	}
	return "{" + strings.Join(names, ", ") + "}"
}

func (sys *System) englishAtom(atom string) string {
	if strings.HasPrefix(atom, "port:") {
		return "port " + strings.TrimPrefix(atom, "port:")
	}
	if strings.HasPrefix(atom, "np:") {
		return "NetworkPolicy " + strings.TrimPrefix(atom, "np:")
	}
	if strings.HasPrefix(atom, "ap:") {
		return "AuthorizationPolicy " + strings.TrimPrefix(atom, "ap:")
	}
	if _, err := strconv.Atoi(atom); err == nil {
		return atom
	}
	return atom
}
