package encode

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"muppet/internal/mesh"
	"muppet/internal/relational"
)

// Field identifies one configurable policy table.
type Field uint8

// Configurable fields: four per party, plus port exposure on the Istio
// side (the Knob.Policy of an exposure knob names a service, not a
// policy).
const (
	FieldKIngressDeny Field = iota
	FieldKIngressAllow
	FieldKEgressDeny
	FieldKEgressAllow
	FieldIDenyTo
	FieldIAllowTo
	FieldIDenyFrom
	FieldIAllowFrom
	FieldExposure
)

func (f Field) String() string {
	switch f {
	case FieldKIngressDeny:
		return "ingress.denyPorts"
	case FieldKIngressAllow:
		return "ingress.allowPorts"
	case FieldKEgressDeny:
		return "egress.denyPorts"
	case FieldKEgressAllow:
		return "egress.allowPorts"
	case FieldIDenyTo:
		return "deny_to_ports"
	case FieldIAllowTo:
		return "allow_to_ports"
	case FieldIDenyFrom:
		return "deny_from_service"
	case FieldIAllowFrom:
		return "allow_from_service"
	case FieldExposure:
		return "active_ports"
	}
	return "unknown-field"
}

// IsK8s reports whether the field belongs to the K8s domain.
func (f Field) IsK8s() bool { return f <= FieldKEgressAllow }

// K8sFields and IstioFields enumerate each party's configurable tables.
var (
	K8sFields   = []Field{FieldKIngressDeny, FieldKIngressAllow, FieldKEgressDeny, FieldKEgressAllow}
	IstioFields = []Field{FieldIDenyTo, FieldIAllowTo, FieldIDenyFrom, FieldIAllowFrom, FieldExposure}
)

// Knob addresses one boolean configuration decision: whether Key (a port in
// decimal, or a service name) appears in Field of the named policy. The
// wildcard "*" Key addresses every key of the field.
type Knob struct {
	Policy string
	Field  Field
	Key    string
}

func (k Knob) String() string {
	return fmt.Sprintf("%s.%s[%s]", k.Policy, k.Field, k.Key)
}

// PortKnob builds a knob addressing a port-valued field entry.
func PortKnob(policy string, field Field, port int) Knob {
	return Knob{Policy: policy, Field: field, Key: strconv.Itoa(port)}
}

// ServiceKnob builds a knob addressing a service-valued field entry.
func ServiceKnob(policy string, field Field, service string) Knob {
	return Knob{Policy: policy, Field: field, Key: service}
}

// WildcardKnob addresses every entry of a policy field.
func WildcardKnob(policy string, field Field) Knob {
	return Knob{Policy: policy, Field: field, Key: "*"}
}

// Offer is a partial configuration in the paper's sense (the C?? of
// Fig. 6): concrete proposed values plus two kinds of leeway. Knobs listed
// in Holes are unconstrained ("holes" for autocompletion); knobs in Soft
// carry their concrete value as a preference the solver may override
// ("soft" settings open to automated compromise). Everything else is
// fixed.
type Offer struct {
	Holes []Knob
	Soft  []Knob
}

// AllSoft returns an offer marking every knob soft: a full configuration
// entirely open to negotiation.
func AllSoft() Offer {
	return Offer{Soft: []Knob{{Policy: "*", Key: "*"}}}
}

// AllHoles returns an offer marking every knob a hole: complete flexibility
// (an "empty C??").
func AllHoles() Offer {
	return Offer{Holes: []Knob{{Policy: "*", Key: "*"}}}
}

// matches reports whether knob k addresses (policy, field, key), honouring
// "*" wildcards for Policy and Key. A wildcard-policy knob matches any
// policy; the Field matters only when set meaningfully — the catch-all
// knobs produced by AllSoft/AllHoles match every field via MatchAllFields.
func (k Knob) matches(policy string, field Field, key string) bool {
	if k.Policy != "*" && k.Policy != policy {
		return false
	}
	if k.Key != "*" && k.Key != key {
		return false
	}
	if k.Policy == "*" && k.Key == "*" {
		return true // catch-all from AllSoft/AllHoles
	}
	return k.Field == field
}

// TupleState classifies one configurable tuple within an offer.
type TupleState uint8

// Tuple states.
const (
	StateFixed TupleState = iota // value taken from the concrete config
	StateSoft                    // free, concrete value is the target
	StateHole                    // free, no preference
)

// KnobInfo records the disposition of one configurable tuple, used for
// target-oriented solving, feedback, and decoding.
type KnobInfo struct {
	Knob    Knob
	Rel     *relational.Relation
	Tuple   relational.Tuple
	State   TupleState
	Desired bool // the concrete config's value (meaningful for Fixed/Soft)
}

// OfferMap indexes the knob dispositions produced when an offer is bound.
type OfferMap struct {
	Infos []KnobInfo
}

// SoftInfos returns the soft knobs (targets for minimal-edit search).
func (om *OfferMap) SoftInfos() []KnobInfo {
	var out []KnobInfo
	for _, ki := range om.Infos {
		if ki.State == StateSoft {
			out = append(out, ki)
		}
	}
	return out
}

// HoleInfos returns the hole knobs.
func (om *OfferMap) HoleInfos() []KnobInfo {
	var out []KnobInfo
	for _, ki := range om.Infos {
		if ki.State == StateHole {
			out = append(out, ki)
		}
	}
	return out
}

// state resolves the disposition of one knob against an offer.
func (o Offer) state(policy string, field Field, key string) TupleState {
	for _, k := range o.Holes {
		if k.matches(policy, field, key) {
			return StateHole
		}
	}
	for _, k := range o.Soft {
		if k.matches(policy, field, key) {
			return StateSoft
		}
	}
	return StateFixed
}

// BindK8s applies a K8s offer to bounds: for each configurable (policy,
// key) tuple, fixed knobs pin the tuple to the concrete config's value,
// soft and hole knobs leave it free. cfg must contain a policy for every
// shell (match by name); missing policies are treated as empty.
func (sys *System) BindK8s(b *relational.Bounds, cfg *mesh.K8sConfig, offer Offer) *OfferMap {
	return sys.bindK8s(b, cfg, offer, true)
}

// BindK8sFree is BindK8s but leaves every tuple free in the bounds; the
// returned OfferMap still classifies knobs per the offer. Workflow code
// uses this to enforce fixed settings through retractable selector clauses
// instead of bounds, so unsat cores can blame configuration fragments.
func (sys *System) BindK8sFree(b *relational.Bounds, cfg *mesh.K8sConfig, offer Offer) *OfferMap {
	return sys.bindK8s(b, cfg, offer, false)
}

func (sys *System) bindK8s(b *relational.Bounds, cfg *mesh.K8sConfig, offer Offer, pin bool) *OfferMap {
	om := &OfferMap{}
	type table struct {
		field Field
		rel   *relational.Relation
		get   func(*mesh.NetworkPolicy) []int
	}
	tables := []table{
		{FieldKIngressDeny, sys.KInDeny, func(p *mesh.NetworkPolicy) []int { return p.IngressDenyPorts }},
		{FieldKIngressAllow, sys.KInAllow, func(p *mesh.NetworkPolicy) []int { return p.IngressAllowPorts }},
		{FieldKEgressDeny, sys.KEgDeny, func(p *mesh.NetworkPolicy) []int { return p.EgressDenyPorts }},
		{FieldKEgressAllow, sys.KEgAllow, func(p *mesh.NetworkPolicy) []int { return p.EgressAllowPorts }},
	}
	for _, tbl := range tables {
		lower := relational.NewTupleSet(sys.Universe, 2)
		upper := relational.NewTupleSet(sys.Universe, 2)
		for _, shell := range sys.K8sShells {
			var current []int
			if cp := cfg.Policy(shell.Name); cp != nil {
				current = tbl.get(cp)
			}
			for _, port := range sys.PortList {
				key := strconv.Itoa(port)
				present := containsInt(current, port)
				state := offer.state(shell.Name, tbl.field, key)
				t := relational.Tuple{
					sys.Universe.MustIndex("np:" + shell.Name),
					sys.Universe.MustIndex(portAtom(port)),
				}
				if pin && state == StateFixed {
					if present {
						lower.Add(t)
						upper.Add(t)
					}
				} else {
					upper.Add(t)
				}
				om.Infos = append(om.Infos, KnobInfo{
					Knob:    Knob{Policy: shell.Name, Field: tbl.field, Key: key},
					Rel:     tbl.rel,
					Tuple:   t,
					State:   state,
					Desired: present,
				})
			}
		}
		b.Bound(tbl.rel, lower, upper)
	}
	return om
}

// BindIstio applies an Istio offer to bounds, analogously to BindK8s.
func (sys *System) BindIstio(b *relational.Bounds, cfg *mesh.IstioConfig, offer Offer) *OfferMap {
	return sys.bindIstio(b, cfg, offer, true)
}

// BindIstioFree is BindIstio but leaves every tuple free in the bounds;
// see BindK8sFree.
func (sys *System) BindIstioFree(b *relational.Bounds, cfg *mesh.IstioConfig, offer Offer) *OfferMap {
	return sys.bindIstio(b, cfg, offer, false)
}

func (sys *System) bindIstio(b *relational.Bounds, cfg *mesh.IstioConfig, offer Offer, pin bool) *OfferMap {
	om := &OfferMap{}

	portTables := []struct {
		field Field
		rel   *relational.Relation
		get   func(*mesh.AuthorizationPolicy) []int
	}{
		{FieldIDenyTo, sys.IDenyTo, func(p *mesh.AuthorizationPolicy) []int { return p.DenyToPorts }},
		{FieldIAllowTo, sys.IAllowTo, func(p *mesh.AuthorizationPolicy) []int { return p.AllowToPorts }},
	}
	for _, tbl := range portTables {
		lower := relational.NewTupleSet(sys.Universe, 2)
		upper := relational.NewTupleSet(sys.Universe, 2)
		for _, shell := range sys.IstioShells {
			var current []int
			if cp := cfg.Policy(shell.Name); cp != nil {
				current = tbl.get(cp)
			}
			for _, port := range sys.PortList {
				key := strconv.Itoa(port)
				present := containsInt(current, port)
				state := offer.state(shell.Name, tbl.field, key)
				t := relational.Tuple{
					sys.Universe.MustIndex("ap:" + shell.Name),
					sys.Universe.MustIndex(portAtom(port)),
				}
				if pin && state == StateFixed {
					if present {
						lower.Add(t)
						upper.Add(t)
					}
				} else {
					upper.Add(t)
				}
				om.Infos = append(om.Infos, KnobInfo{
					Knob:    Knob{Policy: shell.Name, Field: tbl.field, Key: key},
					Rel:     tbl.rel,
					Tuple:   t,
					State:   state,
					Desired: present,
				})
			}
		}
		b.Bound(tbl.rel, lower, upper)
	}

	// Port exposure: the mesh's current listening ports are the concrete
	// values; the offer decides which exposure decisions are negotiable.
	{
		lower := relational.NewTupleSet(sys.Universe, 2)
		upper := relational.NewTupleSet(sys.Universe, 2)
		for _, svc := range sys.Mesh.Services {
			for _, port := range sys.PortList {
				key := strconv.Itoa(port)
				present := svc.Listens(port)
				state := offer.state(svc.Name, FieldExposure, key)
				t := relational.Tuple{
					sys.Universe.MustIndex(svc.Name),
					sys.Universe.MustIndex(portAtom(port)),
				}
				if pin && state == StateFixed {
					if present {
						lower.Add(t)
						upper.Add(t)
					}
				} else {
					upper.Add(t)
				}
				om.Infos = append(om.Infos, KnobInfo{
					Knob:    Knob{Policy: svc.Name, Field: FieldExposure, Key: key},
					Rel:     sys.ActivePorts,
					Tuple:   t,
					State:   state,
					Desired: present,
				})
			}
		}
		b.Bound(sys.ActivePorts, lower, upper)
	}

	svcTables := []struct {
		field Field
		rel   *relational.Relation
		get   func(*mesh.AuthorizationPolicy) []string
	}{
		{FieldIDenyFrom, sys.IDenyFrom, func(p *mesh.AuthorizationPolicy) []string { return p.DenyFromServices }},
		{FieldIAllowFrom, sys.IAllowFrom, func(p *mesh.AuthorizationPolicy) []string { return p.AllowFromServices }},
	}
	for _, tbl := range svcTables {
		lower := relational.NewTupleSet(sys.Universe, 2)
		upper := relational.NewTupleSet(sys.Universe, 2)
		for _, shell := range sys.IstioShells {
			var current []string
			if cp := cfg.Policy(shell.Name); cp != nil {
				current = tbl.get(cp)
			}
			for _, svc := range sys.Mesh.Services {
				key := svc.Name
				present := containsStr(current, key)
				state := offer.state(shell.Name, tbl.field, key)
				t := relational.Tuple{
					sys.Universe.MustIndex("ap:" + shell.Name),
					sys.Universe.MustIndex(svc.Name),
				}
				if pin && state == StateFixed {
					if present {
						lower.Add(t)
						upper.Add(t)
					}
				} else {
					upper.Add(t)
				}
				om.Infos = append(om.Infos, KnobInfo{
					Knob:    Knob{Policy: shell.Name, Field: tbl.field, Key: key},
					Rel:     tbl.rel,
					Tuple:   t,
					State:   state,
					Desired: present,
				})
			}
		}
		b.Bound(tbl.rel, lower, upper)
	}
	return om
}

// DecodeK8s reconstructs a concrete K8s configuration from an instance.
func (sys *System) DecodeK8s(inst *relational.Instance) *mesh.K8sConfig {
	cfg := &mesh.K8sConfig{}
	for _, shell := range sys.K8sShells {
		p := &mesh.NetworkPolicy{Name: shell.Name, Selector: cloneLabels(shell.Selector)}
		p.IngressDenyPorts = sys.decodePorts(inst, sys.KInDeny, "np:"+shell.Name)
		p.IngressAllowPorts = sys.decodePorts(inst, sys.KInAllow, "np:"+shell.Name)
		p.EgressDenyPorts = sys.decodePorts(inst, sys.KEgDeny, "np:"+shell.Name)
		p.EgressAllowPorts = sys.decodePorts(inst, sys.KEgAllow, "np:"+shell.Name)
		cfg.Policies = append(cfg.Policies, p)
	}
	return cfg
}

// DecodeIstio reconstructs a concrete Istio configuration from an instance.
func (sys *System) DecodeIstio(inst *relational.Instance) *mesh.IstioConfig {
	cfg := &mesh.IstioConfig{}
	for _, shell := range sys.IstioShells {
		p := &mesh.AuthorizationPolicy{Name: shell.Name, Target: cloneLabels(shell.Target)}
		p.DenyToPorts = sys.decodePorts(inst, sys.IDenyTo, "ap:"+shell.Name)
		p.AllowToPorts = sys.decodePorts(inst, sys.IAllowTo, "ap:"+shell.Name)
		p.DenyFromServices = sys.decodeServices(inst, sys.IDenyFrom, "ap:"+shell.Name)
		p.AllowFromServices = sys.decodeServices(inst, sys.IAllowFrom, "ap:"+shell.Name)
		cfg.Policies = append(cfg.Policies, p)
	}
	return cfg
}

func (sys *System) decodePorts(inst *relational.Instance, rel *relational.Relation, polAtom string) []int {
	var out []int
	polIdx := sys.Universe.MustIndex(polAtom)
	for _, t := range inst.Get(rel).Tuples() {
		if t[0] != polIdx {
			continue
		}
		name := sys.Universe.Atom(t[1])
		p, err := strconv.Atoi(strings.TrimPrefix(name, "port:"))
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func (sys *System) decodeServices(inst *relational.Instance, rel *relational.Relation, polAtom string) []string {
	var out []string
	polIdx := sys.Universe.MustIndex(polAtom)
	for _, t := range inst.Get(rel).Tuples() {
		if t[0] == polIdx {
			out = append(out, sys.Universe.Atom(t[1]))
		}
	}
	sort.Strings(out)
	return out
}

// ConfigTupleSets returns the extents of concrete configurations as tuple
// sets keyed by relation — the C_A that Alg. 3 substitutes. Pass nil for a
// party not being fixed. exposure overrides the mesh's current listening
// ports (nil = mesh defaults); it is consulted only when the Istio party
// is present, since port exposure belongs to the Istio domain.
func (sys *System) ConfigTupleSets(k8s *mesh.K8sConfig, istio *mesh.IstioConfig, exposure map[string][]int) map[*relational.Relation]*relational.TupleSet {
	out := make(map[*relational.Relation]*relational.TupleSet)
	// Entries outside the bounded inventory (a port no goal, shell or
	// service mentions) have no logical counterpart and are skipped.
	add2 := func(rel *relational.Relation, polAtom, keyAtom string) {
		if sys.Universe.Index(keyAtom) < 0 {
			return
		}
		ts, ok := out[rel]
		if !ok {
			ts = relational.NewTupleSet(sys.Universe, 2)
			out[rel] = ts
		}
		ts.AddNames(polAtom, keyAtom)
	}
	ensure := func(rels ...*relational.Relation) {
		for _, r := range rels {
			if _, ok := out[r]; !ok {
				out[r] = relational.NewTupleSet(sys.Universe, 2)
			}
		}
	}
	if k8s != nil {
		ensure(sys.KInDeny, sys.KInAllow, sys.KEgDeny, sys.KEgAllow)
		for _, shell := range sys.K8sShells {
			cp := k8s.Policy(shell.Name)
			if cp == nil {
				continue
			}
			for _, p := range cp.IngressDenyPorts {
				add2(sys.KInDeny, "np:"+shell.Name, portAtom(p))
			}
			for _, p := range cp.IngressAllowPorts {
				add2(sys.KInAllow, "np:"+shell.Name, portAtom(p))
			}
			for _, p := range cp.EgressDenyPorts {
				add2(sys.KEgDeny, "np:"+shell.Name, portAtom(p))
			}
			for _, p := range cp.EgressAllowPorts {
				add2(sys.KEgAllow, "np:"+shell.Name, portAtom(p))
			}
		}
	}
	if istio != nil {
		ensure(sys.IDenyTo, sys.IAllowTo, sys.IDenyFrom, sys.IAllowFrom, sys.ActivePorts)
		for _, svc := range sys.Mesh.Services {
			ports := svc.Ports
			if exposure != nil {
				ports = exposure[svc.Name]
			}
			for _, p := range ports {
				add2(sys.ActivePorts, svc.Name, portAtom(p))
			}
		}
		for _, shell := range sys.IstioShells {
			cp := istio.Policy(shell.Name)
			if cp == nil {
				continue
			}
			for _, p := range cp.DenyToPorts {
				add2(sys.IDenyTo, "ap:"+shell.Name, portAtom(p))
			}
			for _, p := range cp.AllowToPorts {
				add2(sys.IAllowTo, "ap:"+shell.Name, portAtom(p))
			}
			for _, s := range cp.DenyFromServices {
				add2(sys.IDenyFrom, "ap:"+shell.Name, s)
			}
			for _, s := range cp.AllowFromServices {
				add2(sys.IAllowFrom, "ap:"+shell.Name, s)
			}
		}
	}
	return out
}

// SenderTupleSets returns everything that is fixed from one party's point
// of view when computing an envelope it sends (Alg. 3's C_A): the party's
// configuration tables plus its structural vocabulary (policy objects and
// their selector extents), so that substitution and simplification can
// fold the sender's side away entirely. Shared structure (Service, Port)
// and the recipient's relations stay symbolic.
func (sys *System) SenderTupleSets(k8s *mesh.K8sConfig, istio *mesh.IstioConfig, exposure map[string][]int) map[*relational.Relation]*relational.TupleSet {
	out := sys.ConfigTupleSets(k8s, istio, exposure)
	b := sys.NewBounds()
	if k8s != nil {
		out[sys.NetPol] = b.Lower(sys.NetPol)
		out[sys.NetSel] = b.Lower(sys.NetSel)
	}
	if istio != nil {
		out[sys.AuthPol] = b.Lower(sys.AuthPol)
		out[sys.AuthTarget] = b.Lower(sys.AuthTarget)
	}
	return out
}

// SharedTupleSets returns the public shared structure: the Service and
// Port inventories. See envelope.Options.Shared.
func (sys *System) SharedTupleSets() map[*relational.Relation]*relational.TupleSet {
	b := sys.NewBounds()
	return map[*relational.Relation]*relational.TupleSet{
		sys.Service: b.Lower(sys.Service),
		sys.Port:    b.Lower(sys.Port),
	}
}

// InstanceFor builds the full relational instance corresponding to concrete
// configurations: structure plus both parties' tables. exposure overrides
// service listening ports (nil = mesh defaults). Useful for checking
// formulas (envelopes, goals) against configurations without solving.
func (sys *System) InstanceFor(k8s *mesh.K8sConfig, istio *mesh.IstioConfig, exposure map[string][]int) *relational.Instance {
	if k8s == nil {
		k8s = &mesh.K8sConfig{}
	}
	if istio == nil {
		istio = &mesh.IstioConfig{}
	}
	b := sys.NewBounds()
	inst := relational.NewInstance(sys.Universe)
	for _, r := range b.Relations() {
		inst.Set(r, b.Lower(r))
	}
	for rel, ts := range sys.ConfigTupleSets(k8s, istio, exposure) {
		inst.Set(rel, ts)
	}
	return inst
}

// DecodeExposure reconstructs each service's exposed ports from an
// instance's ActivePorts extent.
func (sys *System) DecodeExposure(inst *relational.Instance) map[string][]int {
	out := make(map[string][]int, len(sys.Mesh.Services))
	for _, svc := range sys.Mesh.Services {
		out[svc.Name] = []int{}
	}
	for _, t := range inst.Get(sys.ActivePorts).Tuples() {
		name := sys.Universe.Atom(t[0])
		p, err := strconv.Atoi(strings.TrimPrefix(sys.Universe.Atom(t[1]), "port:"))
		if err != nil {
			continue
		}
		out[name] = append(out[name], p)
	}
	for name := range out {
		sort.Ints(out[name])
	}
	return out
}

// MeshWith returns a copy of the system's mesh with service listening
// ports replaced by the given exposure (services absent from the map keep
// an empty port list).
func (sys *System) MeshWith(exposure map[string][]int) *mesh.Mesh {
	out := &mesh.Mesh{}
	for _, svc := range sys.Mesh.Services {
		out.Services = append(out.Services, &mesh.Service{
			Name:   svc.Name,
			Labels: cloneLabels(svc.Labels),
			Ports:  append([]int(nil), exposure[svc.Name]...),
		})
	}
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func cloneLabels(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
