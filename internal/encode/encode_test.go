package encode

import (
	"math/rand"
	"reflect"
	"testing"

	"muppet/internal/goals"
	"muppet/internal/mesh"
	"muppet/internal/relational"
	"muppet/internal/sat"
)

// fig1System builds the walkthrough system: Fig. 1 mesh, the istio_current
// policy shells, one catch-all K8s shell, plus the ports the goal tables
// mention.
func fig1System(t testing.TB) *System {
	t.Helper()
	bundle, err := mesh.LoadFiles(
		"../../testdata/fig1/mesh.yaml",
		"../../testdata/fig1/k8s_current.yaml",
		"../../testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func fig1Configs(t testing.TB) (*mesh.K8sConfig, *mesh.IstioConfig) {
	t.Helper()
	bundle, err := mesh.LoadFiles(
		"../../testdata/fig1/k8s_current.yaml",
		"../../testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	return bundle.K8s, bundle.Istio
}

func TestSystemVocabulary(t *testing.T) {
	sys := fig1System(t)
	if got := len(sys.PortList); got != 8 {
		t.Fatalf("port inventory size %d: %v", got, sys.PortList)
	}
	if !sys.HasPort(23) || sys.HasPort(80) {
		t.Fatal("HasPort broken")
	}
	if sys.Universe.Index("test-backend") < 0 || sys.Universe.Index("port:23") < 0 ||
		sys.Universe.Index("np:cluster-default") < 0 || sys.Universe.Index("ap:frontend-policy") < 0 {
		t.Fatal("expected atoms missing")
	}
}

func TestStructuralBounds(t *testing.T) {
	sys := fig1System(t)
	b := sys.NewBounds()
	if b.Lower(sys.Service).Len() != 3 {
		t.Fatalf("Service bound: %v", b.Lower(sys.Service))
	}
	// cluster-default selects all three services.
	if b.Lower(sys.NetSel).Len() != 3 {
		t.Fatalf("NetSel: %v", b.Lower(sys.NetSel))
	}
	// Each istio policy targets exactly one service.
	if b.Lower(sys.AuthTarget).Len() != 3 {
		t.Fatalf("AuthTarget: %v", b.Lower(sys.AuthTarget))
	}
	// ActivePorts is not bound structurally (it is configurable).
	if b.Lower(sys.ActivePorts) != nil {
		t.Fatal("ActivePorts must not be bound by NewBounds")
	}
}

// flowFormula builds FlowAllowed over constants for a concrete flow.
func flowFormula(sys *System, f mesh.Flow) relational.Formula {
	return sys.FlowAllowed(sys.ServiceConst(f.Src), sys.ServiceConst(f.Dst), sys.PortConst(f.DstPort))
}

// TestFlowFormulaMatchesEvaluator is the encoding-fidelity property: on
// random total configurations, the logical admission formula agrees with
// the direct mesh evaluator for every representable flow.
func TestFlowFormulaMatchesEvaluator(t *testing.T) {
	sys := fig1System(t)
	rng := rand.New(rand.NewSource(77))
	services := sys.Mesh.ServiceNames()
	for iter := 0; iter < 60; iter++ {
		k8s, istio, exposure := randomConfigs(rng, sys)
		m2 := sys.MeshWith(exposure)
		inst := sys.InstanceFor(k8s, istio, exposure)
		for _, src := range services {
			for _, dst := range services {
				for _, port := range sys.PortList {
					f := mesh.Flow{Src: src, Dst: dst, DstPort: port}
					want := mesh.Allowed(m2, k8s, istio, f)
					got := relational.Eval(flowFormula(sys, f), inst)
					if got != want {
						t.Fatalf("iter %d flow %v: logic=%v runtime=%v\nk8s:\n%s\nistio:\n%s\nexposure: %v",
							iter, f, got, want, mesh.DescribeK8s(k8s), mesh.DescribeIstio(istio), exposure)
					}
				}
			}
		}
	}
}

// randomConfigs draws a random total configuration over the system's
// shells and port inventory.
func randomConfigs(rng *rand.Rand, sys *System) (*mesh.K8sConfig, *mesh.IstioConfig, map[string][]int) {
	pick := func(prob int) []int {
		var out []int
		for _, p := range sys.PortList {
			if rng.Intn(prob) == 0 {
				out = append(out, p)
			}
		}
		return out
	}
	pickSvcs := func(prob int) []string {
		var out []string
		for _, s := range sys.Mesh.Services {
			if rng.Intn(prob) == 0 {
				out = append(out, s.Name)
			}
		}
		return out
	}
	k8s := &mesh.K8sConfig{}
	for _, shell := range sys.K8sShells {
		k8s.Policies = append(k8s.Policies, &mesh.NetworkPolicy{
			Name:              shell.Name,
			Selector:          shell.Selector,
			IngressDenyPorts:  pick(5),
			IngressAllowPorts: pick(4),
			EgressDenyPorts:   pick(5),
			EgressAllowPorts:  pick(4),
		})
	}
	istio := &mesh.IstioConfig{}
	for _, shell := range sys.IstioShells {
		istio.Policies = append(istio.Policies, &mesh.AuthorizationPolicy{
			Name:              shell.Name,
			Target:            shell.Target,
			DenyToPorts:       pick(6),
			AllowToPorts:      pick(5),
			DenyFromServices:  pickSvcs(4),
			AllowFromServices: pickSvcs(3),
		})
	}
	exposure := make(map[string][]int)
	for _, s := range sys.Mesh.Services {
		exposure[s.Name] = pick(3)
	}
	return k8s, istio, exposure
}

func TestFig2ConflictsWithFig3(t *testing.T) {
	// The paper's Sec. 2 claim: the union of the Fig. 2 and Fig. 3 goal
	// sets is unsatisfiable — no configuration pair meets both.
	sys := fig1System(t)
	k8sGoals, err := goals.LoadK8sGoals("../../testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	istioGoals, err := goals.LoadIstioGoals("../../testdata/fig1/istio_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	fk, err := sys.CompileK8sGoals(k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := sys.CompileIstioGoals(istioGoals)
	if err != nil {
		t.Fatal(err)
	}
	b := sys.NewBounds()
	sys.BindK8s(b, &mesh.K8sConfig{}, AllHoles())
	sys.BindIstio(b, &mesh.IstioConfig{}, AllHoles())
	_, st := relational.Solve(relational.Problem{Bounds: b, Formula: relational.And(fk, fi)})
	if st != sat.Unsat {
		t.Fatalf("Fig. 2 ∧ Fig. 3 should be UNSAT, got %v", st)
	}
}

func TestFig3GoalsAloneSatisfiable(t *testing.T) {
	sys := fig1System(t)
	istioGoals, err := goals.LoadIstioGoals("../../testdata/fig1/istio_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	fi, err := sys.CompileIstioGoals(istioGoals)
	if err != nil {
		t.Fatal(err)
	}
	b := sys.NewBounds()
	sys.BindK8s(b, &mesh.K8sConfig{}, AllHoles())
	sys.BindIstio(b, &mesh.IstioConfig{}, AllHoles())
	inst, st := relational.Solve(relational.Problem{Bounds: b, Formula: fi})
	if st != sat.Sat {
		t.Fatalf("Fig. 3 alone should be SAT, got %v", st)
	}
	// Verify the synthesized configuration with the runtime evaluator.
	k8s := sys.DecodeK8s(inst)
	istio := sys.DecodeIstio(inst)
	m2 := sys.MeshWith(sys.DecodeExposure(inst))
	for _, f := range []mesh.Flow{
		{Src: "test-frontend", Dst: "test-backend", SrcPort: 24, DstPort: 25},
		{Src: "test-backend", Dst: "test-frontend", SrcPort: 26, DstPort: 23},
		{Src: "test-backend", Dst: "test-db", SrcPort: 14000, DstPort: 16000},
		{Src: "test-db", Dst: "test-backend", SrcPort: 10000, DstPort: 12000},
	} {
		if !mesh.Allowed(m2, k8s, istio, f) {
			t.Fatalf("synthesized configuration does not admit %v", f)
		}
	}
}

func TestFig4RevisedGoalsResolveConflict(t *testing.T) {
	// The walkthrough's resolution: with relaxed ∃-port goals (Fig. 4),
	// both parties' goals become jointly satisfiable, and the synthesized
	// system blocks port 23 while keeping the mesh reachable.
	sys := fig1System(t)
	k8sGoals, err := goals.LoadK8sGoals("../../testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	revised, err := goals.LoadIstioGoals("../../testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		t.Fatal(err)
	}
	fk, err := sys.CompileK8sGoals(k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := sys.CompileIstioGoals(revised)
	if err != nil {
		t.Fatal(err)
	}
	b := sys.NewBounds()
	sys.BindK8s(b, &mesh.K8sConfig{}, AllHoles())
	sys.BindIstio(b, &mesh.IstioConfig{}, AllHoles())
	inst, st := relational.Solve(relational.Problem{Bounds: b, Formula: relational.And(fk, fi)})
	if st != sat.Sat {
		t.Fatalf("Fig. 2 ∧ Fig. 4 should be SAT, got %v", st)
	}
	k8s := sys.DecodeK8s(inst)
	istio := sys.DecodeIstio(inst)
	exposure := sys.DecodeExposure(inst)
	m2 := sys.MeshWith(exposure)
	// The fixed-port rows must hold verbatim.
	for _, f := range []mesh.Flow{
		{Src: "test-backend", Dst: "test-db", SrcPort: 14000, DstPort: 16000},
		{Src: "test-db", Dst: "test-backend", SrcPort: 10000, DstPort: 12000},
	} {
		if !mesh.Allowed(m2, k8s, istio, f) {
			t.Fatalf("synthesized configuration does not admit %v", f)
		}
	}
	// The ∃-rows must hold for some ports.
	reach := mesh.ReachabilityMatrix(m2, k8s, istio)
	if len(reach["test-frontend->test-backend"]) == 0 {
		t.Fatal("frontend→backend must be reachable on some port")
	}
	beToFe := reach["test-backend->test-frontend"]
	if len(beToFe) == 0 {
		t.Fatal("backend→frontend must be reachable on some port")
	}
	// The K8s goal must hold: nothing reachable on port 23 anywhere.
	for pair, ports := range reach {
		for _, p := range ports {
			if p == 23 {
				t.Fatalf("port 23 reachable on %s — violates the Fig. 2 goal", pair)
			}
		}
	}
}

func TestOfferStates(t *testing.T) {
	sys := fig1System(t)
	_, istio := fig1Configs(t)
	offer := Offer{
		Soft:  []Knob{ServiceKnob("frontend-policy", FieldIAllowFrom, "test-db")},
		Holes: []Knob{WildcardKnob("backend-policy", FieldIDenyTo)},
	}
	b := sys.NewBounds()
	om := sys.BindIstio(b, istio, offer)

	var soft, holes, fixed int
	for _, ki := range om.Infos {
		switch ki.State {
		case StateSoft:
			soft++
		case StateHole:
			holes++
		default:
			fixed++
		}
	}
	if soft != 1 {
		t.Fatalf("want 1 soft knob, got %d", soft)
	}
	if holes != len(sys.PortList) {
		t.Fatalf("want %d hole knobs (one per port), got %d", len(sys.PortList), holes)
	}
	if fixed == 0 {
		t.Fatal("remaining knobs must be fixed")
	}

	// Fixed present tuples are in the lower bound; fixed absent are
	// outside the upper bound; soft/hole are free.
	for _, ki := range om.Infos {
		lower := b.Lower(ki.Rel)
		upper := b.Upper(ki.Rel)
		switch ki.State {
		case StateFixed:
			if ki.Desired != lower.Contains(ki.Tuple) {
				t.Fatalf("fixed knob %v: lower mismatch", ki.Knob)
			}
			if ki.Desired != upper.Contains(ki.Tuple) {
				t.Fatalf("fixed knob %v: upper mismatch", ki.Knob)
			}
		default:
			if lower.Contains(ki.Tuple) || !upper.Contains(ki.Tuple) {
				t.Fatalf("free knob %v must be upper-only", ki.Knob)
			}
		}
	}
}

func TestAllSoftAllHoles(t *testing.T) {
	sys := fig1System(t)
	k8s, _ := fig1Configs(t)
	b := sys.NewBounds()
	om := sys.BindK8s(b, k8s, AllSoft())
	for _, ki := range om.Infos {
		if ki.State != StateSoft {
			t.Fatalf("AllSoft: knob %v has state %d", ki.Knob, ki.State)
		}
	}
	b2 := sys.NewBounds()
	om2 := sys.BindK8s(b2, k8s, AllHoles())
	for _, ki := range om2.Infos {
		if ki.State != StateHole {
			t.Fatalf("AllHoles: knob %v has state %d", ki.Knob, ki.State)
		}
	}
	if len(om.SoftInfos()) != len(om.Infos) || len(om2.HoleInfos()) != len(om2.Infos) {
		t.Fatal("SoftInfos/HoleInfos filters broken")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	sys := fig1System(t)
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		k8s, istio, exposure := randomConfigs(rng, sys)
		inst := sys.InstanceFor(k8s, istio, exposure)
		gotK := sys.DecodeK8s(inst)
		gotI := sys.DecodeIstio(inst)
		gotE := sys.DecodeExposure(inst)
		for i, p := range k8s.Policies {
			if !sameIntSet(p.IngressDenyPorts, gotK.Policies[i].IngressDenyPorts) ||
				!sameIntSet(p.IngressAllowPorts, gotK.Policies[i].IngressAllowPorts) ||
				!sameIntSet(p.EgressDenyPorts, gotK.Policies[i].EgressDenyPorts) ||
				!sameIntSet(p.EgressAllowPorts, gotK.Policies[i].EgressAllowPorts) {
				t.Fatalf("iter %d: k8s policy %s round trip failed", iter, p.Name)
			}
		}
		for i, p := range istio.Policies {
			if !sameIntSet(p.DenyToPorts, gotI.Policies[i].DenyToPorts) ||
				!sameIntSet(p.AllowToPorts, gotI.Policies[i].AllowToPorts) ||
				!sameStrSet(p.DenyFromServices, gotI.Policies[i].DenyFromServices) ||
				!sameStrSet(p.AllowFromServices, gotI.Policies[i].AllowFromServices) {
				t.Fatalf("iter %d: istio policy %s round trip failed", iter, p.Name)
			}
		}
		for name, ports := range exposure {
			if !sameIntSet(ports, gotE[name]) {
				t.Fatalf("iter %d: exposure of %s: %v vs %v", iter, name, ports, gotE[name])
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	sys := fig1System(t)
	if _, err := sys.CompileK8sGoal(goals.K8sGoal{Port: 9999}); err == nil {
		t.Fatal("out-of-inventory port must error")
	}
	if _, err := sys.CompileIstioGoals([]goals.IstioGoal{
		{Src: "ghost", Dst: "test-db", SrcPort: goals.AnyPort(), DstPort: goals.LitPort(23), Allow: true},
	}); err == nil {
		t.Fatal("unknown service must error")
	}
	if _, err := sys.CompileIstioGoals([]goals.IstioGoal{
		{Src: "test-db", Dst: "test-backend", SrcPort: goals.AnyPort(), DstPort: goals.LitPort(9999), Allow: true},
	}); err == nil {
		t.Fatal("out-of-inventory dst port must error")
	}
}

func TestIstioDenyGoalWildcardPort(t *testing.T) {
	// DENY with `*` dstPort must mean "blocked on every port".
	sys := fig1System(t)
	f, err := sys.CompileIstioGoals([]goals.IstioGoal{
		{Src: "test-frontend", Dst: "test-db", SrcPort: goals.AnyPort(), DstPort: goals.AnyPort(), Allow: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A config where frontend→db is open on 16000 must violate the goal.
	_, istio := fig1Configs(t)
	istioOpen := mesh.CloneIstio(istio)
	istioOpen.Policy("db-policy").AllowFromServices = []string{"test-backend", "test-frontend"}
	inst := sys.InstanceFor(&mesh.K8sConfig{}, istioOpen, nil)
	if relational.Eval(f, inst) {
		t.Fatal("open frontend→db must violate the wildcard DENY goal")
	}
	// The current (closed) config satisfies it.
	inst = sys.InstanceFor(&mesh.K8sConfig{}, istio, nil)
	if !relational.Eval(f, inst) {
		t.Fatal("closed frontend→db must satisfy the wildcard DENY goal")
	}
}

func TestK8sAllowGoal(t *testing.T) {
	sys := fig1System(t)
	f, err := sys.CompileK8sGoal(goals.K8sGoal{Port: 16000, Allow: true, Selector: map[string]string{"app": "db"}})
	if err != nil {
		t.Fatal(err)
	}
	_, istio := fig1Configs(t)
	// db only admits backend → ALLOW goal for everyone fails.
	inst := sys.InstanceFor(&mesh.K8sConfig{}, istio, nil)
	if relational.Eval(f, inst) {
		t.Fatal("restricted db ingress must violate the ALLOW-to-db goal")
	}
	// Fully open: satisfied.
	inst = sys.InstanceFor(&mesh.K8sConfig{}, &mesh.IstioConfig{}, nil)
	if !relational.Eval(f, inst) {
		t.Fatal("open mesh must satisfy the ALLOW-to-db goal")
	}
}

func TestSharedVariableAcrossRows(t *testing.T) {
	// Two rows sharing ?p must use the same port; requiring both
	// backend:25 reachability and db-port reachability through one shared
	// variable is unsatisfiable because db does not listen on any backend
	// port and exposure for db under AllHoles can be chosen — so instead
	// pin exposure by fixing it, then check shared-variable coupling.
	sys := fig1System(t)
	gs := []goals.IstioGoal{
		{Src: "test-frontend", Dst: "test-backend", SrcPort: goals.AnyPort(), DstPort: goals.VarPort("p"), Allow: true},
		{Src: "test-db", Dst: "test-backend", SrcPort: goals.AnyPort(), DstPort: goals.VarPort("p"), Allow: true},
	}
	f, err := sys.CompileIstioGoals(gs)
	if err != nil {
		t.Fatal(err)
	}
	// Concrete check: a config admitting frontend→backend:25 and
	// db→backend:12000 but no common port fails the shared-var goal.
	istio := &mesh.IstioConfig{Policies: []*mesh.AuthorizationPolicy{
		{Name: "backend-policy", Target: map[string]string{"app": "backend"}},
	}}
	k8s := &mesh.K8sConfig{Policies: []*mesh.NetworkPolicy{{
		Name:     "cluster-default",
		Selector: nil,
		// frontend may only reach 25; db may only reach 12000 — no shared port.
	}}}
	sysShells, err := NewSystem(sys.Mesh, []*mesh.NetworkPolicy{
		{Name: "fe-eg", Selector: map[string]string{"app": "frontend"}},
		{Name: "db-eg", Selector: map[string]string{"app": "db"}},
	}, istio.Policies, sys.PortList)
	if err != nil {
		t.Fatal(err)
	}
	f, err = sysShells.CompileIstioGoals(gs)
	if err != nil {
		t.Fatal(err)
	}
	k8s = &mesh.K8sConfig{Policies: []*mesh.NetworkPolicy{
		{Name: "fe-eg", Selector: map[string]string{"app": "frontend"}, EgressAllowPorts: []int{25}},
		{Name: "db-eg", Selector: map[string]string{"app": "db"}, EgressAllowPorts: []int{12000}},
	}}
	inst := sysShells.InstanceFor(k8s, istio, nil)
	if relational.Eval(f, inst) {
		t.Fatal("no shared port exists; shared-variable goal must fail")
	}
	// Allow both to reach 25 → shared port exists.
	k8s.Policies[1].EgressAllowPorts = []int{25, 12000}
	inst = sysShells.InstanceFor(k8s, istio, nil)
	if !relational.Eval(f, inst) {
		t.Fatal("port 25 is shared; goal must hold")
	}
}

func sameIntSet(a, b []int) bool {
	ma := make(map[int]bool)
	for _, x := range a {
		ma[x] = true
	}
	mb := make(map[int]bool)
	for _, x := range b {
		mb[x] = true
	}
	return reflect.DeepEqual(ma, mb)
}

func sameStrSet(a, b []string) bool {
	ma := make(map[string]bool)
	for _, x := range a {
		ma[x] = true
	}
	mb := make(map[string]bool)
	for _, x := range b {
		mb[x] = true
	}
	return reflect.DeepEqual(ma, mb)
}

func BenchmarkCompileAndSolveFig1(b *testing.B) {
	sys := fig1System(b)
	k8sGoals, _ := goals.LoadK8sGoals("../../testdata/fig1/k8s_goals.csv")
	revised, _ := goals.LoadIstioGoals("../../testdata/fig1/istio_goals_revised.csv")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fk, _ := sys.CompileK8sGoals(k8sGoals)
		fi, _ := sys.CompileIstioGoals(revised)
		bounds := sys.NewBounds()
		sys.BindK8s(bounds, &mesh.K8sConfig{}, AllHoles())
		sys.BindIstio(bounds, &mesh.IstioConfig{}, AllHoles())
		_, st := relational.Solve(relational.Problem{Bounds: bounds, Formula: relational.And(fk, fi)})
		if st != sat.Sat {
			b.Fatal("expected SAT")
		}
	}
}
