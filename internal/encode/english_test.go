package encode

import (
	"strings"
	"testing"

	"muppet/internal/goals"
	"muppet/internal/relational"
)

// fig5Formula computes the substituted, simplified Fig. 5 clause.
func fig5Formula(t *testing.T) (*System, relational.Formula) {
	t.Helper()
	sys := fig1System(t)
	k8sCfg, _ := fig1Configs(t)
	k8sGoals, err := goals.LoadK8sGoals("../../testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	fk, err := sys.CompileK8sGoals(k8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	sub := relational.Substitute(fk, sys.SenderTupleSets(k8sCfg, nil, nil))
	return sys, relational.Simplify(sub, sys.Universe)
}

func TestEnglishFig5(t *testing.T) {
	sys, clause := fig5Formula(t)
	got := sys.English(clause)

	// The Fig. 5 caption's structure: a universally quantified "either"
	// over five numbered sentences.
	if !strings.HasPrefix(got, "For all ") || !strings.Contains(got, "either:") {
		t.Fatalf("missing prose frame:\n%s", got)
	}
	for _, want := range []string{
		"(1) dst does not listen on port 23",
		"(2) src is explicitly blocked from sending to port 23 by an Istio egress policy",
		"(3) src is implicitly blocked from sending to port 23, since it is explicitly allowed to send to some other port but not to this one",
		"(4) dst is explicitly blocked from receiving from src by an Istio ingress policy",
		"(5) dst is implicitly blocked from receiving from src, since it is explicitly allowed to receive from some other service but not from this one",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing sentence %q in:\n%s", want, got)
		}
	}
}

func TestEnglishFallback(t *testing.T) {
	sys := fig1System(t)
	// A shape the renderer does not know: equality of two relations.
	f := relational.Equals(sys.IDenyTo, sys.IAllowTo)
	got := sys.English(f)
	if !strings.Contains(got, "deny_to_ports") {
		t.Fatalf("fallback must preserve the Alloy syntax: %q", got)
	}
}

func TestEnglishK8sSentences(t *testing.T) {
	sys := fig1System(t)
	src := relational.NewVar("src")
	port := sys.PortConst(23)
	explicit := sys.K8sEgressBlocked(src, port)
	got := sys.English(relational.Forall(
		[]relational.Decl{relational.NewDecl(src, sys.Service)}, explicit))
	if !strings.Contains(got, "K8s egress rule") || !strings.Contains(got, "port 23") {
		t.Fatalf("K8s explicit sentence missing:\n%s", got)
	}
	if !strings.Contains(got, "K8s egress allow-list") {
		t.Fatalf("K8s implicit sentence missing:\n%s", got)
	}
}

func TestEnglishListensPositive(t *testing.T) {
	sys := fig1System(t)
	dst := relational.NewVar("dst")
	f := relational.Forall(
		[]relational.Decl{relational.NewDecl(dst, sys.Service)},
		sys.Listens(dst, sys.PortConst(25)))
	got := sys.English(f)
	if !strings.Contains(got, "dst listens on port 25") {
		t.Fatalf("positive listens sentence missing:\n%s", got)
	}
}

func TestEnglishAtomNames(t *testing.T) {
	sys := fig1System(t)
	if sys.englishAtom("port:23") != "port 23" {
		t.Fatal("port atom naming")
	}
	if sys.englishAtom("np:cluster-default") != "NetworkPolicy cluster-default" {
		t.Fatal("np atom naming")
	}
	if sys.englishAtom("ap:frontend-policy") != "AuthorizationPolicy frontend-policy" {
		t.Fatal("ap atom naming")
	}
	if sys.englishAtom("test-db") != "test-db" {
		t.Fatal("service atom naming")
	}
}
