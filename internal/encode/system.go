// Package encode bridges the microservices domain (package mesh) and the
// relational logic (package relational): it fixes a logical vocabulary for
// a given mesh — atoms for services, ports, and policy objects; exact
// relations for the immutable structure; free relations for each party's
// configurable policy contents — and compiles administrator goals (package
// goals) into relational formulas over that vocabulary.
//
// The central invariant, enforced by differential tests, is that the
// FlowAllowed formula agrees with mesh.Allowed on every total
// configuration: the logic means what the runtime does.
package encode

import (
	"fmt"
	"sort"
	"strconv"

	"muppet/internal/goals"
	"muppet/internal/mesh"
	"muppet/internal/relational"
)

// System fixes the logical vocabulary for one mesh plus policy shells.
// Policy shells (names and selectors) are structure; only rule contents
// (which ports/services appear in allow/deny lists) are configurable.
//
// A System is immutable after NewSystem returns and therefore safe to
// share across goroutines: every method (NewBounds, goal compilation,
// SharedTupleSets, …) builds and returns fresh values, never memoizing
// into the receiver. Concurrent query serving relies on this — one System
// is shared by all workers, while Parties, Sessions, and SolveCaches stay
// per-worker (see muppet.FanOut). The guarantee is exercised under the
// race detector by TestConcurrentQueries in the muppet package.
type System struct {
	Mesh     *mesh.Mesh
	Universe *relational.Universe

	// Port inventory: the bounded set of ports the logic ranges over.
	PortList []int

	// Policy shells, in declaration order.
	K8sShells   []*mesh.NetworkPolicy
	IstioShells []*mesh.AuthorizationPolicy

	// Structural relations (bound exactly).
	Service    *relational.Relation // unary: services
	Port       *relational.Relation // unary: ports
	NetPol     *relational.Relation // unary: K8s policy objects
	AuthPol    *relational.Relation // unary: Istio policy objects
	NetSel     *relational.Relation // NetPol×Service: policy selects service
	AuthTarget *relational.Relation // AuthPol×Service: policy targets service

	// ActivePorts (Service×Port) is which ports each service exposes. It
	// belongs to the Istio administrator's configurable domain: the mesh
	// team owns service manifests, and the paper's Fig. 4 walkthrough has
	// the synthesizer re-choose exposed ports ("it doesn't matter which
	// port is exposed so long as the frontend is reachable"). Fig. 5's
	// envelope accordingly speaks of dst.active_ports as part of the
	// Istio-side vocabulary.
	ActivePorts *relational.Relation

	// K8s-configurable relations (NetPol×Port).
	KInDeny, KInAllow, KEgDeny, KEgAllow *relational.Relation

	// Istio-configurable relations.
	IDenyTo, IAllowTo     *relational.Relation // AuthPol×Port
	IDenyFrom, IAllowFrom *relational.Relation // AuthPol×Service
}

// NewSystem builds the vocabulary for a mesh, policy shells, and any extra
// ports the goals mention beyond the services' listening ports.
func NewSystem(m *mesh.Mesh, k8sShells []*mesh.NetworkPolicy, istioShells []*mesh.AuthorizationPolicy, extraPorts []int) (*System, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	portSet := make(map[int]bool)
	for _, p := range m.Ports() {
		portSet[p] = true
	}
	for _, p := range extraPorts {
		portSet[p] = true
	}
	for _, sh := range k8sShells {
		for _, ps := range [][]int{sh.IngressDenyPorts, sh.IngressAllowPorts, sh.EgressDenyPorts, sh.EgressAllowPorts} {
			for _, p := range ps {
				portSet[p] = true
			}
		}
	}
	for _, sh := range istioShells {
		for _, ps := range [][]int{sh.DenyToPorts, sh.AllowToPorts} {
			for _, p := range ps {
				portSet[p] = true
			}
		}
	}
	ports := make([]int, 0, len(portSet))
	for p := range portSet {
		ports = append(ports, p)
	}
	sort.Ints(ports)

	var atoms []string
	for _, s := range m.Services {
		atoms = append(atoms, s.Name)
	}
	for _, p := range ports {
		atoms = append(atoms, portAtom(p))
	}
	seenPol := make(map[string]bool)
	for _, sh := range k8sShells {
		if seenPol["np:"+sh.Name] {
			return nil, fmt.Errorf("encode: duplicate NetworkPolicy %q", sh.Name)
		}
		seenPol["np:"+sh.Name] = true
		atoms = append(atoms, "np:"+sh.Name)
	}
	for _, sh := range istioShells {
		if seenPol["ap:"+sh.Name] {
			return nil, fmt.Errorf("encode: duplicate AuthorizationPolicy %q", sh.Name)
		}
		seenPol["ap:"+sh.Name] = true
		atoms = append(atoms, "ap:"+sh.Name)
	}

	sys := &System{
		Mesh:        m,
		Universe:    relational.NewUniverse(atoms...),
		PortList:    ports,
		K8sShells:   k8sShells,
		IstioShells: istioShells,

		Service:     relational.NewRelation("Service", 1),
		Port:        relational.NewRelation("Port", 1),
		ActivePorts: relational.NewRelation("active_ports", 2),
		NetPol:      relational.NewRelation("NetworkPolicy", 1),
		AuthPol:     relational.NewRelation("AuthPolicy", 1),
		NetSel:      relational.NewRelation("selects", 2),
		AuthTarget:  relational.NewRelation("target", 2),

		KInDeny:  relational.NewRelation("k8s_ingress_deny_ports", 2),
		KInAllow: relational.NewRelation("k8s_ingress_allow_ports", 2),
		KEgDeny:  relational.NewRelation("k8s_egress_deny_ports", 2),
		KEgAllow: relational.NewRelation("k8s_egress_allow_ports", 2),

		IDenyTo:   relational.NewRelation("deny_to_ports", 2),
		IAllowTo:  relational.NewRelation("allow_to_ports", 2),
		IDenyFrom: relational.NewRelation("deny_from_service", 2),
		IAllowFrom: relational.NewRelation(
			"allow_from_service", 2),
	}
	return sys, nil
}

func portAtom(p int) string { return "port:" + strconv.Itoa(p) }

// PortAtomName returns the universe atom name for a port.
func (sys *System) PortAtomName(p int) string { return portAtom(p) }

// HasPort reports whether the port is in the system's bounded inventory.
func (sys *System) HasPort(p int) bool {
	return sys.Universe.Index(portAtom(p)) >= 0
}

// ServiceConst returns the scalar constant for a service.
func (sys *System) ServiceConst(name string) relational.Expr {
	return relational.ConstAtom(sys.Universe, name)
}

// PortConst returns the scalar constant for a port.
func (sys *System) PortConst(p int) relational.Expr {
	return relational.ConstAtom(sys.Universe, portAtom(p))
}

// NewBounds creates bounds with every structural relation bound exactly.
// Configurable relations are added by K8sOffer/IstioOffer application.
func (sys *System) NewBounds() *relational.Bounds {
	u := sys.Universe
	b := relational.NewBounds(u)

	svc := relational.NewTupleSet(u, 1)
	for _, s := range sys.Mesh.Services {
		svc.AddNames(s.Name)
	}
	b.BoundExactly(sys.Service, svc)

	ports := relational.NewTupleSet(u, 1)
	for _, p := range sys.PortList {
		ports.AddNames(portAtom(p))
	}
	b.BoundExactly(sys.Port, ports)

	np := relational.NewTupleSet(u, 1)
	nsel := relational.NewTupleSet(u, 2)
	for _, sh := range sys.K8sShells {
		np.AddNames("np:" + sh.Name)
		for _, s := range sys.Mesh.Services {
			if sh.Selects(s) {
				nsel.AddNames("np:"+sh.Name, s.Name)
			}
		}
	}
	b.BoundExactly(sys.NetPol, np)
	b.BoundExactly(sys.NetSel, nsel)

	ap := relational.NewTupleSet(u, 1)
	atgt := relational.NewTupleSet(u, 2)
	for _, sh := range sys.IstioShells {
		ap.AddNames("ap:" + sh.Name)
		for _, s := range sys.Mesh.Services {
			if sh.Targets(s) {
				atgt.AddNames("ap:"+sh.Name, s.Name)
			}
		}
	}
	b.BoundExactly(sys.AuthPol, ap)
	b.BoundExactly(sys.AuthTarget, atgt)
	return b
}

// K8sRelations returns the K8s administrator's configuration domain —
// exactly the relations Alg. 3's dom() test consults.
func (sys *System) K8sRelations() []*relational.Relation {
	return []*relational.Relation{sys.KInDeny, sys.KInAllow, sys.KEgDeny, sys.KEgAllow}
}

// IstioRelations returns the Istio administrator's configuration domain,
// which includes service port exposure (see the ActivePorts field).
func (sys *System) IstioRelations() []*relational.Relation {
	return []*relational.Relation{sys.ActivePorts, sys.IDenyTo, sys.IAllowTo, sys.IDenyFrom, sys.IAllowFrom}
}

// --- traffic semantics as formulas (the Fig. 5 shape) ---

// selPols returns the comprehension {p: NetPol | p selects svc}.
func (sys *System) selPols(svc relational.Expr) relational.Expr {
	p := relational.NewVar("np")
	return relational.Comprehension(
		[]relational.Decl{relational.NewDecl(p, sys.NetPol)},
		relational.In(relational.Product(p, svc), sys.NetSel))
}

// targetPols returns the comprehension {p: AuthPol | p targets svc} —
// Fig. 5's "{egress: AuthPolicy | egress.target in src.labels}".
func (sys *System) targetPols(svc relational.Expr) relational.Expr {
	p := relational.NewVar("ap")
	return relational.Comprehension(
		[]relational.Decl{relational.NewDecl(p, sys.AuthPol)},
		relational.In(relational.Product(p, svc), sys.AuthTarget))
}

// blockedBy encodes the shared deny-overrides-with-implicit-deny pattern:
// item is blocked by the policies pols under (deny, allow) relations when
// it is explicitly denied, or some allow entry exists and item is not in
// the allowed union — Fig. 5's disjunct pairs (2,3) and (4,5).
func blockedBy(pols relational.Expr, deny, allow *relational.Relation, item relational.Expr) relational.Formula {
	denied := relational.In(item, relational.Join(pols, deny))
	allowedUnion := relational.Join(pols, allow)
	implicit := relational.And(
		relational.Some(allowedUnion),
		relational.Not(relational.In(item, allowedUnion)),
	)
	return relational.Or(denied, implicit)
}

// K8sEgressBlocked is the formula: K8s policy blocks src sending to port.
func (sys *System) K8sEgressBlocked(src, port relational.Expr) relational.Formula {
	return blockedBy(sys.selPols(src), sys.KEgDeny, sys.KEgAllow, port)
}

// K8sIngressBlocked is the formula: K8s policy blocks dst receiving on port.
func (sys *System) K8sIngressBlocked(dst, port relational.Expr) relational.Formula {
	return blockedBy(sys.selPols(dst), sys.KInDeny, sys.KInAllow, port)
}

// IstioEgressBlocked is the formula: Istio policy blocks src sending to
// port (Fig. 5 disjuncts 2–3).
func (sys *System) IstioEgressBlocked(src, port relational.Expr) relational.Formula {
	return blockedBy(sys.targetPols(src), sys.IDenyTo, sys.IAllowTo, port)
}

// IstioIngressBlocked is the formula: Istio policy blocks dst receiving
// from src (Fig. 5 disjuncts 4–5).
func (sys *System) IstioIngressBlocked(dst, src relational.Expr) relational.Formula {
	return blockedBy(sys.targetPols(dst), sys.IDenyFrom, sys.IAllowFrom, src)
}

// Listens is the formula: dst listens on port (Fig. 5 disjunct 1 negated).
func (sys *System) Listens(dst, port relational.Expr) relational.Formula {
	return relational.In(port, relational.Join(dst, sys.ActivePorts))
}

// FlowAllowed is the composed-system admission formula for a flow from src
// to dst on destination port: the destination listens and neither party
// blocks. Source ports do not participate in policy admission (see package
// goals).
func (sys *System) FlowAllowed(src, dst, port relational.Expr) relational.Formula {
	return relational.And(
		sys.Listens(dst, port),
		relational.Not(sys.K8sEgressBlocked(src, port)),
		relational.Not(sys.K8sIngressBlocked(dst, port)),
		relational.Not(sys.IstioEgressBlocked(src, port)),
		relational.Not(sys.IstioIngressBlocked(dst, src)),
	)
}

// FlowBlocked is the negation of FlowAllowed in the disjunctive shape the
// paper's Fig. 5 presents: not listening, or blocked by one of the four
// policy checks.
func (sys *System) FlowBlocked(src, dst, port relational.Expr) relational.Formula {
	return relational.Or(
		relational.Not(sys.Listens(dst, port)),
		sys.K8sEgressBlocked(src, port),
		sys.K8sIngressBlocked(dst, port),
		sys.IstioEgressBlocked(src, port),
		sys.IstioIngressBlocked(dst, src),
	)
}

// --- goal compilation ---

// selectedServices returns the constant set of services matching a goal
// selector.
func (sys *System) selectedServices(sel map[string]string) *relational.TupleSet {
	ts := relational.NewTupleSet(sys.Universe, 1)
	for _, s := range sys.Mesh.Services {
		if s.HasLabels(sel) {
			ts.AddNames(s.Name)
		}
	}
	return ts
}

// CompileK8sGoal translates one Fig. 2 row into a formula. A DENY row
// demands every flow to a selected destination on the port be blocked; an
// ALLOW row demands every flow to a selected, listening destination on the
// port be admitted.
func (sys *System) CompileK8sGoal(g goals.K8sGoal) (relational.Formula, error) {
	if !sys.HasPort(g.Port) {
		return nil, fmt.Errorf("encode: goal port %d not in the system's port inventory", g.Port)
	}
	port := sys.PortConst(g.Port)
	src := relational.NewVar("src")
	dst := relational.NewVar("dst")
	dstDomain := sys.selectedServices(g.Selector)
	if g.Allow {
		// Restrict to listening destinations: ALLOW cannot create ports.
		listening := relational.NewTupleSet(sys.Universe, 1)
		for _, s := range sys.Mesh.Services {
			if s.HasLabels(g.Selector) && s.Listens(g.Port) {
				listening.AddNames(s.Name)
			}
		}
		return relational.Forall(
			[]relational.Decl{
				relational.NewDecl(src, sys.Service),
				relational.NewDecl(dst, relational.Const(listening)),
			},
			sys.FlowAllowed(src, dst, port)), nil
	}
	return relational.Forall(
		[]relational.Decl{
			relational.NewDecl(src, sys.Service),
			relational.NewDecl(dst, relational.Const(dstDomain)),
		},
		sys.FlowBlocked(src, dst, port)), nil
}

// CompileK8sGoals conjoins a K8s goal table.
func (sys *System) CompileK8sGoals(gs []goals.K8sGoal) (relational.Formula, error) {
	fs := make([]relational.Formula, 0, len(gs))
	for _, g := range gs {
		f, err := sys.CompileK8sGoal(g)
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	return relational.And(fs...), nil
}

// CompileIstioGoals translates a Figs. 3/4 table into one formula. Rows
// are conjoined; existential port variables are shared across rows and
// quantified over the port inventory, so the solver chooses their values
// (Fig. 4). `*` cells become fresh anonymous variables. DENY rows negate
// the flow admission; `*` service cells quantify universally for DENY rows
// and produce one requirement per service for ALLOW rows.
func (sys *System) CompileIstioGoals(gs []goals.IstioGoal) (relational.Formula, error) {
	varByName := make(map[string]*relational.Var)
	var decls []relational.Decl
	freshCount := 0
	portTermExpr := func(t goals.PortTerm) (relational.Expr, error) {
		switch t.Kind {
		case goals.PortLit:
			if !sys.HasPort(t.Port) {
				return nil, fmt.Errorf("encode: goal port %d not in the system's port inventory", t.Port)
			}
			return sys.PortConst(t.Port), nil
		case goals.PortVar:
			v, ok := varByName[t.Var]
			if !ok {
				v = relational.NewVar("?" + t.Var)
				varByName[t.Var] = v
				decls = append(decls, relational.NewDecl(v, sys.Port))
			}
			return v, nil
		default: // PortAny: fresh anonymous existential
			freshCount++
			v := relational.NewVar(fmt.Sprintf("?any%d", freshCount))
			decls = append(decls, relational.NewDecl(v, sys.Port))
			return v, nil
		}
	}

	serviceExprs := func(name string) ([]relational.Expr, error) {
		if name == "*" {
			out := make([]relational.Expr, 0, len(sys.Mesh.Services))
			for _, s := range sys.Mesh.Services {
				out = append(out, sys.ServiceConst(s.Name))
			}
			return out, nil
		}
		if sys.Mesh.Service(name) == nil {
			return nil, fmt.Errorf("encode: unknown service %q in goal", name)
		}
		return []relational.Expr{sys.ServiceConst(name)}, nil
	}

	// Each row also records which declared variables it mentions, so the
	// final formula can be miniscoped: rows sharing variables form
	// connected components, and each component is wrapped in its own
	// existential over just its variables. Without this, grounding the
	// joint ∃v1…vn would enumerate the full |Port|^n product even when
	// the variables are independent (as in Fig. 4, where none are shared).
	type row struct {
		f    relational.Formula
		vars map[*relational.Var]bool
	}
	var rows []row
	for _, g := range gs {
		rowVars := make(map[*relational.Var]bool)
		noteVar := func(e relational.Expr) {
			if v, ok := e.(*relational.Var); ok {
				rowVars[v] = true
			}
		}
		// Source ports do not constrain admission but still bind variables.
		srcPort, err := portTermExpr(g.SrcPort)
		if err != nil {
			return nil, err
		}
		noteVar(srcPort)
		srcs, err := serviceExprs(g.Src)
		if err != nil {
			return nil, err
		}
		dsts, err := serviceExprs(g.Dst)
		if err != nil {
			return nil, err
		}
		// A DENY row with a `*` destination port means "blocked on every
		// port", so it quantifies universally rather than binding a fresh
		// existential.
		var dstPort relational.Expr
		var rowForall []relational.Decl
		if !g.Allow && g.DstPort.Kind == goals.PortAny {
			v := relational.NewVar("anyport")
			rowForall = []relational.Decl{relational.NewDecl(v, sys.Port)}
			dstPort = v
		} else {
			dstPort, err = portTermExpr(g.DstPort)
			if err != nil {
				return nil, err
			}
			noteVar(dstPort)
		}
		for _, s := range srcs {
			for _, d := range dsts {
				if g.Allow {
					rows = append(rows, row{f: sys.FlowAllowed(s, d, dstPort), vars: rowVars})
				} else {
					rows = append(rows, row{
						f:    relational.Forall(rowForall, sys.FlowBlocked(s, d, dstPort)),
						vars: rowVars,
					})
				}
			}
		}
	}

	// Union-find over rows connected through shared variables.
	parent := make([]int, len(rows))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	varRow := make(map[*relational.Var]int)
	for i, r := range rows {
		for v := range r.vars {
			if j, seen := varRow[v]; seen {
				parent[find(i)] = find(j)
			} else {
				varRow[v] = i
			}
		}
	}
	comps := make(map[int][]int)
	var order []int
	for i := range rows {
		root := find(i)
		if _, seen := comps[root]; !seen {
			order = append(order, root)
		}
		comps[root] = append(comps[root], i)
	}

	var parts []relational.Formula
	for _, root := range order {
		var fs []relational.Formula
		compVars := make(map[*relational.Var]bool)
		for _, i := range comps[root] {
			fs = append(fs, rows[i].f)
			for v := range rows[i].vars {
				compVars[v] = true
			}
		}
		// Preserve the global declaration order within the component.
		var compDecls []relational.Decl
		for _, d := range decls {
			if compVars[d.Var()] {
				compDecls = append(compDecls, d)
			}
		}
		parts = append(parts, relational.Exists(compDecls, relational.And(fs...)))
	}

	return relational.And(parts...), nil
}
