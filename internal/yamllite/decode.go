package yamllite

import "fmt"

// AsMap asserts v to a mapping.
func AsMap(v Value) (map[string]Value, bool) {
	m, ok := v.(map[string]Value)
	return m, ok
}

// AsList asserts v to a sequence.
func AsList(v Value) ([]Value, bool) {
	l, ok := v.([]Value)
	return l, ok
}

// AsString asserts v to a string.
func AsString(v Value) (string, bool) {
	s, ok := v.(string)
	return s, ok
}

// AsInt asserts v to an integer.
func AsInt(v Value) (int64, bool) {
	n, ok := v.(int64)
	return n, ok
}

// AsBool asserts v to a boolean.
func AsBool(v Value) (bool, bool) {
	b, ok := v.(bool)
	return b, ok
}

// Get descends a chain of mapping keys, reporting whether every step
// existed.
func Get(v Value, path ...string) (Value, bool) {
	cur := v
	for _, key := range path {
		m, ok := AsMap(cur)
		if !ok {
			return nil, false
		}
		next, ok := m[key]
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

// StringAt returns the string at a mapping path, with a descriptive error.
func StringAt(v Value, path ...string) (string, error) {
	got, ok := Get(v, path...)
	if !ok {
		return "", fmt.Errorf("yamllite: missing %v", path)
	}
	s, ok := AsString(got)
	if !ok {
		return "", fmt.Errorf("yamllite: %v is %T, want string", path, got)
	}
	return s, nil
}

// IntListAt returns a list of integers at a mapping path; a single integer
// is accepted as a one-element list. A missing path yields an empty list.
func IntListAt(v Value, path ...string) ([]int, error) {
	got, ok := Get(v, path...)
	if !ok || got == nil {
		return nil, nil
	}
	if n, ok := AsInt(got); ok {
		return []int{int(n)}, nil
	}
	l, ok := AsList(got)
	if !ok {
		return nil, fmt.Errorf("yamllite: %v is %T, want integer list", path, got)
	}
	out := make([]int, 0, len(l))
	for i, item := range l {
		n, ok := AsInt(item)
		if !ok {
			return nil, fmt.Errorf("yamllite: %v[%d] is %T, want integer", path, i, item)
		}
		out = append(out, int(n))
	}
	return out, nil
}

// StringListAt returns a list of strings at a mapping path; a single string
// is accepted as a one-element list. A missing path yields an empty list.
func StringListAt(v Value, path ...string) ([]string, error) {
	got, ok := Get(v, path...)
	if !ok || got == nil {
		return nil, nil
	}
	if s, ok := AsString(got); ok {
		return []string{s}, nil
	}
	l, ok := AsList(got)
	if !ok {
		return nil, fmt.Errorf("yamllite: %v is %T, want string list", path, got)
	}
	out := make([]string, 0, len(l))
	for i, item := range l {
		s, ok := AsString(item)
		if !ok {
			return nil, fmt.Errorf("yamllite: %v[%d] is %T, want string", path, i, item)
		}
		out = append(out, s)
	}
	return out, nil
}

// StringMapAt returns a map[string]string at a mapping path. A missing path
// yields an empty map.
func StringMapAt(v Value, path ...string) (map[string]string, error) {
	got, ok := Get(v, path...)
	if !ok || got == nil {
		return map[string]string{}, nil
	}
	m, ok := AsMap(got)
	if !ok {
		return nil, fmt.Errorf("yamllite: %v is %T, want mapping", path, got)
	}
	out := make(map[string]string, len(m))
	for k, item := range m {
		s, ok := AsString(item)
		if !ok {
			return nil, fmt.Errorf("yamllite: %v.%s is %T, want string", path, k, item)
		}
		out[k] = s
	}
	return out, nil
}
