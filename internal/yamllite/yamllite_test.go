package yamllite

import (
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Value {
	t.Helper()
	v, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return v
}

func TestScalars(t *testing.T) {
	v := mustParse(t, `
name: frontend
port: 8080
enabled: true
disabled: false
empty: ~
missing: null
plain: some plain text
quoted: "with: colon"
single: 'it''s quoted'
`)
	m, _ := AsMap(v)
	want := map[string]Value{
		"name": "frontend", "port": int64(8080),
		"enabled": true, "disabled": false,
		"empty": nil, "missing": nil,
		"plain": "some plain text", "quoted": "with: colon",
		"single": "it's quoted",
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("got %#v\nwant %#v", m, want)
	}
}

func TestNestedMapping(t *testing.T) {
	v := mustParse(t, `
metadata:
  name: test-db
  labels:
    app: db
    tier: storage
`)
	name, err := StringAt(v, "metadata", "name")
	if err != nil || name != "test-db" {
		t.Fatalf("name=%q err=%v", name, err)
	}
	labels, err := StringMapAt(v, "metadata", "labels")
	if err != nil || labels["app"] != "db" || labels["tier"] != "storage" {
		t.Fatalf("labels=%v err=%v", labels, err)
	}
}

func TestBlockSequence(t *testing.T) {
	v := mustParse(t, `
ports:
  - 8080
  - 9090
names:
  - alpha
  - beta
`)
	ports, err := IntListAt(v, "ports")
	if err != nil || !reflect.DeepEqual(ports, []int{8080, 9090}) {
		t.Fatalf("ports=%v err=%v", ports, err)
	}
	names, err := StringListAt(v, "names")
	if err != nil || !reflect.DeepEqual(names, []string{"alpha", "beta"}) {
		t.Fatalf("names=%v err=%v", names, err)
	}
}

func TestSequenceAtKeyIndent(t *testing.T) {
	// K8s YAML often indents sequences at the same column as their key.
	v := mustParse(t, `
ports:
- 8080
- 9090
`)
	ports, err := IntListAt(v, "ports")
	if err != nil || !reflect.DeepEqual(ports, []int{8080, 9090}) {
		t.Fatalf("ports=%v err=%v", ports, err)
	}
}

func TestSequenceOfMappings(t *testing.T) {
	v := mustParse(t, `
services:
  - name: frontend
    port: 80
  - name: backend
    port: 8080
`)
	list, ok := Get(v, "services")
	if !ok {
		t.Fatal("services missing")
	}
	items, _ := AsList(list)
	if len(items) != 2 {
		t.Fatalf("want 2 items, got %d: %#v", len(items), items)
	}
	n0, _ := StringAt(items[0], "name")
	n1, _ := StringAt(items[1], "name")
	if n0 != "frontend" || n1 != "backend" {
		t.Fatalf("names %q %q", n0, n1)
	}
	p0, _ := Get(items[0], "port")
	if p0 != int64(80) {
		t.Fatalf("port %v", p0)
	}
}

func TestSequenceOfNestedBlocks(t *testing.T) {
	v := mustParse(t, `
rules:
  -
    ports:
      - 23
  - ports:
      - 80
      - 443
`)
	items, _ := AsList(mustGet(t, v, "rules"))
	if len(items) != 2 {
		t.Fatalf("want 2 rules, got %#v", items)
	}
	p0, err := IntListAt(items[0], "ports")
	if err != nil || !reflect.DeepEqual(p0, []int{23}) {
		t.Fatalf("p0=%v err=%v", p0, err)
	}
	p1, _ := IntListAt(items[1], "ports")
	if !reflect.DeepEqual(p1, []int{80, 443}) {
		t.Fatalf("p1=%v", p1)
	}
}

func mustGet(t *testing.T, v Value, path ...string) Value {
	t.Helper()
	got, ok := Get(v, path...)
	if !ok {
		t.Fatalf("missing path %v", path)
	}
	return got
}

func TestFlowSequence(t *testing.T) {
	v := mustParse(t, `ports: [23, 80, 443]`)
	ports, err := IntListAt(v, "ports")
	if err != nil || !reflect.DeepEqual(ports, []int{23, 80, 443}) {
		t.Fatalf("ports=%v err=%v", ports, err)
	}
	v = mustParse(t, `names: ["a", 'b', c]`)
	names, err := StringListAt(v, "names")
	if err != nil || !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Fatalf("names=%v err=%v", names, err)
	}
	v = mustParse(t, `empty: []`)
	l, _ := AsList(mustGet(t, v, "empty"))
	if len(l) != 0 {
		t.Fatalf("want empty list, got %#v", l)
	}
}

func TestFlowMapping(t *testing.T) {
	v := mustParse(t, `podSelector: {}`)
	m, ok := AsMap(mustGet(t, v, "podSelector"))
	if !ok || len(m) != 0 {
		t.Fatalf("empty flow map: %#v", m)
	}
	v = mustParse(t, `matchLabels: {app: db, tier: storage}`)
	labels, err := StringMapAt(v, "matchLabels")
	if err != nil || labels["app"] != "db" || labels["tier"] != "storage" {
		t.Fatalf("labels=%v err=%v", labels, err)
	}
}

func TestComments(t *testing.T) {
	v := mustParse(t, `
# leading comment
name: web # trailing comment
labels:
  app: "has # not a comment"
`)
	if n, _ := StringAt(v, "name"); n != "web" {
		t.Fatalf("name=%q", n)
	}
	if s, _ := StringAt(v, "labels", "app"); s != "has # not a comment" {
		t.Fatalf("app=%q", s)
	}
}

func TestMultiDocument(t *testing.T) {
	docs, err := Documents([]byte(`
name: one
---
name: two
---
name: three
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("want 3 docs, got %d", len(docs))
	}
	n, _ := StringAt(docs[2], "name")
	if n != "three" {
		t.Fatalf("doc3 name=%q", n)
	}
}

func TestRealisticNetworkPolicy(t *testing.T) {
	v := mustParse(t, `
apiVersion: networking.k8s.io/v1
kind: NetworkPolicy
metadata:
  name: deny-telnet
spec:
  podSelector: {}
  ingress:
    - ports:
        - 23
`)
	kind, _ := StringAt(v, "kind")
	if kind != "NetworkPolicy" {
		t.Fatalf("kind=%q", kind)
	}
	_ = v
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"tab indent", "a:\n\tb: 1"},
		{"missing colon", "just a value line\nother: 1"},
		{"duplicate key", "a: 1\na: 2"},
		{"bad indent jump", "a:\n    b: 1\n  c: 2"},
		{"unterminated quote", `a: "oops`},
		{"unterminated flow", "a: [1, 2"},
		{"nested flow mapping", "a: {b: {c: 1}}"},
		{"unterminated flow mapping", "a: {b: 1"},
		{"no space after colon", "a:1"},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.src)); err == nil {
			t.Errorf("%s: expected error for %q", c.name, c.src)
		}
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Parse([]byte("ok: 1\nbad line\n"))
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if perr.Line != 2 {
		t.Fatalf("line %d, want 2", perr.Line)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error text %q should cite the line", err)
	}
}

func TestEmptyInput(t *testing.T) {
	v, err := Parse([]byte("\n# only comments\n\n"))
	if err != nil || v != nil {
		t.Fatalf("v=%v err=%v", v, err)
	}
	docs, err := Documents([]byte(""))
	if err != nil || len(docs) != 0 {
		t.Fatalf("docs=%v err=%v", docs, err)
	}
}

func TestDecodeHelpers(t *testing.T) {
	v := mustParse(t, `
single_port: 23
single_name: db
`)
	ports, err := IntListAt(v, "single_port")
	if err != nil || !reflect.DeepEqual(ports, []int{23}) {
		t.Fatalf("single int promotion: %v %v", ports, err)
	}
	names, err := StringListAt(v, "single_name")
	if err != nil || !reflect.DeepEqual(names, []string{"db"}) {
		t.Fatalf("single string promotion: %v %v", names, err)
	}
	if _, err := IntListAt(v, "single_name"); err == nil {
		t.Fatal("type mismatch should error")
	}
	if got, _ := IntListAt(v, "absent"); got != nil {
		t.Fatalf("absent path should give empty list, got %v", got)
	}
	if m, err := StringMapAt(v, "absent"); err != nil || len(m) != 0 {
		t.Fatalf("absent map: %v %v", m, err)
	}
}
