// Package yamllite parses the subset of YAML that Kubernetes and Istio
// policy files actually use: block mappings and sequences nested by
// indentation, inline scalars (plain, quoted, integers, booleans, null),
// flow sequences of scalars, comments, and multi-document streams.
//
// Muppet consumes production YAML to model system structure (paper Sec. 3);
// the stdlib-only constraint of this reproduction rules out third-party
// YAML bindings, so this package implements the needed subset from scratch.
// It is deliberately strict: anything outside the subset is a parse error
// rather than a silent misreading.
package yamllite

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a parsed YAML value: map[string]Value, []Value, string, int64,
// bool, or nil.
type Value any

// line is a logical input line with its indentation and position.
type line struct {
	indent int
	text   string // content with indentation stripped
	num    int    // 1-based line number
}

// Error is a parse error carrying a line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("yamllite: line %d: %s", e.Line, e.Msg)
}

func errf(num int, format string, args ...any) error {
	return &Error{Line: num, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses a single-document input. Multi-document streams are an
// error here; use Documents.
func Parse(data []byte) (Value, error) {
	docs, err := Documents(data)
	if err != nil {
		return nil, err
	}
	switch len(docs) {
	case 0:
		return nil, nil
	case 1:
		return docs[0], nil
	}
	return nil, fmt.Errorf("yamllite: %d documents where one was expected", len(docs))
}

// Documents parses a (possibly multi-document) stream.
func Documents(data []byte) ([]Value, error) {
	raw := strings.Split(strings.ReplaceAll(string(data), "\r\n", "\n"), "\n")
	var docs []Value
	var cur []line
	flush := func() error {
		if len(cur) == 0 {
			return nil
		}
		p := &parser{lines: cur}
		v, err := p.parseBlock(cur[0].indent)
		if err != nil {
			return err
		}
		if p.pos != len(p.lines) {
			return errf(p.lines[p.pos].num, "unexpected content %q", p.lines[p.pos].text)
		}
		docs = append(docs, v)
		cur = nil
		return nil
	}
	for i, rawLine := range raw {
		text, ok := stripComment(rawLine)
		if !ok {
			return nil, errf(i+1, "unterminated quote")
		}
		trimmed := strings.TrimRight(text, " \t")
		stripped := strings.TrimLeft(trimmed, " ")
		if stripped == "" {
			continue
		}
		if stripped == "---" {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(stripped, "\t") {
			return nil, errf(i+1, "tabs are not allowed in indentation")
		}
		cur = append(cur, line{
			indent: len(trimmed) - len(stripped),
			text:   stripped,
			num:    i + 1,
		})
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return docs, nil
}

// stripComment removes a trailing # comment, honouring quotes. It reports
// false on an unterminated quote.
func stripComment(s string) (string, bool) {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i], true
			}
		}
	}
	return s, !inSingle && !inDouble
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses the map or sequence starting at the given indentation.
func (p *parser) parseBlock(indent int) (Value, error) {
	l, ok := p.peek()
	if !ok {
		return nil, nil
	}
	if l.indent != indent {
		return nil, errf(l.num, "unexpected indentation %d (expected %d)", l.indent, indent)
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *parser) parseSequence(indent int) (Value, error) {
	var out []Value
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			return out, nil
		}
		p.pos++
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		switch {
		case rest == "":
			// Nested block on following, deeper lines.
			nl, ok := p.peek()
			if !ok || nl.indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.parseBlock(nl.indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		case isMappingStart(rest):
			// "- key: value" starts an inline map whose remaining keys sit
			// on following lines indented past the dash.
			v, err := p.parseInlineSeqMapping(l, rest, indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		default:
			v, err := parseScalar(rest, l.num)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
}

// parseInlineSeqMapping handles a sequence item whose first mapping entry
// shares the dash line. Continuation keys must be indented to the column
// just past "- ".
func (p *parser) parseInlineSeqMapping(l line, rest string, indent int) (Value, error) {
	m := make(map[string]Value)
	if err := p.parseMappingEntry(line{indent: indent + 2, text: rest, num: l.num}, m, indent+2); err != nil {
		return nil, err
	}
	for {
		nl, ok := p.peek()
		if !ok || nl.indent != indent+2 || isSeqItem(nl.text) {
			return m, nil
		}
		if !isMappingStart(nl.text) {
			return nil, errf(nl.num, "expected mapping entry, got %q", nl.text)
		}
		p.pos++
		if err := p.parseMappingEntry(nl, m, indent+2); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseMapping(indent int) (Value, error) {
	m := make(map[string]Value)
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || isSeqItem(l.text) {
			return m, nil
		}
		if !isMappingStart(l.text) {
			return nil, errf(l.num, "expected mapping entry, got %q", l.text)
		}
		p.pos++
		if err := p.parseMappingEntry(l, m, indent); err != nil {
			return nil, err
		}
	}
}

// parseMappingEntry parses "key: …" (already consumed) into m. indent is
// the indentation of the key line.
func (p *parser) parseMappingEntry(l line, m map[string]Value, indent int) error {
	key, rest, err := splitKey(l.text, l.num)
	if err != nil {
		return err
	}
	if _, dup := m[key]; dup {
		return errf(l.num, "duplicate key %q", key)
	}
	if rest != "" {
		v, err := parseScalar(rest, l.num)
		if err != nil {
			return err
		}
		m[key] = v
		return nil
	}
	// Value is a nested block (or null if nothing deeper follows).
	nl, ok := p.peek()
	if !ok || nl.indent <= indent {
		// Sequences are often indented at the same level as their key.
		if ok && nl.indent == indent && isSeqItem(nl.text) {
			v, err := p.parseSequence(indent)
			if err != nil {
				return err
			}
			m[key] = v
			return nil
		}
		m[key] = nil
		return nil
	}
	v, err := p.parseBlock(nl.indent)
	if err != nil {
		return err
	}
	m[key] = v
	return nil
}

func isSeqItem(s string) bool { return s == "-" || strings.HasPrefix(s, "- ") }

// isMappingStart reports whether the text begins a "key:" mapping entry.
func isMappingStart(s string) bool {
	_, _, err := splitKey(s, 0)
	return err == nil
}

// splitKey splits "key: rest" (or "key:"), validating the key.
func splitKey(s string, num int) (key, rest string, err error) {
	i := strings.Index(s, ":")
	if i < 0 {
		return "", "", errf(num, "missing ':' in mapping entry %q", s)
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", errf(num, "missing space after ':' in %q", s)
	}
	key = strings.TrimSpace(s[:i])
	if key == "" {
		return "", "", errf(num, "empty key in %q", s)
	}
	if strings.HasPrefix(key, "\"") || strings.HasPrefix(key, "'") {
		unq, e := unquote(key, num)
		if e != nil {
			return "", "", e
		}
		key = unq
	}
	return key, strings.TrimSpace(s[i+1:]), nil
}

// parseScalar interprets an inline scalar or flow sequence.
func parseScalar(s string, num int) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "" || s == "~" || s == "null":
		return nil, nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case strings.HasPrefix(s, "["):
		return parseFlowSeq(s, num)
	case strings.HasPrefix(s, "{"):
		return parseFlowMap(s, num)
	case strings.HasPrefix(s, "'") || strings.HasPrefix(s, "\""):
		return unquote(s, num)
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	return s, nil
}

func parseFlowSeq(s string, num int) (Value, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, errf(num, "unterminated flow sequence %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return []Value{}, nil
	}
	parts := splitFlow(inner)
	out := make([]Value, 0, len(parts))
	for _, part := range parts {
		v, err := parseScalar(strings.TrimSpace(part), num)
		if err != nil {
			return nil, err
		}
		if _, nested := v.([]Value); nested {
			return nil, errf(num, "nested flow sequences are not supported")
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFlowMap parses "{}" and one-level flow mappings of scalars,
// e.g. "{app: db, tier: storage}".
func parseFlowMap(s string, num int) (Value, error) {
	if !strings.HasSuffix(s, "}") {
		return nil, errf(num, "unterminated flow mapping %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	m := make(map[string]Value)
	if inner == "" {
		return m, nil
	}
	for _, part := range splitFlow(inner) {
		key, rest, err := splitKey(strings.TrimSpace(part), num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, errf(num, "duplicate key %q in flow mapping", key)
		}
		v, err := parseScalar(rest, num)
		if err != nil {
			return nil, err
		}
		if _, nested := v.(map[string]Value); nested {
			return nil, errf(num, "nested flow mappings are not supported")
		}
		m[key] = v
	}
	return m, nil
}

// splitFlow splits on commas outside quotes.
func splitFlow(s string) []string {
	var parts []string
	start := 0
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case ',':
			if !inSingle && !inDouble {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func unquote(s string, num int) (string, error) {
	if len(s) < 2 {
		return "", errf(num, "malformed quoted string %q", s)
	}
	q := s[0]
	if s[len(s)-1] != q {
		return "", errf(num, "unterminated quoted string %q", s)
	}
	body := s[1 : len(s)-1]
	if q == '\'' {
		return strings.ReplaceAll(body, "''", "'"), nil
	}
	// Double quotes: handle the common escapes.
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", errf(num, "dangling escape in %q", s)
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		default:
			return "", errf(num, "unsupported escape \\%c", body[i])
		}
	}
	return b.String(), nil
}
