package yamllite

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse feeds arbitrary bytes to both entry points of the subset
// parser. Malformed input must come back as an error value — the CLI
// front end treats a parser panic as an internal bug, so none may exist.
func FuzzParse(f *testing.F) {
	for _, name := range []string{"mesh.yaml", "k8s_current.yaml", "istio_current.yaml"} {
		data, err := os.ReadFile(filepath.Join("../../testdata/fig1", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("a:\n  - b: 1\n    c: [x, y]\n---\nd: \"e\"\n"))
	f.Add([]byte(":\n\t-\n"))
	f.Add([]byte("- - -\n  : :\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, err := Parse(data); err == nil {
			walk(t, v, 0)
		}
		if docs, err := Documents(data); err == nil {
			for _, d := range docs {
				walk(t, d, 0)
			}
		}
	})
}

// walk traverses a parsed Value, checking it is built only from the
// documented shapes (scalars, sequences, mappings) and is finite.
func walk(t *testing.T, v Value, depth int) {
	if depth > 10_000 {
		t.Fatal("parsed value impossibly deep — cyclic structure?")
	}
	switch x := v.(type) {
	case nil:
	case string, int64, bool:
	case []Value:
		for _, e := range x {
			walk(t, e, depth+1)
		}
	case map[string]Value:
		for _, e := range x {
			walk(t, e, depth+1)
		}
	default:
		t.Fatalf("undocumented value shape %T", v)
	}
}
