// Package mesh models the microservices configuration domain of the Muppet
// paper (Sec. 5): a set of Services with labels and listening ports,
// Kubernetes NetworkPolicies controlling traffic by service selector and
// port, and Istio AuthorizationPolicies controlling traffic across services
// and ports.
//
// The package also provides a direct, solver-free evaluator for the
// composed traffic semantics ("is this flow allowed?"). The logic encoding
// in package encode must agree with this evaluator — that agreement is
// checked by differential property tests, and it is what makes envelopes
// trustworthy: the formulas Muppet manipulates mean exactly what the
// runtime semantics say.
//
// Semantics follow the paper's Fig. 5:
//   - a flow reaches only a port its destination listens on;
//   - a deny entry always blocks (deny overrides);
//   - a non-empty allow list implicitly blocks anything not in the union
//     of applicable allow lists;
//   - K8s and Istio verdicts compose conjunctively: if either denies, the
//     flow is denied (Sec. 2).
package mesh

import (
	"fmt"
	"sort"
	"strings"
)

// Service is a mesh workload: a name, a label set, and the ports it
// listens on ("active ports" in the paper's Fig. 5).
type Service struct {
	Name   string
	Labels map[string]string
	Ports  []int
}

// Listens reports whether the service listens on port.
func (s *Service) Listens(port int) bool {
	for _, p := range s.Ports {
		if p == port {
			return true
		}
	}
	return false
}

// HasLabels reports whether every key/value pair of sel appears in the
// service's labels. An empty selector matches every service.
func (s *Service) HasLabels(sel map[string]string) bool {
	for k, v := range sel {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Mesh is the shared system structure both administrators configure
// against: the service inventory. It is derived from production YAML and is
// not itself negotiable.
type Mesh struct {
	Services []*Service
}

// Service returns the named service, or nil.
func (m *Mesh) Service(name string) *Service {
	for _, s := range m.Services {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// ServiceNames returns the service names in declaration order.
func (m *Mesh) ServiceNames() []string {
	out := make([]string, len(m.Services))
	for i, s := range m.Services {
		out[i] = s.Name
	}
	return out
}

// Validate checks structural sanity: unique non-empty service names and
// positive ports.
func (m *Mesh) Validate() error {
	seen := make(map[string]bool)
	for _, s := range m.Services {
		if s.Name == "" {
			return fmt.Errorf("mesh: service with empty name")
		}
		if seen[s.Name] {
			return fmt.Errorf("mesh: duplicate service %q", s.Name)
		}
		seen[s.Name] = true
		for _, p := range s.Ports {
			if p <= 0 || p > 65535 {
				return fmt.Errorf("mesh: service %q has invalid port %d", s.Name, p)
			}
		}
	}
	return nil
}

// Ports returns the sorted union of all service listening ports.
func (m *Mesh) Ports() []int {
	set := make(map[int]bool)
	for _, s := range m.Services {
		for _, p := range s.Ports {
			set[p] = true
		}
	}
	return sortedPorts(set)
}

// NetworkPolicy is the modelled subset of a Kubernetes NetworkPolicy: it
// selects services by label and permits or prohibits traffic to and from
// them by destination port. Deny overrides allow; a non-empty allow list
// implicitly denies unlisted ports.
type NetworkPolicy struct {
	Name     string
	Selector map[string]string // empty selects all services

	// Ingress rules constrain ports on which selected services may
	// receive traffic.
	IngressDenyPorts  []int
	IngressAllowPorts []int

	// Egress rules constrain destination ports to which selected services
	// may send traffic.
	EgressDenyPorts  []int
	EgressAllowPorts []int
}

// Selects reports whether the policy applies to the service.
func (p *NetworkPolicy) Selects(s *Service) bool { return s.HasLabels(p.Selector) }

// AuthorizationPolicy is the modelled subset of an Istio
// AuthorizationPolicy (the paper's Fig. 5 shape): it targets services by
// label; in the egress direction it constrains destination ports
// (deny_to_ports / allow_to_ports), and in the ingress direction it
// constrains source services (deny_from_service / allow_from_service).
type AuthorizationPolicy struct {
	Name   string
	Target map[string]string // empty targets all services

	DenyToPorts  []int
	AllowToPorts []int

	DenyFromServices  []string
	AllowFromServices []string
}

// Targets reports whether the policy applies to the service.
func (p *AuthorizationPolicy) Targets(s *Service) bool { return s.HasLabels(p.Target) }

// K8sConfig is the Kubernetes administrator's configuration.
type K8sConfig struct {
	Policies []*NetworkPolicy
}

// Policy returns the named policy, or nil.
func (c *K8sConfig) Policy(name string) *NetworkPolicy {
	for _, p := range c.Policies {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// IstioConfig is the Istio administrator's configuration.
type IstioConfig struct {
	Policies []*AuthorizationPolicy
}

// Policy returns the named policy, or nil.
func (c *IstioConfig) Policy(name string) *AuthorizationPolicy {
	for _, p := range c.Policies {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Flow is one service-to-service packet flow, as in the paper's goal
// tables (Figs. 1, 3, 4). Policies in this model constrain the destination
// port and the endpoint services; the source port participates in goals
// but not in policy admission.
type Flow struct {
	Src, Dst         string
	SrcPort, DstPort int
}

func (f Flow) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d", f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// Verdict explains the outcome of evaluating one flow.
type Verdict struct {
	Allowed bool
	// Reason names the first blocking check when Allowed is false.
	Reason string
}

// K8sEgressBlocks reports whether K8s policy blocks src from sending to
// dstPort: an applicable egress deny lists the port, or some applicable
// egress allow list exists and none lists the port.
func K8sEgressBlocks(m *Mesh, c *K8sConfig, src *Service, dstPort int) bool {
	anyAllow, allowed := false, false
	for _, p := range c.Policies {
		if !p.Selects(src) {
			continue
		}
		if containsPort(p.EgressDenyPorts, dstPort) {
			return true
		}
		if len(p.EgressAllowPorts) > 0 {
			anyAllow = true
			if containsPort(p.EgressAllowPorts, dstPort) {
				allowed = true
			}
		}
	}
	return anyAllow && !allowed
}

// K8sIngressBlocks reports whether K8s policy blocks dst from receiving on
// dstPort.
func K8sIngressBlocks(m *Mesh, c *K8sConfig, dst *Service, dstPort int) bool {
	anyAllow, allowed := false, false
	for _, p := range c.Policies {
		if !p.Selects(dst) {
			continue
		}
		if containsPort(p.IngressDenyPorts, dstPort) {
			return true
		}
		if len(p.IngressAllowPorts) > 0 {
			anyAllow = true
			if containsPort(p.IngressAllowPorts, dstPort) {
				allowed = true
			}
		}
	}
	return anyAllow && !allowed
}

// IstioEgressBlocks reports whether Istio policy blocks src from sending to
// dstPort (Fig. 5 disjuncts 2 and 3).
func IstioEgressBlocks(m *Mesh, c *IstioConfig, src *Service, dstPort int) bool {
	anyAllow, allowed := false, false
	for _, p := range c.Policies {
		if !p.Targets(src) {
			continue
		}
		if containsPort(p.DenyToPorts, dstPort) {
			return true
		}
		if len(p.AllowToPorts) > 0 {
			anyAllow = true
			if containsPort(p.AllowToPorts, dstPort) {
				allowed = true
			}
		}
	}
	return anyAllow && !allowed
}

// IstioIngressBlocks reports whether Istio policy blocks dst from receiving
// from src (Fig. 5 disjuncts 4 and 5).
func IstioIngressBlocks(m *Mesh, c *IstioConfig, dst *Service, srcName string) bool {
	anyAllow, allowed := false, false
	for _, p := range c.Policies {
		if !p.Targets(dst) {
			continue
		}
		if containsString(p.DenyFromServices, srcName) {
			return true
		}
		if len(p.AllowFromServices) > 0 {
			anyAllow = true
			if containsString(p.AllowFromServices, srcName) {
				allowed = true
			}
		}
	}
	return anyAllow && !allowed
}

// Evaluate decides a flow under the composed K8s + Istio configuration,
// explaining the first blocking check on denial.
func Evaluate(m *Mesh, k8s *K8sConfig, istio *IstioConfig, f Flow) Verdict {
	src := m.Service(f.Src)
	dst := m.Service(f.Dst)
	if src == nil {
		return Verdict{Reason: fmt.Sprintf("unknown source service %q", f.Src)}
	}
	if dst == nil {
		return Verdict{Reason: fmt.Sprintf("unknown destination service %q", f.Dst)}
	}
	switch {
	case !dst.Listens(f.DstPort):
		return Verdict{Reason: fmt.Sprintf("%s does not listen on port %d", dst.Name, f.DstPort)}
	case K8sEgressBlocks(m, k8s, src, f.DstPort):
		return Verdict{Reason: fmt.Sprintf("K8s egress policy blocks %s sending to port %d", src.Name, f.DstPort)}
	case K8sIngressBlocks(m, k8s, dst, f.DstPort):
		return Verdict{Reason: fmt.Sprintf("K8s ingress policy blocks %s receiving on port %d", dst.Name, f.DstPort)}
	case IstioEgressBlocks(m, istio, src, f.DstPort):
		return Verdict{Reason: fmt.Sprintf("Istio egress policy blocks %s sending to port %d", src.Name, f.DstPort)}
	case IstioIngressBlocks(m, istio, dst, src.Name):
		return Verdict{Reason: fmt.Sprintf("Istio ingress policy blocks %s receiving from %s", dst.Name, src.Name)}
	}
	return Verdict{Allowed: true}
}

// Allowed is Evaluate without the explanation.
func Allowed(m *Mesh, k8s *K8sConfig, istio *IstioConfig, f Flow) bool {
	return Evaluate(m, k8s, istio, f).Allowed
}

// ReachabilityMatrix returns, for every ordered service pair, the sorted
// destination ports on which traffic is allowed. Keys are "src->dst".
func ReachabilityMatrix(m *Mesh, k8s *K8sConfig, istio *IstioConfig) map[string][]int {
	out := make(map[string][]int)
	for _, src := range m.Services {
		for _, dst := range m.Services {
			var ports []int
			for _, p := range dst.Ports {
				if Allowed(m, k8s, istio, Flow{Src: src.Name, Dst: dst.Name, SrcPort: 0, DstPort: p}) {
					ports = append(ports, p)
				}
			}
			sort.Ints(ports)
			out[src.Name+"->"+dst.Name] = ports
		}
	}
	return out
}

// CloneK8s deep-copies a K8s configuration.
func CloneK8s(c *K8sConfig) *K8sConfig {
	out := &K8sConfig{}
	for _, p := range c.Policies {
		out.Policies = append(out.Policies, &NetworkPolicy{
			Name:              p.Name,
			Selector:          cloneMap(p.Selector),
			IngressDenyPorts:  clonePorts(p.IngressDenyPorts),
			IngressAllowPorts: clonePorts(p.IngressAllowPorts),
			EgressDenyPorts:   clonePorts(p.EgressDenyPorts),
			EgressAllowPorts:  clonePorts(p.EgressAllowPorts),
		})
	}
	return out
}

// CloneIstio deep-copies an Istio configuration.
func CloneIstio(c *IstioConfig) *IstioConfig {
	out := &IstioConfig{}
	for _, p := range c.Policies {
		out.Policies = append(out.Policies, &AuthorizationPolicy{
			Name:              p.Name,
			Target:            cloneMap(p.Target),
			DenyToPorts:       clonePorts(p.DenyToPorts),
			AllowToPorts:      clonePorts(p.AllowToPorts),
			DenyFromServices:  append([]string(nil), p.DenyFromServices...),
			AllowFromServices: append([]string(nil), p.AllowFromServices...),
		})
	}
	return out
}

// DescribeK8s renders a K8s configuration compactly, one policy per line.
func DescribeK8s(c *K8sConfig) string {
	var b strings.Builder
	for _, p := range c.Policies {
		fmt.Fprintf(&b, "NetworkPolicy %s selector=%s ingressDeny=%v ingressAllow=%v egressDeny=%v egressAllow=%v\n",
			p.Name, describeSelector(p.Selector),
			sortedCopy(p.IngressDenyPorts), sortedCopy(p.IngressAllowPorts),
			sortedCopy(p.EgressDenyPorts), sortedCopy(p.EgressAllowPorts))
	}
	return b.String()
}

// DescribeIstio renders an Istio configuration compactly.
func DescribeIstio(c *IstioConfig) string {
	var b strings.Builder
	for _, p := range c.Policies {
		from := append([]string(nil), p.AllowFromServices...)
		sort.Strings(from)
		denyFrom := append([]string(nil), p.DenyFromServices...)
		sort.Strings(denyFrom)
		fmt.Fprintf(&b, "AuthorizationPolicy %s target=%s denyTo=%v allowTo=%v denyFrom=%v allowFrom=%v\n",
			p.Name, describeSelector(p.Target),
			sortedCopy(p.DenyToPorts), sortedCopy(p.AllowToPorts), denyFrom, from)
	}
	return b.String()
}

func describeSelector(sel map[string]string) string {
	if len(sel) == 0 {
		return "*"
	}
	keys := make([]string, 0, len(sel))
	for k := range sel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + sel[k]
	}
	return strings.Join(parts, ",")
}

func containsPort(ports []int, p int) bool {
	for _, q := range ports {
		if q == p {
			return true
		}
	}
	return false
}

func containsString(ss []string, s string) bool {
	for _, q := range ss {
		if q == s {
			return true
		}
	}
	return false
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func clonePorts(ps []int) []int { return append([]int(nil), ps...) }

func sortedCopy(ps []int) []int {
	out := clonePorts(ps)
	sort.Ints(out)
	return out
}

func sortedPorts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
