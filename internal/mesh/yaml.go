package mesh

import (
	"fmt"
	"os"

	"muppet/internal/yamllite"
)

// This file decodes the production-style YAML that Muppet consumes to model
// system structure (paper Sec. 3: "Muppet consumes the YAML files that K8s
// and Istio administrators use in production"). The shapes follow the real
// CRDs where the modelled subset overlaps them (kind, metadata.name,
// labels, selectors); the rule bodies are the paper's modelled subset
// (Sec. 5): port allow/deny for NetworkPolicy, to-ports and from-services
// allow/deny for AuthorizationPolicy.

// Bundle is everything found in a YAML stream, split by document kind.
type Bundle struct {
	Mesh  *Mesh
	K8s   *K8sConfig
	Istio *IstioConfig
}

// ParseAll decodes a multi-document YAML stream, dispatching on `kind`:
// Service documents populate the mesh, NetworkPolicy the K8s configuration,
// AuthorizationPolicy the Istio configuration.
func ParseAll(data []byte) (*Bundle, error) {
	docs, err := yamllite.Documents(data)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Mesh: &Mesh{}, K8s: &K8sConfig{}, Istio: &IstioConfig{}}
	for i, doc := range docs {
		kind, err := yamllite.StringAt(doc, "kind")
		if err != nil {
			return nil, fmt.Errorf("mesh: document %d: %w", i+1, err)
		}
		switch kind {
		case "Service":
			s, err := decodeService(doc)
			if err != nil {
				return nil, fmt.Errorf("mesh: document %d: %w", i+1, err)
			}
			b.Mesh.Services = append(b.Mesh.Services, s)
		case "NetworkPolicy":
			p, err := decodeNetworkPolicy(doc)
			if err != nil {
				return nil, fmt.Errorf("mesh: document %d: %w", i+1, err)
			}
			b.K8s.Policies = append(b.K8s.Policies, p)
		case "AuthorizationPolicy":
			p, err := decodeAuthorizationPolicy(doc)
			if err != nil {
				return nil, fmt.Errorf("mesh: document %d: %w", i+1, err)
			}
			b.Istio.Policies = append(b.Istio.Policies, p)
		default:
			return nil, fmt.Errorf("mesh: document %d: unsupported kind %q", i+1, kind)
		}
	}
	if err := b.Mesh.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// LoadAll reads and decodes a YAML file (or several concatenated with ---).
func LoadAll(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b, err := ParseAll(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// LoadFiles decodes several YAML files into one bundle.
func LoadFiles(paths ...string) (*Bundle, error) {
	out := &Bundle{Mesh: &Mesh{}, K8s: &K8sConfig{}, Istio: &IstioConfig{}}
	for _, path := range paths {
		b, err := LoadAll(path)
		if err != nil {
			return nil, err
		}
		out.Mesh.Services = append(out.Mesh.Services, b.Mesh.Services...)
		out.K8s.Policies = append(out.K8s.Policies, b.K8s.Policies...)
		out.Istio.Policies = append(out.Istio.Policies, b.Istio.Policies...)
	}
	if err := out.Mesh.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

func decodeService(doc yamllite.Value) (*Service, error) {
	name, err := yamllite.StringAt(doc, "metadata", "name")
	if err != nil {
		return nil, err
	}
	labels, err := yamllite.StringMapAt(doc, "metadata", "labels")
	if err != nil {
		return nil, err
	}
	ports, err := decodePorts(doc)
	if err != nil {
		return nil, fmt.Errorf("service %s: %w", name, err)
	}
	return &Service{Name: name, Labels: labels, Ports: ports}, nil
}

// decodePorts accepts both the simplified form (spec.ports: [80, 443]) and
// the Kubernetes form (spec.ports: [{port: 80}, …]).
func decodePorts(doc yamllite.Value) ([]int, error) {
	raw, ok := yamllite.Get(doc, "spec", "ports")
	if !ok || raw == nil {
		return nil, nil
	}
	list, ok := yamllite.AsList(raw)
	if !ok {
		if n, isInt := yamllite.AsInt(raw); isInt {
			return []int{int(n)}, nil
		}
		return nil, fmt.Errorf("spec.ports is %T, want list", raw)
	}
	out := make([]int, 0, len(list))
	for i, item := range list {
		if n, isInt := yamllite.AsInt(item); isInt {
			out = append(out, int(n))
			continue
		}
		if _, isMap := yamllite.AsMap(item); isMap {
			n, ok := yamllite.Get(item, "port")
			if !ok {
				return nil, fmt.Errorf("spec.ports[%d]: missing port", i)
			}
			v, isInt := yamllite.AsInt(n)
			if !isInt {
				return nil, fmt.Errorf("spec.ports[%d].port is %T, want integer", i, n)
			}
			out = append(out, int(v))
			continue
		}
		return nil, fmt.Errorf("spec.ports[%d] is %T, want integer or mapping", i, item)
	}
	return out, nil
}

// decodeSelector accepts {} (match all), a flat label map, or the
// Kubernetes matchLabels wrapper.
func decodeSelector(doc yamllite.Value, path ...string) (map[string]string, error) {
	raw, ok := yamllite.Get(doc, path...)
	if !ok || raw == nil {
		return map[string]string{}, nil
	}
	if inner, ok := yamllite.Get(raw, "matchLabels"); ok {
		m, isMap := yamllite.AsMap(inner)
		if !isMap {
			return nil, fmt.Errorf("%v.matchLabels is not a mapping", path)
		}
		return stringMap(m, append(path, "matchLabels"))
	}
	m, isMap := yamllite.AsMap(raw)
	if !isMap {
		return nil, fmt.Errorf("%v is not a mapping", path)
	}
	return stringMap(m, path)
}

func stringMap(m map[string]yamllite.Value, path []string) (map[string]string, error) {
	out := make(map[string]string, len(m))
	for k, v := range m {
		s, ok := yamllite.AsString(v)
		if !ok {
			return nil, fmt.Errorf("%v.%s is %T, want string", path, k, v)
		}
		out[k] = s
	}
	return out, nil
}

func decodeNetworkPolicy(doc yamllite.Value) (*NetworkPolicy, error) {
	name, err := yamllite.StringAt(doc, "metadata", "name")
	if err != nil {
		return nil, err
	}
	sel, err := decodeSelector(doc, "spec", "podSelector")
	if err != nil {
		return nil, fmt.Errorf("policy %s: %w", name, err)
	}
	p := &NetworkPolicy{Name: name, Selector: sel}
	for _, f := range []struct {
		dst  *[]int
		path []string
	}{
		{&p.IngressDenyPorts, []string{"spec", "ingress", "denyPorts"}},
		{&p.IngressAllowPorts, []string{"spec", "ingress", "allowPorts"}},
		{&p.EgressDenyPorts, []string{"spec", "egress", "denyPorts"}},
		{&p.EgressAllowPorts, []string{"spec", "egress", "allowPorts"}},
	} {
		ports, err := yamllite.IntListAt(doc, f.path...)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", name, err)
		}
		*f.dst = ports
	}
	return p, nil
}

func decodeAuthorizationPolicy(doc yamllite.Value) (*AuthorizationPolicy, error) {
	name, err := yamllite.StringAt(doc, "metadata", "name")
	if err != nil {
		return nil, err
	}
	target, err := decodeSelector(doc, "spec", "selector")
	if err != nil {
		return nil, fmt.Errorf("policy %s: %w", name, err)
	}
	p := &AuthorizationPolicy{Name: name, Target: target}
	var errs [4]error
	p.DenyToPorts, errs[0] = yamllite.IntListAt(doc, "spec", "egress", "denyToPorts")
	p.AllowToPorts, errs[1] = yamllite.IntListAt(doc, "spec", "egress", "allowToPorts")
	p.DenyFromServices, errs[2] = yamllite.StringListAt(doc, "spec", "ingress", "denyFromServices")
	p.AllowFromServices, errs[3] = yamllite.StringListAt(doc, "spec", "ingress", "allowFromServices")
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", name, err)
		}
	}
	return p, nil
}
