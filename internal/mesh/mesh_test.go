package mesh

import (
	"reflect"
	"testing"
)

// fig1 builds the paper's Figure 1 mesh in code.
func fig1() *Mesh {
	return &Mesh{Services: []*Service{
		{Name: "test-frontend", Labels: map[string]string{"app": "frontend"}, Ports: []int{23}},
		{Name: "test-backend", Labels: map[string]string{"app": "backend"}, Ports: []int{25, 12000}},
		{Name: "test-db", Labels: map[string]string{"app": "db"}, Ports: []int{16000}},
	}}
}

func emptyConfigs() (*K8sConfig, *IstioConfig) {
	return &K8sConfig{}, &IstioConfig{}
}

func TestServiceBasics(t *testing.T) {
	m := fig1()
	fe := m.Service("test-frontend")
	if fe == nil || !fe.Listens(23) || fe.Listens(80) {
		t.Fatal("frontend port lookup broken")
	}
	if m.Service("nope") != nil {
		t.Fatal("unknown service should be nil")
	}
	if !fe.HasLabels(map[string]string{"app": "frontend"}) {
		t.Fatal("label match broken")
	}
	if fe.HasLabels(map[string]string{"app": "backend"}) {
		t.Fatal("label mismatch should fail")
	}
	if !fe.HasLabels(nil) {
		t.Fatal("empty selector must match everything")
	}
	want := []string{"test-frontend", "test-backend", "test-db"}
	if !reflect.DeepEqual(m.ServiceNames(), want) {
		t.Fatalf("names %v", m.ServiceNames())
	}
	if !reflect.DeepEqual(m.Ports(), []int{23, 25, 12000, 16000}) {
		t.Fatalf("ports %v", m.Ports())
	}
}

func TestValidate(t *testing.T) {
	m := fig1()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Mesh{Services: []*Service{{Name: "a"}, {Name: "a"}}}
	if bad.Validate() == nil {
		t.Fatal("duplicate names must fail validation")
	}
	bad = &Mesh{Services: []*Service{{Name: ""}}}
	if bad.Validate() == nil {
		t.Fatal("empty name must fail validation")
	}
	bad = &Mesh{Services: []*Service{{Name: "a", Ports: []int{0}}}}
	if bad.Validate() == nil {
		t.Fatal("port 0 must fail validation")
	}
	bad = &Mesh{Services: []*Service{{Name: "a", Ports: []int{70000}}}}
	if bad.Validate() == nil {
		t.Fatal("port 70000 must fail validation")
	}
}

func TestOpenMeshAllowsListeningPortsOnly(t *testing.T) {
	m := fig1()
	k8s, istio := emptyConfigs()
	if !Allowed(m, k8s, istio, Flow{Src: "test-backend", Dst: "test-frontend", SrcPort: 26, DstPort: 23}) {
		t.Fatal("open mesh should allow backend→frontend:23")
	}
	v := Evaluate(m, k8s, istio, Flow{Src: "test-backend", Dst: "test-frontend", SrcPort: 26, DstPort: 80})
	if v.Allowed || v.Reason == "" {
		t.Fatalf("non-listening port must be blocked with a reason, got %+v", v)
	}
}

func TestUnknownServices(t *testing.T) {
	m := fig1()
	k8s, istio := emptyConfigs()
	if Evaluate(m, k8s, istio, Flow{Src: "ghost", Dst: "test-backend", DstPort: 25}).Allowed {
		t.Fatal("unknown source must be denied")
	}
	if Evaluate(m, k8s, istio, Flow{Src: "test-backend", Dst: "ghost", DstPort: 25}).Allowed {
		t.Fatal("unknown destination must be denied")
	}
}

func TestK8sDenyOverrides(t *testing.T) {
	m := fig1()
	istio := &IstioConfig{}
	k8s := &K8sConfig{Policies: []*NetworkPolicy{{
		Name:              "ban-telnet",
		IngressDenyPorts:  []int{23},
		IngressAllowPorts: []int{23}, // deny wins even when also allowed
	}}}
	if Allowed(m, k8s, istio, Flow{Src: "test-backend", Dst: "test-frontend", DstPort: 23}) {
		t.Fatal("deny must override allow")
	}
}

func TestK8sImplicitDeny(t *testing.T) {
	m := fig1()
	istio := &IstioConfig{}
	// Allow-list on backend ingress: only port 25.
	k8s := &K8sConfig{Policies: []*NetworkPolicy{{
		Name:              "backend-ports",
		Selector:          map[string]string{"app": "backend"},
		IngressAllowPorts: []int{25},
	}}}
	if !Allowed(m, k8s, istio, Flow{Src: "test-frontend", Dst: "test-backend", DstPort: 25}) {
		t.Fatal("allowed port should pass")
	}
	if Allowed(m, k8s, istio, Flow{Src: "test-db", Dst: "test-backend", DstPort: 12000}) {
		t.Fatal("unlisted port must be implicitly denied")
	}
	// Other services unaffected by the selector.
	if !Allowed(m, k8s, istio, Flow{Src: "test-backend", Dst: "test-frontend", DstPort: 23}) {
		t.Fatal("selector must scope the implicit deny")
	}
}

func TestK8sAllowUnionAcrossPolicies(t *testing.T) {
	m := fig1()
	istio := &IstioConfig{}
	k8s := &K8sConfig{Policies: []*NetworkPolicy{
		{Name: "p1", Selector: map[string]string{"app": "backend"}, IngressAllowPorts: []int{25}},
		{Name: "p2", Selector: map[string]string{"app": "backend"}, IngressAllowPorts: []int{12000}},
	}}
	// The implicit-deny check is against the union of allow lists.
	if !Allowed(m, k8s, istio, Flow{Src: "test-db", Dst: "test-backend", DstPort: 12000}) {
		t.Fatal("port in another policy's allow list should pass")
	}
}

func TestK8sEgress(t *testing.T) {
	m := fig1()
	istio := &IstioConfig{}
	k8s := &K8sConfig{Policies: []*NetworkPolicy{{
		Name:            "frontend-egress",
		Selector:        map[string]string{"app": "frontend"},
		EgressDenyPorts: []int{25},
	}}}
	if Allowed(m, k8s, istio, Flow{Src: "test-frontend", Dst: "test-backend", DstPort: 25}) {
		t.Fatal("egress deny must block")
	}
	if !Allowed(m, k8s, istio, Flow{Src: "test-db", Dst: "test-backend", DstPort: 25}) {
		t.Fatal("egress deny must only bind selected sources")
	}
}

func TestIstioEgressSemantics(t *testing.T) {
	m := fig1()
	k8s := &K8sConfig{}
	istio := &IstioConfig{Policies: []*AuthorizationPolicy{{
		Name:         "backend-egress",
		Target:       map[string]string{"app": "backend"},
		AllowToPorts: []int{23},
	}}}
	if !Allowed(m, k8s, istio, Flow{Src: "test-backend", Dst: "test-frontend", DstPort: 23}) {
		t.Fatal("allowed to-port should pass")
	}
	if Allowed(m, k8s, istio, Flow{Src: "test-backend", Dst: "test-db", DstPort: 16000}) {
		t.Fatal("implicit deny: 16000 not in allow_to_ports")
	}
	istio.Policies[0].DenyToPorts = []int{23}
	if Allowed(m, k8s, istio, Flow{Src: "test-backend", Dst: "test-frontend", DstPort: 23}) {
		t.Fatal("deny_to_ports must override allow")
	}
}

func TestIstioIngressSemantics(t *testing.T) {
	m := fig1()
	k8s := &K8sConfig{}
	istio := &IstioConfig{Policies: []*AuthorizationPolicy{{
		Name:              "frontend-ingress",
		Target:            map[string]string{"app": "frontend"},
		AllowFromServices: []string{"test-backend"},
	}}}
	if !Allowed(m, k8s, istio, Flow{Src: "test-backend", Dst: "test-frontend", DstPort: 23}) {
		t.Fatal("allowed source should pass")
	}
	if Allowed(m, k8s, istio, Flow{Src: "test-db", Dst: "test-frontend", DstPort: 23}) {
		t.Fatal("implicit deny: db not in allow_from_service")
	}
	istio.Policies[0].DenyFromServices = []string{"test-backend"}
	if Allowed(m, k8s, istio, Flow{Src: "test-backend", Dst: "test-frontend", DstPort: 23}) {
		t.Fatal("deny_from_service must override allow")
	}
}

func TestComposedConjunction(t *testing.T) {
	// Sec. 2: if either party denies, the flow is denied even if the other
	// explicitly allows it.
	m := fig1()
	k8s := &K8sConfig{Policies: []*NetworkPolicy{{
		Name:             "ban-23",
		IngressDenyPorts: []int{23},
	}}}
	istio := &IstioConfig{Policies: []*AuthorizationPolicy{{
		Name:         "fe-allow",
		Target:       map[string]string{"app": "backend"},
		AllowToPorts: []int{23},
	}}}
	v := Evaluate(m, k8s, istio, Flow{Src: "test-backend", Dst: "test-frontend", SrcPort: 26, DstPort: 23})
	if v.Allowed {
		t.Fatal("K8s deny must win over Istio allow")
	}
	if v.Reason == "" {
		t.Fatal("denial must carry a reason")
	}
}

func TestFig1WalkthroughConflict(t *testing.T) {
	// The Sec. 3 story: the Istio mesh works; the K8s admin pushes a global
	// port-23 ban; frontend reachability breaks.
	bundle, err := LoadFiles("../../testdata/fig1/mesh.yaml", "../../testdata/fig1/istio_current.yaml")
	if err != nil {
		t.Fatal(err)
	}
	m, istio := bundle.Mesh, bundle.Istio
	k8sBefore := &K8sConfig{}
	flows := []Flow{
		{Src: "test-frontend", Dst: "test-backend", SrcPort: 24, DstPort: 25},
		{Src: "test-backend", Dst: "test-frontend", SrcPort: 26, DstPort: 23},
		{Src: "test-backend", Dst: "test-db", SrcPort: 14000, DstPort: 16000},
		{Src: "test-db", Dst: "test-backend", SrcPort: 10000, DstPort: 12000},
	}
	for _, f := range flows {
		if !Allowed(m, k8sBefore, istio, f) {
			t.Fatalf("before the ban, %v must be allowed", f)
		}
	}
	k8sAfter := &K8sConfig{Policies: []*NetworkPolicy{{
		Name:             "ban-telnet",
		IngressDenyPorts: []int{23},
	}}}
	broken := Flow{Src: "test-backend", Dst: "test-frontend", SrcPort: 26, DstPort: 23}
	if Allowed(m, k8sAfter, istio, broken) {
		t.Fatal("the ban must break backend→frontend:23")
	}
	for _, f := range flows[:1] {
		if !Allowed(m, k8sAfter, istio, f) {
			t.Fatalf("unrelated flow %v must survive the ban", f)
		}
	}
}

func TestReachabilityMatrix(t *testing.T) {
	bundle, err := LoadFiles("../../testdata/fig1/mesh.yaml", "../../testdata/fig1/istio_current.yaml")
	if err != nil {
		t.Fatal(err)
	}
	got := ReachabilityMatrix(bundle.Mesh, &K8sConfig{}, bundle.Istio)
	want := map[string][]int{
		"test-backend->test-frontend": {23},
		"test-frontend->test-backend": {25, 12000},
		"test-db->test-backend":       {25, 12000},
		"test-backend->test-db":       {16000},
	}
	for k, ports := range want {
		if !reflect.DeepEqual(got[k], ports) {
			t.Errorf("%s: got %v want %v", k, got[k], ports)
		}
	}
	// Flows not admitted by the ingress allow lists must be empty.
	for _, k := range []string{"test-frontend->test-db", "test-db->test-frontend", "test-frontend->test-frontend"} {
		if len(got[k]) != 0 {
			t.Errorf("%s should be unreachable, got %v", k, got[k])
		}
	}
}

func TestYAMLRoundTrip(t *testing.T) {
	bundle, err := LoadFiles(
		"../../testdata/fig1/mesh.yaml",
		"../../testdata/fig1/k8s_current.yaml",
		"../../testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Mesh.Services) != 3 {
		t.Fatalf("want 3 services, got %d", len(bundle.Mesh.Services))
	}
	if len(bundle.K8s.Policies) != 1 || bundle.K8s.Policies[0].Name != "cluster-default" {
		t.Fatalf("k8s policies: %+v", bundle.K8s.Policies)
	}
	if len(bundle.Istio.Policies) != 3 {
		t.Fatalf("want 3 istio policies, got %d", len(bundle.Istio.Policies))
	}
	be := bundle.Mesh.Service("test-backend")
	if be == nil || !reflect.DeepEqual(be.Ports, []int{25, 12000}) {
		t.Fatalf("backend ports: %+v", be)
	}
	fp := bundle.Istio.Policy("frontend-policy")
	if fp == nil || fp.Target["app"] != "frontend" || !reflect.DeepEqual(fp.AllowFromServices, []string{"test-backend"}) {
		t.Fatalf("frontend policy: %+v", fp)
	}
}

func TestParseAllRejectsUnknownKind(t *testing.T) {
	_, err := ParseAll([]byte("kind: Deployment\nmetadata:\n  name: x\n"))
	if err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestParseK8sPortMapsForm(t *testing.T) {
	b, err := ParseAll([]byte(`
kind: Service
metadata:
  name: svc
spec:
  ports:
    - port: 80
    - port: 443
`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Mesh.Services[0].Ports, []int{80, 443}) {
		t.Fatalf("ports %v", b.Mesh.Services[0].Ports)
	}
}

func TestParseNetworkPolicyRules(t *testing.T) {
	b, err := ParseAll([]byte(`
kind: NetworkPolicy
metadata:
  name: np
spec:
  podSelector:
    matchLabels:
      app: db
  ingress:
    denyPorts: [23]
    allowPorts: [16000]
  egress:
    denyPorts: [1]
`))
	if err != nil {
		t.Fatal(err)
	}
	p := b.K8s.Policies[0]
	if p.Selector["app"] != "db" ||
		!reflect.DeepEqual(p.IngressDenyPorts, []int{23}) ||
		!reflect.DeepEqual(p.IngressAllowPorts, []int{16000}) ||
		!reflect.DeepEqual(p.EgressDenyPorts, []int{1}) ||
		p.EgressAllowPorts != nil {
		t.Fatalf("policy %+v", p)
	}
}

func TestClones(t *testing.T) {
	k8s := &K8sConfig{Policies: []*NetworkPolicy{{
		Name: "p", Selector: map[string]string{"a": "b"}, IngressDenyPorts: []int{23},
	}}}
	c := CloneK8s(k8s)
	c.Policies[0].IngressDenyPorts[0] = 99
	c.Policies[0].Selector["a"] = "z"
	if k8s.Policies[0].IngressDenyPorts[0] != 23 || k8s.Policies[0].Selector["a"] != "b" {
		t.Fatal("CloneK8s must deep-copy")
	}
	istio := &IstioConfig{Policies: []*AuthorizationPolicy{{
		Name: "q", AllowFromServices: []string{"x"},
	}}}
	ci := CloneIstio(istio)
	ci.Policies[0].AllowFromServices[0] = "y"
	if istio.Policies[0].AllowFromServices[0] != "x" {
		t.Fatal("CloneIstio must deep-copy")
	}
}

func TestDescribe(t *testing.T) {
	k8s := &K8sConfig{Policies: []*NetworkPolicy{{Name: "p", IngressDenyPorts: []int{23}}}}
	if s := DescribeK8s(k8s); s == "" || !contains(s, "p") || !contains(s, "23") {
		t.Fatalf("DescribeK8s: %q", s)
	}
	istio := &IstioConfig{Policies: []*AuthorizationPolicy{{Name: "q", AllowFromServices: []string{"svc"}}}}
	if s := DescribeIstio(istio); !contains(s, "q") || !contains(s, "svc") {
		t.Fatalf("DescribeIstio: %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestReachabilityMatrixAgreesWithEvaluate(t *testing.T) {
	// Property: the matrix is exactly the set of allowed (src,dst,port)
	// triples over listening ports.
	m := fig1()
	k8s := &K8sConfig{Policies: []*NetworkPolicy{{
		Name:             "mixed",
		Selector:         map[string]string{"app": "backend"},
		IngressDenyPorts: []int{25},
		EgressDenyPorts:  []int{23},
	}}}
	istio := &IstioConfig{Policies: []*AuthorizationPolicy{{
		Name:              "fe",
		Target:            map[string]string{"app": "frontend"},
		AllowFromServices: []string{"test-db"},
	}}}
	reach := ReachabilityMatrix(m, k8s, istio)
	for _, src := range m.Services {
		for _, dst := range m.Services {
			allowedPorts := map[int]bool{}
			for _, p := range reach[src.Name+"->"+dst.Name] {
				allowedPorts[p] = true
			}
			for _, p := range dst.Ports {
				want := Allowed(m, k8s, istio, Flow{Src: src.Name, Dst: dst.Name, DstPort: p})
				if allowedPorts[p] != want {
					t.Fatalf("%s->%s:%d matrix=%v evaluate=%v", src.Name, dst.Name, p, allowedPorts[p], want)
				}
			}
		}
	}
}

func TestLoadAllErrors(t *testing.T) {
	if _, err := LoadAll("does-not-exist.yaml"); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := LoadFiles("does-not-exist.yaml"); err == nil {
		t.Fatal("missing file must error (LoadFiles)")
	}
	if _, err := ParseAll([]byte("kind: Service\n")); err == nil {
		t.Fatal("service without metadata.name must error")
	}
	if _, err := ParseAll([]byte("not yaml: [")); err == nil {
		t.Fatal("bad yaml must error")
	}
	if _, err := ParseAll([]byte("kind: Service\nmetadata:\n  name: a\nspec:\n  ports: nope\n")); err == nil {
		t.Fatal("bad ports must error")
	}
	if _, err := ParseAll([]byte("kind: NetworkPolicy\nmetadata:\n  name: p\nspec:\n  ingress:\n    denyPorts: [x]\n")); err == nil {
		t.Fatal("non-integer port must error")
	}
	if _, err := ParseAll([]byte("kind: AuthorizationPolicy\nmetadata:\n  name: p\nspec:\n  selector: 3\n")); err == nil {
		t.Fatal("bad selector must error")
	}
	// Duplicate service across files fails validation.
	if _, err := ParseAll([]byte("kind: Service\nmetadata:\n  name: a\n---\nkind: Service\nmetadata:\n  name: a\n")); err == nil {
		t.Fatal("duplicate services must error")
	}
}

func TestAuthorizationPolicyPortMapsForm(t *testing.T) {
	b, err := ParseAll([]byte(`
kind: AuthorizationPolicy
metadata:
  name: ap
spec:
  egress:
    denyToPorts: 23
    allowToPorts: [80, 443]
  ingress:
    denyFromServices: alpha
`))
	if err != nil {
		t.Fatal(err)
	}
	p := b.Istio.Policies[0]
	if len(p.DenyToPorts) != 1 || p.DenyToPorts[0] != 23 {
		t.Fatalf("single-int promotion: %v", p.DenyToPorts)
	}
	if len(p.AllowToPorts) != 2 || len(p.DenyFromServices) != 1 {
		t.Fatalf("lists: %+v", p)
	}
}
