package target

import (
	"strconv"
	"strings"

	"muppet/internal/sat"
)

// EncoderCache memoises totalizer encodings per mismatch-literal set so
// that repeated Minimize calls on one long-lived solver session share a
// single cardinality encoding instead of emitting a fresh one each time.
// The cache is sound because the totalizer clauses are one-directional
// definitions over fresh variables — satisfiable under any assignment of
// their inputs — so a cached encoder never constrains a run it was not
// built for, provided every distance cap is assumption-based (retractable
// probing); Minimize enforces that condition before consulting the cache.
//
// Encoders are truncated at the requesting run's initial distance, like
// the uncached path: a full-width encoder would cost O(n²) clauses and —
// far worse — force every UNSAT bound proof to reason over the whole
// counter tree instead of a d-truncated one, which at sweep scale turns a
// seconds-long minimisation into minutes. A later run whose initial
// distance exceeds the cached truncation rebuilds at the larger bound;
// the orphaned encoder's clauses stay behind as inert definitions, a
// bounded cost since bounds grow at most log-many times to the soft-set
// size and steady-state workloads re-ask the same-shaped question.
//
// Keys are the exact mismatch-literal sequence, so soft sets that differ
// in content, order, or polarity get separate encoders; a workflow
// session sees only a handful of distinct soft sets (one per offer
// configuration), keeping the cache small.
//
// An EncoderCache is tied to one solver session: its cached output
// variables are meaningless on any other solver. It is not safe for
// concurrent use, matching the sessions it serves.
type EncoderCache struct {
	encs  map[string]*cachedEncoder
	hits  int
	built int
}

type cachedEncoder struct {
	tot   *totalizer
	bound int
}

// NewEncoderCache returns an empty cache for one solver session.
func NewEncoderCache() *EncoderCache {
	return &EncoderCache{encs: make(map[string]*cachedEncoder)}
}

// Hits reports how many Minimize runs reused a cached encoding.
func (c *EncoderCache) Hits() int { return c.hits }

// Built reports how many encodings the cache has emitted (rebuilds at a
// larger truncation count separately).
func (c *EncoderCache) Built() int { return c.built }

// get returns an encoder covering bounds below the given initial
// distance, reusing the memoised one when its truncation suffices.
func (c *EncoderCache) get(s *sat.Solver, mism []sat.Lit, bound int) *totalizer {
	if bound > len(mism) {
		bound = len(mism)
	}
	var kb strings.Builder
	for _, l := range mism {
		kb.WriteString(strconv.Itoa(int(l)))
		kb.WriteByte(';')
	}
	key := kb.String()
	if e, ok := c.encs[key]; ok && e.bound >= bound {
		c.hits++
		return e.tot
	}
	t := newTotalizer(s, mism, bound)
	c.encs[key] = &cachedEncoder{tot: t, bound: bound}
	c.built++
	return t
}
