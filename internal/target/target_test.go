package target

import (
	"math/rand"
	"testing"

	"muppet/internal/sat"
)

// instance is a raw CNF problem plus soft targets, kept as data so tests
// can brute-force it independently of the solver.
type instance struct {
	nVars   int
	clauses [][]sat.Lit
	soft    []sat.Lit
}

// solver materialises the instance into a fresh SAT solver.
func (in *instance) solver() *sat.Solver {
	s := sat.New()
	for i := 0; i < in.nVars; i++ {
		s.NewVar()
	}
	for _, c := range in.clauses {
		s.AddClause(c...)
	}
	return s
}

// bruteForce enumerates every assignment and returns the minimal Hamming
// distance to the soft targets over satisfying assignments, or ok=false
// when the clause set is unsatisfiable.
func (in *instance) bruteForce() (best int, ok bool) {
	best = in.nVars + len(in.soft) + 1
	for m := 0; m < 1<<uint(in.nVars); m++ {
		val := func(l sat.Lit) bool {
			bit := m>>uint(l.Var())&1 == 1
			return bit != l.Neg()
		}
		satisfied := true
		for _, c := range in.clauses {
			cv := false
			for _, l := range c {
				if val(l) {
					cv = true
					break
				}
			}
			if !cv {
				satisfied = false
				break
			}
		}
		if !satisfied {
			continue
		}
		ok = true
		d := 0
		for _, l := range in.soft {
			if !val(l) {
				d++
			}
		}
		if d < best {
			best = d
		}
	}
	return best, ok
}

func randomInstance(rng *rand.Rand) *instance {
	in := &instance{nVars: 3 + rng.Intn(9)} // 3..11 variables
	nClauses := rng.Intn(3 * in.nVars)
	for i := 0; i < nClauses; i++ {
		width := 1 + rng.Intn(3)
		var c []sat.Lit
		for j := 0; j < width; j++ {
			c = append(c, sat.MkLit(sat.Var(rng.Intn(in.nVars)), rng.Intn(2) == 0))
		}
		in.clauses = append(in.clauses, c)
	}
	nSoft := 1 + rng.Intn(in.nVars)
	for i := 0; i < nSoft; i++ {
		in.soft = append(in.soft, sat.MkLit(sat.Var(rng.Intn(in.nVars)), rng.Intn(2) == 0))
	}
	return in
}

func checkModel(t *testing.T, in *instance, res Result) {
	t.Helper()
	for _, c := range in.clauses {
		cv := false
		for _, l := range c {
			if res.Model[l.Var()] != l.Neg() {
				cv = true
				break
			}
		}
		if !cv {
			t.Fatalf("returned model falsifies clause %v", c)
		}
	}
	d := 0
	for _, l := range in.soft {
		if res.Model[l.Var()] == l.Neg() {
			d++
		}
	}
	if d != res.Distance {
		t.Fatalf("reported distance %d but model has distance %d", res.Distance, d)
	}
}

// TestMinimizeMatchesBruteForce proves, on randomized instances, that
// both strategies reach the globally minimal edit distance (EXPERIMENTS
// §Fig. 8).
func TestMinimizeMatchesBruteForce(t *testing.T) {
	strategies := []Strategy{StrategyLinear, StrategyBinary}
	for seed := int64(0); seed < 80; seed++ {
		in := randomInstance(rand.New(rand.NewSource(seed)))
		want, feasible := in.bruteForce()
		for _, st := range strategies {
			res := Minimize(in.solver(), in.soft, Options{Strategy: st})
			if !feasible {
				if res.Status != sat.Unsat {
					t.Fatalf("seed %d %v: want Unsat, got %v", seed, st, res.Status)
				}
				continue
			}
			if res.Status != sat.Sat {
				t.Fatalf("seed %d %v: want Sat, got %v", seed, st, res.Status)
			}
			if !res.Optimal {
				t.Fatalf("seed %d %v: unbudgeted search must prove optimality", seed, st)
			}
			if res.Distance != want {
				t.Fatalf("seed %d %v: distance %d, brute force %d", seed, st, res.Distance, want)
			}
			checkModel(t, in, res)
		}
	}
}

// TestMinimizeSolverModelMatchesResult pins the invariant workspace
// decoding relies on: after Minimize, the solver's retained model is the
// minimised model, even when the final probe was UNSAT.
func TestMinimizeSolverModelMatchesResult(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		in := randomInstance(rand.New(rand.NewSource(seed)))
		for _, st := range []Strategy{StrategyLinear, StrategyBinary} {
			s := in.solver()
			res := Minimize(s, in.soft, Options{Strategy: st})
			if res.Status != sat.Sat {
				continue
			}
			got := s.Model()
			for v := 0; v < in.nVars; v++ {
				if got[v] != res.Model[v] {
					t.Fatalf("seed %d %v: solver model diverges from result at x%d", seed, st, v)
				}
			}
		}
	}
}

func TestMinimizeZeroSoftLits(t *testing.T) {
	s := sat.New()
	a := s.NewVar()
	s.AddClause(sat.PosLit(a))
	res := Minimize(s, nil, Options{})
	if res.Status != sat.Sat || res.Distance != 0 || !res.Optimal {
		t.Fatalf("want Sat/0/optimal, got %+v", res)
	}
	if res.Stats.Solves != 1 {
		t.Fatalf("no soft lits must cost exactly one solve, got %d", res.Stats.Solves)
	}
}

func TestMinimizeAlreadyOptimalFirstModel(t *testing.T) {
	s := sat.New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(sat.PosLit(a))
	s.AddClause(sat.NegLit(b))
	// Soft targets agree with the forced assignment: distance 0 at once.
	res := Minimize(s, []sat.Lit{sat.PosLit(a), sat.NegLit(b)}, Options{})
	if res.Status != sat.Sat || res.Distance != 0 || !res.Optimal {
		t.Fatalf("want Sat/0/optimal, got %+v", res)
	}
	if res.Stats.Solves != 1 {
		t.Fatalf("distance-0 first model must not search, got %d solves", res.Stats.Solves)
	}
}

func TestMinimizeUnsatHardConstraints(t *testing.T) {
	for _, st := range []Strategy{StrategyLinear, StrategyBinary} {
		s := sat.New()
		a := s.NewVar()
		s.AddClause(sat.PosLit(a))
		s.AddClause(sat.NegLit(a))
		res := Minimize(s, []sat.Lit{sat.PosLit(a)}, Options{Strategy: st})
		if res.Status != sat.Unsat {
			t.Fatalf("%v: want Unsat, got %v", st, res.Status)
		}
		if res.Model != nil {
			t.Fatalf("%v: Unsat result must carry no model", st)
		}
	}
}

// TestMinimizeContradictorySoftPair: l and ¬l both soft is legal; one of
// them is always missed, so the minimum distance is exactly 1.
func TestMinimizeContradictorySoftPair(t *testing.T) {
	for _, st := range []Strategy{StrategyLinear, StrategyBinary} {
		s := sat.New()
		a := s.NewVar()
		s.NewVar() // an unconstrained bystander
		res := Minimize(s, []sat.Lit{sat.PosLit(a), sat.NegLit(a)}, Options{Strategy: st})
		if res.Status != sat.Sat || res.Distance != 1 || !res.Optimal {
			t.Fatalf("%v: want Sat/1/optimal, got %+v", st, res)
		}
	}
}

// groupedInstance is the ablation workload from EXPERIMENTS.md: n soft
// targets wanting true, arranged in groups of 4 with pairwise at-most-one
// constraints, so exactly one per group can be satisfied and the minimal
// distance is n − n/4 (18 for n = 24).
func groupedInstance(n int) (*sat.Solver, []sat.Lit) {
	s := sat.New()
	soft := make([]sat.Lit, n)
	for i := 0; i < n; i++ {
		soft[i] = sat.PosLit(s.NewVar())
	}
	for g := 0; g < n; g += 4 {
		for i := g; i < g+4; i++ {
			for j := i + 1; j < g+4; j++ {
				s.AddClause(soft[i].Not(), soft[j].Not())
			}
		}
	}
	return s, soft
}

func TestMinimizeGroupedInstance(t *testing.T) {
	for _, st := range []Strategy{StrategyLinear, StrategyBinary} {
		s, soft := groupedInstance(24)
		res := Minimize(s, soft, Options{Strategy: st})
		if res.Status != sat.Sat || res.Distance != 18 || !res.Optimal {
			t.Fatalf("%v: want Sat/18/optimal, got status=%v d=%d optimal=%v",
				st, res.Status, res.Distance, res.Optimal)
		}
	}
}

// TestMinimizeMaxSolvesDegradesGracefully: an exhausted budget returns
// the best model found so far rather than hanging or failing.
func TestMinimizeMaxSolvesDegradesGracefully(t *testing.T) {
	for _, st := range []Strategy{StrategyLinear, StrategyBinary} {
		s, soft := groupedInstance(24)
		res := Minimize(s, soft, Options{Strategy: st, MaxSolves: 2})
		if res.Status != sat.Sat {
			t.Fatalf("%v: want Sat, got %v", st, res.Status)
		}
		if res.Stats.Solves > 2 {
			t.Fatalf("%v: budget 2 exceeded: %d solves", st, res.Stats.Solves)
		}
		if res.Distance < 18 {
			t.Fatalf("%v: distance %d below the true minimum", st, res.Distance)
		}
		if res.Optimal && res.Distance != 18 {
			t.Fatalf("%v: claimed optimality at %d", st, res.Distance)
		}
	}
}

func TestMinimizeOnStepAndStats(t *testing.T) {
	for _, st := range []Strategy{StrategyLinear, StrategyBinary} {
		s, soft := groupedInstance(8)
		var steps []Step
		res := Minimize(s, soft, Options{Strategy: st, OnStep: func(st Step) {
			steps = append(steps, st)
		}})
		if res.Status != sat.Sat || res.Distance != 6 {
			t.Fatalf("%v: want Sat/6, got %v/%d", st, res.Status, res.Distance)
		}
		if len(steps) != res.Stats.Solves {
			t.Fatalf("%v: OnStep fired %d times for %d solves", st, len(steps), res.Stats.Solves)
		}
		if len(res.Stats.Bounds) != res.Stats.Solves {
			t.Fatalf("%v: bound trajectory length %d != %d solves", st, len(res.Stats.Bounds), res.Stats.Solves)
		}
		if res.Stats.Bounds[0] != -1 {
			t.Fatalf("%v: first probe must be unbounded, got %d", st, res.Stats.Bounds[0])
		}
		for i, step := range steps {
			if step.Solve != i+1 {
				t.Fatalf("%v: step %d reported solve index %d", st, i, step.Solve)
			}
		}
	}
}

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want Strategy
		ok   bool
	}{
		{"", StrategyAuto, true},
		{"auto", StrategyAuto, true},
		{"linear", StrategyLinear, true},
		{"binary", StrategyBinary, true},
		{"quantum", StrategyAuto, false},
	}
	for _, c := range cases {
		got, ok := ParseStrategy(c.in)
		if got != c.want || ok != c.ok {
			t.Fatalf("ParseStrategy(%q) = %v,%v; want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestSetDefaultStrategy(t *testing.T) {
	prev := SetDefaultStrategy(StrategyBinary)
	defer SetDefaultStrategy(prev)
	s, soft := groupedInstance(8)
	var bounds []int
	res := Minimize(s, soft, Options{OnStep: func(st Step) { bounds = append(bounds, st.Bound) }})
	if res.Status != sat.Sat || res.Distance != 6 {
		t.Fatalf("want Sat/6, got %v/%d", res.Status, res.Distance)
	}
	// Binary's first bounded probe bisects (bound 3 from distance 6..8),
	// whereas linear's would be distance−1; seeing a bound < distance−1
	// proves the default was honoured.
	if len(bounds) < 2 || bounds[1] >= res.Distance {
		t.Fatalf("binary default not honoured; bounds %v", bounds)
	}
}

// The two EXPERIMENTS.md §Ablations benchmarks: 24 soft targets at
// minimum distance 18.
func benchmarkMinimize(b *testing.B, st Strategy) {
	for i := 0; i < b.N; i++ {
		s, soft := groupedInstance(24)
		res := Minimize(s, soft, Options{Strategy: st})
		if res.Status != sat.Sat || res.Distance != 18 || !res.Optimal {
			b.Fatalf("want Sat/18/optimal, got %v/%d/%v", res.Status, res.Distance, res.Optimal)
		}
	}
}

func BenchmarkMinimizeLinear(b *testing.B) { benchmarkMinimize(b, StrategyLinear) }
func BenchmarkMinimizeBinary(b *testing.B) { benchmarkMinimize(b, StrategyBinary) }

// TestMinimizeEncoderCache proves the cache changes nothing semantically
// (same optimal distance as brute force, run after run) while keeping the
// session's variable and clause counts flat across repeated minimisations
// — the property long-lived reused sessions depend on.
func TestMinimizeEncoderCache(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := randomInstance(rand.New(rand.NewSource(seed)))
		want, feasible := in.bruteForce()
		if !feasible {
			continue
		}
		s := in.solver()
		cache := NewEncoderCache()
		opts := Options{Retractable: true, Encoder: cache}
		var vars, clauses int
		for run := 0; run < 4; run++ {
			res := Minimize(s, in.soft, opts)
			if res.Status != sat.Sat || !res.Optimal {
				t.Fatalf("seed %d run %d: status %v optimal %v", seed, run, res.Status, res.Optimal)
			}
			if res.Distance != want {
				t.Fatalf("seed %d run %d: distance %d, brute force %d", seed, run, res.Distance, want)
			}
			checkModel(t, in, res)
			if run == 0 {
				vars, clauses = s.NumVars(), s.NumClauses()
				continue
			}
			if s.NumVars() != vars || s.NumClauses() != clauses {
				t.Fatalf("seed %d run %d: session grew (%d→%d vars, %d→%d clauses) despite encoder cache",
					seed, run, vars, s.NumVars(), clauses, s.NumClauses())
			}
		}
		if want > 0 && cache.Built() != 1 {
			t.Fatalf("seed %d: built %d encoders, want 1", seed, cache.Built())
		}
		if want > 0 && cache.Hits() != 3 {
			t.Fatalf("seed %d: %d cache hits, want 3", seed, cache.Hits())
		}
	}
}
