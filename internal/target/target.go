// Package target implements Pardinus-style target-oriented model
// finding over the incremental SAT layer: given a satisfiable clause
// set and a list of soft target literals (polarity = desired value),
// Minimize finds a model at minimal Hamming distance to the target.
//
// This is the solver mediation behind the paper's minimal-edit feedback
// (Sec. 4.3): each soft-constrained configuration knob contributes one
// target literal, and the model returned deviates from the
// administrator's preferences in as few knobs as possible.
//
// The distance bound is maintained by a truncated totalizer cardinality
// encoding over the mismatch literals (totalizer.go); the encoding is
// built once, truncated at the first model's distance, and every later
// bound tightening reuses its clauses. Two search strategies drive the
// bound: linear descent (solve, count, assert ≤ d−1, repeat) and binary
// search on the bound between 0 and the first distance. Both interact
// with the solver only through added clauses and assumptions, so they
// compose with prior incremental state (hardened assumptions, learnt
// clauses).
package target

import (
	"context"

	"muppet/internal/sat"
)

// StopReason explains why a Minimize run stopped before proving its
// result optimal. StopNone means the run completed: either optimality was
// proved or the hard clauses are unsatisfiable.
type StopReason int

const (
	// StopNone: the run completed normally.
	StopNone StopReason = iota
	// StopCancelled: Options.Context was cancelled.
	StopCancelled
	// StopDeadline: Options.Budget's wall-clock deadline passed.
	StopDeadline
	// StopConflicts: the run's conflict budget was exhausted.
	StopConflicts
	// StopPropagations: the run's propagation budget was exhausted.
	StopPropagations
	// StopMaxSolves: Options.MaxSolves probes were issued.
	StopMaxSolves
)

func (r StopReason) String() string {
	switch r {
	case StopCancelled:
		return "cancelled"
	case StopDeadline:
		return "deadline exceeded"
	case StopConflicts:
		return "conflict budget exhausted"
	case StopPropagations:
		return "propagation budget exhausted"
	case StopMaxSolves:
		return "solve budget exhausted"
	default:
		return "none"
	}
}

// FromSat converts a solver-level stop reason.
func FromSat(r sat.StopReason) StopReason {
	switch r {
	case sat.StopCancelled:
		return StopCancelled
	case sat.StopDeadline:
		return StopDeadline
	case sat.StopConflicts:
		return StopConflicts
	case sat.StopPropagations:
		return StopPropagations
	default:
		return StopNone
	}
}

// Strategy selects the distance-bound search schedule.
type Strategy int

const (
	// StrategyAuto uses the package default (see SetDefaultStrategy) —
	// the zero value, so callers passing Options{} follow the CLI flag.
	StrategyAuto Strategy = iota
	// StrategyLinear descends one SAT model at a time: solve, count
	// mismatches d, assert ≤ d−1, repeat until UNSAT. Each probe's bound
	// is asserted permanently, so learnt clauses compound.
	StrategyLinear
	// StrategyBinary bisects the bound between 0 and the first model's
	// distance, probing each midpoint under an assumption so failed
	// (UNSAT) probes retract cleanly.
	StrategyBinary
)

func (st Strategy) String() string {
	switch st {
	case StrategyLinear:
		return "linear"
	case StrategyBinary:
		return "binary"
	default:
		return "auto"
	}
}

// ParseStrategy converts a CLI flag value into a Strategy.
func ParseStrategy(s string) (Strategy, bool) {
	switch s {
	case "", "auto":
		return StrategyAuto, true
	case "linear":
		return StrategyLinear, true
	case "binary":
		return StrategyBinary, true
	}
	return StrategyAuto, false
}

// defaultStrategy resolves StrategyAuto. Linear descent is the default:
// the truncated totalizer already caps the search range at the first
// model's distance, and each SAT step makes real progress (EXPERIMENTS.md
// §Ablations).
var defaultStrategy = StrategyLinear

// SetDefaultStrategy changes what StrategyAuto resolves to (wired to the
// muppet CLI's -strategy flag). It returns the previous default.
func SetDefaultStrategy(st Strategy) Strategy {
	prev := defaultStrategy
	if st == StrategyAuto {
		st = StrategyLinear
	}
	defaultStrategy = st
	return prev
}

// Options tune one Minimize run. The zero value is the recommended
// default configuration.
type Options struct {
	// Strategy selects the bound search schedule; StrategyAuto follows
	// the package default.
	Strategy Strategy
	// MaxSolves, when positive, bounds the total number of Solve calls.
	// On exhaustion Minimize degrades gracefully: it returns the best
	// model found so far with Optimal == false instead of hanging.
	MaxSolves int
	// Context, when non-nil, cancels the run between and during probes.
	Context context.Context
	// Budget bounds the whole run's solver work (the conflict and
	// propagation caps are shared across probes, not per probe). On
	// exhaustion Minimize degrades like MaxSolves: best model so far,
	// Optimal == false, the cause recorded in Stats.Stop.
	Budget sat.Budget
	// Assumptions are threaded into every solver probe, so Minimize can
	// run against a retractable constraint set (selector-guarded groups)
	// instead of requiring the caller to harden it into clauses first.
	Assumptions []sat.Lit
	// Retractable makes linear descent cap the distance with assumption
	// literals instead of permanently asserted unit clauses, leaving the
	// clause set reusable for later solves on the same session. The
	// totalizer clauses themselves are still added permanently — they are
	// one-directional definitions, satisfiable under any assignment of the
	// inputs, so they never constrain later runs. Binary search is
	// retractable by construction.
	Retractable bool
	// Encoder, when non-nil, memoises the totalizer encoding across
	// Minimize calls on the same solver. Without it every call emits a
	// fresh O(n·d) cardinality encoding permanently into the session, so
	// a long-lived reused session accumulates dead clauses linearly in
	// the number of minimisations — the cache keeps the clause set flat.
	// Requires retractable probing (Retractable or StrategyBinary): a
	// permanently asserted cap would poison the cached encoder for every
	// later run.
	Encoder *EncoderCache
	// Canonical, after a proved-minimal Sat result, replaces the model
	// with the unique lexicographically-preferred minimal model: scanning
	// the soft literals in order, each is pinned to its desired polarity
	// whenever some model at the minimal distance, consistent with the
	// pins so far, allows it. The result then depends only on the clause
	// set — never on solver heuristic state (learnt clauses, activities,
	// saved phases) — so a warm, reused session returns byte-identical
	// models to a cold one, and repeated identical queries are idempotent
	// (what a long-lived mediation daemon must guarantee). Costs at most
	// ~2·distance extra assumption probes plus one confirming solve.
	// Requires retractable probing, like Encoder. Degraded (non-Optimal)
	// results are left as found: they are budget-starved already.
	Canonical bool
	// OnStep, when non-nil, observes every solver probe as it happens.
	OnStep func(Step)
}

// Step describes one solver probe during minimisation, for the OnStep
// observability hook.
type Step struct {
	Solve    int        // 1-based probe index
	Bound    int        // distance cap in effect (-1: unbounded first solve)
	Status   sat.Status // probe outcome
	Distance int        // model distance (valid when Status == Sat)
}

// Stats records the work one Minimize run performed.
type Stats struct {
	Solves    int   // SAT probes issued
	Conflicts int64 // solver conflicts attributable to this run
	Bounds    []int // bound trajectory, one entry per probe (-1 first)
	// Stop records why the run gave up before proving optimality
	// (StopNone when it ran to completion). When Result.Status is Sat and
	// Stop is not StopNone, Result.Model is the best model found before
	// the interruption and Result.Optimal is false — except with
	// Options.Canonical, where Stop may be set with Optimal still true:
	// the distance was proved minimal and only the canonicalization
	// tie-break was cut short.
	Stop StopReason
}

// Result is the outcome of a Minimize run.
type Result struct {
	// Status is Sat when a model was found, Unsat when the hard clauses
	// admit none, Unknown when the solver gave up before a first model.
	Status sat.Status
	// Model is the closest model found (valid when Status == Sat),
	// indexed by solver variable like sat.Solver.Model.
	Model []bool
	// Distance is the achieved Hamming distance from Model to the soft
	// targets (valid when Status == Sat).
	Distance int
	// Optimal reports whether Distance was proved globally minimal; it
	// is false only when a budget or cancellation stopped the search
	// early (the cause is in Stats.Stop).
	Optimal bool
	// Stats carries per-run search counters.
	Stats Stats
}

// Minimize searches for a model of s minimising the number of falsified
// soft literals (the Hamming distance to the target assignment each
// literal's polarity encodes). The solver is driven incrementally:
// clauses (totalizer + permanent bounds) may be added, but the final
// internal solver model always matches Result.Model, so callers that
// decode state from the solver afterwards (e.g. relational instance
// extraction) see the minimised model. Duplicate and even contradictory
// soft literals (l and ¬l both soft) are permitted; a contradictory pair
// simply contributes an unavoidable unit of distance.
func Minimize(s *sat.Solver, soft []sat.Lit, opts Options) Result {
	st := opts.Strategy
	if st == StrategyAuto {
		st = defaultStrategy
	}
	r := Result{}
	// Soft literals are probed as assumptions and read back from every
	// model; they must keep their identity through CNF preprocessing.
	for _, l := range soft {
		s.FreezeLit(l)
	}
	for _, l := range opts.Assumptions {
		s.FreezeLit(l)
	}
	startConflicts := s.Stats.Conflicts
	startProps := s.Stats.Propagations

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// The budget's caps cover the whole run, so each probe receives what
	// remains of them. remaining reports the exhausted cap, if any.
	remaining := func() (sat.Budget, StopReason) {
		b := sat.Budget{Deadline: opts.Budget.Deadline}
		if opts.Budget.MaxConflicts > 0 {
			left := opts.Budget.MaxConflicts - (s.Stats.Conflicts - startConflicts)
			if left <= 0 {
				return b, StopConflicts
			}
			b.MaxConflicts = left
		}
		if opts.Budget.MaxPropagations > 0 {
			left := opts.Budget.MaxPropagations - (s.Stats.Propagations - startProps)
			if left <= 0 {
				return b, StopPropagations
			}
			b.MaxPropagations = left
		}
		return b, StopNone
	}

	probe := func(bound int, assumps ...sat.Lit) sat.Status {
		b, stop := remaining()
		if stop != StopNone {
			r.Stats.Stop = stop
			return sat.Unknown
		}
		// Target-phase saving: re-seed the solver's saved phases from the
		// best model so far, then bias every soft knob toward its target
		// polarity. The tightened-bound search re-descends from the
		// previous near-optimal assignment (most decisions re-establish it
		// via phase saving) instead of re-exploring from the root — the
		// descent analogue of Pardinus' target-oriented polarity mode.
		if r.Model != nil {
			s.SetPhases(r.Model)
			for _, l := range soft {
				s.SetPhaseLit(l)
			}
		}
		all := assumps
		if len(opts.Assumptions) > 0 {
			all = make([]sat.Lit, 0, len(opts.Assumptions)+len(assumps))
			all = append(all, opts.Assumptions...)
			all = append(all, assumps...)
		}
		status := s.SolveCtx(ctx, b, all...)
		if status == sat.Unknown {
			r.Stats.Stop = FromSat(s.StopReason())
		}
		r.Stats.Solves++
		r.Stats.Bounds = append(r.Stats.Bounds, bound)
		step := Step{Solve: r.Stats.Solves, Bound: bound, Status: status}
		if status == sat.Sat {
			step.Distance = distance(s.Model(), soft)
		}
		if opts.OnStep != nil {
			opts.OnStep(step)
		}
		return status
	}
	budgetLeft := func() bool {
		if opts.MaxSolves > 0 && r.Stats.Solves >= opts.MaxSolves {
			r.Stats.Stop = StopMaxSolves
			return false
		}
		return true
	}
	finish := func() Result {
		r.Stats.Conflicts = s.Stats.Conflicts - startConflicts
		return r
	}

	// First model: unbounded solve against the hard clauses alone.
	if !budgetLeft() {
		r.Status = sat.Unknown
		return finish()
	}
	if st0 := probe(-1); st0 != sat.Sat {
		r.Status = st0
		return finish()
	}
	r.Status = sat.Sat
	r.Model = s.Model()
	r.Distance = distance(r.Model, soft)
	if r.Distance == 0 {
		// Already on target; no encoding or search needed.
		r.Optimal = true
		return finish()
	}

	// Mismatch indicators: soft literal false ⇔ one unit of distance.
	mism := make([]sat.Lit, len(soft))
	for i, l := range soft {
		mism[i] = l.Not()
	}
	retractable := opts.Retractable || st == StrategyBinary
	bound := r.Distance
	if opts.Canonical && retractable {
		// The canonical pass caps probes at the *achieved* distance, so
		// the counter must express ≤ d even when the first model is
		// already optimal (no descent happened): truncate one level later.
		bound++
	}
	var tot *totalizer
	if opts.Encoder != nil && retractable {
		tot = opts.Encoder.get(s, mism, bound)
	} else {
		tot = newTotalizer(s, mism, bound)
	}

	switch st {
	case StrategyBinary:
		binarySearch(s, soft, tot, &r, probe, budgetLeft)
	default:
		linearDescent(s, soft, tot, &r, probe, budgetLeft, opts.Retractable)
	}
	if opts.Canonical && retractable && r.Status == sat.Sat && r.Optimal && r.Distance > 0 {
		canonicalize(s, soft, tot, &r, probe, budgetLeft)
	}
	return finish()
}

// canonicalize pins the soft projection of a proved-minimal model to the
// unique lexicographically-preferred one (Options.Canonical). Every probe
// keeps the distance capped at the proved minimum, so the scan only ever
// chooses among equally-optimal models. Soft literals the current model
// already satisfies are pinned without a solver call; only currently
// mismatched literals cost a probe (Sat adopts a lex-better model, Unsat
// pins the mismatch as unavoidable), so the pass issues at most ~2·d
// probes. No final re-solve is needed: Unsat probes leave the solver's
// retained model untouched, so it always equals the adopted model.
func canonicalize(s *sat.Solver, soft []sat.Lit, tot *totalizer, r *Result,
	probe func(int, ...sat.Lit) sat.Status, budgetLeft func() bool) {
	pins := make([]sat.Lit, 0, len(soft)+1)
	if capLit, ok := tot.atMostLit(r.Distance); ok {
		pins = append(pins, capLit)
	} else if r.Distance < len(soft) {
		// Cannot happen: the truncation covers [0, firstDistance]; a cap is
		// absent only when every soft literal mismatches (vacuous). Fail
		// safe rather than probe uncapped.
		return
	}
	model := r.Model
scan:
	for _, l := range soft {
		if model[l.Var()] != l.Neg() {
			// Already at the desired polarity: consistent with the current
			// model, pin for free.
			pins = append(pins, l)
			continue
		}
		if !budgetLeft() {
			break
		}
		// Full-capacity slice so later appends to pins cannot alias.
		switch probe(r.Distance, append(pins[:len(pins):len(pins)], l)...) {
		case sat.Sat:
			model = s.Model()
			pins = append(pins, l)
		case sat.Unsat:
			pins = append(pins, l.Not())
		default:
			// Interrupted (Stats.Stop says why): keep the lex-best model
			// found so far. Optimal stays true — the distance is proved
			// minimal, only the tie-break is incomplete.
			break scan
		}
	}
	r.Model = model
	r.Distance = distance(model, soft)
}

// linearDescent repeatedly caps "distance ≤ current − 1" and re-solves;
// UNSAT proves the current distance minimal. The cap is a permanently
// asserted unit clause by default (learnt clauses compound across probes),
// or an assumption literal in retractable mode (the session stays clean).
func linearDescent(s *sat.Solver, soft []sat.Lit, tot *totalizer, r *Result,
	probe func(int, ...sat.Lit) sat.Status, budgetLeft func() bool, retractable bool) {
	for r.Distance > 0 {
		if !budgetLeft() {
			return // best-so-far, Optimal stays false
		}
		var caps []sat.Lit
		if retractable {
			capLit, ok := tot.atMostLit(r.Distance - 1)
			if !ok {
				// Beyond the truncated range; cannot happen since the
				// encoder covers [0, firstDistance), but fail safe.
				return
			}
			caps = []sat.Lit{capLit}
		} else if !tot.assertAtMost(s, r.Distance-1) {
			// Level-0 conflict while asserting the bound: nothing below
			// the current distance exists.
			r.Optimal = true
			return
		}
		switch probe(r.Distance-1, caps...) {
		case sat.Sat:
			r.Model = s.Model()
			r.Distance = distance(r.Model, soft)
		case sat.Unsat:
			r.Optimal = true
			// The solver's retained model is the last SAT one == r.Model.
			return
		default:
			// Interrupted mid-descent (Stats.Stop says why): degrade to
			// the best model found so far, Optimal stays false.
			return
		}
	}
	r.Optimal = true
}

// binarySearch bisects the bound in [lo, hi) where hi is the best
// achieved distance and lo the smallest not-yet-excluded distance.
// Probes assume the cap rather than asserting it, so an UNSAT probe
// leaves the clause set unconstrained for the next (higher) midpoint.
func binarySearch(s *sat.Solver, soft []sat.Lit, tot *totalizer, r *Result,
	probe func(int, ...sat.Lit) sat.Status, budgetLeft func() bool) {
	lo := 0
	for lo < r.Distance {
		mid := lo + (r.Distance-lo)/2 // mid < r.Distance: probe is a strict improvement
		capLit, ok := tot.atMostLit(mid)
		if !ok {
			// mid is beyond the truncated range; cannot happen since the
			// encoder covers [0, firstDistance), but fail safe.
			return
		}
		if !budgetLeft() {
			return
		}
		switch probe(mid, capLit) {
		case sat.Sat:
			r.Model = s.Model()
			r.Distance = distance(r.Model, soft) // ≤ mid < previous best
		case sat.Unsat:
			lo = mid + 1
		default:
			return
		}
	}
	r.Optimal = true
	// The last SAT probe produced the best model, so the solver's
	// retained model matches r.Model even if later probes were UNSAT.
}

// distance counts falsified soft literals under a model.
func distance(model []bool, soft []sat.Lit) int {
	d := 0
	for _, l := range soft {
		if model[l.Var()] == l.Neg() {
			d++
		}
	}
	return d
}
