package target

import (
	"math/rand"
	"testing"

	"muppet/internal/sat"
)

// softProjection reports, per soft literal, whether the model satisfies it.
func softProjection(model []bool, soft []sat.Lit) []bool {
	out := make([]bool, len(soft))
	for i, l := range soft {
		out[i] = model[l.Var()] != l.Neg()
	}
	return out
}

// lexBetter reports whether a is lexicographically preferred over b:
// at the first differing position, the projection satisfying its soft
// literal wins.
func lexBetter(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i]
		}
	}
	return false
}

// bruteForceLex enumerates every assignment and returns the soft
// projection of the lexicographically-preferred minimal-distance model,
// or ok=false when the clause set is unsatisfiable.
func (in *instance) bruteForceLex() (best []bool, ok bool) {
	bestDist := in.nVars + len(in.soft) + 1
	for m := 0; m < 1<<uint(in.nVars); m++ {
		val := func(l sat.Lit) bool {
			bit := m>>uint(l.Var())&1 == 1
			return bit != l.Neg()
		}
		satisfied := true
		for _, c := range in.clauses {
			cv := false
			for _, l := range c {
				if val(l) {
					cv = true
					break
				}
			}
			if !cv {
				satisfied = false
				break
			}
		}
		if !satisfied {
			continue
		}
		ok = true
		proj := make([]bool, len(in.soft))
		d := 0
		for i, l := range in.soft {
			proj[i] = val(l)
			if !proj[i] {
				d++
			}
		}
		switch {
		case d < bestDist:
			bestDist, best = d, proj
		case d == bestDist && lexBetter(proj, best):
			best = proj
		}
	}
	return best, ok
}

func sameBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCanonicalMatchesBruteForceLex checks that Options.Canonical returns
// exactly the lexicographically-preferred minimal model — the property
// that makes results independent of solver heuristic state — against
// brute-force enumeration, under both search strategies.
func TestCanonicalMatchesBruteForceLex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		in := randomInstance(rng)
		if len(in.soft) == 0 {
			continue
		}
		want, ok := in.bruteForceLex()
		if !ok {
			continue
		}
		for _, st := range []Strategy{StrategyLinear, StrategyBinary} {
			r := Minimize(in.solver(), in.soft, Options{
				Strategy: st, Retractable: true, Canonical: true,
			})
			if r.Status != sat.Sat || !r.Optimal {
				t.Fatalf("trial %d %v: status %v optimal %v", trial, st, r.Status, r.Optimal)
			}
			got := softProjection(r.Model, in.soft)
			if !sameBools(got, want) {
				t.Fatalf("trial %d %v: canonical projection %v, brute-force lex %v",
					trial, st, got, want)
			}
		}
	}
}

// TestCanonicalWarmEqualsCold pins the idempotence guarantee the
// mediation daemon builds on: repeated canonical Minimize runs on one
// long-lived solver session (accumulating learnt clauses and heuristic
// state) return the same soft projection as a cold run, every time.
func TestCanonicalWarmEqualsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(rng)
		if len(in.soft) == 0 {
			continue
		}
		if _, ok := in.bruteForce(); !ok {
			continue
		}
		cold := Minimize(in.solver(), in.soft, Options{Retractable: true, Canonical: true})
		want := softProjection(cold.Model, in.soft)

		s := in.solver()
		enc := NewEncoderCache()
		for round := 0; round < 4; round++ {
			r := Minimize(s, in.soft, Options{Retractable: true, Canonical: true, Encoder: enc})
			if r.Status != sat.Sat {
				t.Fatalf("trial %d round %d: status %v", trial, round, r.Status)
			}
			if got := softProjection(r.Model, in.soft); !sameBools(got, want) {
				t.Fatalf("trial %d round %d: warm projection %v, cold %v", trial, round, got, want)
			}
			if r.Distance != cold.Distance {
				t.Fatalf("trial %d round %d: warm distance %d, cold %d", trial, round, r.Distance, cold.Distance)
			}
		}
	}
}
