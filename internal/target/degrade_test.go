package target

import (
	"context"
	"testing"
	"time"

	"muppet/internal/sat"
)

// chainProblem builds a solver over n variables with clauses (¬x_i ∨ ¬x_{i+1})
// and soft targets wanting every variable true: the minimum distance is
// ⌊n/2⌋, reached only after several descent steps.
func chainProblem(n int) (*sat.Solver, []sat.Lit) {
	s := sat.New()
	vars := make([]sat.Var, n)
	soft := make([]sat.Lit, n)
	for i := range vars {
		vars[i] = s.NewVar()
		soft[i] = sat.PosLit(vars[i])
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(sat.NegLit(vars[i]), sat.NegLit(vars[i+1]))
	}
	return s, soft
}

func TestMinimizeCancelledMidDescentKeepsBestModel(t *testing.T) {
	s, soft := chainProblem(10)
	ctx, cancel := context.WithCancel(context.Background())
	var firstDistance int
	res := Minimize(s, soft, Options{
		Context: ctx,
		OnStep: func(st Step) {
			if st.Solve == 1 {
				firstDistance = st.Distance
				cancel() // interrupt before the descent can run
			}
		},
	})
	if res.Status != sat.Sat {
		t.Fatalf("status: got %v, want SAT (best-so-far)", res.Status)
	}
	if res.Model == nil {
		t.Fatal("cancelled run must keep the best model found so far")
	}
	if res.Optimal {
		t.Fatal("cancelled run must not claim optimality")
	}
	if res.Stats.Stop != StopCancelled {
		t.Fatalf("stop reason: got %v, want cancelled", res.Stats.Stop)
	}
	if res.Distance != firstDistance {
		t.Fatalf("distance: got %d, want first model's %d", res.Distance, firstDistance)
	}
}

func TestMinimizeExpiredDeadlineBeforeFirstModel(t *testing.T) {
	s, soft := chainProblem(6)
	res := Minimize(s, soft, Options{
		Budget: sat.Budget{Deadline: time.Now().Add(-time.Second)},
	})
	if res.Status != sat.Unknown {
		t.Fatalf("status: got %v, want UNKNOWN", res.Status)
	}
	if res.Model != nil || res.Optimal {
		t.Fatal("no model may be reported when the first probe never ran")
	}
	if res.Stats.Stop != StopDeadline {
		t.Fatalf("stop reason: got %v, want deadline", res.Stats.Stop)
	}
}

func TestMinimizeRunWideConflictBudget(t *testing.T) {
	// A one-conflict run budget cannot finish the descent on a chain
	// problem but must still return the first model.
	s, soft := chainProblem(12)
	res := Minimize(s, soft, Options{Budget: sat.Budget{MaxConflicts: 1}})
	if res.Status == sat.Unknown {
		t.Skip("first probe alone exhausted the budget")
	}
	if res.Optimal {
		// With such a tiny budget the descent cannot have completed
		// unless the very first model was already optimal.
		if res.Stats.Stop != StopNone {
			t.Fatalf("optimal result must have StopNone, got %v", res.Stats.Stop)
		}
		return
	}
	if res.Stats.Stop != StopConflicts {
		t.Fatalf("stop reason: got %v, want conflict budget", res.Stats.Stop)
	}
	if res.Model == nil {
		t.Fatal("interrupted descent must keep the best model")
	}
}

func TestMinimizeMaxSolvesRecordsStopReason(t *testing.T) {
	s, soft := chainProblem(12)
	res := Minimize(s, soft, Options{MaxSolves: 2})
	if res.Status != sat.Sat || res.Model == nil {
		t.Fatalf("MaxSolves run must keep its best model, got %v", res.Status)
	}
	if res.Optimal {
		t.Fatal("two probes cannot prove optimality on this instance")
	}
	if res.Stats.Stop != StopMaxSolves {
		t.Fatalf("stop reason: got %v, want solve budget exhausted", res.Stats.Stop)
	}
}

func TestMinimizeUnbudgetedStillOptimal(t *testing.T) {
	s, soft := chainProblem(9)
	res := Minimize(s, soft, Options{})
	if res.Status != sat.Sat || !res.Optimal {
		t.Fatalf("unbudgeted run must complete: %+v", res)
	}
	if res.Stats.Stop != StopNone {
		t.Fatalf("completed run must have StopNone, got %v", res.Stats.Stop)
	}
	if want := 9 / 2; res.Distance != want {
		t.Fatalf("distance: got %d, want %d", res.Distance, want)
	}
}
