package target

import "muppet/internal/sat"

// totalizer is a truncated totalizer cardinality encoder (Bailleux &
// Boufkhad) over a set of input literals. Its outputs form a unary
// counter: outputs[k-1] is forced true whenever at least k inputs are
// true, for k up to the truncation bound. Only the ≥-direction clauses
// are emitted — exactly what upper-bound tightening needs — and the tree
// is truncated at the initial upper bound, so every clause added here is
// reused verbatim across later bound tightenings (the Pardinus-style
// incremental use: the bound only ever decreases during minimisation).
type totalizer struct {
	outputs []sat.Lit
}

// newTotalizer builds the encoder for the given inputs, truncated at
// bound outputs. It adds O(n·bound) clauses to the solver. A nil encoder
// (no inputs or non-positive bound) is returned as an empty totalizer on
// which atMost is a no-op.
func newTotalizer(s *sat.Solver, inputs []sat.Lit, bound int) *totalizer {
	t := &totalizer{}
	if len(inputs) == 0 || bound <= 0 {
		return t
	}
	if bound > len(inputs) {
		bound = len(inputs)
	}
	t.outputs = build(s, inputs, bound)
	return t
}

// build recursively merges the unary counters of the two halves.
func build(s *sat.Solver, lits []sat.Lit, m int) []sat.Lit {
	if len(lits) == 1 {
		return lits[:1:1]
	}
	half := len(lits) / 2
	return merge(s, build(s, lits[:half], m), build(s, lits[half:], m), m)
}

// merge combines two child counters a and b into a parent counter of
// length min(len(a)+len(b), m), emitting aᵢ ∧ bⱼ → outᵢ₊ⱼ for i+j ≤ m.
// Combinations exceeding m need no clause: a count beyond the truncation
// still forces out_m through the (i′,j′) pair with i′+j′ = m, because the
// child counters are themselves monotone under these clauses.
func merge(s *sat.Solver, a, b []sat.Lit, m int) []sat.Lit {
	n := len(a) + len(b)
	if n > m {
		n = m
	}
	out := make([]sat.Lit, n)
	for k := range out {
		v := s.NewVar()
		// Counter outputs become assumption/cap literals later; keep them
		// out of preprocessing's reach.
		s.Freeze(v)
		out[k] = sat.PosLit(v)
	}
	for i := 0; i <= len(a); i++ {
		for j := 0; j <= len(b); j++ {
			k := i + j
			if k == 0 || k > n {
				continue
			}
			switch {
			case i == 0:
				s.AddClause(b[j-1].Not(), out[k-1])
			case j == 0:
				s.AddClause(a[i-1].Not(), out[k-1])
			default:
				s.AddClause(a[i-1].Not(), b[j-1].Not(), out[k-1])
			}
		}
	}
	return out
}

// atMostLit returns a literal that, when true, caps the input count at k.
// Valid for 0 ≤ k < len(outputs) + truncation slack; callers only probe
// below the truncation bound. ok is false when the cap is outside the
// encoded range (k ≥ number of encoded outputs), i.e. no constraint.
func (t *totalizer) atMostLit(k int) (sat.Lit, bool) {
	if k < 0 || k >= len(t.outputs) {
		return sat.LitUndef, false
	}
	return t.outputs[k].Not(), true
}

// assertAtMost permanently caps the input count at k (linear descent).
// It reports false when the solver derived level-0 unsatisfiability,
// which proves no model below the current bound exists.
func (t *totalizer) assertAtMost(s *sat.Solver, k int) bool {
	l, ok := t.atMostLit(k)
	if !ok {
		return true
	}
	return s.AddClause(l)
}
