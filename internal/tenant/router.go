package tenant

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"muppet/internal/yamllite"
)

// PoolKind classifies a named solver pool.
type PoolKind string

const (
	// PoolWarm solves on a warm cache checked out of the tenant's
	// CachePool — the incremental fast path.
	PoolWarm PoolKind = "warm"
	// PoolFresh solves on a one-shot workspace with no session reuse —
	// slower, but immune to any pathology a long-lived session could
	// accumulate.
	PoolFresh PoolKind = "fresh"
	// PoolParallel races its child pools; the first decisive verdict wins
	// and the losers are cancelled.
	PoolParallel PoolKind = "parallel"
	// PoolSequential tries its child pools in order, falling through to
	// the next when a child comes back indeterminate (Unknown, timeout)
	// or errors.
	PoolSequential PoolKind = "sequential"
)

// PoolSpec declares one named pool in a router config.
type PoolSpec struct {
	Kind PoolKind
	// Timeout caps the pool's subtree; 0 inherits the request budget.
	Timeout time.Duration
	// Children names the sub-pools of a parallel/sequential pool, in
	// preference order. Must be empty for leaf kinds.
	Children []string
}

// RouterConfig is the parsed shape of a router YAML file: named pools
// plus a method→pool dispatch table (the "default" method catches
// everything unlisted). The config language is modelled on kubo's
// delegated content routing: small named units composed by parallel and
// sequential combinators, selected per method.
type RouterConfig struct {
	Pools   map[string]PoolSpec
	Methods map[string]string
}

// Plan is one compiled dispatch tree: what a method's request actually
// runs. Leaves carry solving strategy; interior nodes carry composition.
type Plan struct {
	Name     string
	Kind     PoolKind
	Timeout  time.Duration
	Children []*Plan
}

// Router maps workflow methods to compiled plans.
type Router struct {
	plans  map[string]*Plan
	def    *Plan
	source string // description for /tenants introspection
}

// PlanFor returns the plan serving the given method.
func (r *Router) PlanFor(method string) *Plan {
	if p, ok := r.plans[method]; ok {
		return p
	}
	return r.def
}

// Source describes where the router came from ("builtin:warm" or a file
// path).
func (r *Router) Source() string { return r.source }

// Methods lists the explicitly routed methods, sorted.
func (r *Router) Methods() []string {
	out := make([]string, 0, len(r.plans))
	for m := range r.plans {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// DefaultRouter routes every method to a single warm-cache pool — the
// behaviour of the daemon before routing existed.
func DefaultRouter() *Router {
	return &Router{
		plans:  map[string]*Plan{},
		def:    &Plan{Name: "warm-cache", Kind: PoolWarm},
		source: "builtin:warm",
	}
}

// ParseRouterConfig parses router YAML:
//
//	pools:
//	  warm-cache:
//	    type: warm
//	  fresh-portfolio:
//	    type: fresh
//	  race:
//	    type: parallel
//	    timeout: 20s
//	    pools: [warm-cache, fresh-portfolio]
//	methods:
//	  reconcile: race
//	  default: warm-cache
func ParseRouterConfig(data []byte) (RouterConfig, error) {
	cfg := RouterConfig{Pools: map[string]PoolSpec{}, Methods: map[string]string{}}
	v, err := yamllite.Parse(data)
	if err != nil {
		return cfg, err
	}
	poolsV, ok := yamllite.Get(v, "pools")
	if !ok {
		return cfg, fmt.Errorf("router: missing pools section")
	}
	pools, ok := yamllite.AsMap(poolsV)
	if !ok {
		return cfg, fmt.Errorf("router: pools is %T, want mapping", poolsV)
	}
	for name, pv := range pools {
		pm, ok := yamllite.AsMap(pv)
		if !ok {
			return cfg, fmt.Errorf("router: pool %q is %T, want mapping", name, pv)
		}
		var spec PoolSpec
		kind, err := yamllite.StringAt(pv, "type")
		if err != nil {
			return cfg, fmt.Errorf("router: pool %q: %w", name, err)
		}
		spec.Kind = PoolKind(kind)
		if _, present := pm["timeout"]; present {
			ts, err := yamllite.StringAt(pv, "timeout")
			if err != nil {
				return cfg, fmt.Errorf("router: pool %q: %w", name, err)
			}
			d, err := time.ParseDuration(ts)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("router: pool %q: bad timeout %q", name, ts)
			}
			spec.Timeout = d
		}
		if spec.Children, err = yamllite.StringListAt(pv, "pools"); err != nil {
			return cfg, fmt.Errorf("router: pool %q: %w", name, err)
		}
		for k := range pm {
			if k != "type" && k != "timeout" && k != "pools" {
				return cfg, fmt.Errorf("router: pool %q: unknown key %q", name, k)
			}
		}
		cfg.Pools[name] = spec
	}
	if mv, ok := yamllite.Get(v, "methods"); ok {
		if cfg.Methods, err = yamllite.StringMapAt(v, "methods"); err != nil {
			return cfg, err
		}
		if _, ok := yamllite.AsMap(mv); !ok {
			return cfg, fmt.Errorf("router: methods is %T, want mapping", mv)
		}
	}
	return cfg, nil
}

// NewRouter compiles and validates a config: every kind known, leaves
// childless, combinators non-empty, every reference resolvable, no
// cycles, and every method mapped to a declared pool. Errors here are
// config errors, reported at startup rather than per request.
func NewRouter(cfg RouterConfig) (*Router, error) {
	for name, spec := range cfg.Pools {
		switch spec.Kind {
		case PoolWarm, PoolFresh:
			if len(spec.Children) > 0 {
				return nil, fmt.Errorf("router: pool %q: %s pools take no sub-pools", name, spec.Kind)
			}
		case PoolParallel, PoolSequential:
			if len(spec.Children) == 0 {
				return nil, fmt.Errorf("router: pool %q: %s pool needs sub-pools", name, spec.Kind)
			}
			for _, c := range spec.Children {
				if _, ok := cfg.Pools[c]; !ok {
					return nil, fmt.Errorf("router: pool %q references unknown pool %q", name, c)
				}
			}
		default:
			return nil, fmt.Errorf("router: pool %q: unknown type %q (want warm|fresh|parallel|sequential)", name, spec.Kind)
		}
	}

	// Compile each named pool into a Plan, memoised; the visiting state
	// doubles as the cycle detector.
	compiled := map[string]*Plan{}
	visiting := map[string]bool{}
	var compile func(name string) (*Plan, error)
	compile = func(name string) (*Plan, error) {
		if p, ok := compiled[name]; ok {
			return p, nil
		}
		if visiting[name] {
			return nil, fmt.Errorf("router: pool %q participates in a cycle", name)
		}
		visiting[name] = true
		defer delete(visiting, name)
		spec := cfg.Pools[name]
		p := &Plan{Name: name, Kind: spec.Kind, Timeout: spec.Timeout}
		for _, c := range spec.Children {
			cp, err := compile(c)
			if err != nil {
				return nil, err
			}
			p.Children = append(p.Children, cp)
		}
		compiled[name] = p
		return p, nil
	}
	for name := range cfg.Pools {
		if _, err := compile(name); err != nil {
			return nil, err
		}
	}

	r := &Router{plans: map[string]*Plan{}}
	for method, pool := range cfg.Methods {
		p, ok := compiled[pool]
		if !ok {
			return nil, fmt.Errorf("router: method %q routed to unknown pool %q", method, pool)
		}
		if method == "default" {
			r.def = p
		} else {
			r.plans[method] = p
		}
	}
	if r.def == nil {
		if len(cfg.Methods) > 0 {
			return nil, fmt.Errorf("router: methods section needs a default entry")
		}
		// No methods section: a single declared pool routes everything.
		if len(cfg.Pools) != 1 {
			return nil, fmt.Errorf("router: without a methods section, declare exactly one pool")
		}
		for name := range cfg.Pools {
			r.def = compiled[name]
		}
	}
	return r, nil
}

// LoadRouter reads, parses and compiles a router YAML file.
func LoadRouter(path string) (*Router, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := ParseRouterConfig(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r.source = path
	return r, nil
}

// Leaf identifies one leaf execution to the RunPlan callback.
type Leaf struct {
	Name string
	Kind PoolKind
}

// Attempt records one leaf execution inside a plan, for logs and
// metrics: which pool ran, whether it produced a decisive verdict, and
// how long it took.
type Attempt[R any] struct {
	Pool     string
	Kind     PoolKind
	Result   R
	Err      error
	Decisive bool
	Elapsed  time.Duration
}

// attemptLog collects attempts across the goroutines of a parallel plan.
type attemptLog[R any] struct {
	mu  sync.Mutex
	all []Attempt[R]
}

func (a *attemptLog[R]) add(at Attempt[R]) {
	a.mu.Lock()
	a.all = append(a.all, at)
	a.mu.Unlock()
}

// RunPlan executes a plan: run is called for each leaf reached (with the
// leaf's timeout applied to its context), and decisive classifies a
// result as final. Sequential nodes fall through to the next child on an
// error or indeterminate result; parallel nodes race their children and
// cancel the losers as soon as any child is decisive. When nothing is
// decisive, the first non-error result in declaration order is returned
// (so racing a warm pool against a fresh one degrades deterministically),
// then the first error. The returned attempts list the leaves that ran;
// a cancelled loser of a parallel race may still be winding down when the
// winner returns, in which case its attempt is not in the snapshot.
func RunPlan[R any](ctx context.Context, plan *Plan, run func(ctx context.Context, leaf Leaf) (R, error), decisive func(R) bool) (R, []Attempt[R], error) {
	log := &attemptLog[R]{}
	res, err := runPlan(ctx, plan, run, decisive, log)
	log.mu.Lock()
	attempts := append([]Attempt[R](nil), log.all...)
	log.mu.Unlock()
	return res, attempts, err
}

func runPlan[R any](ctx context.Context, plan *Plan, run func(ctx context.Context, leaf Leaf) (R, error), decisive func(R) bool, log *attemptLog[R]) (R, error) {
	var zero R
	if plan.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, plan.Timeout)
		defer cancel()
	}
	switch plan.Kind {
	case PoolWarm, PoolFresh:
		start := time.Now()
		res, err := run(ctx, Leaf{Name: plan.Name, Kind: plan.Kind})
		at := Attempt[R]{
			Pool: plan.Name, Kind: plan.Kind, Result: res, Err: err,
			Elapsed: time.Since(start),
		}
		at.Decisive = err == nil && decisive(res)
		log.add(at)
		return res, err

	case PoolSequential:
		var lastRes R
		var lastErr error
		haveRes := false
		for _, child := range plan.Children {
			res, err := runPlan(ctx, child, run, decisive, log)
			if err == nil && decisive(res) {
				return res, nil
			}
			if err != nil {
				lastErr = err
			} else {
				lastRes, haveRes = res, true
			}
			if ctx.Err() != nil {
				break // the whole plan's budget is gone; stop falling through
			}
		}
		if haveRes {
			return lastRes, nil
		}
		if lastErr != nil {
			return zero, lastErr
		}
		return zero, fmt.Errorf("router: pool %q ran no children", plan.Name)

	case PoolParallel:
		raceCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		type outcome struct {
			idx int
			res R
			err error
		}
		ch := make(chan outcome, len(plan.Children))
		for i, child := range plan.Children {
			go func(i int, child *Plan) {
				res, err := runPlan(raceCtx, child, run, decisive, log)
				ch <- outcome{i, res, err}
			}(i, child)
		}
		results := make([]*outcome, len(plan.Children))
		for range plan.Children {
			o := <-ch
			if o.err == nil && decisive(o.res) {
				cancel() // losers see cancellation; their goroutines drain into the buffer
				return o.res, nil
			}
			oc := o
			results[oc.idx] = &oc
		}
		for _, o := range results {
			if o.err == nil {
				return o.res, nil
			}
		}
		return zero, results[0].err

	default:
		return zero, fmt.Errorf("router: unknown pool kind %q", plan.Kind)
	}
}
