package tenant

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"muppet/internal/yamllite"
)

// ManifestName is the per-tenant file a tenant directory scan looks for:
// `<dir>/<tenant-id>/tenant.yaml`.
const ManifestName = "tenant.yaml"

// Manifest is one tenant's declared inputs — the flat tenant.yaml a
// tenant directory holds per tenant. Fields mirror the daemon's
// single-bundle flags, so a tenant manifest is exactly "the flags this
// tenant would have been started with":
//
//	files: [mesh.yaml, policies.yaml]   # bundle YAML, relative to the manifest
//	k8s-goals: goals-k8s.csv            # optional
//	istio-goals: goals-istio.csv        # optional
//	k8s-offer: soft                     # optional; fixed|soft|holes
//	istio-offer: holes                  # optional
//	ports: [8080, 9090]                 # optional extra inventory ports
type Manifest struct {
	// Dir is the directory the manifest was loaded from; relative input
	// paths are resolved against it.
	Dir   string
	Files []string // resolved bundle YAML paths (required, non-empty)

	K8sGoals   string // resolved CSV path, "" = none
	IstioGoals string // resolved CSV path, "" = none
	K8sOffer   string // fixed|soft|holes, "" = fixed
	IstioOffer string
	Ports      []int
}

// manifestKeys are the recognised top-level keys; anything else is a
// typo and rejected, because a silently ignored key in a tenant manifest
// means a tenant serving with the wrong goals.
var manifestKeys = map[string]bool{
	"files": true, "k8s-goals": true, "istio-goals": true,
	"k8s-offer": true, "istio-offer": true, "ports": true,
}

// ParseManifest parses tenant.yaml content, resolving relative paths
// against dir.
func ParseManifest(data []byte, dir string) (*Manifest, error) {
	v, err := yamllite.Parse(data)
	if err != nil {
		return nil, err
	}
	root, ok := yamllite.AsMap(v)
	if !ok {
		return nil, fmt.Errorf("tenant manifest: top level is %T, want mapping", v)
	}
	for k := range root {
		if !manifestKeys[k] {
			return nil, fmt.Errorf("tenant manifest: unknown key %q", k)
		}
	}
	m := &Manifest{Dir: dir}
	files, err := yamllite.StringListAt(v, "files")
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("tenant manifest: files is required")
	}
	for _, f := range files {
		m.Files = append(m.Files, m.resolve(f))
	}
	for key, dst := range map[string]*string{
		"k8s-goals": &m.K8sGoals, "istio-goals": &m.IstioGoals,
		"k8s-offer": &m.K8sOffer, "istio-offer": &m.IstioOffer,
	} {
		if _, present := root[key]; !present {
			continue
		}
		s, err := yamllite.StringAt(v, key)
		if err != nil {
			return nil, err
		}
		*dst = s
	}
	m.K8sGoals = m.resolve(m.K8sGoals)
	m.IstioGoals = m.resolve(m.IstioGoals)
	if m.Ports, err = yamllite.IntListAt(v, "ports"); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Manifest) resolve(p string) string {
	if p == "" || filepath.IsAbs(p) || m.Dir == "" {
		return p
	}
	return filepath.Join(m.Dir, p)
}

// LoadManifest reads and parses one tenant.yaml.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ParseManifest(data, filepath.Dir(path))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// InputPaths lists every file the manifest's state is built from — the
// manifest itself plus all referenced inputs — in a stable order. This is
// the set a reload fingerprint must cover.
func (m *Manifest) InputPaths(manifestPath string) []string {
	paths := []string{manifestPath}
	paths = append(paths, m.Files...)
	if m.K8sGoals != "" {
		paths = append(paths, m.K8sGoals)
	}
	if m.IstioGoals != "" {
		paths = append(paths, m.IstioGoals)
	}
	return paths
}

// PortsCSV renders the extra ports the way the CLI flag spells them.
func (m *Manifest) PortsCSV() string {
	parts := make([]string, len(m.Ports))
	for i, p := range m.Ports {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ",")
}

// ValidID reports whether id is acceptable as a tenant ID (and therefore
// as a URL path segment and a metrics label): letters, digits, dot, dash
// and underscore, not starting with a dot, at most 64 bytes.
func ValidID(id string) bool {
	if id == "" || len(id) > 64 || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

// ScanDir enumerates a tenant directory: every subdirectory holding a
// tenant.yaml is a tenant, named by the subdirectory. Entries with
// invalid IDs are skipped (dot-directories, editors' droppings);
// subdirectories without a manifest are not tenants.
func ScanDir(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	found := make(map[string]string)
	for _, e := range entries {
		if !e.IsDir() || !ValidID(e.Name()) {
			continue
		}
		mp := filepath.Join(dir, e.Name(), ManifestName)
		if _, err := os.Stat(mp); err != nil {
			continue
		}
		found[e.Name()] = mp
	}
	return found, nil
}

// Fingerprint hashes the contents of the given files into a hex digest
// that changes whenever any input's content (or the set of inputs)
// changes. Missing files hash as absent rather than failing: the load
// step owns reporting them properly.
func Fingerprint(paths ...string) string {
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range sorted {
		h.Write([]byte(p))
		h.Write([]byte{0})
		data, err := os.ReadFile(p)
		if err != nil {
			h.Write([]byte("!absent"))
			continue
		}
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(data)))
		h.Write(lenBuf[:])
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))
}
