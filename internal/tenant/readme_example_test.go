package tenant

import "testing"

// TestReadmeRouterExample pins the README's router YAML to the parser.
func TestReadmeRouterExample(t *testing.T) {
	const y = `pools:
  warm-cache:
    type: warm
  fresh-capped:
    type: fresh
    timeout: 10s
  racy:
    type: parallel
    pools: [warm-cache, fresh-capped]
methods:
  default: warm-cache
  reconcile: racy
`
	cfg, err := ParseRouterConfig([]byte(y))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p := r.PlanFor("reconcile"); p.Kind != PoolParallel || len(p.Children) != 2 {
		t.Fatalf("reconcile plan: %+v", p)
	}
	if p := r.PlanFor("check"); p.Kind != PoolWarm {
		t.Fatalf("default plan: %+v", p)
	}
}
