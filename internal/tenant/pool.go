// Package tenant turns the single-bundle mediation daemon into a
// multi-tenant one. It provides three composable pieces:
//
//   - a Registry mapping tenant ID → an immutable revision of serving
//     state, with atomic hot reload (load → validate → swap; the old
//     revision drains) and directory rescan;
//   - per-tenant pools of warm solving caches (CachePool) under one
//     global memory budget (Ledger) with cross-tenant LRU eviction, so a
//     cold tenant cannot hold RAM forever and a hot tenant cannot starve
//     the rest into thrash;
//   - a composable solver-pool Router in the style of kubo's delegated
//     routing: named leaf pools (warm-cache, fresh one-shot) composed by
//     parallel (first verdict wins, losers cancelled) and sequential
//     (fallback on indeterminate) meta-pools with per-pool timeouts,
//     selected per workflow method.
//
// The package is generic over the serving-state type so it stays free of
// the HTTP layer; internal/server instantiates it with *server.State.
package tenant

import (
	"sync"

	"muppet"
)

// Ledger is the global memory budget over every tenant's idle warm
// caches. All pools carved from one ledger share one byte budget; when
// the idle total exceeds it, the globally least-recently-used sessions
// are evicted regardless of which tenant owns them. Caches checked out
// to a worker are not counted — that transient working set is bounded by
// the server's admission concurrency, not by this ledger.
type Ledger struct {
	budget int64 // bytes; 0 = unlimited

	mu        sync.Mutex
	pools     []*CachePool
	total     int64 // accounted idle bytes across all pools
	clock     int64 // logical time stamping idle caches for global LRU
	evictions int64 // sessions evicted for budget pressure
}

// NewLedger creates a ledger enforcing the given byte budget over the
// idle caches of every pool carved from it. budgetBytes ≤ 0 disables
// eviction (unlimited).
func NewLedger(budgetBytes int64) *Ledger {
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	return &Ledger{budget: budgetBytes}
}

// Budget reports the configured byte budget (0 = unlimited).
func (l *Ledger) Budget() int64 { return l.budget }

// TotalBytes reports the accounted bytes of all idle caches.
func (l *Ledger) TotalBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Evictions reports the total sessions evicted for budget pressure.
func (l *Ledger) Evictions() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}

// NewPool carves a new per-tenant cache pool out of the ledger.
func (l *Ledger) NewPool(tenant string) *CachePool {
	p := &CachePool{ledger: l, tenant: tenant}
	l.mu.Lock()
	l.pools = append(l.pools, p)
	l.mu.Unlock()
	return p
}

// idleCache is one checked-in warm cache together with the accounting
// snapshot taken at checkin. The stats snapshot lets the metrics scrape
// path aggregate without touching a cache that may be checked out (and
// single-goroutine) at scrape time.
type idleCache struct {
	cache    *muppet.SolveCache
	bytes    int64
	lastUsed int64
	stats    muppet.ReuseStats
	workers  []muppet.WorkerStats
}

// CachePool is one tenant's pool of warm solving caches. Checkout hands
// a worker exclusive ownership of a cache (SolveCache is
// single-goroutine); Checkin returns it warm for the next request and
// settles the byte accounting with the shared ledger, evicting the
// globally least-recently-used sessions if the fleet is over budget.
//
// A pool belongs to one tenant revision. When the revision is replaced
// (hot reload) the pool is retired: its idle caches are dropped — they
// key sessions by the old revision's compiled system, so they could
// never hit again — and caches still checked out by in-flight requests
// are discarded at checkin. That is the whole drain protocol: old
// requests finish on the state they started with, and the memory follows
// them out.
type CachePool struct {
	ledger *Ledger
	tenant string

	// All mutable state below is guarded by ledger.mu: eviction is a
	// cross-pool scan, so one lock for the whole fleet keeps it simple
	// and the critical sections are short (stats are computed outside).
	free      []*idleCache
	retired   bool
	checkouts int64
	misses    int64
	evictions int64
	// retiredStats accumulates the reuse counters of caches dropped from
	// this pool (evicted or retired), keeping the pool's aggregate
	// counters monotonic while the live caches come and go.
	retiredStats muppet.ReuseStats
}

// Tenant reports the tenant ID the pool serves.
func (p *CachePool) Tenant() string { return p.tenant }

// Checkout hands the caller exclusive ownership of a warm cache (most
// recently used first, to keep the hottest sessions hot), or a fresh one
// when the pool is empty or retired. Pair with Checkin.
func (p *CachePool) Checkout() *muppet.SolveCache {
	l := p.ledger
	l.mu.Lock()
	p.checkouts++
	if n := len(p.free); n > 0 && !p.retired {
		ic := p.free[n-1]
		p.free = p.free[:n-1]
		l.total -= ic.bytes
		l.mu.Unlock()
		return ic.cache
	}
	p.misses++
	l.mu.Unlock()
	return muppet.NewSolveCache()
}

// Checkin returns a checked-out cache to the pool, re-measures it, and
// evicts across the fleet until the ledger is back under budget. On a
// retired pool the cache is discarded instead: its sessions belong to a
// replaced tenant revision.
func (p *CachePool) Checkin(c *muppet.SolveCache) {
	if c == nil {
		return
	}
	// Measure outside the lock: the caller still owns the cache, and
	// Stats/ApproxBytes walk every live session.
	bytes := c.ApproxBytes()
	stats := c.Stats()
	workers := c.Workers()

	l := p.ledger
	l.mu.Lock()
	defer l.mu.Unlock()
	if p.retired {
		p.retiredStats.Add(stats)
		return
	}
	l.clock++
	p.free = append(p.free, &idleCache{
		cache: c, bytes: bytes, lastUsed: l.clock, stats: stats, workers: workers,
	})
	l.total += bytes
	l.evictLocked()
}

// evictLocked drops globally least-recently-used idle sessions until the
// ledger is under budget. It evicts one session at a time (via
// SolveCache.Evict) so a tenant with several warm shapes sheds its
// coldest shape first; a cache with no sessions left is dropped whole.
// Called with ledger.mu held.
func (l *Ledger) evictLocked() {
	for l.budget > 0 && l.total > l.budget {
		var vp *CachePool
		vi := -1
		for _, p := range l.pools {
			for i, ic := range p.free {
				if vi < 0 || ic.lastUsed < vp.free[vi].lastUsed {
					vp, vi = p, i
				}
			}
		}
		if vi < 0 {
			return // nothing idle left to evict
		}
		ic := vp.free[vi]
		n := int64(ic.cache.Evict(1))
		vp.evictions += n
		l.evictions += n
		if ic.cache.Len() == 0 {
			vp.free = append(vp.free[:vi], vp.free[vi+1:]...)
			l.total -= ic.bytes
			vp.retiredStats.Add(ic.cache.Stats())
			continue
		}
		nb := ic.cache.ApproxBytes()
		l.total += nb - ic.bytes
		ic.bytes = nb
		ic.stats = ic.cache.Stats()
	}
}

// Retire marks the pool dead and releases its idle caches. Checked-out
// caches are discarded when their requests check them back in.
func (p *CachePool) Retire() {
	l := p.ledger
	l.mu.Lock()
	defer l.mu.Unlock()
	if p.retired {
		return
	}
	p.retired = true
	for _, ic := range p.free {
		l.total -= ic.bytes
		p.retiredStats.Add(ic.stats)
	}
	p.free = nil
	for i, q := range l.pools {
		if q == p {
			l.pools = append(l.pools[:i], l.pools[i+1:]...)
			break
		}
	}
}

// PoolStats is a pool's observability snapshot.
type PoolStats struct {
	Tenant    string
	IdleCount int   // idle caches waiting for a checkout
	Bytes     int64 // accounted bytes of those idle caches
	Checkouts int64
	Misses    int64 // checkouts that had to build a fresh cache
	Evictions int64 // sessions evicted from this pool for budget pressure
	// Reuse aggregates the solver-reuse counters across the pool's
	// caches, including ones already dropped (so counters stay
	// monotonic across evictions).
	Reuse muppet.ReuseStats
	// Workers is the most recent portfolio-solve worker report seen at a
	// checkin, nil when solves have been sequential.
	Workers []muppet.WorkerStats
}

// Stats snapshots the pool.
func (p *CachePool) Stats() PoolStats {
	l := p.ledger
	l.mu.Lock()
	defer l.mu.Unlock()
	st := PoolStats{
		Tenant:    p.tenant,
		IdleCount: len(p.free),
		Checkouts: p.checkouts,
		Misses:    p.misses,
		Evictions: p.evictions,
		Reuse:     p.retiredStats,
	}
	for _, ic := range p.free {
		st.Bytes += ic.bytes
		st.Reuse.Add(ic.stats)
		if ic.workers != nil {
			st.Workers = ic.workers
		}
	}
	return st
}
