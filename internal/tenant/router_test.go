package tenant

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const routerYAML = `pools:
  warm-cache:
    type: warm
  fresh-portfolio:
    type: fresh
    timeout: 250ms
  race:
    type: parallel
    pools: [warm-cache, fresh-portfolio]
  careful:
    type: sequential
    pools: [warm-cache, fresh-portfolio]
methods:
  check: warm-cache
  reconcile: race
  conform: careful
  default: warm-cache
`

func mustRouter(t *testing.T, yaml string) *Router {
	t.Helper()
	cfg, err := ParseRouterConfig([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouterParseAndDispatch(t *testing.T) {
	r := mustRouter(t, routerYAML)
	if p := r.PlanFor("check"); p.Kind != PoolWarm || p.Name != "warm-cache" {
		t.Fatalf("check → %+v", p)
	}
	if p := r.PlanFor("reconcile"); p.Kind != PoolParallel || len(p.Children) != 2 {
		t.Fatalf("reconcile → %+v", p)
	}
	if p := r.PlanFor("conform"); p.Kind != PoolSequential {
		t.Fatalf("conform → %+v", p)
	}
	// Unlisted methods fall back to default.
	if p := r.PlanFor("negotiate"); p.Name != "warm-cache" {
		t.Fatalf("default → %+v", p)
	}
	if got := r.PlanFor("reconcile").Children[1].Timeout; got != 250*time.Millisecond {
		t.Fatalf("fresh-portfolio timeout = %v", got)
	}
}

func TestRouterValidation(t *testing.T) {
	cases := []struct {
		name, yaml, wantErr string
	}{
		{"unknown type", "pools:\n  p:\n    type: psychic\n", "unknown type"},
		{"leaf with children", "pools:\n  a:\n    type: warm\n  p:\n    type: warm\n    pools: [a]\n", "no sub-pools"},
		{"empty combinator", "pools:\n  p:\n    type: parallel\n", "needs sub-pools"},
		{"unknown ref", "pools:\n  p:\n    type: parallel\n    pools: [ghost, ghost2]\n", "unknown pool"},
		{"cycle", "pools:\n  a:\n    type: sequential\n    pools: [b]\n  b:\n    type: sequential\n    pools: [a]\n", "cycle"},
		{"self cycle", "pools:\n  a:\n    type: parallel\n    pools: [a, a]\n", "cycle"},
		{"method to unknown pool", "pools:\n  a:\n    type: warm\nmethods:\n  default: ghost\n", "unknown pool"},
		{"methods without default", "pools:\n  a:\n    type: warm\nmethods:\n  check: a\n", "default"},
		{"ambiguous without methods", "pools:\n  a:\n    type: warm\n  b:\n    type: fresh\n", "exactly one pool"},
		{"bad timeout", "pools:\n  a:\n    type: warm\n    timeout: -3s\n", "bad timeout"},
		{"unknown pool key", "pools:\n  a:\n    type: warm\n    tiemout: 3s\n", "unknown key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := ParseRouterConfig([]byte(tc.yaml))
			if err == nil {
				_, err = NewRouter(cfg)
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestRouterSingleAnonymousPool(t *testing.T) {
	// One pool and no methods section is a complete config.
	r := mustRouter(t, "pools:\n  only:\n    type: fresh\n")
	if p := r.PlanFor("anything"); p.Name != "only" || p.Kind != PoolFresh {
		t.Fatalf("got %+v", p)
	}
}

// verdict is the stand-in result type for plan-execution tests:
// decisive unless marked unknown.
type verdict struct {
	pool    string
	unknown bool
}

func isDecisive(v verdict) bool { return !v.unknown }

func TestRunPlanSequentialFallsThrough(t *testing.T) {
	r := mustRouter(t, routerYAML)
	// warm-cache comes back indeterminate; sequential must fall through
	// to fresh-portfolio and return its decisive verdict.
	res, attempts, err := RunPlan(context.Background(), r.PlanFor("conform"),
		func(ctx context.Context, leaf Leaf) (verdict, error) {
			return verdict{pool: leaf.Name, unknown: leaf.Name == "warm-cache"}, nil
		}, isDecisive)
	if err != nil {
		t.Fatal(err)
	}
	if res.pool != "fresh-portfolio" {
		t.Fatalf("res = %+v", res)
	}
	if len(attempts) != 2 || !attempts[1].Decisive || attempts[0].Decisive {
		t.Fatalf("attempts = %+v", attempts)
	}
}

func TestRunPlanSequentialStopsEarly(t *testing.T) {
	r := mustRouter(t, routerYAML)
	var calls atomic.Int32
	res, attempts, err := RunPlan(context.Background(), r.PlanFor("conform"),
		func(ctx context.Context, leaf Leaf) (verdict, error) {
			calls.Add(1)
			return verdict{pool: leaf.Name}, nil
		}, isDecisive)
	if err != nil || res.pool != "warm-cache" {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if calls.Load() != 1 || len(attempts) != 1 {
		t.Fatalf("decisive first child must stop the sequence: calls=%d", calls.Load())
	}
}

func TestRunPlanSequentialFallsThroughOnError(t *testing.T) {
	r := mustRouter(t, routerYAML)
	res, _, err := RunPlan(context.Background(), r.PlanFor("conform"),
		func(ctx context.Context, leaf Leaf) (verdict, error) {
			if leaf.Name == "warm-cache" {
				return verdict{}, fmt.Errorf("warm pool exploded")
			}
			return verdict{pool: leaf.Name}, nil
		}, isDecisive)
	if err != nil || res.pool != "fresh-portfolio" {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestRunPlanParallelFirstDecisiveWinsAndCancelsLosers(t *testing.T) {
	r := mustRouter(t, routerYAML)
	loserCancelled := make(chan struct{})
	res, _, err := RunPlan(context.Background(), r.PlanFor("reconcile"),
		func(ctx context.Context, leaf Leaf) (verdict, error) {
			if leaf.Name == "warm-cache" {
				return verdict{pool: leaf.Name}, nil // fast and decisive
			}
			// The slow loser must observe cancellation promptly.
			select {
			case <-ctx.Done():
				close(loserCancelled)
				return verdict{}, ctx.Err()
			case <-time.After(5 * time.Second):
				return verdict{pool: leaf.Name}, nil
			}
		}, isDecisive)
	if err != nil || res.pool != "warm-cache" {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	select {
	case <-loserCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("losing pool was not cancelled")
	}
}

func TestRunPlanParallelDeterministicWhenNothingDecisive(t *testing.T) {
	r := mustRouter(t, routerYAML)
	for i := 0; i < 10; i++ {
		res, _, err := RunPlan(context.Background(), r.PlanFor("reconcile"),
			func(ctx context.Context, leaf Leaf) (verdict, error) {
				return verdict{pool: leaf.Name, unknown: true}, nil
			}, isDecisive)
		if err != nil {
			t.Fatal(err)
		}
		// Declaration order breaks the tie, not arrival order.
		if res.pool != "warm-cache" {
			t.Fatalf("iteration %d: res = %+v", i, res)
		}
	}
}

func TestRunPlanParallelAllErrors(t *testing.T) {
	r := mustRouter(t, routerYAML)
	_, _, err := RunPlan(context.Background(), r.PlanFor("reconcile"),
		func(ctx context.Context, leaf Leaf) (verdict, error) {
			return verdict{}, fmt.Errorf("%s failed", leaf.Name)
		}, isDecisive)
	if err == nil {
		t.Fatal("want an error when every child errors")
	}
}

func TestRunPlanLeafTimeoutApplies(t *testing.T) {
	r := mustRouter(t, "pools:\n  slow:\n    type: fresh\n    timeout: 30ms\n")
	start := time.Now()
	_, _, err := RunPlan(context.Background(), r.PlanFor("x"),
		func(ctx context.Context, leaf Leaf) (verdict, error) {
			<-ctx.Done()
			return verdict{}, ctx.Err()
		}, isDecisive)
	if err == nil {
		t.Fatal("want timeout error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("leaf timeout did not apply")
	}
}

func TestDefaultRouter(t *testing.T) {
	r := DefaultRouter()
	if p := r.PlanFor("check"); p.Kind != PoolWarm {
		t.Fatalf("default router → %+v", p)
	}
	if r.Source() != "builtin:warm" {
		t.Fatalf("source = %q", r.Source())
	}
}
