package tenant

import (
	"fmt"
	"sync"
	"testing"
)

// loader builds a LoadFunc over mutable fake state, so tests control
// both the served value and the fingerprint.
type loader struct {
	mu    sync.Mutex
	state string
	fp    string
	fail  error
	calls int
}

func (ld *loader) set(state, fp string) {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	ld.state, ld.fp = state, fp
}

func (ld *loader) fn() LoadFunc[string] {
	return func() (string, string, error) {
		ld.mu.Lock()
		defer ld.mu.Unlock()
		ld.calls++
		if ld.fail != nil {
			return "", "", ld.fail
		}
		return ld.state, ld.fp, nil
	}
}

func TestRegistryAddGetReload(t *testing.T) {
	r := NewRegistry[string](nil)
	ld := &loader{state: "v1", fp: "fp1"}
	ent, err := r.Add("acme", ld.fn())
	if err != nil {
		t.Fatal(err)
	}
	if ent.Revision != 1 || ent.State != "v1" || ent.Fingerprint != "fp1" {
		t.Fatalf("bad first revision: %+v", ent)
	}
	if _, err := r.Add("acme", ld.fn()); err == nil {
		t.Fatal("duplicate Add must fail")
	}

	// Unchanged fingerprint: reload is a no-op, same entry keeps serving.
	got, swapped, err := r.Reload("acme", false)
	if err != nil || swapped {
		t.Fatalf("unchanged reload: swapped=%v err=%v", swapped, err)
	}
	if got != ent {
		t.Fatal("unchanged reload must return the same entry")
	}

	// Forced reload swaps even with the same fingerprint.
	got, swapped, err = r.Reload("acme", true)
	if err != nil || !swapped {
		t.Fatalf("forced reload: swapped=%v err=%v", swapped, err)
	}
	if got.Revision != 2 {
		t.Fatalf("revision = %d, want 2", got.Revision)
	}

	// Changed inputs swap and bump the revision; the old entry is intact
	// for whoever still holds it.
	ld.set("v2", "fp2")
	got2, swapped, err := r.Reload("acme", false)
	if err != nil || !swapped {
		t.Fatalf("changed reload: swapped=%v err=%v", swapped, err)
	}
	if got2.Revision != 3 || got2.State != "v2" {
		t.Fatalf("bad new revision: %+v", got2)
	}
	if got.State != "v1" {
		t.Fatal("old entry must stay immutable")
	}
	if n := r.Reloads("acme"); n != 2 {
		t.Fatalf("Reloads = %d, want 2", n)
	}

	// A failing loader keeps the old revision serving.
	ld.fail = fmt.Errorf("boom")
	cur, swapped, err := r.Reload("acme", true)
	if err == nil || swapped {
		t.Fatalf("failing reload: swapped=%v err=%v", swapped, err)
	}
	if cur != got2 {
		t.Fatal("failing reload must leave the current entry in place")
	}
	if e, ok := r.Get("acme"); !ok || e != got2 {
		t.Fatal("Get must still serve the last good revision")
	}
}

func TestRegistryReloadRetiresOldPool(t *testing.T) {
	r := NewRegistry[string](nil)
	ld := &loader{state: "v1", fp: "a"}
	ent, err := r.Add("acme", ld.fn())
	if err != nil {
		t.Fatal(err)
	}
	// Park an idle cache in the old revision's pool.
	ent.Pool.Checkin(ent.Pool.Checkout())
	if got := ent.Pool.Stats().IdleCount; got != 1 {
		t.Fatalf("idle = %d, want 1", got)
	}
	ld.set("v2", "b")
	if _, swapped, err := r.Reload("acme", false); err != nil || !swapped {
		t.Fatalf("reload: swapped=%v err=%v", swapped, err)
	}
	if got := ent.Pool.Stats().IdleCount; got != 0 {
		t.Fatalf("retired pool idle = %d, want 0", got)
	}
	// An in-flight request's cache is discarded at checkin, not re-pooled.
	c := ent.Pool.Checkout()
	ent.Pool.Checkin(c)
	if got := ent.Pool.Stats().IdleCount; got != 0 {
		t.Fatalf("checkin after retire pooled a cache: idle = %d", got)
	}
}

func TestRegistryRemove(t *testing.T) {
	r := NewRegistry[string](nil)
	ld := &loader{state: "v", fp: "f"}
	if _, err := r.Add("acme", ld.fn()); err != nil {
		t.Fatal(err)
	}
	if !r.Remove("acme") {
		t.Fatal("Remove must report true for a registered tenant")
	}
	if _, ok := r.Get("acme"); ok {
		t.Fatal("removed tenant still resolvable")
	}
	if r.Remove("acme") {
		t.Fatal("second Remove must report false")
	}
}

func TestRegistryRescan(t *testing.T) {
	r := NewRegistry[string](nil)
	st := &loader{state: "static", fp: "s1"}
	if _, err := r.Add("pinned", st.fn()); err != nil {
		t.Fatal(err)
	}

	dyn := map[string]*loader{
		"a": {state: "a1", fp: "fa1"},
		"b": {state: "b1", fp: "fb1"},
	}
	var dynMu sync.Mutex
	r.SetDiscover(func() (map[string]LoadFunc[string], error) {
		dynMu.Lock()
		defer dynMu.Unlock()
		out := make(map[string]LoadFunc[string], len(dyn))
		for id, ld := range dyn {
			out[id] = ld.fn()
		}
		return out, nil
	})

	rep, err := r.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Added) != 2 || rep.Added[0] != "a" || rep.Added[1] != "b" {
		t.Fatalf("Added = %v", rep.Added)
	}
	if ids := r.IDs(); len(ids) != 3 {
		t.Fatalf("IDs = %v", ids)
	}

	// Change one tenant's inputs, drop the other; the static tenant is
	// reload-checked (unchanged → untouched) but never removed.
	dynMu.Lock()
	dyn["a"].state, dyn["a"].fp = "a2", "fa2"
	delete(dyn, "b")
	dynMu.Unlock()
	rep, err = r.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reloaded) != 1 || rep.Reloaded[0] != "a" {
		t.Fatalf("Reloaded = %v", rep.Reloaded)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "b" {
		t.Fatalf("Removed = %v", rep.Removed)
	}
	if ent, _ := r.Get("a"); ent.State != "a2" || ent.Revision != 2 {
		t.Fatalf("a = %+v", ent)
	}
	if _, ok := r.Get("pinned"); !ok {
		t.Fatal("static tenant removed by rescan")
	}

	// A failing dynamic tenant is reported but does not block the rest.
	dynMu.Lock()
	dyn["a"].fail = fmt.Errorf("bad yaml")
	dyn["a"].fp = "fa3"
	dynMu.Unlock()
	rep, err = r.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed["a"] == nil {
		t.Fatalf("Failed = %v", rep.Failed)
	}
	if ent, _ := r.Get("a"); ent.State != "a2" {
		t.Fatal("failed rescan reload must keep the old revision")
	}
}

// TestRegistryConcurrentReload hammers Get from many goroutines while
// revisions swap underneath; the race detector checks the swap is clean
// and the asserts check no reader ever observes a torn entry (state and
// fingerprint from different revisions).
func TestRegistryConcurrentReload(t *testing.T) {
	r := NewRegistry[string](nil)
	ld := &loader{state: "s0", fp: "f0"}
	if _, err := r.Add("acme", ld.fn()); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ent, ok := r.Get("acme")
				if !ok {
					t.Error("tenant vanished mid-reload")
					return
				}
				// Entries are immutable: state/fingerprint must be the
				// matched pair the revision was created with.
				if ent.State[1:] != ent.Fingerprint[1:] {
					t.Errorf("torn entry: %+v", ent)
					return
				}
			}
		}()
	}
	for i := 1; i <= 200; i++ {
		ld.set(fmt.Sprintf("s%d", i), fmt.Sprintf("f%d", i))
		if _, swapped, err := r.Reload("acme", false); err != nil || !swapped {
			t.Fatalf("reload %d: swapped=%v err=%v", i, swapped, err)
		}
	}
	close(stop)
	wg.Wait()
	if ent, _ := r.Get("acme"); ent.Revision != 201 {
		t.Fatalf("final revision = %d, want 201", ent.Revision)
	}
}

func TestRegistryOnSwapAndPrevFingerprint(t *testing.T) {
	r := NewRegistry[string](nil)
	type swap struct{ oldID, newID string }
	var swaps []swap
	r.SetOnSwap(func(old, new *Entry[string]) {
		s := swap{}
		if old != nil {
			s.oldID = fmt.Sprintf("%s@%d", old.ID, old.Revision)
		}
		if new != nil {
			s.newID = fmt.Sprintf("%s@%d", new.ID, new.Revision)
		}
		swaps = append(swaps, s)
	})

	ld := &loader{state: "v1", fp: "fp1"}
	if _, err := r.Add("acme", ld.fn()); err != nil {
		t.Fatal(err)
	}

	// A skipped reload (same fingerprint, unforced) must not fire the hook.
	if _, swapped, err := r.Reload("acme", false); err != nil || swapped {
		t.Fatalf("unchanged reload: swapped=%v err=%v", swapped, err)
	}

	ld.set("v2", "fp2")
	ent, swapped, err := r.Reload("acme", false)
	if err != nil || !swapped {
		t.Fatalf("changed reload: swapped=%v err=%v", swapped, err)
	}
	if ent.PrevFingerprint != "fp1" || ent.Fingerprint != "fp2" {
		t.Fatalf("fingerprints = (%q -> %q), want (fp1 -> fp2)", ent.PrevFingerprint, ent.Fingerprint)
	}
	r.Remove("acme")

	want := []swap{
		{"", "acme@1"},       // first load: new tenant, no predecessor
		{"acme@1", "acme@2"}, // revision swap
		{"acme@2", ""},       // removal
	}
	if len(swaps) != len(want) {
		t.Fatalf("swaps = %v, want %v", swaps, want)
	}
	for i := range want {
		if swaps[i] != want[i] {
			t.Fatalf("swap[%d] = %v, want %v", i, swaps[i], want[i])
		}
	}
}
