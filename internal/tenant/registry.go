package tenant

import (
	"fmt"
	"sort"
	"sync"
)

// LoadFunc builds one tenant's serving state from its inputs. The
// returned fingerprint identifies those inputs (typically a content hash
// of the source files); Reload skips the swap when it is unchanged and
// the reload was not forced, so a periodic rescan is cheap for idle
// tenants. Loading must validate: a LoadFunc returning nil error vouches
// that the state can serve.
type LoadFunc[T any] func() (state T, fingerprint string, err error)

// Entry is one immutable revision of one tenant: the compiled serving
// state plus the warm-cache pool bound to it. Requests capture the entry
// at admission and keep it to completion, so a hot reload never tears an
// in-flight answer — the old revision simply drains (its pool is retired;
// its state is garbage once the last request lets go).
type Entry[T any] struct {
	ID string
	// Revision counts successful loads of this tenant, starting at 1.
	Revision int64
	State    T
	Pool     *CachePool
	// Fingerprint is the input fingerprint the revision was built from.
	Fingerprint string
	// PrevFingerprint is the fingerprint of the revision this one replaced
	// ("" for a first load). A delta consumer uses the pair to distinguish
	// "tenant changed" (both non-empty, different) from "tenant is new".
	PrevFingerprint string
}

// Registry maps tenant IDs to their current revision. Lookups are
// lock-cheap and never blocked by a reload in progress: loading and
// validating the new state happens outside the entry lock, and only the
// pointer swap is serialized.
type Registry[T any] struct {
	ledger *Ledger

	// reloadMu serialises mutations (Add/Reload/Remove/Rescan) so two
	// concurrent reloads of one tenant cannot interleave their
	// load-then-swap sequences. Reads take only mu.
	reloadMu sync.Mutex

	mu      sync.RWMutex
	entries map[string]*Entry[T]
	loaders map[string]LoadFunc[T]
	static  map[string]bool // Add-ed directly; never removed by Rescan
	reloads map[string]int64

	// discover re-enumerates dynamic tenants (e.g. a -tenant-dir scan);
	// see SetDiscover and Rescan.
	discover func() (map[string]LoadFunc[T], error)

	// onSwap observes entry transitions; see SetOnSwap.
	onSwap func(old, new *Entry[T])
}

// NewRegistry creates an empty registry whose tenant pools share the
// given ledger's memory budget.
func NewRegistry[T any](ledger *Ledger) *Registry[T] {
	if ledger == nil {
		ledger = NewLedger(0)
	}
	return &Registry[T]{
		ledger:  ledger,
		entries: make(map[string]*Entry[T]),
		loaders: make(map[string]LoadFunc[T]),
		static:  make(map[string]bool),
		reloads: make(map[string]int64),
	}
}

// Ledger returns the shared memory-budget ledger.
func (r *Registry[T]) Ledger() *Ledger { return r.ledger }

// Add registers a static tenant (one not managed by Rescan) and loads
// its first revision. It fails if the ID is taken or the load fails —
// a tenant is never registered in an unservable state.
func (r *Registry[T]) Add(id string, load LoadFunc[T]) (*Entry[T], error) {
	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	ent, err := r.add(id, load, true)
	return ent, err
}

// add loads and installs revision 1 of a tenant; reloadMu held.
func (r *Registry[T]) add(id string, load LoadFunc[T], static bool) (*Entry[T], error) {
	if id == "" {
		return nil, fmt.Errorf("tenant: empty tenant ID")
	}
	r.mu.RLock()
	_, taken := r.entries[id]
	r.mu.RUnlock()
	if taken {
		return nil, fmt.Errorf("tenant: %q already registered", id)
	}
	state, fp, err := load()
	if err != nil {
		return nil, fmt.Errorf("tenant %q: %w", id, err)
	}
	ent := &Entry[T]{ID: id, Revision: 1, State: state, Pool: r.ledger.NewPool(id), Fingerprint: fp}
	r.mu.Lock()
	r.entries[id] = ent
	r.loaders[id] = load
	r.static[id] = static
	hook := r.onSwap
	r.mu.Unlock()
	if hook != nil {
		hook(nil, ent)
	}
	return ent, nil
}

// Get returns the tenant's current revision. Callers keep the returned
// entry for the whole request: it is immutable and stays valid (and
// consistent with itself) across any number of concurrent reloads.
func (r *Registry[T]) Get(id string) (*Entry[T], bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ent, ok := r.entries[id]
	return ent, ok
}

// IDs lists the registered tenant IDs, sorted.
func (r *Registry[T]) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Entries snapshots the current revision of every tenant, sorted by ID.
func (r *Registry[T]) Entries() []*Entry[T] {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry[T], 0, len(r.entries))
	for _, ent := range r.entries {
		out = append(out, ent)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of registered tenants.
func (r *Registry[T]) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Reloads reports how many times the tenant has been successfully
// reloaded (revision swaps after the first load).
func (r *Registry[T]) Reloads(id string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.reloads[id]
}

// Reload re-runs the tenant's loader and, if the inputs changed (or
// force is set), atomically swaps in the new revision: load → validate →
// compare-and-swap. The old revision's pool is retired so it drains; the
// swap itself is a pointer write, so concurrent lookups see either the
// whole old revision or the whole new one, never a mix. It returns the
// current entry and whether a swap happened. On load failure the old
// revision keeps serving untouched.
func (r *Registry[T]) Reload(id string, force bool) (*Entry[T], bool, error) {
	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	return r.reload(id, force)
}

// reload is Reload with reloadMu already held (for Rescan).
func (r *Registry[T]) reload(id string, force bool) (*Entry[T], bool, error) {
	r.mu.RLock()
	old, ok := r.entries[id]
	load := r.loaders[id]
	r.mu.RUnlock()
	if !ok {
		return nil, false, fmt.Errorf("tenant: unknown tenant %q", id)
	}
	state, fp, err := load()
	if err != nil {
		return old, false, fmt.Errorf("tenant %q: reload: %w", id, err)
	}
	if !force && fp != "" && fp == old.Fingerprint {
		return old, false, nil // inputs unchanged; keep serving the old revision
	}
	ent := &Entry[T]{
		ID: id, Revision: old.Revision + 1, State: state,
		Pool: r.ledger.NewPool(id), Fingerprint: fp,
		PrevFingerprint: old.Fingerprint,
	}
	r.mu.Lock()
	r.entries[id] = ent
	r.reloads[id]++
	hook := r.onSwap
	r.mu.Unlock()
	old.Pool.Retire()
	if hook != nil {
		hook(old, ent)
	}
	return ent, true, nil
}

// Remove unregisters a tenant and retires its pool. In-flight requests
// holding the entry finish normally.
func (r *Registry[T]) Remove(id string) bool {
	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	return r.remove(id)
}

func (r *Registry[T]) remove(id string) bool {
	r.mu.Lock()
	ent, ok := r.entries[id]
	if ok {
		delete(r.entries, id)
		delete(r.loaders, id)
		delete(r.static, id)
		delete(r.reloads, id)
	}
	hook := r.onSwap
	r.mu.Unlock()
	if ok {
		ent.Pool.Retire()
		if hook != nil {
			hook(ent, nil)
		}
	}
	return ok
}

// SetOnSwap installs an observer for entry transitions: (nil, new) when
// a tenant is first loaded, (old, new) when a reload swaps revisions,
// and (old, nil) when a tenant is removed. The hook runs after the swap
// is visible to Get, outside the entry lock but serialized with other
// mutations, so observers see transitions in order and exactly once.
// A skipped reload (fingerprint unchanged) does not fire it.
func (r *Registry[T]) SetOnSwap(f func(old, new *Entry[T])) {
	r.mu.Lock()
	r.onSwap = f
	r.mu.Unlock()
}

// SetDiscover installs the enumerator Rescan uses to manage dynamic
// tenants (typically a tenant-directory scan).
func (r *Registry[T]) SetDiscover(f func() (map[string]LoadFunc[T], error)) {
	r.reloadMu.Lock()
	r.discover = f
	r.reloadMu.Unlock()
}

// RescanReport summarises one Rescan.
type RescanReport struct {
	Added    []string
	Reloaded []string // fingerprint changed; new revision swapped in
	Removed  []string
	// Failed maps tenant IDs to their load errors. A failed reload keeps
	// the old revision serving; a failed add is skipped.
	Failed map[string]error
}

// Rescan reconciles the registry against the discover enumerator: new
// tenants are added, vanished dynamic tenants are removed, and existing
// ones are reloaded if their inputs' fingerprints changed. Static
// tenants (Add) are reload-checked but never removed. One tenant's
// failure never blocks the others.
func (r *Registry[T]) Rescan() (RescanReport, error) {
	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	rep := RescanReport{Failed: make(map[string]error)}

	found := map[string]LoadFunc[T]{}
	if r.discover != nil {
		var err error
		if found, err = r.discover(); err != nil {
			return rep, err
		}
	}

	r.mu.RLock()
	known := make(map[string]bool, len(r.entries))
	for id := range r.entries {
		known[id] = true
	}
	static := make(map[string]bool, len(r.static))
	for id, s := range r.static {
		static[id] = s
	}
	r.mu.RUnlock()

	for id, load := range found {
		if known[id] {
			continue
		}
		if _, err := r.add(id, load, false); err != nil {
			rep.Failed[id] = err
			continue
		}
		rep.Added = append(rep.Added, id)
	}
	for id := range known {
		if _, present := found[id]; !present && !static[id] {
			r.remove(id)
			rep.Removed = append(rep.Removed, id)
			delete(known, id)
		}
	}
	for id := range known {
		if _, swapped, err := r.reload(id, false); err != nil {
			rep.Failed[id] = err
		} else if swapped {
			rep.Reloaded = append(rep.Reloaded, id)
		}
	}
	sort.Strings(rep.Added)
	sort.Strings(rep.Reloaded)
	sort.Strings(rep.Removed)
	return rep, nil
}
