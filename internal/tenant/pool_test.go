package tenant

import (
	"context"
	"testing"

	"muppet"
)

func TestPoolCheckoutCheckinReuse(t *testing.T) {
	l := NewLedger(0)
	p := l.NewPool("acme")

	c1 := p.Checkout() // empty pool: fresh cache, a miss
	if c1 == nil {
		t.Fatal("nil cache from Checkout")
	}
	p.Checkin(c1)
	c2 := p.Checkout() // warm hit: the same cache comes back
	if c2 != c1 {
		t.Fatal("expected the checked-in cache back")
	}
	st := p.Stats()
	if st.Checkouts != 2 || st.Misses != 1 {
		t.Fatalf("checkouts=%d misses=%d, want 2/1", st.Checkouts, st.Misses)
	}
	// Checked-out caches are not idle and not accounted.
	if st.IdleCount != 0 || l.TotalBytes() != 0 {
		t.Fatalf("idle=%d total=%d with everything checked out", st.IdleCount, l.TotalBytes())
	}
}

func TestPoolCheckoutIsMRU(t *testing.T) {
	l := NewLedger(0)
	p := l.NewPool("acme")
	a, b := p.Checkout(), p.Checkout()
	p.Checkin(a)
	p.Checkin(b) // b is most recently used
	if got := p.Checkout(); got != b {
		t.Fatal("Checkout must prefer the most recently used cache")
	}
}

func TestPoolRetire(t *testing.T) {
	l := NewLedger(0)
	p := l.NewPool("acme")
	inflight := p.Checkout()
	p.Checkin(p.Checkout()) // one idle cache
	p.Retire()
	if st := p.Stats(); st.IdleCount != 0 {
		t.Fatalf("idle after retire = %d", st.IdleCount)
	}
	// The in-flight cache is discarded at checkin, and a retired pool
	// only ever hands out fresh caches.
	p.Checkin(inflight)
	if st := p.Stats(); st.IdleCount != 0 {
		t.Fatalf("retired pool pooled a checkin: idle = %d", st.IdleCount)
	}
	if c := p.Checkout(); c == inflight {
		t.Fatal("retired pool must not reuse discarded caches")
	}
	p.Retire() // idempotent
}

// warmCache builds a cache holding one live solving session, so it has
// real, nonzero ApproxBytes for the ledger to account.
func warmCache(t testing.TB, sys *muppet.System, k8s, istio *muppet.Party) *muppet.SolveCache {
	t.Helper()
	c := muppet.NewSolveCache()
	res := c.LocalConsistencyCtx(context.Background(), sys, k8s, []*muppet.Party{istio}, muppet.Budget{})
	if !res.OK {
		t.Fatal("scenario must be consistent")
	}
	if c.ApproxBytes() <= 0 {
		t.Fatal("warm cache reports zero bytes")
	}
	return c
}

func scenarioParties(t testing.TB) (*muppet.System, *muppet.Party, *muppet.Party) {
	t.Helper()
	sc := muppet.GenerateScenario(muppet.ScenarioParams{
		Services: 3, PortsPerService: 2, Flows: 3, BannedPorts: 1, Seed: 7,
	})
	sys, err := sc.System()
	if err != nil {
		t.Fatal(err)
	}
	k8s, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), nil)
	if err != nil {
		t.Fatal(err)
	}
	istio, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), sc.IstioRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	return sys, k8s, istio
}

// TestLedgerEvictsLRUUnderBudget checks the satellite requirement: under
// a tiny budget, idle warm caches are evicted least-recently-used first
// and the accounted total never settles above the budget.
func TestLedgerEvictsLRUUnderBudget(t *testing.T) {
	sys, k8s, istio := scenarioParties(t)

	// Size one warm cache, then allow room for roughly two of them.
	probe := warmCache(t, sys, k8s, istio)
	one := probe.ApproxBytes()
	budget := one * 2

	l := NewLedger(budget)
	a := l.NewPool("acme")
	b := l.NewPool("bravo")

	// Three warm caches across two tenants under a two-cache budget: the
	// first (globally oldest) one must be evicted, whichever pool owns it.
	a.Checkin(warmCache(t, sys, k8s, istio))
	a.Checkin(warmCache(t, sys, k8s, istio))
	b.Checkin(warmCache(t, sys, k8s, istio))

	if tot := l.TotalBytes(); tot > budget {
		t.Fatalf("idle total %d over budget %d", tot, budget)
	}
	if l.Evictions() == 0 {
		t.Fatal("expected at least one eviction")
	}
	// The oldest idle cache was tenant a's first checkin: the eviction
	// must land on pool a even though pool b checked in last.
	if st := a.Stats(); st.Evictions == 0 {
		t.Fatalf("evictions must hit the LRU pool: a=%+v b=%+v", a.Stats(), b.Stats())
	}
	if st := b.Stats(); st.Evictions != 0 {
		t.Fatalf("MRU pool evicted: %+v", st)
	}

	// Counters stay monotonic across evictions: sessions built are still
	// visible in the pool aggregate even though the cache is gone.
	if st := a.Stats(); st.Reuse.Sessions == 0 {
		t.Fatalf("evicted sessions vanished from aggregate stats: %+v", st)
	}
}

func TestLedgerUnlimitedNeverEvicts(t *testing.T) {
	sys, k8s, istio := scenarioParties(t)
	l := NewLedger(0)
	p := l.NewPool("acme")
	for i := 0; i < 3; i++ {
		p.Checkin(warmCache(t, sys, k8s, istio))
	}
	if l.Evictions() != 0 {
		t.Fatalf("unlimited ledger evicted %d sessions", l.Evictions())
	}
	if st := p.Stats(); st.IdleCount != 3 {
		t.Fatalf("idle = %d, want 3", st.IdleCount)
	}
}
