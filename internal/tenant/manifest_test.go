package tenant

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseManifest(t *testing.T) {
	m, err := ParseManifest([]byte(`files:
  - mesh.yaml
  - policies.yaml
k8s-goals: goals-k8s.csv
istio-offer: holes
ports: [8080, 9090]
`), "/srv/tenants/acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Files) != 2 || m.Files[0] != "/srv/tenants/acme/mesh.yaml" {
		t.Fatalf("Files = %v", m.Files)
	}
	if m.K8sGoals != "/srv/tenants/acme/goals-k8s.csv" || m.IstioGoals != "" {
		t.Fatalf("goals = %q / %q", m.K8sGoals, m.IstioGoals)
	}
	if m.IstioOffer != "holes" || m.K8sOffer != "" {
		t.Fatalf("offers = %q / %q", m.K8sOffer, m.IstioOffer)
	}
	if m.PortsCSV() != "8080,9090" {
		t.Fatalf("ports = %q", m.PortsCSV())
	}
}

func TestParseManifestRejectsUnknownKeyAndMissingFiles(t *testing.T) {
	if _, err := ParseManifest([]byte("files: [a.yaml]\nk8s_goals: g.csv\n"), ""); err == nil {
		t.Fatal("unknown key must be rejected")
	}
	if _, err := ParseManifest([]byte("k8s-offer: soft\n"), ""); err == nil {
		t.Fatal("missing files must be rejected")
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"acme", "team-a_2", "A.b"} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", ".hidden", "a/b", "sp ace", string(make([]byte, 65))} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true", bad)
		}
	}
}

func TestScanDir(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"acme", "bravo"} {
		if err := os.MkdirAll(filepath.Join(dir, id), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, id, ManifestName), []byte("files: [m.yaml]\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Not tenants: no manifest, hidden, plain file.
	os.MkdirAll(filepath.Join(dir, "empty"), 0o755)
	os.MkdirAll(filepath.Join(dir, ".git"), 0o755)
	os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644)

	found, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 2 || found["acme"] == "" || found["bravo"] == "" {
		t.Fatalf("found = %v", found)
	}
}

func TestFingerprintTracksContent(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.yaml")
	b := filepath.Join(dir, "b.yaml")
	os.WriteFile(a, []byte("one"), 0o644)
	os.WriteFile(b, []byte("two"), 0o644)

	f1 := Fingerprint(a, b)
	if f2 := Fingerprint(b, a); f2 != f1 {
		t.Fatal("fingerprint must not depend on argument order")
	}
	os.WriteFile(b, []byte("two!"), 0o644)
	if Fingerprint(a, b) == f1 {
		t.Fatal("content change must change the fingerprint")
	}
	// A missing file fingerprints as absent, distinctly from empty.
	os.Remove(b)
	gone := Fingerprint(a, b)
	os.WriteFile(b, nil, 0o644)
	if Fingerprint(a, b) == gone {
		t.Fatal("absent and empty must fingerprint differently")
	}
}
