package sat

import (
	"context"
	"time"

	"muppet/internal/simp"
)

// Status is the outcome of a Solve call.
type Status int

const (
	// Unknown means the solver gave up (budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found; read it with Value/Model.
	Sat
	// Unsat means no satisfying assignment exists under the assumptions;
	// the failed assumptions are available via Core.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Options tune solver behaviour. The zero value is the recommended default
// configuration; the toggles exist for the ablation benchmarks.
type Options struct {
	// DisableLearning turns the solver into chronological-backtracking DPLL:
	// conflicts still backtrack, but no learnt clauses are retained.
	DisableLearning bool
	// NaivePropagation replaces two-watched-literal propagation with full
	// occurrence-list clause scans.
	NaivePropagation bool
	// DisablePhaseSaving makes decisions always try the negative phase first.
	DisablePhaseSaving bool
	// DisableRestarts switches Luby restarts off.
	DisableRestarts bool
	// MaxConflicts, when positive, bounds the cumulative conflict count
	// across the solver's lifetime; exceeding it makes Solve return Unknown
	// with StopReason() == StopConflicts. Prefer the per-call
	// Budget.MaxConflicts of SolveCtx for new code.
	MaxConflicts int64
	// RestartBase, when positive, replaces the default Luby restart unit
	// (100 conflicts). Small values restart aggressively, large values let
	// each search run long — the main diversification axis for portfolios.
	RestartBase int64
	// PhaseSeed, when non-zero, seeds deterministic per-variable jitter:
	// initial decision polarity and a tiny initial activity perturbation
	// that reorders ties in the decision heap. Two solvers over the same
	// clauses with different seeds explore different parts of the space.
	PhaseSeed uint64
	// LearntCap, when positive, pins the learnt-clause database limit to a
	// fixed size instead of the default third-of-problem-clauses with
	// geometric growth. Small caps keep the solver lean (frequent
	// reduceDB), another portfolio diversification axis.
	LearntCap int
	// DisableSimp turns off SatELite-style preprocessing (subsumption,
	// self-subsuming resolution, bounded variable elimination) of the
	// clause database before search. Preprocessing is on by default;
	// callers that read variables from models or use literals as
	// assumptions/selectors must Freeze them (see Solver.Freeze).
	DisableSimp bool
	// SimpMinClauses is the live problem-clause count below which
	// preprocessing is deferred: on small databases the solve is cheaper
	// than the preprocessing pass, so simplification waits until the
	// database grows past the floor. 0 means the default floor
	// (simpDefaultMinClauses); negative means no floor.
	SimpMinClauses int
	// DisableChrono turns off chronological backtracking: every conflict
	// backjumps all the way to the learnt clause's assertion level, even
	// when that discards hundreds of levels of still-useful trail. With
	// chrono on (the default), backjumps longer than chronoThreshold
	// levels backtrack a single level instead and assert the learnt
	// literal there, preserving the trail prefix.
	DisableChrono bool
	// DisableInprocess turns off scheduled inprocessing: the periodic
	// clause vivification and bounded-variable-elimination passes run
	// between restarts (see inprocess.go).
	DisableInprocess bool
	// InprocessInterval, when positive, overrides how many conflicts pass
	// between inprocessing ticks (default inprocessDefaultInterval).
	InprocessInterval int64
	// VivifyPropBudget, when positive, overrides the unit-propagation
	// budget of one vivification round (default vivifyPropBudget); -1
	// disables vivification. Exposed for the inprocessing budget sweeps
	// recorded in EXPERIMENTS.md.
	VivifyPropBudget int64
	// BVETickPeriod, when positive, overrides how many inprocessing ticks
	// pass between full preprocessor re-runs (default bveTickPeriod).
	BVETickPeriod int64
}

// restartBase returns the Luby restart unit in conflicts.
func (o Options) restartBase() int64 {
	if o.RestartBase > 0 {
		return o.RestartBase
	}
	return 100
}

// splitmix64 is the SplitMix64 mixing function — a cheap, deterministic
// uint64→uint64 hash used for seeded polarity/activity jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Solver is an incremental CDCL SAT solver. Create one with New, introduce
// variables with NewVar, add clauses with AddClause, and call Solve —
// possibly repeatedly, with further clauses and differing assumptions
// between calls. Solver is not safe for concurrent use.
type Solver struct {
	opts Options

	ca      clauseDB // the arena holding every clause's header and literals
	clauses []cref   // problem clauses
	learnts []cref   // learnt clauses

	watches [][]watcher // indexed by literal: clauses watching that literal
	occs    [][]cref    // naive mode: occurrence lists per literal

	// Deferred watch attachment: AddClause queues clauses here and the
	// queue is flushed before any propagation. A bulk flush into empty
	// watch lists sizes every list with a counting pass and carves them
	// all out of one flat watcher arena (see buildWatches), so loading a
	// large encoding costs O(1) allocations instead of one grow chain per
	// literal.
	pendingWatch []cref
	nWatched     int // watcher entries attached since the lists were last emptied

	assigns  []lbool // per variable
	level    []int32 // decision level per variable
	reason   []cref
	trail    []Lit
	trailLim []int32 // trail index at each decision level
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	polarity []bool // saved phase: last assigned sign per variable

	seen       []byte
	analyzeBuf []Lit
	toClear    []Var   // seen-flag cleanup scratch for analyze
	addBuf     []Lit   // AddClause normalisation scratch
	levelStamp []int32 // per-decision-level stamp backing computeLBD
	lbdTick    int32

	claInc       float64
	maxLearnts   float64
	learntGrowth float64

	unsatLevel0 bool // empty clause derived; all future Solves are Unsat
	model       []bool
	conflict    []Lit // failed assumptions (negated), valid after Unsat

	assumptions []Lit

	// Cancellation/budget state, set per SolveCtx call (see budget.go).
	ctx         context.Context
	deadline    time.Time
	conflictCap int64 // absolute Stats.Conflicts threshold; 0: none
	propCap     int64 // absolute Stats.Propagations threshold; 0: none
	pollTick    uint32
	stopReason  StopReason

	// Preprocessing state (see simplify.go): the preprocessor owns the
	// frozen/eliminated marks and the model-reconstruction stack.
	elim          *simp.Preprocessor
	simpRan       bool
	simpWatermark int // problem clause count right after the last run

	// Inprocessing schedule (see inprocess.go).
	nextInprocess    int64 // Stats.Conflicts threshold of the next tick
	inprocessTicks   int64 // ticks run, to interleave BVE every few ticks
	vivifyHead       int   // rolling cursor into clauses
	vivifyLearntHead int   // rolling cursor into learnts

	// Stats accumulates counters across Solve calls.
	Stats Stats
}

// Stats reports solver work counters.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
	Removed      int64

	// Preprocessing counters (see simplify.go). SimpVarsEliminated is the
	// current number of eliminated variables (net of restores); the others
	// accumulate across runs.
	SimpRuns             int64
	SimpVarsEliminated   int64
	SimpClausesSubsumed  int64
	SimpLitsStrengthened int64
	SimpClausesRemoved   int64
	SimpRestored         int64

	// Search-core counters: chronological backtracks taken instead of long
	// backjumps, conflict clauses deleted because the learnt clause
	// subsumed them on the fly, inprocessing passes run, clauses shortened
	// by vivification (and the literals they lost), and arena compactions.
	ChronoBacktracks int64
	OTFSubsumed      int64
	InprocessRuns    int64
	Vivified         int64
	VivifyLits       int64
	ArenaGCs         int64
}

// New creates an empty solver with default options.
func New() *Solver { return NewWithOptions(Options{}) }

// NewWithOptions creates an empty solver with the given options.
func NewWithOptions(opts Options) *Solver {
	s := &Solver{
		opts:         opts,
		varInc:       1,
		claInc:       1,
		maxLearnts:   0,
		learntGrowth: 1.3,
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of live learnt clauses — the part of the
// clause database that grows with search effort, and therefore the part a
// long-lived session's memory accounting must include.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// ArenaBytes reports the clause arena's current backing size in bytes —
// the flat allocation that replaces per-clause heap objects.
func (s *Solver) ArenaBytes() int64 { return s.ca.bytes() }

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	phase := true // default phase: false branch first
	activity := 0.0
	if s.opts.PhaseSeed != 0 {
		h := splitmix64(s.opts.PhaseSeed + uint64(v))
		phase = h&1 == 0
		// Sub-1e-3 jitter: far below any bumped activity, so it only
		// breaks ties among never-bumped variables.
		activity = float64(h>>40) * (1.0 / (1 << 34))
	}
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefUndef)
	s.activity = append(s.activity, activity)
	s.polarity = append(s.polarity, phase)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	if s.opts.NaivePropagation {
		s.occs = append(s.occs, nil, nil)
	}
	s.order.push(v)
	return v
}

func (s *Solver) value(l Lit) lbool {
	return s.assigns[l.Var()].xorSign(l.Neg())
}

// Value returns v's value in the most recent satisfying model.
// Only meaningful after Solve returned Sat.
func (s *Solver) Value(v Var) bool { return s.model[v] }

// Model returns a copy of the most recent satisfying assignment, indexed by
// variable. Only meaningful after Solve returned Sat.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	copy(m, s.model)
	return m
}

// Core returns the failed assumptions from the last Unsat Solve: a subset A'
// of the assumptions such that the clauses together with A' are
// unsatisfiable. Literals are returned in their assumption polarity.
func (s *Solver) Core() []Lit {
	core := make([]Lit, len(s.conflict))
	for i, l := range s.conflict {
		core[i] = l.Not() // conflict stores negations of failed assumptions
	}
	return core
}

// SetPhases seeds the saved-phase array from a model prefix: the next
// search tries each covered variable at its model value first. Combined
// with chronological backtracking this is what lets the totalizer bound
// descent re-descend from the previous near-optimal assignment instead
// of replaying the search from the root (see internal/target).
func (s *Solver) SetPhases(model []bool) {
	n := len(model)
	if n > len(s.polarity) {
		n = len(s.polarity)
	}
	for v := 0; v < n; v++ {
		s.polarity[v] = !model[v]
	}
}

// SetPhaseLit biases the next search to try l's variable at the polarity
// that makes l true.
func (s *Solver) SetPhaseLit(l Lit) {
	if v := l.Var(); int(v) < len(s.polarity) {
		s.polarity[v] = l.Neg()
	}
}

// AddClause adds a disjunction of literals. It returns false if the clause
// set is now known unsatisfiable at level 0 (an empty clause was derived).
// Duplicate literals are merged and tautologies are dropped. Unit clauses
// are asserted immediately but propagated lazily: a conflict reachable
// only through non-unit propagation surfaces at the next Solve.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsatLevel0 {
		return false
	}
	s.cancelUntil(0)

	// A clause mentioning an eliminated variable re-activates it: the
	// clauses recorded at its elimination come back first, so the new
	// clause constrains the variable it names, not a ghost.
	if s.elim != nil && s.elim.NumEliminated() > 0 {
		for _, l := range lits {
			if s.elim.Eliminated(int32(l.Var())) {
				s.restoreVar(l.Var())
			}
		}
		if s.unsatLevel0 {
			return false
		}
	}

	// Normalise into the reused scratch buffer: dedupe, drop level-0-false
	// lits, detect tautology and level-0-true lits. Nested AddClause calls
	// (variable restoration above) finish before the scratch is touched.
	out := s.addBuf[:0]
	for _, l := range lits {
		if l.Var() < 0 || int(l.Var()) >= len(s.assigns) {
			panic("sat: AddClause literal for unknown variable")
		}
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}
	s.addBuf = out[:0]

	switch len(out) {
	case 0:
		s.unsatLevel0 = true
		return false
	case 1:
		// Enqueue without propagating: the assignment is visible to the
		// normalisation of every later AddClause (so unit chains still
		// resolve here), while the queue drains at the next Solve — which
		// keeps the bulk clause load free of per-unit watch flushes.
		s.uncheckedEnqueue(out[0], crefUndef)
		return true
	}
	c := s.ca.alloc(out, false)
	s.clauses = append(s.clauses, c)
	if s.opts.NaivePropagation {
		s.attach(c)
	} else {
		s.pendingWatch = append(s.pendingWatch, c)
	}
	return true
}

// watchBulkMin is the queued-clause count below which flushWatches just
// attaches one by one: tiny batches don't repay the counting pass.
const watchBulkMin = 1024

// flushWatches attaches every clause queued by AddClause. A large batch
// (a bulk encoding load, or a totalizer layer added between incremental
// Solve calls) rebuilds the watch lists in one carved pass; small batches
// are attached individually.
func (s *Solver) flushWatches() {
	if len(s.pendingWatch) == 0 {
		return
	}
	pend := s.pendingWatch
	s.pendingWatch = s.pendingWatch[:0]
	if len(pend) >= watchBulkMin {
		s.buildWatches(pend)
		return
	}
	for _, c := range pend {
		s.attach(c)
	}
}

// buildWatches rebuilds every watch list with the given clause lists
// appended: a counting sweep sizes each list (current entries plus new
// watchers), the lists are carved out of a single flat watcher arena
// (capacity-clamped so a later append cannot clobber a neighbour),
// existing entries are copied over, and a fill sweep appends the new
// ones. Each list gets ~50% slack over its initial population:
// propagation migrates watchers between lists continuously, and an
// exact-size carve would turn every migration into a list reallocation.
func (s *Solver) buildWatches(lists ...[]cref) {
	cnt := make([]int32, len(s.watches))
	for i, ws := range s.watches {
		cnt[i] = int32(len(ws))
	}
	added := 0
	for _, cls := range lists {
		for _, c := range cls {
			lits := s.ca.lits(c)
			cnt[lits[0]]++
			cnt[lits[1]]++
			added += 2
		}
	}
	pad := func(n int) int { return n + n/2 + 4 }
	padded := 0
	for _, n := range cnt {
		padded += pad(int(n))
	}
	arena := make([]watcher, padded)
	off := 0
	for i := range s.watches {
		n := int(cnt[i])
		lst := arena[off : off : off+pad(n)]
		s.watches[i] = append(lst, s.watches[i]...)
		off += pad(n)
	}
	for _, cls := range lists {
		for _, c := range cls {
			lits := s.ca.lits(c)
			s.watches[lits[0]] = append(s.watches[lits[0]], mkWatcher(c, lits[1]))
			s.watches[lits[1]] = append(s.watches[lits[1]], mkWatcher(c, lits[0]))
		}
	}
	s.nWatched += added
}

func (s *Solver) attach(c cref) {
	lits := s.ca.lits(c)
	if s.opts.NaivePropagation {
		for _, l := range lits {
			s.occs[l] = append(s.occs[l], c)
		}
		return
	}
	// Watch the first two literals; the watch list for a literal holds
	// clauses in which that literal is watched, visited when it goes false.
	s.watches[lits[0]] = append(s.watches[lits[0]], mkWatcher(c, lits[1]))
	s.watches[lits[1]] = append(s.watches[lits[1]], mkWatcher(c, lits[0]))
	s.nWatched += 2
}

// detach lazily marks a clause deleted; watch lists are purged on scan and
// the arena words are reclaimed by the next garbage collection.
func (s *Solver) detach(c cref) { s.ca.delete(c) }

// removeWatch eagerly deletes c from l's watch list (vivification needs
// the clause fully detached while it probes, not lazily flagged).
func (s *Solver) removeWatch(l Lit, c cref) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].clause() == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

func (s *Solver) uncheckedEnqueue(l Lit, from cref) {
	v := l.Var()
	s.assigns[v] = lTrue.xorSign(l.Neg())
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

// cancelUntil backtracks to the given decision level, unassigning variables
// and saving their phases.
func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		l := s.trail[i]
		v := l.Var()
		if !s.opts.DisablePhaseSaving {
			s.polarity[v] = l.Neg()
		}
		s.assigns[v] = lUndef
		s.reason[v] = crefUndef
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	if s.qhead > len(s.trail) {
		s.qhead = len(s.trail)
	}
}

func (s *Solver) varBump(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild()
	}
	s.order.update(v)
}

func (s *Solver) varDecay() { s.varInc /= 0.95 }

func (s *Solver) claBump(c cref) {
	a := s.ca.act(c) + float32(s.claInc)
	s.ca.setAct(c, a)
	if a > 1e20 {
		for _, lc := range s.learnts {
			s.ca.setAct(lc, s.ca.act(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecay() { s.claInc /= 0.999 }

// pickBranchVar selects the next decision variable by activity.
// Eliminated variables are skipped: no live clause mentions them, and
// their model values come from the reconstruction stack instead.
func (s *Solver) pickBranchVar() Lit {
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == lUndef && !s.eliminatedVar(v) {
			return MkLit(v, s.polarity[v])
		}
	}
	return LitUndef
}

// maybeGC compacts the arena when a quarter of it is dead words. Callers
// must hold no cref locals across the call (every stored cref — clause
// lists, reasons, watches — is remapped; locals are not).
func (s *Solver) maybeGC() {
	if len(s.ca.data) >= 4096 && s.ca.wasted*4 >= len(s.ca.data) {
		s.garbageCollect()
	}
}

// garbageCollect compacts live clauses into a fresh arena and remaps
// every outstanding clause reference: the problem and learnt lists, the
// reason column, and the watch lists (purging watchers of dead clauses on
// the way). Each moved clause leaves a forwarding address in its old
// header, so a clause reachable from several places is copied once.
// Offsets change but list order does not, which is what keeps replay
// (CloneWithOptions) and the deterministic-output guarantees stable.
func (s *Solver) garbageCollect() {
	old := s.ca
	to := clauseDB{data: make([]Lit, 0, len(old.data)-old.wasted)}
	reloc := func(c cref) cref {
		if old.deleted(c) {
			return crefUndef
		}
		if old.reloced(c) {
			return old.relocTarget(c)
		}
		n := to.alloc(old.lits(c), old.learnt(c))
		to.data[n] |= old.data[c] & claFlagUsed // tier reprieve flag
		to.data[n+1] = old.data[c+1]            // LBD
		to.data[n+2] = old.data[c+2]            // activity
		old.setReloced(c, n)
		return n
	}

	cls := s.clauses[:0]
	for _, c := range s.clauses {
		if n := reloc(c); n != crefUndef {
			cls = append(cls, n)
		}
	}
	s.clauses = cls
	lrn := s.learnts[:0]
	for _, c := range s.learnts {
		if n := reloc(c); n != crefUndef {
			lrn = append(lrn, n)
		}
	}
	s.learnts = lrn

	// Reasons: level-0 facts need none (analysis never dereferences them);
	// above level 0 a reason clause is locked and therefore alive.
	for _, l := range s.trail {
		v := l.Var()
		if s.level[v] == 0 {
			s.reason[v] = crefUndef
			continue
		}
		if r := s.reason[v]; r != crefUndef {
			s.reason[v] = reloc(r)
		}
	}

	for i := range s.watches {
		ws := s.watches[i]
		out := ws[:0]
		for _, w := range ws {
			if n := reloc(w.clause()); n != crefUndef {
				out = append(out, mkWatcher(n, w.blocker()))
			}
		}
		s.watches[i] = out
	}
	pend := s.pendingWatch[:0]
	for _, c := range s.pendingWatch {
		if n := reloc(c); n != crefUndef {
			pend = append(pend, n)
		}
	}
	s.pendingWatch = pend
	if s.opts.NaivePropagation {
		for i := range s.occs {
			occ := s.occs[i]
			out := occ[:0]
			for _, c := range occ {
				if n := reloc(c); n != crefUndef {
					out = append(out, n)
				}
			}
			s.occs[i] = out
		}
	}

	s.ca = to
	s.Stats.ArenaGCs++
}
