package sat

import (
	"context"
	"time"

	"muppet/internal/simp"
)

// Status is the outcome of a Solve call.
type Status int

const (
	// Unknown means the solver gave up (budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found; read it with Value/Model.
	Sat
	// Unsat means no satisfying assignment exists under the assumptions;
	// the failed assumptions are available via Core.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// Options tune solver behaviour. The zero value is the recommended default
// configuration; the toggles exist for the ablation benchmarks.
type Options struct {
	// DisableLearning turns the solver into chronological-backtracking DPLL:
	// conflicts still backtrack, but no learnt clauses are retained.
	DisableLearning bool
	// NaivePropagation replaces two-watched-literal propagation with full
	// occurrence-list clause scans.
	NaivePropagation bool
	// DisablePhaseSaving makes decisions always try the negative phase first.
	DisablePhaseSaving bool
	// DisableRestarts switches Luby restarts off.
	DisableRestarts bool
	// MaxConflicts, when positive, bounds the cumulative conflict count
	// across the solver's lifetime; exceeding it makes Solve return Unknown
	// with StopReason() == StopConflicts. Prefer the per-call
	// Budget.MaxConflicts of SolveCtx for new code.
	MaxConflicts int64
	// RestartBase, when positive, replaces the default Luby restart unit
	// (100 conflicts). Small values restart aggressively, large values let
	// each search run long — the main diversification axis for portfolios.
	RestartBase int64
	// PhaseSeed, when non-zero, seeds deterministic per-variable jitter:
	// initial decision polarity and a tiny initial activity perturbation
	// that reorders ties in the decision heap. Two solvers over the same
	// clauses with different seeds explore different parts of the space.
	PhaseSeed uint64
	// LearntCap, when positive, pins the learnt-clause database limit to a
	// fixed size instead of the default third-of-problem-clauses with
	// geometric growth. Small caps keep the solver lean (frequent
	// reduceDB), another portfolio diversification axis.
	LearntCap int
	// DisableSimp turns off SatELite-style preprocessing (subsumption,
	// self-subsuming resolution, bounded variable elimination) of the
	// clause database before search. Preprocessing is on by default;
	// callers that read variables from models or use literals as
	// assumptions/selectors must Freeze them (see Solver.Freeze).
	DisableSimp bool
	// SimpMinClauses is the live problem-clause count below which
	// preprocessing is deferred: on small databases the solve is cheaper
	// than the preprocessing pass, so simplification waits until the
	// database grows past the floor. 0 means the default floor
	// (simpDefaultMinClauses); negative means no floor.
	SimpMinClauses int
}

// restartBase returns the Luby restart unit in conflicts.
func (o Options) restartBase() int64 {
	if o.RestartBase > 0 {
		return o.RestartBase
	}
	return 100
}

// splitmix64 is the SplitMix64 mixing function — a cheap, deterministic
// uint64→uint64 hash used for seeded polarity/activity jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Solver is an incremental CDCL SAT solver. Create one with New, introduce
// variables with NewVar, add clauses with AddClause, and call Solve —
// possibly repeatedly, with further clauses and differing assumptions
// between calls. Solver is not safe for concurrent use.
type Solver struct {
	opts Options

	clauses []*clause // problem clauses
	learnts []*clause // learnt clauses

	watches [][]watcher // indexed by literal: clauses watching that literal
	occs    [][]*clause // naive mode: occurrence lists per literal

	assigns  []lbool // per variable
	level    []int32 // decision level per variable
	reason   []*clause
	trail    []Lit
	trailLim []int32 // trail index at each decision level
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	polarity []bool // saved phase: last assigned sign per variable

	seen       []byte
	analyzeBuf []Lit

	claInc       float64
	maxLearnts   float64
	learntGrowth float64

	unsatLevel0 bool // empty clause derived; all future Solves are Unsat
	model       []bool
	conflict    []Lit // failed assumptions (negated), valid after Unsat

	assumptions []Lit

	// Cancellation/budget state, set per SolveCtx call (see budget.go).
	ctx         context.Context
	deadline    time.Time
	conflictCap int64 // absolute Stats.Conflicts threshold; 0: none
	propCap     int64 // absolute Stats.Propagations threshold; 0: none
	pollTick    uint32
	stopReason  StopReason

	// Preprocessing state (see simplify.go): the preprocessor owns the
	// frozen/eliminated marks and the model-reconstruction stack.
	elim          *simp.Preprocessor
	simpRan       bool
	simpWatermark int // problem clause count right after the last run

	// Stats accumulates counters across Solve calls.
	Stats Stats
}

// Stats reports solver work counters.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
	Removed      int64

	// Preprocessing counters (see simplify.go). SimpVarsEliminated is the
	// current number of eliminated variables (net of restores); the others
	// accumulate across runs.
	SimpRuns             int64
	SimpVarsEliminated   int64
	SimpClausesSubsumed  int64
	SimpLitsStrengthened int64
	SimpClausesRemoved   int64
}

// New creates an empty solver with default options.
func New() *Solver { return NewWithOptions(Options{}) }

// NewWithOptions creates an empty solver with the given options.
func NewWithOptions(opts Options) *Solver {
	s := &Solver{
		opts:         opts,
		varInc:       1,
		claInc:       1,
		maxLearnts:   0,
		learntGrowth: 1.3,
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of live learnt clauses — the part of the
// clause database that grows with search effort, and therefore the part a
// long-lived session's memory accounting must include.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// NewVar introduces a fresh variable and returns it.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	phase := true // default phase: false branch first
	activity := 0.0
	if s.opts.PhaseSeed != 0 {
		h := splitmix64(s.opts.PhaseSeed + uint64(v))
		phase = h&1 == 0
		// Sub-1e-3 jitter: far below any bumped activity, so it only
		// breaks ties among never-bumped variables.
		activity = float64(h>>40) * (1.0 / (1 << 34))
	}
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, activity)
	s.polarity = append(s.polarity, phase)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	if s.opts.NaivePropagation {
		s.occs = append(s.occs, nil, nil)
	}
	s.order.push(v)
	return v
}

func (s *Solver) value(l Lit) lbool {
	return s.assigns[l.Var()].xorSign(l.Neg())
}

// Value returns v's value in the most recent satisfying model.
// Only meaningful after Solve returned Sat.
func (s *Solver) Value(v Var) bool { return s.model[v] }

// Model returns a copy of the most recent satisfying assignment, indexed by
// variable. Only meaningful after Solve returned Sat.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	copy(m, s.model)
	return m
}

// Core returns the failed assumptions from the last Unsat Solve: a subset A'
// of the assumptions such that the clauses together with A' are
// unsatisfiable. Literals are returned in their assumption polarity.
func (s *Solver) Core() []Lit {
	core := make([]Lit, len(s.conflict))
	for i, l := range s.conflict {
		core[i] = l.Not() // conflict stores negations of failed assumptions
	}
	return core
}

// AddClause adds a disjunction of literals. It returns false if the clause
// set is now known unsatisfiable at level 0 (an empty clause was derived).
// Duplicate literals are merged and tautologies are dropped.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsatLevel0 {
		return false
	}
	s.cancelUntil(0)

	// A clause mentioning an eliminated variable re-activates it: the
	// clauses recorded at its elimination come back first, so the new
	// clause constrains the variable it names, not a ghost.
	if s.elim != nil && s.elim.NumEliminated() > 0 {
		for _, l := range lits {
			if s.elim.Eliminated(int32(l.Var())) {
				s.restoreVar(l.Var())
			}
		}
		if s.unsatLevel0 {
			return false
		}
	}

	// Normalise: sort-free dedupe, drop level-0-false lits, detect tautology
	// and level-0-true lits.
	out := lits[:0:0] // fresh backing array; callers may reuse lits
	for _, l := range lits {
		if l.Var() < 0 || int(l.Var()) >= len(s.assigns) {
			panic("sat: AddClause literal for unknown variable")
		}
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue
		}
		dup, taut := false, false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				taut = true
				break
			}
		}
		if taut {
			return true
		}
		if !dup {
			out = append(out, l)
		}
	}

	switch len(out) {
	case 0:
		s.unsatLevel0 = true
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.unsatLevel0 = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	if s.opts.NaivePropagation {
		for _, l := range c.lits {
			s.occs[l] = append(s.occs[l], c)
		}
		return
	}
	// Watch the first two literals; the watch list for a literal holds
	// clauses in which that literal is watched, visited when it goes false.
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], watcher{c, c.lits[1]})
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], watcher{c, c.lits[0]})
}

// detachAll lazily marks a clause deleted; watch lists are purged on scan.
func (s *Solver) detach(c *clause) { c.deleted = true }

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = lTrue.xorSign(l.Neg())
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, int32(len(s.trail)))
}

// cancelUntil backtracks to the given decision level, unassigning variables
// and saving their phases.
func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		l := s.trail[i]
		v := l.Var()
		if !s.opts.DisablePhaseSaving {
			s.polarity[v] = l.Neg()
		}
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	if s.qhead > len(s.trail) {
		s.qhead = len(s.trail)
	}
}

func (s *Solver) varBump(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild()
	}
	s.order.update(v)
}

func (s *Solver) varDecay() { s.varInc /= 0.95 }

func (s *Solver) claBump(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecay() { s.claInc /= 0.999 }

// pickBranchVar selects the next decision variable by activity.
// Eliminated variables are skipped: no live clause mentions them, and
// their model values come from the reconstruction stack instead.
func (s *Solver) pickBranchVar() Lit {
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == lUndef && !s.eliminatedVar(v) {
			return MkLit(v, s.polarity[v])
		}
	}
	return LitUndef
}
